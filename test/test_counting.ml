(* Tests for the central and combining-tree counting protocols:
   specification compliance everywhere, and the delay shapes the paper
   predicts (serialisation at the root, DFS rank order, star
   quadratics). *)

module Graph = Countq_topology.Graph
module Gen = Countq_topology.Gen
module Tree = Countq_topology.Tree
module Spanning = Countq_topology.Spanning
module Central = Countq_counting.Central
module Combining = Countq_counting.Combining
module Diffracting = Countq_counting.Diffracting
module Counts = Countq_counting.Counts

let check_valid msg (r : Counts.run_result) =
  match r.valid with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Format.asprintf "%s: %a" msg Counts.pp_error e)

(* ---- central counter ---- *)

let test_central_no_requests () =
  let r = Central.run ~graph:(Gen.path 4) ~requests:[] () in
  Alcotest.(check int) "no outcomes" 0 (List.length r.outcomes)

let test_central_root_requests_free () =
  let r = Central.run ~graph:(Gen.path 4) ~requests:[ 0 ] () in
  check_valid "root only" r;
  Alcotest.(check int) "zero delay" 0 r.total_delay

let test_central_counts_in_arrival_order () =
  (* On a star with round-robin arbitration, counts are assigned in
     arbitration order; the count set must be exactly 1..k anyway. *)
  let n = 8 in
  let r = Central.run ~graph:(Gen.star n) ~requests:(Helpers.all_nodes n) () in
  check_valid "star all" r;
  Alcotest.(check int) "k outcomes" n (List.length r.outcomes)

let test_central_star_quadratic () =
  (* Section 5: the star's total counting delay is Theta(n^2): requests
     serialise into the centre and replies serialise out. *)
  let total n =
    (Central.run ~graph:(Gen.star n) ~requests:(Helpers.all_nodes n) ())
      .total_delay
  in
  let t32 = total 32 and t64 = total 64 in
  let growth = float_of_int t64 /. float_of_int t32 in
  Alcotest.(check bool)
    (Printf.sprintf "quadratic growth (x%.2f)" growth)
    true
    (growth > 3.0 && growth < 5.0)

let test_central_path_delay_includes_distance () =
  (* A single request at the far end of a path pays 2 * distance. *)
  let n = 10 in
  let r = Central.run ~graph:(Gen.path n) ~requests:[ n - 1 ] () in
  check_valid "far request" r;
  Alcotest.(check int) "2(n-1)" (2 * (n - 1)) r.total_delay

let test_central_custom_root () =
  let n = 10 in
  let r = Central.run ~root:(n - 1) ~graph:(Gen.path n) ~requests:[ n - 1 ] () in
  check_valid "custom root" r;
  Alcotest.(check int) "local" 0 r.total_delay

let test_central_rejects_bad_requests () =
  Alcotest.check_raises "range"
    (Invalid_argument "Central.run: request out of range") (fun () ->
      ignore (Central.run ~graph:(Gen.path 3) ~requests:[ 5 ] ()));
  Alcotest.check_raises "dup"
    (Invalid_argument "Central.run: duplicate request node") (fun () ->
      ignore (Central.run ~graph:(Gen.path 3) ~requests:[ 1; 1 ] ()))

(* ---- combining tree ---- *)

let combining_on g requests =
  Combining.run ~tree:(Spanning.bfs g ~root:0) ~requests ()

let test_combining_ranks_are_dfs_order () =
  (* On a rooted path 0-1-2-3 with everyone requesting, DFS order is
     0,1,2,3, so ranks must be 1,2,3,4 in node order. *)
  let g = Gen.path 4 in
  let r = combining_on g (Helpers.all_nodes 4) in
  check_valid "path all" r;
  List.iter
    (fun (o : Counts.outcome) ->
      Alcotest.(check int) "rank = node + 1" (o.node + 1) o.count)
    r.outcomes

let test_combining_subset () =
  let g = Gen.perfect_tree ~arity:2 ~height:3 in
  let r = combining_on g [ 14; 3; 7 ] in
  check_valid "subset" r;
  Alcotest.(check int) "three outcomes" 3 (List.length r.outcomes)

let test_combining_empty () =
  let r = combining_on (Gen.perfect_tree ~arity:2 ~height:2) [] in
  Alcotest.(check int) "silent" 0 (List.length r.outcomes);
  Alcotest.(check int) "no messages besides reports" r.messages r.messages;
  check_valid "empty" r

let test_combining_root_only () =
  let r = combining_on (Gen.path 5) [ 0 ] in
  check_valid "root only" r;
  (* The root still needs its child's (empty) report before it can
     assign rank 1 to itself: delay equals the upsweep time. *)
  match r.outcomes with
  | [ o ] -> Alcotest.(check int) "rank 1" 1 o.count
  | _ -> Alcotest.fail "one outcome"

let test_combining_deep_path_linear_delay () =
  (* On a path rooted at one end the upsweep travels n-1 hops, so even
     one request at the root has delay ~ n. *)
  let n = 20 in
  let r = combining_on (Gen.path n) [ 0 ] in
  check_valid "deep path" r;
  Alcotest.(check bool) "delay >= n-1" true (r.max_delay >= n - 1)

let test_combining_expansion_recorded () =
  let g = Gen.star 8 in
  let r = combining_on g (Helpers.all_nodes 8) in
  check_valid "star combining" r;
  Alcotest.(check int) "expansion = tree degree" 7 r.expansion

(* ---- diffracting tree ---- *)

let diffracting_on g requests =
  Diffracting.run ~tree:(Spanning.bfs g ~root:0) ~requests ()

let test_diffracting_balanced_tree_all () =
  (* Every node of a perfect binary tree requests: the toggles spread
     the 15 tokens across all 8 leaves, and the count set is still
     exactly {1..15}. *)
  let g = Gen.perfect_tree ~arity:2 ~height:3 in
  let r = diffracting_on g (Helpers.all_nodes 15) in
  check_valid "perfect tree all" r;
  Alcotest.(check int) "15 outcomes" 15 (List.length r.outcomes)

let test_diffracting_empty () =
  let r = diffracting_on (Gen.perfect_tree ~arity:2 ~height:2) [] in
  check_valid "empty" r;
  Alcotest.(check int) "silent" 0 (List.length r.outcomes);
  Alcotest.(check int) "no messages" 0 r.messages

let test_diffracting_root_only () =
  (* The root's token descends and returns without touching the upsweep
     path: rank 1, and no waiting for empty sibling reports (contrast
     with the combining tree's root-only case). *)
  let r = diffracting_on (Gen.path 5) [ 0 ] in
  check_valid "root only" r;
  match r.outcomes with
  | [ o ] -> Alcotest.(check int) "rank 1" 1 o.count
  | _ -> Alcotest.fail "one outcome"

let test_diffracting_star_toggle_order () =
  (* On a star rooted at the centre, the root balancer is the only
     interior node: leaves are visited round-robin by the toggle, so
     with every node requesting, counts are exactly {1..n}. *)
  let n = 8 in
  let r = diffracting_on (Gen.star n) (Helpers.all_nodes n) in
  check_valid "star all" r;
  Alcotest.(check int) "n outcomes" n (List.length r.outcomes)

let test_diffracting_rejects_bad_requests () =
  Alcotest.check_raises "range"
    (Invalid_argument "Diffracting.run: request out of range") (fun () ->
      ignore (diffracting_on (Gen.path 3) [ 5 ]));
  Alcotest.check_raises "dup"
    (Invalid_argument "Diffracting.run: duplicate request node") (fun () ->
      ignore (diffracting_on (Gen.path 3) [ 1; 1 ]))

let prop_diffracting_spec =
  QCheck2.Test.make ~name:"diffracting tree meets the counting spec"
    ~count:120 ~print:Helpers.instance_print Helpers.instance_gen
    (fun (_, g, requests) ->
      let r = diffracting_on g requests in
      Result.is_ok r.valid)

let prop_diffracting_async_spec =
  (* Toggle routing depends only on per-balancer arrival order, so the
     count set stays exact under arbitrary link delays. *)
  QCheck2.Test.make ~name:"diffracting tree is exact under async delays"
    ~count:80
    ~print:QCheck2.Print.(pair Helpers.instance_print int)
    QCheck2.Gen.(pair Helpers.instance_gen (int_range 0 1_000_000))
    (fun ((_, g, requests), seed) ->
      let tree = Spanning.bfs g ~root:0 in
      let delay =
        Countq_simnet.Async.Uniform { min = 1; max = 4; seed = Int64.of_int seed }
      in
      let r = Diffracting.run_async ~delay ~tree ~requests () in
      Result.is_ok r.valid)

(* ---- combining funnel ---- *)

module Funnel = Countq_counting.Funnel
module Implicit = Countq_topology.Implicit

let funnel_on g requests =
  Funnel.run ~tree:(Spanning.bfs g ~root:0) ~requests ()

let test_funnel_path_all () =
  (* On a path rooted at 0, each node's batch is [own; child's block],
     so decombination hands out counts in node order. *)
  let r = funnel_on (Gen.path 4) (Helpers.all_nodes 4) in
  check_valid "path all" r;
  List.iter
    (fun (o : Counts.outcome) ->
      Alcotest.(check int) "rank = node + 1" (o.node + 1) o.count)
    r.outcomes

let test_funnel_empty () =
  let r = funnel_on (Gen.perfect_tree ~arity:2 ~height:2) [] in
  check_valid "empty" r;
  Alcotest.(check int) "silent" 0 (List.length r.outcomes);
  Alcotest.(check int) "no messages" 0 r.messages

let test_funnel_root_only () =
  (* The combining window is the on-path closure, not the tree: a sole
     requesting root waits for nobody (contrast with the combining
     tree, whose root must hear every child's empty report). *)
  let r = funnel_on (Gen.path 5) [ 0 ] in
  check_valid "root only" r;
  Alcotest.(check int) "free" 0 r.total_delay;
  match r.outcomes with
  | [ o ] -> Alcotest.(check int) "rank 1" 1 o.count
  | _ -> Alcotest.fail "one outcome"

let test_funnel_rejects_bad_requests () =
  Alcotest.check_raises "range"
    (Invalid_argument "Funnel.run: request out of range") (fun () ->
      ignore (funnel_on (Gen.path 3) [ 5 ]));
  Alcotest.check_raises "dup"
    (Invalid_argument "Funnel.run: duplicate request node") (fun () ->
      ignore (funnel_on (Gen.path 3) [ 1; 1 ]))

let test_funnel_adaptive_width () =
  Alcotest.(check int) "solo -> narrow" 2
    (Funnel.adaptive_width ~n:1000 ~concurrency:1);
  Alcotest.(check int) "sqrt regime" 11
    (Funnel.adaptive_width ~n:1000 ~concurrency:100);
  Alcotest.(check int) "ceiling" 64
    (Funnel.adaptive_width ~n:1_000_000 ~concurrency:1_000_000);
  Alcotest.(check int) "tiny tree clamp" 2
    (Funnel.adaptive_width ~n:3 ~concurrency:10_000)

let test_funnel_implicit_matches_materialised () =
  (* The index-arithmetic route and the materialised tree are the same
     tree, so the runs agree outcome for outcome. *)
  let topo = Implicit.tree ~arity:3 40 in
  let tree = Tree.of_graph (Implicit.materialise topo) ~root:0 in
  let requests = [ 0; 5; 13; 14; 22; 39 ] in
  let a = Funnel.run ~tree ~requests () in
  let b = Funnel.run_implicit ~topo ~requests () in
  check_valid "materialised" a;
  check_valid "implicit" b;
  Alcotest.(check bool) "same outcomes" true (a.outcomes = b.outcomes);
  Alcotest.(check int) "same rounds" a.rounds b.rounds;
  Alcotest.(check int) "same messages" a.messages b.messages

let prop_funnel_spec =
  QCheck2.Test.make ~name:"combining funnel meets the counting spec"
    ~count:120 ~print:Helpers.instance_print Helpers.instance_gen
    (fun (_, g, requests) ->
      let r = funnel_on g requests in
      Result.is_ok r.valid)

let prop_funnel_pins_central =
  (* The funnel and the central counter implement the same one-shot
     specification: the same requesters complete, and each hands out
     the count set {1..|R|} exactly (assignment order legitimately
     differs — batches vs arbitration). *)
  QCheck2.Test.make ~name:"funnel completes the same set as central"
    ~count:120 ~print:Helpers.instance_print Helpers.instance_gen
    (fun (_, g, requests) ->
      let f = funnel_on g requests in
      let c = Central.run ~graph:g ~requests () in
      let nodes (r : Counts.run_result) =
        List.sort compare (List.map (fun (o : Counts.outcome) -> o.node) r.outcomes)
      in
      Result.is_ok f.valid && Result.is_ok c.valid && nodes f = nodes c)

let prop_funnel_message_frugal =
  (* Two messages per closure edge: one combined Up, one Down. *)
  QCheck2.Test.make ~name:"funnel uses <= 2(n-1) messages" ~count:100
    ~print:Helpers.instance_print Helpers.instance_gen
    (fun (_, g, requests) ->
      let r = funnel_on g requests in
      r.messages <= 2 * (Graph.n g - 1))

let prop_funnel_async_spec =
  QCheck2.Test.make ~name:"funnel is exact under async delays" ~count:80
    ~print:QCheck2.Print.(pair Helpers.instance_print int)
    QCheck2.Gen.(pair Helpers.instance_gen (int_range 0 1_000_000))
    (fun ((_, g, requests), seed) ->
      let tree = Spanning.bfs g ~root:0 in
      let delay =
        Countq_simnet.Async.Uniform { min = 1; max = 4; seed = Int64.of_int seed }
      in
      let r = Funnel.run_async ~delay ~tree ~requests () in
      Result.is_ok r.valid)

let test_central_long_lived () =
  let g = Gen.square_mesh 4 in
  let arrivals = [ (3, 0); (3, 0); (9, 2); (14, 5); (3, 5) ] in
  let r = Central.run_long_lived ~graph:g ~arrivals () in
  Alcotest.(check int) "five ops" 5 (List.length r.outcomes);
  Alcotest.(check bool) "counts exact" true r.counts_exact;
  List.iter
    (fun (o : Central.long_lived_outcome) ->
      Alcotest.(check bool) "delay non-negative" true (o.delay >= 0))
    r.outcomes

let prop_central_long_lived_counts_exact =
  QCheck2.Test.make ~name:"long-lived central counter ranks are {1..m}"
    ~count:40
    QCheck2.Gen.(pair (int_range 2 5) (int_range 0 1_000_000))
    (fun (side, seed) ->
      let g = Gen.square_mesh side in
      let n = side * side in
      let rng = Countq_util.Rng.create (Int64.of_int seed) in
      let m = Countq_util.Rng.below rng 25 in
      let arrivals =
        List.init m (fun _ ->
            (Countq_util.Rng.below rng n, Countq_util.Rng.below rng 15))
      in
      let r = Central.run_long_lived ~graph:g ~arrivals () in
      r.counts_exact && List.length r.outcomes = m)

let prop_central_spec =
  QCheck2.Test.make ~name:"central counter meets the counting spec" ~count:120
    ~print:Helpers.instance_print Helpers.instance_gen
    (fun (_, g, requests) ->
      let r = Central.run ~graph:g ~requests () in
      Result.is_ok r.valid)

let prop_combining_spec =
  QCheck2.Test.make ~name:"combining tree meets the counting spec" ~count:120
    ~print:Helpers.instance_print Helpers.instance_gen
    (fun (_, g, requests) ->
      let r = combining_on g requests in
      Result.is_ok r.valid)

let prop_combining_message_frugal =
  (* The combining tree sends at most 2 messages per tree edge
     (one report up, at most one range down). *)
  QCheck2.Test.make ~name:"combining tree uses <= 2(n-1) messages" ~count:100
    ~print:Helpers.instance_print Helpers.instance_gen
    (fun (_, g, requests) ->
      let r = combining_on g requests in
      r.messages <= 2 * (Graph.n g - 1))

let suite =
  [
    Alcotest.test_case "central: no requests" `Quick test_central_no_requests;
    Alcotest.test_case "central: root request free" `Quick
      test_central_root_requests_free;
    Alcotest.test_case "central: arrival order" `Quick
      test_central_counts_in_arrival_order;
    Alcotest.test_case "central: star quadratic" `Quick test_central_star_quadratic;
    Alcotest.test_case "central: distance charged" `Quick
      test_central_path_delay_includes_distance;
    Alcotest.test_case "central: custom root" `Quick test_central_custom_root;
    Alcotest.test_case "central: bad requests" `Quick
      test_central_rejects_bad_requests;
    Alcotest.test_case "central: long-lived" `Quick test_central_long_lived;
    Alcotest.test_case "combining: DFS ranks" `Quick
      test_combining_ranks_are_dfs_order;
    Alcotest.test_case "combining: subset" `Quick test_combining_subset;
    Alcotest.test_case "combining: empty" `Quick test_combining_empty;
    Alcotest.test_case "combining: root only" `Quick test_combining_root_only;
    Alcotest.test_case "combining: deep path" `Quick
      test_combining_deep_path_linear_delay;
    Alcotest.test_case "combining: expansion" `Quick
      test_combining_expansion_recorded;
    Alcotest.test_case "diffracting: balanced tree" `Quick
      test_diffracting_balanced_tree_all;
    Alcotest.test_case "diffracting: empty" `Quick test_diffracting_empty;
    Alcotest.test_case "diffracting: root only" `Quick
      test_diffracting_root_only;
    Alcotest.test_case "diffracting: star toggles" `Quick
      test_diffracting_star_toggle_order;
    Alcotest.test_case "diffracting: bad requests" `Quick
      test_diffracting_rejects_bad_requests;
    Alcotest.test_case "funnel: path ranks" `Quick test_funnel_path_all;
    Alcotest.test_case "funnel: empty" `Quick test_funnel_empty;
    Alcotest.test_case "funnel: root only" `Quick test_funnel_root_only;
    Alcotest.test_case "funnel: bad requests" `Quick
      test_funnel_rejects_bad_requests;
    Alcotest.test_case "funnel: adaptive width" `Quick
      test_funnel_adaptive_width;
    Alcotest.test_case "funnel: implicit = materialised" `Quick
      test_funnel_implicit_matches_materialised;
    Helpers.qcheck prop_central_spec;
    Helpers.qcheck prop_central_long_lived_counts_exact;
    Helpers.qcheck prop_combining_spec;
    Helpers.qcheck prop_combining_message_frugal;
    Helpers.qcheck prop_diffracting_spec;
    Helpers.qcheck prop_diffracting_async_spec;
    Helpers.qcheck prop_funnel_spec;
    Helpers.qcheck prop_funnel_pins_central;
    Helpers.qcheck prop_funnel_message_frugal;
    Helpers.qcheck prop_funnel_async_spec;
  ]
