(* Tests for the domain-parallel sweep runner and its on-disk cache:
   jobs-count independence, cold/warm bit-identity, corruption and
   staleness fallback, and the spot-check regression guard. *)

module Sweep = Countq.Sweep
module Cache = Countq.Cache
module Run = Countq.Run
module Experiments = Countq.Experiments
module Table = Countq.Table
module Json = Countq_util.Json
module Rng = Countq_util.Rng
module Gen = Countq_topology.Gen
module Faults = Countq_simnet.Faults

(* A fresh private directory under the system temp dir; tests clean up
   behind themselves with [Cache.clear]. *)
let temp_dir () =
  let f = Filename.temp_file "countq-sweep" ".cache" in
  Sys.remove f;
  Sys.mkdir f 0o755;
  f

let rm_dir dir =
  ignore (Cache.clear ~dir);
  (try Sys.rmdir dir with Sys_error _ -> ())

let render t = Format.asprintf "%a" Table.pp t

(* ---- determinism: jobs = k is bit-identical to jobs = 1 ---- *)

(* Synthetic grid points exercising every flavour the experiments use:
   pure RNG draws, a faulty run with its baseline, and a
   metrics-attached observed run. All on tiny graphs. *)
let point_of_kind ctx kind idx =
  let name = Printf.sprintf "k%d:%d" kind idx in
  match kind with
  | 0 ->
      Sweep.point ~name (fun ~rng ->
          Json.Arr
            [ Json.Int (Rng.below rng 1000); Json.Int (Rng.below rng 1000) ])
  | 1 ->
      Sweep.rows_point ~name (fun ~rng ->
          let n = 4 + Rng.below rng 3 in
          let s =
            Run.run_faulty ~pool:(Sweep.pool ctx) ~graph:(Gen.star n)
              ~protocol:`Central_count ~plan:(Faults.drop_nth 3)
              ~requests:(Helpers.all_nodes n) ()
          in
          [
            [
              string_of_int s.completed;
              string_of_int s.rounds;
              string_of_int s.extra_messages;
              string_of_bool s.safe;
            ];
          ])
  | _ ->
      Sweep.point ~name (fun ~rng ->
          let n = 4 + Rng.below rng 3 in
          let o =
            Run.observe ~graph:(Gen.path n) ~protocol:`Arrow
              ~requests:(Helpers.all_nodes n) ()
          in
          Json.Arr
            [
              Json.Int o.completed;
              Json.Int o.o_rounds;
              Json.Int o.o_messages;
              Json.Int (List.length o.spans);
            ])

let prop_jobs_independent =
  QCheck2.Test.make ~name:"sweep: jobs=k bit-identical to jobs=1" ~count:15
    ~print:(fun (kinds, jobs) ->
      Printf.sprintf "kinds=[%s] jobs=%d"
        (String.concat ";" (List.map string_of_int kinds))
        jobs)
    QCheck2.Gen.(pair (list_size (int_range 1 6) (int_range 0 2)) (int_range 2 5))
    (fun (kinds, jobs) ->
      let grid ctx = List.mapi (fun i k -> point_of_kind ctx k i) kinds in
      let serial = Sweep.serial () in
      let par = Sweep.ctx ~jobs () in
      let v1, _ = Sweep.run serial ~experiment:"PROP" (grid serial) in
      let vk, _ = Sweep.run par ~experiment:"PROP" (grid par) in
      v1 = vk)

let test_experiment_grids_job_independent () =
  (* The rewired experiments themselves: quick grids at jobs=3 must
     render identically to the serial default. *)
  let ctx = Sweep.ctx ~jobs:3 () in
  List.iter
    (fun id ->
      match Experiments.find id with
      | None -> Alcotest.failf "experiment %s not found" id
      | Some s ->
          Alcotest.(check string)
            (id ^ " parallel = serial")
            (render (s.run ~quick:true ()))
            (render (s.run ~quick:true ~ctx ())))
    [ "E3"; "E12"; "E13" ]

let test_duplicate_point_names_rejected () =
  let p () = Sweep.rows_point ~name:"dup" (fun ~rng:_ -> [ [ "x" ] ]) in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Sweep.run EDUP: duplicate point name \"dup\"")
    (fun () ->
      ignore (Sweep.run (Sweep.serial ()) ~experiment:"EDUP" [ p (); p () ]))

(* ---- the cache ---- *)

let counting_grid counter =
  List.map
    (fun i ->
      Sweep.rows_point ~name:(Printf.sprintf "p:%d" i) (fun ~rng ->
          incr counter;
          [ [ string_of_int i; string_of_int (Rng.below rng 1_000_000) ] ]))
    (Helpers.all_nodes 6)

let test_cache_cold_then_warm_identical () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_dir dir)
    (fun () ->
      let evals = ref 0 in
      let cold_ctx = Sweep.ctx ~cache:(Cache.create ~dir) () in
      let cold, cs =
        Sweep.run_rows cold_ctx ~experiment:"EC" (counting_grid evals)
      in
      Alcotest.(check int) "cold misses" 6 cs.misses;
      Alcotest.(check int) "cold evaluations" 6 !evals;
      (* A fresh handle on the same directory: everything hits, nothing
         re-evaluates, and the rows are bit-identical. *)
      let warm_ctx = Sweep.ctx ~cache:(Cache.create ~dir) () in
      let warm, ws =
        Sweep.run_rows warm_ctx ~experiment:"EC" (counting_grid evals)
      in
      Alcotest.(check int) "warm hits" 6 ws.hits;
      Alcotest.(check int) "warm misses" 0 ws.misses;
      Alcotest.(check int) "no re-evaluation" 6 !evals;
      Alcotest.(check (list (list string))) "bit-identical" cold warm)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let test_cache_corrupted_line_recomputed () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_dir dir)
    (fun () ->
      let evals = ref 0 in
      let ctx () = Sweep.ctx ~cache:(Cache.create ~dir) () in
      let cold, _ =
        Sweep.run_rows (ctx ()) ~experiment:"EC" (counting_grid evals)
      in
      (* Truncate the first stored line mid-JSON: that entry must load
         as absent and recompute; the other five still hit. *)
      let path = Filename.concat dir "EC.jsonl" in
      let lines = String.split_on_char '\n' (read_file path) in
      let mangled =
        match lines with
        | first :: rest ->
            String.concat "\n"
              (String.sub first 0 (String.length first / 2) :: rest)
        | [] -> assert false
      in
      write_file path mangled;
      let warm, ws =
        Sweep.run_rows (ctx ()) ~experiment:"EC" (counting_grid evals)
      in
      Alcotest.(check int) "one miss" 1 ws.misses;
      Alcotest.(check int) "five hits" 5 ws.hits;
      Alcotest.(check (list (list string))) "recomputed identically" cold warm)

let test_cache_stale_config_tag_misses () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_dir dir)
    (fun () ->
      let evals = ref 0 in
      let ctx () = Sweep.ctx ~cache:(Cache.create ~dir) () in
      let _ =
        Sweep.run_rows (ctx ()) ~experiment:"EC" (counting_grid evals)
      in
      (* A different engine-config tag keys differently: nothing from
         the old configuration may be served. *)
      let _, ws =
        Sweep.run_rows ~config_tag:"engine:other" (ctx ()) ~experiment:"EC"
          (counting_grid evals)
      in
      Alcotest.(check int) "all miss under new tag" 6 ws.misses;
      Alcotest.(check int) "re-evaluated" 12 !evals)

let test_spot_check_catches_tampering () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_dir dir)
    (fun () ->
      let point () =
        Sweep.rows_point ~name:"only" (fun ~rng:_ -> [ [ "sentinel" ] ])
      in
      let _ =
        Sweep.run_rows
          (Sweep.ctx ~cache:(Cache.create ~dir) ())
          ~experiment:"ET" [ point () ]
      in
      (* Tamper with the stored value - still well-formed rows, wrong
         content. The spot check must refuse to serve it. *)
      let path = Filename.concat dir "ET.jsonl" in
      let replace_all ~sub ~by s =
        let b = Buffer.create (String.length s) in
        let n = String.length s and m = String.length sub in
        let i = ref 0 in
        while !i < n do
          if !i + m <= n && String.sub s !i m = sub then begin
            Buffer.add_string b by;
            i := !i + m
          end
          else begin
            Buffer.add_char b s.[!i];
            incr i
          end
        done;
        Buffer.contents b
      in
      write_file path
        (replace_all ~sub:"sentinel" ~by:"tampered" (read_file path));
      Alcotest.check_raises "mismatch raised"
        (Sweep.Cache_mismatch { experiment = "ET"; point = "only" })
        (fun () ->
          ignore
            (Sweep.run_rows
               (Sweep.ctx ~cache:(Cache.create ~dir) ~spot_check:true ())
               ~experiment:"ET" [ point () ])))

let test_summarize_and_clear () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> try Sys.rmdir dir with Sys_error _ -> ())
    (fun () ->
      let evals = ref 0 in
      let _ =
        Sweep.run_rows
          (Sweep.ctx ~cache:(Cache.create ~dir) ())
          ~experiment:"EC" (counting_grid evals)
      in
      let s = Cache.summarize ~dir in
      Alcotest.(check int) "entries" 6 s.entries;
      Alcotest.(check (list (pair string int))) "namespaces" [ ("EC", 6) ]
        s.namespaces;
      Alcotest.(check bool) "bytes counted" true (s.bytes > 0);
      Alcotest.(check int) "one file cleared" 1 (Cache.clear ~dir);
      Alcotest.(check int) "empty after clear" 0 (Cache.summarize ~dir).entries)

let suite =
  [
    Helpers.qcheck prop_jobs_independent;
    Alcotest.test_case "experiment grids jobs-independent" `Quick
      test_experiment_grids_job_independent;
    Alcotest.test_case "duplicate names rejected" `Quick
      test_duplicate_point_names_rejected;
    Alcotest.test_case "cache cold then warm identical" `Quick
      test_cache_cold_then_warm_identical;
    Alcotest.test_case "corrupted line recomputed" `Quick
      test_cache_corrupted_line_recomputed;
    Alcotest.test_case "stale config tag misses" `Quick
      test_cache_stale_config_tag_misses;
    Alcotest.test_case "spot check catches tampering" `Quick
      test_spot_check_catches_tampering;
    Alcotest.test_case "summarize and clear" `Quick test_summarize_and_clear;
  ]
