(* Cross-module integration tests: chains of guarantees that span
   several libraries, engine edge cases, and determinism. *)

module Graph = Countq_topology.Graph
module Gen = Countq_topology.Gen
module Tree = Countq_topology.Tree
module Spanning = Countq_topology.Spanning
module Engine = Countq_simnet.Engine
module Async = Countq_simnet.Async
module Route = Countq_simnet.Route
module Arrow = Countq_arrow
module Counting = Countq_counting
module Tsp = Countq_tsp
module Rng = Countq_util.Rng

(* ---- the full Theorem 4.1 / Rosenkrantz chain on one instance ---- *)

let test_bound_chain () =
  (* arrow <= 2 NN-TSP <= 2 * guarantee * OPT, end to end. *)
  let rng = Helpers.rng () in
  for _ = 1 to 10 do
    let g = Gen.random_binary_tree rng 40 in
    let tree = Tree.of_graph g ~root:0 in
    let requests = Rng.sample rng ~k:10 ~n:40 in
    let arrow = Arrow.Protocol.run_one_shot ~tree ~requests () in
    let nn = Tsp.Nn.on_tree tree ~start:0 ~requests in
    let opt = Tsp.Exact.min_path_on_tree tree ~start:0 ~requests in
    let guarantee = Tsp.Tbounds.rosenkrantz_ratio 10 in
    Alcotest.(check bool) "arrow <= 2 NN" true (arrow.total_delay <= 2 * nn.cost);
    Alcotest.(check bool) "NN <= guarantee * OPT" true
      (float_of_int nn.cost <= (guarantee *. float_of_int opt) +. 1e-9)
  done

(* ---- every counting protocol agrees on validity, not on order ---- *)

let test_counting_portfolio_cross_validation () =
  let g = Gen.square_mesh 5 in
  let requests = [ 2; 7; 11; 13; 21; 24 ] in
  let tree = Spanning.bfs g ~root:0 in
  let runs =
    [
      ("central", Counting.Central.run ~graph:g ~requests ());
      ("combining", Counting.Combining.run ~tree ~requests ());
      ("network", Counting.Network.run ~graph:g ~requests ());
      ("sweep", Counting.Sweep.run ~tree ~requests ());
    ]
  in
  List.iter
    (fun (name, (r : Counting.Counts.run_result)) ->
      Alcotest.(check bool) (name ^ " valid") true (Result.is_ok r.valid);
      Alcotest.(check int) (name ^ " six outcomes") 6 (List.length r.outcomes))
    runs

(* ---- engine edge cases ---- *)

let test_engine_invalid_capacity () =
  let protocol =
    {
      Engine.name = "noop";
      initial_state = (fun _ -> ());
      on_start = (fun ~node:_ s -> (s, []));
      on_receive = (fun ~round:_ ~node:_ ~src:_ () s -> (s, []));
      on_tick = Engine.no_tick;
    }
  in
  let config = { Engine.default_config with receive_capacity = 0 } in
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Engine.run: capacities must be >= 1") (fun () ->
      ignore (Engine.run ~graph:(Gen.path 2) ~config ~protocol ()))

let test_engine_min_rounds_keeps_ticking () =
  (* With min_rounds = 5 and nothing in flight, ticks still fire for
     rounds 1..5. *)
  let seen = ref [] in
  let protocol =
    {
      Engine.name = "tick-count";
      initial_state = (fun _ -> ());
      on_start = (fun ~node:_ s -> (s, []));
      on_receive = (fun ~round:_ ~node:_ ~src:_ () s -> (s, []));
      on_tick =
        Some
          (fun ~round ~node s ->
            if node = 0 then seen := round :: !seen;
            (s, []));
    }
  in
  let config = { Engine.default_config with min_rounds = 5 } in
  ignore (Engine.run ~graph:(Gen.path 2) ~config ~protocol ());
  Alcotest.(check (list int)) "rounds ticked" [ 1; 2; 3; 4; 5 ]
    (List.rev !seen)

let test_engine_deterministic () =
  let g = Gen.square_mesh 5 in
  let tree = Spanning.best_for_arrow g in
  let requests = Helpers.all_nodes 25 in
  let a = Arrow.Protocol.run_one_shot ~tree ~requests () in
  let b = Arrow.Protocol.run_one_shot ~tree ~requests () in
  Alcotest.(check int) "same total" a.total_delay b.total_delay;
  Alcotest.(check int) "same messages" a.messages b.messages;
  Alcotest.(check bool) "same order" true (a.order = b.order)

(* ---- async edge cases ---- *)

let test_async_bad_wakeup () =
  let protocol =
    {
      Engine.name = "noop";
      initial_state = (fun _ -> ());
      on_start = (fun ~node:_ s -> (s, []));
      on_receive = (fun ~round:_ ~node:_ ~src:_ () s -> (s, []));
      on_tick = Engine.no_tick;
    }
  in
  Alcotest.check_raises "bad wakeup" (Invalid_argument "Async.run: bad wakeup")
    (fun () ->
      ignore
        (Async.run ~graph:(Gen.path 2) ~delay:(Async.Constant 1)
           ~wakeups:[ (-1, 0) ] ~protocol ()))

let test_async_bad_delay_model () =
  let protocol =
    {
      Engine.name = "noop";
      initial_state = (fun _ -> ());
      on_start = (fun ~node:_ s -> (s, []));
      on_receive = (fun ~round:_ ~node:_ ~src:_ () s -> (s, []));
      on_tick = Engine.no_tick;
    }
  in
  Alcotest.check_raises "constant 0"
    (Invalid_argument "Async.run: constant delay must be >= 1") (fun () ->
      ignore (Async.run ~graph:(Gen.path 2) ~delay:(Async.Constant 0) ~protocol ()));
  Alcotest.check_raises "bad uniform"
    (Invalid_argument "Async.run: bad uniform delays") (fun () ->
      ignore
        (Async.run ~graph:(Gen.path 2)
           ~delay:(Async.Uniform { min = 3; max = 2; seed = 0L })
           ~protocol ()))

let test_async_event_limit () =
  (* Ping-pong forever: the event guard must fire. *)
  let protocol =
    {
      Engine.name = "pingpong";
      initial_state = (fun _ -> ());
      on_start =
        (fun ~node s -> if node = 0 then (s, [ Engine.Send (1, ()) ]) else (s, []));
      on_receive = (fun ~round:_ ~node:_ ~src msg s -> (s, [ Engine.Send (src, msg) ]));
      on_tick = Engine.no_tick;
    }
  in
  match
    Async.run ~graph:(Gen.path 2) ~delay:(Async.Constant 1) ~max_events:100
      ~protocol ()
  with
  | _ -> Alcotest.fail "expected Round_limit_exceeded"
  | exception Engine.Round_limit_exceeded { limit; outstanding; _ } ->
      Alcotest.(check int) "limit reported" 100 limit;
      Alcotest.(check bool) "events still pending" true (outstanding > 0)

(* ---- routing facts feeding protocols ---- *)

let test_tree_route_distance_hint () =
  let tree = Tree.of_graph (Gen.perfect_tree ~arity:2 ~height:3) ~root:0 in
  let route = Route.of_tree tree in
  Alcotest.(check (option int)) "hint = tree dist" (Some (Tree.dist tree 7 14))
    (Route.distance_hint route 7 14)

let test_fun_route_has_no_hint () =
  let route = Route.of_fun (fun _ dst -> dst) in
  Alcotest.(check (option int)) "no hint" None (Route.distance_hint route 0 1)

(* ---- fetch&add totals conserve across implementations ---- *)

let test_fetch_add_sum_agrees_across_protocols () =
  let g = Gen.square_mesh 4 in
  let tree = Spanning.bfs g ~root:0 in
  let rng = Helpers.rng () in
  let requests =
    List.map (fun v -> (v, Rng.below rng 20)) [ 1; 3; 6; 9; 14 ]
  in
  let final (r : Counting.Fetch_add.run_result) =
    List.fold_left
      (fun acc (o : Counting.Fetch_add.outcome) ->
        max acc (o.before + o.increment))
      0 r.outcomes
  in
  let a = final (Counting.Fetch_add.run_central ~graph:g ~requests ()) in
  let b = final (Counting.Fetch_add.run_combining ~tree ~requests ()) in
  let c = final (Counting.Fetch_add.run_sweep ~tree ~requests ()) in
  Alcotest.(check int) "central = combining" a b;
  Alcotest.(check int) "combining = sweep" b c

(* ---- growth fit on a real protocol series ---- *)

let test_sweep_counting_fits_quadratic () =
  let series =
    List.map
      (fun n ->
        let tree = Tree.of_graph (Gen.path n) ~root:0 in
        let r = Counting.Sweep.run ~tree ~requests:(Helpers.all_nodes n) () in
        (n, r.total_delay))
      [ 32; 64; 128; 256 ]
  in
  let fit = Countq.Growth.fit_power_law series in
  Alcotest.(check bool)
    (Printf.sprintf "e=%.3f ~ 2" fit.exponent)
    true
    (abs_float (fit.exponent -. 2.0) < 0.05)

(* ---- scenario -> drivers pipeline ---- *)

let test_scenario_to_run_pipeline () =
  match Countq.Scenario.topology "torus:49" with
  | Error (`Msg m) -> Alcotest.fail m
  | Ok (name, g) -> (
      Alcotest.(check string) "realised" "torus-7x7" name;
      match Countq.Scenario.requests ~n:(Graph.n g) "density:0.5" with
      | Error (`Msg m) -> Alcotest.fail m
      | Ok requests ->
          let q = Countq.Run.queuing ~graph:g ~protocol:`Arrow ~requests () in
          let c = Countq.Run.best_counting ~graph:g ~requests () in
          Alcotest.(check bool) "both valid" true (q.valid && c.valid))

let suite =
  [
    Alcotest.test_case "Thm 4.1 + Rosenkrantz chain" `Quick test_bound_chain;
    Alcotest.test_case "counting portfolio cross-validation" `Quick
      test_counting_portfolio_cross_validation;
    Alcotest.test_case "engine invalid capacity" `Quick test_engine_invalid_capacity;
    Alcotest.test_case "engine min_rounds ticks" `Quick
      test_engine_min_rounds_keeps_ticking;
    Alcotest.test_case "engine deterministic" `Quick test_engine_deterministic;
    Alcotest.test_case "async bad wakeup" `Quick test_async_bad_wakeup;
    Alcotest.test_case "async bad delay model" `Quick test_async_bad_delay_model;
    Alcotest.test_case "async event limit" `Quick test_async_event_limit;
    Alcotest.test_case "tree route hint" `Quick test_tree_route_distance_hint;
    Alcotest.test_case "fun route no hint" `Quick test_fun_route_has_no_hint;
    Alcotest.test_case "fetch&add sums agree" `Quick
      test_fetch_add_sum_agrees_across_protocols;
    Alcotest.test_case "sweep fits n^2" `Quick test_sweep_counting_fits_quadratic;
    Alcotest.test_case "scenario pipeline" `Quick test_scenario_to_run_pipeline;
  ]
