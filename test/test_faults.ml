(* Tests for the fault-injection subsystem: plan determinism, the
   fault-free identity, monitor verdicts, and timeout-and-retransmit
   recovery. *)

module Engine = Countq_simnet.Engine
module Async = Countq_simnet.Async
module Faults = Countq_simnet.Faults
module Monitor = Countq_simnet.Monitor
module Reliable = Countq_simnet.Reliable
module Graph = Countq_topology.Graph
module Gen = Countq_topology.Gen
module Spanning = Countq_topology.Spanning
module Arrow = Countq_arrow.Protocol
module Central = Countq_counting.Central
module Central_queue = Countq_queuing.Central_queue
module Run = Countq.Run

(* ---- fixtures ---- *)

let topologies =
  [ ("list", Gen.path 12); ("star", Gen.star 12); ("complete", Gen.complete 12) ]

let all_requests g = List.init (Graph.n g) (fun i -> i)

let arrow_setup g =
  let tree = Spanning.best_for_arrow g in
  (tree, all_requests g)

(* A fingerprint of an engine result, total over everything observable. *)
let fingerprint (res : (int * int) Engine.result) =
  ( List.map
      (fun (c : _ Engine.completion) -> (c.node, c.round, c.value))
      res.completions,
    res.rounds,
    res.messages,
    res.max_link_backlog,
    res.expansion )

let central_run ?faults g =
  let requests = all_requests g in
  let protocol = Central.one_shot_protocol ~graph:g ~requests () in
  Engine.run ?faults ~graph:g ~config:Engine.default_config ~protocol ()

(* ---- fault-free identity ---- *)

let test_none_plan_is_identity_sync () =
  List.iter
    (fun (name, g) ->
      let plain = central_run g in
      let with_none = central_run ~faults:(Faults.start Faults.none) g in
      Alcotest.(check bool)
        (name ^ ": Faults.none run identical")
        true
        (fingerprint plain = fingerprint with_none))
    topologies

let test_none_plan_is_identity_async () =
  let g = Gen.path 12 in
  let requests = all_requests g in
  let run ?faults () =
    let protocol = Central.one_shot_protocol ~graph:g ~requests () in
    Async.run ?faults ~graph:g ~delay:(Async.Constant 2) ~protocol ()
  in
  let plain = run () in
  let with_none = run ~faults:(Faults.start Faults.none) () in
  let fp (r : (int * int) Async.result) =
    ( List.map
        (fun (c : _ Engine.completion) -> (c.node, c.round, c.value))
        r.completions,
      r.finish_time,
      r.messages )
  in
  Alcotest.(check bool) "Faults.none async run identical" true
    (fp plain = fp with_none)

let test_none_plan_no_stats () =
  let fr = Faults.start Faults.none in
  let _ = central_run ~faults:fr (Gen.path 12) in
  let s = Faults.stats fr in
  Alcotest.(check int) "nothing dropped" 0 s.dropped;
  Alcotest.(check int) "nothing duplicated" 0 s.duplicated;
  Alcotest.(check int) "nothing delayed" 0 s.delayed;
  Alcotest.(check int) "nothing lost to crashes" 0 s.crash_dropped

(* ---- determinism ---- *)

let lossy_plan seed =
  Faults.random ~label:"test-lossy" ~seed ~drop:0.1 ~duplicate:0.1 ~delay:0.2
    ()

let test_random_plan_deterministic () =
  let g = Gen.star 12 in
  let run () = fingerprint (central_run ~faults:(Faults.start (lossy_plan 7L)) g) in
  Alcotest.(check bool) "same seed, same execution" true (run () = run ())

let test_random_plan_seed_sensitive () =
  (* Different seeds should (for this instance) fault different
     messages. We only require the stats to differ. *)
  let g = Gen.complete 12 in
  let tally seed =
    let fr = Faults.start (lossy_plan seed) in
    let _ = central_run ~faults:fr g in
    Faults.stats fr
  in
  Alcotest.(check bool) "different seeds diverge" true (tally 1L <> tally 2L)

let test_crash_plan_deterministic () =
  let g = Gen.path 12 in
  let plan =
    Faults.crash_only ~label:"test-crash"
      [ { Faults.node = 5; at_round = 1; recover_at = Some 6 } ]
  in
  let run () = fingerprint (central_run ~faults:(Faults.start plan) g) in
  Alcotest.(check bool) "crash schedule deterministic" true (run () = run ())

(* ---- single-message faults ---- *)

let test_drop_nth_drops_exactly_one () =
  let fr = Faults.start (Faults.drop_nth 3) in
  let res = central_run ~faults:fr (Gen.path 12) in
  let plain = central_run (Gen.path 12) in
  let s = Faults.stats fr in
  Alcotest.(check int) "one drop" 1 s.dropped;
  Alcotest.(check int) "everything else delivered" 0
    (s.duplicated + s.delayed + s.crash_dropped);
  (* the dropped hop also kills its downstream relays *)
  Alcotest.(check bool) "messages lost" true (res.messages < plain.messages)

let test_dup_is_not_a_counting_noop () =
  (* The central counter completes at the requester on Reply receipt, so
     a duplicated Reply double-completes — the monitors must notice. *)
  let g = Gen.star 12 in
  let requests = all_requests g in
  let monitors =
    [
      Monitor.unique_completion
        ~node_of:(fun ~node:_ ((origin, _) : int * int) -> origin);
      Monitor.distinct_ranks ~rank:(fun ((_, c) : int * int) -> c);
    ]
  in
  let protocol = Central.one_shot_protocol ~graph:g ~requests () in
  let _ =
    Engine.run
      ~faults:(Faults.start (Faults.random ~label:"dupes" ~seed:5L ~duplicate:0.5 ()))
      ~observer:(Monitor.observe monitors)
      ~graph:g ~config:Engine.default_config ~protocol ()
  in
  let report = Monitor.finalise monitors in
  Alcotest.(check bool) "a safety monitor flags the duplicate" false
    (Monitor.safety_ok report)

(* ---- arrow recovery under retry ---- *)

let test_arrow_retry_survives_single_drop () =
  List.iter
    (fun (name, g) ->
      let tree, requests = arrow_setup g in
      let r =
        Arrow.run_one_shot_faulty ~retry:true ~plan:(Faults.drop_nth 0) ~tree
          ~requests ()
      in
      Alcotest.(check bool)
        (name ^ ": valid total order re-established")
        true
        (Result.is_ok r.result.order);
      Alcotest.(check int)
        (name ^ ": every operation completed")
        (List.length requests)
        (List.length r.result.outcomes);
      Alcotest.(check bool) (name ^ ": all monitors pass") true
        (Monitor.all_pass r.monitors);
      Alcotest.(check int) (name ^ ": the drop happened") 1 r.injected.dropped;
      match r.retry with
      | None -> Alcotest.fail "retry stats expected"
      | Some s ->
          Alcotest.(check bool)
            (name ^ ": at least one retransmit")
            true (s.retransmits >= 1);
          Alcotest.(check int) (name ^ ": nothing abandoned") 0 s.gave_up)
    topologies

let test_arrow_no_retry_loses_liveness () =
  List.iter
    (fun (name, g) ->
      let tree, requests = arrow_setup g in
      let r =
        Arrow.run_one_shot_faulty ~plan:(Faults.drop_nth 0) ~tree ~requests ()
      in
      Alcotest.(check bool)
        (name ^ ": safety holds even unhealed")
        true
        (Monitor.safety_ok r.monitors);
      Alcotest.(check bool)
        (name ^ ": a liveness monitor fires")
        false
        (Monitor.liveness_ok r.monitors))
    topologies

let test_arrow_faulty_none_matches_plain () =
  let g = Gen.path 12 in
  let tree, requests = arrow_setup g in
  let plain = Arrow.run_one_shot ~tree ~requests () in
  let r = Arrow.run_one_shot_faulty ~plan:Faults.none ~tree ~requests () in
  Alcotest.(check bool) "same outcomes" true (r.result.outcomes = plain.outcomes);
  Alcotest.(check int) "same rounds" plain.rounds r.result.rounds;
  Alcotest.(check int) "same messages" plain.messages r.result.messages;
  Alcotest.(check bool) "all monitors pass" true (Monitor.all_pass r.monitors)

let test_arrow_retry_jitter_reorders_safely () =
  (* Delay spikes reorder physical messages; the retransmit layer's
     sequencing must still present FIFO channels to the arrow. *)
  let g = Gen.path 12 in
  let tree, requests = arrow_setup g in
  let plan =
    Faults.random ~label:"jittery" ~seed:11L ~delay:0.4 ~delay_max:7 ()
  in
  let r = Arrow.run_one_shot_faulty ~retry:true ~plan ~tree ~requests () in
  Alcotest.(check bool) "valid order under reordering" true
    (Result.is_ok r.result.order);
  Alcotest.(check bool) "monitors pass" true (Monitor.all_pass r.monitors)

let test_arrow_duplicate_breaks_safety_without_dedup () =
  (* A doubled queue() re-runs path reversal: the second copy finds the
     issuer's own id and completes the operation as its own
     predecessor. Drops attack liveness; duplicates attack safety. The
     retry layer's sequence numbers dedup the copy and restore
     exactly-once delivery. *)
  let g = Gen.path 12 in
  let tree, requests = arrow_setup g in
  let bare =
    Arrow.run_one_shot_faulty ~plan:(Faults.dup_nth 0) ~tree ~requests ()
  in
  Alcotest.(check bool) "chain consistency violated" false
    (Monitor.safety_ok bare.monitors);
  let healed =
    Arrow.run_one_shot_faulty ~retry:true ~plan:(Faults.dup_nth 0) ~tree
      ~requests ()
  in
  Alcotest.(check bool) "dedup restores safety" true
    (Monitor.all_pass healed.monitors);
  Alcotest.(check bool) "order valid again" true
    (Result.is_ok healed.result.order)

(* ---- central protocols under faults ---- *)

let test_central_count_retry_heals () =
  let g = Gen.star 12 in
  let r =
    Central.run_faulty ~retry:true ~plan:(Faults.drop_nth 2) ~graph:g
      ~requests:(all_requests g) ()
  in
  Alcotest.(check bool) "counts valid" true (Result.is_ok r.result.valid);
  Alcotest.(check bool) "monitors pass" true (Monitor.all_pass r.monitors)

let test_central_queue_retry_heals () =
  let g = Gen.path 12 in
  let r =
    Central_queue.run_faulty ~retry:true ~plan:(Faults.drop_nth 2) ~graph:g
      ~requests:(all_requests g) ()
  in
  Alcotest.(check bool) "order valid" true (Result.is_ok r.result.order);
  Alcotest.(check bool) "monitors pass" true (Monitor.all_pass r.monitors)

(* ---- crash and recovery ---- *)

let test_crash_restart_with_retry_recovers () =
  (* The root of the star dies for a while; with retries and a recovery
     round, every request must eventually be served. *)
  let g = Gen.star 12 in
  let plan =
    Faults.crash_only ~label:"nap"
      [ { Faults.node = 0; at_round = 2; recover_at = Some 20 } ]
  in
  let r =
    Central.run_faulty ~retry:true ~max_retries:8 ~plan ~graph:g
      ~requests:(all_requests g) ()
  in
  Alcotest.(check bool) "counts valid after restart" true
    (Result.is_ok r.result.valid);
  Alcotest.(check bool) "monitors pass" true (Monitor.all_pass r.monitors);
  Alcotest.(check bool) "the crash actually cost messages" true
    (r.injected.crash_dropped > 0)

let test_crash_rejoin_reliable_dedup () =
  (* Crash→rejoin is not amnesia: a node that comes back keeps its
     Reliable sequencing tables (and its unsent outbox) from before the
     outage. Crash a leaf right after its request reaches the root: the
     root's ack is crash-dropped, so after rejoining the leaf's frozen
     retransmit timer fires and re-sends a payload the root has already
     released — which the root must discard as a duplicate (and re-ack)
     rather than count twice. The run completes, the count stays valid,
     and the dedup tally proves the replay actually happened. *)
  let g = Gen.star 8 in
  let plan =
    Faults.crash_only ~label:"nap-replay"
      [ { Faults.node = 3; at_round = 2; recover_at = Some 12 } ]
  in
  let r =
    Central.run_faulty ~retry:true ~ack_timeout:4 ~max_retries:8 ~plan ~graph:g
      ~requests:(all_requests g) ()
  in
  Alcotest.(check bool) "counts valid after rejoin" true
    (Result.is_ok r.result.valid);
  Alcotest.(check bool) "monitors pass" true (Monitor.all_pass r.monitors);
  Alcotest.(check bool) "the ack was lost to the crash" true
    (r.injected.crash_dropped > 0);
  let retry =
    match r.retry with Some s -> s | None -> Alcotest.fail "retry stats missing"
  in
  Alcotest.(check bool) "the rejoined node replayed its payload" true
    (retry.retransmits > 0);
  Alcotest.(check bool) "the replay was deduplicated, not re-counted" true
    (retry.duplicates_ignored > 0);
  Alcotest.(check int) "nothing abandoned" 0 retry.gave_up

let test_permanent_crash_stalls_not_hangs () =
  (* Node 0 (the root) dies forever: the run must end with a structured
     liveness verdict, not spin to the round limit. *)
  let g = Gen.star 12 in
  let plan =
    Faults.crash_only ~label:"dead-root"
      [ { Faults.node = 0; at_round = 1; recover_at = None } ]
  in
  let r =
    Central.run_faulty ~retry:true ~progress_budget:64 ~plan ~graph:g
      ~requests:(all_requests g) ()
  in
  Alcotest.(check bool) "liveness lost" false (Monitor.liveness_ok r.monitors)

(* ---- Run.run_faulty degradation report ---- *)

let test_run_faulty_summary_consistent () =
  let g = Gen.path 16 in
  let requests = List.init 16 (fun i -> i) in
  let plan =
    match Faults.find "drop-first" with Some p -> p | None -> assert false
  in
  let s = Run.run_faulty ~retry:true ~graph:g ~protocol:`Arrow ~plan ~requests () in
  Alcotest.(check string) "plan label surfaces" "drop-first" s.plan;
  Alcotest.(check int) "all complete" s.expected s.completed;
  Alcotest.(check bool) "valid" true s.valid;
  Alcotest.(check bool) "safe and live" true (s.safe && s.live);
  Alcotest.(check bool) "retries cost messages" true (s.extra_messages > 0)

let test_named_registry_resolves () =
  List.iter
    (fun (name, _) ->
      match Faults.find name with
      | Some p ->
          Alcotest.(check string) (name ^ " label") name (Faults.label p)
      | None -> Alcotest.fail ("registry lookup failed for " ^ name))
    Faults.named

let suite =
  [
    Alcotest.test_case "none plan: sync identity" `Quick
      test_none_plan_is_identity_sync;
    Alcotest.test_case "none plan: async identity" `Quick
      test_none_plan_is_identity_async;
    Alcotest.test_case "none plan: zero stats" `Quick test_none_plan_no_stats;
    Alcotest.test_case "random plan deterministic" `Quick
      test_random_plan_deterministic;
    Alcotest.test_case "random plan seed-sensitive" `Quick
      test_random_plan_seed_sensitive;
    Alcotest.test_case "crash plan deterministic" `Quick
      test_crash_plan_deterministic;
    Alcotest.test_case "drop_nth drops exactly one" `Quick
      test_drop_nth_drops_exactly_one;
    Alcotest.test_case "monitors flag duplicated ranks" `Quick
      test_dup_is_not_a_counting_noop;
    Alcotest.test_case "arrow+retry survives single drop" `Quick
      test_arrow_retry_survives_single_drop;
    Alcotest.test_case "arrow w/o retry loses liveness" `Quick
      test_arrow_no_retry_loses_liveness;
    Alcotest.test_case "arrow faulty(none) = plain" `Quick
      test_arrow_faulty_none_matches_plain;
    Alcotest.test_case "arrow+retry under jitter" `Quick
      test_arrow_retry_jitter_reorders_safely;
    Alcotest.test_case "duplicate breaks arrow safety w/o dedup" `Quick
      test_arrow_duplicate_breaks_safety_without_dedup;
    Alcotest.test_case "central counter heals" `Quick
      test_central_count_retry_heals;
    Alcotest.test_case "central queue heals" `Quick
      test_central_queue_retry_heals;
    Alcotest.test_case "crash+restart recovers" `Quick
      test_crash_restart_with_retry_recovers;
    Alcotest.test_case "crash+rejoin replays are deduplicated" `Quick
      test_crash_rejoin_reliable_dedup;
    Alcotest.test_case "permanent crash -> stall verdict" `Quick
      test_permanent_crash_stalls_not_hangs;
    Alcotest.test_case "degradation summary" `Quick
      test_run_faulty_summary_consistent;
    Alcotest.test_case "named registry resolves" `Quick
      test_named_registry_resolves;
  ]
