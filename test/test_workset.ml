(* The engine's worklist primitives: Vec (growable int vector with
   in-place sort) and Fifo (ring-buffer queue). Both are checked
   against their obvious executable models. *)

module Vec = Countq_util.Vec
module Fifo = Countq_util.Fifo

let vec_sort_model =
  QCheck2.Test.make ~count:500 ~name:"Vec.sort = List.sort"
    ~print:QCheck2.Print.(list int)
    QCheck2.Gen.(list (int_range (-1000) 1000))
    (fun xs ->
      let v = Vec.create ~capacity:1 () in
      List.iter (Vec.push v) xs;
      Vec.sort v;
      Vec.to_list v = List.sort compare xs)

let fifo_queue_model =
  (* Random push/pop interleavings behave exactly like Stdlib.Queue. *)
  QCheck2.Test.make ~count:500 ~name:"Fifo = Queue on random ops"
    ~print:QCheck2.Print.(list (option int))
    QCheck2.Gen.(list (option (int_range 0 1000)))
    (fun ops ->
      let f = Fifo.create () in
      let q = Queue.create () in
      List.for_all
        (fun op ->
          match op with
          | Some x ->
              Fifo.push f x;
              Queue.push x q;
              Fifo.length f = Queue.length q
              && Fifo.peek f = Queue.peek q
          | None -> (
              match Fifo.pop f with
              | a -> (
                  match Queue.pop q with
                  | b -> a = b && Fifo.length f = Queue.length q
                  | exception Queue.Empty -> false)
              | exception Fifo.Empty -> (
                  match Queue.pop q with
                  | _ -> false
                  | exception Queue.Empty -> true)))
        ops)

let test_vec_compaction () =
  let v = Vec.create () in
  List.iter (Vec.push v) [ 5; 1; 9; 3; 7 ];
  Vec.sort v;
  Alcotest.(check (list int)) "sorted" [ 1; 3; 5; 7; 9 ] (Vec.to_list v);
  (* Keep the odd-indexed survivors, engine-style. *)
  let w = ref 0 in
  for i = 0 to Vec.length v - 1 do
    if i mod 2 = 1 then begin
      Vec.set v !w (Vec.get v i);
      incr w
    end
  done;
  Vec.truncate v !w;
  Alcotest.(check (list int)) "compacted" [ 3; 7 ] (Vec.to_list v);
  Vec.clear v;
  Alcotest.(check bool) "cleared" true (Vec.is_empty v)

let test_fifo_wraparound () =
  (* Force the head past the ring boundary, then grow: order must be
     preserved across the re-linearisation. *)
  let f = Fifo.create () in
  for i = 0 to 9 do
    Fifo.push f i
  done;
  for i = 0 to 5 do
    Alcotest.(check int) "drain head" i (Fifo.pop f)
  done;
  for i = 10 to 30 do
    Fifo.push f i
  done;
  let seen = ref [] in
  Fifo.iter (fun x -> seen := x :: !seen) f;
  Alcotest.(check (list int))
    "iter in order"
    (List.init 25 (fun i -> i + 6))
    (List.rev !seen);
  let out = ref [] in
  while not (Fifo.is_empty f) do
    out := Fifo.pop f :: !out
  done;
  Alcotest.(check (list int))
    "FIFO across growth"
    (List.init 25 (fun i -> i + 6))
    (List.rev !out)

let suite =
  [
    Helpers.qcheck vec_sort_model;
    Helpers.qcheck fifo_queue_model;
    Alcotest.test_case "Vec compaction idiom" `Quick test_vec_compaction;
    Alcotest.test_case "Fifo wraparound and growth" `Quick test_fifo_wraparound;
  ]
