(* Tests for causal operation spans. *)

module Gen = Countq_topology.Gen
module Graph = Countq_topology.Graph
module Tree = Countq_topology.Tree
module Spanning = Countq_topology.Spanning
module Engine = Countq_simnet.Engine
module Faults = Countq_simnet.Faults
module Metrics = Countq_simnet.Metrics
module Span = Countq_simnet.Span
module Arrow = Countq_arrow.Protocol
module Json = Countq_util.Json

let observed_arrow ?plan g requests =
  let tree = Spanning.best_for_arrow g in
  let graph = Tree.to_graph tree in
  let m = Metrics.create ~graph in
  let res, spans, _ =
    Arrow.run_one_shot_observed ?plan ~metrics:m ~tree ~requests ()
  in
  (graph, res, spans)

(* Causality invariants on arbitrary one-shot arrow runs: a span's
   timeline is inject <= queued < delivered <= ... <= completion, every
   hop crosses a real edge, and there is exactly one span per request. *)
let prop_span_invariants =
  QCheck2.Test.make ~name:"span timelines are causal" ~count:100
    ~print:Helpers.instance_print Helpers.nonempty_instance_gen
    (fun (_, g, requests) ->
      let graph, _, spans = observed_arrow g requests in
      List.map (fun (s : Span.t) -> s.op) spans = List.sort compare requests
      && List.for_all
           (fun (s : Span.t) ->
             let hop_ok (h : Span.hop) =
               Graph.has_edge graph h.h_src h.h_dst
               && h.queued_round >= s.inject_round
               && h.delivered_round > h.queued_round
               && Span.hop_wait h >= 0
             in
             let rec chronological = function
               | (a : Span.hop) :: (b : Span.hop) :: rest ->
                   a.delivered_round <= b.delivered_round
                   && chronological (b :: rest)
               | _ -> true
             in
             let completion_ok =
               match s.completion_round with
               | None -> false (* fault-free one-shot: everyone finishes *)
               | Some c ->
                   c >= s.inject_round
                   && List.for_all
                        (fun (h : Span.hop) -> h.delivered_round <= c)
                        s.hops
             in
             s.inject_round = 0
             && List.for_all hop_ok s.hops
             && chronological s.hops && completion_ok)
           spans)

(* The per-operation delays must re-assemble the engine's aggregate:
   one-shot injection at round 0 makes the sum of span delays equal the
   run's total concurrent delay. *)
let prop_span_sum_check =
  QCheck2.Test.make ~name:"span delays sum to the engine total" ~count:100
    ~print:Helpers.instance_print Helpers.nonempty_instance_gen
    (fun (_, g, requests) ->
      let _, res, spans = observed_arrow g requests in
      let sum =
        List.fold_left
          (fun acc s -> acc + Option.value ~default:0 (Span.delay s))
          0 spans
      in
      sum = res.Arrow.total_delay)

(* Dropping an op's only message strands exactly that span. *)
let test_incomplete_span_surfaces () =
  let _, res, spans =
    observed_arrow ~plan:(Faults.drop_nth 0) (Gen.star 8) (Helpers.all_nodes 8)
  in
  let incomplete =
    List.filter (fun (s : Span.t) -> s.completion_round = None) spans
  in
  Alcotest.(check int) "one op stranded" 1 (List.length incomplete);
  Alcotest.(check int) "spans still cover every request" 8 (List.length spans);
  Alcotest.(check int) "the rest completed" 7 (List.length res.Arrow.outcomes)

(* JSONL export: one parseable object per span, tagged and with the
   delay field exactly on completed spans. *)
let test_jsonl_shape () =
  let _, _, spans = observed_arrow (Gen.path 8) (Helpers.all_nodes 8) in
  let lines =
    List.filter
      (fun l -> l <> "")
      (String.split_on_char '\n' (Span.to_jsonl spans))
  in
  Alcotest.(check int) "one line per span" (List.length spans)
    (List.length lines);
  List.iteri
    (fun i line ->
      match Json.of_string line with
      | Error e -> Alcotest.failf "line %d unparseable: %s" i e
      | Ok j ->
          let int_field name = Option.bind (Json.member name j) Json.to_int in
          Alcotest.(check (option string))
            "type" (Some "span")
            (match Json.member "type" j with
            | Some (Json.Str s) -> Some s
            | _ -> None);
          let s = List.nth spans i in
          Alcotest.(check (option int)) "op" (Some s.Span.op) (int_field "op");
          Alcotest.(check (option int))
            "delay" (Span.delay s) (int_field "delay"))
    lines

let suite =
  [
    Helpers.qcheck prop_span_invariants;
    Helpers.qcheck prop_span_sum_check;
    Alcotest.test_case "incomplete span surfaces" `Quick
      test_incomplete_span_surfaces;
    Alcotest.test_case "jsonl shape" `Quick test_jsonl_shape;
  ]
