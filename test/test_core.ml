(* Tests for the core facade: tables, uniform drivers, and the
   experiment registry (quick mode). *)

module Gen = Countq_topology.Gen
module Table = Countq.Table
module Run = Countq.Run
module Experiments = Countq.Experiments

(* ---- tables ---- *)

let sample_table () =
  Table.make ~id:"T" ~title:"demo" ~paper_ref:"none"
    ~headers:[ "a"; "b" ]
    ~notes:[ "a note" ]
    [ [ "1"; "2" ]; [ "30"; "four" ] ]

let test_table_shape_validated () =
  Alcotest.check_raises "ragged row"
    (Invalid_argument "Table.make T: row 0 has 1 cells, expected 2") (fun () ->
      ignore
        (Table.make ~id:"T" ~title:"t" ~paper_ref:"r" ~headers:[ "a"; "b" ]
           [ [ "only" ] ]))

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_table_render_contains_cells () =
  let s = Format.asprintf "%a" Table.pp (sample_table ()) in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (frag ^ " present") true (contains_substring s frag))
    [ "demo"; "four"; "a note" ]

let test_table_csv () =
  let csv = Table.to_csv (sample_table ()) in
  Alcotest.(check string) "csv" "a,b\n1,2\n30,four\n" csv

let test_table_csv_quoting () =
  let t =
    Table.make ~id:"Q" ~title:"q" ~paper_ref:"r" ~headers:[ "x" ]
      [ [ "has,comma" ]; [ "has\"quote" ] ]
  in
  Alcotest.(check string) "quoted" "x\n\"has,comma\"\n\"has\"\"quote\"\n"
    (Table.to_csv t)

let test_table_markdown () =
  let md = Table.to_markdown (sample_table ()) in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (frag ^ " present") true (contains_substring md frag))
    [ "## T — demo"; "| a | b |"; "|---|---|"; "| 30 | four |"; "- a note" ]

let test_table_markdown_escapes_pipes () =
  let t =
    Table.make ~id:"P" ~title:"p" ~paper_ref:"r" ~headers:[ "x" ]
      [ [ "a|b" ] ]
  in
  Alcotest.(check bool) "escaped" true
    (contains_substring (Table.to_markdown t) "a\\|b")

let test_cells () =
  Alcotest.(check string) "int" "42" (Table.cell_int 42);
  Alcotest.(check string) "float" "3.14" (Table.cell_float 3.142);
  Alcotest.(check string) "float decimals" "3.1416"
    (Table.cell_float ~decimals:4 3.14159);
  Alcotest.(check string) "true" "yes" (Table.cell_bool true);
  Alcotest.(check string) "false" "NO" (Table.cell_bool false)

(* ---- drivers ---- *)

let test_counting_driver_all_protocols () =
  let g = Gen.square_mesh 4 in
  let requests = Helpers.all_nodes 16 in
  List.iter
    (fun protocol ->
      let s = Run.counting ~graph:g ~protocol ~requests () in
      Alcotest.(check bool)
        (Run.counting_protocol_name protocol ^ " valid")
        true s.valid;
      Alcotest.(check int) "k" 16 s.k;
      Alcotest.(check int) "normalisation"
        (s.total_delay * s.expansion)
        s.normalized_delay)
    [ `Central; `Combining; `Diffracting; `Funnel; `Network; `Sweep ]

let test_queuing_driver_all_protocols () =
  let g = Gen.square_mesh 4 in
  let requests = [ 2; 7; 9; 14 ] in
  List.iter
    (fun protocol ->
      let s = Run.queuing ~graph:g ~protocol ~requests () in
      Alcotest.(check bool)
        (Run.queuing_protocol_name protocol ^ " valid")
        true s.valid;
      Alcotest.(check int) "k" 4 s.k)
    [ `Arrow; `Arrow_notify; `Central; `Token_ring ]

let test_best_counting_picks_minimum () =
  let g = Gen.complete 32 in
  let requests = Helpers.all_nodes 32 in
  let best = Run.best_counting ~graph:g ~requests () in
  List.iter
    (fun protocol ->
      let s = Run.counting ~graph:g ~protocol ~requests () in
      Alcotest.(check bool)
        (s.protocol ^ " not cheaper than best")
        true
        (s.normalized_delay >= best.normalized_delay))
    [ `Central; `Combining; `Network; `Sweep ]

let test_best_counting_covers_balancers () =
  (* The balancer protocols run inside best_counting at the adaptive
     width; rerunning them standalone at that width must not beat it. *)
  let g = Gen.complete 32 in
  let requests = Helpers.all_nodes 32 in
  let best = Run.best_counting ~graph:g ~requests () in
  let width =
    Countq_counting.Funnel.adaptive_width ~n:32 ~concurrency:32
  in
  List.iter
    (fun protocol ->
      let s = Run.counting ~width ~graph:g ~protocol ~requests () in
      Alcotest.(check bool)
        (s.protocol ^ " not cheaper than best")
        true
        (s.normalized_delay >= best.normalized_delay))
    [ `Diffracting; `Funnel ]

(* ---- experiments ---- *)

let test_registry_complete () =
  Alcotest.(check int) "32 experiments" 32 (List.length Experiments.all);
  List.iteri
    (fun i (s : Experiments.spec) ->
      Alcotest.(check string) "ids in order"
        (Printf.sprintf "E%d" (i + 1))
        s.id)
    Experiments.all

let test_find () =
  (match Experiments.find "e9" with
  | Some s -> Alcotest.(check string) "case-insensitive" "E9" s.id
  | None -> Alcotest.fail "E9 must exist");
  Alcotest.(check bool) "unknown" true (Experiments.find "E99" = None)

let test_all_experiments_quick () =
  List.iter
    (fun (s : Experiments.spec) ->
      let t = s.run ~quick:true () in
      Alcotest.(check bool) (s.id ^ " has rows") true (List.length t.rows > 0);
      Alcotest.(check string) (s.id ^ " id matches") s.id t.id)
    Experiments.all

let test_experiment_checks_pass () =
  (* Every yes/NO cell in the quick tables must read "yes": these cells
     encode the paper's inequalities. One exception: E27's
     queue/arrow-static rows are the sacrificial baseline — the static
     arrow losing operations under churn is the experiment's claim, so
     a NO there is the expected shape (test_dynamic.ml pins it) while
     a NO on any surviving protocol is still a failure. *)
  List.iter
    (fun (s : Experiments.spec) ->
      let t = s.run ~quick:true () in
      List.iter
        (fun row ->
          if not (s.id = "E27" && List.mem "queue/arrow-static" row) then
            List.iter
              (fun cell ->
                if cell = "NO" then
                  Alcotest.fail
                    (Printf.sprintf "%s has a failing check cell" s.id))
              row)
        t.rows)
    Experiments.all

let test_experiments_deterministic () =
  (* Every table is a pure function of the committed seeds: rendering
     an experiment twice must give byte-identical output. *)
  List.iter
    (fun id ->
      match Experiments.find id with
      | None -> Alcotest.fail (id ^ " missing")
      | Some s ->
          let once = Format.asprintf "%a" Table.pp (s.run ~quick:true ()) in
          let again = Format.asprintf "%a" Table.pp (s.run ~quick:true ()) in
          Alcotest.(check string) (id ^ " deterministic") once again)
    [ "E5"; "E9"; "E12"; "E18" ]

let suite =
  [
    Alcotest.test_case "table shape validated" `Quick test_table_shape_validated;
    Alcotest.test_case "experiments deterministic" `Quick
      test_experiments_deterministic;
    Alcotest.test_case "table render" `Quick test_table_render_contains_cells;
    Alcotest.test_case "table csv" `Quick test_table_csv;
    Alcotest.test_case "table csv quoting" `Quick test_table_csv_quoting;
    Alcotest.test_case "table markdown" `Quick test_table_markdown;
    Alcotest.test_case "table markdown pipes" `Quick test_table_markdown_escapes_pipes;
    Alcotest.test_case "cell formatting" `Quick test_cells;
    Alcotest.test_case "counting drivers" `Quick test_counting_driver_all_protocols;
    Alcotest.test_case "queuing drivers" `Quick test_queuing_driver_all_protocols;
    Alcotest.test_case "best counting" `Quick test_best_counting_picks_minimum;
    Alcotest.test_case "best counting covers balancers" `Quick
      test_best_counting_covers_balancers;
    Alcotest.test_case "registry complete" `Quick test_registry_complete;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "all experiments quick" `Quick test_all_experiments_quick;
    Alcotest.test_case "experiment checks pass" `Quick test_experiment_checks_pass;
  ]
