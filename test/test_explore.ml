(* Exhaustive-schedule verification: safety on EVERY interleaving of
   small instances, not just the sampled ones — plus the soundness pin
   for the checker's own partial-order reduction (reduced and
   unreduced explorers must agree on the reachable terminal set). *)

module Gen = Countq_topology.Gen
module Tree = Countq_topology.Tree
module Spanning = Countq_topology.Spanning
module Engine = Countq_simnet.Engine
module Explore = Countq_simnet.Explore
module Arrow = Countq_arrow
module Central = Countq_counting.Central
module Counts = Countq_counting.Counts

let stats_of = function
  | Explore.Exhaustive s | Explore.Budget_exhausted s -> s

let check_exhaustive outcome =
  match outcome with
  | Explore.Exhaustive s -> s
  | Explore.Budget_exhausted _ -> Alcotest.fail "budget unexpectedly exhausted"

let arrow_check requests completions =
  let outcomes =
    List.map
      (fun (c : _ Engine.completion) ->
        let op, pred = c.value in
        { Arrow.Types.op; pred; found_at = c.node; round = c.round })
      completions
  in
  if List.length outcomes <> List.length requests then
    Error "wrong number of completions"
  else
    match Arrow.Order.chain outcomes with
    | Ok _ -> Ok ()
    | Error e -> Error (Format.asprintf "%a" Arrow.Order.pp_error e)

let explore_arrow ?max_configs ?reduce ?pool g requests =
  let tree = Spanning.best_for_arrow g in
  let protocol = Arrow.Protocol.one_shot_protocol ~tree ~requests () in
  Explore.run ~graph:(Tree.to_graph tree) ~protocol
    ~check:(arrow_check requests) ?max_configs ?reduce ?pool ()

let test_arrow_all_schedules_path () =
  let stats = check_exhaustive (explore_arrow (Gen.path 4) [ 1; 2; 3 ]) in
  Alcotest.(check bool) "nontrivial space" true (stats.explored > 10);
  Alcotest.(check bool) "terminals checked" true (stats.terminal >= 1)

let test_arrow_all_schedules_star () =
  let stats = check_exhaustive (explore_arrow (Gen.star 4) [ 1; 2; 3 ]) in
  Alcotest.(check bool) "explored" true (stats.explored > 10);
  Alcotest.(check bool) "canonicalisation dedups" true (stats.dedup_hits > 0)

let test_arrow_all_schedules_mesh_corner () =
  (* 2x2 mesh, all four requesting: concurrent path reversal from every
     corner, every interleaving. *)
  let stats =
    check_exhaustive (explore_arrow (Gen.square_mesh 2) [ 0; 1; 2; 3 ])
  in
  Alcotest.(check bool) "explored" true (stats.explored > 10);
  Alcotest.(check bool) "orderings checked" true (stats.terminal >= 6)

let test_arrow_all_schedules_deeper_path () =
  (* Node 0 is the tail (local completion), so the space is small but
     the two travelling messages still interleave. *)
  let stats = check_exhaustive (explore_arrow (Gen.path 5) [ 0; 2; 4 ]) in
  Alcotest.(check bool) "explored" true (stats.explored >= 10);
  Alcotest.(check bool) "interleavings reach terminals" true
    (stats.terminal >= 2)

let test_arrow_six_nodes () =
  (* A 6-node instance at the default budget: the canonical encoding
     and the reduction are what make this routine. *)
  let stats =
    check_exhaustive (explore_arrow (Gen.star 6) [ 1; 2; 3; 4; 5 ])
  in
  Alcotest.(check bool) "terminals checked" true (stats.terminal >= 1)

let counting_check requests completions =
  let outcomes =
    List.map
      (fun (c : _ Engine.completion) ->
        let node, count = c.value in
        { Counts.node; count; round = c.round })
      completions
  in
  match Counts.validate ~requests outcomes with
  | Ok () -> Ok ()
  | Error e -> Error (Format.asprintf "%a" Counts.pp_error e)

let test_central_all_schedules () =
  List.iter
    (fun (g, requests) ->
      let protocol = Central.one_shot_protocol ~graph:g ~requests () in
      let stats =
        check_exhaustive
          (Explore.run ~graph:g ~protocol ~check:(counting_check requests) ())
      in
      Alcotest.(check bool) "terminals checked" true (stats.terminal >= 1))
    [
      (Gen.star 4, [ 1; 2; 3 ]);
      (Gen.path 4, [ 0; 2; 3 ]);
      (Gen.complete 4, [ 0; 1; 2; 3 ]);
    ]

let test_violation_detected () =
  (* A deliberately broken "counter": every requester gets rank 1. The
     explorer must find the violation. *)
  let g = Gen.star 3 in
  let protocol =
    {
      Engine.name = "broken";
      initial_state = (fun _ -> ());
      on_start =
        (fun ~node s ->
          if node > 0 then (s, [ Engine.Send (0, node) ]) else (s, []));
      on_receive =
        (fun ~round:_ ~node:_ ~src:_ origin s ->
          (s, [ Engine.Complete (origin, 1) ]));
      on_tick = Engine.no_tick;
    }
  in
  match
    Explore.run ~graph:g ~protocol ~check:(counting_check [ 1; 2 ]) ()
  with
  | exception Explore.Violation _ -> ()
  | _ -> Alcotest.fail "violation must be detected"

let test_fifo_preserved_in_all_interleavings () =
  (* Node 0 sends "a" then "b" to node 1 on one link: in EVERY
     interleaving node 1 must complete "a" before "b" (completions are
     recorded in event order, so "a" always precedes "b"). *)
  let protocol =
    {
      Engine.name = "fifo-check";
      initial_state = (fun _ -> ());
      on_start =
        (fun ~node s ->
          if node = 0 then (s, [ Engine.Send (1, "a"); Engine.Send (1, "b") ])
          else (s, []));
      on_receive =
        (fun ~round:_ ~node:_ ~src:_ msg s -> (s, [ Engine.Complete msg ]));
      on_tick = Engine.no_tick;
    }
  in
  let check completions =
    match List.map (fun (c : _ Engine.completion) -> c.value) completions with
    | [ "a"; "b" ] -> Ok ()
    | other -> Error (String.concat "," other)
  in
  let stats =
    check_exhaustive (Explore.run ~graph:(Gen.path 2) ~protocol ~check ())
  in
  Alcotest.(check bool) "terminals checked" true (stats.terminal >= 1)

let test_config_budget () =
  (* Budget exhaustion is a reported outcome with partial stats, not an
     Invalid_argument: the caller asked a well-formed question that was
     too big, which is not a usage error. *)
  let g = Gen.complete 4 in
  match explore_arrow ~max_configs:5 g [ 0; 1; 2; 3 ] with
  | Explore.Budget_exhausted stats ->
      Alcotest.(check bool) "some progress" true (stats.explored >= 1);
      Alcotest.(check bool) "budget respected" true (stats.explored <= 5)
  | Explore.Exhaustive _ -> Alcotest.fail "budget must exhaust at 5 configs"

let test_monotone_event_rounds () =
  (* Completion [round] stamps are a monotone event counter along the
     representative execution, so within every terminal's completion
     list (occurrence order) they never decrease. *)
  let requests = [ 1; 2; 3 ] in
  let check completions =
    let rounds = List.map (fun (c : _ Engine.completion) -> c.round) completions in
    let rec sorted = function
      | a :: (b :: _ as rest) -> a <= b && sorted rest
      | _ -> true
    in
    if sorted rounds then arrow_check requests completions
    else Error "non-monotone rounds"
  in
  let tree = Spanning.best_for_arrow (Gen.star 4) in
  let protocol = Arrow.Protocol.one_shot_protocol ~tree ~requests () in
  let stats =
    check_exhaustive
      (Explore.run ~graph:(Tree.to_graph tree) ~protocol ~check ())
  in
  Alcotest.(check bool) "terminals checked" true (stats.terminal >= 1)

(* ------------------------------------------------------------------ *)
(* Soundness of the partial-order reduction: on random 3-4 node
   instances the reduced explorer must reach exactly the terminal
   completion sequences of the full interleaving graph. Completions
   are compared without their round stamps (representative-execution
   timing, not state). *)

let terminal_set ~reduce ~graph ~protocol =
  let terminals = ref [] in
  let check completions =
    (* One string per terminal (structural serialisation of the
       round-stripped completion sequence) so terminal sets of
       different protocols share a comparable type. *)
    terminals :=
      Marshal.to_string
        (List.map
           (fun (c : _ Engine.completion) -> (c.node, c.value))
           completions)
        [ Marshal.No_sharing ]
      :: !terminals;
    Ok ()
  in
  (match Explore.run ~graph ~protocol ~check ~reduce () with
  | Explore.Exhaustive _ -> ()
  | Explore.Budget_exhausted _ -> Alcotest.fail "pin instance too large");
  List.sort compare !terminals

let por_instance_gen =
  let open QCheck2.Gen in
  let* pick = int_range 0 3 in
  let name, g =
    match pick with
    | 0 -> ("path-4", Gen.path 4)
    | 1 -> ("star-4", Gen.star 4)
    | 2 -> ("complete-3", Gen.complete 3)
    | _ -> ("path-3", Gen.path 3)
  in
  let n = Countq_topology.Graph.n g in
  let* mask = list_size (return n) bool in
  let requests =
    List.filteri (fun i _ -> List.nth mask i) (List.init n (fun i -> i))
  in
  let requests = if requests = [] then [ n - 1 ] else requests in
  let* proto = int_range 0 1 in
  return (name, g, requests, (if proto = 0 then `Arrow else `Central))

let prop_por_sound =
  QCheck2.Test.make ~name:"POR: reduced = unreduced terminal sets" ~count:40
    ~print:(fun (name, _, requests, proto) ->
      Printf.sprintf "%s R={%s} %s" name
        (String.concat "," (List.map string_of_int requests))
        (match proto with `Arrow -> "arrow" | `Central -> "central"))
    por_instance_gen
    (fun (_, g, requests, proto) ->
      let graph, run_both =
        match proto with
        | `Arrow ->
            let tree = Spanning.best_for_arrow g in
            let graph = Tree.to_graph tree in
            ( graph,
              fun reduce ->
                terminal_set ~reduce ~graph
                  ~protocol:(Arrow.Protocol.one_shot_protocol ~tree ~requests ())
            )
        | `Central ->
            ( g,
              fun reduce ->
                terminal_set ~reduce ~graph:g
                  ~protocol:(Central.one_shot_protocol ~graph:g ~requests ()) )
      in
      ignore graph;
      run_both true = run_both false)

let test_parallel_frontier_identical () =
  (* Same instance, with and without a worker pool: stats and the
     outcome must be bit-identical (the pool only parallelises each
     layer's expansion; dedup and counting stay sequential). *)
  let g = Gen.star 5 in
  let requests = [ 1; 2; 3; 4 ] in
  let sequential = explore_arrow g requests in
  let pool = Countq_util.Parallel.pool ~jobs:3 in
  let parallel = explore_arrow ~pool g requests in
  Alcotest.(check bool) "same outcome" true (sequential = parallel);
  Alcotest.(check bool) "nontrivial" true ((stats_of sequential).explored > 50)

let suite =
  [
    Alcotest.test_case "arrow: all schedules on a path" `Quick
      test_arrow_all_schedules_path;
    Alcotest.test_case "arrow: all schedules on a star" `Quick
      test_arrow_all_schedules_star;
    Alcotest.test_case "arrow: all schedules on a 2x2 mesh" `Quick
      test_arrow_all_schedules_mesh_corner;
    Alcotest.test_case "arrow: all schedules, deeper path" `Quick
      test_arrow_all_schedules_deeper_path;
    Alcotest.test_case "arrow: six nodes in budget" `Quick
      test_arrow_six_nodes;
    Alcotest.test_case "central counter: all schedules" `Quick
      test_central_all_schedules;
    Alcotest.test_case "violations detected" `Quick test_violation_detected;
    Alcotest.test_case "FIFO preserved everywhere" `Quick
      test_fifo_preserved_in_all_interleavings;
    Alcotest.test_case "config budget" `Quick test_config_budget;
    Alcotest.test_case "monotone event rounds" `Quick
      test_monotone_event_rounds;
    Helpers.qcheck prop_por_sound;
    Alcotest.test_case "parallel frontier identical" `Quick
      test_parallel_frontier_identical;
  ]
