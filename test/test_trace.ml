(* Tests for protocol tracing. *)

module Gen = Countq_topology.Gen
module Engine = Countq_simnet.Engine
module Trace = Countq_simnet.Trace

let pinger count =
  {
    Engine.name = "pinger";
    initial_state = (fun _ -> ());
    on_start =
      (fun ~node s ->
        if node = 0 then (s, List.init count (fun i -> Engine.Send (1, i)))
        else (s, []));
    on_receive = (fun ~round:_ ~node:_ ~src:_ msg s -> (s, [ Engine.Complete msg ]));
    on_tick = Engine.no_tick;
  }

let run_traced count =
  let protocol, events = Trace.instrument (pinger count) in
  let res =
    Engine.run ~graph:(Gen.path 2) ~config:Engine.default_config ~protocol ()
  in
  (res, events ())

let test_events_recorded () =
  let res, events = run_traced 3 in
  Alcotest.(check int) "behaviour unchanged" 3 (Engine.completion_count res);
  let sends =
    List.length
      (List.filter (function Trace.Queued_send _ -> true | _ -> false) events)
  in
  let receives =
    List.length
      (List.filter (function Trace.Received _ -> true | _ -> false) events)
  in
  let completes =
    List.length
      (List.filter (function Trace.Completed _ -> true | _ -> false) events)
  in
  Alcotest.(check int) "sends" 3 sends;
  Alcotest.(check int) "receives" 3 receives;
  Alcotest.(check int) "completes" 3 completes

let test_event_chronology () =
  let _, events = run_traced 2 in
  let rounds =
    List.map
      (function
        | Trace.Received { round; _ }
        | Trace.Queued_send { round; _ }
        | Trace.Completed { round; _ } ->
            round)
      events
  in
  Alcotest.(check (list int)) "chronological" (List.sort compare rounds) rounds

let test_receive_precedes_actions () =
  let _, events = run_traced 1 in
  match events with
  | [ Trace.Queued_send { round = 0; node = 0; dst = 1 };
      Trace.Received { round = 1; node = 1; src = 0 };
      Trace.Completed { round = 1; node = 1 } ] ->
      ()
  | _ ->
      Alcotest.fail
        (String.concat "; "
           (List.map (Format.asprintf "%a" Trace.pp_event) events))

let test_render_shapes () =
  let _, events = run_traced 1 in
  let s = Trace.render ~n:2 events in
  let lines = String.split_on_char '\n' s in
  (* header + 2 node rows + trailing blank *)
  Alcotest.(check int) "line count" 4 (List.length lines);
  let node1 = List.nth lines 2 in
  Alcotest.(check bool) "completion drawn" true (String.contains node1 '*')

let test_render_empty () =
  let s = Trace.render ~n:1 [] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_tick_instrumented () =
  let base =
    {
      Engine.name = "tick";
      initial_state = (fun _ -> ());
      on_start = (fun ~node:_ s -> (s, []));
      on_receive = (fun ~round:_ ~node:_ ~src:_ () s -> (s, []));
      on_tick =
        Some
          (fun ~round ~node s ->
            if node = 0 && round = 2 then (s, [ Engine.Send (1, ()) ]) else (s, []));
    }
  in
  let protocol, events = Trace.instrument base in
  let config = { Engine.default_config with min_rounds = 3 } in
  ignore (Engine.run ~graph:(Gen.path 2) ~config ~protocol ());
  let has_tick_send =
    List.exists
      (function Trace.Queued_send { round = 2; node = 0; dst = 1 } -> true | _ -> false)
      (events ())
  in
  Alcotest.(check bool) "tick send recorded" true has_tick_send

let test_jsonl_round_trip () =
  let _, events = run_traced 3 in
  (match Trace.of_jsonl (Trace.to_jsonl events) with
  | Ok back -> Alcotest.(check bool) "round-trips" true (back = events)
  | Error e -> Alcotest.failf "round-trip failed: %s" e);
  (* Blank lines are tolerated. *)
  match Trace.of_jsonl ("\n" ^ Trace.to_jsonl events ^ "\n\n") with
  | Ok back -> Alcotest.(check bool) "blank lines skipped" true (back = events)
  | Error e -> Alcotest.failf "blank-line parse failed: %s" e

let test_jsonl_rejects_garbage () =
  (match Trace.of_jsonl "not json at all" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  match Trace.of_jsonl "{\"type\":\"warp\",\"round\":1}" with
  | Ok _ -> Alcotest.fail "unknown event type accepted"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "events recorded" `Quick test_events_recorded;
    Alcotest.test_case "jsonl round trip" `Quick test_jsonl_round_trip;
    Alcotest.test_case "jsonl rejects garbage" `Quick test_jsonl_rejects_garbage;
    Alcotest.test_case "chronological" `Quick test_event_chronology;
    Alcotest.test_case "exact event stream" `Quick test_receive_precedes_actions;
    Alcotest.test_case "render shapes" `Quick test_render_shapes;
    Alcotest.test_case "render empty" `Quick test_render_empty;
    Alcotest.test_case "tick instrumented" `Quick test_tick_instrumented;
  ]
