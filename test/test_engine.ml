(* Tests for the synchronous engine: the Section 2.1 model rules. *)

module Engine = Countq_simnet.Engine
module Graph = Countq_topology.Graph
module Gen = Countq_topology.Gen

(* A protocol in which node 0 sends [count] pings to node 1 on a
   2-vertex graph; node 1 completes once per ping. *)
let pinger count =
  {
    Engine.name = "pinger";
    initial_state = (fun _ -> ());
    on_start =
      (fun ~node s ->
        if node = 0 then (s, List.init count (fun i -> Engine.Send (1, i)))
        else (s, []));
    on_receive = (fun ~round:_ ~node:_ ~src:_ msg s -> (s, [ Engine.Complete msg ]));
    on_tick = Engine.no_tick;
  }

let run_pinger ?(config = Engine.default_config) count =
  Engine.run ~graph:(Gen.path 2) ~config ~protocol:(pinger count) ()

let test_single_hop_delay () =
  let res = run_pinger 1 in
  Alcotest.(check int) "one completion" 1 (Engine.completion_count res);
  Alcotest.(check int) "delivered in round 1" 1 (Engine.total_delay res)

let test_send_capacity_serialises () =
  (* With capacity 1/1 the k messages drain one per round: delays are
     1, 2, ..., k. *)
  let k = 5 in
  let res = run_pinger k in
  Alcotest.(check int) "total = k(k+1)/2" (k * (k + 1) / 2)
    (Engine.total_delay res);
  Alcotest.(check int) "rounds = k" k res.rounds

let test_wider_send_capacity () =
  (* Sending 2 per round but receiving 1 per round still serialises at
     the receiver; receive capacity 2 with send capacity 2 halves it. *)
  let config =
    { Engine.default_config with send_capacity = 2; receive_capacity = 2 }
  in
  let res = run_pinger ~config 4 in
  Alcotest.(check int) "total = 1+1+2+2" 6 (Engine.total_delay res);
  Alcotest.(check int) "expansion recorded" 2 res.expansion

let test_fifo_per_link () =
  (* Messages on one link must be delivered in send order. *)
  let protocol =
    {
      Engine.name = "fifo";
      initial_state = (fun _ -> ());
      on_start =
        (fun ~node s ->
          if node = 0 then (s, [ Engine.Send (1, 10); Engine.Send (1, 20) ])
          else (s, []));
      on_receive = (fun ~round:_ ~node:_ ~src:_ msg s -> (s, [ Engine.Complete msg ]));
      on_tick = Engine.no_tick;
    }
  in
  let res =
    Engine.run ~graph:(Gen.path 2) ~config:Engine.default_config ~protocol ()
  in
  let values = List.map (fun (c : _ Engine.completion) -> c.value) res.completions in
  Alcotest.(check (list int)) "FIFO order" [ 10; 20 ] values

let test_send_to_non_neighbor_rejected () =
  let protocol =
    {
      Engine.name = "bad";
      initial_state = (fun _ -> ());
      on_start =
        (fun ~node s -> if node = 0 then (s, [ Engine.Send (2, ()) ]) else (s, []));
      on_receive = (fun ~round:_ ~node:_ ~src:_ _ s -> (s, []));
      on_tick = Engine.no_tick;
    }
  in
  Alcotest.check_raises "non-neighbour"
    (Engine.Not_a_neighbor { node = 0; dst = 2 })
    (fun () ->
      ignore
        (Engine.run ~graph:(Gen.path 3) ~config:Engine.default_config ~protocol ()))

let test_round_limit () =
  (* Two nodes ping-pong forever. *)
  let protocol =
    {
      Engine.name = "pingpong";
      initial_state = (fun _ -> ());
      on_start =
        (fun ~node s -> if node = 0 then (s, [ Engine.Send (1, ()) ]) else (s, []));
      on_receive = (fun ~round:_ ~node:_ ~src msg s -> (s, [ Engine.Send (src, msg) ]));
      on_tick = Engine.no_tick;
    }
  in
  let config = { Engine.default_config with max_rounds = 50 } in
  match Engine.run ~graph:(Gen.path 2) ~config ~protocol () with
  | _ -> Alcotest.fail "expected Round_limit_exceeded"
  | exception Engine.Round_limit_exceeded
        { limit; outstanding; queued; held; busiest } ->
      Alcotest.(check int) "limit reported" 50 limit;
      (* The ping-pong message must show up in the pending summary. *)
      Alcotest.(check int) "one message pending" 1 (outstanding + queued + held);
      (* ... and the busiest-node summary must point at its holder with
         the same total load. *)
      Alcotest.(check int) "busiest load totals the summary" 1
        (List.fold_left (fun acc (_, l) -> acc + l) 0 busiest)

let test_one_receive_per_round_contention () =
  (* Star centre: k leaves send simultaneously; centre can absorb only
     one per round, so the completion rounds are exactly 1..k. *)
  let n = 9 in
  let protocol =
    {
      Engine.name = "star-contention";
      initial_state = (fun _ -> ());
      on_start =
        (fun ~node s -> if node > 0 then (s, [ Engine.Send (0, node) ]) else (s, []));
      on_receive = (fun ~round:_ ~node:_ ~src:_ msg s -> (s, [ Engine.Complete msg ]));
      on_tick = Engine.no_tick;
    }
  in
  let res =
    Engine.run ~graph:(Gen.star n) ~config:Engine.default_config ~protocol ()
  in
  let rounds =
    List.map (fun (c : _ Engine.completion) -> c.round) res.completions
  in
  Alcotest.(check (list int)) "serialised rounds"
    (List.init (n - 1) (fun i -> i + 1))
    (List.sort compare rounds);
  (* Each leaf has its own link, so per-link backlog stays 1 here; the
     contention shows up purely as serialised delivery rounds. *)
  Alcotest.(check int) "per-link backlog" 1 res.max_link_backlog

let test_backlog_on_one_link () =
  (* A fast sender into a capacity-1 receiver piles messages up on the
     single link: backlog must exceed 1. *)
  let protocol =
    {
      Engine.name = "backlog";
      initial_state = (fun _ -> ());
      on_start =
        (fun ~node s ->
          if node = 0 then (s, List.init 6 (fun i -> Engine.Send (1, i)))
          else (s, []));
      on_receive = (fun ~round:_ ~node:_ ~src:_ msg s -> (s, [ Engine.Complete msg ]));
      on_tick = Engine.no_tick;
    }
  in
  let config = { Engine.default_config with send_capacity = 3 } in
  let res = Engine.run ~graph:(Gen.path 2) ~config ~protocol () in
  Alcotest.(check bool) "backlog grows" true (res.max_link_backlog >= 2);
  Alcotest.(check int) "all delivered" 6 (Engine.completion_count res)

let test_round_robin_fairness () =
  (* Two flooding senders into one sink: round robin must interleave. *)
  let protocol =
    {
      Engine.name = "fairness";
      initial_state = (fun _ -> ());
      on_start =
        (fun ~node s ->
          if node = 1 || node = 2 then
            (s, List.init 3 (fun _ -> Engine.Send (0, node)))
          else (s, []));
      on_receive = (fun ~round:_ ~node:_ ~src:_ msg s -> (s, [ Engine.Complete msg ]));
      on_tick = Engine.no_tick;
    }
  in
  let res =
    Engine.run ~graph:(Gen.star 3) ~config:Engine.default_config ~protocol ()
  in
  let senders =
    List.map (fun (c : _ Engine.completion) -> c.value) res.completions
  in
  (* Strict alternation 1,2,1,2,1,2 under round robin. *)
  Alcotest.(check (list int)) "alternating" [ 1; 2; 1; 2; 1; 2 ] senders

let test_lowest_sender_first_starves () =
  let protocol =
    {
      Engine.name = "starve";
      initial_state = (fun _ -> ());
      on_start =
        (fun ~node s ->
          if node = 1 || node = 2 then
            (s, List.init 2 (fun _ -> Engine.Send (0, node)))
          else (s, []));
      on_receive = (fun ~round:_ ~node:_ ~src:_ msg s -> (s, [ Engine.Complete msg ]));
      on_tick = Engine.no_tick;
    }
  in
  let config = { Engine.default_config with arbiter = Engine.Lowest_sender_first } in
  let res = Engine.run ~graph:(Gen.star 3) ~config ~protocol () in
  let senders =
    List.map (fun (c : _ Engine.completion) -> c.value) res.completions
  in
  Alcotest.(check (list int)) "node 1 drains first" [ 1; 1; 2; 2 ] senders

let test_custom_arbiter () =
  (* Always prefer the largest sender id. *)
  let config =
    {
      Engine.default_config with
      arbiter =
        Engine.Custom
          (fun ~round:_ ~node:_ ~candidates ->
            List.fold_left max (List.hd candidates) candidates);
    }
  in
  let protocol =
    {
      Engine.name = "custom";
      initial_state = (fun _ -> ());
      on_start =
        (fun ~node s ->
          if node > 0 then (s, [ Engine.Send (0, node) ]) else (s, []));
      on_receive = (fun ~round:_ ~node:_ ~src:_ msg s -> (s, [ Engine.Complete msg ]));
      on_tick = Engine.no_tick;
    }
  in
  let res = Engine.run ~graph:(Gen.star 4) ~config ~protocol () in
  let senders =
    List.map (fun (c : _ Engine.completion) -> c.value) res.completions
  in
  Alcotest.(check (list int)) "descending ids" [ 3; 2; 1 ] senders

let test_on_tick_injection () =
  (* A node issues one message at tick round 3; the neighbour receives
     it in round 4 (issue at t enters the network at t+1). *)
  let protocol =
    {
      Engine.name = "tick";
      initial_state = (fun _ -> ());
      on_start = (fun ~node:_ s -> (s, []));
      on_receive = (fun ~round:_ ~node:_ ~src:_ msg s -> (s, [ Engine.Complete msg ]));
      on_tick =
        Some
          (fun ~round ~node s ->
            if node = 0 && round = 3 then (s, [ Engine.Send (1, 99) ]) else (s, []));
    }
  in
  let config = { Engine.default_config with min_rounds = 4 } in
  let res = Engine.run ~graph:(Gen.path 2) ~config ~protocol () in
  match res.completions with
  | [ c ] ->
      Alcotest.(check int) "value" 99 c.value;
      Alcotest.(check int) "received round 4" 4 c.round
  | _ -> Alcotest.fail "expected exactly one completion"

let test_quiescence_counts () =
  let res = run_pinger 3 in
  Alcotest.(check int) "messages" 3 res.messages;
  Alcotest.(check int) "completions" 3 (Engine.completion_count res);
  Alcotest.(check int) "max delay" 3 (Engine.max_delay res)

let test_propagation_speed () =
  (* Information travels exactly one hop per round: flooding a path of
     length d completes at round d (Theorem 3.6's latency semantics). *)
  let n = 12 in
  let protocol =
    {
      Engine.name = "wavefront";
      initial_state = (fun _ -> ());
      on_start =
        (fun ~node s -> if node = 0 then (s, [ Engine.Send (1, ()) ]) else (s, []));
      on_receive =
        (fun ~round:_ ~node ~src:_ () s ->
          let fwd =
            if node + 1 < n then [ Engine.Send (node + 1, ()) ] else []
          in
          (s, Engine.Complete node :: fwd));
      on_tick = Engine.no_tick;
    }
  in
  let res =
    Engine.run ~graph:(Gen.path n) ~config:Engine.default_config ~protocol ()
  in
  List.iter
    (fun (c : _ Engine.completion) ->
      Alcotest.(check int)
        (Printf.sprintf "node %d reached at its distance" c.value)
        c.value c.round)
    res.completions

let suite =
  [
    Alcotest.test_case "single hop delay" `Quick test_single_hop_delay;
    Alcotest.test_case "send capacity serialises" `Quick
      test_send_capacity_serialises;
    Alcotest.test_case "wider capacities" `Quick test_wider_send_capacity;
    Alcotest.test_case "FIFO per link" `Quick test_fifo_per_link;
    Alcotest.test_case "non-neighbour send rejected" `Quick
      test_send_to_non_neighbor_rejected;
    Alcotest.test_case "round limit" `Quick test_round_limit;
    Alcotest.test_case "one receive per round" `Quick
      test_one_receive_per_round_contention;
    Alcotest.test_case "backlog on one link" `Quick test_backlog_on_one_link;
    Alcotest.test_case "round-robin fairness" `Quick test_round_robin_fairness;
    Alcotest.test_case "lowest-sender-first starves" `Quick
      test_lowest_sender_first_starves;
    Alcotest.test_case "custom arbiter" `Quick test_custom_arbiter;
    Alcotest.test_case "on_tick injection" `Quick test_on_tick_injection;
    Alcotest.test_case "quiescence counters" `Quick test_quiescence_counts;
    Alcotest.test_case "propagation speed" `Quick test_propagation_speed;
  ]
