(* The domain-sharded engine is pinned bit-identical to the sequential
   engines for every shard count: same completions, rounds, messages,
   backlog, fault tallies, metrics content, telemetry windows, event
   stats and Round_limit_exceeded payloads — fault-free, under fault
   plans (cross-shard ordering included), under dynamic schedules, and
   on the event path with injections, starters, halt_after, stats and a
   streaming sink. Plus partition edge cases: more shards than nodes,
   singleton and empty shards, and hand-built placements. *)

module Engine = Countq_simnet.Engine
module Event = Countq_simnet.Event_engine
module Shard = Countq_simnet.Shard
module Faults = Countq_simnet.Faults
module Dynamic = Countq_simnet.Dynamic
module Metrics = Countq_simnet.Metrics
module Telemetry = Countq_simnet.Telemetry
module Graph = Countq_topology.Graph
module Gen = Countq_topology.Gen
module Implicit = Countq_topology.Implicit
module Partition = Countq_topology.Partition
module Parallel = Countq_util.Parallel

(* Two helper lanes, shared by every test: on a single-core box the
   shard counts below still exercise real worker domains (the pin is
   about bit-identicality, not speed). *)
let pool = Parallel.pool ~jobs:3

let mix a b =
  let h = ref ((a * 0x9e3779b1) + (b * 0x85ebca6b)) in
  h := !h lxor (!h lsr 13);
  h := !h * 0xc2b2ae35;
  h := !h lxor (!h lsr 16);
  !h land max_int

type msg = { ttl : int; tag : int }

let pick_nbr graph v h =
  let a = Graph.neighbors graph v in
  if Array.length a = 0 then None else Some a.(h mod Array.length a)

(* The flooding protocol the other equivalence suites pin with,
   optionally gated to a request subset (lazy-starter contract). *)
let hash_protocol ?starts ~seed ~graph () =
  let may_start node =
    match starts with None -> true | Some l -> List.mem node l
  in
  {
    Engine.name = "qcheck-hash";
    initial_state = (fun v -> mix seed v);
    on_start =
      (fun ~node s ->
        if not (may_start node) then (s, [])
        else
          let h = mix seed node in
          let acts =
            if h mod 3 = 0 then
              match pick_nbr graph node h with
              | Some d ->
                  [ Engine.Send (d, { ttl = 2 + (h mod 5); tag = h land 0xffff }) ]
              | None -> []
            else []
          in
          let acts =
            if h mod 7 = 0 then Engine.Complete (node, h land 0xff) :: acts
            else acts
          in
          (s, acts));
    on_receive =
      (fun ~round ~node ~src m s ->
        let h = mix (mix s m.tag) (mix src round) in
        let acts = ref [] in
        (if m.ttl > 0 then
           let fan = match h mod 4 with 0 -> 0 | 1 | 2 -> 1 | _ -> 2 in
           for i = 1 to fan do
             match pick_nbr graph node (mix h i) with
             | Some d ->
                 acts :=
                   Engine.Send
                     (d, { ttl = m.ttl - 1; tag = mix m.tag i land 0xffff })
                   :: !acts
             | None -> ()
           done);
        if h mod 5 = 0 then acts := Engine.Complete (node, m.tag) :: !acts;
        (mix s (m.tag + 1), !acts));
    on_tick = Engine.no_tick;
  }

let arbiter_of = function
  | 0 -> Engine.Round_robin
  | 1 -> Engine.Lowest_sender_first
  | _ ->
      Engine.Custom
        (fun ~round ~node ~candidates ->
          List.nth candidates (mix round node mod List.length candidates))

let arbiter_label = function
  | 0 -> "round-robin"
  | 1 -> "lowest-sender"
  | _ -> "custom-hash"

let plan_of = function
  | 0 -> Faults.none
  | 1 -> Faults.drop_nth 3
  | 2 -> Faults.dup_nth 5
  | 3 -> Faults.delay_nth ~by:4 2
  | 4 -> Faults.delay_nth ~by:50 1
  | 5 -> Faults.random ~label:"lossy" ~seed:42L ~drop:0.1 ()
  | 6 ->
      Faults.random ~label:"chaos" ~seed:7L ~drop:0.05 ~duplicate:0.1
        ~delay:0.2 ~delay_max:9 ()
  | 7 ->
      Faults.crash_only ~label:"crash-restart"
        [ { node = 0; at_round = 2; recover_at = Some 6 } ]
  | _ -> Faults.random ~label:"jitter" ~seed:9L ~delay:0.4 ~delay_max:30 ()

(* Dynamic-schedule variants: churn and flaps move nodes and links
   under the run, so empty shards (every member down) and rerouted
   cross-shard traffic both happen. *)
let dyn_of graph = function
  | 0 -> None
  | 1 -> Some (Dynamic.identity graph)
  | 2 -> Some (Dynamic.node_churn ~seed:5L ~rate:0.3 ~epoch:4 graph)
  | _ -> Some (Dynamic.link_flaps ~seed:11L ~rate:0.25 ~epoch:4 graph)

let dyn_label = function
  | 0 -> "static"
  | 1 -> "identity"
  | 2 -> "churn"
  | _ -> "flaps"

let config_of (rc, sc, arb, minr, maxr) =
  {
    Engine.receive_capacity = rc;
    send_capacity = sc;
    arbiter = arbiter_of arb;
    max_rounds = maxr;
    min_rounds = minr;
  }

(* Run sequential engine or sharded engine, capturing everything
   observable: outcome (or limit payload), fault tallies, metrics
   content, telemetry windows. *)
let capture which ~with_metrics ~with_tel ~dyn ~plan ~graph ~config ~protocol =
  let faults = Option.map Faults.start plan in
  let dynamic = Option.map Dynamic.start (dyn_of graph dyn) in
  let metrics = if with_metrics then Some (Metrics.create ~graph) else None in
  let telemetry =
    if with_tel then Some (Telemetry.create ~windows:8 ~window_size:4 ())
    else None
  in
  let outcome =
    match
      match which with
      | `Engine ->
          Engine.run ?faults ?dynamic ?metrics ?telemetry ~graph ~config
            ~protocol ()
      | `Shard k ->
          Shard.run ~shards:k ~pool ?faults ?dynamic ?metrics ?telemetry
            ~graph ~config ~protocol ()
    with
    | r -> Ok r
    | exception Engine.Round_limit_exceeded
          { limit; outstanding; queued; held; busiest } ->
        Error (limit, outstanding, queued, held, busiest)
  in
  ( outcome,
    Option.map Faults.stats faults,
    Option.map (fun m -> (Metrics.per_node m, Metrics.per_edge m)) metrics,
    Option.map (fun tl -> (Telemetry.windows tl, Telemetry.evicted tl)) telemetry )

let scenario_gen =
  let open QCheck2.Gen in
  let* topo = Helpers.topology_gen in
  let* seed = int_range 0 100_000 in
  let* rc = int_range 1 3 in
  let* sc = int_range 1 3 in
  let* arb = int_range 0 2 in
  let* minr = oneofl [ 0; 7 ] in
  let* maxr = oneofl [ 4; 2_000 ] in
  let* plan = int_range 0 8 in
  let* dyn = int_range 0 3 in
  let* with_metrics = bool in
  let* with_tel = bool in
  let* shards = oneofl [ 2; 3; 5 ] in
  return (topo, seed, (rc, sc, arb, minr, maxr), plan, dyn, with_metrics, with_tel, shards)

let scenario_print ((name, g), seed, (rc, sc, arb, minr, maxr), plan, dyn, wm, wt, k)
    =
  Printf.sprintf
    "%s (n=%d) seed=%d rcv=%d snd=%d arb=%s min_rounds=%d max_rounds=%d \
     plan=%s dyn=%s metrics=%b telemetry=%b shards=%d"
    name (Graph.n g) seed rc sc (arbiter_label arb) minr maxr
    (Faults.label (plan_of plan))
    (dyn_label dyn) wm wt k

let equiv_prop ((_, graph), seed, cfg, plan, dyn, with_metrics, with_tel, shards) =
  let config = config_of cfg in
  let protocol = hash_protocol ~seed ~graph () in
  let plan = if plan = 0 then None else Some (plan_of plan) in
  let a =
    capture `Engine ~with_metrics ~with_tel ~dyn ~plan ~graph ~config ~protocol
  in
  let b =
    capture (`Shard shards) ~with_metrics ~with_tel ~dyn ~plan ~graph ~config
      ~protocol
  in
  a = b

let equiv_graph =
  QCheck2.Test.make ~count:120 ~name:"sharded = engine (graph, all hooks)"
    ~print:scenario_print scenario_gen equiv_prop

(* ------------------------------------------------------------------ *)
(* The event path: injections, starters, halt_after, stats and a
   streaming sink over implicit topologies.                            *)

let capture_event which ~plan ~dyn ~evs ~starts ~halt ~graph ~config ~protocol =
  let faults = Option.map Faults.start plan in
  let dynamic = Option.map Dynamic.start (dyn_of graph dyn) in
  let stats = Event.fresh_stats () in
  let sunk = ref [] in
  let sink c = sunk := c :: !sunk in
  let injections =
    Array.of_list
      (List.map
         (fun (at, node, inject) -> { Event.at; node; inject })
         evs)
  in
  let topo = Implicit.of_graph graph in
  let outcome =
    match
      match which with
      | `Event ->
          Event.run ?faults ?dynamic ~sink ~injections ?halt_after:halt ~stats
            ?starters:starts ~topo ~config ~protocol ()
      | `Shard k ->
          Shard.run_implicit ~shards:k ~pool ?faults ?dynamic ~sink ~injections
            ?halt_after:halt ~stats ?starters:starts ~topo ~config ~protocol ()
    with
    | r -> Ok r
    | exception Engine.Round_limit_exceeded
          { limit; outstanding; queued; held; busiest } ->
        Error (limit, outstanding, queued, held, busiest)
  in
  ( outcome,
    List.rev !sunk,
    (stats.Event.touched, stats.Event.peak_in_flight, stats.Event.executed_rounds),
    Option.map Faults.stats faults )

let fire ~seed ~graph ~round ~node s =
  let h = mix seed (mix round node) in
  let acts =
    match pick_nbr graph node h with
    | Some d -> [ Engine.Send (d, { ttl = 1 + (h mod 3); tag = h land 0xffff }) ]
    | None -> []
  in
  let acts =
    if h mod 4 = 0 then Engine.Complete (node, h land 0xff) :: acts else acts
  in
  (mix s h, acts)

let event_gen =
  let open QCheck2.Gen in
  let* name, g, requests = Helpers.instance_gen in
  let n = Graph.n g in
  let* seed = int_range 0 100_000 in
  let* k = int_range 0 8 in
  let* evs = list_size (return k) (pair (int_range 1 12) (int_range 0 (n - 1))) in
  let evs = List.sort_uniq compare evs in
  let* rc = int_range 1 2 in
  let* arb = int_range 0 2 in
  let* plan = int_range 0 8 in
  let* dyn = int_range 0 3 in
  let* halt = oneofl [ None; Some 6 ] in
  let* shards = oneofl [ 2; 4; 7 ] in
  return ((name, g, requests), seed, evs, (rc, 1, arb, 0, 2_000), plan, dyn, halt, shards)

let event_print ((name, g, requests), seed, evs, _, plan, dyn, halt, k) =
  Printf.sprintf
    "%s (n=%d) R={%s} seed=%d events=[%s] plan=%s dyn=%s halt=%s shards=%d"
    name (Graph.n g)
    (String.concat "," (List.map string_of_int requests))
    seed
    (String.concat ";"
       (List.map (fun (t, v) -> Printf.sprintf "%d@%d" v t) evs))
    (Faults.label (plan_of plan))
    (dyn_label dyn)
    (match halt with None -> "-" | Some h -> string_of_int h)
    k

let event_prop ((_, graph, requests), seed, evs, cfg, plan, dyn, halt, shards) =
  let config = config_of cfg in
  let protocol = hash_protocol ~starts:requests ~seed ~graph () in
  let evs =
    List.map
      (fun (at, node) -> (at, node, fun s -> fire ~seed ~graph ~round:at ~node s))
      evs
  in
  let plan = if plan = 0 then None else Some (plan_of plan) in
  let starts = Some requests in
  let a =
    capture_event `Event ~plan ~dyn ~evs ~starts ~halt ~graph ~config ~protocol
  in
  let b =
    capture_event (`Shard shards) ~plan ~dyn ~evs ~starts ~halt ~graph ~config
      ~protocol
  in
  a = b

let equiv_event =
  QCheck2.Test.make ~count:120
    ~name:"sharded = event engine (injections, starters, halt, stats, sink)"
    ~print:event_print event_gen event_prop

(* ------------------------------------------------------------------ *)
(* The combining funnel is the one protocol built to straddle all
   three engines at once (materialised tree on Engine.run, index
   arithmetic on Event.run and Shard.run_implicit), so its pin runs
   the SAME request set through all three — with metrics and fault
   plans attached — and demands one answer.                            *)

module Funnel = Countq_counting.Funnel
module Tree = Countq_topology.Tree

let funnel_gen =
  let open QCheck2.Gen in
  let* arity = int_range 2 5 in
  let* n = int_range 2 60 in
  let* k = int_range 0 10 in
  let* reqs = list_size (return k) (int_range 0 (n - 1)) in
  let* rc = int_range 1 3 in
  let* plan = int_range 0 8 in
  let* with_metrics = bool in
  let* shards = oneofl [ 2; 3; 5; 8 ] in
  return (arity, n, List.sort_uniq compare reqs, rc, plan, with_metrics, shards)

let funnel_print (arity, n, requests, rc, plan, wm, k) =
  Printf.sprintf
    "tree:%d n=%d R={%s} rcv=%d plan=%s metrics=%b shards=%d" arity n
    (String.concat "," (List.map string_of_int requests))
    rc
    (Faults.label (plan_of plan))
    wm k

let funnel_prop (arity, n, requests, rc, plan, with_metrics, shards) =
  let topo = Implicit.tree ~arity n in
  let graph = Implicit.materialise topo in
  let tree = Tree.of_graph graph ~root:0 in
  let config = { Engine.default_config with receive_capacity = rc } in
  let plan = if plan = 0 then None else Some (plan_of plan) in
  let capture run =
    let faults = Option.map Faults.start plan in
    let metrics = if with_metrics then Some (Metrics.create ~graph) else None in
    let outcome =
      match run ?faults ?metrics () with
      | r -> Ok r
      | exception Engine.Round_limit_exceeded
            { limit; outstanding; queued; held; busiest } ->
          Error (limit, outstanding, queued, held, busiest)
    in
    ( outcome,
      Option.map Faults.stats faults,
      Option.map (fun m -> (Metrics.per_node m, Metrics.per_edge m)) metrics )
  in
  let a =
    capture (fun ?faults ?metrics () ->
        Engine.run ?faults ?metrics ~graph ~config
          ~protocol:(Funnel.one_shot_protocol ~tree ~requests ())
          ())
  in
  let b =
    capture (fun ?faults ?metrics () ->
        Event.run ?faults ?metrics ~starters:requests ~topo ~config
          ~protocol:(Funnel.implicit_protocol ~topo ~requests ())
          ())
  in
  let c =
    capture (fun ?faults ?metrics () ->
        Shard.run_implicit ~shards ~pool ?faults ?metrics ~starters:requests
          ~topo ~config
          ~protocol:(Funnel.implicit_protocol ~topo ~requests ())
          ())
  in
  a = b && b = c

let equiv_funnel =
  QCheck2.Test.make ~count:120
    ~name:"funnel pinned across engine / event / sharded (metrics, faults)"
    ~print:funnel_print funnel_gen funnel_prop

(* ------------------------------------------------------------------ *)
(* The observer replay: the sharded engine buffers per-shard deliver /
   complete events and replays them at the round barrier, so the
   callback stream — including on_round_end's in_flight accounting and
   its `Halt verdict — must be the event engine's, verbatim.           *)

type obs_event =
  | Deliver of int * int * int  (* round, src, dst *)
  | Completed of int * int * int  (* round, node, value snd *)
  | Round_end of int * int  (* round, in_flight *)

let observed which ~plan ~dyn ~halt_at ~starts ~graph ~config ~protocol =
  let faults = Option.map Faults.start plan in
  let dynamic = Option.map Dynamic.start (dyn_of graph dyn) in
  let evs = ref [] in
  let observer =
    {
      Engine.on_deliver =
        (fun ~round ~src ~dst -> evs := Deliver (round, src, dst) :: !evs);
      on_complete =
        (fun ~round ~node ~value ->
          evs := Completed (round, node, snd value) :: !evs);
      on_round_end =
        (fun ~round ~in_flight ->
          evs := Round_end (round, in_flight) :: !evs;
          match halt_at with
          | Some h when round >= h -> `Halt
          | _ -> `Continue);
    }
  in
  let topo = Implicit.of_graph graph in
  let outcome =
    match
      match which with
      | `Event ->
          Event.run ?faults ?dynamic ~observer ?starters:starts ~topo ~config
            ~protocol ()
      | `Shard k ->
          Shard.run_implicit ~shards:k ~pool ?faults ?dynamic ~observer
            ?starters:starts ~topo ~config ~protocol ()
    with
    | r -> Ok r
    | exception Engine.Round_limit_exceeded
          { limit; outstanding; queued; held; busiest } ->
        Error (limit, outstanding, queued, held, busiest)
  in
  (outcome, List.rev !evs, Option.map Faults.stats faults)

let observer_gen =
  let open QCheck2.Gen in
  let* name, g, requests = Helpers.instance_gen in
  let* seed = int_range 0 100_000 in
  let* rc = int_range 1 2 in
  let* arb = int_range 0 2 in
  let* plan = int_range 0 8 in
  let* dyn = int_range 0 3 in
  let* halt_at = oneofl [ None; Some 3 ] in
  let* shards = oneofl [ 2; 4; 7 ] in
  return
    ((name, g, requests), seed, (rc, 1, arb, 0, 2_000), plan, dyn, halt_at, shards)

let observer_print ((name, g, requests), seed, _, plan, dyn, halt_at, k) =
  Printf.sprintf "%s (n=%d) R={%s} seed=%d plan=%s dyn=%s halt=%s shards=%d"
    name (Graph.n g)
    (String.concat "," (List.map string_of_int requests))
    seed
    (Faults.label (plan_of plan))
    (dyn_label dyn)
    (match halt_at with None -> "-" | Some h -> string_of_int h)
    k

let observer_prop ((_, graph, requests), seed, cfg, plan, dyn, halt_at, shards) =
  let config = config_of cfg in
  let protocol = hash_protocol ~starts:requests ~seed ~graph () in
  let plan = if plan = 0 then None else Some (plan_of plan) in
  let starts = Some requests in
  let a =
    observed `Event ~plan ~dyn ~halt_at ~starts ~graph ~config ~protocol
  in
  let b =
    observed (`Shard shards) ~plan ~dyn ~halt_at ~starts ~graph ~config
      ~protocol
  in
  a = b

let equiv_observer =
  QCheck2.Test.make ~count:120
    ~name:"sharded observer stream = event engine (deliver, complete, halt)"
    ~print:observer_print observer_gen observer_prop

let test_observer_halt_sharded () =
  (* `Halt from on_round_end actually stops a sharded funnel run, at
     the same round as the event engine. *)
  let topo = Implicit.tree ~arity:2 31 in
  let requests = [ 3; 9; 17; 30 ] in
  let run halt_at which =
    let evs = ref [] in
    let observer =
      {
        Engine.on_deliver = (fun ~round:_ ~src:_ ~dst:_ -> ());
        on_complete = (fun ~round:_ ~node:_ ~value:_ -> ());
        on_round_end =
          (fun ~round ~in_flight ->
            evs := (round, in_flight) :: !evs;
            match halt_at with
            | Some h when round >= h -> `Halt
            | _ -> `Continue);
      }
    in
    let protocol = Funnel.implicit_protocol ~topo ~requests () in
    let res =
      match which with
      | `Event ->
          Event.run ~observer ~starters:requests ~topo
            ~config:Engine.default_config ~protocol ()
      | `Shard k ->
          Shard.run_implicit ~shards:k ~pool ~observer ~starters:requests
            ~topo ~config:Engine.default_config ~protocol ()
    in
    (res, List.rev !evs)
  in
  let full_e, full_obs_e = run None `Event in
  let full_s, full_obs_s = run None (`Shard 3) in
  Alcotest.(check bool) "full funnel run pinned" true (full_e = full_s);
  Alcotest.(check bool) "full observer stream pinned" true
    (full_obs_e = full_obs_s);
  let halted_e, obs_e = run (Some 2) `Event in
  let halted_s, obs_s = run (Some 2) (`Shard 3) in
  Alcotest.(check bool) "halted run pinned" true (halted_e = halted_s);
  Alcotest.(check bool) "halted observer stream pinned" true (obs_e = obs_s);
  Alcotest.(check int) "halt at round 2 stops the run" 2 halted_s.rounds;
  Alcotest.(check bool) "halt cut the run short" true
    (halted_s.rounds < full_s.rounds)

(* ------------------------------------------------------------------ *)
(* Partition edge cases.                                               *)

let test_contiguous_more_shards_than_nodes () =
  let p = Partition.contiguous ~n:5 ~shards:9 in
  Partition.validate p;
  Alcotest.(check (list int))
    "five singletons then empties"
    [ 1; 1; 1; 1; 1; 0; 0; 0; 0 ]
    (Array.to_list (Partition.shard_sizes p));
  (* Sharded run with more shards than nodes is still pinned. *)
  let graph = Gen.path 5 in
  let protocol = hash_protocol ~seed:17 ~graph () in
  let seq = Engine.run ~graph ~config:Engine.default_config ~protocol () in
  let sh =
    Shard.run ~shards:9 ~pool ~graph ~config:Engine.default_config ~protocol ()
  in
  Alcotest.(check bool) "9 shards on 5 nodes pinned" true (seq = sh)

let test_singleton_graph () =
  let graph = Gen.complete 1 in
  let protocol = hash_protocol ~seed:3 ~graph () in
  let seq = Engine.run ~graph ~config:Engine.default_config ~protocol () in
  let sh =
    Shard.run ~shards:4 ~pool ~graph ~config:Engine.default_config ~protocol ()
  in
  Alcotest.(check bool) "n=1 pinned for shards=4" true (seq = sh)

let test_greedy_partition_valid () =
  List.iter
    (fun (label, graph) ->
      List.iter
        (fun k ->
          let p = Partition.greedy ~graph ~shards:k in
          Partition.validate p;
          let total =
            Array.fold_left ( + ) 0 (Partition.shard_sizes p)
          in
          Alcotest.(check int)
            (Printf.sprintf "%s k=%d covers all nodes" label k)
            (Graph.n graph) total)
        [ 1; 2; 3; 8 ])
    [
      ("path-13", Gen.path 13);
      ("star-9", Gen.star 9);
      ("mesh-4x4", Gen.square_mesh 4);
      ("complete-6", Gen.complete 6);
    ]

let test_greedy_cut_smaller_than_scatter () =
  (* On a path, contiguous ranges are optimal; greedy BFS growth must
     find a cut no worse than an interleaved placement. *)
  let graph = Gen.path 32 in
  let nbr v = Graph.neighbors graph v in
  let greedy = Partition.greedy ~graph ~shards:4 in
  let scatter_owner = Array.init 32 (fun v -> v mod 4) in
  let scatter_members =
    Array.init 4 (fun s ->
        Array.of_list
          (List.filter (fun v -> scatter_owner.(v) = s) (List.init 32 Fun.id)))
  in
  let scatter =
    {
      Partition.label = "scatter";
      shards = 4;
      owner = scatter_owner;
      members = scatter_members;
    }
  in
  Partition.validate scatter;
  let gc = Partition.cut_edges greedy ~neighbors:nbr in
  let sc = Partition.cut_edges scatter ~neighbors:nbr in
  Alcotest.(check bool)
    (Printf.sprintf "greedy cut %d <= scatter cut %d" gc sc)
    true (gc <= sc);
  Alcotest.(check int) "path-32 into 4 ranges cuts 3 edges" 3 gc

let test_custom_partition_pinned () =
  (* Bit-identicality holds for ANY valid placement, including the
     worst interleaved one — only performance depends on the cut. *)
  let graph = Gen.cycle 12 in
  let owner = Array.init 12 (fun v -> v mod 3) in
  let members =
    Array.init 3 (fun s ->
        Array.of_list
          (List.filter (fun v -> owner.(v) = s) (List.init 12 Fun.id)))
  in
  let scatter = { Partition.label = "scatter"; shards = 3; owner; members } in
  Partition.validate scatter;
  let protocol = hash_protocol ~seed:23 ~graph () in
  let plan () = Faults.start (plan_of 6) in
  let config = { Engine.default_config with receive_capacity = 2 } in
  let seq = Engine.run ~faults:(plan ()) ~graph ~config ~protocol () in
  let sh =
    Shard.run ~partition:scatter ~pool ~faults:(plan ()) ~graph ~config
      ~protocol ()
  in
  Alcotest.(check bool) "interleaved partition pinned under chaos plan" true
    (seq = sh)

let test_empty_shards_under_churn () =
  (* A sparse dynamic graph whose nodes churn out: shards can spend
     whole epochs with every member down (effectively empty) and the
     run must still be pinned. *)
  let graph = Gen.path 6 in
  let dynamic () =
    Dynamic.start (Dynamic.node_churn ~seed:2L ~rate:0.6 ~epoch:2 graph)
  in
  let protocol = hash_protocol ~seed:31 ~graph () in
  let config = Engine.default_config in
  let seq = Engine.run ~dynamic:(dynamic ()) ~graph ~config ~protocol () in
  let sh =
    Shard.run ~shards:6 ~pool ~dynamic:(dynamic ()) ~graph ~config ~protocol ()
  in
  Alcotest.(check bool) "six singleton shards under churn pinned" true (seq = sh)

let test_cross_shard_ordering_under_faults () =
  (* Deterministic fault plans consume one global decision stream; a
     2-shard cut across a dense flood must replay it exactly. *)
  let graph = Gen.complete 8 in
  let protocol = hash_protocol ~seed:77 ~graph () in
  let config = { Engine.default_config with send_capacity = 2 } in
  List.iter
    (fun plan_id ->
      let plan () = Faults.start (plan_of plan_id) in
      let m_seq = Metrics.create ~graph in
      let m_sh = Metrics.create ~graph in
      let seq =
        Engine.run ~faults:(plan ()) ~metrics:m_seq ~graph ~config ~protocol ()
      in
      let sh =
        Shard.run ~shards:2 ~pool ~faults:(plan ()) ~metrics:m_sh ~graph
          ~config ~protocol ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "plan %d: results pinned" plan_id)
        true (seq = sh);
      Alcotest.(check bool)
        (Printf.sprintf "plan %d: metrics pinned" plan_id)
        true
        (Metrics.per_node m_seq = Metrics.per_node m_sh
        && Metrics.per_edge m_seq = Metrics.per_edge m_sh))
    [ 1; 2; 3; 6 ]

let test_round_limit_payloads_identical () =
  let graph = Gen.path 2 in
  let protocol =
    {
      Engine.name = "pingpong";
      initial_state = (fun _ -> ());
      on_start =
        (fun ~node s -> if node = 0 then (s, [ Engine.Send (1, ()) ]) else (s, []));
      on_receive = (fun ~round:_ ~node:_ ~src msg s -> (s, [ Engine.Send (src, msg) ]));
      on_tick = Engine.no_tick;
    }
  in
  let config = { Engine.default_config with max_rounds = 25 } in
  let payload run =
    match run () with
    | (_ : unit Engine.result) -> Alcotest.fail "expected Round_limit_exceeded"
    | exception Engine.Round_limit_exceeded
          { limit; outstanding; queued; held; busiest } ->
        (limit, outstanding, queued, held, busiest)
  in
  let a = payload (fun () -> Engine.run ~graph ~config ~protocol ()) in
  let b =
    payload (fun () -> Shard.run ~shards:2 ~pool ~graph ~config ~protocol ())
  in
  Alcotest.(check bool) "payloads identical" true (a = b)

let test_sharded_lazy_event_run () =
  (* The event path stays cheap in work (if not in O(n) setup): one
     ping across a 50k-node list, sharded, with exact stats. *)
  let topo = Implicit.list 50_000 in
  let one_ping =
    {
      Engine.name = "one-ping";
      initial_state = (fun _ -> ());
      on_start =
        (fun ~node s -> if node = 0 then (s, [ Engine.Send (1, ()) ]) else (s, []));
      on_receive =
        (fun ~round ~node ~src:_ () s -> (s, [ Engine.Complete (node, round) ]));
      on_tick = Engine.no_tick;
    }
  in
  let stats = Event.fresh_stats () in
  let res =
    Shard.run_implicit ~shards:4 ~pool ~stats ~starters:[ 0 ] ~topo
      ~config:Engine.default_config ~protocol:one_ping ()
  in
  Alcotest.(check int) "one delivery" 1 res.messages;
  Alcotest.(check bool) "completed at node 1, round 1" true
    (res.completions = [ { Engine.node = 1; round = 1; value = (1, 1) } ]);
  Alcotest.(check int) "two nodes touched" 2 stats.touched;
  Alcotest.(check int) "one executed round" 1 stats.executed_rounds;
  Alcotest.(check int) "peak one in flight" 1 stats.peak_in_flight

let test_tick_protocol_pinned () =
  (* Graph path supports tick-driven protocols: each shard ticks its
     own members. *)
  let graph = Gen.cycle 9 in
  let protocol =
    {
      Engine.name = "tick-flood";
      initial_state = (fun v -> v);
      on_start = (fun ~node:_ s -> (s, []));
      on_receive =
        (fun ~round ~node ~src:_ m s ->
          (s + m, if round > 6 then [ Engine.Complete (node, s + m) ] else []));
      on_tick =
        Some
          (fun ~round ~node s ->
            if round <= 3 then
              (s, [ Engine.Send ((node + 1) mod 9, mix round node) ])
            else (s, []));
    }
  in
  let config = { Engine.default_config with min_rounds = 10 } in
  let seq = Engine.run ~graph ~config ~protocol () in
  let sh = Shard.run ~shards:3 ~pool ~graph ~config ~protocol () in
  Alcotest.(check bool) "ticking protocol pinned" true (seq = sh)

let test_no_pool_degrades_sequentially () =
  (* Without a pool on a starved machine the sharded data path runs on
     the calling domain alone — still pinned. *)
  let graph = Gen.star 7 in
  let protocol = hash_protocol ~seed:41 ~graph () in
  let seq = Engine.run ~graph ~config:Engine.default_config ~protocol () in
  let sh = Shard.run ~shards:3 ~graph ~config:Engine.default_config ~protocol () in
  Alcotest.(check bool) "pool-less sharded run pinned" true (seq = sh)

let test_auto_shards_positive () =
  Alcotest.(check bool) "auto_shards >= 1" true (Shard.auto_shards () >= 1)

let suite =
  [
    Helpers.qcheck equiv_graph;
    Helpers.qcheck equiv_event;
    Helpers.qcheck equiv_funnel;
    Helpers.qcheck equiv_observer;
    Alcotest.test_case "observer `Halt stops a sharded funnel run" `Quick
      test_observer_halt_sharded;
    Alcotest.test_case "partition: more shards than nodes" `Quick
      test_contiguous_more_shards_than_nodes;
    Alcotest.test_case "partition: singleton graph" `Quick test_singleton_graph;
    Alcotest.test_case "partition: greedy covers and validates" `Quick
      test_greedy_partition_valid;
    Alcotest.test_case "partition: greedy cut beats scatter on a path" `Quick
      test_greedy_cut_smaller_than_scatter;
    Alcotest.test_case "custom interleaved partition pinned" `Quick
      test_custom_partition_pinned;
    Alcotest.test_case "empty shards under churn pinned" `Quick
      test_empty_shards_under_churn;
    Alcotest.test_case "cross-shard ordering under fault plans" `Quick
      test_cross_shard_ordering_under_faults;
    Alcotest.test_case "round-limit payloads identical" `Quick
      test_round_limit_payloads_identical;
    Alcotest.test_case "sharded event run: 50k-list ping, exact stats" `Quick
      test_sharded_lazy_event_run;
    Alcotest.test_case "tick-driven protocol pinned" `Quick
      test_tick_protocol_pinned;
    Alcotest.test_case "pool-less sharded run pinned" `Quick
      test_no_pool_degrades_sequentially;
    Alcotest.test_case "auto_shards sane" `Quick test_auto_shards_positive;
  ]
