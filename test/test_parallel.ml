(* Tests for the domain-based parallel map. *)

module Parallel = Countq_util.Parallel

let test_matches_sequential () =
  let xs = List.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "same as List.map" (List.map f xs)
    (Parallel.map ~jobs:4 f xs)

let test_order_preserved_under_skew () =
  (* Uneven work must not reorder results. *)
  let xs = List.init 40 (fun i -> i) in
  let f x =
    let spin = if x mod 7 = 0 then 200_000 else 10 in
    let acc = ref 0 in
    for i = 1 to spin do
      acc := !acc + (i mod 3)
    done;
    ignore !acc;
    x * 2
  in
  Alcotest.(check (list int)) "ordered" (List.map f xs) (Parallel.map ~jobs:4 f xs)

let test_jobs_one_sequential () =
  Alcotest.(check (list int)) "jobs=1" [ 2; 4; 6 ]
    (Parallel.map ~jobs:1 (fun x -> 2 * x) [ 1; 2; 3 ])

let test_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Parallel.map ~jobs:8 (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 9 ]
    (Parallel.map ~jobs:8 (fun x -> x) [ 9 ])

let test_more_jobs_than_items () =
  Alcotest.(check (list int)) "jobs > items" [ 1; 2 ]
    (Parallel.map ~jobs:16 (fun x -> x) [ 1; 2 ])

let test_exception_propagates () =
  Alcotest.check_raises "re-raised" (Failure "boom") (fun () ->
      ignore
        (Parallel.map ~jobs:4
           (fun x -> if x = 5 then failwith "boom" else x)
           (List.init 10 (fun i -> i))))

let test_invalid_jobs () =
  Alcotest.check_raises "jobs=0" (Invalid_argument "Parallel.map: jobs must be >= 1")
    (fun () -> ignore (Parallel.map ~jobs:0 (fun x -> x) [ 1 ]))

let spin_a_little () =
  let acc = ref 0 in
  for i = 1 to 5_000 do
    acc := !acc + (i mod 3)
  done;
  ignore !acc

let test_abort_skips_pending () =
  (* Item 0 fails immediately; once a lane observes the failure no new
     items are claimed, so the vast majority of the 200 items must
     never be evaluated. Non-failing items carry enough work that even
     adversarial preemption cannot let one lane rip through the whole
     array before the failing lane gets to note its failure. *)
  let evaluated = Atomic.make 0 in
  let spin_hard () =
    let acc = ref 0 in
    for i = 1 to 50_000 do
      acc := !acc + (i mod 3)
    done;
    ignore !acc
  in
  Alcotest.check_raises "re-raised" (Failure "early") (fun () ->
      ignore
        (Parallel.map ~jobs:2
           (fun x ->
             if x = 0 then failwith "early"
             else begin
               Atomic.incr evaluated;
               spin_hard ();
               x
             end)
           (List.init 200 (fun i -> i))));
  Alcotest.(check bool) "most items skipped" true (Atomic.get evaluated < 150)

let test_lowest_index_failure_wins () =
  (* Two failing items: chunk claims are monotone and claimed chunks
     run to completion, so the lower index is always the one
     re-raised, whatever the scheduling. *)
  for _ = 1 to 5 do
    Alcotest.check_raises "lowest index" (Failure "at-5") (fun () ->
        ignore
          (Parallel.map ~jobs:4
             (fun x ->
               if x = 5 then failwith "at-5"
               else if x = 10 then failwith "at-10"
               else x)
             (List.init 50 (fun i -> i))))
  done

(* ---- the shared pool ---- *)

let test_pool_invalid_jobs () =
  Alcotest.check_raises "jobs=0"
    (Invalid_argument "Parallel.pool: jobs must be >= 1") (fun () ->
      ignore (Parallel.pool ~jobs:0))

let test_pool_map_matches_sequential () =
  let p = Parallel.pool ~jobs:4 in
  let xs = List.init 100 (fun i -> i) in
  let f x = (x * 7) - 3 in
  Alcotest.(check (list int)) "same as List.map" (List.map f xs)
    (Parallel.pool_map p f xs);
  (* The budget must be fully released: a second map works the same. *)
  Alcotest.(check (list int)) "reusable" (List.map f xs)
    (Parallel.pool_map p f xs)

let test_pool_nested_correct_and_bounded () =
  (* Nested pool_map draws on the same budget: the inner calls reserve
     only what the outer left, and in-flight evaluations never exceed
     the pool's lane budget. *)
  let jobs = 3 in
  let p = Parallel.pool ~jobs in
  let live = Atomic.make 0 in
  let max_live = Atomic.make 0 in
  let rec bump_max cur =
    let m = Atomic.get max_live in
    if cur > m && not (Atomic.compare_and_set max_live m cur) then
      bump_max cur
  in
  let gauge f x =
    let cur = 1 + Atomic.fetch_and_add live 1 in
    bump_max cur;
    spin_a_little ();
    let r = f x in
    Atomic.decr live;
    r
  in
  let inner base =
    Parallel.pool_map p (gauge (fun y -> base + y)) (List.init 8 (fun i -> i))
  in
  let expected =
    List.map (fun b -> List.map (fun y -> (10 * b) + y) (List.init 8 (fun i -> i)))
      (List.init 4 (fun i -> i))
  in
  let got = Parallel.pool_map p (fun b -> inner (10 * b)) (List.init 4 (fun i -> i)) in
  Alcotest.(check (list (list int))) "nested results" expected got;
  Alcotest.(check bool)
    (Printf.sprintf "max in-flight %d <= %d lanes" (Atomic.get max_live) jobs)
    true
    (Atomic.get max_live <= jobs)

let test_pool_max_extra_and_chunk () =
  let p = Parallel.pool ~jobs:8 in
  let xs = List.init 37 (fun i -> i * i) in
  Alcotest.(check (list int)) "max_extra:0 sequential" xs
    (Parallel.pool_map p ~max_extra:0 (fun x -> x) xs);
  Alcotest.(check (list int)) "chunk:5" xs
    (Parallel.pool_map p ~chunk:5 (fun x -> x) xs)

let prop_pool_map_equivalent =
  QCheck2.Test.make ~name:"pool_map = sequential map" ~count:50
    QCheck2.Gen.(
      triple (list (int_range 0 1000)) (int_range 1 8) (int_range 1 5))
    (fun (xs, jobs, chunk) ->
      let p = Parallel.pool ~jobs in
      Parallel.pool_map p ~chunk (fun x -> (5 * x) + 1) xs
      = List.map (fun x -> (5 * x) + 1) xs)

let test_recommended_positive () =
  Alcotest.(check bool) "at least 1" true (Parallel.recommended_jobs () >= 1)

let prop_equivalent_to_map =
  QCheck2.Test.make ~name:"parallel map = sequential map" ~count:50
    QCheck2.Gen.(pair (list (int_range 0 1000)) (int_range 1 8))
    (fun (xs, jobs) ->
      Parallel.map ~jobs (fun x -> (3 * x) - 7) xs
      = List.map (fun x -> (3 * x) - 7) xs)

let suite =
  [
    Alcotest.test_case "matches sequential" `Quick test_matches_sequential;
    Alcotest.test_case "order under skew" `Quick test_order_preserved_under_skew;
    Alcotest.test_case "jobs=1" `Quick test_jobs_one_sequential;
    Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
    Alcotest.test_case "more jobs than items" `Quick test_more_jobs_than_items;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "invalid jobs" `Quick test_invalid_jobs;
    Alcotest.test_case "recommended jobs" `Quick test_recommended_positive;
    Alcotest.test_case "abort skips pending" `Quick test_abort_skips_pending;
    Alcotest.test_case "lowest-index failure wins" `Quick
      test_lowest_index_failure_wins;
    Alcotest.test_case "pool invalid jobs" `Quick test_pool_invalid_jobs;
    Alcotest.test_case "pool_map matches sequential" `Quick
      test_pool_map_matches_sequential;
    Alcotest.test_case "nested pool_map bounded" `Quick
      test_pool_nested_correct_and_bounded;
    Alcotest.test_case "pool max_extra and chunk" `Quick
      test_pool_max_extra_and_chunk;
    Helpers.qcheck prop_equivalent_to_map;
    Helpers.qcheck prop_pool_map_equivalent;
  ]
