(* Equivalence of the active-set engine and the retained reference
   engine: over random protocols, topologies, arbiters, capacities and
   fault plans, Engine.run and Reference.run must produce bit-identical
   results — same completions, rounds, messages, max_link_backlog,
   same Round_limit_exceeded payloads, same observer event streams and
   same fault-injection tallies. Plus regression tests that idle-round
   fast-forwarding never skips an observable callback. *)

module Engine = Countq_simnet.Engine
module Reference = Countq_simnet.Reference
module Faults = Countq_simnet.Faults
module Graph = Countq_topology.Graph
module Gen = Countq_topology.Gen

(* A cheap avalanche mix so the random protocols below are pure
   functions of their inputs (both engines must see the exact same
   behaviour, including across re-runs on shrunk counterexamples). *)
let mix a b =
  let h = ref ((a * 0x9e3779b1) + (b * 0x85ebca6b)) in
  h := !h lxor (!h lsr 13);
  h := !h * 0xc2b2ae35;
  h := !h lxor (!h lsr 16);
  !h land max_int

type msg = { ttl : int; tag : int }

(* A seed-parameterised protocol that floods pseudo-random traffic:
   roughly a third of the nodes start a bounded-ttl random walk that
   forks with fanout 0..2 per hop and sprinkles completions. *)
let hash_protocol ~seed ~graph =
  let pick_nbr v h =
    let a = Graph.neighbors graph v in
    if Array.length a = 0 then None else Some a.(h mod Array.length a)
  in
  {
    Engine.name = "qcheck-hash";
    initial_state = (fun v -> mix seed v);
    on_start =
      (fun ~node s ->
        let h = mix seed node in
        let acts =
          if h mod 3 = 0 then
            match pick_nbr node h with
            | Some d ->
                [ Engine.Send (d, { ttl = 2 + (h mod 5); tag = h land 0xffff }) ]
            | None -> []
          else []
        in
        let acts =
          if h mod 7 = 0 then Engine.Complete (node, h land 0xff) :: acts
          else acts
        in
        (s, acts));
    on_receive =
      (fun ~round ~node ~src m s ->
        let h = mix (mix s m.tag) (mix src round) in
        let acts = ref [] in
        (if m.ttl > 0 then
           let fan = match h mod 4 with 0 -> 0 | 1 | 2 -> 1 | _ -> 2 in
           for i = 1 to fan do
             match pick_nbr node (mix h i) with
             | Some d ->
                 acts :=
                   Engine.Send
                     (d, { ttl = m.ttl - 1; tag = mix m.tag i land 0xffff })
                   :: !acts
             | None -> ()
           done);
        if h mod 5 = 0 then acts := Engine.Complete (node, m.tag) :: !acts;
        (mix s (m.tag + 1), !acts));
    on_tick = Engine.no_tick;
  }

let arbiter_of = function
  | 0 -> Engine.Round_robin
  | 1 -> Engine.Lowest_sender_first
  | _ ->
      Engine.Custom
        (fun ~round ~node ~candidates ->
          List.nth candidates (mix round node mod List.length candidates))

let arbiter_label = function
  | 0 -> "round-robin"
  | 1 -> "lowest-sender"
  | _ -> "custom-hash"

let plan_of = function
  | 0 -> Faults.none
  | 1 -> Faults.drop_nth 3
  | 2 -> Faults.dup_nth 5
  | 3 -> Faults.delay_nth ~by:4 2
  | 4 -> Faults.delay_nth ~by:50 1
  | 5 -> Faults.random ~label:"lossy" ~seed:42L ~drop:0.1 ()
  | 6 ->
      Faults.random ~label:"chaos" ~seed:7L ~drop:0.05 ~duplicate:0.1
        ~delay:0.2 ~delay_max:9 ()
  | 7 ->
      Faults.crash_only ~label:"crash-restart"
        [ { node = 0; at_round = 2; recover_at = Some 6 } ]
  | _ -> Faults.random ~label:"jitter" ~seed:9L ~delay:0.4 ~delay_max:30 ()

let scenario_gen =
  let open QCheck2.Gen in
  let* topo = Helpers.topology_gen in
  let* seed = int_range 0 100_000 in
  let* rc = int_range 1 3 in
  let* sc = int_range 1 3 in
  let* arb = int_range 0 2 in
  let* minr = oneofl [ 0; 7 ] in
  let* maxr = oneofl [ 4; 2_000 ] in
  let* plan = int_range 0 8 in
  return (topo, seed, (rc, sc, arb, minr, maxr), plan)

let scenario_print ((name, g), seed, (rc, sc, arb, minr, maxr), plan) =
  Printf.sprintf
    "%s (n=%d) seed=%d rcv=%d snd=%d arb=%s min_rounds=%d max_rounds=%d \
     plan=%s"
    name (Graph.n g) seed rc sc (arbiter_label arb) minr maxr
    (Faults.label (plan_of plan))

(* Run one engine, capturing the result (or the round-limit payload),
   the observer event stream (when [observe]) and the fault tallies. *)
let capture which ~observe ~plan ~graph ~config ~protocol =
  let events = ref [] in
  let observer =
    if observe then
      Some
        {
          Engine.on_deliver =
            (fun ~round ~src ~dst -> events := `Deliver (round, src, dst) :: !events);
          on_complete =
            (fun ~round ~node ~value -> events := `Complete (round, node, value) :: !events);
          on_round_end =
            (fun ~round ~in_flight ->
              events := `Round_end (round, in_flight) :: !events;
              `Continue);
        }
    else None
  in
  let faults = Option.map Faults.start plan in
  let outcome =
    match
      match which with
      | `Active -> Engine.run ?faults ?observer ~graph ~config ~protocol ()
      | `Reference -> Reference.run ?faults ?observer ~graph ~config ~protocol ()
    with
    | r -> Ok r
    | exception Engine.Round_limit_exceeded
          { limit; outstanding; queued; held; busiest } ->
        Error (limit, outstanding, queued, held, busiest)
  in
  (outcome, List.rev !events, Option.map Faults.stats faults)

let equiv_prop ~observe ((_, graph), seed, (rc, sc, arb, minr, maxr), plan) =
  let config =
    {
      Engine.receive_capacity = rc;
      send_capacity = sc;
      arbiter = arbiter_of arb;
      max_rounds = maxr;
      min_rounds = minr;
    }
  in
  let protocol = hash_protocol ~seed ~graph in
  let plan = if plan = 0 then None else Some (plan_of plan) in
  let a = capture `Active ~observe ~plan ~graph ~config ~protocol in
  let r = capture `Reference ~observe ~plan ~graph ~config ~protocol in
  a = r

let equiv_default =
  QCheck2.Test.make ~count:150 ~name:"active = reference (default hooks)"
    ~print:scenario_print scenario_gen (equiv_prop ~observe:false)

let equiv_observed =
  QCheck2.Test.make ~count:150 ~name:"active = reference (observed, traced)"
    ~print:scenario_print scenario_gen (equiv_prop ~observe:true)

(* ------------------------------------------------------------------ *)
(* Fast-forward regressions: skipping idle rounds must never skip an
   observable callback, and must not change any result field.          *)

(* A protocol that does nothing after its single start completion. *)
let quiet_protocol =
  {
    Engine.name = "quiet";
    initial_state = (fun _ -> ());
    on_start =
      (fun ~node s -> if node = 0 then (s, [ Engine.Complete 0 ]) else (s, []));
    on_receive = (fun ~round:_ ~node:_ ~src:_ () s -> (s, []));
    on_tick = Engine.no_tick;
  }

let test_observer_sees_every_idle_round () =
  (* A custom observer disables fast-forward: all min_rounds idle
     rounds must invoke on_round_end, in order, in both engines. *)
  let config = { Engine.default_config with min_rounds = 37 } in
  let graph = Gen.path 4 in
  let seen engine_run =
    let rounds = ref [] in
    let observer =
      {
        Engine.null_observer with
        on_round_end =
          (fun ~round ~in_flight:_ ->
            rounds := round :: !rounds;
            `Continue);
      }
    in
    ignore (engine_run ~observer);
    List.rev !rounds
  in
  let active =
    seen (fun ~observer ->
        Engine.run ~observer ~graph ~config ~protocol:quiet_protocol ())
  in
  let reference =
    seen (fun ~observer ->
        Reference.run ~observer ~graph ~config ~protocol:quiet_protocol ())
  in
  Alcotest.(check (list int)) "all 37 rounds observed" (List.init 37 (fun i -> i + 1)) active;
  Alcotest.(check (list int)) "matches reference" reference active

let test_keep_alive_polled_every_round () =
  (* A custom keep_alive also disables fast-forward: it must be polled
     once per idle round, the same number of times as the reference. *)
  let polls which =
    let count = ref 0 in
    let keep_alive () =
      incr count;
      !count <= 12
    in
    let graph = Gen.path 3 in
    let config = Engine.default_config in
    let res =
      match which with
      | `Active ->
          Engine.run ~keep_alive ~graph ~config ~protocol:quiet_protocol ()
      | `Reference ->
          Reference.run ~keep_alive ~graph ~config ~protocol:quiet_protocol ()
    in
    (!count, res)
  in
  let ca, ra = polls `Active in
  let cr, rr = polls `Reference in
  Alcotest.(check int) "poll counts match" cr ca;
  Alcotest.(check bool) "results match" true (ra = rr);
  Alcotest.(check int) "kept alive 12 extra rounds" 13 ca

let test_min_rounds_fast_forward_result () =
  (* With default hooks a huge min_rounds horizon is skipped in O(1):
     every result field must match both the min_rounds=0 run and the
     reference engine on a smaller horizon it can afford to spin. *)
  let graph = Gen.star 5 in
  let run min_rounds =
    Engine.run ~graph
      ~config:{ Engine.default_config with min_rounds }
      ~protocol:quiet_protocol ()
  in
  let fast = run 5_000_000 in
  Alcotest.(check bool) "same result as min_rounds=0" true (fast = run 0);
  let reference =
    Reference.run ~graph
      ~config:{ Engine.default_config with min_rounds = 10_000 }
      ~protocol:quiet_protocol ()
  in
  Alcotest.(check bool) "same result as reference" true (fast = reference)

let test_delay_fault_fast_forward () =
  (* One message delayed by 300k rounds: the active engine jumps to the
     due round instead of spinning; the result must be bit-identical to
     the reference engine grinding through every idle round. *)
  let graph = Gen.path 2 in
  let protocol =
    {
      Engine.name = "one-ping";
      initial_state = (fun _ -> ());
      on_start =
        (fun ~node s -> if node = 0 then (s, [ Engine.Send (1, ()) ]) else (s, []));
      on_receive = (fun ~round ~node ~src:_ () s -> (s, [ Engine.Complete (node, round) ]));
      on_tick = Engine.no_tick;
    }
  in
  let plan = Faults.delay_nth ~by:300_000 0 in
  let config = Engine.default_config in
  let active =
    Engine.run ~faults:(Faults.start plan) ~graph ~config ~protocol ()
  in
  let reference =
    Reference.run ~faults:(Faults.start plan) ~graph ~config ~protocol ()
  in
  Alcotest.(check bool) "results identical" true (active = reference);
  Alcotest.(check int) "delivered after the spike" 300_001 active.rounds;
  Alcotest.(check int) "exactly one delivery" 1 active.messages

let test_round_limit_payloads_identical () =
  (* Ping-pong forever at max_rounds=25: both engines must raise with
     the same payload, including the busiest-node summary. *)
  let graph = Gen.path 2 in
  let protocol =
    {
      Engine.name = "pingpong";
      initial_state = (fun _ -> ());
      on_start =
        (fun ~node s -> if node = 0 then (s, [ Engine.Send (1, ()) ]) else (s, []));
      on_receive = (fun ~round:_ ~node:_ ~src msg s -> (s, [ Engine.Send (src, msg) ]));
      on_tick = Engine.no_tick;
    }
  in
  let config = { Engine.default_config with max_rounds = 25 } in
  let payload run =
    match run ~graph ~config ~protocol () with
    | (_ : unit Engine.result) -> Alcotest.fail "expected Round_limit_exceeded"
    | exception Engine.Round_limit_exceeded
          { limit; outstanding; queued; held; busiest } ->
        (limit, outstanding, queued, held, busiest)
  in
  let a = payload (fun ~graph ~config ~protocol () -> Engine.run ~graph ~config ~protocol ()) in
  let r = payload (fun ~graph ~config ~protocol () -> Reference.run ~graph ~config ~protocol ()) in
  Alcotest.(check bool) "payloads identical" true (a = r)

let suite =
  [
    Helpers.qcheck equiv_default;
    Helpers.qcheck equiv_observed;
    Alcotest.test_case "fast-forward: observer sees every idle round" `Quick
      test_observer_sees_every_idle_round;
    Alcotest.test_case "fast-forward: keep_alive polled every round" `Quick
      test_keep_alive_polled_every_round;
    Alcotest.test_case "fast-forward: huge min_rounds, identical result" `Quick
      test_min_rounds_fast_forward_result;
    Alcotest.test_case "fast-forward: delayed message wakes the engine" `Quick
      test_delay_fault_fast_forward;
    Alcotest.test_case "round-limit payloads identical" `Quick
      test_round_limit_payloads_identical;
  ]
