(* The event-driven engine is pinned bit-identical to Engine.run on
   every materialisable topology: same completions, rounds, messages,
   backlog, observer streams, fault tallies, metrics content and
   Round_limit_exceeded payloads — fault-free, faulty and under the
   identity dynamic schedule. Injections are pinned against an on_tick
   wrapper, declared starters against an on_start that returns [] off
   the request set, and halt_after against an observer-driven halt.
   Plus the implicit topology families themselves: materialisation
   agrees with the Gen twins, and next_hop is strictly
   distance-decreasing. *)

module Engine = Countq_simnet.Engine
module Event = Countq_simnet.Event_engine
module Faults = Countq_simnet.Faults
module Dynamic = Countq_simnet.Dynamic
module Metrics = Countq_simnet.Metrics
module Graph = Countq_topology.Graph
module Gen = Countq_topology.Gen
module Implicit = Countq_topology.Implicit
module Bfs = Countq_topology.Bfs

let mix a b =
  let h = ref ((a * 0x9e3779b1) + (b * 0x85ebca6b)) in
  h := !h lxor (!h lsr 13);
  h := !h * 0xc2b2ae35;
  h := !h lxor (!h lsr 16);
  !h land max_int

type msg = { ttl : int; tag : int }

let pick_nbr graph v h =
  let a = Graph.neighbors graph v in
  if Array.length a = 0 then None else Some a.(h mod Array.length a)

(* The same seed-parameterised flooding protocol test_equiv pins the
   two dense engines with, optionally gated to start only on a request
   subset (so the lazy-starter contract holds off the subset). *)
let hash_protocol ?starts ~seed ~graph () =
  let may_start node =
    match starts with None -> true | Some l -> List.mem node l
  in
  {
    Engine.name = "qcheck-hash";
    initial_state = (fun v -> mix seed v);
    on_start =
      (fun ~node s ->
        if not (may_start node) then (s, [])
        else
          let h = mix seed node in
          let acts =
            if h mod 3 = 0 then
              match pick_nbr graph node h with
              | Some d ->
                  [ Engine.Send (d, { ttl = 2 + (h mod 5); tag = h land 0xffff }) ]
              | None -> []
            else []
          in
          let acts =
            if h mod 7 = 0 then Engine.Complete (node, h land 0xff) :: acts
            else acts
          in
          (s, acts));
    on_receive =
      (fun ~round ~node ~src m s ->
        let h = mix (mix s m.tag) (mix src round) in
        let acts = ref [] in
        (if m.ttl > 0 then
           let fan = match h mod 4 with 0 -> 0 | 1 | 2 -> 1 | _ -> 2 in
           for i = 1 to fan do
             match pick_nbr graph node (mix h i) with
             | Some d ->
                 acts :=
                   Engine.Send
                     (d, { ttl = m.ttl - 1; tag = mix m.tag i land 0xffff })
                   :: !acts
             | None -> ()
           done);
        if h mod 5 = 0 then acts := Engine.Complete (node, m.tag) :: !acts;
        (mix s (m.tag + 1), !acts));
    on_tick = Engine.no_tick;
  }

let arbiter_of = function
  | 0 -> Engine.Round_robin
  | 1 -> Engine.Lowest_sender_first
  | _ ->
      Engine.Custom
        (fun ~round ~node ~candidates ->
          List.nth candidates (mix round node mod List.length candidates))

let arbiter_label = function
  | 0 -> "round-robin"
  | 1 -> "lowest-sender"
  | _ -> "custom-hash"

let plan_of = function
  | 0 -> Faults.none
  | 1 -> Faults.drop_nth 3
  | 2 -> Faults.dup_nth 5
  | 3 -> Faults.delay_nth ~by:4 2
  | 4 -> Faults.delay_nth ~by:50 1
  | 5 -> Faults.random ~label:"lossy" ~seed:42L ~drop:0.1 ()
  | 6 ->
      Faults.random ~label:"chaos" ~seed:7L ~drop:0.05 ~duplicate:0.1
        ~delay:0.2 ~delay_max:9 ()
  | 7 ->
      Faults.crash_only ~label:"crash-restart"
        [ { node = 0; at_round = 2; recover_at = Some 6 } ]
  | _ -> Faults.random ~label:"jitter" ~seed:9L ~delay:0.4 ~delay_max:30 ()

let config_of (rc, sc, arb, minr, maxr) =
  {
    Engine.receive_capacity = rc;
    send_capacity = sc;
    arbiter = arbiter_of arb;
    max_rounds = maxr;
    min_rounds = minr;
  }

(* Run one engine, capturing the result (or the round-limit payload),
   the observer stream, the fault tallies and the metrics content. *)
let capture which ~observe ~with_metrics ~dyn ~plan ~graph ~config ~protocol =
  let events = ref [] in
  let observer =
    if observe then
      Some
        {
          Engine.on_deliver =
            (fun ~round ~src ~dst -> events := `Deliver (round, src, dst) :: !events);
          on_complete =
            (fun ~round ~node ~value -> events := `Complete (round, node, value) :: !events);
          on_round_end =
            (fun ~round ~in_flight ->
              events := `Round_end (round, in_flight) :: !events;
              `Continue);
        }
    else None
  in
  let faults = Option.map Faults.start plan in
  let dynamic = if dyn then Some (Dynamic.start (Dynamic.identity graph)) else None in
  let metrics = if with_metrics then Some (Metrics.create ~graph) else None in
  let outcome =
    match
      match which with
      | `Engine ->
          Engine.run ?faults ?dynamic ?observer ?metrics ~graph ~config
            ~protocol ()
      | `Event ->
          Event.run ?faults ?dynamic ?observer ?metrics
            ~topo:(Implicit.of_graph graph) ~config ~protocol ()
    with
    | r -> Ok r
    | exception Engine.Round_limit_exceeded
          { limit; outstanding; queued; held; busiest } ->
        Error (limit, outstanding, queued, held, busiest)
  in
  ( outcome,
    List.rev !events,
    Option.map Faults.stats faults,
    Option.map (fun m -> (Metrics.per_node m, Metrics.per_edge m)) metrics )

let scenario_gen =
  let open QCheck2.Gen in
  let* topo = Helpers.topology_gen in
  let* seed = int_range 0 100_000 in
  let* rc = int_range 1 3 in
  let* sc = int_range 1 3 in
  let* arb = int_range 0 2 in
  let* minr = oneofl [ 0; 7 ] in
  let* maxr = oneofl [ 4; 2_000 ] in
  let* plan = int_range 0 8 in
  let* dyn = bool in
  let* with_metrics = bool in
  return (topo, seed, (rc, sc, arb, minr, maxr), plan, dyn, with_metrics)

let scenario_print ((name, g), seed, (rc, sc, arb, minr, maxr), plan, dyn, wm) =
  Printf.sprintf
    "%s (n=%d) seed=%d rcv=%d snd=%d arb=%s min_rounds=%d max_rounds=%d \
     plan=%s dyn=%b metrics=%b"
    name (Graph.n g) seed rc sc (arbiter_label arb) minr maxr
    (Faults.label (plan_of plan))
    dyn wm

let equiv_prop ~observe ((_, graph), seed, cfg, plan, dyn, with_metrics) =
  let config = config_of cfg in
  let protocol = hash_protocol ~seed ~graph () in
  let plan = if plan = 0 then None else Some (plan_of plan) in
  let a = capture `Engine ~observe ~with_metrics ~dyn ~plan ~graph ~config ~protocol in
  let b = capture `Event ~observe ~with_metrics ~dyn ~plan ~graph ~config ~protocol in
  a = b

let equiv_default =
  QCheck2.Test.make ~count:150 ~name:"event = engine (default hooks)"
    ~print:scenario_print scenario_gen (equiv_prop ~observe:false)

let equiv_observed =
  QCheck2.Test.make ~count:150 ~name:"event = engine (observed, traced)"
    ~print:scenario_print scenario_gen (equiv_prop ~observe:true)

(* ------------------------------------------------------------------ *)
(* Injections vs an on_tick wrapper: a schedule of (round, node) events
   fed through ?injections must replay exactly like an Engine protocol
   whose tick fires the same closures at the same instants.            *)

(* What one scheduled event does at (round, node): a pure function of
   the seed, shared by both encodings. *)
let fire ~seed ~graph ~round ~node s =
  let h = mix seed (mix round node) in
  let acts =
    match pick_nbr graph node h with
    | Some d -> [ Engine.Send (d, { ttl = 1 + (h mod 3); tag = h land 0xffff }) ]
    | None -> []
  in
  let acts =
    if h mod 4 = 0 then Engine.Complete (node, h land 0xff) :: acts else acts
  in
  (mix s h, acts)

let quiet_hash ~seed ~graph =
  { (hash_protocol ~starts:[] ~seed ~graph ()) with name = "qcheck-injected" }

let injection_gen =
  let open QCheck2.Gen in
  let* topo = Helpers.topology_gen in
  let n = Graph.n (snd topo) in
  let* seed = int_range 0 100_000 in
  let* k = int_range 0 10 in
  let* evs = list_size (return k) (pair (int_range 1 12) (int_range 0 (n - 1))) in
  let evs = List.sort_uniq compare evs in
  let* rc = int_range 1 2 in
  let* arb = int_range 0 2 in
  let* plan = int_range 0 8 in
  let* observe = bool in
  return (topo, seed, evs, (rc, 1, arb, 12, 2_000), plan, observe)

let injection_print ((name, g), seed, evs, _, plan, observe) =
  Printf.sprintf "%s (n=%d) seed=%d events=[%s] plan=%s observe=%b" name
    (Graph.n g) seed
    (String.concat ";"
       (List.map (fun (t, v) -> Printf.sprintf "%d@%d" v t) evs))
    (Faults.label (plan_of plan))
    observe

let injection_prop ((_, graph), seed, evs, cfg, plan, observe) =
  (* min_rounds = 12 >= every event round, so the ticking engine is
     still running when the last scheduled event fires. *)
  let config = config_of cfg in
  let base = quiet_hash ~seed ~graph in
  let ticking =
    {
      base with
      on_tick =
        Some
          (fun ~round ~node s ->
            if List.mem (round, node) evs then fire ~seed ~graph ~round ~node s
            else (s, []));
    }
  in
  let injections =
    Array.of_list
      (List.map
         (fun (at, node) ->
           { Event.at; node; inject = (fun s -> fire ~seed ~graph ~round:at ~node s) })
         evs)
  in
  let plan = if plan = 0 then None else Some (plan_of plan) in
  let a =
    capture `Engine ~observe ~with_metrics:false ~dyn:false ~plan ~graph
      ~config ~protocol:ticking
  in
  let b =
    let events = ref [] in
    let observer =
      if observe then
        Some
          {
            Engine.on_deliver =
              (fun ~round ~src ~dst -> events := `Deliver (round, src, dst) :: !events);
            on_complete =
              (fun ~round ~node ~value -> events := `Complete (round, node, value) :: !events);
            on_round_end =
              (fun ~round ~in_flight ->
                events := `Round_end (round, in_flight) :: !events;
                `Continue);
          }
      else None
    in
    let faults = Option.map Faults.start plan in
    let outcome =
      match
        Event.run ?faults ?observer ~injections ~topo:(Implicit.of_graph graph)
          ~config ~protocol:base ()
      with
      | r -> Ok r
      | exception Engine.Round_limit_exceeded
            { limit; outstanding; queued; held; busiest } ->
          Error (limit, outstanding, queued, held, busiest)
    in
    (outcome, List.rev !events, Option.map Faults.stats faults, None)
  in
  a = b

let equiv_injections =
  QCheck2.Test.make ~count:150 ~name:"injections = on_tick wrapper"
    ~print:injection_print injection_gen injection_prop

(* ------------------------------------------------------------------ *)
(* Declared starters vs an on_start gated to the request subset.       *)

let starters_gen =
  let open QCheck2.Gen in
  let* name, g, requests = Helpers.instance_gen in
  let* seed = int_range 0 100_000 in
  let* rc = int_range 1 3 in
  let* arb = int_range 0 2 in
  let* plan = int_range 0 8 in
  return ((name, g, requests), seed, (rc, 1, arb, 0, 2_000), plan)

let starters_print ((name, g, requests), seed, _, plan) =
  Printf.sprintf "%s (n=%d) R={%s} seed=%d plan=%s" name (Graph.n g)
    (String.concat "," (List.map string_of_int requests))
    seed
    (Faults.label (plan_of plan))

let starters_prop ((_, graph, requests), seed, cfg, plan) =
  let config = config_of cfg in
  let protocol = hash_protocol ~starts:requests ~seed ~graph () in
  let plan = if plan = 0 then None else Some (plan_of plan) in
  let a =
    capture `Engine ~observe:false ~with_metrics:false ~dyn:false ~plan ~graph
      ~config ~protocol
  in
  let b =
    let faults = Option.map Faults.start plan in
    let outcome =
      match
        Event.run ?faults ~starters:requests ~topo:(Implicit.of_graph graph)
          ~config ~protocol ()
      with
      | r -> Ok r
      | exception Engine.Round_limit_exceeded
            { limit; outstanding; queued; held; busiest } ->
          Error (limit, outstanding, queued, held, busiest)
    in
    (outcome, [], Option.map Faults.stats faults, None)
  in
  a = b

let equiv_starters =
  QCheck2.Test.make ~count:150 ~name:"?starters = gated on_start"
    ~print:starters_print starters_gen starters_prop

(* ------------------------------------------------------------------ *)
(* Laziness itself: a single ping on a million-node implicit list must
   touch two nodes, and a wrongly omitted starter must fail loudly.    *)

let one_ping =
  {
    Engine.name = "one-ping";
    initial_state = (fun _ -> ());
    on_start =
      (fun ~node s -> if node = 0 then (s, [ Engine.Send (1, ()) ]) else (s, []));
    on_receive =
      (fun ~round ~node ~src:_ () s -> (s, [ Engine.Complete (node, round) ]));
    on_tick = Engine.no_tick;
  }

let test_million_node_ping_touches_two () =
  let topo = Implicit.list 1_000_000 in
  let stats = Event.fresh_stats () in
  let res =
    Event.run ~stats ~starters:[ 0 ] ~topo ~config:Engine.default_config
      ~protocol:one_ping ()
  in
  Alcotest.(check int) "one delivery" 1 res.messages;
  Alcotest.(check bool) "completed at node 1, round 1" true
    (res.completions = [ { Engine.node = 1; round = 1; value = (1, 1) } ]);
  Alcotest.(check int) "only the endpoints materialised" 2 stats.touched;
  Alcotest.(check int) "one busy round executed" 1 stats.executed_rounds;
  Alcotest.(check int) "one message in flight at peak" 1 stats.peak_in_flight

let test_non_starter_with_actions_rejected () =
  (* Node 1 would have spoken at time 0 but is not declared: its lazy
     on_start (triggered by 0's ping) must raise, not drop actions. *)
  let chatty =
    {
      one_ping with
      on_start = (fun ~node s -> (s, [ Engine.Send ((node + 1) mod 3, ()) ]));
    }
  in
  Alcotest.check_raises "undeclared starter fails loudly"
    (Invalid_argument
       "Event_engine.run: node 1 is not in ?starters but its on_start \
        produced actions")
    (fun () ->
      ignore
        (Event.run ~starters:[ 0 ] ~topo:(Implicit.ring 3)
           ~config:Engine.default_config ~protocol:chatty ()))

let test_tick_protocol_rejected () =
  let ticking =
    { one_ping with on_tick = Some (fun ~round:_ ~node:_ s -> (s, [])) }
  in
  let raised =
    try
      ignore
        (Event.run ~topo:(Implicit.list 4) ~config:Engine.default_config
           ~protocol:ticking ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "on_tick protocols are refused" true raised

(* ------------------------------------------------------------------ *)
(* halt_after vs an observer-driven halt.                              *)

let ping_pong =
  {
    Engine.name = "pingpong";
    initial_state = (fun _ -> ());
    on_start =
      (fun ~node s -> if node = 0 then (s, [ Engine.Send (1, ()) ]) else (s, []));
    on_receive = (fun ~round:_ ~node:_ ~src msg s -> (s, [ Engine.Send (src, msg) ]));
    on_tick = Engine.no_tick;
  }

let test_halt_after_matches_observer_halt () =
  let graph = Gen.path 2 in
  let config = { Engine.default_config with max_rounds = 10_000 } in
  let halted_at h =
    let observer =
      {
        Engine.null_observer with
        on_round_end =
          (fun ~round ~in_flight:_ -> if round >= h then `Halt else `Continue);
      }
    in
    Engine.run ~observer ~graph ~config ~protocol:ping_pong ()
  in
  let event_halted h =
    Event.run ~halt_after:h ~topo:(Implicit.of_graph graph) ~config
      ~protocol:ping_pong ()
  in
  List.iter
    (fun h ->
      Alcotest.(check bool)
        (Printf.sprintf "halt_after %d = observer halt" h)
        true
        (event_halted h = halted_at h))
    [ 1; 7; 30 ];
  (* On a run that drains before the horizon, halt_after is inert. *)
  let quiet = Event.run ~topo:(Implicit.list 5) ~config ~protocol:one_ping () in
  let capped =
    Event.run ~halt_after:500 ~topo:(Implicit.list 5) ~config ~protocol:one_ping ()
  in
  Alcotest.(check bool) "halt_after beyond quiescence is inert" true
    (quiet = capped)

let test_round_limit_payloads_identical () =
  (* Ping-pong with one long-delayed message at max_rounds = 25: both
     engines raise with the same payload, held messages included. *)
  let graph = Gen.path 2 in
  let config = { Engine.default_config with max_rounds = 25 } in
  let plan () = Faults.start (Faults.delay_nth ~by:1_000 4) in
  let payload run =
    match run () with
    | (_ : (int * int) Engine.result) ->
        Alcotest.fail "expected Round_limit_exceeded"
    | exception Engine.Round_limit_exceeded
          { limit; outstanding; queued; held; busiest } ->
        (limit, outstanding, queued, held, busiest)
  in
  let ping_pong_c =
    {
      ping_pong with
      on_receive =
        (fun ~round:_ ~node:_ ~src msg s -> (s, [ Engine.Send (src, msg) ]));
    }
  in
  ignore ping_pong_c;
  let a =
    payload (fun () ->
        Engine.run ~faults:(plan ()) ~graph ~config ~protocol:ping_pong ())
  in
  let b =
    payload (fun () ->
        Event.run ~faults:(plan ()) ~topo:(Implicit.of_graph graph) ~config
          ~protocol:ping_pong ())
  in
  Alcotest.(check bool) "payloads identical" true (a = b);
  let _, _, _, held, _ = a in
  Alcotest.(check int) "the delayed message is held" 1 held

(* ------------------------------------------------------------------ *)
(* Implicit families vs their Gen twins.                               *)

let families =
  [
    ("list-1", Implicit.list 1, Gen.path 1);
    ("list-2", Implicit.list 2, Gen.path 2);
    ("list-9", Implicit.list 9, Gen.path 9);
    ("ring-3", Implicit.ring 3, Gen.cycle 3);
    ("ring-4", Implicit.ring 4, Gen.cycle 4);
    ("ring-11", Implicit.ring 11, Gen.cycle 11);
    ("mesh-1", Implicit.mesh ~dims:[ 1 ], Gen.mesh ~dims:[ 1 ]);
    ("mesh-5", Implicit.mesh ~dims:[ 5 ], Gen.mesh ~dims:[ 5 ]);
    ("mesh-2x3", Implicit.mesh ~dims:[ 2; 3 ], Gen.mesh ~dims:[ 2; 3 ]);
    ("mesh-4x4", Implicit.mesh ~dims:[ 4; 4 ], Gen.mesh ~dims:[ 4; 4 ]);
    ("mesh-3x4x2", Implicit.mesh ~dims:[ 3; 4; 2 ], Gen.mesh ~dims:[ 3; 4; 2 ]);
    ("mesh-1x5", Implicit.mesh ~dims:[ 1; 5 ], Gen.mesh ~dims:[ 1; 5 ]);
    ("torus-3", Implicit.torus ~dims:[ 3 ], Gen.torus ~dims:[ 3 ]);
    ("torus-2x3", Implicit.torus ~dims:[ 2; 3 ], Gen.torus ~dims:[ 2; 3 ]);
    ("torus-3x3", Implicit.torus ~dims:[ 3; 3 ], Gen.torus ~dims:[ 3; 3 ]);
    ("torus-5x4", Implicit.torus ~dims:[ 5; 4 ], Gen.torus ~dims:[ 5; 4 ]);
    ( "torus-3x4x5",
      Implicit.torus ~dims:[ 3; 4; 5 ],
      Gen.torus ~dims:[ 3; 4; 5 ] );
    ("tree-1-7", Implicit.tree ~arity:1 7, Gen.balanced_tree_on ~arity:1 7);
    ("tree-2-1", Implicit.tree ~arity:2 1, Gen.balanced_tree_on ~arity:2 1);
    ("tree-2-12", Implicit.tree ~arity:2 12, Gen.balanced_tree_on ~arity:2 12);
    ("tree-3-20", Implicit.tree ~arity:3 20, Gen.balanced_tree_on ~arity:3 20);
    ("tree-4-9", Implicit.tree ~arity:4 9, Gen.balanced_tree_on ~arity:4 9);
  ]

let test_families_match_gen () =
  List.iter
    (fun (name, imp, twin) ->
      Alcotest.(check bool)
        (name ^ ": materialises to the Gen twin")
        true
        (Graph.equal (Implicit.materialise imp) twin))
    families

let test_neighbors_degree_agree () =
  List.iter
    (fun (name, imp, twin) ->
      let n = Implicit.n imp in
      Alcotest.(check int) (name ^ ": n") (Graph.n twin) n;
      Alcotest.(check int)
        (name ^ ": max_degree")
        (Graph.max_degree twin) (Implicit.max_degree imp);
      for v = 0 to n - 1 do
        let a = Implicit.neighbors imp v in
        Alcotest.(check (array int))
          (Printf.sprintf "%s: neighbors %d" name v)
          (Graph.neighbors twin v) a;
        Alcotest.(check int)
          (Printf.sprintf "%s: degree %d" name v)
          (Array.length a) (Implicit.degree imp v);
        Array.iteri
          (fun k u ->
            Alcotest.(check int)
              (Printf.sprintf "%s: neighbor %d %d" name v k)
              u
              (Implicit.neighbor imp v k))
          a
      done)
    families

let test_next_hop_decreases_distance () =
  List.iter
    (fun (name, imp, twin) ->
      let n = Implicit.n imp in
      for dst = 0 to n - 1 do
        let dist = Bfs.distances twin dst in
        for src = 0 to n - 1 do
          if src <> dst then begin
            let h = Implicit.next_hop imp ~src ~dst in
            Alcotest.(check bool)
              (Printf.sprintf "%s: %d->%d hop %d is a neighbour" name src dst h)
              true
              (Array.exists (( = ) h) (Implicit.neighbors imp src));
            Alcotest.(check int)
              (Printf.sprintf "%s: %d->%d strictly closer" name src dst)
              (dist.(src) - 1)
              dist.(h)
          end
        done
      done)
    families

let of_graph_next_hop =
  QCheck2.Test.make ~count:100 ~name:"of_graph next_hop strictly closer"
    ~print:Helpers.topology_print Helpers.topology_gen
    (fun (_, g) ->
      let imp = Implicit.of_graph g in
      let n = Graph.n g in
      n < 2
      ||
      let ok = ref true in
      for dst = 0 to min (n - 1) 9 do
        let dist = Bfs.distances g dst in
        for src = 0 to n - 1 do
          if src <> dst then begin
            let h = Implicit.next_hop imp ~src ~dst in
            if dist.(h) <> dist.(src) - 1 then ok := false
          end
        done
      done;
      !ok)

let test_closed_form_routing_at_scale () =
  (* Spot-checks where materialisation would be absurd. *)
  let l = Implicit.list 10_000_000 in
  Alcotest.(check int) "list forward" 5_000_001
    (Implicit.next_hop l ~src:5_000_000 ~dst:9_999_999);
  Alcotest.(check int) "list backward" 4_999_999
    (Implicit.next_hop l ~src:5_000_000 ~dst:17);
  let r = Implicit.ring 1_000_001 in
  Alcotest.(check int) "ring wraps the short way" 0
    (Implicit.next_hop r ~src:1_000_000 ~dst:3);
  let t = Implicit.tree ~arity:2 (1 lsl 22) in
  Alcotest.(check int) "tree climbs to the parent" (((1 lsl 20) - 1) / 2)
    (Implicit.next_hop t ~src:((1 lsl 20) - 1) ~dst:0);
  Alcotest.(check int) "tree descends to the child" 1
    (Implicit.next_hop t ~src:0 ~dst:(1 lsl 21));
  Alcotest.(check int) "tree descends to the other child" 2
    (Implicit.next_hop t ~src:0 ~dst:6)

let test_parse () =
  let ok spec label n =
    match Implicit.parse spec with
    | Ok t ->
        Alcotest.(check string) (spec ^ ": label") label (Implicit.label t);
        Alcotest.(check int) (spec ^ ": n") n (Implicit.n t)
    | Error (`Msg m) -> Alcotest.fail (spec ^ " rejected: " ^ m)
  in
  ok "list:1000000" "list-1000000" 1_000_000;
  ok "path:7" "list-7" 7;
  ok "ring:100" "ring-100" 100;
  ok "cycle:2" "ring-3" 3;
  ok "mesh:9" "mesh-3x3" 9;
  ok "mesh:4x5" "mesh-4x5" 20;
  ok "torus:2" "torus-3x3" 9;
  ok "torus:10x10" "torus-10x10" 100;
  ok "tree:15" "tree-2-15" 15;
  ok "binary-tree" "tree-2-1024" 1024;
  ok "tree:3:1093" "tree-3-1093" 1093;
  List.iter
    (fun bad ->
      match Implicit.parse bad with
      | Ok _ -> Alcotest.fail (bad ^ " should be rejected")
      | Error _ -> ())
    [
      "torus:2x3"; "mesh:0"; "list:axb"; "klein-bottle:4"; "mesh:";
      "mesh:3:9"; "tree:0:7"; "tree:3:1093:2";
      (* Sizes past the 2^30-node ceiling must be an Error up front,
         not an allocation failure later — including dimension
         products that overflow the int. *)
      "list:1073741825"; "torus:100000x100000x100000";
      "mesh:3037000500x3037000500"; "tree:2:1073741825";
    ]

let suite =
  [
    Helpers.qcheck equiv_default;
    Helpers.qcheck equiv_observed;
    Helpers.qcheck equiv_injections;
    Helpers.qcheck equiv_starters;
    Alcotest.test_case "million-node ping touches two nodes" `Quick
      test_million_node_ping_touches_two;
    Alcotest.test_case "undeclared starter with actions rejected" `Quick
      test_non_starter_with_actions_rejected;
    Alcotest.test_case "tick protocols rejected" `Quick
      test_tick_protocol_rejected;
    Alcotest.test_case "halt_after = observer halt" `Quick
      test_halt_after_matches_observer_halt;
    Alcotest.test_case "round-limit payloads identical" `Quick
      test_round_limit_payloads_identical;
    Alcotest.test_case "implicit families materialise to Gen twins" `Quick
      test_families_match_gen;
    Alcotest.test_case "neighbors/degree/neighbor agree" `Quick
      test_neighbors_degree_agree;
    Alcotest.test_case "next_hop strictly decreases distance" `Quick
      test_next_hop_decreases_distance;
    Helpers.qcheck of_graph_next_hop;
    Alcotest.test_case "closed-form routing at scale" `Quick
      test_closed_form_routing_at_scale;
    Alcotest.test_case "parse" `Quick test_parse;
  ]
