(* Tests for Countq_util.Stats. *)

module Stats = Countq_util.Stats

let force = function
  | Some v -> v
  | None -> Alcotest.fail "unexpected None from Stats"

let test_single () =
  let s = force (Stats.summarize [ 7 ]) in
  Alcotest.(check int) "count" 1 s.count;
  Alcotest.(check (float 0.)) "mean" 7. s.mean;
  Alcotest.(check (float 0.)) "median" 7. s.median;
  Alcotest.(check int) "min" 7 s.min;
  Alcotest.(check int) "max" 7 s.max;
  Alcotest.(check (float 0.)) "stddev" 0. s.stddev

let test_basic () =
  let s = force (Stats.summarize [ 4; 1; 3; 2 ]) in
  Alcotest.(check int) "total" 10 s.total;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.mean;
  Alcotest.(check (float 1e-9)) "median" 2.5 s.median;
  Alcotest.(check int) "min" 1 s.min;
  Alcotest.(check int) "max" 4 s.max

let test_stddev () =
  let s = force (Stats.summarize [ 2; 4; 4; 4; 5; 5; 7; 9 ]) in
  Alcotest.(check (float 1e-9)) "classic example" 2.0 s.stddev

let test_percentile_interpolation () =
  let sorted = [| 10.; 20.; 30.; 40. |] in
  Alcotest.(check (float 1e-9)) "p0" 10. (force (Stats.percentile sorted 0.));
  Alcotest.(check (float 1e-9)) "p100" 40. (force (Stats.percentile sorted 1.));
  Alcotest.(check (float 1e-9))
    "p50 interpolates" 25.
    (force (Stats.percentile sorted 0.5))

let test_percentile_validation () =
  Alcotest.(check (option (float 0.)))
    "empty is None" None
    (Stats.percentile [||] 0.5);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Stats.percentile: q outside [0, 1]") (fun () ->
      ignore (Stats.percentile [| 1. |] 1.5));
  Alcotest.check_raises "q out of range, empty input"
    (Invalid_argument "Stats.percentile: q outside [0, 1]") (fun () ->
      ignore (Stats.percentile_ints [] 1.5))

let test_empty_total () =
  (* Empty inputs are a normal outcome (every span stranded), not an
     error: the whole Stats surface is total on them. *)
  Alcotest.(check bool) "summarize empty" true (Stats.summarize [] = None);
  Alcotest.(check (option (float 0.)))
    "percentile_ints empty" None
    (Stats.percentile_ints [] 0.99);
  (* A zero-completion run used to crash the timeline's histogram on
     [List.fold_left min max_int []]. *)
  Alcotest.(check bool) "histogram empty" true (Stats.histogram [] = []);
  Alcotest.(check string)
    "render_histogram empty" ""
    (Stats.render_histogram (Stats.histogram ~bins:7 []))

let test_percentile_ints () =
  let samples = [ 40; 10; 30; 20 ] in
  Alcotest.(check (float 1e-9)) "p0" 10. (force (Stats.percentile_ints samples 0.));
  Alcotest.(check (float 1e-9)) "p50" 25. (force (Stats.percentile_ints samples 0.5));
  Alcotest.(check (float 1e-9)) "p100" 40. (force (Stats.percentile_ints samples 1.))

let test_histogram_small_span () =
  (* Span smaller than the bin budget: one bucket per distinct value. *)
  match Stats.histogram ~bins:10 [ 3; 3; 4 ] with
  | [ { lo = 3; hi = 3; bcount = 2 }; { lo = 4; hi = 4; bcount = 1 } ] -> ()
  | bs ->
      Alcotest.failf "unexpected buckets: %s"
        (String.concat ";"
           (List.map
              (fun (b : Stats.bucket) ->
                Printf.sprintf "{%d,%d,%d}" b.lo b.hi b.bcount)
              bs))

let prop_histogram_partitions =
  QCheck2.Test.make ~name:"histogram partitions the range, counts conserve"
    ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 60) (int_range (-100) 100))
        (int_range 1 12))
    (fun (samples, bins) ->
      let bs = Stats.histogram ~bins samples in
      let lo = List.fold_left min max_int samples in
      let hi = List.fold_left max min_int samples in
      let rec contiguous = function
        | (a : Stats.bucket) :: (b : Stats.bucket) :: rest ->
            a.hi + 1 = b.lo && contiguous (b :: rest)
        | _ -> true
      in
      List.length bs <= max bins (hi - lo + 1)
      && (List.hd bs).lo = lo
      && (List.nth bs (List.length bs - 1)).hi = hi
      && contiguous bs
      && List.fold_left (fun acc (b : Stats.bucket) -> acc + b.bcount) 0 bs
         = List.length samples
      && List.for_all
           (fun (b : Stats.bucket) ->
             b.bcount
             = List.length
                 (List.filter (fun x -> x >= b.lo && x <= b.hi) samples))
           bs)

let test_render_histogram_golden () =
  let rendered =
    Stats.render_histogram ~width:4 (Stats.histogram ~bins:2 [ 0; 0; 1 ])
  in
  let expected =
    Printf.sprintf "%6d..%-6d %6d %s\n%6d..%-6d %6d %s\n" 0 0 2 "####" 1 1 1
      "##"
  in
  Alcotest.(check string) "golden" expected rendered

let check_buckets name ~expect_n ~samples ~bins =
  let bs = Stats.histogram ~bins samples in
  let lo = List.fold_left min max_int samples in
  let hi = List.fold_left max min_int samples in
  Alcotest.(check int) (name ^ ": bucket count") expect_n (List.length bs);
  Alcotest.(check int) (name ^ ": first lo") lo (List.hd bs).lo;
  Alcotest.(check int)
    (name ^ ": last hi")
    hi
    (List.nth bs (List.length bs - 1)).hi;
  Alcotest.(check int)
    (name ^ ": counts conserve")
    (List.length samples)
    (List.fold_left (fun acc (b : Stats.bucket) -> acc + b.bcount) 0 bs);
  let rec contiguous = function
    | (a : Stats.bucket) :: (b : Stats.bucket) :: rest ->
        Alcotest.(check int) (name ^ ": contiguous") (a.hi + 1) b.lo;
        contiguous (b :: rest)
    | _ -> ()
  in
  contiguous bs;
  bs

let test_histogram_single_value () =
  (* All-equal samples: span 1, so exactly one bucket regardless of the
     bin budget. *)
  match check_buckets "single" ~expect_n:1 ~samples:[ 5; 5; 5 ] ~bins:10 with
  | [ { lo = 5; hi = 5; bcount = 3 } ] -> ()
  | _ -> Alcotest.fail "single-value histogram"

let test_histogram_bins_exceed_span () =
  (* bins > span: one bucket per value in the range, including the
     empty middle one. *)
  match
    check_buckets "bins>span" ~expect_n:3 ~samples:[ 7; 9; 9 ] ~bins:100
  with
  | [
      { lo = 7; hi = 7; bcount = 1 };
      { lo = 8; hi = 8; bcount = 0 };
      { lo = 9; hi = 9; bcount = 2 };
    ] ->
      ()
  | _ -> Alcotest.fail "bins-exceed-span histogram"

let test_histogram_extreme_span () =
  (* min_int and max_int together: the span [hi - lo + 1] does not fit
     a native int, the buckets must still partition exactly. *)
  let bs =
    check_buckets "extreme" ~expect_n:4
      ~samples:[ min_int; -1; 0; max_int ]
      ~bins:4
  in
  List.iter
    (fun (b : Stats.bucket) ->
      Alcotest.(check bool) "extreme: bounds ordered" true (b.lo <= b.hi))
    bs;
  (* Width of each bucket is span/4 = 2^61 exactly: check via the
     difference, which fits an int. *)
  List.iter
    (fun (b : Stats.bucket) ->
      Alcotest.(check int) "extreme: width" (1 lsl 61) (b.hi - b.lo + 1))
    bs

let test_histogram_extreme_span_remainder () =
  (* A full-range span minus a little, with bins that do not divide it:
     the first [span mod bins] buckets are one wider. *)
  let bs =
    check_buckets "extreme-rem" ~expect_n:3
      ~samples:[ min_int + 1; max_int ]
      ~bins:3
  in
  let widths = List.map (fun (b : Stats.bucket) -> b.hi - b.lo) bs in
  (* span = 2^63 - 1 (as a mathematical value); widths differ by at
     most one, wider buckets first. *)
  (match widths with
  | [ a; b; c ] ->
      Alcotest.(check bool) "extreme-rem: monotone widths" true
        (a >= b && b >= c && a - c <= 1)
  | _ -> Alcotest.fail "bucket count");
  Alcotest.(check int) "extreme-rem: total samples" 2
    (List.fold_left (fun acc (b : Stats.bucket) -> acc + b.bcount) 0 bs)

let test_histogram_remainder_widths () =
  (* span 10 over 4 bins: widths 3,3,2,2 (remainder spread first). *)
  let bs =
    check_buckets "remainder" ~expect_n:4
      ~samples:[ 0; 3; 5; 9 ]
      ~bins:4
  in
  Alcotest.(check (list int))
    "remainder: widths" [ 3; 3; 2; 2 ]
    (List.map (fun (b : Stats.bucket) -> b.hi - b.lo + 1) bs)

let test_percentile_single_value () =
  let sorted = [| 42. |] in
  List.iter
    (fun q ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "q=%.2f" q)
        42.
        (force (Stats.percentile sorted q)))
    [ 0.; 0.25; 0.5; 0.95; 1. ]

let prop_bounds_hold =
  QCheck2.Test.make ~name:"min <= median <= p95 <= max, mean in range"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (int_range 0 1000))
    (fun samples ->
      let s = match Stats.summarize samples with
        | Some s -> s
        | None -> QCheck2.assume_fail ()
      in
      float_of_int s.min <= s.median
      && s.median <= s.p95 +. 1e-9
      && s.p95 <= float_of_int s.max +. 1e-9
      && s.mean >= float_of_int s.min
      && s.mean <= float_of_int s.max)

let suite =
  [
    Alcotest.test_case "single" `Quick test_single;
    Alcotest.test_case "basic" `Quick test_basic;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "percentile interpolation" `Quick
      test_percentile_interpolation;
    Alcotest.test_case "percentile validation" `Quick test_percentile_validation;
    Alcotest.test_case "empty is total" `Quick test_empty_total;
    Alcotest.test_case "percentile_ints" `Quick test_percentile_ints;
    Alcotest.test_case "histogram small span" `Quick test_histogram_small_span;
    Alcotest.test_case "histogram single value" `Quick
      test_histogram_single_value;
    Alcotest.test_case "histogram bins exceed span" `Quick
      test_histogram_bins_exceed_span;
    Alcotest.test_case "histogram extreme span" `Quick
      test_histogram_extreme_span;
    Alcotest.test_case "histogram extreme span, remainder" `Quick
      test_histogram_extreme_span_remainder;
    Alcotest.test_case "histogram remainder widths" `Quick
      test_histogram_remainder_widths;
    Alcotest.test_case "percentile single value" `Quick
      test_percentile_single_value;
    Alcotest.test_case "render histogram golden" `Quick
      test_render_histogram_golden;
    Helpers.qcheck prop_histogram_partitions;
    Helpers.qcheck prop_bounds_hold;
  ]
