(* Tests for the windowed telemetry recorder and span reservoirs:
   window/ring accounting, passivity (attachment is bit-identical on
   both engines), the streaming completion sink, and the reservoir
   policies. *)

module Graph = Countq_topology.Graph
module Tree = Countq_topology.Tree
module Spanning = Countq_topology.Spanning
module Implicit = Countq_topology.Implicit
module Engine = Countq_simnet.Engine
module Event = Countq_simnet.Event_engine
module Telemetry = Countq_simnet.Telemetry
module Faults = Countq_simnet.Faults
module Sweep = Countq_counting.Sweep
module Json = Countq_util.Json

let sweep_instance g requests =
  let tree = Spanning.best_for_arrow g in
  let graph = Tree.to_graph tree in
  let protocol = Sweep.one_shot_protocol ~tree ~requests () in
  (graph, protocol)

(* Telemetry must be passive: attaching a recorder changes nothing in
   the result, on any topology — the same pin Metrics carries. *)
let prop_telemetry_bit_identical =
  QCheck2.Test.make ~name:"telemetry attachment is bit-identical (fault-free)"
    ~count:100 ~print:Helpers.instance_print Helpers.nonempty_instance_gen
    (fun (_, g, requests) ->
      let graph, protocol = sweep_instance g requests in
      let run ?telemetry () =
        Engine.run ?telemetry ~graph ~config:Engine.default_config ~protocol ()
      in
      let plain = run () in
      let tl = Telemetry.create ~window_size:4 () in
      plain = run ~telemetry:tl ())

(* Same through the fault layer, whose drop paths carry extra hooks. *)
let prop_telemetry_bit_identical_faulty =
  QCheck2.Test.make ~name:"telemetry attachment is bit-identical (faulty)"
    ~count:100
    ~print:(fun (i, seed) ->
      Printf.sprintf "%s seed=%d" (Helpers.instance_print i) seed)
    QCheck2.Gen.(pair Helpers.nonempty_instance_gen (int_range 0 1000))
    (fun ((_, g, requests), seed) ->
      let graph, protocol = sweep_instance g requests in
      let plan () =
        Faults.start
          (Faults.random ~label:"qcheck" ~seed:(Int64.of_int seed) ~drop:0.05
             ~duplicate:0.05 ~delay:0.1
             ~crashes:[ { Faults.node = 0; at_round = 4; recover_at = Some 6 } ]
             ())
      in
      let run ?telemetry () =
        Engine.run ~faults:(plan ()) ?telemetry ~graph
          ~config:Engine.default_config ~protocol ()
      in
      let plain = run () in
      let tl = Telemetry.create ~window_size:4 () in
      plain = run ~telemetry:tl ())

(* A minimal event-engine workload: each injection sends one hop right
   on the implicit list; the receiver completes with the sender id. *)
let hop_protocol =
  {
    Engine.name = "hop";
    initial_state = (fun _ -> ());
    on_start = (fun ~node:_ s -> (s, []));
    on_receive = (fun ~round:_ ~node:_ ~src _m s -> (s, [ Engine.Complete src ]));
    on_tick = Engine.no_tick;
  }

let hop_injections rounds =
  Array.of_list
    (List.map
       (fun (at, node) ->
         { Event.at; node; inject = (fun s -> (s, [ Engine.Send (node + 1, ()) ])) })
       rounds)

let run_hops ?telemetry ?sink () =
  let topo = Implicit.list 16 in
  Event.run ?telemetry ?sink
    ~injections:(hop_injections [ (1, 0); (1, 4); (3, 4); (40, 7) ])
    ~halt_after:64 ~starters:[] ~topo ~config:Engine.default_config
    ~protocol:hop_protocol ()

let test_event_engine_passive () =
  let plain = run_hops () in
  let tl = Telemetry.create ~window_size:8 () in
  let with_tl = run_hops ~telemetry:tl () in
  Alcotest.(check bool) "bit-identical" true (plain = with_tl);
  (* The gap jump to round 40 crosses several windows; they must
     appear, zeroed, in the snapshot. *)
  let ws = Telemetry.windows tl in
  Alcotest.(check int) "4 completions recorded" 4
    (List.fold_left (fun a w -> a + w.Telemetry.completions) 0 ws);
  Alcotest.(check bool)
    "some fast-forwarded window is all zero" true
    (List.exists
       (fun w -> w.Telemetry.sends = 0 && w.Telemetry.deliveries = 0)
       ws)

(* A sink streams the same completions the result would have retained,
   in the same order, and empties result.completions. *)
let test_sink_streams_completions () =
  let plain = run_hops () in
  let streamed = ref [] in
  let sunk = run_hops ~sink:(fun c -> streamed := c :: !streamed) () in
  Alcotest.(check bool)
    "sink sees the retained list, in order" true
    (List.rev !streamed = plain.Engine.completions);
  Alcotest.(check bool) "result retains nothing" true
    (sunk.Engine.completions = []);
  Alcotest.(check bool)
    "aggregates unchanged" true
    (plain.Engine.rounds = sunk.Engine.rounds
    && plain.Engine.messages = sunk.Engine.messages
    && plain.Engine.max_link_backlog = sunk.Engine.max_link_backlog)

(* Ring accounting: a window evicts once the ring wraps, and the live
   snapshot stays contiguous. *)
let test_ring_eviction () =
  let tl = Telemetry.create ~windows:2 ~window_size:4 () in
  Telemetry.note_send tl ~round:0;
  Telemetry.note_send tl ~round:5;
  Telemetry.note_complete tl ~round:9;
  Alcotest.(check int) "one window evicted" 1 (Telemetry.evicted tl);
  match Telemetry.windows tl with
  | [ w1; w2 ] ->
      Alcotest.(check int) "window 1 index" 1 w1.Telemetry.w_index;
      Alcotest.(check int) "window 1 sends" 1 w1.Telemetry.sends;
      Alcotest.(check int) "window 2 start" 8 w2.Telemetry.w_start;
      Alcotest.(check int) "window 2 completions" 1 w2.Telemetry.completions
  | ws -> Alcotest.failf "expected 2 live windows, got %d" (List.length ws)

let test_peaks_and_jsonl () =
  let tl = Telemetry.create ~window_size:10 () in
  Telemetry.note_backlog tl ~round:3 ~backlog:2;
  Telemetry.note_backlog tl ~round:4 ~backlog:7;
  Telemetry.note_backlog tl ~round:5 ~backlog:1;
  Telemetry.note_in_flight tl ~round:5 ~in_flight:9;
  Telemetry.note_drop tl ~round:5;
  Telemetry.note_retransmit tl ~round:6;
  (match Telemetry.windows tl with
  | [ w ] ->
      Alcotest.(check int) "peak backlog" 7 w.Telemetry.max_backlog;
      Alcotest.(check int) "peak in-flight" 9 w.Telemetry.max_in_flight;
      Alcotest.(check int) "drops" 1 w.Telemetry.drops;
      Alcotest.(check int) "retransmits" 1 w.Telemetry.retransmits
  | ws -> Alcotest.failf "expected 1 window, got %d" (List.length ws));
  String.split_on_char '\n' (Telemetry.to_jsonl tl)
  |> List.filter (fun l -> l <> "")
  |> List.iter (fun line ->
         match Json.of_string line with
         | Error e -> Alcotest.failf "unparseable line %S: %s" line e
         | Ok j -> (
             match Json.member "type" j with
             | Some (Json.Str "window") -> ()
             | _ -> Alcotest.failf "bad type tag in %S" line))

let test_sparkline () =
  Alcotest.(check string)
    "all-zero" "\xe2\x96\x81\xe2\x96\x81\xe2\x96\x81"
    (Telemetry.sparkline [| 0.; 0.; 0. |]);
  Alcotest.(check string)
    "scaled" "\xe2\x96\x82\xe2\x96\x84\xe2\x96\x88"
    (Telemetry.sparkline [| 1.; 2.; 4. |])

let test_reservoir_policies () =
  let r = Telemetry.Reservoir.create ~first:2 ~slowest:3 ~sample:4 ~seed:7L () in
  (* items are ints; delays ramp so the slowest set is the tail. *)
  for i = 0 to 19 do
    Telemetry.Reservoir.note r ~delay:(Some i) i
  done;
  Telemetry.Reservoir.note r ~delay:None 99;
  Alcotest.(check int) "seen" 21 (Telemetry.Reservoir.seen r);
  Alcotest.(check int) "completed" 20 (Telemetry.Reservoir.completed r);
  Alcotest.(check int) "stranded" 1 (Telemetry.Reservoir.stranded r);
  let ex = Telemetry.Reservoir.exemplars r in
  let tagged tag = List.filter_map
      (fun (t, v) -> if t = tag then Some v else None) ex
  in
  Alcotest.(check (list int)) "firsts in arrival order" [ 0; 1 ]
    (tagged "first");
  Alcotest.(check (list int)) "slowest, largest delay first" [ 19; 18; 17 ]
    (tagged "slowest");
  Alcotest.(check int) "sample is full" 4 (List.length (tagged "sample"));
  List.iter
    (fun v ->
      if not (v = 99 || (v >= 0 && v < 20)) then
        Alcotest.failf "sample item %d was never noted" v)
    (tagged "sample");
  (* exemplars is a snapshot, not a drain: asking twice agrees. *)
  Alcotest.(check bool)
    "re-callable" true
    (Telemetry.Reservoir.exemplars r = ex)

(* The stranded path never enters the slowest heap. *)
let test_reservoir_stranded_not_slowest () =
  let r = Telemetry.Reservoir.create ~first:0 ~slowest:2 ~sample:0 ~seed:1L () in
  Telemetry.Reservoir.note r ~delay:None 1;
  Telemetry.Reservoir.note r ~delay:(Some 5) 2;
  Telemetry.Reservoir.note r ~delay:None 3;
  let ex = Telemetry.Reservoir.exemplars r in
  Alcotest.(check (list (pair string int))) "only the completed item"
    [ ("slowest", 2) ]
    ex

let suite =
  [
    Helpers.qcheck prop_telemetry_bit_identical;
    Helpers.qcheck prop_telemetry_bit_identical_faulty;
    Alcotest.test_case "event engine passive" `Quick test_event_engine_passive;
    Alcotest.test_case "sink streams completions" `Quick
      test_sink_streams_completions;
    Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
    Alcotest.test_case "peaks and jsonl" `Quick test_peaks_and_jsonl;
    Alcotest.test_case "sparkline" `Quick test_sparkline;
    Alcotest.test_case "reservoir policies" `Quick test_reservoir_policies;
    Alcotest.test_case "reservoir stranded" `Quick
      test_reservoir_stranded_not_slowest;
  ]
