(* Tests for the streaming quantile sketch: exact-mode bit-equality
   with Stats, the bucketed error bound, and merge algebra (including
   under the parallel pool, the sweep's per-worker shape). *)

module Sketch = Countq_util.Sketch
module Stats = Countq_util.Stats
module Parallel = Countq_util.Parallel

let of_list ?exact_limit samples =
  let t = Sketch.create ?exact_limit () in
  List.iter (Sketch.add t) samples;
  t

let force = function
  | Some v -> v
  | None -> Alcotest.fail "unexpected None from Sketch"

(* The observable behaviour of a sketch — what the algebra properties
   compare. Two sketches over the same multiset must agree on all of
   it regardless of how the samples were distributed or merged. *)
let observe t =
  ( Sketch.count t,
    Sketch.total t,
    Sketch.min_value t,
    Sketch.max_value t,
    Sketch.is_exact t,
    List.map (fun q -> Sketch.quantile t q) [ 0.; 0.25; 0.5; 0.9; 0.99; 1. ],
    Sketch.buckets t )

(* Generators: small values exercise the exact one-bucket range,
   large ones the octave splitting. *)
let samples_gen =
  QCheck2.Gen.(
    oneof
      [
        list_size (int_range 0 200) (int_range 0 100);
        list_size (int_range 0 200) (int_range 0 10_000_000);
      ])

let q_gen = QCheck2.Gen.float_range 0. 1.

(* While under the exact limit, quantiles reproduce Stats bit for
   bit - not approximately: the same floats. *)
let prop_exact_mode_is_stats =
  QCheck2.Test.make ~name:"exact mode = Stats.percentile_ints, bit for bit"
    ~count:300
    QCheck2.Gen.(pair samples_gen q_gen)
    (fun (samples, q) ->
      let t = of_list ~exact_limit:1_000_000 samples in
      Sketch.is_exact t
      && Sketch.quantile t q = Stats.percentile_ints samples q)

(* Bucketed mode: each interpolation endpoint is a bucket midpoint,
   off from the true value by at most half the bucket width, so the
   reported quantile is within [relative_error] of the exact one. *)
let prop_bucketed_error_bound =
  QCheck2.Test.make ~name:"bucketed quantile within relative_error" ~count:300
    QCheck2.Gen.(pair samples_gen q_gen)
    (fun (samples, q) ->
      match Stats.percentile_ints samples q with
      | None -> samples = []
      | Some exact ->
          let t = of_list ~exact_limit:0 samples in
          let est = force (Sketch.quantile t q) in
          abs_float (est -. exact)
          <= (Sketch.relative_error *. exact) +. 1e-9)

(* min/max/total/mean never degrade, in either mode. *)
let prop_extremes_exact =
  QCheck2.Test.make ~name:"min/max/total stay exact when bucketed" ~count:300
    samples_gen (fun samples ->
      let t = of_list ~exact_limit:0 samples in
      Sketch.count t = List.length samples
      && Sketch.total t = List.fold_left ( + ) 0 samples
      && Sketch.min_value t
         = (if samples = [] then None
            else Some (List.fold_left min max_int samples))
      && Sketch.max_value t
         = if samples = [] then None else Some (List.fold_left max 0 samples))

(* Merge is observably commutative... *)
let prop_merge_commutative =
  QCheck2.Test.make ~name:"merge commutes" ~count:200
    QCheck2.Gen.(pair samples_gen samples_gen)
    (fun (a, b) ->
      let s ls = of_list ~exact_limit:64 ls in
      observe (Sketch.merge (s a) (s b)) = observe (Sketch.merge (s b) (s a)))

(* ... and associative, across the exact/bucketed spill boundary. *)
let prop_merge_associative =
  QCheck2.Test.make ~name:"merge associates" ~count:200
    QCheck2.Gen.(triple samples_gen samples_gen samples_gen)
    (fun (a, b, c) ->
      let s ls = of_list ~exact_limit:64 ls in
      observe (Sketch.merge (Sketch.merge (s a) (s b)) (s c))
      = observe (Sketch.merge (s a) (Sketch.merge (s b) (s c))))

(* Merging per-chunk sketches built on pool workers is the parallel
   sweep's aggregation shape: the fold must match the sequential
   sketch over the whole stream, whatever the chunking. *)
let test_merge_under_pool () =
  let rng = Helpers.rng () in
  let samples =
    List.init 5000 (fun _ -> Countq_util.Rng.below rng 1_000_000)
  in
  let rec chunks k = function
    | [] -> []
    | l ->
        let take = min k (List.length l) in
        let c = List.filteri (fun i _ -> i < take) l in
        let rest = List.filteri (fun i _ -> i >= take) l in
        c :: chunks k rest
  in
  let whole = of_list ~exact_limit:256 samples in
  let pool = Parallel.pool ~jobs:4 in
  let parts =
    Parallel.pool_map pool (fun c -> of_list ~exact_limit:256 c)
      (chunks 617 samples)
  in
  let merged =
    match parts with
    | [] -> Sketch.create ()
    | first :: rest -> List.fold_left Sketch.merge first rest
  in
  Alcotest.(check bool)
    "pool-merged sketch = sequential sketch" true
    (observe merged = observe whole)

let test_validation () =
  let t = Sketch.create () in
  Alcotest.check_raises "negative sample"
    (Invalid_argument "Sketch.add: negative sample") (fun () ->
      Sketch.add t (-1));
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Sketch.quantile: q outside [0, 1]") (fun () ->
      ignore (Sketch.quantile t 1.5))

(* The spill from raw to buckets happens exactly once, at the first
   add past the limit, and never reverses on merge. *)
let test_spill_boundary () =
  let t = Sketch.create ~exact_limit:4 () in
  List.iter (Sketch.add t) [ 10; 20; 30; 40 ];
  Alcotest.(check bool) "at limit: exact" true (Sketch.is_exact t);
  Sketch.add t 50;
  Alcotest.(check bool) "past limit: bucketed" false (Sketch.is_exact t);
  Alcotest.(check int) "count survives spill" 5 (Sketch.count t);
  Alcotest.(check (option int)) "max survives spill" (Some 50)
    (Sketch.max_value t);
  let small = of_list ~exact_limit:4 [ 1; 2 ] in
  Alcotest.(check bool)
    "bucketed absorbs exact" false
    (Sketch.is_exact (Sketch.merge t small))

let suite =
  [
    Helpers.qcheck prop_exact_mode_is_stats;
    Helpers.qcheck prop_bucketed_error_bound;
    Helpers.qcheck prop_extremes_exact;
    Helpers.qcheck prop_merge_commutative;
    Helpers.qcheck prop_merge_associative;
    Alcotest.test_case "merge under pool" `Quick test_merge_under_pool;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "spill boundary" `Quick test_spill_boundary;
  ]
