(* Coverage for the pretty-printers and small formatting surfaces —
   these strings are the library's user interface in logs and the CLI,
   so pin them down. *)

module Gen = Countq_topology.Gen
module Graph = Countq_topology.Graph
module Tree = Countq_topology.Tree
module Types = Countq_arrow.Types
module Order = Countq_arrow.Order
module Counts = Countq_counting.Counts
module FA = Countq_counting.Fetch_add
module Stats = Countq_util.Stats
module Tow = Countq_bounds.Tow

let str pp v = Format.asprintf "%a" pp v

let test_graph_pp () =
  Alcotest.(check string) "compact" "graph(n=5, m=4)"
    (str Graph.pp (Gen.path 5));
  let full = str Graph.pp_full (Gen.path 3) in
  Alcotest.(check bool) "full lists adjacency" true
    (String.length full > 20)

let test_tree_pp () =
  let t = Tree.of_graph (Gen.path 4) ~root:0 in
  Alcotest.(check string) "tree" "tree(n=4, root=0, height=3)" (str Tree.pp t)

let test_op_printers () =
  let op = { Types.origin = 3; seq = 2 } in
  Alcotest.(check string) "op" "3.2" (str Types.pp_op op);
  Alcotest.(check string) "pred op" "3.2" (str Types.pp_pred (Types.Op op));
  Alcotest.(check string) "pred init" "\xe2\x8a\xa5"
    (str Types.pp_pred Types.Init);
  let outcome = { Types.op; pred = Types.Init; found_at = 1; round = 7 } in
  Alcotest.(check bool) "outcome mentions round" true
    (String.length (str Types.pp_outcome outcome) > 10)

let test_order_errors_pp () =
  let op = { Types.origin = 4; seq = 0 } in
  List.iter
    (fun (e, frag) ->
      let s = str Order.pp_error e in
      let contains =
        let nh = String.length s and nn = String.length frag in
        let rec go i = i + nn <= nh && (String.sub s i nn = frag || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) (frag ^ " in message") true contains)
    [
      (Order.Duplicate_op op, "two outcomes");
      (Order.Duplicate_pred (Types.Op op), "share predecessor");
      (Order.Missing_op op, "not a queued operation");
      (Order.No_head, "Init");
      (Order.Broken_chain { covered = 2; total = 5 }, "2 of 5");
    ]

let test_counts_errors_pp () =
  List.iter
    (fun e -> Alcotest.(check bool) "non-empty" true (String.length (str Counts.pp_error e) > 5))
    [
      Counts.Unrequested_count 3;
      Counts.Duplicate_node 1;
      Counts.Missing_node 9;
      Counts.Bad_count_set;
    ]

let test_counts_outcome_pp () =
  Alcotest.(check string) "outcome" "node 4 count 2 (round 9)"
    (str Counts.pp_outcome { Counts.node = 4; count = 2; round = 9 })

let test_fetch_add_errors_pp () =
  List.iter
    (fun e -> Alcotest.(check bool) "non-empty" true (String.length (str FA.pp_error e) > 5))
    [
      FA.Unrequested 1;
      FA.Duplicate_node 2;
      FA.Missing_node 3;
      FA.Wrong_increment 4;
      FA.Inconsistent_prefixes;
    ]

let test_tower_pp () =
  Alcotest.(check string) "finite" "16" (str Tow.pp_tower (Tow.tow 3));
  (match Tow.tow 6 with
  | Tow.Huge _ as h ->
      Alcotest.(check bool) "huge marked" true
        (String.length (str Tow.pp_tower h) > 3)
  | Tow.Finite _ -> Alcotest.fail "tow 6 should be huge")

let test_stats_pp () =
  let s =
    match Stats.summarize [ 1; 2; 3; 4 ] with
    | Some s -> s
    | None -> Alcotest.fail "summarize of non-empty input"
  in
  let rendered = str Stats.pp_summary s in
  Alcotest.(check bool) "mentions n=4" true
    (String.length rendered > 10 && String.sub rendered 0 3 = "n=4")

let test_growth_pp () =
  let fit = Countq.Growth.fit_power_law [ (2, 4); (4, 16); (8, 64) ] in
  Alcotest.(check string) "fit" "n^2.00 (R2=1.000)"
    (str Countq.Growth.pp_fit fit)

let test_scheme_pp () =
  let module M = Countq_multicast.Ordered in
  List.iter
    (fun (scheme, expect) ->
      Alcotest.(check string) expect expect (str M.pp_scheme scheme))
    [
      (M.Via_queuing `Arrow, "queuing/arrow");
      (M.Via_queuing `Central, "queuing/central");
      (M.Via_counting `Central, "counting/central");
      (M.Via_counting `Combining, "counting/combining");
      (M.Via_counting `Network, "counting/network");
    ]

let test_runs_certificate_pp () =
  let c = Countq_tsp.Runs.certify ~n:10 ~start:0 [| 3; 1; 7 |] in
  let s = str Countq_tsp.Runs.pp_certificate c in
  Alcotest.(check bool) "mentions cost" true (String.length s > 20)

let test_trace_event_pp () =
  let module T = Countq_simnet.Trace in
  Alcotest.(check string) "received" "t=3 node 1 received from 0"
    (str T.pp_event (T.Received { round = 3; node = 1; src = 0 }));
  Alcotest.(check string) "queued" "t=2 node 0 queued a send to 1"
    (str T.pp_event (T.Queued_send { round = 2; node = 0; dst = 1 }));
  Alcotest.(check string) "completed" "t=5 node 4 completed"
    (str T.pp_event (T.Completed { round = 5; node = 4 }))

let suite =
  [
    Alcotest.test_case "graph" `Quick test_graph_pp;
    Alcotest.test_case "tree" `Quick test_tree_pp;
    Alcotest.test_case "ops and outcomes" `Quick test_op_printers;
    Alcotest.test_case "order errors" `Quick test_order_errors_pp;
    Alcotest.test_case "counts errors" `Quick test_counts_errors_pp;
    Alcotest.test_case "counts outcome" `Quick test_counts_outcome_pp;
    Alcotest.test_case "fetch&add errors" `Quick test_fetch_add_errors_pp;
    Alcotest.test_case "towers" `Quick test_tower_pp;
    Alcotest.test_case "stats summary" `Quick test_stats_pp;
    Alcotest.test_case "growth fit" `Quick test_growth_pp;
    Alcotest.test_case "multicast schemes" `Quick test_scheme_pp;
    Alcotest.test_case "runs certificate" `Quick test_runs_certificate_pp;
    Alcotest.test_case "trace events" `Quick test_trace_event_pp;
  ]
