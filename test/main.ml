(* Alcotest runner aggregating every suite. *)

let () =
  Alcotest.run "countq"
    [
      ("rng", Test_rng.suite);
      ("stats", Test_stats.suite);
      ("sketch", Test_sketch.suite);
      ("json", Test_json.suite);
      ("heap", Test_heap.suite);
      ("parallel", Test_parallel.suite);
      ("graph", Test_graph.suite);
      ("gen", Test_gen.suite);
      ("product", Test_product.suite);
      ("bfs", Test_bfs.suite);
      ("tree", Test_tree.suite);
      ("hamilton", Test_hamilton.suite);
      ("workset", Test_workset.suite);
      ("engine", Test_engine.suite);
      ("equiv", Test_equiv.suite);
      ("event-engine", Test_event_engine.suite);
      ("shard", Test_shard.suite);
      ("dynamic", Test_dynamic.suite);
      ("route", Test_route.suite);
      ("async", Test_async.suite);
      ("trace", Test_trace.suite);
      ("metrics", Test_metrics.suite);
      ("telemetry", Test_telemetry.suite);
      ("span", Test_span.suite);
      ("faults", Test_faults.suite);
      ("explore", Test_explore.suite);
      ("order", Test_order.suite);
      ("arrow", Test_arrow.suite);
      ("counts", Test_counts.suite);
      ("counting", Test_counting.suite);
      ("bitonic", Test_bitonic.suite);
      ("network", Test_network.suite);
      ("sweep", Test_sweep.suite);
      ("sweep-runner", Test_sweep_runner.suite);
      ("fetch-add", Test_fetch_add.suite);
      ("periodic", Test_periodic.suite);
      ("central-queue", Test_central_queue.suite);
      ("token-ring", Test_token_ring.suite);
      ("nn", Test_nn.suite);
      ("runs", Test_runs.suite);
      ("exact", Test_exact.suite);
      ("bounds", Test_bounds.suite);
      ("observed", Test_observed.suite);
      ("multicast", Test_multicast.suite);
      ("growth", Test_growth.suite);
      ("scenario", Test_scenario.suite);
      ("load", Test_load.suite);
      ("core", Test_core.suite);
      ("bench-diff", Test_bench_diff.suite);
      ("integration", Test_integration.suite);
      ("printers", Test_printers.suite);
    ]
