(* Tests for the open-loop Load harness: saturation-verdict edges and
   the streaming (sketch + reservoir) summarise path against the
   retained one. *)

module Load = Countq.Load
module Implicit = Countq_topology.Implicit
module Sketch = Countq_util.Sketch
module Telemetry = Countq_simnet.Telemetry

(* Internal consistency every summary must satisfy, whatever the
   workload did. *)
let check_consistent (s : Load.summary) =
  Alcotest.(check int) "unfinished = injected - completed" s.unfinished
    (s.injected - s.completed);
  Alcotest.(check bool) "saturated formula" s.saturated
    (s.unfinished * 20 > s.injected);
  if s.completed = 0 then begin
    Alcotest.(check (float 0.)) "p50 degrades to 0" 0. s.p50;
    Alcotest.(check (float 0.)) "mean degrades to 0" 0. s.mean_delay;
    Alcotest.(check int) "max degrades to 0" 0 s.max_delay
  end

(* Zero completions: a counting run cut off before any round trip can
   land (drain 0, horizon 1, origins away from the centre under this
   seed) must report a total summary — Stats is total on empty — and a
   saturated verdict, not an exception. *)
let test_zero_completions () =
  let topo = Implicit.list 64 in
  let s =
    Load.run ~seed:5L ~drain:0 ~topo ~workload:Load.Counting
      ~arrival:(Load.Poisson 4.0) ~horizon:1 ()
  in
  check_consistent s;
  Alcotest.(check bool) "something was injected" true (s.injected > 0);
  Alcotest.(check int) "nothing completed" 0 s.completed;
  Alcotest.(check bool) "saturated" true s.saturated

(* Rate at the counting service capacity (~1 op/round through one
   centre of unit receive capacity): the run must stay internally
   consistent whichever side of the knee this seed lands on. *)
let test_rate_at_capacity () =
  let topo = Implicit.list 64 in
  let s =
    Load.run ~topo ~workload:Load.Counting ~arrival:(Load.Poisson 1.0)
      ~horizon:128 ()
  in
  check_consistent s;
  Alcotest.(check bool) "something completed" true (s.completed > 0)

(* A single-round horizon is legal: every arrival lands in round 1 and
   the default drain (= horizon = 1) still allows the 1-hop queuing
   handshake of adjacent origins. *)
let test_single_round_horizon () =
  let topo = Implicit.list 16 in
  let s =
    Load.run ~topo ~workload:Load.Queuing ~arrival:(Load.Poisson 8.0)
      ~horizon:1 ()
  in
  check_consistent s;
  Alcotest.(check bool) "something was injected" true (s.injected > 0)

let test_horizon_zero_rejected () =
  let topo = Implicit.list 8 in
  Alcotest.check_raises "horizon < 1"
    (Invalid_argument "Load.schedule: horizon must be >= 1") (fun () ->
      ignore
        (Load.run ~topo ~workload:Load.Queuing ~arrival:(Load.Poisson 1.0)
           ~horizon:0 ()))

(* While the sketch holds raw samples (small runs), streaming and
   retained summaries agree bit for bit on every statistic. *)
let prop_streaming_exact_matches_retained =
  QCheck2.Test.make ~name:"streaming = retained while the sketch is exact"
    ~count:30
    ~print:(fun (r, h) -> Printf.sprintf "rate=%g horizon=%d" r h)
    QCheck2.Gen.(pair (float_range 0.25 2.0) (int_range 1 96))
    (fun (rate, horizon) ->
      let topo = Implicit.list 32 in
      let go streaming =
        Load.run ~streaming ~topo ~workload:Load.Queuing
          ~arrival:(Load.Poisson rate) ~horizon ()
      in
      let a = go false and b = go true in
      (not b.Load.sketched)
      && a.Load.injected = b.Load.injected
      && a.Load.completed = b.Load.completed
      && a.Load.unfinished = b.Load.unfinished
      && a.Load.p50 = b.Load.p50
      && a.Load.p95 = b.Load.p95
      && a.Load.p99 = b.Load.p99
      && a.Load.mean_delay = b.Load.mean_delay
      && a.Load.max_delay = b.Load.max_delay
      && a.Load.saturated = b.Load.saturated
      && a.Load.rounds = b.Load.rounds
      && a.Load.messages = b.Load.messages)

(* Past the exact window the percentiles become estimates, bounded by
   the sketch's relative error; counts stay exact. *)
let test_streaming_sketched_error_bound () =
  let topo = Implicit.torus ~dims:[ 16; 16 ] in
  let go streaming =
    Load.run ~streaming ~topo ~workload:Load.Queuing
      ~arrival:(Load.Poisson 4.0) ~horizon:512 ()
  in
  let a = go false and b = go true in
  Alcotest.(check bool) "run is big enough to leave exact mode" true
    b.sketched;
  Alcotest.(check int) "injected agree" a.injected b.injected;
  Alcotest.(check int) "completed agree" a.completed b.completed;
  Alcotest.(check int) "max agrees exactly" a.max_delay b.max_delay;
  let close name exact est =
    if abs_float (est -. exact) > (Sketch.relative_error *. exact) +. 1e-9
    then
      Alcotest.failf "%s: estimate %g vs exact %g exceeds the error bound"
        name est exact
  in
  close "p50" a.p50 b.p50;
  close "p95" a.p95 b.p95;
  close "p99" a.p99 b.p99

(* The streaming path retains no spans but does surface exemplars. *)
let test_streaming_exemplars () =
  let topo = Implicit.list 32 in
  let s =
    Load.run ~streaming:true ~keep_spans:true ~topo ~workload:Load.Queuing
      ~arrival:(Load.Poisson 2.0) ~horizon:64 ()
  in
  Alcotest.(check bool) "no span table" true (s.spans = []);
  Alcotest.(check bool) "exemplars present" true (s.exemplars <> []);
  List.iter
    (fun (tag, (sp : Countq_simnet.Span.t)) ->
      (match tag with
      | "first" | "slowest" | "sample" -> ()
      | t -> Alcotest.failf "unknown exemplar tag %S" t);
      match (sp.completion_round, Countq_simnet.Span.delay sp) with
      | Some r, Some d ->
          if r - sp.inject_round <> d then
            Alcotest.fail "exemplar delay inconsistent"
      | _ -> Alcotest.fail "streaming exemplars are completed spans")
    s.exemplars

(* ---- the combining-funnel workload ---- *)

let funnel_topo = Implicit.tree ~arity:3 121

(* Every cohort decombines to exactly its arrivals: nothing is lost or
   double-counted, so with a full drain window injected = completed. *)
let test_funnel_drains_exactly () =
  let s =
    Load.run ~seed:9L ~topo:funnel_topo ~workload:Load.Funnel
      ~arrival:(Load.Poisson 2.0) ~horizon:96 ()
  in
  check_consistent s;
  Alcotest.(check bool) "something was injected" true (s.injected > 0);
  Alcotest.(check int) "every operation completed" s.injected s.completed;
  Alcotest.(check bool) "not saturated" false s.saturated

(* Bursts far past the central counter's ~1 op/round service capacity:
   a burst round is one big cohort, which the funnel combines into one
   Up per on-path root child however many ops it carries, while every
   central op still queues through the centre one round at a time —
   same tree, same seed, same arrivals. *)
let test_funnel_moves_the_knee () =
  let go w =
    Load.run ~seed:3L ~topo:funnel_topo ~workload:w
      ~arrival:(Load.Bursty { rate = 4.0; on = 2; off = 14 }) ~horizon:128 ()
  in
  let funnel = go Load.Funnel and central = go Load.Counting in
  Alcotest.(check int) "same arrivals" central.injected funnel.injected;
  Alcotest.(check bool)
    (Printf.sprintf "funnel completes more (%d vs %d)" funnel.completed
       central.completed)
    true
    (funnel.completed > central.completed);
  Alcotest.(check bool) "central is past its knee" true central.saturated;
  Alcotest.(check bool) "funnel is not" false funnel.saturated

(* The funnel workload shards bit-identically, like the other two. *)
let test_funnel_sharded_pinned () =
  let go shards =
    Load.run ~seed:7L ~shards ~topo:funnel_topo ~workload:Load.Funnel
      ~arrival:(Load.Bursty { rate = 2.0; on = 4; off = 12 }) ~horizon:64 ()
  in
  let seq = go 1 in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "shards=%d pinned" k)
        true
        (go k = seq))
    [ 2; 3; 5 ]

let test_funnel_one_shot () =
  let requests = [ 0; 5; 17; 40; 88; 120 ] in
  let s =
    Load.one_shot ~topo:funnel_topo ~workload:Load.Funnel ~requests ()
  in
  Alcotest.(check int) "all requests" (List.length requests) s.os_requests;
  Alcotest.(check int) "all completed" (List.length requests) s.os_completed;
  (* The same one-shot through the counting library's own driver. *)
  let r =
    Countq_counting.Funnel.run_implicit
      ~config:Countq_simnet.Engine.default_config ~topo:funnel_topo ~requests
      ()
  in
  Alcotest.(check int) "rounds agree" r.Countq_counting.Counts.rounds
    s.os_rounds;
  Alcotest.(check int) "messages agree" r.Countq_counting.Counts.messages
    s.os_messages;
  let sharded =
    Load.one_shot ~shards:3 ~topo:funnel_topo ~workload:Load.Funnel ~requests
      ()
  in
  Alcotest.(check bool) "sharded one-shot pinned" true (sharded = s)

let test_funnel_needs_a_tree () =
  Alcotest.check_raises "ring rejected"
    (Invalid_argument "Load.run: the funnel workload needs an implicit tree family")
    (fun () ->
      ignore
        (Load.run ~topo:(Implicit.ring 32) ~workload:Load.Funnel
           ~arrival:(Load.Poisson 1.0) ~horizon:8 ()))

(* Telemetry attached to a Load run is passive for the summary. *)
let test_load_telemetry_passive () =
  let topo = Implicit.list 32 in
  let go ?telemetry () =
    Load.run ?telemetry ~topo ~workload:Load.Queuing
      ~arrival:(Load.Poisson 1.0) ~horizon:64 ()
  in
  let plain = go () in
  let tl = Telemetry.create ~window_size:8 () in
  let observed = go ~telemetry:tl () in
  Alcotest.(check bool) "summary unchanged" true (plain = observed);
  Alcotest.(check bool)
    "injections were recorded" true
    (List.exists
       (fun w -> w.Telemetry.injections > 0)
       (Telemetry.windows tl))

let suite =
  [
    Alcotest.test_case "zero completions" `Quick test_zero_completions;
    Alcotest.test_case "rate at capacity" `Quick test_rate_at_capacity;
    Alcotest.test_case "single-round horizon" `Quick test_single_round_horizon;
    Alcotest.test_case "horizon 0 rejected" `Quick test_horizon_zero_rejected;
    Helpers.qcheck prop_streaming_exact_matches_retained;
    Alcotest.test_case "sketched error bound" `Quick
      test_streaming_sketched_error_bound;
    Alcotest.test_case "streaming exemplars" `Quick test_streaming_exemplars;
    Alcotest.test_case "funnel drains exactly" `Quick test_funnel_drains_exactly;
    Alcotest.test_case "funnel moves the knee" `Quick test_funnel_moves_the_knee;
    Alcotest.test_case "funnel sharded pinned" `Quick test_funnel_sharded_pinned;
    Alcotest.test_case "funnel one-shot" `Quick test_funnel_one_shot;
    Alcotest.test_case "funnel needs a tree" `Quick test_funnel_needs_a_tree;
    Alcotest.test_case "load telemetry passive" `Quick
      test_load_telemetry_passive;
  ]
