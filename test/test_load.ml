(* Tests for the open-loop Load harness: saturation-verdict edges and
   the streaming (sketch + reservoir) summarise path against the
   retained one. *)

module Load = Countq.Load
module Implicit = Countq_topology.Implicit
module Sketch = Countq_util.Sketch
module Telemetry = Countq_simnet.Telemetry

(* Internal consistency every summary must satisfy, whatever the
   workload did. *)
let check_consistent (s : Load.summary) =
  Alcotest.(check int) "unfinished = injected - completed" s.unfinished
    (s.injected - s.completed);
  Alcotest.(check bool) "saturated formula" s.saturated
    (s.unfinished * 20 > s.injected);
  if s.completed = 0 then begin
    Alcotest.(check (float 0.)) "p50 degrades to 0" 0. s.p50;
    Alcotest.(check (float 0.)) "mean degrades to 0" 0. s.mean_delay;
    Alcotest.(check int) "max degrades to 0" 0 s.max_delay
  end

(* Zero completions: a counting run cut off before any round trip can
   land (drain 0, horizon 1, origins away from the centre under this
   seed) must report a total summary — Stats is total on empty — and a
   saturated verdict, not an exception. *)
let test_zero_completions () =
  let topo = Implicit.list 64 in
  let s =
    Load.run ~seed:5L ~drain:0 ~topo ~workload:Load.Counting
      ~arrival:(Load.Poisson 4.0) ~horizon:1 ()
  in
  check_consistent s;
  Alcotest.(check bool) "something was injected" true (s.injected > 0);
  Alcotest.(check int) "nothing completed" 0 s.completed;
  Alcotest.(check bool) "saturated" true s.saturated

(* Rate at the counting service capacity (~1 op/round through one
   centre of unit receive capacity): the run must stay internally
   consistent whichever side of the knee this seed lands on. *)
let test_rate_at_capacity () =
  let topo = Implicit.list 64 in
  let s =
    Load.run ~topo ~workload:Load.Counting ~arrival:(Load.Poisson 1.0)
      ~horizon:128 ()
  in
  check_consistent s;
  Alcotest.(check bool) "something completed" true (s.completed > 0)

(* A single-round horizon is legal: every arrival lands in round 1 and
   the default drain (= horizon = 1) still allows the 1-hop queuing
   handshake of adjacent origins. *)
let test_single_round_horizon () =
  let topo = Implicit.list 16 in
  let s =
    Load.run ~topo ~workload:Load.Queuing ~arrival:(Load.Poisson 8.0)
      ~horizon:1 ()
  in
  check_consistent s;
  Alcotest.(check bool) "something was injected" true (s.injected > 0)

let test_horizon_zero_rejected () =
  let topo = Implicit.list 8 in
  Alcotest.check_raises "horizon < 1"
    (Invalid_argument "Load.schedule: horizon must be >= 1") (fun () ->
      ignore
        (Load.run ~topo ~workload:Load.Queuing ~arrival:(Load.Poisson 1.0)
           ~horizon:0 ()))

(* While the sketch holds raw samples (small runs), streaming and
   retained summaries agree bit for bit on every statistic. *)
let prop_streaming_exact_matches_retained =
  QCheck2.Test.make ~name:"streaming = retained while the sketch is exact"
    ~count:30
    ~print:(fun (r, h) -> Printf.sprintf "rate=%g horizon=%d" r h)
    QCheck2.Gen.(pair (float_range 0.25 2.0) (int_range 1 96))
    (fun (rate, horizon) ->
      let topo = Implicit.list 32 in
      let go streaming =
        Load.run ~streaming ~topo ~workload:Load.Queuing
          ~arrival:(Load.Poisson rate) ~horizon ()
      in
      let a = go false and b = go true in
      (not b.Load.sketched)
      && a.Load.injected = b.Load.injected
      && a.Load.completed = b.Load.completed
      && a.Load.unfinished = b.Load.unfinished
      && a.Load.p50 = b.Load.p50
      && a.Load.p95 = b.Load.p95
      && a.Load.p99 = b.Load.p99
      && a.Load.mean_delay = b.Load.mean_delay
      && a.Load.max_delay = b.Load.max_delay
      && a.Load.saturated = b.Load.saturated
      && a.Load.rounds = b.Load.rounds
      && a.Load.messages = b.Load.messages)

(* Past the exact window the percentiles become estimates, bounded by
   the sketch's relative error; counts stay exact. *)
let test_streaming_sketched_error_bound () =
  let topo = Implicit.torus ~dims:[ 16; 16 ] in
  let go streaming =
    Load.run ~streaming ~topo ~workload:Load.Queuing
      ~arrival:(Load.Poisson 4.0) ~horizon:512 ()
  in
  let a = go false and b = go true in
  Alcotest.(check bool) "run is big enough to leave exact mode" true
    b.sketched;
  Alcotest.(check int) "injected agree" a.injected b.injected;
  Alcotest.(check int) "completed agree" a.completed b.completed;
  Alcotest.(check int) "max agrees exactly" a.max_delay b.max_delay;
  let close name exact est =
    if abs_float (est -. exact) > (Sketch.relative_error *. exact) +. 1e-9
    then
      Alcotest.failf "%s: estimate %g vs exact %g exceeds the error bound"
        name est exact
  in
  close "p50" a.p50 b.p50;
  close "p95" a.p95 b.p95;
  close "p99" a.p99 b.p99

(* The streaming path retains no spans but does surface exemplars. *)
let test_streaming_exemplars () =
  let topo = Implicit.list 32 in
  let s =
    Load.run ~streaming:true ~keep_spans:true ~topo ~workload:Load.Queuing
      ~arrival:(Load.Poisson 2.0) ~horizon:64 ()
  in
  Alcotest.(check bool) "no span table" true (s.spans = []);
  Alcotest.(check bool) "exemplars present" true (s.exemplars <> []);
  List.iter
    (fun (tag, (sp : Countq_simnet.Span.t)) ->
      (match tag with
      | "first" | "slowest" | "sample" -> ()
      | t -> Alcotest.failf "unknown exemplar tag %S" t);
      match (sp.completion_round, Countq_simnet.Span.delay sp) with
      | Some r, Some d ->
          if r - sp.inject_round <> d then
            Alcotest.fail "exemplar delay inconsistent"
      | _ -> Alcotest.fail "streaming exemplars are completed spans")
    s.exemplars

(* Telemetry attached to a Load run is passive for the summary. *)
let test_load_telemetry_passive () =
  let topo = Implicit.list 32 in
  let go ?telemetry () =
    Load.run ?telemetry ~topo ~workload:Load.Queuing
      ~arrival:(Load.Poisson 1.0) ~horizon:64 ()
  in
  let plain = go () in
  let tl = Telemetry.create ~window_size:8 () in
  let observed = go ~telemetry:tl () in
  Alcotest.(check bool) "summary unchanged" true (plain = observed);
  Alcotest.(check bool)
    "injections were recorded" true
    (List.exists
       (fun w -> w.Telemetry.injections > 0)
       (Telemetry.windows tl))

let suite =
  [
    Alcotest.test_case "zero completions" `Quick test_zero_completions;
    Alcotest.test_case "rate at capacity" `Quick test_rate_at_capacity;
    Alcotest.test_case "single-round horizon" `Quick test_single_round_horizon;
    Alcotest.test_case "horizon 0 rejected" `Quick test_horizon_zero_rejected;
    Helpers.qcheck prop_streaming_exact_matches_retained;
    Alcotest.test_case "sketched error bound" `Quick
      test_streaming_sketched_error_bound;
    Alcotest.test_case "streaming exemplars" `Quick test_streaming_exemplars;
    Alcotest.test_case "load telemetry passive" `Quick
      test_load_telemetry_passive;
  ]
