(* Dynamic topologies: the identity schedule must be bit-identical to
   no schedule at all (both engines, with metrics, faults and observers
   attached); under arbitrary schedules the active engine must stay
   bit-identical to the reference engine; the Dynamic constructors must
   mean what their docs say; and the dynamic queuing protocols must
   survive adversaries that kill the static arrow. *)

module Engine = Countq_simnet.Engine
module Reference = Countq_simnet.Reference
module Faults = Countq_simnet.Faults
module Metrics = Countq_simnet.Metrics
module Monitor = Countq_simnet.Monitor
module Dynamic = Countq_simnet.Dynamic
module Explore = Countq_simnet.Explore
module Graph = Countq_topology.Graph
module Gen = Countq_topology.Gen
module Tree = Countq_topology.Tree
module Spanning = Countq_topology.Spanning
module Arrow = Countq_arrow
module Dq = Countq_queuing.Dynamic_queue

(* Same avalanche mix as test_equiv: random protocols must be pure
   functions of their inputs so shrunk counterexamples replay. *)
let mix a b =
  let h = ref ((a * 0x9e3779b1) + (b * 0x85ebca6b)) in
  h := !h lxor (!h lsr 13);
  h := !h * 0xc2b2ae35;
  h := !h lxor (!h lsr 16);
  !h land max_int

type msg = { ttl : int; tag : int }

(* The flooding hash protocol of test_equiv, plus an optional tick
   component so the dynamic gating of the tick phase is exercised:
   ticking nodes inject bounded extra traffic during early rounds. *)
let hash_protocol ~tick ~seed ~graph =
  let pick_nbr v h =
    let a = Graph.neighbors graph v in
    if Array.length a = 0 then None else Some a.(h mod Array.length a)
  in
  {
    Engine.name = "qcheck-dynamic-hash";
    initial_state = (fun v -> mix seed v);
    on_start =
      (fun ~node s ->
        let h = mix seed node in
        let acts =
          if h mod 3 = 0 then
            match pick_nbr node h with
            | Some d ->
                [ Engine.Send (d, { ttl = 2 + (h mod 5); tag = h land 0xffff }) ]
            | None -> []
          else []
        in
        let acts =
          if h mod 7 = 0 then Engine.Complete (node, h land 0xff) :: acts
          else acts
        in
        (s, acts));
    on_receive =
      (fun ~round ~node ~src m s ->
        let h = mix (mix s m.tag) (mix src round) in
        let acts = ref [] in
        (if m.ttl > 0 then
           let fan = match h mod 4 with 0 -> 0 | 1 | 2 -> 1 | _ -> 2 in
           for i = 1 to fan do
             match pick_nbr node (mix h i) with
             | Some d ->
                 acts :=
                   Engine.Send
                     (d, { ttl = m.ttl - 1; tag = mix m.tag i land 0xffff })
                   :: !acts
             | None -> ()
           done);
        if h mod 5 = 0 then acts := Engine.Complete (node, m.tag) :: !acts;
        (mix s (m.tag + 1), !acts));
    on_tick =
      (if not tick then Engine.no_tick
       else
         Some
           (fun ~round ~node s ->
             if round <= 12 && mix s round mod 5 = 0 then
               match pick_nbr node (mix s (round + 1)) with
               | Some d ->
                   ( mix s round,
                     [ Engine.Send (d, { ttl = 1; tag = mix s round land 0xffff }) ]
                   )
               | None -> (s, [])
             else (s, [])));
  }

let arbiter_of = function
  | 0 -> Engine.Round_robin
  | 1 -> Engine.Lowest_sender_first
  | _ ->
      Engine.Custom
        (fun ~round ~node ~candidates ->
          List.nth candidates (mix round node mod List.length candidates))

let plan_of = function
  | 0 -> Faults.none
  | 1 -> Faults.drop_nth 3
  | 2 -> Faults.dup_nth 5
  | 3 -> Faults.delay_nth ~by:4 2
  | 4 -> Faults.random ~label:"lossy" ~seed:42L ~drop:0.1 ()
  | 5 ->
      Faults.random ~label:"chaos" ~seed:7L ~drop:0.05 ~duplicate:0.1
        ~delay:0.2 ~delay_max:9 ()
  | _ ->
      Faults.crash_only ~label:"crash-restart"
        [ { node = 0; at_round = 2; recover_at = Some 6 } ]

let plan_label = function 0 -> "none" | p -> Faults.label (plan_of p)

(* Run one engine, capturing everything comparable: the result (or the
   round-limit payload), the observer stream, the fault tallies, the
   metrics export and the schedule's drop tallies. *)
let capture which ~observe ~with_metrics ~plan ~sched ~graph ~config ~protocol =
  let events = ref [] in
  let observer =
    if observe then
      Some
        {
          Engine.on_deliver =
            (fun ~round ~src ~dst -> events := `Deliver (round, src, dst) :: !events);
          on_complete =
            (fun ~round ~node ~value -> events := `Complete (round, node, value) :: !events);
          on_round_end =
            (fun ~round ~in_flight ->
              events := `Round_end (round, in_flight) :: !events;
              `Continue);
        }
    else None
  in
  let faults = Option.map Faults.start plan in
  let dynamic = Option.map Dynamic.start sched in
  let metrics = if with_metrics then Some (Metrics.create ~graph) else None in
  let outcome =
    match
      match which with
      | `Active ->
          Engine.run ?faults ?dynamic ?observer ?metrics ~graph ~config
            ~protocol ()
      | `Reference ->
          Reference.run ?faults ?dynamic ?observer ?metrics ~graph ~config
            ~protocol ()
    with
    | r -> Ok r
    | exception Engine.Round_limit_exceeded
          { limit; outstanding; queued; held; busiest } ->
        Error (limit, outstanding, queued, held, busiest)
  in
  ( outcome,
    List.rev !events,
    Option.map Faults.stats faults,
    Option.map Metrics.to_jsonl metrics,
    Option.map Dynamic.stats dynamic )

let scenario_gen =
  let open QCheck2.Gen in
  let* topo = Helpers.topology_gen in
  let* seed = int_range 0 100_000 in
  let* rc = int_range 1 3 in
  let* sc = int_range 1 3 in
  let* arb = int_range 0 2 in
  let* minr = oneofl [ 0; 25 ] in
  let* maxr = oneofl [ 4; 2_000 ] in
  let* plan = int_range 0 6 in
  let* tick = bool in
  let* observe = bool in
  return (topo, seed, (rc, sc, arb, minr, maxr), plan, tick, observe)

let scenario_print ((name, g), seed, (rc, sc, arb, minr, maxr), plan, tick, observe)
    =
  Printf.sprintf
    "%s (n=%d) seed=%d rcv=%d snd=%d arb=%d min=%d max=%d plan=%s tick=%b \
     observe=%b"
    name (Graph.n g) seed rc sc arb minr maxr (plan_label plan) tick observe

let config_of (rc, sc, arb, minr, maxr) =
  {
    Engine.receive_capacity = rc;
    send_capacity = sc;
    arbiter = arbiter_of arb;
    max_rounds = maxr;
    min_rounds = minr;
  }

(* The identity pin: attaching the identity schedule must change
   nothing at all — result, events, fault tallies, metrics — and must
   record zero drops. One property per engine. *)
let identity_prop which ((_, graph), seed, cfg, plan, tick, observe) =
  let config = config_of cfg in
  let protocol = hash_protocol ~tick ~seed ~graph in
  let plan = if plan = 0 then None else Some (plan_of plan) in
  let o1, e1, f1, m1, _ =
    capture which ~observe ~with_metrics:true ~plan ~sched:None ~graph ~config
      ~protocol
  in
  let o2, e2, f2, m2, d2 =
    capture which ~observe ~with_metrics:true ~plan
      ~sched:(Some (Dynamic.identity graph)) ~graph ~config ~protocol
  in
  o1 = o2 && e1 = e2 && f1 = f2 && m1 = m2 && d2 = Some Dynamic.no_stats

let identity_active =
  QCheck2.Test.make ~count:120 ~name:"identity schedule = static (active engine)"
    ~print:scenario_print scenario_gen (identity_prop `Active)

let identity_reference =
  QCheck2.Test.make ~count:60
    ~name:"identity schedule = static (reference engine)" ~print:scenario_print
    scenario_gen (identity_prop `Reference)

(* Under arbitrary schedules both engines must still agree exactly. *)
let sched_of pick graph =
  match pick with
  | 0 -> Dynamic.link_flaps ~seed:11L ~rate:0.3 ~epoch:3 graph
  | 1 -> Dynamic.node_churn ~seed:5L ~rate:0.25 ~epoch:4 graph
  | 2 -> Dynamic.t_interval ~seed:7L ~t:4 graph
  | 3 -> Dynamic.periodic_rewire ~seed:9L ~period:5 graph
  | 4 -> Dynamic.partition ~at:4 ~island:[ 0 ] graph
  | _ ->
      let tree = Spanning.best_for_arrow graph in
      Dynamic.tree_attack ~period:5 ~tree:(Tree.to_graph tree) graph

let dyn_scenario_gen =
  let open QCheck2.Gen in
  let* scenario = scenario_gen in
  let* pick = int_range 0 5 in
  return (scenario, pick)

let dyn_scenario_print (((name, g), _, _, _, _, _) as s, pick) =
  Printf.sprintf "%s sched=%s" (scenario_print s)
    (Dynamic.label (sched_of pick g))
  [@@warning "-27"]

let equiv_dynamic_prop ((((_, graph), seed, cfg, plan, tick, observe), pick)) =
  let config = config_of cfg in
  let protocol = hash_protocol ~tick ~seed ~graph in
  let plan = if plan = 0 then None else Some (plan_of plan) in
  let sched = Some (sched_of pick graph) in
  let a =
    capture `Active ~observe ~with_metrics:true ~plan ~sched ~graph ~config
      ~protocol
  in
  let r =
    capture `Reference ~observe ~with_metrics:true ~plan ~sched ~graph ~config
      ~protocol
  in
  a = r

let equiv_dynamic =
  QCheck2.Test.make ~count:120 ~name:"active = reference (dynamic schedules)"
    ~print:dyn_scenario_print dyn_scenario_gen equiv_dynamic_prop

(* ------------------------------------------------------------------ *)
(* Constructor semantics.                                              *)

let all_rounds = List.init 16 (fun i -> i + 1)

let test_flaps_semantics () =
  let g = Gen.complete 6 in
  let s = Dynamic.link_flaps ~seed:3L ~rate:1.0 ~epoch:4 ~protect:[ 0 ] g in
  List.iter
    (fun round ->
      List.iter
        (fun (u, v) ->
          let up = Dynamic.link_up s ~round ~u ~v in
          if u = 0 || v = 0 then
            Alcotest.(check bool)
              (Printf.sprintf "protected edge %d-%d up in round %d" u v round)
              true up
          else
            Alcotest.(check bool)
              (Printf.sprintf "edge %d-%d down in round %d" u v round)
              false up)
        (Graph.edges g))
    all_rounds;
  (* Nodes stay up under a pure link-flap process. *)
  Alcotest.(check bool) "nodes up" true (Dynamic.node_up s ~round:5 ~node:3);
  (* rate 0 is the identity; and a rebuilt schedule answers identically
     even when queried in a different round order. *)
  let s0 = Dynamic.link_flaps ~seed:3L ~rate:0.0 ~epoch:4 g in
  List.iter
    (fun round ->
      List.iter
        (fun (u, v) ->
          Alcotest.(check bool) "rate 0 all up" true
            (Dynamic.usable s0 ~round ~u ~v))
        (Graph.edges g))
    all_rounds;
  let sa = Dynamic.link_flaps ~seed:99L ~rate:0.4 ~epoch:3 g in
  let sb = Dynamic.link_flaps ~seed:99L ~rate:0.4 ~epoch:3 g in
  let probe s rounds =
    List.concat_map
      (fun round ->
        List.map (fun (u, v) -> Dynamic.link_up s ~round ~u ~v) (Graph.edges g))
      rounds
  in
  (* Warm sb's epoch memo in reverse round order: the answers must not
     depend on which round was queried first. *)
  ignore (probe sb (List.rev all_rounds));
  Alcotest.(check bool) "same seed, same process (any query order)" true
    (probe sa all_rounds = probe sb all_rounds)

let test_churn_semantics () =
  let g = Gen.star 5 in
  let s = Dynamic.node_churn ~seed:21L ~rate:1.0 ~epoch:4 ~protect:[ 2 ] g in
  List.iter
    (fun round ->
      Alcotest.(check bool) "protected node up" true
        (Dynamic.node_up s ~round ~node:2);
      Alcotest.(check bool) "churned node down" false
        (Dynamic.node_up s ~round ~node:1);
      (* A link to a down endpoint is not usable even though the link
         itself never flaps. *)
      Alcotest.(check bool) "link to down node unusable" false
        (Dynamic.usable s ~round ~u:0 ~v:1))
    all_rounds

let test_t_interval_spanning () =
  let g = Gen.square_mesh 3 in
  let n = Graph.n g in
  let s = Dynamic.t_interval ~seed:13L ~t:3 g in
  let up_edges round =
    List.filter (fun (u, v) -> Dynamic.link_up s ~round ~u ~v) (Graph.edges g)
  in
  List.iter
    (fun round ->
      Alcotest.(check int)
        (Printf.sprintf "spanning tree in round %d" round)
        (n - 1)
        (List.length (up_edges round));
      let r = Dynamic.reachable s ~round ~from:0 in
      Alcotest.(check bool)
        (Printf.sprintf "connected in round %d" round)
        true
        (Array.for_all Fun.id r))
    (List.init 18 (fun i -> i + 1));
  (* The surviving tree is constant within a window... *)
  Alcotest.(check bool) "stable within window" true
    (up_edges 1 = up_edges 3);
  (* ...and changes across windows (seeded, so this is deterministic). *)
  let windows = List.init 6 (fun w -> up_edges ((w * 3) + 1)) in
  Alcotest.(check bool) "trees change between windows" true
    (List.exists (fun w -> w <> List.hd windows) windows)

let test_rewire_connected () =
  let g = Gen.square_mesh 3 in
  let s = Dynamic.periodic_rewire ~seed:17L ~period:5 ~keep:0.3 g in
  List.iter
    (fun round ->
      let r = Dynamic.reachable s ~round ~from:4 in
      Alcotest.(check bool) "always connected" true (Array.for_all Fun.id r))
    (List.init 25 (fun i -> i + 1))

let test_partition_and_describe_cut () =
  let g = Gen.complete 4 in
  let s = Dynamic.partition ~at:3 ~island:[ 1 ] g in
  Alcotest.(check bool) "usable before the cut" true
    (Dynamic.usable s ~round:2 ~u:1 ~v:3);
  List.iter
    (fun (u, v) ->
      let crosses = (u = 1) <> (v = 1) in
      Alcotest.(check bool)
        (Printf.sprintf "edge %d-%d after the cut" u v)
        (not crosses)
        (Dynamic.link_up s ~round:3 ~u ~v))
    (Graph.edges g);
  Alcotest.(check bool) "nodes stay up" true (Dynamic.node_up s ~round:9 ~node:1);
  let r = Dynamic.reachable s ~round:5 ~from:1 in
  Alcotest.(check bool) "island isolated" true
    (r.(1) && (not r.(0)) && (not r.(2)) && not r.(3));
  let d = Dynamic.describe_cut s ~round:5 ~from:1 in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) ("names the cut: " ^ d) true (contains d "cut off");
  Alcotest.(check bool) ("names the node: " ^ d) true (contains d "node 1")

let test_tree_attack_rotates () =
  let g = Gen.complete 5 in
  let tree = Tree.to_graph (Spanning.best_for_arrow g) in
  let s = Dynamic.tree_attack ~period:4 ~tree g in
  let severed round =
    List.filter (fun (u, v) -> not (Dynamic.link_up s ~round ~u ~v)) (Graph.edges g)
  in
  (* Exactly one tree edge down per epoch; non-tree edges untouched. *)
  List.iter
    (fun round ->
      match severed round with
      | [ (u, v) ] ->
          Alcotest.(check bool) "severed edge is a tree edge" true
            (Graph.has_edge tree u v)
      | cut ->
          Alcotest.fail
            (Printf.sprintf "round %d severed %d edges" round (List.length cut)))
    (List.init 20 (fun i -> i + 1));
  (* The attack cycles through the tree: across 4 epochs of the 4-edge
     tree every edge gets hit. *)
  let hits =
    List.sort_uniq compare (List.concat_map (fun e -> severed ((e * 4) + 1)) [ 0; 1; 2; 3 ])
  in
  Alcotest.(check int) "every tree edge attacked" (Graph.m tree) (List.length hits);
  (* On a graph richer than the tree the network stays connected. *)
  let r = Dynamic.reachable s ~round:1 ~from:0 in
  Alcotest.(check bool) "richer graph survives" true (Array.for_all Fun.id r)

let test_next_hop () =
  let g = Gen.path 5 in
  let s = Dynamic.identity g in
  Alcotest.(check (option int)) "path next hop" (Some 1)
    (Dynamic.next_hop s ~round:1 ~src:0 ~dst:4);
  Alcotest.(check (option int)) "self" None
    (Dynamic.next_hop s ~round:1 ~src:2 ~dst:2);
  let cut = Dynamic.partition ~at:1 ~island:[ 4 ] g in
  Alcotest.(check (option int)) "severed" None
    (Dynamic.next_hop cut ~round:1 ~src:0 ~dst:4);
  Alcotest.(check (option int)) "unaffected side still routes" (Some 1)
    (Dynamic.next_hop cut ~round:1 ~src:0 ~dst:3)

(* ------------------------------------------------------------------ *)
(* The dynamic queue.                                                  *)

let check_report msg requests (rep : Dq.report) =
  (match rep.result.order with
  | Ok _ -> ()
  | Error e ->
      Alcotest.fail (Format.asprintf "%s: %a" msg Arrow.Order.pp_error e));
  Alcotest.(check int)
    (msg ^ ": all operations complete")
    (List.length requests)
    (List.length rep.result.outcomes);
  Alcotest.(check bool)
    (msg ^ ": monitors pass - "
    ^ Format.asprintf "%a" Monitor.pp_report rep.monitors)
    true
    (Monitor.all_pass rep.monitors)

(* Small instances: the dynamic queue floods knowledge, so keep the
   qcheck topologies below the big zoo sizes. *)
let small_instance_gen =
  let open QCheck2.Gen in
  let* pick = int_range 0 3 in
  let name, g =
    match pick with
    | 0 -> ("complete-6", Gen.complete 6)
    | 1 -> ("path-8", Gen.path 8)
    | 2 -> ("star-7", Gen.star 7)
    | _ -> ("mesh-3x3", Gen.square_mesh 3)
  in
  let n = Graph.n g in
  let* mask = list_size (return n) bool in
  let requests = List.filteri (fun i _ -> List.nth mask i) (Helpers.all_nodes n) in
  let requests = if requests = [] then [ n - 1 ] else requests in
  let* leader = int_range 0 (n - 1) in
  return (name, g, leader, requests)

let prop_dq_identity =
  QCheck2.Test.make ~count:60
    ~name:"dynamic queue: identity schedule queues everything"
    ~print:(fun (name, _, leader, requests) ->
      Printf.sprintf "%s leader=%d R={%s}" name leader
        (String.concat "," (List.map string_of_int requests)))
    small_instance_gen
    (fun (_, g, leader, requests) ->
      let rep = Dq.run ~leader ~graph:g ~requests () in
      Monitor.all_pass rep.monitors
      && (match rep.result.order with Ok _ -> true | Error _ -> false)
      && List.length rep.result.outcomes = List.length requests
      && rep.topo = Dynamic.no_stats)

let test_dq_t_interval () =
  let g = Gen.complete 6 in
  let requests = Helpers.all_nodes 6 in
  let sched = Dynamic.t_interval ~seed:41L ~t:4 g in
  let rep = Dq.run ~sched ~graph:g ~requests () in
  check_report "t-interval" requests rep

let test_dq_rewire () =
  let g = Gen.square_mesh 3 in
  let requests = [ 0; 2; 4; 6; 8 ] in
  let sched = Dynamic.periodic_rewire ~seed:23L ~period:6 g in
  let rep = Dq.run ~sched ~graph:g ~requests () in
  check_report "periodic rewire" requests rep

(* The acceptance scenario: one flap process over a 3x3 mesh. The
   static arrow protocol lives on a spanning tree of the mesh and dies
   the first time a tree-edge transmission is dropped; the dynamic
   queue and the routed arrow survive the same schedule. *)
let flap_graph = Gen.square_mesh 3
let flap_sched () = Dynamic.link_flaps ~seed:77L ~rate:0.4 ~epoch:4 flap_graph
let flap_requests = Helpers.all_nodes 9

let test_static_arrow_dies_under_flaps () =
  let tree = Spanning.best_for_arrow flap_graph in
  let protocol =
    Arrow.Protocol.one_shot_protocol ~tree ~requests:flap_requests ()
  in
  let monitors = [ Monitor.completes ~expected:(List.length flap_requests) ] in
  let dynamic = Dynamic.start (flap_sched ()) in
  let result =
    Engine.run ~dynamic
      ~observer:(Monitor.observe monitors)
      ~graph:(Tree.to_graph tree)
      ~config:(Engine.config_with_capacity (max 1 (Tree.max_degree tree)))
      ~protocol ()
  in
  let report = Monitor.finalise monitors in
  Alcotest.(check bool) "the schedule dropped arrow messages" true
    ((Dynamic.stats dynamic).link_drops > 0);
  Alcotest.(check bool) "static arrow loses operations" true
    (List.length result.completions < List.length flap_requests);
  Alcotest.(check bool) "completion monitor flags the loss" false
    (Monitor.all_pass report)

let test_dq_survives_flaps () =
  let rep = Dq.run ~sched:(flap_sched ()) ~graph:flap_graph ~requests:flap_requests () in
  check_report "dynamic queue under flaps" flap_requests rep

let test_routed_arrow_survives_flaps () =
  let tree = Spanning.best_for_arrow flap_graph in
  let rep, route =
    Dq.run_arrow ~sched:(flap_sched ()) ~graph:flap_graph ~tree
      ~requests:flap_requests ()
  in
  check_report "routed arrow under flaps" flap_requests rep;
  Alcotest.(check int) "no abandoned envelopes" 0 route.gave_up;
  Alcotest.(check bool) "the repair layer worked for a living" true
    (route.rerouted > 0 || route.retransmits > 0)

let test_routed_arrow_identity () =
  let g = Gen.path 6 in
  let tree = Spanning.best_for_arrow g in
  let requests = [ 1; 3; 5 ] in
  let rep, route = Dq.run_arrow ~graph:g ~tree ~requests () in
  check_report "routed arrow, static graph" requests rep;
  Alcotest.(check int) "nothing rerouted on the identity schedule" 0
    route.rerouted;
  Alcotest.(check int) "no retransmissions without drops" 0 route.retransmits;
  Alcotest.(check bool) "envelopes moved" true (route.forwarded > 0)

(* Satellite: when the adversary permanently walls off the token
   holder, the stall verdict must say so, naming the partition. *)
let test_stall_names_partition () =
  let g = Gen.complete 4 in
  let sched = Dynamic.partition ~at:1 ~island:[ 0 ] g in
  let rep =
    Dq.run ~leader:0 ~sched ~progress_budget:16 ~graph:g ~requests:[ 1; 2; 3 ] ()
  in
  Alcotest.(check int) "nothing completes" 0 (List.length rep.result.outcomes);
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let stalled_detail =
    List.find_map
      (fun (o : Monitor.outcome) ->
        match o.status with
        | Monitor.Stalled { detail; _ } -> detail
        | _ -> None)
      rep.monitors
  in
  match stalled_detail with
  | None -> Alcotest.fail "expected a Stalled verdict with a diagnosis"
  | Some d ->
      Alcotest.(check bool) ("diagnosis names the cut: " ^ d) true
        (contains d "cut off");
      Alcotest.(check bool) ("diagnosis names the holder: " ^ d) true
        (contains d "node 0")

(* Model check: the single-extender safety argument holds on EVERY
   interleaving of the receive-driven core, not just sampled ones. *)
let dq_check requests completions =
  let outcomes =
    List.map
      (fun (c : _ Engine.completion) ->
        let op, pred = c.value in
        { Arrow.Types.op; pred; found_at = c.node; round = c.round })
      completions
  in
  if List.length outcomes <> List.length requests then
    Error "wrong number of completions"
  else
    match Arrow.Order.chain outcomes with
    | Ok _ -> Ok ()
    | Error e -> Error (Format.asprintf "%a" Arrow.Order.pp_error e)

let test_dq_all_schedules () =
  List.iter
    (fun (g, requests) ->
      let protocol = Dq.one_shot_protocol ~graph:g ~requests () in
      match Explore.run ~graph:g ~protocol ~check:(dq_check requests) () with
      | Explore.Exhaustive stats ->
          Alcotest.(check bool) "terminals checked" true (stats.terminal >= 1)
      | Explore.Budget_exhausted _ ->
          Alcotest.fail "dynamic-queue check instance too large")
    [
      (Gen.path 3, [ 1; 2 ]);
      (Gen.star 4, [ 1; 2; 3 ]);
      (Gen.complete 3, [ 0; 1; 2 ]);
    ]

let suite =
  [
    Helpers.qcheck identity_active;
    Helpers.qcheck identity_reference;
    Helpers.qcheck equiv_dynamic;
    Alcotest.test_case "link flaps: rates, protection, determinism" `Quick
      test_flaps_semantics;
    Alcotest.test_case "node churn: protection and usability" `Quick
      test_churn_semantics;
    Alcotest.test_case "t-interval: spanning tree per window" `Quick
      test_t_interval_spanning;
    Alcotest.test_case "periodic rewire: always connected" `Quick
      test_rewire_connected;
    Alcotest.test_case "partition: cut edges and diagnosis" `Quick
      test_partition_and_describe_cut;
    Alcotest.test_case "tree attack: rotates through the tree" `Quick
      test_tree_attack_rotates;
    Alcotest.test_case "next hop: shortest usable path" `Quick test_next_hop;
    Helpers.qcheck prop_dq_identity;
    Alcotest.test_case "dynamic queue: T-interval adversary" `Quick
      test_dq_t_interval;
    Alcotest.test_case "dynamic queue: periodic rewiring" `Quick test_dq_rewire;
    Alcotest.test_case "static arrow dies under link flaps" `Quick
      test_static_arrow_dies_under_flaps;
    Alcotest.test_case "dynamic queue survives the same flaps" `Quick
      test_dq_survives_flaps;
    Alcotest.test_case "routed arrow survives the same flaps" `Quick
      test_routed_arrow_survives_flaps;
    Alcotest.test_case "routed arrow: identity schedule" `Quick
      test_routed_arrow_identity;
    Alcotest.test_case "stall verdict names the partition" `Quick
      test_stall_names_partition;
    Alcotest.test_case "dynamic queue: all schedules (model check)" `Quick
      test_dq_all_schedules;
  ]
