(* Tests for the per-node / per-edge Metrics recorder. *)

module Gen = Countq_topology.Gen
module Graph = Countq_topology.Graph
module Tree = Countq_topology.Tree
module Spanning = Countq_topology.Spanning
module Engine = Countq_simnet.Engine
module Reference = Countq_simnet.Reference
module Async = Countq_simnet.Async
module Faults = Countq_simnet.Faults
module Metrics = Countq_simnet.Metrics
module Sweep = Countq_counting.Sweep
module Json = Countq_util.Json

(* A sweep instance over the given topology: tree, its graph and a
   ready-to-run protocol. *)
let sweep_instance g requests =
  let tree = Spanning.best_for_arrow g in
  let graph = Tree.to_graph tree in
  let protocol = Sweep.one_shot_protocol ~tree ~requests () in
  (graph, protocol)

(* The recorder must be passive: attaching one must not change a single
   field of the result, on any topology, fault-free. *)
let prop_metrics_off_bit_identical =
  QCheck2.Test.make ~name:"metrics attachment is bit-identical (fault-free)"
    ~count:100 ~print:Helpers.instance_print Helpers.nonempty_instance_gen
    (fun (_, g, requests) ->
      let graph, protocol = sweep_instance g requests in
      let run ?metrics () =
        Engine.run ?metrics ~graph ~config:Engine.default_config ~protocol ()
      in
      let plain = run () in
      let m = Metrics.create ~graph in
      plain = run ~metrics:m ())

(* Same through the fault layer: drops, duplicates, delay spikes and a
   crash all take the instrumented paths. *)
let prop_metrics_off_bit_identical_faulty =
  QCheck2.Test.make ~name:"metrics attachment is bit-identical (faulty)"
    ~count:100
    ~print:(fun (i, seed) ->
      Printf.sprintf "%s seed=%d" (Helpers.instance_print i) seed)
    QCheck2.Gen.(pair Helpers.nonempty_instance_gen (int_range 0 1000))
    (fun ((_, g, requests), seed) ->
      let graph, protocol = sweep_instance g requests in
      let plan =
        Faults.random ~label:"qcheck" ~seed:(Int64.of_int seed) ~drop:0.05
          ~duplicate:0.05 ~delay:0.1
          ~crashes:[ { Faults.node = 0; at_round = 4; recover_at = Some 6 } ]
          ()
      in
      let run ?metrics () =
        Engine.run ~faults:(Faults.start plan) ?metrics ~graph
          ~config:Engine.default_config ~protocol ()
      in
      let plain = run () in
      let m = Metrics.create ~graph in
      plain = run ~metrics:m ())

(* Both engines replay the same schedule fault-free, so their recorders
   must agree counter for counter — this also pins the engine's
   slot-passing fast path against the search-based reference path. *)
let prop_engine_reference_metrics_agree =
  QCheck2.Test.make ~name:"engine and reference recorders agree" ~count:100
    ~print:Helpers.instance_print Helpers.nonempty_instance_gen
    (fun (_, g, requests) ->
      let graph, protocol = sweep_instance g requests in
      let m_engine = Metrics.create ~graph in
      let m_ref = Metrics.create ~graph in
      ignore
        (Engine.run ~metrics:m_engine ~graph ~config:Engine.default_config
           ~protocol ());
      ignore
        (Reference.run ~metrics:m_ref ~graph ~config:Engine.default_config
           ~protocol ());
      Metrics.per_node m_engine = Metrics.per_node m_ref
      && Metrics.per_edge m_engine = Metrics.per_edge m_ref)

(* Fault-free, every transmission is delivered: sends = receives =
   the engine's own message count. *)
let test_conservation () =
  let graph, protocol = sweep_instance (Gen.path 32) (Helpers.all_nodes 32) in
  let m = Metrics.create ~graph in
  let res =
    Engine.run ~metrics:m ~graph ~config:Engine.default_config ~protocol ()
  in
  Alcotest.(check int) "sends = messages" res.messages (Metrics.total_sends m);
  Alcotest.(check int) "receives = messages" res.messages
    (Metrics.total_receives m)

(* The async engine counts the same traffic as the synchronous one on a
   fault-free run (its busy *rounds* are event times, so only the
   counters are compared). *)
let test_async_parity () =
  let graph, protocol = sweep_instance (Gen.path 16) (Helpers.all_nodes 16) in
  let m_sync = Metrics.create ~graph in
  let m_async = Metrics.create ~graph in
  ignore
    (Engine.run ~metrics:m_sync ~graph ~config:Engine.default_config ~protocol
       ());
  ignore (Async.run ~metrics:m_async ~graph ~delay:(Async.Constant 1) ~protocol ());
  let traffic m =
    List.map
      (fun (e : Metrics.edge_stats) -> (e.src, e.dst, e.e_sends, e.e_receives))
      (Metrics.per_edge m)
  in
  Alcotest.(check int) "total sends" (Metrics.total_sends m_sync)
    (Metrics.total_sends m_async);
  Alcotest.(check int) "total receives" (Metrics.total_receives m_sync)
    (Metrics.total_receives m_async);
  Alcotest.(check bool) "per-edge traffic" true (traffic m_sync = traffic m_async)

(* Hand-driven recorder: heatmap cells and scale come out exactly as
   documented (path 0-1-2; one message 0 -> 1). *)
let test_heatmap_golden () =
  let graph = Gen.path 3 in
  let m = Metrics.create ~graph in
  Metrics.note_transmit m ~src:0 ~dst:1 ~round:0;
  Metrics.note_deliver m ~src:0 ~dst:1 ~round:1;
  let expected =
    "node traffic heatmap (sends + receives; peak = 1; scale \" .:-=+*#%@\")\n\
    \     0  @@ \n"
  in
  Alcotest.(check string) "golden" expected (Metrics.render_heatmap m)

(* Every exported line is standalone JSON with a recognised type tag. *)
let test_jsonl_parses () =
  let graph, protocol = sweep_instance (Gen.star 8) (Helpers.all_nodes 8) in
  let m = Metrics.create ~graph in
  ignore
    (Engine.run ~metrics:m ~graph ~config:Engine.default_config ~protocol ());
  let lines =
    List.filter
      (fun l -> l <> "")
      (String.split_on_char '\n' (Metrics.to_jsonl m))
  in
  Alcotest.(check bool) "has lines" true (lines <> []);
  List.iter
    (fun line ->
      match Json.of_string line with
      | Error e -> Alcotest.failf "unparseable line %S: %s" line e
      | Ok j -> (
          match Option.map (Json.member "type") (Some j) |> Option.join with
          | Some (Json.Str ("node" | "edge")) -> ()
          | _ -> Alcotest.failf "bad type tag in %S" line))
    lines

(* Non-edges are rejected rather than silently miscounted. *)
let test_non_edge_rejected () =
  let m = Metrics.create ~graph:(Gen.path 3) in
  Alcotest.check_raises "not an edge"
    (Invalid_argument "Metrics: not an edge of the graph") (fun () ->
      Metrics.note_transmit m ~src:0 ~dst:2 ~round:0)

let suite =
  [
    Helpers.qcheck prop_metrics_off_bit_identical;
    Helpers.qcheck prop_metrics_off_bit_identical_faulty;
    Helpers.qcheck prop_engine_reference_metrics_agree;
    Alcotest.test_case "conservation" `Quick test_conservation;
    Alcotest.test_case "async parity" `Quick test_async_parity;
    Alcotest.test_case "heatmap golden" `Quick test_heatmap_golden;
    Alcotest.test_case "jsonl parses" `Quick test_jsonl_parses;
    Alcotest.test_case "non-edge rejected" `Quick test_non_edge_rejected;
  ]
