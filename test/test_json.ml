(* The shared JSON core: printer/parser round-trips and the \uXXXX
   decoder (full Unicode range, surrogate pairs, malformed escapes). *)

module Json = Countq_util.Json

let parse s =
  match Json.of_string s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse %S: %s" s e

let parse_err s =
  match Json.of_string s with
  | Ok _ -> Alcotest.failf "parse %S: expected an error" s
  | Error e -> e

let roundtrip v =
  Alcotest.(check bool) "round-trip" true (parse (Json.to_string v) = v)

let test_roundtrip_basics () =
  List.iter roundtrip
    [
      Json.Null;
      Json.Bool true;
      Json.Int 42;
      Json.Int (-7);
      Json.Float 3.25;
      Json.Str "plain";
      Json.Str "tab\tnewline\nquote\"backslash\\";
      Json.Arr [ Json.Int 1; Json.Str "two"; Json.Null ];
      Json.Obj [ ("a", Json.Int 1); ("b", Json.Arr []) ];
    ]

let test_unicode_escape_latin1 () =
  (* é is é: the decoder must produce UTF-8 (0xc3 0xa9), not the
     bare latin-1 byte 0xe9. *)
  Alcotest.(check string) "e-acute" "caf\xc3\xa9" (
    match parse {|"caf\u00e9"|} with
    | Json.Str s -> s
    | _ -> Alcotest.fail "expected a string")

let test_unicode_escape_bmp () =
  (* Beyond latin-1 but inside the basic multilingual plane. *)
  match parse {|"\u0416\u4e2d\u20ac"|} with
  | Json.Str s ->
      Alcotest.(check string) "Zhe, zhong, euro"
        "\xd0\x96\xe4\xb8\xad\xe2\x82\xac" s
  | _ -> Alcotest.fail "expected a string"

let test_unicode_surrogate_pair () =
  (* U+1F600 (emoji) = surrogate pair D83D DE00; decodes to 4-byte
     UTF-8. *)
  match parse {|"\ud83d\ude00"|} with
  | Json.Str s -> Alcotest.(check string) "emoji" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "expected a string"

let test_unicode_escape_roundtrips_with_literal () =
  (* An escaped code point and the literal UTF-8 bytes must parse to
     the same string, and the printer's output must parse back. *)
  let escaped = parse {|"\u00E9\u4E2D\uD83D\uDE00"|} in
  let literal = parse "\"\xc3\xa9\xe4\xb8\xad\xf0\x9f\x98\x80\"" in
  Alcotest.(check bool) "escaped = literal" true (escaped = literal);
  roundtrip escaped

let test_unpaired_surrogates_rejected () =
  List.iter
    (fun s -> ignore (parse_err s))
    [
      {|"\ud83d"|} (* lone high *);
      {|"\ud83dx"|} (* high then junk *);
      {|"\ud83dA"|} (* high then non-low *);
      {|"\ude00"|} (* lone low *);
    ]

let test_malformed_escapes_rejected () =
  List.iter
    (fun s -> ignore (parse_err s))
    [ {|"\u12"|}; {|"\u12g4"|}; {|"\q"|}; {|"\u"|} ]

let test_control_chars_escape_and_return () =
  (* The printer escapes control characters as \u00XX; they must come
     back byte-identical. *)
  roundtrip (Json.Str "\x00\x01\x1f bell\x07")

let suite =
  [
    Alcotest.test_case "round-trip basics" `Quick test_roundtrip_basics;
    Alcotest.test_case "\\u latin-1 range decodes to UTF-8" `Quick
      test_unicode_escape_latin1;
    Alcotest.test_case "\\u BMP decodes to UTF-8" `Quick
      test_unicode_escape_bmp;
    Alcotest.test_case "surrogate pair combines" `Quick
      test_unicode_surrogate_pair;
    Alcotest.test_case "escaped = literal UTF-8" `Quick
      test_unicode_escape_roundtrips_with_literal;
    Alcotest.test_case "unpaired surrogates rejected" `Quick
      test_unpaired_surrogates_rejected;
    Alcotest.test_case "malformed escapes rejected" `Quick
      test_malformed_escapes_rejected;
    Alcotest.test_case "control characters round-trip" `Quick
      test_control_chars_escape_and_return;
  ]
