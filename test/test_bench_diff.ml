(* The bench-snapshot comparison that gates CI: probe extraction from
   hand-written snapshots, direction-aware ratio verdicts, and the
   explicit UNUSABLE verdict for zero/NaN/negative values that used to
   slip through the gate silently. *)

module D = Countq.Bench_diff
module J = Countq_util.Json

let parse s =
  match J.of_string s with
  | Ok j -> j
  | Error e -> Alcotest.failf "bad test snapshot: %s" e

(* A hand-written baseline snapshot covering every probe source:
   experiment wall-clocks, kernel ns/run and the scalar summaries —
   including a zero wall-clock (a timer that never ran). *)
let old_snapshot =
  parse
    {|{
  "schema": "countq-bench/test",
  "experiments": [
    { "id": "E1", "wall_seconds": 2.0 },
    { "id": "E2", "wall_seconds": 0.0 },
    { "id": "E3", "wall_seconds": 1.5 }
  ],
  "kernels": [
    { "name": "engine-step", "ns_per_run": 100.0 },
    { "name": "heap-push", "ns_per_run": 40 }
  ],
  "engine_speedup": { "speedup_at_ceiling": 8.0 },
  "n_scaling": { "max_ns_per_message": 500.0 }
}|}

(* The candidate: E1 regresses 2x, E3 improves 2x, E2's counterpart is
   fine but the baseline was zero; engine-step is unchanged, heap-push
   is dropped; the speedup probe halves (worse, because higher is
   better there). *)
let new_snapshot =
  parse
    {|{
  "schema": "countq-bench/test",
  "experiments": [
    { "id": "E1", "wall_seconds": 4.0 },
    { "id": "E2", "wall_seconds": 1.0 },
    { "id": "E3", "wall_seconds": 0.75 }
  ],
  "kernels": [
    { "name": "engine-step", "ns_per_run": 101.0 }
  ],
  "engine_speedup": { "speedup_at_ceiling": 4.0 },
  "n_scaling": { "max_ns_per_message": 500.0 }
}|}

let verdict_label = function
  | D.Within _ -> "within"
  | D.Improved _ -> "improved"
  | D.Regressed _ -> "regressed"
  | D.Unusable why -> "unusable: " ^ why
  | D.Missing -> "missing"

let find report name =
  match List.find_opt (fun (r : D.row) -> r.probe = name) report.D.rows with
  | Some r -> r
  | None -> Alcotest.failf "no row for probe %s" name

let test_probe_extraction () =
  let probes = D.probes_of ~kernels_only:false old_snapshot in
  Alcotest.(check (list string))
    "all probe sources extracted, in snapshot order"
    [
      "experiment E1";
      "experiment E2";
      "experiment E3";
      "engine-step";
      "heap-push";
      "engine speedup at ceiling";
      "event-engine ns/message";
    ]
    (List.map (fun p -> p.D.pname) probes);
  let kernels = D.probes_of ~kernels_only:true old_snapshot in
  Alcotest.(check (list string))
    "kernels-only keeps just the ns/run probes"
    [ "engine-step"; "heap-push" ]
    (List.map (fun p -> p.D.pname) kernels);
  (* Int and Float JSON numbers both parse as probe values. *)
  Alcotest.(check bool)
    "int-valued ns_per_run extracted" true
    (List.exists (fun p -> p.D.pname = "heap-push" && p.D.value = 40.) kernels)

let test_verdicts () =
  let report =
    D.compare ~threshold:25.0
      (D.probes_of ~kernels_only:false old_snapshot)
      (D.probes_of ~kernels_only:false new_snapshot)
  in
  Alcotest.(check string)
    "2x slower experiment regresses" "regressed"
    (verdict_label (find report "experiment E1").verdict);
  Alcotest.(check string)
    "2x faster experiment improves" "improved"
    (verdict_label (find report "experiment E3").verdict);
  Alcotest.(check string)
    "1% drift stays within" "within"
    (verdict_label (find report "engine-step").verdict);
  Alcotest.(check string)
    "halved speedup regresses (direction-aware)" "regressed"
    (verdict_label (find report "engine speedup at ceiling").verdict);
  Alcotest.(check string)
    "dropped probe is missing" "missing"
    (verdict_label (find report "heap-push").verdict);
  Alcotest.(check string)
    "zero baseline is called out, not skipped" "unusable: baseline unusable: zero"
    (verdict_label (find report "experiment E2").verdict);
  Alcotest.(check int) "compared counts only usable ratios" 5 report.compared;
  Alcotest.(check int) "two regressions" 2 report.regressions;
  Alcotest.(check int) "one unusable" 1 report.unusable;
  Alcotest.(check int) "one missing" 1 report.missing;
  (* The strict gate fails on the unusable baseline too. *)
  Alcotest.(check int) "gate counts regressions + unusable" 3
    (D.gate_failures report);
  match (find report "experiment E1").verdict with
  | D.Regressed r -> Alcotest.(check (float 1e-9)) "ratio is new/old" 2.0 r
  | v -> Alcotest.failf "expected Regressed, got %s" (verdict_label v)

let test_nan_and_negative_unusable () =
  (* NaN passes neither [<= 0.] nor any ratio comparison — the old
     code let it through silently. Hand-built probes, since JSON has
     no NaN literal. *)
  let p name value : D.probe = { pname = name; value; dir = `Lower } in
  let report =
    D.compare ~threshold:25.0
      [ p "a" Float.nan; p "b" 1.0; p "c" 1.0; p "d" (-2.0); p "e" Float.infinity ]
      [ p "a" 1.0; p "b" Float.nan; p "c" Float.neg_infinity; p "d" 1.0; p "e" 1.0 ]
  in
  Alcotest.(check (list string))
    "every non-finite or non-positive value is named"
    [
      "unusable: baseline unusable: NaN";
      "unusable: candidate unusable: NaN";
      "unusable: candidate unusable: infinite";
      "unusable: baseline unusable: negative";
      "unusable: baseline unusable: infinite";
    ]
    (List.map (fun (r : D.row) -> verdict_label r.verdict) report.rows);
  Alcotest.(check int) "nothing compared" 0 report.compared;
  Alcotest.(check int) "all five gate the strict run" 5
    (D.gate_failures report)

let test_threshold_boundary () =
  let p v : D.probe = { pname = "t"; value = v; dir = `Lower } in
  let verdict old_v new_v =
    verdict_label
      (List.hd (D.compare ~threshold:25.0 [ p old_v ] [ p new_v ]).rows)
        .verdict
  in
  Alcotest.(check string) "exactly +25% is within" "within" (verdict 4.0 5.0);
  Alcotest.(check string) "just past +25% regresses" "regressed"
    (verdict 4.0 5.01);
  Alcotest.(check string) "reciprocal boundary is within" "within"
    (verdict 5.0 4.0);
  Alcotest.(check string) "just past the reciprocal improves" "improved"
    (verdict 5.01 4.0);
  Alcotest.check_raises "negative threshold rejected"
    (Invalid_argument "Bench_diff.compare: threshold must be finite and >= 0")
    (fun () -> ignore (D.compare ~threshold:(-1.0) [] []));
  Alcotest.check_raises "NaN threshold rejected"
    (Invalid_argument "Bench_diff.compare: threshold must be finite and >= 0")
    (fun () -> ignore (D.compare ~threshold:Float.nan [] []))

let suite =
  [
    Alcotest.test_case "probe extraction from a snapshot" `Quick
      test_probe_extraction;
    Alcotest.test_case "verdicts on a hand-written pair" `Quick test_verdicts;
    Alcotest.test_case "NaN/negative/infinite values are UNUSABLE" `Quick
      test_nan_and_negative_unusable;
    Alcotest.test_case "threshold boundaries and validation" `Quick
      test_threshold_boundary;
  ]
