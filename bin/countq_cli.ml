(* countq: command-line driver for the reproduction.

   Subcommands:
     list                     -- list the experiments
     run <id> [--quick] [--csv FILE]
     all [--quick]
     experiments [IDS…] [--jobs N] [--no-cache]
                              -- run experiments on the domain pool with
                                 the content-addressed result cache
     cache stats|clear        -- inspect or empty the result cache
     compare -t T -n N [-r PATTERN] [--seed S]
     topo -t T -n N
     trace -t T -n N          -- ASCII timeline of one arrow run
     series -t T --sizes N,…  -- CSV sweep of queuing vs counting
     verify -t T -n N         -- exhaustive schedule check (tiny n)
     check [--quick] [--jobs N] [--max-configs M]
                              -- model-check all six protocols on fixed
                                 instances; nonzero exit on violation
     report [-o FILE] [-j N]  -- regenerate the full markdown report
     faults -t T -n N -p PLAN -- degradation under an injected fault plan
     churn -t T -n N -a ADV   -- degradation under a dynamic-topology
                                 schedule (link flaps, node churn,
                                 T-interval connectivity, …)
     observe -t T -n N --protocol P [--protocol P…]
                              -- metrics + spans: heatmap, delay
                                 percentiles, optional JSONL export
     load -t SPEC --rates R,… -- open-loop traffic on the event-driven
                                 engine over an implicit topology:
                                 latency vs offered load, counting vs
                                 queuing
*)

open Cmdliner

module Gen = Countq_topology.Gen
module Graph = Countq_topology.Graph
module Bfs = Countq_topology.Bfs
module Tree = Countq_topology.Tree
module Spanning = Countq_topology.Spanning
module Rng = Countq_util.Rng
module Experiments = Countq.Experiments
module Table = Countq.Table
module Run = Countq.Run
module Sweep = Countq.Sweep
module Cache = Countq.Cache
module Parallel = Countq_util.Parallel

(* ---- shared arguments (parsed by Countq.Scenario) ---- *)

let build_topology name n =
  match Countq.Scenario.topology (Printf.sprintf "%s:%d" name n) with
  | Ok (_, g) -> Ok g
  | Error (`Msg m) -> Error m

let topology_arg =
  let doc =
    Printf.sprintf "Topology family: one of %s."
      (String.concat ", " Countq.Scenario.known_topologies)
  in
  Arg.(value & opt string "mesh" & info [ "topology"; "t" ] ~docv:"NAME" ~doc)

let n_arg =
  Arg.(value & opt int 64 & info [ "n" ] ~docv:"N" ~doc:"Number of processors (rounded to the family's nearest realisable size).")

let requests_arg =
  Arg.(
    value
    & opt string "all"
    & info [ "requests"; "r" ] ~docv:"PATTERN"
        ~doc:"Request pattern: all | half | k:K | density:D | nodes:v,v,…")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Shrink the parameter sweeps.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

(* Every subcommand that fans out over domains shares this argument and
   validation: absent means the machine's recommended count, and any
   explicit value must be >= 1. *)
let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Evaluate on N domains (default: the machine's recommended \
           count). Results are bit-identical for every N.")

let resolve_jobs = function
  | None -> Parallel.recommended_jobs ()
  | Some j when j >= 1 -> j
  | Some _ ->
      prerr_endline "--jobs must be >= 1";
      exit 2

(* Where --jobs fans independent runs out over domains, --shards splits
   ONE run across domains (Countq_simnet.Shard). Absent or 1 means the
   sequential engines; any explicit value must be >= 1. *)
let shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"K"
        ~doc:
          "Partition each engine run across K domains with a deterministic \
           round-barrier merge (default 1: the sequential engine). Results \
           are bit-identical for every K; this is purely a wall-clock lever \
           on multicore machines.")

let resolve_shards = function
  | None -> 1
  | Some k when k >= 1 -> k
  | Some _ ->
      prerr_endline "--shards must be >= 1";
      exit 2

let default_cache_dir = Filename.concat (Filename.concat "bench" "out") "cache"

(* Surface a Round_limit_exceeded payload: where the pending traffic
   sits, not just that the limit blew. *)
let report_round_limit ~limit ~outstanding ~queued ~held ~busiest =
  Printf.eprintf
    "round limit %d exceeded: %d message(s) in sender outboxes, %d queued on \
     links, %d held by fault delays\n"
    limit outstanding queued held;
  if busiest <> [] then begin
    Printf.eprintf "busiest nodes (queued + outbox + fault-delayed):\n";
    List.iter
      (fun (v, load) -> Printf.eprintf "  node %d: load %d\n" v load)
      busiest
  end

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun (s : Experiments.spec) ->
        Printf.printf "%-4s %-45s (%s)\n" s.id s.title s.paper_ref)
      Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the paper-reproduction experiments.")
    Term.(const run $ const ())

(* ---- run ---- *)

let run_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id (e.g. E9).")
  in
  let csv_arg =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the table as CSV.")
  in
  let run id quick csv =
    match Experiments.find id with
    | None ->
        Printf.eprintf "unknown experiment %S; try 'countq list'\n" id;
        exit 2
    | Some spec ->
        let table = spec.run ~quick () in
        Table.print table;
        Option.iter
          (fun path ->
            let oc = open_out path in
            output_string oc (Table.to_csv table);
            close_out oc;
            Printf.printf "wrote %s\n" path)
          csv
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one experiment and print its table.")
    Term.(const run $ id_arg $ quick_arg $ csv_arg)

(* ---- all ---- *)

let all_cmd =
  let run quick =
    List.iter
      (fun (s : Experiments.spec) -> Table.print (s.run ~quick ()))
      Experiments.all
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment.")
    Term.(const run $ quick_arg)

(* ---- experiments: the pooled, cached runner ---- *)

let experiments_cmd =
  let ids_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"IDS"
          ~doc:"Experiment ids to run (default: every experiment).")
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Recompute every point; neither read nor write the cache.")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt string default_cache_dir
      & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Result-cache directory.")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Also write each table as DIR/<id>.csv.")
  in
  let run ids quick jobs shards no_cache cache_dir csv_dir seed =
    let jobs = resolve_jobs jobs in
    let shards = resolve_shards shards in
    let specs =
      match ids with
      | [] -> Experiments.all
      | ids ->
          List.map
            (fun id ->
              match Experiments.find id with
              | Some s -> s
              | None ->
                  Printf.eprintf "unknown experiment %S; try 'countq list'\n"
                    id;
                  exit 2)
            ids
    in
    let cache = if no_cache then None else Some (Cache.create ~dir:cache_dir) in
    (* The spot check re-verifies one cached point per experiment; the
       wall clock varies which one across invocations. *)
    let spot_seed =
      Int64.logxor
        (Int64.of_int seed)
        (Int64.of_float (Unix.gettimeofday () *. 1e6))
    in
    let ctx =
      Sweep.ctx ~pool:(Parallel.pool ~jobs) ?cache
        ~spot_check:(not no_cache) ~spot_seed ~shards ()
    in
    Option.iter
      (fun dir -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755)
      csv_dir;
    let counters () =
      match cache with None -> (0, 0) | Some c -> (Cache.hits c, Cache.misses c)
    in
    List.iter
      (fun (s : Experiments.spec) ->
        let h0, m0 = counters () in
        let t0 = Unix.gettimeofday () in
        let table =
          try s.run ~quick ~ctx ()
          with Sweep.Cache_mismatch _ as e ->
            Printf.eprintf "%s\n" (Printexc.to_string e);
            exit 1
        in
        let dt = Unix.gettimeofday () -. t0 in
        let h1, m1 = counters () in
        Table.print table;
        if cache <> None then
          Printf.printf "[%s] %.2fs, cache: %d hit(s), %d miss(es)\n\n" s.id dt
            (h1 - h0) (m1 - m0)
        else Printf.printf "[%s] %.2fs\n\n" s.id dt;
        Option.iter
          (fun dir ->
            let path = Filename.concat dir (s.id ^ ".csv") in
            let oc = open_out path in
            output_string oc (Table.to_csv table);
            close_out oc)
          csv_dir)
      specs;
    match cache with
    | None -> ()
    | Some c ->
        let h, m = (Cache.hits c, Cache.misses c) in
        Printf.printf "cache: %d hit(s), %d miss(es), hit rate %.0f%% (%s)\n" h
          m
          (100. *. float_of_int h /. float_of_int (max 1 (h + m)))
          cache_dir
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:
         "Run experiments with their sweep grids evaluated on a shared \
          domain pool, reusing cached point results (bit-identical across \
          any --jobs value; one cached point per experiment is spot-checked \
          against a fresh recompute).")
    Term.(
      const run $ ids_arg $ quick_arg $ jobs_arg $ shards_arg $ no_cache_arg
      $ cache_dir_arg $ csv_arg $ seed_arg)

(* ---- cache ---- *)

let cache_cmd =
  let action_arg =
    Arg.(
      value
      & pos 0 (enum [ ("stats", `Stats); ("clear", `Clear) ]) `Stats
      & info [] ~docv:"ACTION" ~doc:"One of stats, clear.")
  in
  let dir_arg =
    Arg.(
      value
      & opt string default_cache_dir
      & info [ "dir" ] ~docv:"DIR" ~doc:"Result-cache directory.")
  in
  let run action dir =
    match action with
    | `Stats ->
        let s = Cache.summarize ~dir in
        Printf.printf "cache %s: %d entr%s, %d bytes\n" dir s.entries
          (if s.entries = 1 then "y" else "ies")
          s.bytes;
        List.iter
          (fun (ns, n) -> Printf.printf "  %-6s %d entr%s\n" ns n
             (if n = 1 then "y" else "ies"))
          s.namespaces
    | `Clear ->
        let removed = Cache.clear ~dir in
        Printf.printf "cleared %s: removed %d file(s)\n" dir removed
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Inspect (stats) or empty (clear) the content-addressed experiment \
          result cache. Stale entries from older engine configurations are \
          never served - clearing just reclaims the disk.")
    Term.(const run $ action_arg $ dir_arg)

(* ---- compare ---- *)

let compare_cmd =
  let run topology n req_spec seed =
    match build_topology topology n with
    | Error e ->
        prerr_endline e;
        exit 2
    | Ok graph -> (
        let n = Graph.n graph in
        match
          Countq.Scenario.requests ~seed:(Int64.of_int seed) ~n req_spec
        with
        | Error (`Msg m) ->
            prerr_endline m;
            exit 2
        | Ok requests ->
            let k = List.length requests in
            let rows =
              List.map
                (fun (s : Run.summary) ->
                  [
                    s.protocol;
                    Table.cell_int s.total_delay;
                    Table.cell_int s.normalized_delay;
                    Table.cell_int s.max_delay;
                    Table.cell_int s.rounds;
                    Table.cell_int s.messages;
                    Table.cell_int s.expansion;
                    Table.cell_bool s.valid;
                  ])
                (List.map
                   (fun protocol -> Run.queuing ~graph ~protocol ~requests ())
                   [ `Arrow; `Arrow_notify; `Central; `Token_ring ]
                @ List.map
                    (fun protocol -> Run.counting ~graph ~protocol ~requests ())
                    [ `Central; `Combining; `Network; `Sweep ])
            in
            Table.print
              (Table.make ~id:"compare"
                 ~title:
                   (Printf.sprintf "all protocols on %s (n=%d, k=%d)" topology
                      n k)
                 ~paper_ref:"ad-hoc comparison"
                 ~headers:
                   [ "protocol"; "total"; "normalised"; "max"; "rounds"; "messages"; "expansion"; "valid" ]
                 rows))
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run every protocol on one instance and tabulate.")
    Term.(const run $ topology_arg $ n_arg $ requests_arg $ seed_arg)

(* ---- topo ---- *)

let topo_cmd =
  let run topology n =
    match build_topology topology n with
    | Error e ->
        prerr_endline e;
        exit 2
    | Ok g ->
        let tree = Spanning.best_for_arrow g in
        Printf.printf "topology    %s\n" topology;
        Printf.printf "n           %d\n" (Graph.n g);
        Printf.printf "m           %d\n" (Graph.m g);
        Printf.printf "max degree  %d\n" (Graph.max_degree g);
        Printf.printf "diameter    %d\n" (Bfs.diameter g);
        Printf.printf "arrow tree  degree %d, height %d\n"
          (Tree.max_degree tree) (Tree.height tree);
        Printf.printf "counting lower bound (Thm 3.5)  %d\n"
          (Countq_bounds.Lower.contention_lb (Graph.n g));
        Printf.printf "counting lower bound (Thm 3.6)  %d\n"
          (Countq_bounds.Lower.diameter_lb ~diameter:(Bfs.diameter g))
  in
  Cmd.v (Cmd.info "topo" ~doc:"Describe a topology and its bounds.")
    Term.(const run $ topology_arg $ n_arg)

(* ---- verify ---- *)

let verify_cmd =
  let run topology n req_spec seed =
    let n = min n 6 in
    match build_topology topology n with
    | Error e ->
        prerr_endline e;
        exit 2
    | Ok g -> (
        let nv = Graph.n g in
        if nv > 8 then begin
          prerr_endline
            "verify: instance too large for exhaustive exploration (max 8 nodes)";
          exit 2
        end;
        match
          Countq.Scenario.requests ~seed:(Int64.of_int seed) ~n:nv req_spec
        with
        | Error (`Msg m) ->
            prerr_endline m;
            exit 2
        | Ok requests -> (
            let tree = Spanning.best_for_arrow g in
            let protocol =
              Countq_arrow.Protocol.one_shot_protocol ~tree ~requests ()
            in
            let check completions =
              let outcomes =
                List.map
                  (fun (c : _ Countq_simnet.Engine.completion) ->
                    let op, pred = c.value in
                    {
                      Countq_arrow.Types.op;
                      pred;
                      found_at = c.node;
                      round = c.round;
                    })
                  completions
              in
              if List.length outcomes <> List.length requests then
                Error "wrong completion count"
              else
                match Countq_arrow.Order.chain outcomes with
                | Ok _ -> Ok ()
                | Error e ->
                    Error (Format.asprintf "%a" Countq_arrow.Order.pp_error e)
            in
            match
              Countq_simnet.Explore.run ~graph:(Tree.to_graph tree) ~protocol
                ~check ()
            with
            | Countq_simnet.Explore.Exhaustive stats ->
                Printf.printf
                  "arrow on %s (n=%d), requests {%s}:\n\
                   ALL SCHEDULES SAFE - %d configurations explored, %d quiescent\n\
                   outcomes checked, every one a single valid total order.\n"
                  topology nv
                  (String.concat "," (List.map string_of_int requests))
                  stats.explored stats.terminal
            | Countq_simnet.Explore.Budget_exhausted stats ->
                Printf.printf
                  "arrow on %s (n=%d), requests {%s}:\n\
                   BUDGET EXHAUSTED after %d configurations (%d quiescent \
                   checked, no violation in the explored prefix) - partial.\n"
                  topology nv
                  (String.concat "," (List.map string_of_int requests))
                  stats.explored stats.terminal
            | exception Countq_simnet.Explore.Violation m ->
                Printf.printf "VIOLATION FOUND: %s\n" m;
                exit 1))
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Exhaustively model-check arrow safety on a tiny instance (every schedule; n is capped).")
    Term.(const run $ topology_arg $ n_arg $ requests_arg $ seed_arg)

(* ---- check ---- *)

(* Model-check every shipped protocol on fixed instances: arrow /
   central queue / token ring against the total-order spec, central
   counter / combining tree / sweep against the count-set spec. The
   instance list is the deliverable: 6-7 node instances inside the
   default budget, which the seed explorer could not reach. *)

let check_cmd =
  let module Explore = Countq_simnet.Explore in
  let module Engine = Countq_simnet.Engine in
  let order_check requests completions =
    let outcomes =
      List.map
        (fun (c : _ Engine.completion) ->
          let op, pred = c.value in
          { Countq_arrow.Types.op; pred; found_at = c.node; round = c.round })
        completions
    in
    if List.length outcomes <> List.length requests then
      Error "wrong completion count"
    else
      match Countq_arrow.Order.chain outcomes with
      | Ok _ -> Ok ()
      | Error e -> Error (Format.asprintf "%a" Countq_arrow.Order.pp_error e)
  in
  let counts_check requests completions =
    let outcomes =
      List.map
        (fun (c : _ Engine.completion) ->
          let node, count = c.value in
          { Countq_counting.Counts.node; count; round = c.round })
        completions
    in
    match Countq_counting.Counts.validate ~requests outcomes with
    | Ok () -> Ok ()
    | Error e -> Error (Format.asprintf "%a" Countq_counting.Counts.pp_error e)
  in
  let max_configs_arg =
    Arg.(
      value
      & opt int 1_000_000
      & info [ "max-configs" ] ~docv:"M"
          ~doc:"Configuration budget per instance (budget exhaustion is a \
                reported partial verdict, not a failure).")
  in
  let run quick jobs max_configs =
    let jobs = resolve_jobs jobs in
    let pool = if jobs > 1 then Some (Parallel.pool ~jobs) else None in
    let violations = ref 0 in
    let instance ~protocol_name ~instance_name ~graph ~protocol ~check ~k =
      let t0 = Unix.gettimeofday () in
      let verdict, stats =
        match Explore.run ~graph ~protocol ~check ~max_configs ?pool () with
        | Explore.Exhaustive stats -> ("all schedules safe", stats)
        | Explore.Budget_exhausted stats -> ("budget exhausted (partial)", stats)
        | exception Explore.Violation m ->
            incr violations;
            ( "VIOLATION: " ^ m,
              { Explore.explored = 0; terminal = 0; max_frontier = 0;
                dedup_hits = 0 } )
      in
      let dt = Unix.gettimeofday () -. t0 in
      let candidates = stats.explored + stats.dedup_hits in
      let dedup_pct =
        if candidates = 0 then 0.0
        else 100.0 *. float_of_int stats.dedup_hits /. float_of_int candidates
      in
      let rate =
        if dt <= 0.0 then 0.0 else float_of_int stats.explored /. dt
      in
      [
        protocol_name;
        instance_name;
        Table.cell_int k;
        Table.cell_int stats.explored;
        Table.cell_int stats.terminal;
        Table.cell_float ~decimals:1 dedup_pct;
        Printf.sprintf "%.0f" rate;
        verdict;
      ]
    in
    let arrow name g requests =
      let tree = Spanning.best_for_arrow g in
      instance ~protocol_name:"arrow" ~instance_name:name
        ~graph:(Tree.to_graph tree)
        ~protocol:(Countq_arrow.Protocol.one_shot_protocol ~tree ~requests ())
        ~check:(order_check requests) ~k:(List.length requests)
    in
    let central name g requests =
      instance ~protocol_name:"central-count" ~instance_name:name ~graph:g
        ~protocol:(Countq_counting.Central.one_shot_protocol ~graph:g ~requests ())
        ~check:(counts_check requests) ~k:(List.length requests)
    in
    let central_queue name g requests =
      instance ~protocol_name:"central-queue" ~instance_name:name ~graph:g
        ~protocol:
          (Countq_queuing.Central_queue.one_shot_protocol ~graph:g ~requests ())
        ~check:(order_check requests) ~k:(List.length requests)
    in
    let combining name g requests =
      let tree = Spanning.bfs g ~root:0 in
      instance ~protocol_name:"combining" ~instance_name:name
        ~graph:(Tree.to_graph tree)
        ~protocol:(Countq_counting.Combining.one_shot_protocol ~tree ~requests ())
        ~check:(counts_check requests) ~k:(List.length requests)
    in
    let diffracting name g requests =
      let tree = Spanning.bfs g ~root:0 in
      instance ~protocol_name:"diffracting" ~instance_name:name
        ~graph:(Tree.to_graph tree)
        ~protocol:
          (Countq_counting.Diffracting.one_shot_protocol ~tree ~requests ())
        ~check:(counts_check requests) ~k:(List.length requests)
    in
    let funnel name g requests =
      let tree = Spanning.bfs g ~root:0 in
      instance ~protocol_name:"funnel" ~instance_name:name
        ~graph:(Tree.to_graph tree)
        ~protocol:(Countq_counting.Funnel.one_shot_protocol ~tree ~requests ())
        ~check:(counts_check requests) ~k:(List.length requests)
    in
    let token_ring name g requests =
      let tree = Spanning.bfs g ~root:0 in
      instance ~protocol_name:"token-ring" ~instance_name:name
        ~graph:(Tree.to_graph tree)
        ~protocol:(Countq_queuing.Token_ring.one_shot_protocol ~tree ~requests ())
        ~check:(order_check requests) ~k:(List.length requests)
    in
    let sweep name g requests =
      let tree = Spanning.bfs g ~root:0 in
      instance ~protocol_name:"sweep" ~instance_name:name
        ~graph:(Tree.to_graph tree)
        ~protocol:(Countq_counting.Sweep.one_shot_protocol ~tree ~requests ())
        ~check:(counts_check requests) ~k:(List.length requests)
    in
    let dynamic_queue name g requests =
      instance ~protocol_name:"dynamic-queue" ~instance_name:name ~graph:g
        ~protocol:
          (Countq_queuing.Dynamic_queue.one_shot_protocol ~graph:g ~requests ())
        ~check:(order_check requests) ~k:(List.length requests)
    in
    let t0 = Unix.gettimeofday () in
    let rows =
      if quick then
        [
          arrow "star-4" (Gen.star 4) [ 1; 2; 3 ];
          central "star-4" (Gen.star 4) [ 1; 2; 3 ];
          central_queue "star-4" (Gen.star 4) [ 1; 2; 3 ];
          combining "path-4" (Gen.path 4) [ 0; 1; 2; 3 ];
          diffracting "path-4" (Gen.path 4) [ 0; 1; 2; 3 ];
          funnel "star-4" (Gen.star 4) [ 0; 1; 2; 3 ];
          token_ring "path-4" (Gen.path 4) [ 0; 2; 3 ];
          sweep "star-4" (Gen.star 4) [ 0; 1; 2; 3 ];
          dynamic_queue "star-4" (Gen.star 4) [ 1; 2; 3 ];
        ]
      else
        [
          arrow "star-6" (Gen.star 6) [ 1; 2; 3; 4; 5 ];
          arrow "path-7" (Gen.path 7) [ 0; 1; 2; 3; 4; 5; 6 ];
          arrow "complete-6" (Gen.complete 6) [ 0; 1; 2; 3; 4; 5 ];
          central "star-6" (Gen.star 6) [ 1; 2; 3; 4; 5 ];
          central "complete-6" (Gen.complete 6) [ 0; 1; 2; 3; 4; 5 ];
          central_queue "star-6" (Gen.star 6) [ 1; 2; 3; 4; 5 ];
          combining "star-6" (Gen.star 6) [ 0; 1; 2; 3; 4; 5 ];
          diffracting "star-6" (Gen.star 6) [ 0; 1; 2; 3; 4; 5 ];
          funnel "star-6" (Gen.star 6) [ 0; 1; 2; 3; 4; 5 ];
          funnel "path-5" (Gen.path 5) [ 0; 2; 4 ];
          token_ring "path-7" (Gen.path 7) [ 0; 2; 4; 6 ];
          sweep "star-7" (Gen.star 7) [ 0; 1; 2; 3; 4; 5; 6 ];
          dynamic_queue "star-4" (Gen.star 4) [ 1; 2; 3 ];
          dynamic_queue "complete-3" (Gen.complete 3) [ 0; 1; 2 ];
        ]
    in
    let dt = Unix.gettimeofday () -. t0 in
    Table.print
      (Table.make ~id:"CHECK"
         ~title:"exhaustive model check, every shipped protocol"
         ~paper_ref:"Section 2.2 safety specifications under every schedule"
         ~headers:
           [ "protocol"; "instance"; "k"; "explored"; "terminal"; "dedup %";
             "configs/s"; "verdict" ]
         ~notes:
           [ Printf.sprintf
               "budget %d configs/instance; jobs %d; wall time %.2fs"
               max_configs jobs dt ]
         rows);
    if !violations > 0 then begin
      Printf.eprintf "check: %d violation(s) found\n" !violations;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Model-check all nine protocols exhaustively on fixed 3-7 node \
          instances; exits nonzero on any safety violation.")
    Term.(const run $ quick_arg $ jobs_arg $ max_configs_arg)

(* ---- report ---- *)

let report_cmd =
  let out_arg =
    Arg.(
      value
      & opt string "report.md"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output markdown file.")
  in
  let run quick out jobs shards =
    let jobs = resolve_jobs jobs in
    let shards = resolve_shards shards in
    (* One shared pool: the experiment-level fan-out and the sweep
       grids inside the ctx-aware experiments draw on the same budget. *)
    let pool = Parallel.pool ~jobs in
    let ctx = Sweep.ctx ~pool ~shards () in
    let tables =
      Parallel.pool_map pool ~chunk:1
        (fun (s : Experiments.spec) -> s.run ~quick ~ctx ())
        Experiments.all
    in
    let oc = open_out out in
    output_string oc "# countq — measured results\n\n";
    output_string oc
      "Regenerated from the committed seeds by `countq report`. E1–E13\n\
       reproduce the paper's claims; E14+ are ablations and extensions.\n\
       See EXPERIMENTS.md for the reading guide.\n\n";
    List.iter
      (fun table ->
        output_string oc (Table.to_markdown table);
        output_string oc "\n")
      tables;
    close_out oc;
    Printf.printf "wrote %s (%d experiments)\n" out (List.length tables)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Regenerate every experiment and write one markdown report.")
    Term.(const run $ quick_arg $ out_arg $ jobs_arg $ shards_arg)

(* ---- series ---- *)

let series_cmd =
  let sizes_arg =
    Arg.(
      value
      & opt (list int) [ 16; 32; 64; 128; 256 ]
      & info [ "sizes" ] ~docv:"N1,N2,…" ~doc:"Comma-separated processor counts.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc:"Write CSV here instead of stdout.")
  in
  let run topology sizes out =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      "topology,n,arrow_total,arrow_normalized,best_counting,counting_normalized,ratio\n";
    List.iter
      (fun n ->
        match build_topology topology n with
        | Error e ->
            prerr_endline e;
            exit 2
        | Ok g ->
            let n = Graph.n g in
            let requests = List.init n (fun i -> i) in
            let q = Run.queuing ~graph:g ~protocol:`Arrow ~requests () in
            let c = Run.best_counting ~graph:g ~requests () in
            Buffer.add_string buf
              (Printf.sprintf "%s,%d,%d,%d,%s,%d,%.3f\n" topology n
                 q.total_delay q.normalized_delay c.protocol c.normalized_delay
                 (float_of_int c.normalized_delay
                 /. float_of_int (max 1 q.normalized_delay))))
      sizes;
    match out with
    | None -> print_string (Buffer.contents buf)
    | Some path ->
        let oc = open_out path in
        Buffer.output_buffer oc buf;
        close_out oc;
        Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "series"
       ~doc:
         "Sweep n for one topology and emit a CSV series of queuing vs counting totals (for plotting).")
    Term.(const run $ topology_arg $ sizes_arg $ out_arg)

(* ---- faults ---- *)

let faults_cmd =
  let plan_arg =
    Arg.(
      value
      & opt string "drop-first"
      & info [ "plan"; "p" ] ~docv:"NAME"
          ~doc:"Named fault plan (see --list-plans).")
  in
  let list_plans_arg =
    Arg.(value & flag & info [ "list-plans" ] ~doc:"List the named fault plans and exit.")
  in
  let monitors_arg =
    Arg.(
      value & flag
      & info [ "monitors" ] ~doc:"Also print every run's monitor verdicts.")
  in
  let run topology n req_spec seed plan_name list_plans show_monitors jobs =
    if list_plans then
      List.iter
        (fun (name, plan) ->
          let crashes = Countq_simnet.Faults.crashes plan in
          Printf.printf "%-14s %s\n" name
            (if crashes = [] then "link faults only"
             else Printf.sprintf "%d crash(es)" (List.length crashes)))
        Countq_simnet.Faults.named
    else
      match Countq_simnet.Faults.find plan_name with
      | None ->
          Printf.eprintf "unknown fault plan %S; try --list-plans\n" plan_name;
          exit 2
      | Some plan -> (
          match build_topology topology n with
          | Error e ->
              prerr_endline e;
              exit 2
          | Ok graph -> (
              let n = Graph.n graph in
              match
                Countq.Scenario.requests ~seed:(Int64.of_int seed) ~n req_spec
              with
              | Error (`Msg m) ->
                  prerr_endline m;
                  exit 2
              | Ok requests ->
                  let k = List.length requests in
                  let pool = Parallel.pool ~jobs:(resolve_jobs jobs) in
                  let combos =
                    List.concat_map
                      (fun protocol ->
                        List.map (fun retry -> (protocol, retry))
                          [ false; true ])
                      [ `Arrow; `Central_queue; `Central_count ]
                  in
                  let summaries =
                    try
                      Parallel.pool_map pool ~chunk:1
                        (fun (protocol, retry) ->
                          Run.run_faulty ~pool ~retry ~graph ~protocol ~plan
                            ~requests ())
                        combos
                    with
                    | Countq_simnet.Engine.Round_limit_exceeded
                        { limit; outstanding; queued; held; busiest } ->
                        report_round_limit ~limit ~outstanding ~queued ~held
                          ~busiest;
                        exit 1
                  in
                  let rows =
                    List.map
                      (fun (s : Run.fault_summary) ->
                        [
                          s.protocol;
                          (if s.retry then "on" else "off");
                          Printf.sprintf "%d/%d" s.completed s.expected;
                          Table.cell_bool s.valid;
                          Table.cell_int s.rounds;
                          Table.cell_int s.extra_rounds;
                          Table.cell_int s.messages;
                          Table.cell_int s.extra_messages;
                          Table.cell_int s.injected.dropped;
                          Table.cell_int
                            (s.injected.duplicated + s.injected.delayed);
                          Table.cell_bool s.safe;
                          Table.cell_bool s.live;
                        ])
                      summaries
                  in
                  Table.print
                    (Table.make ~id:"faults"
                       ~title:
                         (Printf.sprintf
                            "degradation under plan %S on %s (n=%d, k=%d)"
                            plan_name topology n k)
                       ~paper_ref:"robustness extension (beyond the paper's reliable model)"
                       ~headers:
                         [ "protocol"; "retry"; "done"; "valid"; "rounds";
                           "+rounds"; "msgs"; "+msgs"; "drops"; "dup+delay";
                           "safe"; "live" ]
                       ~notes:
                         [
                           "+rounds/+msgs compare against the fault-free \
                            baseline on the same instance.";
                           "'safe' = no runtime safety monitor fired; 'live' \
                            = completed and never stalled.";
                         ]
                       rows);
                  if show_monitors then
                    List.iter
                      (fun (s : Run.fault_summary) ->
                        Format.printf "@.%s (retry %s):@.%a@." s.protocol
                          (if s.retry then "on" else "off")
                          Countq_simnet.Monitor.pp_report s.monitors)
                      summaries))
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Run the retrofitted protocols under a named fault plan, with and without the retransmit layer, and tabulate the degradation.")
    Term.(
      const run $ topology_arg $ n_arg $ requests_arg $ seed_arg $ plan_arg
      $ list_plans_arg $ monitors_arg $ jobs_arg)

(* ---- churn ---- *)

let churn_cmd =
  let module Dynamic = Countq_simnet.Dynamic in
  let adversary_arg =
    Arg.(
      value
      & opt string "flaps"
      & info [ "adversary"; "a" ] ~docv:"NAME"
          ~doc:
            "Topology adversary: flaps | churn | t-interval | rewire | \
             partition | tree-attack | identity.")
  in
  let rate_arg =
    Arg.(
      value
      & opt float 0.3
      & info [ "rate" ] ~docv:"P"
          ~doc:"Per-epoch down probability (flaps and churn only).")
  in
  let interval_arg =
    Arg.(
      value
      & opt int 4
      & info [ "interval"; "i" ] ~docv:"T"
          ~doc:
            "Window length in rounds: the epoch for flaps, churn and \
             tree-attack, the connectivity interval for t-interval, the \
             rewiring period for rewire, and the cut round for partition.")
  in
  let monitors_arg =
    Arg.(
      value & flag
      & info [ "monitors" ] ~doc:"Also print every run's monitor verdicts.")
  in
  let run topology n req_spec seed adversary rate interval quick show_monitors
      jobs =
    let n = if quick then min n 9 else n in
    match build_topology topology n with
    | Error e ->
        prerr_endline e;
        exit 2
    | Ok graph -> (
        let n = Graph.n graph in
        let tree = Spanning.best_for_arrow graph in
        let sched =
          let seed = Int64.of_int seed in
          match adversary with
          | "identity" -> Ok (Dynamic.identity graph)
          | "flaps" ->
              Ok (Dynamic.link_flaps ~seed ~rate ~epoch:interval graph)
          | "churn" ->
              Ok (Dynamic.node_churn ~seed ~rate ~epoch:interval graph)
          | "t-interval" -> Ok (Dynamic.t_interval ~seed ~t:interval graph)
          | "rewire" ->
              Ok (Dynamic.periodic_rewire ~seed ~period:interval graph)
          | "partition" ->
              Ok (Dynamic.partition ~at:interval ~island:[ n - 1 ] graph)
          | "tree-attack" ->
              Ok
                (Dynamic.tree_attack ~period:interval
                   ~tree:(Tree.to_graph tree) graph)
          | other ->
              Error
                (Printf.sprintf
                   "unknown adversary %S; try flaps, churn, t-interval, \
                    rewire, partition, tree-attack or identity"
                   other)
        in
        match sched with
        | Error e ->
            prerr_endline e;
            exit 2
        | Ok sched -> (
            match
              Countq.Scenario.requests ~seed:(Int64.of_int seed) ~n req_spec
            with
            | Error (`Msg m) ->
                prerr_endline m;
                exit 2
            | Ok requests ->
                let k = List.length requests in
                let pool = Parallel.pool ~jobs:(resolve_jobs jobs) in
                let protocols =
                  [ `Arrow_static; `Arrow_routed; `Dynamic_queue;
                    `Central_count ]
                in
                let summaries =
                  try
                    Parallel.pool_map pool ~chunk:1
                      (fun protocol ->
                        Run.run_churn ~pool ~tree ~graph ~protocol ~sched
                          ~requests ())
                      protocols
                  with
                  | Countq_simnet.Engine.Round_limit_exceeded
                      { limit; outstanding; queued; held; busiest } ->
                      report_round_limit ~limit ~outstanding ~queued ~held
                        ~busiest;
                      exit 1
                in
                let rows =
                  List.map
                    (fun (s : Run.churn_summary) ->
                      [
                        s.c_protocol;
                        Printf.sprintf "%d/%d" s.c_completed s.c_expected;
                        Table.cell_bool s.c_valid;
                        Table.cell_int s.c_rounds;
                        Table.cell_int s.c_extra_rounds;
                        Table.cell_int s.c_messages;
                        Table.cell_int s.c_extra_messages;
                        Table.cell_int s.topo.link_drops;
                        Table.cell_int s.topo.node_drops;
                        Table.cell_bool s.c_safe;
                        Table.cell_bool s.c_live;
                      ])
                    summaries
                in
                Table.print
                  (Table.make ~id:"churn"
                     ~title:
                       (Printf.sprintf
                          "degradation under schedule %s on %s (n=%d, k=%d)"
                          (Dynamic.label sched) topology n k)
                     ~paper_ref:
                       "dynamic-network extension (Sharma-Busch; \
                        Kuhn-Lynch-Oshman)"
                     ~headers:
                       [ "protocol"; "done"; "valid"; "rounds"; "+rounds";
                         "msgs"; "+msgs"; "link-drops"; "node-drops"; "safe";
                         "live" ]
                     ~notes:
                       [
                         "+rounds/+msgs compare against the identity-schedule \
                          baseline on the same instance.";
                         "arrow-static keeps the paper's protocol on its \
                          fixed spanning tree; arrow+route repairs routes \
                          around cuts; the dynamic queue needs no fixed \
                          structure.";
                       ]
                     rows);
                if show_monitors then
                  List.iter
                    (fun (s : Run.churn_summary) ->
                      Format.printf "@.%s:@.%a@." s.c_protocol
                        Countq_simnet.Monitor.pp_report s.c_monitors)
                    summaries))
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:
         "Run the queuing and counting portfolio under an adversarial \
          dynamic-topology schedule and tabulate the degradation against \
          the static baseline.")
    Term.(
      const run $ topology_arg $ n_arg $ requests_arg $ seed_arg
      $ adversary_arg $ rate_arg $ interval_arg $ quick_arg $ monitors_arg
      $ jobs_arg)

(* ---- observe ---- *)

let observe_cmd =
  let protocol_arg =
    let protocols =
      [
        ("arrow", `Arrow);
        ("arrow+notify", `Arrow_notify);
        ("central-queue", `Central_queue);
        ("central-count", `Central_count);
        ("sweep", `Sweep);
      ]
    in
    Arg.(
      value
      & opt_all (enum protocols) []
      & info [ "protocol"; "P" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf
               "Protocol to observe: one of %s. Repeatable - several \
                protocols run on the same instance (in parallel under \
                --jobs) and print one section each. Default: arrow."
               (String.concat ", " (List.map fst protocols))))
  in
  let plan_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan"; "p" ] ~docv:"NAME"
          ~doc:"Also inject a named fault plan (see 'countq faults --list-plans').")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the run as JSONL: one meta line, one span object per \
             operation, then per-node and per-edge counters.")
  in
  let spans_arg =
    Arg.(
      value & opt int 10
      & info [ "spans" ] ~docv:"K"
          ~doc:"Print the K slowest operation spans (0 = none).")
  in
  let run topology n req_spec seed quick protocols plan_name json_path k_spans
      jobs =
    let n = if quick then min n 32 else n in
    let protocols = if protocols = [] then [ `Arrow ] else protocols in
    let plan =
      match plan_name with
      | None -> Ok None
      | Some name -> (
          match Countq_simnet.Faults.find name with
          | Some p -> Ok (Some p)
          | None -> Error (Printf.sprintf "unknown fault plan %S; try 'countq faults --list-plans'" name))
    in
    match (build_topology topology n, plan) with
    | Error e, _ | _, Error e ->
        prerr_endline e;
        exit 2
    | Ok graph, Ok plan -> (
        let n = Graph.n graph in
        match
          Countq.Scenario.requests ~seed:(Int64.of_int seed) ~n req_spec
        with
        | Error (`Msg m) ->
            prerr_endline m;
            exit 2
        | Ok requests -> (
            let pool = Parallel.pool ~jobs:(resolve_jobs jobs) in
            match
              Run.observe_many ~pool ?plan ~graph ~protocols ~requests ()
            with
            | exception Countq_simnet.Engine.Round_limit_exceeded
                { limit; outstanding; queued; held; busiest } ->
                report_round_limit ~limit ~outstanding ~queued ~held ~busiest;
                exit 1
            | observations ->
                let module Metrics = Countq_simnet.Metrics in
                let module Span = Countq_simnet.Span in
                let module Stats = Countq_util.Stats in
                let k = List.length requests in
                let print_one (o : Run.observation) =
                Printf.printf "%s on %s (n=%d, k=%d%s)\n" o.o_protocol topology
                  n k
                  (match plan_name with
                  | Some p -> Printf.sprintf ", plan %s" p
                  | None -> "");
                Printf.printf
                  "completed %d/%d, valid %b, rounds %d, messages %d, total \
                   delay %d (expansion %d)\n"
                  o.completed k o.o_valid o.o_rounds o.o_messages
                  o.o_total_delay o.o_expansion;
                Option.iter
                  (fun (s : Countq_simnet.Faults.stats) ->
                    Printf.printf
                      "injected: %d dropped, %d duplicated, %d delayed, %d \
                       crash-dropped (of %d transmissions)\n"
                      s.dropped s.duplicated s.delayed s.crash_dropped
                      s.transmissions)
                  o.o_injected;
                print_newline ();
                print_string (Metrics.render_heatmap o.metrics);
                let pp_pairs fmt_one pairs =
                  String.concat ", " (List.map fmt_one pairs)
                in
                Printf.printf "\nhottest nodes: %s\n"
                  (pp_pairs
                     (fun (v, t) -> Printf.sprintf "%d (%d)" v t)
                     (Metrics.hottest_nodes o.metrics));
                Printf.printf "hottest edges: %s\n"
                  (pp_pairs
                     (fun ((s, d), t) -> Printf.sprintf "%d->%d (%d)" s d t)
                     (Metrics.hottest_edges o.metrics));
                let delays = List.filter_map Span.delay o.spans in
                let incomplete =
                  List.length o.spans - List.length delays
                in
                (* Stats is total on empty input (percentiles return
                   [None], [histogram] returns no buckets), so a run
                   where every span is stranded (e.g. a crash plan that
                   severs the tail) degrades to the stranded report
                   below instead of an exception. *)
                (match Stats.percentile_ints delays 0.5 with
                | None -> ()
                | Some p50 ->
                    let p q =
                      Option.value (Stats.percentile_ints delays q)
                        ~default:nan
                    in
                    Printf.printf
                      "\nper-op delay: p50 %.1f  p90 %.1f  p95 %.1f  p99 \
                       %.1f  max %d rounds\n"
                      p50 (p 0.9) (p 0.95) (p 0.99)
                      (List.fold_left max 0 delays);
                    print_string
                      (Stats.render_histogram (Stats.histogram delays));
                    let sum = List.fold_left ( + ) 0 delays in
                    Printf.printf
                      "span delay sum %d vs engine total delay %d (%s)\n" sum
                      o.o_total_delay
                      (if sum = o.o_total_delay then "consistent"
                       else "MISMATCH"));
                if incomplete > 0 then
                  Printf.printf
                    "%d operation(s) stranded (injected, never completed)\n"
                    incomplete;
                if k_spans > 0 && o.spans <> [] then begin
                  let slowest =
                    List.stable_sort
                      (fun a b ->
                        compare
                          (Option.value (Span.delay b) ~default:max_int)
                          (Option.value (Span.delay a) ~default:max_int))
                      o.spans
                  in
                  Printf.printf "\nslowest %d span(s):\n"
                    (min k_spans (List.length slowest));
                  List.iteri
                    (fun i s ->
                      if i < k_spans then
                        Format.printf "  %a@." Span.pp s)
                    slowest
                end
                in
                List.iteri
                  (fun i o ->
                    if i > 0 then print_newline ();
                    print_one o)
                  observations;
                Option.iter
                  (fun path ->
                    let module J = Countq_util.Json in
                    let oc = open_out path in
                    List.iter
                      (fun (o : Run.observation) ->
                        let meta =
                          J.Obj
                            [
                              ("type", J.Str "meta");
                              ("schema", J.Str "countq-observe/1");
                              ("protocol", J.Str o.o_protocol);
                              ("topology", J.Str topology);
                              ("n", J.Int n);
                              ("k", J.Int k);
                              ( "plan",
                                match plan_name with
                                | Some p -> J.Str p
                                | None -> J.Null );
                              ("rounds", J.Int o.o_rounds);
                              ("messages", J.Int o.o_messages);
                              ("total_delay", J.Int o.o_total_delay);
                              ("expansion", J.Int o.o_expansion);
                              ("completed", J.Int o.completed);
                              ("valid", J.Bool o.o_valid);
                            ]
                        in
                        output_string oc (J.to_string meta);
                        output_char oc '\n';
                        output_string oc (Span.to_jsonl o.spans);
                        output_string oc (Metrics.to_jsonl o.metrics))
                      observations;
                    close_out oc;
                    Printf.printf "\nwrote %s\n" path)
                  json_path))
  in
  Cmd.v
    (Cmd.info "observe"
       ~doc:
         "Run one protocol with full observability: per-node/per-edge \
          metrics, a congestion heatmap, per-operation delay percentiles and \
          causal spans, optionally exported as JSONL.")
    Term.(
      const run $ topology_arg $ n_arg $ requests_arg $ seed_arg $ quick_arg
      $ protocol_arg $ plan_arg $ json_arg $ spans_arg $ jobs_arg)

(* ---- load ---- *)

let load_cmd =
  let module Load = Countq.Load in
  let module Implicit = Countq_topology.Implicit in
  let topo_arg =
    Arg.(
      value
      & opt string "list:4096"
      & info [ "topology"; "t" ] ~docv:"SPEC"
          ~doc:
            "Implicit topology spec, family:size - list:N, ring:N, mesh:N or \
             mesh:AxB, torus:N or torus:AxB, tree:N or tree:ARITYxN. Sizes up \
             to a million nodes are fine; the graph is never materialised.")
  in
  let workload_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("both", `Both); ("queuing", `Queuing);
               ("counting", `Counting); ("funnel", `Funnel) ])
          `Both
      & info [ "workload"; "w" ] ~docv:"W"
          ~doc:
            "Workload to drive: both | queuing | counting | funnel (the \
             combining funnel; needs a tree:… topology).")
  in
  let rates_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "rates" ] ~docv:"R,R,…"
          ~doc:
            "Offered rates to sweep, in operations per round over the whole \
             network (default 0.1,0.25,0.5,0.75,1,1.5,2; --quick 0.25,1).")
  in
  let arrival_arg =
    Arg.(
      value
      & opt (enum [ ("poisson", `Poisson); ("bursty", `Bursty); ("diurnal", `Diurnal) ]) `Poisson
      & info [ "arrival" ] ~docv:"A"
          ~doc:
            "Arrival process: poisson | bursty (4-round bursts every 16) | \
             diurnal (sinusoidal, period 64). All share the given mean rate.")
  in
  let horizon_arg =
    Arg.(
      value & opt int 2048
      & info [ "horizon" ] ~docv:"T"
          ~doc:
            "Arrival window in rounds; the run drains for another T rounds \
             before it is cut off (--quick caps T at 256).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write per-operation spans as JSONL: one meta line per \
             (workload, rate) run, then one span per operation (under \
             $(b,--streaming), only the reservoir's exemplar spans).")
  in
  let streaming_arg =
    Arg.(
      value & flag
      & info [ "streaming" ]
          ~doc:
            "Constant-memory mode for long horizons: fold delays into a \
             quantile sketch and spans into a bounded reservoir instead of \
             retaining every operation. Percentiles become estimates \
             (relative error under 1%) once a run exceeds the sketch's \
             exact window.")
  in
  let parse_rates s =
    try
      let rates =
        List.map
          (fun tok ->
            let r = float_of_string (String.trim tok) in
            if r <= 0. || not (Float.is_finite r) then failwith "rate";
            r)
          (String.split_on_char ',' s)
      in
      if rates = [] then Error "empty rate list" else Ok rates
    with _ -> Error (Printf.sprintf "bad --rates %S (want comma-separated positive numbers)" s)
  in
  let run topo_spec workload rates_spec arrival_kind horizon quick seed
      json_path streaming shards =
    let shards = resolve_shards shards in
    let horizon = if quick then min horizon 256 else horizon in
    let rates =
      match rates_spec with
      | Some s -> parse_rates s
      | None -> Ok (if quick then [ 0.25; 1.0 ] else [ 0.1; 0.25; 0.5; 0.75; 1.0; 1.5; 2.0 ])
    in
    match (Implicit.parse topo_spec, rates) with
    | Error (`Msg m), _ | _, Error m ->
        prerr_endline m;
        exit 2
    | Ok topo, Ok rates -> (
        let arrival_of rate =
          match arrival_kind with
          | `Poisson -> Load.Poisson rate
          | `Bursty -> Load.Bursty { rate; on = 4; off = 12 }
          | `Diurnal -> Load.Diurnal { rate; period = 64 }
        in
        let workloads =
          match workload with
          | `Both -> [ Load.Queuing; Load.Counting ]
          | `Queuing -> [ Load.Queuing ]
          | `Counting -> [ Load.Counting ]
          | `Funnel -> [ Load.Funnel ]
        in
        (if List.mem Load.Funnel workloads
            && Implicit.tree_arity topo = None then begin
           Printf.eprintf
             "the funnel workload combines along tree edges - pass a \
              tree:… topology (got %s)\n"
             (Implicit.label topo);
           exit 2
         end);
        let keep_spans = json_path <> None && not streaming in
        match
          List.concat_map
            (fun w ->
              List.map
                (fun rate ->
                  Load.run ~seed:(Int64.of_int seed) ~keep_spans
                    ~streaming ~shards ~topo ~workload:w
                    ~arrival:(arrival_of rate) ~horizon ())
                rates)
            workloads
        with
        | exception Countq_simnet.Engine.Round_limit_exceeded
            { limit; outstanding; queued; held; busiest } ->
            report_round_limit ~limit ~outstanding ~queued ~held ~busiest;
            exit 1
        | summaries ->
            let rows =
              List.map
                (fun (s : Load.summary) ->
                  [
                    s.workload;
                    s.arrival;
                    Table.cell_float ~decimals:3 s.offered;
                    Table.cell_int s.injected;
                    Table.cell_int s.completed;
                    Table.cell_int s.unfinished;
                    Table.cell_float ~decimals:3 s.throughput;
                    Table.cell_float ~decimals:1 s.p50;
                    Table.cell_float ~decimals:1 s.p95;
                    Table.cell_float ~decimals:1 s.p99;
                    Table.cell_int s.max_delay;
                    Table.cell_int s.max_backlog;
                    Table.cell_int s.peak_in_flight;
                    Table.cell_int s.touched;
                    Table.cell_bool s.saturated;
                  ])
                summaries
            in
            let table =
              Table.make ~id:"LOAD"
                ~title:
                  (Printf.sprintf
                     "latency vs offered load on %s (horizon %d)"
                     (Implicit.label topo) horizon)
                ~paper_ref:"open-loop view of the counting/queuing separation"
                ~headers:
                  [
                    "workload"; "arrival"; "offered"; "injected"; "done";
                    "stranded"; "thr"; "p50"; "p95"; "p99"; "max"; "backlog";
                    "in-flight"; "touched"; "saturated";
                  ]
                ~notes:
                  ([
                     "delay percentiles in rounds over completed operations";
                     "stranded = injected but never completed within the \
                      drain window; saturated = stranded > 5% of injected";
                   ]
                  @
                  if streaming then
                    [
                      "streaming: percentiles from a constant-memory \
                       quantile sketch (exact below 1024 completions, then \
                       relative error < 1%)";
                    ]
                  else [])
                rows
            in
            Table.print table;
            Option.iter
              (fun path ->
                let module J = Countq_util.Json in
                let module Span = Countq_simnet.Span in
                let oc = open_out path in
                List.iter
                  (fun (s : Load.summary) ->
                    let meta =
                      J.Obj
                        [
                          ("type", J.Str "meta");
                          ("schema", J.Str "countq-load/1");
                          ("workload", J.Str s.workload);
                          ("topology", J.Str s.topology);
                          ("arrival", J.Str s.arrival);
                          ("horizon", J.Int s.horizon);
                          ("injected", J.Int s.injected);
                          ("completed", J.Int s.completed);
                          ("stranded", J.Int s.unfinished);
                          ("sketched", J.Bool s.sketched);
                          ("throughput", J.Float s.throughput);
                          ("p50", J.Float s.p50);
                          ("p95", J.Float s.p95);
                          ("p99", J.Float s.p99);
                          ("max_backlog", J.Int s.max_backlog);
                          ("saturated", J.Bool s.saturated);
                        ]
                    in
                    output_string oc (J.to_string meta);
                    output_char oc '\n';
                    if streaming then
                      (* the reservoir's picks, tagged so a reader can
                         tell exemplars from a full span table *)
                      List.iter
                        (fun (tag, sp) ->
                          match
                            J.of_string (Span.to_jsonl [ sp ] |> String.trim)
                          with
                          | Ok (J.Obj fields) ->
                              output_string oc
                                (J.to_string
                                   (J.Obj (("tag", J.Str tag) :: fields)));
                              output_char oc '\n'
                          | _ -> ())
                        s.exemplars
                    else output_string oc (Span.to_jsonl s.spans))
                  summaries;
                close_out oc;
                Printf.printf "wrote %s\n" path)
              json_path)
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Open-loop traffic on the event-driven engine: sweep offered load \
          and report per-operation delay percentiles, throughput and \
          backpressure for queuing vs counting - the separation as a \
          saturation curve.")
    Term.(
      const run $ topo_arg $ workload_arg $ rates_arg $ arrival_arg
      $ horizon_arg $ quick_arg $ seed_arg $ json_arg $ streaming_arg
      $ shards_arg)

(* ---- timeline ---- *)

let timeline_cmd =
  let module Load = Countq.Load in
  let module Implicit = Countq_topology.Implicit in
  let module Telemetry = Countq_simnet.Telemetry in
  let module J = Countq_util.Json in
  let topo_arg =
    Arg.(
      value
      & opt string "torus:32x32"
      & info [ "topology"; "t" ] ~docv:"SPEC"
          ~doc:"Implicit topology spec (family:size, as in $(b,countq load)).")
  in
  let workload_arg =
    Arg.(
      value
      & opt (enum [ ("queuing", `Queuing); ("counting", `Counting) ]) `Queuing
      & info [ "workload"; "w" ] ~docv:"W" ~doc:"Workload: queuing | counting.")
  in
  let rate_arg =
    Arg.(
      value & opt float 1.0
      & info [ "rate" ] ~docv:"R"
          ~doc:"Poisson arrival rate, operations per round network-wide.")
  in
  let horizon_arg =
    Arg.(
      value & opt int 2048
      & info [ "horizon" ] ~docv:"T"
          ~doc:"Arrival window in rounds (the run drains for T more).")
  in
  let windows_arg =
    Arg.(
      value & opt int 64
      & info [ "windows" ] ~docv:"K"
          ~doc:"Number of time windows the run is folded into.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the windowed series as JSONL (countq-timeline/1: one meta \
             line, then one window object per line).")
  in
  let run topo_spec workload rate horizon windows quick seed json_path =
    let horizon = if quick then min horizon 256 else horizon in
    if horizon < 1 || windows < 1 || rate <= 0. then begin
      prerr_endline "timeline: need horizon >= 1, windows >= 1, rate > 0";
      exit 2
    end;
    match Implicit.parse topo_spec with
    | Error (`Msg m) ->
        prerr_endline m;
        exit 2
    | Ok topo -> (
        let span = 2 * horizon in
        let window_size = max 1 ((span + windows - 1) / windows) in
        let tl = Telemetry.create ~windows ~window_size () in
        let w =
          match workload with `Queuing -> Load.Queuing | `Counting -> Load.Counting
        in
        match
          Load.run ~seed:(Int64.of_int seed) ~streaming:true ~telemetry:tl
            ~topo ~workload:w ~arrival:(Load.Poisson rate) ~horizon ()
        with
        | exception Countq_simnet.Engine.Round_limit_exceeded
            { limit; outstanding; queued; held; busiest } ->
            report_round_limit ~limit ~outstanding ~queued ~held ~busiest;
            exit 1
        | s ->
            let ws = Telemetry.windows tl in
            Printf.printf
              "%s on %s: rate %g for %d rounds (drain %d more), %d injected, \
               %d completed, %d stranded%s\n"
              s.workload s.topology rate horizon horizon s.injected s.completed
              s.unfinished
              (if s.saturated then " [saturated]" else "");
            Printf.printf
              "p50 %.1f  p95 %.1f  p99 %.1f  max %d rounds%s; peak backlog \
               %d, peak in-flight %d\n\n" s.p50 s.p95 s.p99 s.max_delay
              (if s.sketched then " (sketched)" else "")
              s.max_backlog s.peak_in_flight;
            let series name f =
              let v = Array.of_list (List.map f ws) in
              if Array.exists (fun x -> x > 0.) v then
                Printf.printf "%13s %s  (peak %g)\n" name
                  (Telemetry.sparkline v)
                  (Array.fold_left max 0. v)
            in
            Printf.printf "%d windows of %d rounds (%d evicted):\n"
              (List.length ws) window_size (Telemetry.evicted tl);
            series "injections" (fun w -> float_of_int w.Telemetry.injections);
            series "completions" (fun w -> float_of_int w.Telemetry.completions);
            series "sends" (fun w -> float_of_int w.Telemetry.sends);
            series "deliveries" (fun w -> float_of_int w.Telemetry.deliveries);
            series "drops" (fun w -> float_of_int w.Telemetry.drops);
            series "retransmits" (fun w -> float_of_int w.Telemetry.retransmits);
            series "max backlog" (fun w -> float_of_int w.Telemetry.max_backlog);
            series "max in-flight" (fun w ->
                float_of_int w.Telemetry.max_in_flight);
            if s.exemplars <> [] then begin
              Printf.printf "\nexemplar spans:\n";
              List.iter
                (fun (tag, (sp : Countq_simnet.Span.t)) ->
                  Printf.printf "  %-8s op %d injected @%d%s\n" tag sp.op
                    sp.inject_round
                    (match sp.completion_round with
                    | Some r -> Printf.sprintf " completed @%d (delay %d)" r
                                  (r - sp.inject_round)
                    | None -> " stranded"))
                s.exemplars
            end;
            Option.iter
              (fun path ->
                let oc = open_out path in
                let meta =
                  J.Obj
                    [
                      ("type", J.Str "meta");
                      ("schema", J.Str "countq-timeline/1");
                      ("workload", J.Str s.workload);
                      ("topology", J.Str s.topology);
                      ("arrival", J.Str s.arrival);
                      ("horizon", J.Int s.horizon);
                      ("window_size", J.Int window_size);
                      ("windows", J.Int (List.length ws));
                      ("evicted", J.Int (Telemetry.evicted tl));
                      ("injected", J.Int s.injected);
                      ("completed", J.Int s.completed);
                      ("stranded", J.Int s.unfinished);
                      ("sketched", J.Bool s.sketched);
                    ]
                in
                output_string oc (J.to_string meta);
                output_char oc '\n';
                output_string oc (Telemetry.to_jsonl tl);
                close_out oc;
                Printf.printf "\nwrote %s\n" path)
              json_path)
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:
         "Run an open-loop workload with windowed telemetry attached and \
          render each series as a terminal sparkline - when the backlog \
          built, when throughput pinned, when the drain emptied.")
    Term.(
      const run $ topo_arg $ workload_arg $ rate_arg $ horizon_arg
      $ windows_arg $ quick_arg $ seed_arg $ json_arg)

(* ---- bench diff ---- *)

let bench_cmd =
  let module J = Countq_util.Json in
  let old_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD" ~doc:"Baseline bench snapshot (BENCH_*.json).")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"Candidate bench snapshot to compare.")
  in
  let threshold_arg =
    Arg.(
      value & opt float 25.0
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:
            "Regression threshold in percent: a probe slower (or a speedup \
             smaller) by more than this is flagged.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Exit 1 if any probe regresses past the threshold (CI gate).")
  in
  let kernels_arg =
    Arg.(
      value & flag
      & info [ "kernels-only" ]
          ~doc:
            "Compare only the Bechamel kernel probes (ns/run). These are \
             per-operation microbenchmarks, far less noisy than the \
             wall-clock probes, so they can carry a strict gate at a tight \
             threshold where the end-to-end timings cannot.")
  in
  let load path =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    match J.of_string s with
    | Error e ->
        prerr_endline (path ^ ": " ^ e);
        exit 2
    | Ok j -> j
  in
  let run old_path new_path threshold strict kernels_only =
    let module D = Countq.Bench_diff in
    let old_j = load old_path and new_j = load new_path in
    let schema j =
      Option.bind (J.member "schema" j) J.to_str |> Option.value ~default:"?"
    in
    if schema old_j <> schema new_j then
      Printf.printf "note: comparing %s against %s\n" (schema old_j)
        (schema new_j);
    let report =
      D.compare ~threshold
        (D.probes_of ~kernels_only old_j)
        (D.probes_of ~kernels_only new_j)
    in
    let rows =
      List.filter_map
        (fun (r : D.row) ->
          let line verdict =
            Some
              [
                r.probe;
                Printf.sprintf "%.4g" r.old_value;
                (match r.new_value with
                | Some v -> Printf.sprintf "%.4g" v
                | None -> "-");
                (match D.ratio_of r.verdict with
                | Some ratio -> Printf.sprintf "%.2fx" ratio
                | None -> "-");
                verdict;
              ]
          in
          match r.verdict with
          | D.Regressed _ -> line "REGRESSED"
          | D.Improved _ -> line "improved"
          | D.Unusable why -> line ("UNUSABLE (" ^ why ^ ")")
          | D.Within _ | D.Missing -> None)
        report.rows
    in
    if rows = [] then
      Printf.printf "bench diff: %d probes compared, all within %.0f%% of %s\n"
        report.compared threshold old_path
    else begin
      let table =
        Table.make ~id:"BENCHDIFF"
          ~title:
            (Printf.sprintf "bench probes moving more than %.0f%% (%d compared)"
               threshold report.compared)
          ~paper_ref:"perf-regression gate"
          ~headers:[ "probe"; "old"; "new"; "ratio"; "verdict" ]
          ~notes:
            [
              "ratio is new/old for timings and old/new for speedups, so > 1 \
               is always worse";
              "UNUSABLE means a zero/negative/NaN value - no ratio exists, \
               and a strict gate fails rather than skipping the probe";
              "wall-clock probes are noisy across machines - treat the gate \
               as a prompt to rerun, not a verdict";
            ]
          rows
      in
      Table.print table
    end;
    if report.missing > 0 then
      Printf.printf "note: %d probe(s) in %s have no counterpart in %s\n"
        report.missing old_path new_path;
    if strict && D.gate_failures report > 0 then begin
      if report.regressions > 0 then
        Printf.printf "%d probe(s) regressed past %.0f%% - failing (--strict)\n"
          report.regressions threshold;
      if report.unusable > 0 then
        Printf.printf
          "%d probe(s) had an unusable baseline or candidate value - failing \
           (--strict)\n"
          report.unusable;
      exit 1
    end
  in
  let diff_cmd =
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Compare two bench snapshots probe by probe and flag regressions \
            past a threshold; with $(b,--strict), exit non-zero on any - the \
            CI perf gate.")
      Term.(
        const run $ old_arg $ new_arg $ threshold_arg $ strict_arg
        $ kernels_arg)
  in
  Cmd.group
    (Cmd.info "bench"
       ~doc:"Operations on bench snapshots (see $(b,countq bench diff).)")
    [ diff_cmd ]

(* ---- trace ---- *)

let trace_cmd =
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the event log as JSONL (one event per line).")
  in
  let run topology n seed json_path =
    match build_topology topology (min n 24) with
    | Error e ->
        prerr_endline e;
        exit 2
    | Ok g ->
        let n = Graph.n g in
        let tree = Spanning.best_for_arrow g in
        let rng = Rng.create (Int64.of_int seed) in
        let k = max 1 (n / 3) in
        let requests = Rng.sample rng ~k ~n in
        let result, events =
          Countq_arrow.Protocol.run_one_shot_traced ~tree ~requests ()
        in
        Printf.printf
          "arrow protocol on %s (n=%d), requests {%s}, tail at node %d\n\n"
          topology n
          (String.concat "," (List.map string_of_int requests))
          (Tree.root tree);
        print_string (Countq_simnet.Trace.render ~n events);
        Printf.printf "\nlegend: s=queued send, R=received, +=both, *=completed\n";
        (match result.order with
        | Ok ops ->
            Printf.printf "total order: %s\n"
              (String.concat " -> "
                 (List.map
                    (fun (o : Countq_arrow.Types.op) -> string_of_int o.origin)
                    ops))
        | Error e ->
            Format.printf "INVALID ORDER: %a@." Countq_arrow.Order.pp_error e);
        Printf.printf "total delay %d, %d messages\n" result.total_delay
          result.messages;
        Option.iter
          (fun path ->
            let oc = open_out path in
            output_string oc (Countq_simnet.Trace.to_jsonl events);
            close_out oc;
            Printf.printf "wrote %s (%d events)\n" path (List.length events))
          json_path
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Trace a small arrow execution as an ASCII timeline (n capped at 24).")
    Term.(const run $ topology_arg $ n_arg $ seed_arg $ json_arg)

let () =
  let doc = "Concurrent counting is harder than queuing - reproduction CLI" in
  let info = Cmd.info "countq" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; all_cmd; experiments_cmd; cache_cmd;
            compare_cmd; topo_cmd; trace_cmd; series_cmd; report_cmd;
            verify_cmd; check_cmd; faults_cmd; churn_cmd; observe_cmd;
            load_cmd; timeline_cmd; bench_cmd ]))
