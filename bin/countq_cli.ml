(* countq: command-line driver for the reproduction.

   Subcommands:
     list                     -- list the experiments
     run <id> [--quick] [--csv FILE]
     all [--quick]
     compare -t T -n N [-r PATTERN] [--seed S]
     topo -t T -n N
     trace -t T -n N          -- ASCII timeline of one arrow run
     series -t T --sizes N,…  -- CSV sweep of queuing vs counting
     verify -t T -n N         -- exhaustive schedule check (tiny n)
     report [-o FILE] [-j N]  -- regenerate the full markdown report
     faults -t T -n N -p PLAN -- degradation under an injected fault plan
*)

open Cmdliner

module Gen = Countq_topology.Gen
module Graph = Countq_topology.Graph
module Bfs = Countq_topology.Bfs
module Tree = Countq_topology.Tree
module Spanning = Countq_topology.Spanning
module Rng = Countq_util.Rng
module Experiments = Countq.Experiments
module Table = Countq.Table
module Run = Countq.Run

(* ---- shared arguments (parsed by Countq.Scenario) ---- *)

let build_topology name n =
  match Countq.Scenario.topology (Printf.sprintf "%s:%d" name n) with
  | Ok (_, g) -> Ok g
  | Error (`Msg m) -> Error m

let topology_arg =
  let doc =
    Printf.sprintf "Topology family: one of %s."
      (String.concat ", " Countq.Scenario.known_topologies)
  in
  Arg.(value & opt string "mesh" & info [ "topology"; "t" ] ~docv:"NAME" ~doc)

let n_arg =
  Arg.(value & opt int 64 & info [ "n" ] ~docv:"N" ~doc:"Number of processors (rounded to the family's nearest realisable size).")

let requests_arg =
  Arg.(
    value
    & opt string "all"
    & info [ "requests"; "r" ] ~docv:"PATTERN"
        ~doc:"Request pattern: all | half | k:K | density:D | nodes:v,v,…")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Shrink the parameter sweeps.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun (s : Experiments.spec) ->
        Printf.printf "%-4s %-45s (%s)\n" s.id s.title s.paper_ref)
      Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the paper-reproduction experiments.")
    Term.(const run $ const ())

(* ---- run ---- *)

let run_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id (e.g. E9).")
  in
  let csv_arg =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the table as CSV.")
  in
  let run id quick csv =
    match Experiments.find id with
    | None ->
        Printf.eprintf "unknown experiment %S; try 'countq list'\n" id;
        exit 2
    | Some spec ->
        let table = spec.run ~quick () in
        Table.print table;
        Option.iter
          (fun path ->
            let oc = open_out path in
            output_string oc (Table.to_csv table);
            close_out oc;
            Printf.printf "wrote %s\n" path)
          csv
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one experiment and print its table.")
    Term.(const run $ id_arg $ quick_arg $ csv_arg)

(* ---- all ---- *)

let all_cmd =
  let run quick =
    List.iter
      (fun (s : Experiments.spec) -> Table.print (s.run ~quick ()))
      Experiments.all
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment.")
    Term.(const run $ quick_arg)

(* ---- compare ---- *)

let compare_cmd =
  let run topology n req_spec seed =
    match build_topology topology n with
    | Error e ->
        prerr_endline e;
        exit 2
    | Ok graph -> (
        let n = Graph.n graph in
        match
          Countq.Scenario.requests ~seed:(Int64.of_int seed) ~n req_spec
        with
        | Error (`Msg m) ->
            prerr_endline m;
            exit 2
        | Ok requests ->
            let k = List.length requests in
            let rows =
              List.map
                (fun (s : Run.summary) ->
                  [
                    s.protocol;
                    Table.cell_int s.total_delay;
                    Table.cell_int s.normalized_delay;
                    Table.cell_int s.max_delay;
                    Table.cell_int s.rounds;
                    Table.cell_int s.messages;
                    Table.cell_int s.expansion;
                    Table.cell_bool s.valid;
                  ])
                (List.map
                   (fun protocol -> Run.queuing ~graph ~protocol ~requests ())
                   [ `Arrow; `Arrow_notify; `Central; `Token_ring ]
                @ List.map
                    (fun protocol -> Run.counting ~graph ~protocol ~requests ())
                    [ `Central; `Combining; `Network; `Sweep ])
            in
            Table.print
              (Table.make ~id:"compare"
                 ~title:
                   (Printf.sprintf "all protocols on %s (n=%d, k=%d)" topology
                      n k)
                 ~paper_ref:"ad-hoc comparison"
                 ~headers:
                   [ "protocol"; "total"; "normalised"; "max"; "rounds"; "messages"; "expansion"; "valid" ]
                 rows))
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run every protocol on one instance and tabulate.")
    Term.(const run $ topology_arg $ n_arg $ requests_arg $ seed_arg)

(* ---- topo ---- *)

let topo_cmd =
  let run topology n =
    match build_topology topology n with
    | Error e ->
        prerr_endline e;
        exit 2
    | Ok g ->
        let tree = Spanning.best_for_arrow g in
        Printf.printf "topology    %s\n" topology;
        Printf.printf "n           %d\n" (Graph.n g);
        Printf.printf "m           %d\n" (Graph.m g);
        Printf.printf "max degree  %d\n" (Graph.max_degree g);
        Printf.printf "diameter    %d\n" (Bfs.diameter g);
        Printf.printf "arrow tree  degree %d, height %d\n"
          (Tree.max_degree tree) (Tree.height tree);
        Printf.printf "counting lower bound (Thm 3.5)  %d\n"
          (Countq_bounds.Lower.contention_lb (Graph.n g));
        Printf.printf "counting lower bound (Thm 3.6)  %d\n"
          (Countq_bounds.Lower.diameter_lb ~diameter:(Bfs.diameter g))
  in
  Cmd.v (Cmd.info "topo" ~doc:"Describe a topology and its bounds.")
    Term.(const run $ topology_arg $ n_arg)

(* ---- verify ---- *)

let verify_cmd =
  let run topology n req_spec seed =
    let n = min n 6 in
    match build_topology topology n with
    | Error e ->
        prerr_endline e;
        exit 2
    | Ok g -> (
        let nv = Graph.n g in
        if nv > 8 then begin
          prerr_endline
            "verify: instance too large for exhaustive exploration (max 8 nodes)";
          exit 2
        end;
        match
          Countq.Scenario.requests ~seed:(Int64.of_int seed) ~n:nv req_spec
        with
        | Error (`Msg m) ->
            prerr_endline m;
            exit 2
        | Ok requests -> (
            let tree = Spanning.best_for_arrow g in
            let protocol =
              Countq_arrow.Protocol.one_shot_protocol ~tree ~requests ()
            in
            let check completions =
              let outcomes =
                List.map
                  (fun (c : _ Countq_simnet.Engine.completion) ->
                    let op, pred = c.value in
                    {
                      Countq_arrow.Types.op;
                      pred;
                      found_at = c.node;
                      round = c.round;
                    })
                  completions
              in
              if List.length outcomes <> List.length requests then
                Error "wrong completion count"
              else
                match Countq_arrow.Order.chain outcomes with
                | Ok _ -> Ok ()
                | Error e ->
                    Error (Format.asprintf "%a" Countq_arrow.Order.pp_error e)
            in
            match
              Countq_simnet.Explore.run ~graph:(Tree.to_graph tree) ~protocol
                ~check ()
            with
            | stats ->
                Printf.printf
                  "arrow on %s (n=%d), requests {%s}:\n\
                   ALL SCHEDULES SAFE - %d configurations explored, %d quiescent\n\
                   outcomes checked, every one a single valid total order.\n"
                  topology nv
                  (String.concat "," (List.map string_of_int requests))
                  stats.explored stats.terminal
            | exception Countq_simnet.Explore.Violation m ->
                Printf.printf "VIOLATION FOUND: %s\n" m;
                exit 1))
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Exhaustively model-check arrow safety on a tiny instance (every schedule; n is capped).")
    Term.(const run $ topology_arg $ n_arg $ requests_arg $ seed_arg)

(* ---- report ---- *)

let report_cmd =
  let out_arg =
    Arg.(
      value
      & opt string "report.md"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output markdown file.")
  in
  let jobs_arg =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Regenerate tables on N domains.")
  in
  let run quick out jobs =
    if jobs < 1 then begin
      prerr_endline "--jobs must be positive";
      exit 2
    end;
    let tables =
      Countq_util.Parallel.map ~jobs
        (fun (s : Experiments.spec) -> s.run ~quick ())
        Experiments.all
    in
    let oc = open_out out in
    output_string oc "# countq — measured results\n\n";
    output_string oc
      "Regenerated from the committed seeds by `countq report`. E1–E13\n\
       reproduce the paper's claims; E14+ are ablations and extensions.\n\
       See EXPERIMENTS.md for the reading guide.\n\n";
    List.iter
      (fun table ->
        output_string oc (Table.to_markdown table);
        output_string oc "\n")
      tables;
    close_out oc;
    Printf.printf "wrote %s (%d experiments)\n" out (List.length tables)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Regenerate every experiment and write one markdown report.")
    Term.(const run $ quick_arg $ out_arg $ jobs_arg)

(* ---- series ---- *)

let series_cmd =
  let sizes_arg =
    Arg.(
      value
      & opt (list int) [ 16; 32; 64; 128; 256 ]
      & info [ "sizes" ] ~docv:"N1,N2,…" ~doc:"Comma-separated processor counts.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc:"Write CSV here instead of stdout.")
  in
  let run topology sizes out =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      "topology,n,arrow_total,arrow_normalized,best_counting,counting_normalized,ratio\n";
    List.iter
      (fun n ->
        match build_topology topology n with
        | Error e ->
            prerr_endline e;
            exit 2
        | Ok g ->
            let n = Graph.n g in
            let requests = List.init n (fun i -> i) in
            let q = Run.queuing ~graph:g ~protocol:`Arrow ~requests () in
            let c = Run.best_counting ~graph:g ~requests in
            Buffer.add_string buf
              (Printf.sprintf "%s,%d,%d,%d,%s,%d,%.3f\n" topology n
                 q.total_delay q.normalized_delay c.protocol c.normalized_delay
                 (float_of_int c.normalized_delay
                 /. float_of_int (max 1 q.normalized_delay))))
      sizes;
    match out with
    | None -> print_string (Buffer.contents buf)
    | Some path ->
        let oc = open_out path in
        Buffer.output_buffer oc buf;
        close_out oc;
        Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "series"
       ~doc:
         "Sweep n for one topology and emit a CSV series of queuing vs counting totals (for plotting).")
    Term.(const run $ topology_arg $ sizes_arg $ out_arg)

(* ---- faults ---- *)

let faults_cmd =
  let plan_arg =
    Arg.(
      value
      & opt string "drop-first"
      & info [ "plan"; "p" ] ~docv:"NAME"
          ~doc:"Named fault plan (see --list-plans).")
  in
  let list_plans_arg =
    Arg.(value & flag & info [ "list-plans" ] ~doc:"List the named fault plans and exit.")
  in
  let monitors_arg =
    Arg.(
      value & flag
      & info [ "monitors" ] ~doc:"Also print every run's monitor verdicts.")
  in
  let run topology n req_spec seed plan_name list_plans show_monitors =
    if list_plans then
      List.iter
        (fun (name, plan) ->
          let crashes = Countq_simnet.Faults.crashes plan in
          Printf.printf "%-14s %s\n" name
            (if crashes = [] then "link faults only"
             else Printf.sprintf "%d crash(es)" (List.length crashes)))
        Countq_simnet.Faults.named
    else
      match Countq_simnet.Faults.find plan_name with
      | None ->
          Printf.eprintf "unknown fault plan %S; try --list-plans\n" plan_name;
          exit 2
      | Some plan -> (
          match build_topology topology n with
          | Error e ->
              prerr_endline e;
              exit 2
          | Ok graph -> (
              let n = Graph.n graph in
              match
                Countq.Scenario.requests ~seed:(Int64.of_int seed) ~n req_spec
              with
              | Error (`Msg m) ->
                  prerr_endline m;
                  exit 2
              | Ok requests ->
                  let k = List.length requests in
                  let summaries =
                    List.concat_map
                      (fun protocol ->
                        List.map
                          (fun retry ->
                            Run.run_faulty ~retry ~graph ~protocol ~plan
                              ~requests ())
                          [ false; true ])
                      [ `Arrow; `Central_queue; `Central_count ]
                  in
                  let rows =
                    List.map
                      (fun (s : Run.fault_summary) ->
                        [
                          s.protocol;
                          (if s.retry then "on" else "off");
                          Printf.sprintf "%d/%d" s.completed s.expected;
                          Table.cell_bool s.valid;
                          Table.cell_int s.rounds;
                          Table.cell_int s.extra_rounds;
                          Table.cell_int s.messages;
                          Table.cell_int s.extra_messages;
                          Table.cell_int s.injected.dropped;
                          Table.cell_int
                            (s.injected.duplicated + s.injected.delayed);
                          Table.cell_bool s.safe;
                          Table.cell_bool s.live;
                        ])
                      summaries
                  in
                  Table.print
                    (Table.make ~id:"faults"
                       ~title:
                         (Printf.sprintf
                            "degradation under plan %S on %s (n=%d, k=%d)"
                            plan_name topology n k)
                       ~paper_ref:"robustness extension (beyond the paper's reliable model)"
                       ~headers:
                         [ "protocol"; "retry"; "done"; "valid"; "rounds";
                           "+rounds"; "msgs"; "+msgs"; "drops"; "dup+delay";
                           "safe"; "live" ]
                       ~notes:
                         [
                           "+rounds/+msgs compare against the fault-free \
                            baseline on the same instance.";
                           "'safe' = no runtime safety monitor fired; 'live' \
                            = completed and never stalled.";
                         ]
                       rows);
                  if show_monitors then
                    List.iter
                      (fun (s : Run.fault_summary) ->
                        Format.printf "@.%s (retry %s):@.%a@." s.protocol
                          (if s.retry then "on" else "off")
                          Countq_simnet.Monitor.pp_report s.monitors)
                      summaries))
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Run the retrofitted protocols under a named fault plan, with and without the retransmit layer, and tabulate the degradation.")
    Term.(
      const run $ topology_arg $ n_arg $ requests_arg $ seed_arg $ plan_arg
      $ list_plans_arg $ monitors_arg)

(* ---- trace ---- *)

let trace_cmd =
  let run topology n seed =
    match build_topology topology (min n 24) with
    | Error e ->
        prerr_endline e;
        exit 2
    | Ok g ->
        let n = Graph.n g in
        let tree = Spanning.best_for_arrow g in
        let rng = Rng.create (Int64.of_int seed) in
        let k = max 1 (n / 3) in
        let requests = Rng.sample rng ~k ~n in
        let result, events =
          Countq_arrow.Protocol.run_one_shot_traced ~tree ~requests ()
        in
        Printf.printf
          "arrow protocol on %s (n=%d), requests {%s}, tail at node %d\n\n"
          topology n
          (String.concat "," (List.map string_of_int requests))
          (Tree.root tree);
        print_string (Countq_simnet.Trace.render ~n events);
        Printf.printf "\nlegend: s=queued send, R=received, +=both, *=completed\n";
        (match result.order with
        | Ok ops ->
            Printf.printf "total order: %s\n"
              (String.concat " -> "
                 (List.map
                    (fun (o : Countq_arrow.Types.op) -> string_of_int o.origin)
                    ops))
        | Error e ->
            Format.printf "INVALID ORDER: %a@." Countq_arrow.Order.pp_error e);
        Printf.printf "total delay %d, %d messages\n" result.total_delay
          result.messages
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Trace a small arrow execution as an ASCII timeline (n capped at 24).")
    Term.(const run $ topology_arg $ n_arg $ seed_arg)

let () =
  let doc = "Concurrent counting is harder than queuing - reproduction CLI" in
  let info = Cmd.info "countq" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; all_cmd; compare_cmd; topo_cmd; trace_cmd;
            series_cmd; report_cmd; verify_cmd; faults_cmd ]))
