.PHONY: all build test check clean examples report bench bench-quick bench-diff

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate: exactly what CI runs.
check:
	dune build @all
	dune runtest

examples:
	dune build @examples/all

report:
	dune exec bin/countq_cli.exe -- report

# Domain budget for the benchmark harness (tables + sweeps share it).
JOBS ?= $(shell nproc)

# Full benchmark pass: every experiment table at paper sizes, the
# engine speedup / metrics overhead / telemetry overhead / dynamic
# overhead / churn / jobs scaling / cache warm probes
# and the bechamel micro kernels; writes BENCH_8.json (and
# per-experiment CSVs under bench/out/). Sweep points are cached under
# bench/out/cache; pass --no-cache through BENCH_FLAGS to recompute.
bench:
	dune exec bench/main.exe -- --csv bench/out --jobs $(JOBS) $(BENCH_FLAGS)

# Quick smoke: truncated sweeps, no micro kernels. Same JSON schema.
bench-quick:
	dune exec bench/main.exe -- --quick --no-micro --csv bench/out --jobs $(JOBS) $(BENCH_FLAGS)

# Perf-regression check: compare the snapshot committed at HEAD against
# the BENCH_8.json sitting in the worktree (run `make bench` or
# `make bench-quick` first). Warn-only by default; DIFF_FLAGS=--strict
# makes a past-threshold regression fail the target (the CI gate shape).
bench-diff:
	@mkdir -p bench/out; \
	if git show HEAD:BENCH_8.json > bench/out/BENCH_baseline.json 2>/dev/null; then \
	  dune exec bin/countq_cli.exe -- bench diff bench/out/BENCH_baseline.json BENCH_8.json $(DIFF_FLAGS); \
	else \
	  echo "no BENCH_8.json at HEAD to diff against"; \
	fi

clean:
	dune clean
