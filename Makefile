.PHONY: all build test check clean examples report bench bench-quick

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate: exactly what CI runs.
check:
	dune build @all
	dune runtest

examples:
	dune build @examples/all

report:
	dune exec bin/countq_cli.exe -- report

# Domain budget for the benchmark harness (tables + sweeps share it).
JOBS ?= $(shell nproc)

# Full benchmark pass: every experiment table at paper sizes, the
# engine speedup / metrics overhead / dynamic overhead / churn / jobs
# scaling / cache warm probes
# and the bechamel micro kernels; writes BENCH_7.json (and
# per-experiment CSVs under bench/out/). Sweep points are cached under
# bench/out/cache; pass --no-cache through BENCH_FLAGS to recompute.
bench:
	dune exec bench/main.exe -- --csv bench/out --jobs $(JOBS) $(BENCH_FLAGS)

# Quick smoke: truncated sweeps, no micro kernels. Same JSON schema.
bench-quick:
	dune exec bench/main.exe -- --quick --no-micro --csv bench/out --jobs $(JOBS) $(BENCH_FLAGS)

clean:
	dune clean
