.PHONY: all build test check clean examples report

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate: exactly what CI runs.
check:
	dune build @all
	dune runtest

examples:
	dune build @examples/all

report:
	dune exec bin/countq_cli.exe -- report

clean:
	dune clean
