.PHONY: all build test check clean examples report bench bench-quick

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate: exactly what CI runs.
check:
	dune build @all
	dune runtest

examples:
	dune build @examples/all

report:
	dune exec bin/countq_cli.exe -- report

# Full benchmark pass: every experiment table at paper sizes, the
# engine speedup probe and the bechamel micro kernels; writes
# BENCH_3.json (and per-experiment CSVs under bench/out/).
bench:
	dune exec bench/main.exe -- --csv bench/out

# Quick smoke: truncated sweeps, no micro kernels. Same JSON schema.
bench-quick:
	dune exec bench/main.exe -- --quick --no-micro --csv bench/out

clean:
	dune clean
