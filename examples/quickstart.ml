(* Quickstart: the public API in one sitting.

   Build a topology, pick a spanning tree, run distributed queuing
   (the arrow protocol) and distributed counting on the same one-shot
   request set, validate both outputs, and compare their total delays
   -- the comparison the whole paper is about.

   Run with:  dune exec examples/quickstart.exe *)

module Gen = Countq_topology.Gen
module Bfs = Countq_topology.Bfs
module Spanning = Countq_topology.Spanning
module Arrow = Countq_arrow
module Run = Countq.Run

let () =
  (* 1. A 16 x 16 mesh: 256 processors, unit-delay FIFO links. *)
  let graph = Gen.square_mesh 16 in
  Format.printf "topology: 16x16 mesh, n=%d, m=%d, diameter=%d@."
    (Countq_topology.Graph.n graph)
    (Countq_topology.Graph.m graph)
    (Bfs.diameter graph);

  (* 2. Every processor issues an operation at time 0 (the paper's
     one-shot scenario, R = V). *)
  let requests = List.init 256 (fun i -> i) in

  (* 3. Queuing with the arrow protocol. [Spanning.best_for_arrow]
     picks the Hamilton-path spanning tree Theorem 4.5 wants. *)
  let tree = Spanning.best_for_arrow graph in
  let queue = Arrow.Protocol.run_one_shot ~tree ~requests () in
  (match queue.order with
  | Ok ops ->
      Format.printf "queuing: valid total order of %d operations@."
        (List.length ops);
      let head = List.hd ops in
      Format.printf "  first in queue: node %d (nearest the initial tail)@."
        head.origin
  | Error e -> Format.printf "queuing BUG: %a@." Arrow.Order.pp_error e);
  Format.printf "  total delay %d rounds (max %d, %d messages)@."
    queue.total_delay queue.max_delay queue.messages;

  (* 4. Counting, with the best protocol of the portfolio. *)
  let count = Run.best_counting ~graph ~requests () in
  Format.printf "counting: best protocol = %s, valid = %b@." count.protocol
    count.valid;
  Format.printf "  total delay %d rounds (normalised %d)@." count.total_delay
    count.normalized_delay;

  (* 5. The separation (Theorem 4.5): counting pays asymptotically
     more than queuing on this topology. *)
  let q = queue.total_delay * queue.expansion in
  Format.printf "@.counting/queuing delay ratio: %.1fx  (grows with n)@."
    (float_of_int count.normalized_delay /. float_of_int q)
