(* Fault injection and recovery: the arrow protocol losing its queue()
   token on a 16-node list, without and with the timeout-and-retransmit
   layer.

   The paper's model (Section 2.1) assumes reliable FIFO links; this
   demo shows what the fault subsystem adds on top. A drop-first plan
   deletes exactly one message — the sharpest single fault — and the
   runtime monitors report what that costs: without retries the victim
   operation never finds its predecessor (a liveness violation the
   monitors flag instead of the run hanging); with the retransmit layer
   the protocol heals at the price of extra rounds and messages, which
   the degradation report quantifies.

   Run with:  dune exec examples/fault_demo.exe *)

module Gen = Countq_topology.Gen
module Spanning = Countq_topology.Spanning
module Faults = Countq_simnet.Faults
module Monitor = Countq_simnet.Monitor
module Run = Countq.Run

let print_summary (s : Run.fault_summary) =
  Format.printf "  completed   %d/%d%s@." s.completed s.expected
    (if s.valid then " (valid total order)" else "");
  Format.printf "  rounds      %d (%+d vs fault-free)@." s.rounds s.extra_rounds;
  Format.printf "  messages    %d (%+d vs fault-free)@." s.messages
    s.extra_messages;
  Format.printf "  injected    %a@." Faults.pp_stats s.injected;
  Option.iter
    (fun r -> Format.printf "  retry layer %a@." Countq_simnet.Reliable.pp_stats r)
    s.retry_stats;
  Format.printf "  monitors:@.";
  List.iter (fun o -> Format.printf "    %a@." Monitor.pp_outcome o) s.monitors

let () =
  (* A 16-node list; every node issues one operation at time 0. The
     spanning tree of a list is the list itself, so every queue()
     message matters: losing one severs the path-reversal chain. *)
  let graph = Gen.path 16 in
  let tree = Spanning.best_for_arrow graph in
  let requests = List.init 16 (fun i -> i) in
  let plan =
    match Faults.find "drop-first" with Some p -> p | None -> assert false
  in

  Format.printf "arrow protocol, 16-node list, all nodes request, plan %S@.@."
    (Faults.label plan);

  Format.printf "--- without retransmission ---@.";
  let bare =
    Run.run_faulty ~graph ~tree ~protocol:`Arrow ~plan ~requests ()
  in
  print_summary bare;

  Format.printf "@.--- with timeout-and-retransmit ---@.";
  let healed =
    Run.run_faulty ~retry:true ~graph ~tree ~protocol:`Arrow ~plan ~requests ()
  in
  print_summary healed;

  Format.printf "@.";
  if healed.safe && healed.live then
    Format.printf
      "recovered: the dropped message was retransmitted and the run \
       re-established a single valid total order.@."
  else Format.printf "NOT RECOVERED - see the monitor verdicts above.@.";
  if not bare.live then
    Format.printf
      "(as expected, the run without retries lost an operation: a \
       liveness monitor fired rather than the execution hanging.)@."
