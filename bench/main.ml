(* Benchmark harness: regenerates every paper claim's table (E1-E13)
   and times the underlying kernels with Bechamel.

   Usage:
     dune exec bench/main.exe                 -- all tables + micro benches
     dune exec bench/main.exe -- --quick      -- smaller sweeps
     dune exec bench/main.exe -- --only E9    -- a single experiment
     dune exec bench/main.exe -- --no-micro   -- skip the Bechamel pass
     dune exec bench/main.exe -- --csv DIR    -- also write DIR/<id>.csv
     dune exec bench/main.exe -- --json PATH  -- perf snapshot (default
                                                 BENCH_3.json; --no-json
                                                 to skip)
     dune exec bench/main.exe -- --jobs N     -- regenerate tables on N domains
                                                 (experiments are pure, so this
                                                 is safe; output order is kept)

   Every run emits a machine-readable perf snapshot (BENCH_3.json):
   per-experiment wall time, the engine-vs-reference speedup probe on
   the E3 list-counting sweep, the metrics-recorder overhead probe
   (Engine.run with vs without a Metrics recorder on the same sweep),
   and — unless --no-micro — Bechamel ns/run per kernel. Tracked from
   PR 2 onward so perf regressions show up as a diff, not an
   anecdote. *)

module Experiments = Countq.Experiments
module Table = Countq.Table
module Engine = Countq_simnet.Engine
module Reference = Countq_simnet.Reference
module Graph = Countq_topology.Graph
module TGen = Countq_topology.Gen
module Tree = Countq_topology.Tree
module Spanning = Countq_topology.Spanning

let parse_args () =
  let quick = ref false in
  let micro = ref true in
  let only = ref None in
  let csv_dir = ref None in
  let json_path = ref (Some "BENCH_3.json") in
  let jobs = ref 1 in
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        go rest
    | "--no-micro" :: rest ->
        micro := false;
        go rest
    | "--only" :: id :: rest ->
        only := Some id;
        go rest
    | "--csv" :: dir :: rest ->
        csv_dir := Some dir;
        go rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        go rest
    | "--no-json" :: rest ->
        json_path := None;
        go rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j >= 1 -> jobs := j
        | _ ->
            prerr_endline "--jobs expects a positive integer";
            exit 2);
        go rest
    | arg :: _ ->
        Printf.eprintf "unknown argument %S\n" arg;
        exit 2
  in
  go (List.tl (Array.to_list Sys.argv));
  (!quick, !micro, !only, !csv_dir, !json_path, !jobs)

let selected only =
  match only with
  | None -> Experiments.all
  | Some id -> (
      match Experiments.find id with
      | Some s -> [ s ]
      | None ->
          Printf.eprintf "unknown experiment %S\n" id;
          exit 2)

(* [mkdir dir] with parent creation: Sys.mkdir is mkdir(2), so a
   nested --csv path like out/csv used to fail with ENOENT. *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir && parent <> "" then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
  end
  else if not (Sys.is_directory dir) then
    failwith (Printf.sprintf "--csv: %S exists and is not a directory" dir)

let run_tables ~quick ~csv_dir ~jobs specs =
  (* Experiments are pure functions of their seeds: regenerate them on
     [jobs] domains, then print in id order. *)
  let tables =
    Countq_util.Parallel.map ~jobs
      (fun (s : Experiments.spec) ->
        let t0 = Unix.gettimeofday () in
        let table = s.run ~quick () in
        (s.id, table, Unix.gettimeofday () -. t0))
      specs
  in
  List.iter
    (fun (id, table, dt) ->
      Table.print table;
      Printf.printf "[%s regenerated in %.2fs]\n\n%!" id dt;
      match csv_dir with
      | None -> ()
      | Some dir ->
          mkdir_p dir;
          let path = Filename.concat dir (String.lowercase_ascii id ^ ".csv") in
          let oc = open_out path in
          output_string oc (Table.to_csv table);
          close_out oc)
    tables;
  List.map (fun (id, _, dt) -> (id, dt)) tables

(* ------------------------------------------------------------------ *)
(* Engine-vs-reference speedup probe: the E3 list-counting sweep at
   the pre-active-set ceiling (n <= 256), timing prebuilt protocols
   through Engine.run and Reference.run so only the engines differ.    *)

type engine_fn = {
  exec :
    's 'm 'r.
    graph:Graph.t ->
    config:Engine.config ->
    protocol:('s, 'm, 'r) Engine.protocol ->
    'r Engine.result;
}

let active_engine =
  { exec = (fun ~graph ~config ~protocol -> Engine.run ~graph ~config ~protocol ()) }

let reference_engine =
  {
    exec = (fun ~graph ~config ~protocol -> Reference.run ~graph ~config ~protocol ());
  }

type speedup_row = {
  sweep_n : int;
  active_s : float;
  reference_s : float;
}

let speedup_probe ~quick () =
  let module C = Countq_counting in
  let sizes = [ 16; 32; 64; 128; 256 ] in
  (* The runs are tens of microseconds, well inside scheduler noise, so
     each measurement is best-of-[rounds] over batches of [reps] runs
     (with one warm-up run so first-touch allocation doesn't skew the
     first batch). *)
  let rounds = if quick then 2 else 5 in
  let time reps f =
    let best = ref infinity in
    for _ = 1 to rounds do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps do
        f ()
      done;
      let dt = (Unix.gettimeofday () -. t0) /. float_of_int reps in
      if dt < !best then best := dt
    done;
    !best
  in
  List.map
    (fun n ->
      (* The exact protocol value E3's sweep runner drives: the token
         sweep on the arrow-optimal spanning tree of the n-node list,
         every node requesting. Theta(n^2) total rounds with one active
         node per round — the regime the active-set engine targets. *)
      let tree = Spanning.best_for_arrow (TGen.path n) in
      let graph = Tree.to_graph tree in
      let requests = List.init n (fun i -> i) in
      let protocol = C.Sweep.one_shot_protocol ~tree ~requests () in
      let config = Engine.default_config in
      let run e () = ignore (e.exec ~graph ~config ~protocol) in
      let reps = max (if quick then 5 else 20) (20_000 / n) in
      run active_engine ();
      run reference_engine ();
      {
        sweep_n = n;
        active_s = time reps (run active_engine);
        reference_s = time reps (run reference_engine);
      })
    sizes

(* ------------------------------------------------------------------ *)
(* Metrics-overhead probe: the same E3 sweep, timed through Engine.run
   with and without a Metrics recorder attached. The recorder's hooks
   sit on the per-message hot paths, so this is the honest price of
   leaving observability on; the acceptance bar is low single digits.  *)

type overhead_row = {
  mo_n : int;
  plain_s : float;
  metrics_s : float;
}

let overhead_pct r =
  if r.plain_s > 0. then ((r.metrics_s /. r.plain_s) -. 1.) *. 100.
  else Float.nan

let metrics_overhead_probe ~quick () =
  let module C = Countq_counting in
  let module Metrics = Countq_simnet.Metrics in
  let sizes = if quick then [ 128; 512 ] else [ 128; 256; 512 ] in
  let rounds = if quick then 3 else 15 in
  (* The two arms run as adjacent pairs (alternating order) and the
     overhead is the MEDIAN of the per-pair ratios: clock/thermal drift
     hits both halves of a pair equally and cancels in the ratio, and
     the median shrugs off bursty interference that a best-of between
     two independently-timed arms cannot (one arm can catch a clean
     window the other never sees). The reported times are the fastest
     plain run and that baseline scaled by the median ratio. *)
  let time_pair reps f g =
    let timed h =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps do
        h ()
      done;
      (Unix.gettimeofday () -. t0) /. float_of_int reps
    in
    let ratios = Array.make rounds 0. in
    let best_f = ref infinity in
    for i = 0 to rounds - 1 do
      let tf, tg =
        if i land 1 = 0 then
          let a = timed f in
          let b = timed g in
          (a, b)
        else
          let b = timed g in
          let a = timed f in
          (a, b)
      in
      if tf < !best_f then best_f := tf;
      ratios.(i) <- tg /. tf
    done;
    Array.sort compare ratios;
    (!best_f, !best_f *. ratios.(rounds / 2))
  in
  List.map
    (fun n ->
      let tree = Spanning.best_for_arrow (TGen.path n) in
      let graph = Tree.to_graph tree in
      let requests = List.init n (fun i -> i) in
      let protocol = C.Sweep.one_shot_protocol ~tree ~requests () in
      let config = Engine.default_config in
      (* One recorder reused across the timed runs: creation is a few
         array allocations and would otherwise dominate at small n. *)
      let m = Metrics.create ~graph in
      let plain () = ignore (Engine.run ~graph ~config ~protocol ()) in
      let with_metrics () =
        ignore (Engine.run ~metrics:m ~graph ~config ~protocol ())
      in
      let reps = max (if quick then 5 else 50) (200_000 / n) in
      plain ();
      with_metrics ();
      let plain_s, metrics_s = time_pair reps plain with_metrics in
      { mo_n = n; plain_s; metrics_s })
    sizes

(* ------------------------------------------------------------------ *)
(* Bechamel micro benchmarks: one Test.make per experiment (its quick
   kernel), plus the hot inner kernels each experiment leans on.       *)

open Bechamel
open Toolkit

let experiment_tests specs =
  List.map
    (fun (s : Experiments.spec) ->
      Test.make ~name:s.id (Staged.stage (fun () -> ignore (s.run ~quick:true ()))))
    specs

let kernel_tests () =
  let module Gen = Countq_topology.Gen in
  let module Rng = Countq_util.Rng in
  let mesh = Gen.square_mesh 16 in
  let mesh_tree = Spanning.best_for_arrow mesh in
  let all_256 = List.init 256 (fun i -> i) in
  let rng = Rng.create 99L in
  let half = Rng.sample rng ~k:128 ~n:256 in
  (* kernel:engine-idle-rounds — a quiescent run with a huge min_rounds
     horizon; measures the idle fast-forward (the reference engine
     spins a million rounds here). *)
  let idle_graph = Gen.path 4 in
  let idle_config = { Engine.default_config with min_rounds = 1_000_000 } in
  let idle_protocol =
    {
      Engine.name = "idle";
      initial_state = (fun _ -> ());
      on_start = (fun ~node:_ s -> (s, []));
      on_receive = (fun ~round:_ ~node:_ ~src:_ () s -> (s, []));
      on_tick = Engine.no_tick;
    }
  in
  (* kernel:sweep-list-512 — the Theta(n^2)-round, one-active-node
     regime the active sets exist for. *)
  let list_512 = Gen.path 512 in
  let list_512_tree = Spanning.best_for_arrow list_512 in
  let all_512 = List.init 512 (fun i -> i) in
  [
    Test.make ~name:"kernel:graph-mesh-16x16"
      (Staged.stage (fun () -> ignore (Gen.square_mesh 16)));
    Test.make ~name:"kernel:spanning-best-for-arrow"
      (Staged.stage (fun () -> ignore (Spanning.best_for_arrow mesh)));
    Test.make ~name:"kernel:arrow-one-shot-256"
      (Staged.stage (fun () ->
           ignore
             (Countq_arrow.Protocol.run_one_shot ~tree:mesh_tree
                ~requests:all_256 ())));
    Test.make ~name:"kernel:nn-tsp-256"
      (Staged.stage (fun () ->
           ignore
             (Countq_tsp.Nn.on_tree mesh_tree ~start:(Tree.root mesh_tree)
                ~requests:half)));
    Test.make ~name:"kernel:central-counting-mesh"
      (Staged.stage (fun () ->
           ignore (Countq_counting.Central.run ~graph:mesh ~requests:half ())));
    Test.make ~name:"kernel:counting-network-mesh"
      (Staged.stage (fun () ->
           ignore (Countq_counting.Network.run ~graph:mesh ~requests:half ())));
    Test.make ~name:"kernel:engine-idle-rounds"
      (Staged.stage (fun () ->
           ignore
             (Engine.run ~graph:idle_graph ~config:idle_config
                ~protocol:idle_protocol ())));
    Test.make ~name:"kernel:sweep-list-512"
      (Staged.stage (fun () ->
           ignore
             (Countq_counting.Sweep.run ~tree:list_512_tree ~requests:all_512 ())));
    Test.make ~name:"kernel:bitonic-push-1k"
      (Staged.stage (fun () ->
           let net = Countq_counting.Bitonic.create ~width:32 in
           let st = Countq_counting.Bitonic.State.create net in
           for t = 0 to 999 do
             ignore (Countq_counting.Bitonic.State.push st ~wire:(t land 31))
           done));
    Test.make ~name:"kernel:lower-bound-sum-4096"
      (Staged.stage (fun () -> ignore (Countq_bounds.Lower.contention_lb 4096)));
  ]

let run_micro specs =
  let tests =
    Test.make_grouped ~name:"countq" ~fmt:"%s/%s"
      (experiment_tests specs @ kernel_tests ())
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  print_endline "== Bechamel micro benchmarks (monotonic clock) ==";
  let clock = Hashtbl.find merged (Measure.label Instance.monotonic_clock) in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some (est :: _) -> (name, est) :: acc
        | _ -> (name, Float.nan) :: acc)
      clock []
  in
  let rows = List.sort compare rows in
  List.iter
    (fun (name, ns) ->
      if ns >= 1e6 then Printf.printf "%-40s %10.3f ms/run\n" name (ns /. 1e6)
      else Printf.printf "%-40s %10.1f ns/run\n" name ns)
    rows;
  rows

(* ------------------------------------------------------------------ *)
(* BENCH_3.json: the machine-readable perf snapshot. No JSON library
   in the dependency set, so it is printed by hand — every name is a
   known identifier and every value a number, but strings are escaped
   anyway for safety. (Countq_util.Json exists now, but the hand
   printer keeps the snapshot's field order stable for diffing.)       *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f = if Float.is_nan f then "null" else Printf.sprintf "%.6g" f

let write_json ~path ~quick ~experiments ~speedup ~overhead ~kernels =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"countq-bench/3\",\n";
  add "  \"mode\": \"%s\",\n" (if quick then "quick" else "full");
  add "  \"experiments\": [\n";
  List.iteri
    (fun i (id, dt) ->
      add "    {\"id\": \"%s\", \"wall_seconds\": %s}%s\n" (json_escape id)
        (json_float dt)
        (if i = List.length experiments - 1 then "" else ","))
    experiments;
  add "  ],\n";
  let active = List.fold_left (fun a r -> a +. r.active_s) 0. speedup in
  let reference = List.fold_left (fun a r -> a +. r.reference_s) 0. speedup in
  let ceiling =
    List.fold_left
      (fun acc r -> match acc with Some a when a.sweep_n >= r.sweep_n -> acc | _ -> Some r)
      None speedup
  in
  add "  \"engine_speedup\": {\n";
  add
    "    \"probe\": \"E3 list-counting sweep (token protocol, all nodes \
     requesting) at the pre-active-set ceiling sizes\",\n";
  add "    \"protocol\": \"sweep\",\n";
  (match ceiling with
  | Some r ->
      add "    \"ceiling_n\": %d,\n" r.sweep_n;
      add "    \"speedup_at_ceiling\": %s,\n"
        (json_float
           (if r.active_s > 0. then r.reference_s /. r.active_s else Float.nan))
  | None -> ());
  add "    \"active_seconds\": %s,\n" (json_float active);
  add "    \"reference_seconds\": %s,\n" (json_float reference);
  add "    \"speedup\": %s,\n"
    (json_float (if active > 0. then reference /. active else Float.nan));
  add "    \"sizes\": [\n";
  List.iteri
    (fun i r ->
      add
        "      {\"n\": %d, \"active_seconds\": %s, \"reference_seconds\": %s, \
         \"speedup\": %s}%s\n"
        r.sweep_n (json_float r.active_s) (json_float r.reference_s)
        (json_float
           (if r.active_s > 0. then r.reference_s /. r.active_s else Float.nan))
        (if i = List.length speedup - 1 then "" else ","))
    speedup;
  add "    ]\n";
  add "  },\n";
  let worst =
    List.fold_left
      (fun acc r ->
        match acc with Some a when a.mo_n >= r.mo_n -> acc | _ -> Some r)
      None overhead
  in
  add "  \"metrics_overhead\": {\n";
  add
    "    \"probe\": \"E3 list-counting sweep timed through Engine.run with \
     and without a Metrics recorder attached\",\n";
  (match worst with
  | Some r ->
      add "    \"ceiling_n\": %d,\n" r.mo_n;
      add "    \"overhead_pct_at_ceiling\": %s,\n" (json_float (overhead_pct r))
  | None -> ());
  add "    \"sizes\": [\n";
  List.iteri
    (fun i r ->
      add
        "      {\"n\": %d, \"plain_seconds\": %s, \"metrics_seconds\": %s, \
         \"overhead_pct\": %s}%s\n"
        r.mo_n (json_float r.plain_s) (json_float r.metrics_s)
        (json_float (overhead_pct r))
        (if i = List.length overhead - 1 then "" else ","))
    overhead;
  add "    ]\n";
  add "  }";
  (match kernels with
  | None -> add "\n"
  | Some rows ->
      add ",\n  \"kernels\": [\n";
      List.iteri
        (fun i (name, ns) ->
          add "    {\"name\": \"%s\", \"ns_per_run\": %s}%s\n" (json_escape name)
            (json_float ns)
            (if i = List.length rows - 1 then "" else ","))
        rows;
      add "  ]\n");
  add "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "[perf snapshot written to %s]\n%!" path

let () =
  let quick, micro, only, csv_dir, json_path, jobs = parse_args () in
  let specs = selected only in
  Printf.printf
    "countq benchmark harness: reproducing %d paper claims (%s mode%s)\n\n%!"
    (List.length specs)
    (if quick then "quick" else "full")
    (if jobs > 1 then Printf.sprintf ", %d domains" jobs else "");
  let experiments = run_tables ~quick ~csv_dir ~jobs specs in
  let kernels = if micro then Some (run_micro specs) else None in
  match json_path with
  | None -> ()
  | Some path ->
      let speedup = speedup_probe ~quick () in
      let total_a = List.fold_left (fun a r -> a +. r.active_s) 0. speedup in
      let total_r = List.fold_left (fun a r -> a +. r.reference_s) 0. speedup in
      List.iter
        (fun r ->
          Printf.printf
            "[sweep speedup probe n=%4d: active %8.6fs vs reference %8.6fs \
             -> %.1fx]\n%!"
            r.sweep_n r.active_s r.reference_s
            (if r.active_s > 0. then r.reference_s /. r.active_s else Float.nan))
        speedup;
      Printf.printf
        "[sweep speedup probe aggregate: active %.6fs vs reference %.6fs -> \
         %.1fx]\n%!"
        total_a total_r
        (if total_a > 0. then total_r /. total_a else Float.nan);
      let overhead = metrics_overhead_probe ~quick () in
      List.iter
        (fun r ->
          Printf.printf
            "[metrics overhead probe n=%4d: plain %8.6fs vs metrics-on \
             %8.6fs -> %+.1f%%]\n%!"
            r.mo_n r.plain_s r.metrics_s (overhead_pct r))
        overhead;
      write_json ~path ~quick ~experiments ~speedup ~overhead ~kernels
