(* Benchmark harness: regenerates every paper claim's table (E1-E13)
   and times the underlying kernels with Bechamel.

   Usage:
     dune exec bench/main.exe                 -- all tables + micro benches
     dune exec bench/main.exe -- --quick      -- smaller sweeps
     dune exec bench/main.exe -- --only E9    -- a single experiment
     dune exec bench/main.exe -- --no-micro   -- skip the Bechamel pass
     dune exec bench/main.exe -- --csv DIR    -- also write DIR/<id>.csv
     dune exec bench/main.exe -- --json PATH  -- perf snapshot (default
                                                 BENCH_10.json; --no-json
                                                 to skip)
     dune exec bench/main.exe -- --jobs N     -- table+sweep budget of N
                                                 domains (experiments are
                                                 pure, so this is safe;
                                                 output order is kept)
     dune exec bench/main.exe -- --no-cache   -- recompute every sweep
                                                 point (skip the on-disk
                                                 cache)
     dune exec bench/main.exe -- --cache-dir D -- cache root (default
                                                 bench/out/cache)

   Every run emits a machine-readable perf snapshot (BENCH_10.json):
   per-experiment wall time and cache hit/miss counts, the
   engine-vs-reference speedup probe on the E3 list-counting sweep, the
   metrics-recorder overhead probe, the dynamic-schedule overhead probe
   (the same sweep with the identity topology schedule attached — the
   price of leaving the dynamic machinery on for a static run), the
   n-scaling probe (one-shot queuing on implicit lists and tori from
   10^3 to 10^6 nodes through the event engine, wall ns per message so
   near-linear-in-work cost is checkable at a glance), the open-loop
   saturation probe (Poisson arrivals at rates below and above
   counting's service ceiling, queuing next to counting), the
   churn probe (the dynamic queue and the route-repaired arrow on the
   mesh, identity vs the seeded flap schedule, wall time next to the
   degradation), the jobs-scaling probe (the heavy sweep grids
   regenerated at jobs = 1/2/4/8, honest wall times plus the core count
   so a 1-core container's flat curve reads as what it is; redundant
   levels are skipped on 1 core and listed as skipped), the
   shard-scaling probe (one E30-shape run partitioned across domains by
   Countq_simnet.Shard at shards = 1/2/4, summaries asserted identical
   at every level), the
   cache-warm probe (cold vs warm pass over the grid experiments on a
   scratch cache, asserting bit-identical tables), and — unless
   --no-micro — Bechamel ns/run per kernel. Tracked from PR 2 onward so
   perf regressions show up as a diff, not an anecdote.

   Sweep results are cached under bench/out/cache keyed by content
   (schema version, experiment, seed, config tag, point name), and one
   random cached point per experiment is spot-checked against a fresh
   recompute: a disagreement aborts the run with a nonzero exit, so a
   stale cache can never silently launder a regression. *)

module Experiments = Countq.Experiments
module Table = Countq.Table
module Sweep = Countq.Sweep
module Cache = Countq.Cache
module Parallel = Countq_util.Parallel
module Engine = Countq_simnet.Engine
module Reference = Countq_simnet.Reference
module Dynamic = Countq_simnet.Dynamic
module Graph = Countq_topology.Graph
module TGen = Countq_topology.Gen
module Tree = Countq_topology.Tree
module Spanning = Countq_topology.Spanning

type opts = {
  quick : bool;
  micro : bool;
  only : string option;
  csv_dir : string option;
  json_path : string option;
  jobs : int;
  use_cache : bool;
  cache_dir : string;
}

let default_cache_dir =
  Filename.concat (Filename.concat "bench" "out") "cache"

let parse_args () =
  let quick = ref false in
  let micro = ref true in
  let only = ref None in
  let csv_dir = ref None in
  let json_path = ref (Some "BENCH_10.json") in
  let jobs = ref 1 in
  let use_cache = ref true in
  let cache_dir = ref default_cache_dir in
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        go rest
    | "--no-micro" :: rest ->
        micro := false;
        go rest
    | "--only" :: id :: rest ->
        only := Some id;
        go rest
    | "--csv" :: dir :: rest ->
        csv_dir := Some dir;
        go rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        go rest
    | "--no-json" :: rest ->
        json_path := None;
        go rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j >= 1 -> jobs := j
        | _ ->
            prerr_endline "--jobs expects a positive integer";
            exit 2);
        go rest
    | "--no-cache" :: rest ->
        use_cache := false;
        go rest
    | "--cache-dir" :: dir :: rest ->
        cache_dir := dir;
        go rest
    | arg :: _ ->
        Printf.eprintf "unknown argument %S\n" arg;
        exit 2
  in
  go (List.tl (Array.to_list Sys.argv));
  {
    quick = !quick;
    micro = !micro;
    only = !only;
    csv_dir = !csv_dir;
    json_path = !json_path;
    jobs = !jobs;
    use_cache = !use_cache;
    cache_dir = !cache_dir;
  }

let selected only =
  match only with
  | None -> Experiments.all
  | Some id -> (
      match Experiments.find id with
      | Some s -> [ s ]
      | None ->
          Printf.eprintf "unknown experiment %S\n" id;
          exit 2)

(* [mkdir dir] with parent creation: Sys.mkdir is mkdir(2), so a
   nested --csv path like out/csv used to fail with ENOENT. *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir && parent <> "" then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
  end
  else if not (Sys.is_directory dir) then
    failwith (Printf.sprintf "--csv: %S exists and is not a directory" dir)

(* The spot-check seed varies per invocation so repeated bench runs
   walk different cached points; determinism of the tables themselves
   is untouched (the spot check only compares, never contributes). *)
let fresh_spot_seed () = Int64.of_float (Unix.gettimeofday () *. 1e6)

(* The sweep-grid experiments, heaviest first. Scheduling the heavy
   grids before the cheap closed-form tables keeps the pool's lanes
   busy to the end instead of finishing with one straggler. *)
let heavy_ids = [ "E25"; "E13"; "E10"; "E9"; "E3"; "E12" ]

type table_run = {
  tr_id : string;
  tr_table : Table.t;
  tr_wall : float;
  tr_hits : int;
  tr_misses : int;
}

let run_tables ~opts ~pool specs =
  (* Experiments are pure functions of their seeds: regenerate them on
     the shared pool, then print in id order. Each lane opens its own
     handle on the shared cache directory - namespaces are one file per
     experiment, so concurrent lanes never touch the same file. *)
  let rank =
    let tbl = Hashtbl.create 32 in
    List.iteri (fun i (s : Experiments.spec) -> Hashtbl.replace tbl s.id i) specs;
    fun id -> try Hashtbl.find tbl id with Not_found -> max_int
  in
  let weight (s : Experiments.spec) =
    let rec idx i = function
      | [] -> List.length heavy_ids
      | h :: t -> if h = s.id then i else idx (i + 1) t
    in
    idx 0 heavy_ids
  in
  let ordered =
    List.stable_sort (fun a b -> compare (weight a) (weight b)) specs
  in
  let spot_seed = fresh_spot_seed () in
  let run_one (s : Experiments.spec) =
    let cache =
      if opts.use_cache then Some (Cache.create ~dir:opts.cache_dir) else None
    in
    let ctx =
      Sweep.ctx ~pool ?cache ~spot_check:opts.use_cache ~spot_seed ()
    in
    let t0 = Unix.gettimeofday () in
    let table = s.run ~quick:opts.quick ~ctx () in
    let tr_wall = Unix.gettimeofday () -. t0 in
    let tr_hits, tr_misses =
      match cache with
      | Some c -> (Cache.hits c, Cache.misses c)
      | None -> (0, 0)
    in
    { tr_id = s.id; tr_table = table; tr_wall; tr_hits; tr_misses }
  in
  let tables =
    List.stable_sort
      (fun a b -> compare (rank a.tr_id) (rank b.tr_id))
      (Parallel.pool_map pool ~chunk:1 run_one ordered)
  in
  List.iter
    (fun r ->
      Table.print r.tr_table;
      let cache_note =
        if opts.use_cache then
          Printf.sprintf ", cache %d hit(s) %d miss(es)" r.tr_hits r.tr_misses
        else ""
      in
      Printf.printf "[%s regenerated in %.2fs%s]\n\n%!" r.tr_id r.tr_wall
        cache_note;
      match opts.csv_dir with
      | None -> ()
      | Some dir ->
          mkdir_p dir;
          let path =
            Filename.concat dir (String.lowercase_ascii r.tr_id ^ ".csv")
          in
          let oc = open_out path in
          output_string oc (Table.to_csv r.tr_table);
          close_out oc)
    tables;
  tables

(* ------------------------------------------------------------------ *)
(* Engine-vs-reference speedup probe: the E3 list-counting sweep at
   the pre-active-set ceiling (n <= 256), timing prebuilt protocols
   through Engine.run and Reference.run so only the engines differ.    *)

type engine_fn = {
  exec :
    's 'm 'r.
    graph:Graph.t ->
    config:Engine.config ->
    protocol:('s, 'm, 'r) Engine.protocol ->
    'r Engine.result;
}

let active_engine =
  { exec = (fun ~graph ~config ~protocol -> Engine.run ~graph ~config ~protocol ()) }

let reference_engine =
  {
    exec = (fun ~graph ~config ~protocol -> Reference.run ~graph ~config ~protocol ());
  }

type speedup_row = {
  sweep_n : int;
  active_s : float;
  reference_s : float;
}

let speedup_probe ~quick () =
  let module C = Countq_counting in
  let sizes = [ 16; 32; 64; 128; 256 ] in
  (* The runs are tens of microseconds, well inside scheduler noise, so
     each measurement is best-of-[rounds] over batches of [reps] runs
     (with one warm-up run so first-touch allocation doesn't skew the
     first batch). *)
  let rounds = if quick then 2 else 5 in
  let time reps f =
    let best = ref infinity in
    for _ = 1 to rounds do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps do
        f ()
      done;
      let dt = (Unix.gettimeofday () -. t0) /. float_of_int reps in
      if dt < !best then best := dt
    done;
    !best
  in
  List.map
    (fun n ->
      (* The exact protocol value E3's sweep runner drives: the token
         sweep on the arrow-optimal spanning tree of the n-node list,
         every node requesting. Theta(n^2) total rounds with one active
         node per round — the regime the active-set engine targets. *)
      let tree = Spanning.best_for_arrow (TGen.path n) in
      let graph = Tree.to_graph tree in
      let requests = List.init n (fun i -> i) in
      let protocol = C.Sweep.one_shot_protocol ~tree ~requests () in
      let config = Engine.default_config in
      let run e () = ignore (e.exec ~graph ~config ~protocol) in
      let reps = max (if quick then 5 else 20) (20_000 / n) in
      run active_engine ();
      run reference_engine ();
      {
        sweep_n = n;
        active_s = time reps (run active_engine);
        reference_s = time reps (run reference_engine);
      })
    sizes

(* ------------------------------------------------------------------ *)
(* Metrics-overhead probe: the same E3 sweep, timed through Engine.run
   with and without a Metrics recorder attached. The recorder's hooks
   sit on the per-message hot paths, so this is the honest price of
   leaving observability on; the acceptance bar is low single digits.  *)

type overhead_row = {
  mo_n : int;
  plain_s : float;
  metrics_s : float;
}

let overhead_pct r =
  if r.plain_s > 0. then ((r.metrics_s /. r.plain_s) -. 1.) *. 100.
  else Float.nan

(* The two arms run as adjacent pairs (alternating order) and the
   overhead is the MEDIAN of the per-pair ratios: clock/thermal drift
   hits both halves of a pair equally and cancels in the ratio, and
   the median shrugs off bursty interference that a best-of between
   two independently-timed arms cannot (one arm can catch a clean
   window the other never sees). The reported times are the fastest
   plain run and that baseline scaled by the median ratio. Shared by
   every attach-a-recorder overhead probe. *)
let time_pair ~rounds reps f g =
  let timed h =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      h ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let ratios = Array.make rounds 0. in
  let best_f = ref infinity in
  for i = 0 to rounds - 1 do
    let tf, tg =
      if i land 1 = 0 then
        let a = timed f in
        let b = timed g in
        (a, b)
      else
        let b = timed g in
        let a = timed f in
        (a, b)
    in
    if tf < !best_f then best_f := tf;
    ratios.(i) <- tg /. tf
  done;
  Array.sort compare ratios;
  (!best_f, !best_f *. ratios.(rounds / 2))

let metrics_overhead_probe ~quick () =
  let module C = Countq_counting in
  let module Metrics = Countq_simnet.Metrics in
  let sizes = if quick then [ 128; 512 ] else [ 128; 256; 512 ] in
  let rounds = if quick then 3 else 15 in
  List.map
    (fun n ->
      let tree = Spanning.best_for_arrow (TGen.path n) in
      let graph = Tree.to_graph tree in
      let requests = List.init n (fun i -> i) in
      let protocol = C.Sweep.one_shot_protocol ~tree ~requests () in
      let config = Engine.default_config in
      (* One recorder reused across the timed runs: creation is a few
         array allocations and would otherwise dominate at small n. *)
      let m = Metrics.create ~graph in
      let plain () = ignore (Engine.run ~graph ~config ~protocol ()) in
      let with_metrics () =
        ignore (Engine.run ~metrics:m ~graph ~config ~protocol ())
      in
      let reps = max (if quick then 5 else 50) (200_000 / n) in
      plain ();
      with_metrics ();
      let plain_s, metrics_s = time_pair ~rounds reps plain with_metrics in
      { mo_n = n; plain_s; metrics_s })
    sizes

(* ------------------------------------------------------------------ *)
(* Telemetry-overhead probe: the same sweep with a windowed Telemetry
   recorder attached. Its hook is one integer division plus a field
   increment per message event; the acceptance bar from the issue is
   <= ~5%. The recorder is reused across timed runs (creation would
   otherwise dominate at small n) and never snapshotted, so the stale
   ring contents are harmless.                                         *)

type tel_row = {
  tn_n : int;
  tl_plain_s : float;
  tl_tel_s : float;
}

let tel_overhead_pct r =
  if r.tl_plain_s > 0. then ((r.tl_tel_s /. r.tl_plain_s) -. 1.) *. 100.
  else Float.nan

let telemetry_overhead_probe ~quick () =
  let module C = Countq_counting in
  let module Telemetry = Countq_simnet.Telemetry in
  let sizes = if quick then [ 128; 512 ] else [ 128; 256; 512 ] in
  let rounds = if quick then 3 else 15 in
  List.map
    (fun n ->
      let tree = Spanning.best_for_arrow (TGen.path n) in
      let graph = Tree.to_graph tree in
      let requests = List.init n (fun i -> i) in
      let protocol = C.Sweep.one_shot_protocol ~tree ~requests () in
      let config = Engine.default_config in
      let tl = Telemetry.create ~window_size:16 () in
      let plain () = ignore (Engine.run ~graph ~config ~protocol ()) in
      let with_tel () =
        ignore (Engine.run ~telemetry:tl ~graph ~config ~protocol ())
      in
      let reps = max (if quick then 5 else 50) (200_000 / n) in
      plain ();
      with_tel ();
      let tl_plain_s, tl_tel_s = time_pair ~rounds reps plain with_tel in
      { tn_n = n; tl_plain_s; tl_tel_s })
    sizes

(* ------------------------------------------------------------------ *)
(* Dynamic-schedule overhead probe: the same E3 sweep, timed through
   Engine.run bare and with the identity Dynamic schedule attached.
   Attaching any schedule moves the run onto the faulty/dynamic loop
   and puts a usable-link test on the per-transmission hot path, so
   this is the honest price of the dynamic machinery for a static run
   (the identity schedule is pinned bit-identical in behaviour).       *)

type dyn_row = {
  dn_n : int;
  bare_s : float;
  dyn_s : float;
}

let dyn_overhead_pct r =
  if r.bare_s > 0. then ((r.dyn_s /. r.bare_s) -. 1.) *. 100. else Float.nan

let dynamic_overhead_probe ~quick () =
  let module C = Countq_counting in
  let sizes = if quick then [ 128; 512 ] else [ 128; 256; 512 ] in
  let rounds = if quick then 3 else 15 in
  (* Same pairing/median discipline as the metrics probe, and for the
     same reason: the two arms alternate so drift cancels in the
     per-pair ratio. *)
  let time_pair reps f g =
    let timed h =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps do
        h ()
      done;
      (Unix.gettimeofday () -. t0) /. float_of_int reps
    in
    let ratios = Array.make rounds 0. in
    let best_f = ref infinity in
    for i = 0 to rounds - 1 do
      let tf, tg =
        if i land 1 = 0 then
          let a = timed f in
          let b = timed g in
          (a, b)
        else
          let b = timed g in
          let a = timed f in
          (a, b)
      in
      if tf < !best_f then best_f := tf;
      ratios.(i) <- tg /. tf
    done;
    Array.sort compare ratios;
    (!best_f, !best_f *. ratios.(rounds / 2))
  in
  List.map
    (fun n ->
      let tree = Spanning.best_for_arrow (TGen.path n) in
      let graph = Tree.to_graph tree in
      let requests = List.init n (fun i -> i) in
      let protocol = C.Sweep.one_shot_protocol ~tree ~requests () in
      let config = Engine.default_config in
      let ident = Dynamic.identity graph in
      let bare () = ignore (Engine.run ~graph ~config ~protocol ()) in
      let with_dyn () =
        ignore
          (Engine.run ~dynamic:(Dynamic.start ident) ~graph ~config ~protocol
             ())
      in
      let reps = max (if quick then 5 else 50) (200_000 / n) in
      bare ();
      with_dyn ();
      let bare_s, dyn_s = time_pair reps bare with_dyn in
      { dn_n = n; bare_s; dyn_s })
    sizes

(* ------------------------------------------------------------------ *)
(* Churn probe: the dynamic queue and the route-repaired arrow on the
   mesh, identity schedule vs the seeded flap schedule. Wall time sits
   next to the degradation numbers so a perf regression in the repair
   layers shows up in the same diff as a behavioural one.              *)

type churn_row = {
  ch_name : string;
  ch_wall : float;
  ch_completed : int;
  ch_expected : int;
  ch_rounds : int;
  ch_messages : int;
}

let churn_probe ~quick () =
  let module Dq = Countq_queuing.Dynamic_queue in
  let side = if quick then 3 else 4 in
  let g = TGen.square_mesh side in
  let n = Graph.n g in
  let requests = List.init n (fun i -> i) in
  let tree = Spanning.best_for_arrow g in
  let flaps () = Dynamic.link_flaps ~seed:77L ~rate:0.4 ~epoch:4 g in
  let reps = if quick then 3 else 10 in
  let timed name run =
    (* Best-of-[reps]: the runs are deterministic, so repetition only
       fights scheduler noise. The report comes from the first run. *)
    let report = run () in
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (run ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    let result = (report : Dq.report).result in
    {
      ch_name = name;
      ch_wall = !best;
      ch_completed = List.length result.outcomes;
      ch_expected = n;
      ch_rounds = result.rounds;
      ch_messages = result.messages;
    }
  in
  [
    timed
      (Printf.sprintf "dynamic-queue mesh-%dx%d identity" side side)
      (fun () -> Dq.run ~graph:g ~requests ());
    timed
      (Printf.sprintf "dynamic-queue mesh-%dx%d flaps(0.4)" side side)
      (fun () -> Dq.run ~sched:(flaps ()) ~graph:g ~requests ());
    timed
      (Printf.sprintf "arrow+route mesh-%dx%d identity" side side)
      (fun () -> fst (Dq.run_arrow ~graph:g ~tree ~requests ()));
    timed
      (Printf.sprintf "arrow+route mesh-%dx%d flaps(0.4)" side side)
      (fun () -> fst (Dq.run_arrow ~sched:(flaps ()) ~graph:g ~tree ~requests ()));
  ]

(* ------------------------------------------------------------------ *)
(* n-scaling probe: one-shot queuing through the event engine on
   implicit lists and tori from 10^3 to 10^6 nodes, every 16th node
   requesting. The implicit families are never materialised and idle
   nodes hold no state, so the honest cost metric is wall ns per
   message — near-constant across three orders of magnitude of n means
   the engine's cost tracks the work, not the graph.                   *)

type nscale_row = {
  ns_family : string;
  ns_n : int;
  ns_requests : int;
  ns_completed : int;
  ns_rounds : int;
  ns_messages : int;
  ns_touched : int;
  ns_wall : float;
}

let ns_per_message r =
  if r.ns_messages > 0 then r.ns_wall *. 1e9 /. float_of_int r.ns_messages
  else Float.nan

let nscale_probe ~quick () =
  let module Implicit = Countq_topology.Implicit in
  let module Event = Countq_simnet.Event_engine in
  let module Load = Countq.Load in
  let sizes =
    if quick then [ 1_000; 10_000 ] else [ 1_000; 10_000; 100_000; 1_000_000 ]
  in
  let stride = 16 in
  let torus_side n = max 3 (int_of_float (Float.round (sqrt (float_of_int n)))) in
  let one topo =
    let n = Implicit.n topo in
    let requests = List.init (n / stride) (fun i -> i * stride) in
    (* One warm-up run, then best-of-3: the big runs are allocation
       dominated, so a clean heap per attempt keeps GC slices out of
       the small sizes' numbers. Stats are per-run (they accumulate
       across runs sharing a recorder). *)
    let run () =
      let stats = Event.fresh_stats () in
      (Load.one_shot ~stats ~topo ~workload:Load.Queuing ~requests (), stats)
    in
    ignore (run ());
    let best = ref infinity in
    let r = ref (run ()) in
    for _ = 1 to 3 do
      Gc.major ();
      let t0 = Unix.gettimeofday () in
      r := run ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    let s, stats = !r in
    let s = ref s in
    {
      ns_family = Implicit.label topo;
      ns_n = n;
      ns_requests = (!s).Load.os_requests;
      ns_completed = (!s).Load.os_completed;
      ns_rounds = (!s).Load.os_rounds;
      ns_messages = (!s).Load.os_messages;
      ns_touched = stats.Event.touched;
      ns_wall = !best;
    }
  in
  List.map (fun n -> one (Implicit.list n)) sizes
  @ List.map
      (fun n ->
        let side = torus_side n in
        one (Implicit.torus ~dims:[ side; side ]))
      sizes

(* ------------------------------------------------------------------ *)
(* Open-loop saturation probe: Poisson arrivals on the implicit list,
   one rate well below counting's ~1 op/round service ceiling and one
   well above it, queuing next to counting. The separation shows up as
   counting's throughput pinning at the ceiling while queuing tracks
   the offered rate; wall time rides along so a slowdown in the
   injection path is caught by the same snapshot.                      *)

type loadgen_row = {
  lg_workload : string;
  lg_rate : float;
  lg_injected : int;
  lg_completed : int;
  lg_throughput : float;
  lg_p95 : float;
  lg_saturated : bool;
  lg_wall : float;
}

let loadgen_probe ~quick () =
  let module Implicit = Countq_topology.Implicit in
  let module Load = Countq.Load in
  let n = if quick then 256 else 1024 in
  let horizon = if quick then 256 else 512 in
  let topo = Implicit.list n in
  let rates = [ 0.25; 2.0 ] in
  List.concat_map
    (fun workload ->
      List.map
        (fun rate ->
          let t0 = Unix.gettimeofday () in
          let s =
            Load.run ~topo ~workload ~arrival:(Load.Poisson rate) ~horizon ()
          in
          let lg_wall = Unix.gettimeofday () -. t0 in
          {
            lg_workload = s.Load.workload;
            lg_rate = rate;
            lg_injected = s.Load.injected;
            lg_completed = s.Load.completed;
            lg_throughput = s.Load.throughput;
            lg_p95 = s.Load.p95;
            lg_saturated = s.Load.saturated;
            lg_wall;
          })
        rates)
    [ Load.Queuing; Load.Counting ]

(* ------------------------------------------------------------------ *)
(* Jobs-scaling probe: the heavy sweep grids regenerated end-to-end at
   increasing pool budgets, cache off so every point really computes.
   Wall times are reported as measured, next to the machine's core
   count — on a 1-core container the curve is honestly flat, and the
   snapshot says so rather than laundering it into a fake speedup.     *)

type scaling_row = {
  sc_jobs : int;
  sc_wall : float;
}

type scaling_probe = {
  sc_cores : int;  (* Domain.recommended_domain_count at probe time *)
  sc_skipped : int list;  (* levels elided as redundant on this machine *)
  sc_rows : scaling_row list;
}

let jobs_scaling_probe ~quick () =
  let specs =
    List.filter_map Experiments.find (if quick then [ "E3"; "E12" ] else heavy_ids)
  in
  let cores = Domain.recommended_domain_count () in
  let levels = if quick then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  (* On a 1-core machine every level above 2 exercises the same single
     lane: keep jobs=1 and one oversubscribed level (the pool-overhead
     sanity point) and record the elided levels instead of spending
     minutes measuring the same thing twice more. *)
  let levels, skipped =
    if cores = 1 then List.partition (fun j -> j <= 2) levels else (levels, [])
  in
  let rows =
    List.map
      (fun j ->
        let pool = Parallel.pool ~jobs:j in
        let ctx = Sweep.ctx ~pool () in
        let t0 = Unix.gettimeofday () in
        ignore
          (Parallel.pool_map pool ~chunk:1
             (fun (s : Experiments.spec) -> s.run ~quick ~ctx ())
             specs);
        { sc_jobs = j; sc_wall = Unix.gettimeofday () -. t0 })
      levels
  in
  { sc_cores = cores; sc_skipped = skipped; sc_rows = rows }

(* ------------------------------------------------------------------ *)
(* Shard-scaling probe: ONE E30-shape run (one-shot queuing on the
   implicit list, every 16th node requesting) partitioned across
   domains by Countq_simnet.Shard at increasing shard counts. The
   summaries must be identical at every level — the merge is
   deterministic, so sharding is purely a wall-clock lever — and the
   wall times are reported as measured next to the core count: on a
   1-core container the curve is honestly flat (the shard data path on
   the calling domain alone), not a laundered speedup.                 *)

type shard_row = {
  sh_shards : int;
  sh_wall : float;
  sh_identical : bool;  (* summary equals the shards=1 summary *)
}

type shard_probe = {
  sh_cores : int;
  sh_n : int;
  sh_messages : int;
  sh_rows : shard_row list;
}

let shard_scaling_probe ~quick () =
  let module Implicit = Countq_topology.Implicit in
  let module Load = Countq.Load in
  let n = if quick then 100_000 else 1_000_000 in
  let stride = 16 in
  let topo = Implicit.list n in
  let requests = List.init (n / stride) (fun i -> i * stride) in
  let levels = if quick then [ 1; 2 ] else [ 1; 2; 4 ] in
  let run shards =
    Load.one_shot ~shards ~topo ~workload:Load.Queuing ~requests ()
  in
  let timed shards =
    ignore (run shards);
    let best = ref infinity in
    let s = ref (run 1) in
    for _ = 1 to 2 do
      Gc.major ();
      let t0 = Unix.gettimeofday () in
      s := run shards;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    (!s, !best)
  in
  let base, base_wall = timed 1 in
  let rows =
    { sh_shards = 1; sh_wall = base_wall; sh_identical = true }
    :: List.map
         (fun k ->
           let s, wall = timed k in
           { sh_shards = k; sh_wall = wall; sh_identical = s = base })
         (List.filter (fun k -> k > 1) levels)
  in
  {
    sh_cores = Domain.recommended_domain_count ();
    sh_n = n;
    sh_messages = base.Load.os_messages;
    sh_rows = rows;
  }

(* ------------------------------------------------------------------ *)
(* Funnel-scaling probe: combining-funnel one-shot counting on
   implicit balanced trees at the adaptive width — the counting side
   of the n-scaling story, next to the shard probe's queuing run. A
   shards=2 rerun is asserted bit-identical at every size.             *)

type funnel_row = {
  fu_n : int;
  fu_arity : int;
  fu_requests : int;
  fu_messages : int;
  fu_rounds : int;
  fu_wall : float;
  fu_identical : bool;
}

let funnel_msgs_per_op r =
  if r.fu_requests > 0 then
    float_of_int r.fu_messages /. float_of_int r.fu_requests
  else Float.nan

let funnel_scaling_probe ~quick () =
  let module Implicit = Countq_topology.Implicit in
  let module Funnel = Countq_counting.Funnel in
  let module Load = Countq.Load in
  let sizes =
    if quick then [ 10_000; 100_000 ] else [ 10_000; 100_000; 1_000_000 ]
  in
  let stride = 16 in
  let one n =
    let k = n / stride in
    let arity = Funnel.adaptive_width ~n ~concurrency:k in
    let topo = Implicit.tree ~arity n in
    let requests = List.init k (fun i -> i * stride) in
    let run shards =
      Load.one_shot ~shards ~topo ~workload:Load.Funnel ~requests ()
    in
    ignore (run 1);
    let best = ref infinity in
    let s = ref (run 1) in
    for _ = 1 to 3 do
      Gc.major ();
      let t0 = Unix.gettimeofday () in
      s := run 1;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    {
      fu_n = n;
      fu_arity = arity;
      fu_requests = (!s).Load.os_requests;
      fu_messages = (!s).Load.os_messages;
      fu_rounds = (!s).Load.os_rounds;
      fu_wall = !best;
      fu_identical = run 2 = !s;
    }
  in
  List.map one sizes

(* ------------------------------------------------------------------ *)
(* Cache-warm probe: the grid experiments run twice against a scratch
   cache directory (cleared first so the cold pass is genuinely cold).
   The warm pass must hit on every point, re-render bit-identical
   tables, and survive the spot check; any disagreement is a regression
   and the harness exits nonzero.                                      *)

type warm_probe = {
  wp_ids : string list;
  wp_cold : float;
  wp_warm : float;
  wp_hits : int;
  wp_misses : int;
  wp_identical : bool;
}

let render_table t = Format.asprintf "%a" Table.pp t

let cache_warm_probe ~quick ~pool () =
  let dir = Filename.concat (Filename.concat "bench" "out") "cache-probe" in
  ignore (Cache.clear ~dir);
  let specs = List.filter_map Experiments.find heavy_ids in
  let pass ~spot_check () =
    let cache = Cache.create ~dir in
    let ctx =
      Sweep.ctx ~pool ~cache ~spot_check ~spot_seed:(fresh_spot_seed ()) ()
    in
    let t0 = Unix.gettimeofday () in
    let rendered =
      List.map
        (fun (s : Experiments.spec) -> render_table (s.run ~quick ~ctx ()))
        specs
    in
    (rendered, Unix.gettimeofday () -. t0, Cache.hits cache, Cache.misses cache)
  in
  let cold, wp_cold, _, _ = pass ~spot_check:false () in
  let warm, wp_warm, wp_hits, wp_misses = pass ~spot_check:true () in
  {
    wp_ids = List.map (fun (s : Experiments.spec) -> s.id) specs;
    wp_cold;
    wp_warm;
    wp_hits;
    wp_misses;
    wp_identical = cold = warm;
  }

(* ------------------------------------------------------------------ *)
(* Explorer probe: the pre-rewrite model checker (verbatim copy below:
   depth-first, whole-configuration structural Hashtbl memo, no
   reduction) against the shipped Explore.run on the same instances.
   The headline number is the configs-per-second ratio; the seed
   explorer also visits more configurations on the same instance
   because it never collapses commuting transmits.                     *)

module Seed_explore = struct
  type ('s, 'm, 'r) config = {
    states : 's array;
    outbox : (int * 'm) list array;
    links : ((int * int) * 'm list) list;
    completions : 'r Engine.completion list;
  }

  let link_get links key =
    match List.assoc_opt key links with Some q -> q | None -> []

  let link_set links key q =
    let without = List.remove_assoc key links in
    if q = [] then without
    else List.sort (fun (a, _) (b, _) -> compare a b) ((key, q) :: without)

  let run ~graph ~protocol ~check ?(max_configs = 1_000_000) () =
    let n = Countq_topology.Graph.n graph in
    let states = Array.init n protocol.Engine.initial_state in
    let outbox = Array.make n [] in
    let completions = ref [] in
    for v = 0 to n - 1 do
      let s, actions = protocol.Engine.on_start ~node:v states.(v) in
      states.(v) <- s;
      List.iter
        (fun action ->
          match action with
          | Engine.Send (dst, msg) -> outbox.(v) <- outbox.(v) @ [ (dst, msg) ]
          | Engine.Complete value ->
              completions :=
                { Engine.node = v; round = 0; value } :: !completions)
        actions
    done;
    let initial = { states; outbox; links = []; completions = !completions } in
    let visited = Hashtbl.create 4096 in
    let explored = ref 0 and terminal = ref 0 in
    let stack = Stack.create () in
    Stack.push initial stack;
    while not (Stack.is_empty stack) do
      let cfg = Stack.pop stack in
      if not (Hashtbl.mem visited cfg) then begin
        Hashtbl.replace visited cfg ();
        incr explored;
        if !explored > max_configs then
          invalid_arg "Seed_explore.run: max_configs exceeded";
        let successors = ref [] in
        for v = 0 to n - 1 do
          match cfg.outbox.(v) with
          | [] -> ()
          | (dst, msg) :: rest ->
              let outbox = Array.copy cfg.outbox in
              outbox.(v) <- rest;
              let key = (v, dst) in
              let links =
                link_set cfg.links key (link_get cfg.links key @ [ msg ])
              in
              successors := { cfg with outbox; links } :: !successors
        done;
        List.iter
          (fun ((src, dst), q) ->
            match q with
            | [] -> ()
            | msg :: rest ->
                let links = link_set cfg.links (src, dst) rest in
                let event_index =
                  List.length cfg.completions + List.length cfg.links
                in
                let s, actions =
                  protocol.Engine.on_receive ~round:event_index ~node:dst
                    ~src msg cfg.states.(dst)
                in
                let states = Array.copy cfg.states in
                states.(dst) <- s;
                let outbox = Array.copy cfg.outbox in
                let completions = ref cfg.completions in
                List.iter
                  (fun action ->
                    match action with
                    | Engine.Send (d, m) -> outbox.(dst) <- outbox.(dst) @ [ (d, m) ]
                    | Engine.Complete value ->
                        completions :=
                          { Engine.node = dst; round = event_index; value }
                          :: !completions)
                  actions;
                successors :=
                  { states; outbox; links; completions = !completions }
                  :: !successors)
          cfg.links;
        match !successors with
        | [] ->
            incr terminal;
            ignore (check (List.rev cfg.completions))
        | succs -> List.iter (fun c -> Stack.push c stack) succs
      end
    done;
    (!explored, !terminal)
end

type explore_row = {
  xp_name : string;
  xp_seed_configs : int;
  xp_seed_s : float;
  xp_new_configs : int;
  xp_new_s : float;
}

let explore_rate configs dt =
  if dt > 0. then float_of_int configs /. dt else Float.nan

let explore_ratio r =
  let seed = explore_rate r.xp_seed_configs r.xp_seed_s in
  let fresh = explore_rate r.xp_new_configs r.xp_new_s in
  if Float.is_nan seed || Float.is_nan fresh || seed <= 0. then Float.nan
  else fresh /. seed

let explore_probe ~quick () =
  let module Explore = Countq_simnet.Explore in
  let module Gen = Countq_topology.Gen in
  let arrow_instance name g requests =
    let tree = Spanning.best_for_arrow g in
    let graph = Tree.to_graph tree in
    let protocol () =
      Countq_arrow.Protocol.one_shot_protocol ~tree ~requests ()
    in
    let check _ = Ok () in
    Gc.major ();
    let t0 = Unix.gettimeofday () in
    let xp_seed_configs, _ =
      Seed_explore.run ~graph ~protocol:(protocol ()) ~check
        ~max_configs:5_000_000 ()
    in
    let xp_seed_s = Unix.gettimeofday () -. t0 in
    (* The checker side runs UNREDUCED so the comparison isolates the
       encoding (canonical identity + digest memo) from the partial-
       order reduction; it still visits fewer configurations because
       the seed's memo keys include the fabricated per-completion round
       stamps, splitting states that differ only in timing. It is also
       fast enough (ms) that a stray major GC slice would dominate a
       single run — take the best of three, each from a clean heap. *)
    let run_checker () =
      match
        Explore.run ~graph ~protocol:(protocol ()) ~check ~reduce:false
          ~max_configs:5_000_000 ()
      with
      | Explore.Exhaustive s | Explore.Budget_exhausted s -> s
    in
    let stats = run_checker () in
    let xp_new_s =
      List.fold_left
        (fun best _ ->
          Gc.major ();
          let t0 = Unix.gettimeofday () in
          ignore (run_checker ());
          min best (Unix.gettimeofday () -. t0))
        infinity [ (); (); () ]
    in
    {
      xp_name = name;
      xp_seed_configs;
      xp_seed_s;
      xp_new_configs = stats.explored;
      xp_new_s;
    }
  in
  (* star-5 is the smallest instance where the seed's structural-memo
     cost dominates measurement noise; quick mode keeps just it. *)
  if quick then
    [ arrow_instance "arrow star-5 {1-4}" (Gen.star 5) [ 1; 2; 3; 4 ] ]
  else
    [
      arrow_instance "arrow star-5 {1-4}" (Gen.star 5) [ 1; 2; 3; 4 ];
      arrow_instance "arrow path-6 all" (Gen.path 6) [ 0; 1; 2; 3; 4; 5 ];
    ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro benchmarks: one Test.make per experiment (its quick
   kernel), plus the hot inner kernels each experiment leans on.       *)

open Bechamel
open Toolkit

let experiment_tests specs =
  List.map
    (fun (s : Experiments.spec) ->
      Test.make ~name:s.id (Staged.stage (fun () -> ignore (s.run ~quick:true ()))))
    specs

let kernel_tests () =
  let module Gen = Countq_topology.Gen in
  let module Rng = Countq_util.Rng in
  let mesh = Gen.square_mesh 16 in
  let mesh_tree = Spanning.best_for_arrow mesh in
  let all_256 = List.init 256 (fun i -> i) in
  let rng = Rng.create 99L in
  let half = Rng.sample rng ~k:128 ~n:256 in
  (* kernel:engine-idle-rounds — a quiescent run with a huge min_rounds
     horizon; measures the idle fast-forward (the reference engine
     spins a million rounds here). *)
  let idle_graph = Gen.path 4 in
  let idle_config = { Engine.default_config with min_rounds = 1_000_000 } in
  let idle_protocol =
    {
      Engine.name = "idle";
      initial_state = (fun _ -> ());
      on_start = (fun ~node:_ s -> (s, []));
      on_receive = (fun ~round:_ ~node:_ ~src:_ () s -> (s, []));
      on_tick = Engine.no_tick;
    }
  in
  (* kernel:sweep-list-512 — the Theta(n^2)-round, one-active-node
     regime the active sets exist for. *)
  let list_512 = Gen.path 512 in
  let list_512_tree = Spanning.best_for_arrow list_512 in
  let all_512 = List.init 512 (fun i -> i) in
  [
    Test.make ~name:"kernel:graph-mesh-16x16"
      (Staged.stage (fun () -> ignore (Gen.square_mesh 16)));
    Test.make ~name:"kernel:spanning-best-for-arrow"
      (Staged.stage (fun () -> ignore (Spanning.best_for_arrow mesh)));
    Test.make ~name:"kernel:arrow-one-shot-256"
      (Staged.stage (fun () ->
           ignore
             (Countq_arrow.Protocol.run_one_shot ~tree:mesh_tree
                ~requests:all_256 ())));
    Test.make ~name:"kernel:nn-tsp-256"
      (Staged.stage (fun () ->
           ignore
             (Countq_tsp.Nn.on_tree mesh_tree ~start:(Tree.root mesh_tree)
                ~requests:half)));
    Test.make ~name:"kernel:central-counting-mesh"
      (Staged.stage (fun () ->
           ignore (Countq_counting.Central.run ~graph:mesh ~requests:half ())));
    Test.make ~name:"kernel:counting-network-mesh"
      (Staged.stage (fun () ->
           ignore (Countq_counting.Network.run ~graph:mesh ~requests:half ())));
    Test.make ~name:"kernel:engine-idle-rounds"
      (Staged.stage (fun () ->
           ignore
             (Engine.run ~graph:idle_graph ~config:idle_config
                ~protocol:idle_protocol ())));
    Test.make ~name:"kernel:sweep-list-512"
      (Staged.stage (fun () ->
           ignore
             (Countq_counting.Sweep.run ~tree:list_512_tree ~requests:all_512 ())));
    Test.make ~name:"kernel:bitonic-push-1k"
      (Staged.stage (fun () ->
           let net = Countq_counting.Bitonic.create ~width:32 in
           let st = Countq_counting.Bitonic.State.create net in
           for t = 0 to 999 do
             ignore (Countq_counting.Bitonic.State.push st ~wire:(t land 31))
           done));
    Test.make ~name:"kernel:lower-bound-sum-4096"
      (Staged.stage (fun () -> ignore (Countq_bounds.Lower.contention_lb 4096)));
  ]

let run_micro specs =
  let tests =
    Test.make_grouped ~name:"countq" ~fmt:"%s/%s"
      (experiment_tests specs @ kernel_tests ())
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  print_endline "== Bechamel micro benchmarks (monotonic clock) ==";
  let clock = Hashtbl.find merged (Measure.label Instance.monotonic_clock) in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some (est :: _) -> (name, est) :: acc
        | _ -> (name, Float.nan) :: acc)
      clock []
  in
  let rows = List.sort compare rows in
  List.iter
    (fun (name, ns) ->
      if ns >= 1e6 then Printf.printf "%-40s %10.3f ms/run\n" name (ns /. 1e6)
      else Printf.printf "%-40s %10.1f ns/run\n" name ns)
    rows;
  rows

(* ------------------------------------------------------------------ *)
(* BENCH_5.json: the machine-readable perf snapshot. No JSON library
   in the dependency set, so it is printed by hand — every name is a
   known identifier and every value a number, but strings are escaped
   anyway for safety. (Countq_util.Json exists now, but the hand
   printer keeps the snapshot's field order stable for diffing.)       *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f = if Float.is_nan f then "null" else Printf.sprintf "%.6g" f

let hit_rate hits misses =
  let total = hits + misses in
  if total = 0 then Float.nan
  else 100. *. float_of_int hits /. float_of_int total

let write_json ~path ~opts ~experiments ~speedup ~overhead ~tel ~dyn ~nscale
    ~loadgen ~churn ~scaling ~sharding ~funnel ~warm ~explore ~kernels =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"countq-bench/10\",\n";
  add "  \"mode\": \"%s\",\n" (if opts.quick then "quick" else "full");
  add "  \"jobs\": %d,\n" opts.jobs;
  add "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  let total_hits = List.fold_left (fun a r -> a + r.tr_hits) 0 experiments in
  let total_misses =
    List.fold_left (fun a r -> a + r.tr_misses) 0 experiments
  in
  add "  \"cache\": {\n";
  add "    \"enabled\": %b,\n" opts.use_cache;
  add "    \"dir\": \"%s\",\n" (json_escape opts.cache_dir);
  add "    \"hits\": %d,\n" total_hits;
  add "    \"misses\": %d,\n" total_misses;
  add "    \"hit_rate_pct\": %s\n"
    (json_float (hit_rate total_hits total_misses));
  add "  },\n";
  add "  \"experiments\": [\n";
  List.iteri
    (fun i r ->
      add
        "    {\"id\": \"%s\", \"wall_seconds\": %s, \"cache_hits\": %d, \
         \"cache_misses\": %d}%s\n"
        (json_escape r.tr_id) (json_float r.tr_wall) r.tr_hits r.tr_misses
        (if i = List.length experiments - 1 then "" else ","))
    experiments;
  add "  ],\n";
  let active = List.fold_left (fun a r -> a +. r.active_s) 0. speedup in
  let reference = List.fold_left (fun a r -> a +. r.reference_s) 0. speedup in
  let ceiling =
    List.fold_left
      (fun acc r -> match acc with Some a when a.sweep_n >= r.sweep_n -> acc | _ -> Some r)
      None speedup
  in
  add "  \"engine_speedup\": {\n";
  add
    "    \"probe\": \"E3 list-counting sweep (token protocol, all nodes \
     requesting) at the pre-active-set ceiling sizes\",\n";
  add "    \"protocol\": \"sweep\",\n";
  (match ceiling with
  | Some r ->
      add "    \"ceiling_n\": %d,\n" r.sweep_n;
      add "    \"speedup_at_ceiling\": %s,\n"
        (json_float
           (if r.active_s > 0. then r.reference_s /. r.active_s else Float.nan))
  | None -> ());
  add "    \"active_seconds\": %s,\n" (json_float active);
  add "    \"reference_seconds\": %s,\n" (json_float reference);
  add "    \"speedup\": %s,\n"
    (json_float (if active > 0. then reference /. active else Float.nan));
  add "    \"sizes\": [\n";
  List.iteri
    (fun i r ->
      add
        "      {\"n\": %d, \"active_seconds\": %s, \"reference_seconds\": %s, \
         \"speedup\": %s}%s\n"
        r.sweep_n (json_float r.active_s) (json_float r.reference_s)
        (json_float
           (if r.active_s > 0. then r.reference_s /. r.active_s else Float.nan))
        (if i = List.length speedup - 1 then "" else ","))
    speedup;
  add "    ]\n";
  add "  },\n";
  let worst =
    List.fold_left
      (fun acc r ->
        match acc with Some a when a.mo_n >= r.mo_n -> acc | _ -> Some r)
      None overhead
  in
  add "  \"metrics_overhead\": {\n";
  add
    "    \"probe\": \"E3 list-counting sweep timed through Engine.run with \
     and without a Metrics recorder attached\",\n";
  (match worst with
  | Some r ->
      add "    \"ceiling_n\": %d,\n" r.mo_n;
      add "    \"overhead_pct_at_ceiling\": %s,\n" (json_float (overhead_pct r))
  | None -> ());
  add "    \"sizes\": [\n";
  List.iteri
    (fun i r ->
      add
        "      {\"n\": %d, \"plain_seconds\": %s, \"metrics_seconds\": %s, \
         \"overhead_pct\": %s}%s\n"
        r.mo_n (json_float r.plain_s) (json_float r.metrics_s)
        (json_float (overhead_pct r))
        (if i = List.length overhead - 1 then "" else ","))
    overhead;
  add "    ]\n";
  add "  },\n";
  let tel_worst =
    List.fold_left
      (fun acc r ->
        match acc with Some a when a.tn_n >= r.tn_n -> acc | _ -> Some r)
      None tel
  in
  add "  \"telemetry_overhead\": {\n";
  add
    "    \"probe\": \"E3 list-counting sweep timed through Engine.run with \
     and without a windowed Telemetry recorder attached\",\n";
  (match tel_worst with
  | Some r ->
      add "    \"ceiling_n\": %d,\n" r.tn_n;
      add "    \"overhead_pct_at_ceiling\": %s,\n"
        (json_float (tel_overhead_pct r))
  | None -> ());
  add "    \"sizes\": [\n";
  List.iteri
    (fun i r ->
      add
        "      {\"n\": %d, \"plain_seconds\": %s, \"telemetry_seconds\": %s, \
         \"overhead_pct\": %s}%s\n"
        r.tn_n (json_float r.tl_plain_s) (json_float r.tl_tel_s)
        (json_float (tel_overhead_pct r))
        (if i = List.length tel - 1 then "" else ","))
    tel;
  add "    ]\n";
  add "  },\n";
  let dyn_worst =
    List.fold_left
      (fun acc r ->
        match acc with Some a when a.dn_n >= r.dn_n -> acc | _ -> Some r)
      None dyn
  in
  add "  \"dynamic_overhead\": {\n";
  add
    "    \"probe\": \"E3 list-counting sweep timed through Engine.run bare \
     and with the identity Dynamic schedule attached (the dynamic machinery's \
     price on a static run)\",\n";
  (match dyn_worst with
  | Some r ->
      add "    \"ceiling_n\": %d,\n" r.dn_n;
      add "    \"overhead_pct_at_ceiling\": %s,\n"
        (json_float (dyn_overhead_pct r))
  | None -> ());
  add "    \"sizes\": [\n";
  List.iteri
    (fun i r ->
      add
        "      {\"n\": %d, \"bare_seconds\": %s, \"dynamic_seconds\": %s, \
         \"overhead_pct\": %s}%s\n"
        r.dn_n (json_float r.bare_s) (json_float r.dyn_s)
        (json_float (dyn_overhead_pct r))
        (if i = List.length dyn - 1 then "" else ","))
    dyn;
  add "    ]\n";
  add "  },\n";
  let ns_worst =
    List.fold_left
      (fun acc r ->
        let x = ns_per_message r in
        if Float.is_nan acc then x
        else if Float.is_nan x then acc
        else max acc x)
      Float.nan nscale
  in
  add "  \"n_scaling\": {\n";
  add
    "    \"probe\": \"one-shot queuing through the event engine on implicit \
     lists and tori, every 16th node requesting, best of 3 runs; \
     near-constant ns_per_message across n means cost tracks the work, not \
     the graph\",\n";
  add "    \"max_ns_per_message\": %s,\n" (json_float ns_worst);
  add "    \"runs\": [\n";
  List.iteri
    (fun i r ->
      add
        "      {\"family\": \"%s\", \"n\": %d, \"requests\": %d, \
         \"completed\": %d, \"rounds\": %d, \"messages\": %d, \"touched\": \
         %d, \"wall_seconds\": %s, \"ns_per_message\": %s}%s\n"
        (json_escape r.ns_family) r.ns_n r.ns_requests r.ns_completed
        r.ns_rounds r.ns_messages r.ns_touched (json_float r.ns_wall)
        (json_float (ns_per_message r))
        (if i = List.length nscale - 1 then "" else ","))
    nscale;
  add "    ]\n";
  add "  },\n";
  add "  \"open_loop\": {\n";
  add
    "    \"probe\": \"Poisson arrivals on the implicit list through the \
     event engine's injection calendar, one rate below counting's ~1 \
     op/round service ceiling and one above; queuing's throughput tracks \
     the offered rate, counting's pins at the ceiling\",\n";
  add "    \"runs\": [\n";
  List.iteri
    (fun i r ->
      add
        "      {\"workload\": \"%s\", \"rate\": %s, \"injected\": %d, \
         \"completed\": %d, \"throughput\": %s, \"p95_delay\": %s, \
         \"saturated\": %b, \"wall_seconds\": %s}%s\n"
        (json_escape r.lg_workload) (json_float r.lg_rate) r.lg_injected
        r.lg_completed (json_float r.lg_throughput) (json_float r.lg_p95)
        r.lg_saturated (json_float r.lg_wall)
        (if i = List.length loadgen - 1 then "" else ","))
    loadgen;
  add "    ]\n";
  add "  },\n";
  add "  \"churn\": {\n";
  add
    "    \"probe\": \"dynamic queue and route-repaired arrow on the square \
     mesh, identity schedule vs seeded link flaps (rate 0.4, epoch 4, seed \
     77); wall time next to the degradation\",\n";
  add "    \"runs\": [\n";
  List.iteri
    (fun i r ->
      add
        "      {\"name\": \"%s\", \"wall_seconds\": %s, \"completed\": %d, \
         \"expected\": %d, \"rounds\": %d, \"messages\": %d}%s\n"
        (json_escape r.ch_name) (json_float r.ch_wall) r.ch_completed
        r.ch_expected r.ch_rounds r.ch_messages
        (if i = List.length churn - 1 then "" else ","))
    churn;
  add "    ]\n";
  add "  },\n";
  let base_wall =
    match scaling.sc_rows with r :: _ -> r.sc_wall | [] -> Float.nan
  in
  add "  \"jobs_scaling\": {\n";
  add
    "    \"probe\": \"heavy sweep grids regenerated end-to-end at increasing \
     pool budgets, cache off; wall times as measured (speedup is relative to \
     jobs=1 on THIS machine - check cores before reading it as a parallelism \
     claim); levels redundant on a 1-core machine are skipped and listed\",\n";
  add "    \"cores\": %d,\n" scaling.sc_cores;
  add "    \"skipped_levels\": [%s],\n"
    (String.concat ", " (List.map string_of_int scaling.sc_skipped));
  add "    \"levels\": [\n";
  List.iteri
    (fun i r ->
      add
        "      {\"jobs\": %d, \"wall_seconds\": %s, \"speedup_vs_jobs1\": \
         %s}%s\n"
        r.sc_jobs (json_float r.sc_wall)
        (json_float
           (if r.sc_wall > 0. then base_wall /. r.sc_wall else Float.nan))
        (if i = List.length scaling.sc_rows - 1 then "" else ","))
    scaling.sc_rows;
  add "    ]\n";
  add "  },\n";
  let shard_base =
    match sharding.sh_rows with r :: _ -> r.sh_wall | [] -> Float.nan
  in
  add "  \"shard_scaling\": {\n";
  add
    "    \"probe\": \"one E30-shape run (one-shot queuing, implicit list, \
     every 16th node requesting) partitioned across domains by \
     Countq_simnet.Shard; summaries are asserted identical at every shard \
     count, wall times as measured (on 1 core the curve is honestly \
     flat)\",\n";
  add "    \"cores\": %d,\n" sharding.sh_cores;
  add "    \"n\": %d,\n" sharding.sh_n;
  add "    \"messages\": %d,\n" sharding.sh_messages;
  add "    \"levels\": [\n";
  List.iteri
    (fun i r ->
      add
        "      {\"shards\": %d, \"wall_seconds\": %s, \"speedup_vs_shards1\": \
         %s, \"identical\": %b}%s\n"
        r.sh_shards (json_float r.sh_wall)
        (json_float
           (if r.sh_wall > 0. then shard_base /. r.sh_wall else Float.nan))
        r.sh_identical
        (if i = List.length sharding.sh_rows - 1 then "" else ","))
    sharding.sh_rows;
  add "    ]\n";
  add "  },\n";
  add "  \"funnel_scaling\": {\n";
  add
    "    \"probe\": \"combining-funnel one-shot counting on implicit balanced \
     trees at the adaptive width, every 16th node requesting; a shards=2 \
     rerun is asserted identical at every size\",\n";
  add "    \"sizes\": [\n";
  List.iteri
    (fun i r ->
      add
        "      {\"n\": %d, \"arity\": %d, \"requests\": %d, \"messages\": %d, \
         \"msgs_per_op\": %s, \"rounds\": %d, \"wall_seconds\": %s, \
         \"identical\": %b}%s\n"
        r.fu_n r.fu_arity r.fu_requests r.fu_messages
        (json_float (funnel_msgs_per_op r))
        r.fu_rounds (json_float r.fu_wall) r.fu_identical
        (if i = List.length funnel - 1 then "" else ","))
    funnel;
  add "    ]\n";
  add "  },\n";
  add "  \"cache_warm\": {\n";
  add
    "    \"probe\": \"grid experiments run cold then warm against a scratch \
     cache; the warm pass must hit every point and re-render bit-identical \
     tables\",\n";
  add "    \"experiments\": [%s],\n"
    (String.concat ", "
       (List.map
          (fun id -> Printf.sprintf "\"%s\"" (json_escape id))
          warm.wp_ids));
  add "    \"cold_seconds\": %s,\n" (json_float warm.wp_cold);
  add "    \"warm_seconds\": %s,\n" (json_float warm.wp_warm);
  add "    \"warm_speedup\": %s,\n"
    (json_float
       (if warm.wp_warm > 0. then warm.wp_cold /. warm.wp_warm else Float.nan));
  add "    \"hits\": %d,\n" warm.wp_hits;
  add "    \"misses\": %d,\n" warm.wp_misses;
  add "    \"hit_rate_pct\": %s,\n"
    (json_float (hit_rate warm.wp_hits warm.wp_misses));
  add "    \"identical\": %b\n" warm.wp_identical;
  add "  },\n";
  let worst_ratio =
    List.fold_left
      (fun acc r ->
        let x = explore_ratio r in
        if Float.is_nan acc then x
        else if Float.is_nan x then acc
        else min acc x)
      Float.nan explore
  in
  add "  \"explore_checker\": {\n";
  add
    "    \"probe\": \"the seed depth-first explorer (whole-config structural \
     memo, no reduction; verbatim copy) vs the shipped canonical-digest + \
     partial-order-reduction checker, same instances, checks disabled\",\n";
  add "    \"min_rate_ratio\": %s,\n" (json_float worst_ratio);
  add "    \"instances\": [\n";
  List.iteri
    (fun i r ->
      add
        "      {\"instance\": \"%s\", \"seed_configs\": %d, \"seed_seconds\": \
         %s, \"seed_configs_per_s\": %s, \"checker_configs\": %d, \
         \"checker_seconds\": %s, \"checker_configs_per_s\": %s, \
         \"rate_ratio\": %s}%s\n"
        (json_escape r.xp_name) r.xp_seed_configs (json_float r.xp_seed_s)
        (json_float (explore_rate r.xp_seed_configs r.xp_seed_s))
        r.xp_new_configs (json_float r.xp_new_s)
        (json_float (explore_rate r.xp_new_configs r.xp_new_s))
        (json_float (explore_ratio r))
        (if i = List.length explore - 1 then "" else ","))
    explore;
  add "    ]\n";
  add "  }";
  (match kernels with
  | None -> add "\n"
  | Some rows ->
      add ",\n  \"kernels\": [\n";
      List.iteri
        (fun i (name, ns) ->
          add "    {\"name\": \"%s\", \"ns_per_run\": %s}%s\n" (json_escape name)
            (json_float ns)
            (if i = List.length rows - 1 then "" else ","))
        rows;
      add "  ]\n");
  add "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "[perf snapshot written to %s]\n%!" path

let main () =
  let opts = parse_args () in
  let specs = selected opts.only in
  Printf.printf
    "countq benchmark harness: reproducing %d paper claims (%s mode, %d \
     domain%s, cache %s)\n\n\
     %!"
    (List.length specs)
    (if opts.quick then "quick" else "full")
    opts.jobs
    (if opts.jobs = 1 then "" else "s")
    (if opts.use_cache then "on" else "off");
  let pool = Parallel.pool ~jobs:opts.jobs in
  let experiments = run_tables ~opts ~pool specs in
  let kernels = if opts.micro then Some (run_micro specs) else None in
  match opts.json_path with
  | None -> ()
  | Some path ->
      let speedup = speedup_probe ~quick:opts.quick () in
      let total_a = List.fold_left (fun a r -> a +. r.active_s) 0. speedup in
      let total_r = List.fold_left (fun a r -> a +. r.reference_s) 0. speedup in
      List.iter
        (fun r ->
          Printf.printf
            "[sweep speedup probe n=%4d: active %8.6fs vs reference %8.6fs \
             -> %.1fx]\n%!"
            r.sweep_n r.active_s r.reference_s
            (if r.active_s > 0. then r.reference_s /. r.active_s else Float.nan))
        speedup;
      Printf.printf
        "[sweep speedup probe aggregate: active %.6fs vs reference %.6fs -> \
         %.1fx]\n%!"
        total_a total_r
        (if total_a > 0. then total_r /. total_a else Float.nan);
      let overhead = metrics_overhead_probe ~quick:opts.quick () in
      List.iter
        (fun r ->
          Printf.printf
            "[metrics overhead probe n=%4d: plain %8.6fs vs metrics-on \
             %8.6fs -> %+.1f%%]\n%!"
            r.mo_n r.plain_s r.metrics_s (overhead_pct r))
        overhead;
      let tel = telemetry_overhead_probe ~quick:opts.quick () in
      List.iter
        (fun r ->
          Printf.printf
            "[telemetry overhead probe n=%4d: plain %8.6fs vs telemetry-on \
             %8.6fs -> %+.1f%%]\n%!"
            r.tn_n r.tl_plain_s r.tl_tel_s (tel_overhead_pct r))
        tel;
      let dyn = dynamic_overhead_probe ~quick:opts.quick () in
      List.iter
        (fun r ->
          Printf.printf
            "[dynamic overhead probe n=%4d: bare %8.6fs vs identity-schedule \
             %8.6fs -> %+.1f%%]\n%!"
            r.dn_n r.bare_s r.dyn_s (dyn_overhead_pct r))
        dyn;
      let nscale = nscale_probe ~quick:opts.quick () in
      List.iter
        (fun r ->
          Printf.printf
            "[n-scaling probe %-14s n=%7d: %8d msgs in %8.4fs -> %6.1f \
             ns/msg]\n%!"
            r.ns_family r.ns_n r.ns_messages r.ns_wall (ns_per_message r))
        nscale;
      let loadgen = loadgen_probe ~quick:opts.quick () in
      List.iter
        (fun r ->
          Printf.printf
            "[open-loop probe %-8s rate %4.2f: %4d/%4d done, thr %5.3f, p95 \
             %6.1f, saturated=%b, %.4fs]\n%!"
            r.lg_workload r.lg_rate r.lg_completed r.lg_injected
            r.lg_throughput r.lg_p95 r.lg_saturated r.lg_wall)
        loadgen;
      let churn = churn_probe ~quick:opts.quick () in
      List.iter
        (fun r ->
          Printf.printf
            "[churn probe %-36s %8.6fs, %d/%d in %d rounds, %d msgs]\n%!"
            r.ch_name r.ch_wall r.ch_completed r.ch_expected r.ch_rounds
            r.ch_messages)
        churn;
      let scaling = jobs_scaling_probe ~quick:opts.quick () in
      List.iter
        (fun r ->
          Printf.printf "[jobs scaling probe jobs=%d: %.2fs (on %d core%s)]\n%!"
            r.sc_jobs r.sc_wall scaling.sc_cores
            (if scaling.sc_cores = 1 then "" else "s"))
        scaling.sc_rows;
      if scaling.sc_skipped <> [] then
        Printf.printf "[jobs scaling probe: skipped jobs=%s (1 core)]\n%!"
          (String.concat "," (List.map string_of_int scaling.sc_skipped));
      let sharding = shard_scaling_probe ~quick:opts.quick () in
      List.iter
        (fun r ->
          Printf.printf
            "[shard scaling probe shards=%d: %.2fs, identical=%b (on %d \
             core%s)]\n%!"
            r.sh_shards r.sh_wall r.sh_identical sharding.sh_cores
            (if sharding.sh_cores = 1 then "" else "s"))
        sharding.sh_rows;
      if List.exists (fun r -> not r.sh_identical) sharding.sh_rows then begin
        prerr_endline
          "shard scaling probe: a sharded summary differs from the \
           sequential one - the deterministic merge is broken";
        exit 1
      end;
      let funnel = funnel_scaling_probe ~quick:opts.quick () in
      List.iter
        (fun r ->
          Printf.printf
            "[funnel scaling probe n=%7d arity=%2d: %8d msgs (%.1f/op), %4d \
             rounds, %.4fs, identical=%b]\n%!"
            r.fu_n r.fu_arity r.fu_messages (funnel_msgs_per_op r) r.fu_rounds
            r.fu_wall r.fu_identical)
        funnel;
      if List.exists (fun r -> not r.fu_identical) funnel then begin
        prerr_endline
          "funnel scaling probe: a sharded summary differs from the \
           sequential one - the deterministic merge is broken";
        exit 1
      end;
      let warm = cache_warm_probe ~quick:opts.quick ~pool () in
      Printf.printf
        "[cache warm probe: cold %.2fs -> warm %.2fs, %d hit(s) %d miss(es), \
         identical=%b]\n%!"
        warm.wp_cold warm.wp_warm warm.wp_hits warm.wp_misses warm.wp_identical;
      if not warm.wp_identical then begin
        prerr_endline
          "cache warm probe: warm tables differ from cold tables - cached \
           results are wrong";
        exit 1
      end;
      let explore = explore_probe ~quick:opts.quick () in
      List.iter
        (fun r ->
          Printf.printf
            "[explore probe %s: seed %d cfgs %.3fs (%.0f/s) vs checker %d \
             cfgs %.3fs (%.0f/s) -> %.0fx]\n%!"
            r.xp_name r.xp_seed_configs r.xp_seed_s
            (explore_rate r.xp_seed_configs r.xp_seed_s)
            r.xp_new_configs r.xp_new_s
            (explore_rate r.xp_new_configs r.xp_new_s)
            (explore_ratio r))
        explore;
      write_json ~path ~opts ~experiments ~speedup ~overhead ~tel ~dyn ~nscale
        ~loadgen ~churn ~scaling ~sharding ~funnel ~warm ~explore ~kernels

let () =
  try main ()
  with Sweep.Cache_mismatch _ as e ->
    Printf.eprintf "%s\n" (Printexc.to_string e);
    exit 1
