(* Tests for the distributed counting-network embedding. *)

module Graph = Countq_topology.Graph
module Gen = Countq_topology.Gen
module Network = Countq_counting.Network
module Bitonic = Countq_counting.Bitonic
module Counts = Countq_counting.Counts

let check_valid msg (r : Counts.run_result) =
  match r.valid with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Format.asprintf "%s: %a" msg Counts.pp_error e)

let test_default_width () =
  Alcotest.(check int) "n=1" 2 (Network.default_width 1);
  Alcotest.(check int) "n=2" 2 (Network.default_width 2);
  Alcotest.(check int) "n=5" 4 (Network.default_width 5);
  Alcotest.(check int) "n=64" 64 (Network.default_width 64);
  Alcotest.(check int) "n=1000 capped" 64 (Network.default_width 1000)

let test_all_request_complete_graph () =
  let n = 32 in
  let r = Network.run ~graph:(Gen.complete n) ~requests:(Helpers.all_nodes n) () in
  check_valid "K32 all" r

let test_widths_sweep () =
  let n = 24 in
  let g = Gen.complete n in
  List.iter
    (fun width ->
      let r = Network.run ~width ~graph:g ~requests:(Helpers.all_nodes n) () in
      check_valid (Printf.sprintf "width %d" width) r)
    [ 1; 2; 4; 8; 16 ]

let test_on_sparse_topologies () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let r = Network.run ~graph:g ~requests:(Helpers.all_nodes n) () in
      check_valid name r)
    [
      ("path-20", Gen.path 20);
      ("mesh-5x5", Gen.square_mesh 5);
      ("star-16", Gen.star 16);
      ("tree", Gen.perfect_tree ~arity:2 ~height:3);
    ]

let test_subset_requests () =
  let g = Gen.square_mesh 6 in
  let r = Network.run ~graph:g ~requests:[ 1; 5; 17; 30; 35 ] () in
  check_valid "subset" r;
  Alcotest.(check int) "five outcomes" 5 (List.length r.outcomes)

let test_wider_network_cuts_contention () =
  (* More wires = less serialisation at the output counters: with
     enough requesters, w=16 beats w=1 (a central counter in disguise)
     despite its deeper pipeline. *)
  let n = 64 in
  let g = Gen.complete n in
  let requests = Helpers.all_nodes n in
  let narrow = Network.run ~width:1 ~graph:g ~requests () in
  let wide = Network.run ~width:16 ~graph:g ~requests () in
  check_valid "narrow" narrow;
  check_valid "wide" wide;
  Alcotest.(check bool)
    (Printf.sprintf "wide (%d) < narrow (%d) total delay" wide.total_delay
       narrow.total_delay)
    true
    (wide.total_delay < narrow.total_delay)

let test_custom_placement () =
  (* Hosting everything on node 0 must still count correctly (it just
     serialises). *)
  let n = 12 in
  let g = Gen.complete n in
  let placement =
    { Network.balancer_host = (fun _ -> 0); output_host = (fun _ -> 0) }
  in
  let r = Network.run ~width:4 ~placement ~graph:g ~requests:(Helpers.all_nodes n) () in
  check_valid "all on node 0" r

let test_rejects_bad_requests () =
  Alcotest.check_raises "range"
    (Invalid_argument "Network.run: request out of range") (fun () ->
      ignore (Network.run ~graph:(Gen.path 3) ~requests:[ 9 ] ()))

let test_long_lived_counts_exact () =
  let g = Gen.complete 16 in
  let rng = Helpers.rng () in
  let arrivals =
    List.init 40 (fun i ->
        (Countq_util.Rng.below rng 16, i / 2 + Countq_util.Rng.below rng 3))
  in
  let r = Network.run_long_lived ~width:8 ~graph:g ~arrivals () in
  Alcotest.(check int) "all ops counted" 40 (List.length r.outcomes);
  Alcotest.(check bool) "counts exactly 1..m" true r.counts_exact;
  List.iter
    (fun (o : Network.long_lived_outcome) ->
      Alcotest.(check bool) "delay non-negative" true (o.delay >= 0))
    r.outcomes

let test_long_lived_repeat_issuer () =
  let g = Gen.square_mesh 4 in
  let arrivals = [ (3, 0); (3, 0); (3, 5); (9, 2) ] in
  let r = Network.run_long_lived ~width:4 ~graph:g ~arrivals () in
  Alcotest.(check int) "four ops" 4 (List.length r.outcomes);
  Alcotest.(check bool) "counts exact" true r.counts_exact;
  let seqs =
    List.sort compare
      (List.filter_map
         (fun (o : Network.long_lived_outcome) ->
           if o.node = 3 then Some o.seq else None)
         r.outcomes)
  in
  Alcotest.(check (list int)) "seq numbers" [ 0; 1; 2 ] seqs

let test_round_robin_placement_properties () =
  let net = Bitonic.create ~width:8 in
  let n = 10 in
  let p = Network.round_robin_placement ~net ~n ~seed:3L in
  for id = 0 to Bitonic.size net - 1 do
    let h = p.balancer_host id in
    Alcotest.(check bool) "host in range" true (h >= 0 && h < n)
  done;
  (* Each output wire is hosted with the balancer that feeds it, so the
     final hop is local. *)
  Array.iter
    (fun (b : Bitonic.balancer) ->
      let check_out = function
        | Bitonic.To_output w ->
            Alcotest.(check int) "output co-hosted" (p.balancer_host b.id)
              (p.output_host w)
        | Bitonic.To_balancer _ -> ()
      in
      check_out b.succ_top;
      check_out b.succ_bot)
    (Bitonic.balancers net)

let prop_long_lived_counts_exact =
  QCheck2.Test.make ~name:"long-lived network counts are exactly {1..m}"
    ~count:40
    QCheck2.Gen.(pair (int_range 2 5) (int_range 0 1_000_000))
    (fun (side, seed) ->
      let g = Gen.square_mesh side in
      let n = side * side in
      let rng = Countq_util.Rng.create (Int64.of_int seed) in
      let m = Countq_util.Rng.below rng 30 in
      let arrivals =
        List.init m (fun _ ->
            (Countq_util.Rng.below rng n, Countq_util.Rng.below rng 20))
      in
      let r = Network.run_long_lived ~width:4 ~graph:g ~arrivals () in
      r.counts_exact && List.length r.outcomes = m)

let prop_network_spec =
  QCheck2.Test.make ~name:"counting network meets the counting spec"
    ~count:80 ~print:Helpers.instance_print Helpers.instance_gen
    (fun (_, g, requests) ->
      let r = Network.run ~graph:g ~requests () in
      Result.is_ok r.valid)

let prop_network_spec_small_widths =
  QCheck2.Test.make ~name:"counting network valid for every width" ~count:50
    ~print:Helpers.instance_print Helpers.nonempty_instance_gen
    (fun (_, g, requests) ->
      List.for_all
        (fun width ->
          let r = Network.run ~width ~graph:g ~requests () in
          Result.is_ok r.valid)
        [ 1; 2; 8 ])

let suite =
  [
    Alcotest.test_case "default width" `Quick test_default_width;
    Alcotest.test_case "K32 all request" `Quick test_all_request_complete_graph;
    Alcotest.test_case "width sweep" `Quick test_widths_sweep;
    Alcotest.test_case "sparse topologies" `Quick test_on_sparse_topologies;
    Alcotest.test_case "subset requests" `Quick test_subset_requests;
    Alcotest.test_case "width cuts contention" `Quick
      test_wider_network_cuts_contention;
    Alcotest.test_case "custom placement" `Quick test_custom_placement;
    Alcotest.test_case "bad requests" `Quick test_rejects_bad_requests;
    Alcotest.test_case "round-robin placement" `Quick
      test_round_robin_placement_properties;
    Alcotest.test_case "long-lived counts exact" `Quick
      test_long_lived_counts_exact;
    Alcotest.test_case "long-lived repeat issuer" `Quick
      test_long_lived_repeat_issuer;
    Helpers.qcheck prop_long_lived_counts_exact;
    Helpers.qcheck prop_network_spec;
    Helpers.qcheck prop_network_spec_small_widths;
  ]
