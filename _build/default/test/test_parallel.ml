(* Tests for the domain-based parallel map. *)

module Parallel = Countq_util.Parallel

let test_matches_sequential () =
  let xs = List.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "same as List.map" (List.map f xs)
    (Parallel.map ~jobs:4 f xs)

let test_order_preserved_under_skew () =
  (* Uneven work must not reorder results. *)
  let xs = List.init 40 (fun i -> i) in
  let f x =
    let spin = if x mod 7 = 0 then 200_000 else 10 in
    let acc = ref 0 in
    for i = 1 to spin do
      acc := !acc + (i mod 3)
    done;
    ignore !acc;
    x * 2
  in
  Alcotest.(check (list int)) "ordered" (List.map f xs) (Parallel.map ~jobs:4 f xs)

let test_jobs_one_sequential () =
  Alcotest.(check (list int)) "jobs=1" [ 2; 4; 6 ]
    (Parallel.map ~jobs:1 (fun x -> 2 * x) [ 1; 2; 3 ])

let test_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Parallel.map ~jobs:8 (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 9 ]
    (Parallel.map ~jobs:8 (fun x -> x) [ 9 ])

let test_more_jobs_than_items () =
  Alcotest.(check (list int)) "jobs > items" [ 1; 2 ]
    (Parallel.map ~jobs:16 (fun x -> x) [ 1; 2 ])

let test_exception_propagates () =
  Alcotest.check_raises "re-raised" (Failure "boom") (fun () ->
      ignore
        (Parallel.map ~jobs:4
           (fun x -> if x = 5 then failwith "boom" else x)
           (List.init 10 (fun i -> i))))

let test_invalid_jobs () =
  Alcotest.check_raises "jobs=0" (Invalid_argument "Parallel.map: jobs must be >= 1")
    (fun () -> ignore (Parallel.map ~jobs:0 (fun x -> x) [ 1 ]))

let test_recommended_positive () =
  Alcotest.(check bool) "at least 1" true (Parallel.recommended_jobs () >= 1)

let prop_equivalent_to_map =
  QCheck2.Test.make ~name:"parallel map = sequential map" ~count:50
    QCheck2.Gen.(pair (list (int_range 0 1000)) (int_range 1 8))
    (fun (xs, jobs) ->
      Parallel.map ~jobs (fun x -> (3 * x) - 7) xs
      = List.map (fun x -> (3 * x) - 7) xs)

let suite =
  [
    Alcotest.test_case "matches sequential" `Quick test_matches_sequential;
    Alcotest.test_case "order under skew" `Quick test_order_preserved_under_skew;
    Alcotest.test_case "jobs=1" `Quick test_jobs_one_sequential;
    Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
    Alcotest.test_case "more jobs than items" `Quick test_more_jobs_than_items;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "invalid jobs" `Quick test_invalid_jobs;
    Alcotest.test_case "recommended jobs" `Quick test_recommended_positive;
    Helpers.qcheck prop_equivalent_to_map;
  ]
