(* Tests for the queuing total-order validator. *)

module Types = Countq_arrow.Types
module Order = Countq_arrow.Order

let op origin = { Types.origin; seq = 0 }

let outcome ?(round = 1) ~pred origin =
  { Types.op = op origin; pred; found_at = 0; round }

let test_empty_chain () =
  Alcotest.(check bool) "empty is valid" true (Order.is_valid []);
  (match Order.chain [] with
  | Ok [] -> ()
  | _ -> Alcotest.fail "empty chain should be Ok []")

let test_singleton () =
  let outcomes = [ outcome ~pred:Types.Init 4 ] in
  match Order.chain outcomes with
  | Ok [ o ] -> Alcotest.(check int) "origin" 4 o.origin
  | _ -> Alcotest.fail "singleton chain"

let test_valid_chain_order () =
  let outcomes =
    [
      outcome ~pred:(Types.Op (op 2)) 7;
      outcome ~pred:Types.Init 2;
      outcome ~pred:(Types.Op (op 7)) 5;
    ]
  in
  match Order.chain outcomes with
  | Ok ops ->
      Alcotest.(check (list int)) "order" [ 2; 7; 5 ]
        (List.map (fun (o : Types.op) -> o.origin) ops)
  | Error e -> Alcotest.fail (Format.asprintf "%a" Order.pp_error e)

let test_duplicate_op () =
  let outcomes = [ outcome ~pred:Types.Init 1; outcome ~pred:(Types.Op (op 1)) 1 ] in
  match Order.chain outcomes with
  | Error (Order.Duplicate_op o) -> Alcotest.(check int) "dup" 1 o.origin
  | _ -> Alcotest.fail "expected Duplicate_op"

let test_duplicate_pred () =
  let outcomes =
    [
      outcome ~pred:Types.Init 1;
      outcome ~pred:(Types.Op (op 1)) 2;
      outcome ~pred:(Types.Op (op 1)) 3;
    ]
  in
  match Order.chain outcomes with
  | Error (Order.Duplicate_pred _) -> ()
  | _ -> Alcotest.fail "expected Duplicate_pred"

let test_two_heads () =
  let outcomes = [ outcome ~pred:Types.Init 1; outcome ~pred:Types.Init 2 ] in
  match Order.chain outcomes with
  | Error (Order.Duplicate_pred Types.Init) -> ()
  | _ -> Alcotest.fail "expected duplicate Init"

let test_missing_pred () =
  let outcomes = [ outcome ~pred:(Types.Op (op 9)) 1 ] in
  match Order.chain outcomes with
  | Error (Order.Missing_op o) -> Alcotest.(check int) "missing" 9 o.origin
  | _ -> Alcotest.fail "expected Missing_op"

let test_no_head () =
  (* A 2-cycle: 1 <- 2 and 2 <- 1. *)
  let outcomes =
    [ outcome ~pred:(Types.Op (op 2)) 1; outcome ~pred:(Types.Op (op 1)) 2 ]
  in
  match Order.chain outcomes with
  | Error Order.No_head -> ()
  | _ -> Alcotest.fail "expected No_head"

let test_broken_chain () =
  (* Head plus a separate 2-cycle. *)
  let outcomes =
    [
      outcome ~pred:Types.Init 0;
      outcome ~pred:(Types.Op (op 2)) 1;
      outcome ~pred:(Types.Op (op 1)) 2;
    ]
  in
  match Order.chain outcomes with
  | Error (Order.Broken_chain { covered; total }) ->
      Alcotest.(check int) "covered" 1 covered;
      Alcotest.(check int) "total" 3 total
  | _ -> Alcotest.fail "expected Broken_chain"

let test_delay_metrics () =
  let outcomes =
    [
      outcome ~round:5 ~pred:Types.Init 1;
      outcome ~round:2 ~pred:(Types.Op (op 1)) 2;
    ]
  in
  Alcotest.(check int) "total" 7 (Order.total_delay outcomes);
  Alcotest.(check int) "max" 5 (Order.max_delay outcomes)

let prop_random_permutation_chains =
  (* Build a random valid chain and check the validator reconstructs it. *)
  QCheck2.Test.make ~name:"validator reconstructs arbitrary valid chains"
    ~count:100
    QCheck2.Gen.(pair (int_range 1 30) (int_range 0 1_000_000))
    (fun (k, seed) ->
      let rng = Countq_util.Rng.create (Int64.of_int seed) in
      let perm = Countq_util.Rng.permutation rng k in
      let outcomes =
        List.init k (fun i ->
            let pred =
              if i = 0 then Types.Init else Types.Op (op perm.(i - 1))
            in
            outcome ~pred perm.(i))
      in
      match Order.chain outcomes with
      | Ok ops ->
          List.map (fun (o : Types.op) -> o.origin) ops
          = Array.to_list perm
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "empty chain" `Quick test_empty_chain;
    Alcotest.test_case "singleton" `Quick test_singleton;
    Alcotest.test_case "valid chain order" `Quick test_valid_chain_order;
    Alcotest.test_case "duplicate op" `Quick test_duplicate_op;
    Alcotest.test_case "duplicate pred" `Quick test_duplicate_pred;
    Alcotest.test_case "two heads" `Quick test_two_heads;
    Alcotest.test_case "missing pred" `Quick test_missing_pred;
    Alcotest.test_case "no head" `Quick test_no_head;
    Alcotest.test_case "broken chain" `Quick test_broken_chain;
    Alcotest.test_case "delay metrics" `Quick test_delay_metrics;
    Helpers.qcheck prop_random_permutation_chains;
  ]
