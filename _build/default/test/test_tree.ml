(* Tests for Countq_topology.Tree: construction, LCA, distance,
   next-hop, subtree structure. *)

module Graph = Countq_topology.Graph
module Gen = Countq_topology.Gen
module Bfs = Countq_topology.Bfs
module Tree = Countq_topology.Tree
module Spanning = Countq_topology.Spanning

(*      0
       / \
      1   2
     / \    \
    3   4    5
        |
        6          *)
let sample () =
  Tree.of_parents ~root:0 [| 0; 0; 0; 1; 1; 2; 4 |]

let test_basic_structure () =
  let t = sample () in
  Alcotest.(check int) "n" 7 (Tree.n t);
  Alcotest.(check int) "root" 0 (Tree.root t);
  Alcotest.(check int) "parent 6" 4 (Tree.parent t 6);
  Alcotest.(check int) "parent root" 0 (Tree.parent t 0);
  Alcotest.(check (array int)) "children 1" [| 3; 4 |] (Tree.children t 1);
  Alcotest.(check int) "height" 3 (Tree.height t)

let test_depths () =
  let t = sample () in
  Alcotest.(check int) "depth root" 0 (Tree.depth t 0);
  Alcotest.(check int) "depth 5" 2 (Tree.depth t 5);
  Alcotest.(check int) "depth 6" 3 (Tree.depth t 6)

let test_degree () =
  let t = sample () in
  Alcotest.(check int) "root degree" 2 (Tree.degree t 0);
  Alcotest.(check int) "node 1 degree" 3 (Tree.degree t 1);
  Alcotest.(check int) "leaf degree" 1 (Tree.degree t 3);
  Alcotest.(check int) "max degree" 3 (Tree.max_degree t)

let test_lca () =
  let t = sample () in
  Alcotest.(check int) "lca 3 6" 1 (Tree.lca t 3 6);
  Alcotest.(check int) "lca 3 5" 0 (Tree.lca t 3 5);
  Alcotest.(check int) "lca 4 6" 4 (Tree.lca t 4 6);
  Alcotest.(check int) "lca self" 5 (Tree.lca t 5 5)

let test_dist () =
  let t = sample () in
  Alcotest.(check int) "dist 3 6" 3 (Tree.dist t 3 6);
  Alcotest.(check int) "dist 6 5" 5 (Tree.dist t 6 5);
  Alcotest.(check int) "dist self" 0 (Tree.dist t 2 2)

let test_leaves () =
  let t = sample () in
  Alcotest.(check (list int)) "leaves" [ 3; 5; 6 ] (Tree.leaves t);
  Alcotest.(check bool) "is_leaf" true (Tree.is_leaf t 3);
  Alcotest.(check bool) "internal" false (Tree.is_leaf t 4)

let test_subtree_size () =
  let t = sample () in
  Alcotest.(check int) "whole" 7 (Tree.subtree_size t 0);
  Alcotest.(check int) "node 1" 4 (Tree.subtree_size t 1);
  Alcotest.(check int) "leaf" 1 (Tree.subtree_size t 5)

let test_dfs_order () =
  let t = sample () in
  Alcotest.(check (array int)) "preorder" [| 0; 1; 3; 4; 6; 2; 5 |]
    (Tree.dfs_order t)

let test_path () =
  let t = sample () in
  Alcotest.(check (list int)) "3 to 6" [ 3; 1; 4; 6 ] (Tree.path t 3 6);
  Alcotest.(check (list int)) "6 to 5" [ 6; 4; 1; 0; 2; 5 ] (Tree.path t 6 5);
  Alcotest.(check (list int)) "self" [ 2 ] (Tree.path t 2 2)

let test_next_hop () =
  let t = sample () in
  Alcotest.(check int) "up" 1 (Tree.next_hop t 3 5);
  Alcotest.(check int) "down into subtree" 1 (Tree.next_hop t 0 6);
  Alcotest.(check int) "down deeper" 4 (Tree.next_hop t 1 6);
  Alcotest.(check int) "self" 4 (Tree.next_hop t 4 4)

let test_to_graph_roundtrip () =
  let t = sample () in
  let g = Tree.to_graph t in
  Alcotest.(check int) "m" 6 (Graph.m g);
  let t' = Tree.of_graph g ~root:0 in
  Alcotest.(check (array int)) "same preorder" (Tree.dfs_order t)
    (Tree.dfs_order t')

let test_of_parents_validation () =
  Alcotest.check_raises "bad root"
    (Invalid_argument "Tree.of_parents: parent.(root) must be root") (fun () ->
      ignore (Tree.of_parents ~root:0 [| 1; 1 |]));
  Alcotest.check_raises "cycle"
    (Invalid_argument "Tree.of_parents: cycle in parent array") (fun () ->
      ignore (Tree.of_parents ~root:0 [| 0; 2; 1 |]));
  Alcotest.check_raises "second root"
    (Invalid_argument "Tree.of_parents: multiple roots") (fun () ->
      ignore (Tree.of_parents ~root:0 [| 0; 1; 0 |]))

let test_of_graph_not_tree () =
  Alcotest.check_raises "cycle graph"
    (Invalid_argument "Tree.of_graph: not a tree (m <> n-1)") (fun () ->
      ignore (Tree.of_graph (Gen.cycle 4) ~root:0))

let test_deep_list_tree () =
  (* Guard against stack overflows on degenerate deep trees. *)
  let n = 50_000 in
  let parent = Array.init n (fun v -> max 0 (v - 1)) in
  let t = Tree.of_parents ~root:0 parent in
  Alcotest.(check int) "height" (n - 1) (Tree.height t);
  Alcotest.(check int) "deep dist" (n - 1) (Tree.dist t 0 (n - 1));
  Alcotest.(check int) "deep lca" 0 (Tree.lca t 0 (n - 1))

let prop_dist_matches_bfs =
  QCheck2.Test.make ~name:"tree dist = BFS distance on the tree graph"
    ~count:60
    QCheck2.Gen.(pair (int_range 2 60) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let g =
        Gen.random_tree (Countq_util.Rng.create (Int64.of_int seed)) n
      in
      let t = Tree.of_graph g ~root:0 in
      let ok = ref true in
      let d0 = Bfs.distances g 0 in
      let dm = Bfs.distances g (n / 2) in
      for v = 0 to n - 1 do
        if Tree.dist t 0 v <> d0.(v) then ok := false;
        if Tree.dist t (n / 2) v <> dm.(v) then ok := false
      done;
      !ok)

let prop_next_hop_progress =
  QCheck2.Test.make ~name:"next_hop strictly decreases tree distance"
    ~count:60
    QCheck2.Gen.(pair (int_range 2 50) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let g =
        Gen.random_tree (Countq_util.Rng.create (Int64.of_int seed)) n
      in
      let t = Tree.of_graph g ~root:0 in
      let ok = ref true in
      for v = 0 to n - 1 do
        for dst = 0 to n - 1 do
          if v <> dst then begin
            let h = Tree.next_hop t v dst in
            if Tree.dist t h dst <> Tree.dist t v dst - 1 then ok := false
          end
        done
      done;
      !ok)

let prop_spanning_trees_span =
  QCheck2.Test.make ~name:"BFS/DFS spanning trees span with true distances"
    ~count:60 ~print:Helpers.topology_print Helpers.topology_gen
    (fun (_, g) ->
      let n = Graph.n g in
      let tb = Spanning.bfs g ~root:0 in
      let td = Spanning.dfs g ~root:0 in
      Tree.n tb = n && Tree.n td = n
      && (* BFS tree preserves root distances. *)
      Array.for_all2 ( = )
        (Array.init n (fun v -> Tree.depth tb v))
        (Bfs.distances g 0))

let suite =
  [
    Alcotest.test_case "basic structure" `Quick test_basic_structure;
    Alcotest.test_case "depths" `Quick test_depths;
    Alcotest.test_case "degree" `Quick test_degree;
    Alcotest.test_case "lca" `Quick test_lca;
    Alcotest.test_case "dist" `Quick test_dist;
    Alcotest.test_case "leaves" `Quick test_leaves;
    Alcotest.test_case "subtree size" `Quick test_subtree_size;
    Alcotest.test_case "dfs order" `Quick test_dfs_order;
    Alcotest.test_case "path" `Quick test_path;
    Alcotest.test_case "next hop" `Quick test_next_hop;
    Alcotest.test_case "to_graph roundtrip" `Quick test_to_graph_roundtrip;
    Alcotest.test_case "of_parents validation" `Quick test_of_parents_validation;
    Alcotest.test_case "of_graph not tree" `Quick test_of_graph_not_tree;
    Alcotest.test_case "deep list tree" `Quick test_deep_list_tree;
    Helpers.qcheck prop_dist_matches_bfs;
    Helpers.qcheck prop_next_hop_progress;
    Helpers.qcheck prop_spanning_trees_span;
  ]
