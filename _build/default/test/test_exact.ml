(* Tests for the Held-Karp exact TSP path solver and the NN ratio. *)

module Gen = Countq_topology.Gen
module Tree = Countq_topology.Tree
module Nn = Countq_tsp.Nn
module Exact = Countq_tsp.Exact
module Tbounds = Countq_tsp.Tbounds

let test_empty () =
  Alcotest.(check int) "empty costs 0" 0
    (Exact.min_path ~dist:(fun _ _ -> 1) ~start:0 ~requests:[])

let test_single () =
  let dist u v = abs (u - v) in
  Alcotest.(check int) "single = distance" 7
    (Exact.min_path ~dist ~start:3 ~requests:[ 10 ])

let test_line_is_one_sweep () =
  (* From an endpoint the optimum visits in order. *)
  let dist u v = abs (u - v) in
  Alcotest.(check int) "sweep" 9
    (Exact.min_path ~dist ~start:0 ~requests:[ 2; 9; 5; 7 ])

let test_line_from_middle () =
  (* start 5, requests 3 and 9: best is 2 + 6 = 8 (left first). *)
  let dist u v = abs (u - v) in
  Alcotest.(check int) "middle" 8
    (Exact.min_path ~dist ~start:5 ~requests:[ 3; 9 ])

let test_too_many_requests () =
  Alcotest.check_raises "23 requests"
    (Invalid_argument "Exact.min_path: too many requests (> 22)") (fun () ->
      ignore
        (Exact.min_path
           ~dist:(fun _ _ -> 1)
           ~start:0
           ~requests:(List.init 23 (fun i -> i))))

let test_tree_and_graph_agree () =
  let rng = Helpers.rng () in
  for _ = 1 to 5 do
    let g = Gen.random_tree rng 20 in
    let tree = Tree.of_graph g ~root:0 in
    let requests = Countq_util.Rng.sample rng ~k:8 ~n:20 in
    Alcotest.(check int) "same optimum"
      (Exact.min_path_on_tree tree ~start:0 ~requests)
      (Exact.min_path_on_graph g ~start:0 ~requests)
  done

let test_nn_never_beats_optimal () =
  let rng = Helpers.rng () in
  for _ = 1 to 20 do
    let n = 15 + Countq_util.Rng.below rng 15 in
    let g = Gen.random_tree rng n in
    let tree = Tree.of_graph g ~root:0 in
    let k = 3 + Countq_util.Rng.below rng 8 in
    let requests = Countq_util.Rng.sample rng ~k ~n in
    let nn = (Nn.on_tree tree ~start:0 ~requests).cost in
    let opt = Exact.min_path_on_tree tree ~start:0 ~requests in
    Alcotest.(check bool) "nn >= opt" true (nn >= opt)
  done

let test_nn_ratio_bounds () =
  let dist u v = abs (u - v) in
  let r = Exact.nn_ratio ~dist ~start:0 ~requests:[ 5; 2; 9 ] in
  Alcotest.(check bool) "ratio >= 1" true (r >= 1.0)

let prop_rosenkrantz_guarantee =
  QCheck2.Test.make
    ~name:"NN tours respect the Rosenkrantz log k guarantee on trees"
    ~count:60
    QCheck2.Gen.(pair (int_range 8 30) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Countq_util.Rng.create (Int64.of_int seed) in
      let g = Gen.random_tree rng n in
      let tree = Tree.of_graph g ~root:0 in
      let k = min 10 (1 + Countq_util.Rng.below rng n) in
      let requests = Countq_util.Rng.sample rng ~k ~n in
      let nn = (Nn.on_tree tree ~start:0 ~requests).cost in
      let opt = Exact.min_path_on_tree tree ~start:0 ~requests in
      opt = 0
      || float_of_int nn /. float_of_int opt
         <= Tbounds.rosenkrantz_ratio k +. 1e-9)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "single" `Quick test_single;
    Alcotest.test_case "line sweep" `Quick test_line_is_one_sweep;
    Alcotest.test_case "line from middle" `Quick test_line_from_middle;
    Alcotest.test_case "too many requests" `Quick test_too_many_requests;
    Alcotest.test_case "tree and graph agree" `Quick test_tree_and_graph_agree;
    Alcotest.test_case "nn >= optimal" `Quick test_nn_never_beats_optimal;
    Alcotest.test_case "nn ratio" `Quick test_nn_ratio_bounds;
    Helpers.qcheck prop_rosenkrantz_guarantee;
  ]
