(* Tests for Countq_topology.Bfs: distances, diameter, paths, routing
   tables. *)

module Graph = Countq_topology.Graph
module Gen = Countq_topology.Gen
module Bfs = Countq_topology.Bfs

let test_distances_path () =
  let g = Gen.path 6 in
  Alcotest.(check (array int)) "from 0" [| 0; 1; 2; 3; 4; 5 |] (Bfs.distances g 0);
  Alcotest.(check (array int)) "from 3" [| 3; 2; 1; 0; 1; 2 |] (Bfs.distances g 3)

let test_distances_disconnected () =
  let g = Graph.create ~n:4 [ (0, 1); (2, 3) ] in
  let d = Bfs.distances g 0 in
  Alcotest.(check int) "reachable" 1 d.(1);
  Alcotest.(check int) "unreachable" (-1) d.(2)

let test_distance_pair () =
  let g = Gen.square_mesh 4 in
  Alcotest.(check int) "corner to corner" 6 (Bfs.distance g 0 15)

let test_eccentricity () =
  let g = Gen.path 7 in
  Alcotest.(check int) "middle" 3 (Bfs.eccentricity g 3);
  Alcotest.(check int) "end" 6 (Bfs.eccentricity g 0)

let test_eccentricity_disconnected () =
  let g = Graph.create ~n:3 [ (0, 1) ] in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Bfs.eccentricity: disconnected graph") (fun () ->
      ignore (Bfs.eccentricity g 0))

let test_diameter_families () =
  Alcotest.(check int) "K7" 1 (Bfs.diameter (Gen.complete 7));
  Alcotest.(check int) "path 12" 11 (Bfs.diameter (Gen.path 12));
  Alcotest.(check int) "hypercube 5" 5 (Bfs.diameter (Gen.hypercube 5));
  Alcotest.(check int) "star 20" 2 (Bfs.diameter (Gen.star 20))

let test_diameter_estimate_on_trees_exact () =
  let rng = Helpers.rng () in
  for _ = 1 to 10 do
    let g = Gen.random_tree rng 60 in
    Alcotest.(check int) "double sweep exact on trees" (Bfs.diameter g)
      (Bfs.diameter_estimate g ~seed:1L ~rounds:1)
  done

let test_diameter_estimate_lower_bound () =
  let g = Gen.square_mesh 6 in
  let est = Bfs.diameter_estimate g ~seed:3L ~rounds:4 in
  Alcotest.(check bool) "estimate <= diameter" true (est <= Bfs.diameter g);
  Alcotest.(check bool) "estimate nontrivial" true (est >= 5)

let test_shortest_path () =
  let g = Gen.path 5 in
  Alcotest.(check (list int)) "path" [ 1; 2; 3 ] (Bfs.shortest_path g 1 3);
  Alcotest.(check (list int)) "self" [ 2 ] (Bfs.shortest_path g 2 2)

let test_shortest_path_length () =
  let g = Gen.square_mesh 5 in
  let p = Bfs.shortest_path g 0 24 in
  Alcotest.(check int) "length = dist + 1" (Bfs.distance g 0 24 + 1)
    (List.length p);
  (* consecutive vertices adjacent *)
  let rec adjacent = function
    | a :: (b :: _ as rest) -> Graph.has_edge g a b && adjacent rest
    | _ -> true
  in
  Alcotest.(check bool) "edges valid" true (adjacent p)

let test_shortest_path_unreachable () =
  let g = Graph.create ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.check_raises "unreachable" Not_found (fun () ->
      ignore (Bfs.shortest_path g 0 3))

let test_parents () =
  let g = Gen.path 5 in
  let p = Bfs.parents g 2 in
  Alcotest.(check int) "root parent self" 2 p.(2);
  Alcotest.(check int) "left chain" 1 p.(0);
  Alcotest.(check int) "right chain" 3 p.(4)

let test_next_hop_table () =
  let g = Gen.square_mesh 3 in
  let t = Bfs.next_hop_table g in
  let n = Graph.n g in
  for v = 0 to n - 1 do
    for dst = 0 to n - 1 do
      let hop = t.(v).(dst) in
      if v = dst then Alcotest.(check int) "self hop" v hop
      else begin
        Alcotest.(check bool) "hop adjacent" true (Graph.has_edge g v hop);
        Alcotest.(check int) "hop closer"
          (Bfs.distance g v dst - 1)
          (Bfs.distance g hop dst)
      end
    done
  done

let test_next_hop_table_disconnected () =
  let g = Graph.create ~n:3 [ (0, 1) ] in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Bfs.next_hop_table: disconnected graph") (fun () ->
      ignore (Bfs.next_hop_table g))

let prop_distance_symmetric =
  QCheck2.Test.make ~name:"BFS distance is symmetric" ~count:60
    ~print:Helpers.topology_print Helpers.topology_gen
    (fun (_, g) ->
      let n = Graph.n g in
      let u = 0 and v = n - 1 in
      Bfs.distance g u v = Bfs.distance g v u)

let prop_triangle_inequality =
  QCheck2.Test.make ~name:"BFS distance satisfies the triangle inequality"
    ~count:60 ~print:Helpers.topology_print Helpers.topology_gen
    (fun (_, g) ->
      let n = Graph.n g in
      let a = 0 and b = n / 2 and c = n - 1 in
      let d = Bfs.distance g in
      d a c <= d a b + d b c)

let suite =
  [
    Alcotest.test_case "distances on path" `Quick test_distances_path;
    Alcotest.test_case "distances disconnected" `Quick test_distances_disconnected;
    Alcotest.test_case "distance pair" `Quick test_distance_pair;
    Alcotest.test_case "eccentricity" `Quick test_eccentricity;
    Alcotest.test_case "eccentricity disconnected" `Quick
      test_eccentricity_disconnected;
    Alcotest.test_case "diameter families" `Quick test_diameter_families;
    Alcotest.test_case "diameter estimate exact on trees" `Quick
      test_diameter_estimate_on_trees_exact;
    Alcotest.test_case "diameter estimate lower bound" `Quick
      test_diameter_estimate_lower_bound;
    Alcotest.test_case "shortest path" `Quick test_shortest_path;
    Alcotest.test_case "shortest path length" `Quick test_shortest_path_length;
    Alcotest.test_case "shortest path unreachable" `Quick
      test_shortest_path_unreachable;
    Alcotest.test_case "parents" `Quick test_parents;
    Alcotest.test_case "next-hop table" `Quick test_next_hop_table;
    Alcotest.test_case "next-hop table disconnected" `Quick
      test_next_hop_table_disconnected;
    Helpers.qcheck prop_distance_symmetric;
    Helpers.qcheck prop_triangle_inequality;
  ]
