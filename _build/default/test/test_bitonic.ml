(* Tests for the bitonic counting network structure: sizes, the step
   property under sequential and adversarial token orders, and the
   count-set property. *)

module Bitonic = Countq_counting.Bitonic
module Rng = Countq_util.Rng

let test_width_validation () =
  Alcotest.check_raises "width 3"
    (Invalid_argument "Bitonic.create: width must be a power of two >= 1")
    (fun () -> ignore (Bitonic.create ~width:3));
  Alcotest.check_raises "width 0"
    (Invalid_argument "Bitonic.create: width must be a power of two >= 1")
    (fun () -> ignore (Bitonic.create ~width:0))

let test_sizes () =
  (* |Bitonic[w]| = w log w (log w + 1) / 4. *)
  List.iter
    (fun (w, expect_size, expect_depth) ->
      let net = Bitonic.create ~width:w in
      Alcotest.(check int) (Printf.sprintf "size w=%d" w) expect_size
        (Bitonic.size net);
      Alcotest.(check int) (Printf.sprintf "depth w=%d" w) expect_depth
        (Bitonic.depth net))
    [ (1, 0, 0); (2, 1, 1); (4, 6, 3); (8, 24, 6); (16, 80, 10); (32, 240, 15) ]

let test_balancer_layers_consistent () =
  let net = Bitonic.create ~width:16 in
  Array.iter
    (fun (b : Bitonic.balancer) ->
      let check_succ = function
        | Bitonic.To_output w ->
            Alcotest.(check bool) "output wire in range" true (w >= 0 && w < 16)
        | Bitonic.To_balancer id ->
            let next = (Bitonic.balancers net).(id) in
            Alcotest.(check bool) "layers increase" true (next.layer > b.layer)
      in
      check_succ b.succ_top;
      check_succ b.succ_bot)
    (Bitonic.balancers net)

let test_make_validation () =
  Alcotest.check_raises "dangling id"
    (Invalid_argument "Bitonic.make: dangling id") (fun () ->
      ignore
        (Bitonic.make ~width:2
           ~succ:[| (Bitonic.To_balancer 5, Bitonic.To_output 0) |]
           ~entry:[| Bitonic.To_balancer 0; Bitonic.To_balancer 0 |]));
  Alcotest.check_raises "bad wire"
    (Invalid_argument "Bitonic.make: bad output wire") (fun () ->
      ignore
        (Bitonic.make ~width:2
           ~succ:[| (Bitonic.To_output 7, Bitonic.To_output 0) |]
           ~entry:[| Bitonic.To_balancer 0; Bitonic.To_balancer 0 |]));
  Alcotest.check_raises "entry size" (Invalid_argument "Bitonic.make: entry size")
    (fun () ->
      ignore
        (Bitonic.make ~width:2 ~succ:[||] ~entry:[| Bitonic.To_output 0 |]))

let test_width1_passthrough () =
  let net = Bitonic.create ~width:1 in
  let st = Bitonic.State.create net in
  Alcotest.(check int) "exit wire 0" 0 (Bitonic.State.push st ~wire:0);
  Alcotest.(check (array int)) "counted" [| 1 |] (Bitonic.State.exit_counts st)

let test_width2_alternates () =
  let net = Bitonic.create ~width:2 in
  let st = Bitonic.State.create net in
  let outs = List.init 4 (fun i -> Bitonic.State.push st ~wire:(i mod 2)) in
  Alcotest.(check (list int)) "alternating exits" [ 0; 1; 0; 1 ] outs

let step_and_counts net m next_wire =
  let st = Bitonic.State.create net in
  let counts = ref [] in
  for t = 0 to m - 1 do
    let out = Bitonic.State.push st ~wire:(next_wire t) in
    let nth = (Bitonic.State.exit_counts st).(out) - 1 in
    counts :=
      Bitonic.count_of_exit ~width:(Bitonic.width net) ~wire:out ~nth :: !counts
  done;
  (Bitonic.State.has_step_property st, List.sort compare !counts)

let test_step_property_all_widths () =
  List.iter
    (fun w ->
      let net = Bitonic.create ~width:w in
      List.iter
        (fun m ->
          let step, counts = step_and_counts net m (fun t -> (t * 5) mod w) in
          Alcotest.(check bool) (Printf.sprintf "step w=%d m=%d" w m) true step;
          Alcotest.(check (list int))
            (Printf.sprintf "counts w=%d m=%d" w m)
            (List.init m (fun i -> i + 1))
            counts)
        [ 0; 1; 2; 3; 7; 16; 33; 100 ])
    [ 1; 2; 4; 8; 16 ]

let test_skewed_inputs_still_count () =
  (* All tokens entering one wire is the worst skew. *)
  let net = Bitonic.create ~width:8 in
  let step, counts = step_and_counts net 50 (fun _ -> 3) in
  Alcotest.(check bool) "step under skew" true step;
  Alcotest.(check (list int)) "counts" (List.init 50 (fun i -> i + 1)) counts

let prop_random_input_order =
  QCheck2.Test.make
    ~name:"bitonic: step property + exact count set for random inputs"
    ~count:100
    QCheck2.Gen.(
      pair (int_range 0 6 >|= fun e -> 1 lsl e) (pair (int_range 0 120) (int_range 0 1_000_000)))
    (fun (w, (m, seed)) ->
      let net = Bitonic.create ~width:w in
      let rng = Rng.create (Int64.of_int seed) in
      let step, counts = step_and_counts net m (fun _ -> Rng.below rng w) in
      step && counts = List.init m (fun i -> i + 1))

let suite =
  [
    Alcotest.test_case "width validation" `Quick test_width_validation;
    Alcotest.test_case "sizes and depths" `Quick test_sizes;
    Alcotest.test_case "layer monotonicity" `Quick test_balancer_layers_consistent;
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "width 1 passthrough" `Quick test_width1_passthrough;
    Alcotest.test_case "width 2 alternates" `Quick test_width2_alternates;
    Alcotest.test_case "step property (all widths)" `Quick
      test_step_property_all_widths;
    Alcotest.test_case "skewed inputs" `Quick test_skewed_inputs_still_count;
    Helpers.qcheck prop_random_input_order;
  ]
