(* Tests for the topology generators: vertex/edge counts, degree
   profiles, structural properties of each family. *)

module Graph = Countq_topology.Graph
module Gen = Countq_topology.Gen
module Bfs = Countq_topology.Bfs
module Rng = Countq_util.Rng

let test_complete () =
  let g = Gen.complete 6 in
  Alcotest.(check int) "n" 6 (Graph.n g);
  Alcotest.(check int) "m" 15 (Graph.m g);
  Alcotest.(check int) "deg" 5 (Graph.max_degree g);
  Alcotest.(check int) "diam" 1 (Bfs.diameter g)

let test_complete_k1 () =
  let g = Gen.complete 1 in
  Alcotest.(check int) "m" 0 (Graph.m g)

let test_path () =
  let g = Gen.path 10 in
  Alcotest.(check int) "m" 9 (Graph.m g);
  Alcotest.(check int) "diam" 9 (Bfs.diameter g);
  Alcotest.(check int) "endpoint degree" 1 (Graph.degree g 0);
  Alcotest.(check int) "inner degree" 2 (Graph.degree g 5)

let test_cycle () =
  let g = Gen.cycle 8 in
  Alcotest.(check int) "m" 8 (Graph.m g);
  Alcotest.(check int) "diam" 4 (Bfs.diameter g);
  Alcotest.(check int) "regular" 2 (Graph.max_degree g)

let test_cycle_too_small () =
  Alcotest.check_raises "n=2" (Invalid_argument "Gen.cycle: n must be >= 3")
    (fun () -> ignore (Gen.cycle 2))

let test_star () =
  let g = Gen.star 9 in
  Alcotest.(check int) "m" 8 (Graph.m g);
  Alcotest.(check int) "centre degree" 8 (Graph.degree g 0);
  Alcotest.(check int) "leaf degree" 1 (Graph.degree g 3);
  Alcotest.(check int) "diam" 2 (Bfs.diameter g)

let test_mesh_2d () =
  let g = Gen.square_mesh 4 in
  Alcotest.(check int) "n" 16 (Graph.n g);
  Alcotest.(check int) "m" 24 (Graph.m g);
  (* 2*4*3 *)
  Alcotest.(check int) "diam" 6 (Bfs.diameter g);
  Alcotest.(check int) "corner degree" 2 (Graph.degree g 0)

let test_mesh_3d () =
  let g = Gen.mesh ~dims:[ 3; 3; 3 ] in
  Alcotest.(check int) "n" 27 (Graph.n g);
  Alcotest.(check int) "m" 54 (Graph.m g);
  (* 3 * (2*3*3) = 54 *)
  Alcotest.(check int) "diam" 6 (Bfs.diameter g)

let test_mesh_degenerate () =
  let g = Gen.mesh ~dims:[ 1; 5 ] in
  Alcotest.(check int) "n" 5 (Graph.n g);
  Alcotest.(check int) "m" 4 (Graph.m g)

let test_torus () =
  let g = Gen.torus ~dims:[ 4; 4 ] in
  Alcotest.(check int) "m" 32 (Graph.m g);
  Alcotest.(check int) "regular" 4 (Graph.max_degree g);
  Alcotest.(check int) "diam" 4 (Bfs.diameter g)

let test_torus_side2_no_doubled_edge () =
  let g = Gen.torus ~dims:[ 2; 3 ] in
  (* sides of length 2 collapse wrap edges: each column pair single edge *)
  Alcotest.(check int) "m" 9 (Graph.m g)

let test_hypercube () =
  let g = Gen.hypercube 4 in
  Alcotest.(check int) "n" 16 (Graph.n g);
  Alcotest.(check int) "m" 32 (Graph.m g);
  Alcotest.(check int) "diam" 4 (Bfs.diameter g);
  Alcotest.(check int) "regular" 4 (Graph.max_degree g)

let test_perfect_tree_size () =
  Alcotest.(check int) "binary h=3" 15
    (Gen.perfect_tree_size ~arity:2 ~height:3);
  Alcotest.(check int) "ternary h=2" 13
    (Gen.perfect_tree_size ~arity:3 ~height:2);
  Alcotest.(check int) "unary h=4" 5 (Gen.perfect_tree_size ~arity:1 ~height:4)

let test_perfect_tree () =
  let g = Gen.perfect_tree ~arity:2 ~height:3 in
  Alcotest.(check int) "n" 15 (Graph.n g);
  Alcotest.(check int) "m" 14 (Graph.m g);
  Alcotest.(check int) "root degree" 2 (Graph.degree g Gen.perfect_tree_root);
  Alcotest.(check int) "max degree" 3 (Graph.max_degree g);
  Alcotest.(check int) "diam" 6 (Bfs.diameter g)

let test_balanced_tree_on () =
  let g = Gen.balanced_tree_on ~arity:3 10 in
  Alcotest.(check int) "n" 10 (Graph.n g);
  Alcotest.(check int) "m" 9 (Graph.m g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_caterpillar () =
  let g = Gen.caterpillar ~spine:5 ~legs:2 in
  Alcotest.(check int) "n" 15 (Graph.n g);
  Alcotest.(check int) "m" 14 (Graph.m g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  Alcotest.(check int) "diam" 6 (Bfs.diameter g);
  (* leaf - spine0 .. spine4 - leaf *)
  Alcotest.(check int) "max degree" 4 (Graph.max_degree g)

let test_random_tree () =
  let rng = Helpers.rng () in
  for n = 1 to 30 do
    let g = Gen.random_tree rng n in
    Alcotest.(check int) "m = n-1" (n - 1) (Graph.m g);
    Alcotest.(check bool) "connected" true (Graph.is_connected g)
  done

let test_random_binary_tree_degree () =
  let rng = Helpers.rng () in
  for _ = 1 to 10 do
    let g = Gen.random_binary_tree rng 50 in
    Alcotest.(check int) "m" 49 (Graph.m g);
    Alcotest.(check bool) "connected" true (Graph.is_connected g);
    Alcotest.(check bool) "degree <= 3" true (Graph.max_degree g <= 3)
  done

let test_erdos_renyi () =
  let rng = Helpers.rng () in
  let g = Gen.erdos_renyi rng ~n:30 ~p:0.3 in
  Alcotest.(check int) "n" 30 (Graph.n g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_erdos_renyi_p_too_small () =
  let rng = Helpers.rng () in
  Alcotest.check_raises "hopeless p"
    (Invalid_argument "Gen.erdos_renyi: p too small for connectivity")
    (fun () -> ignore (Gen.erdos_renyi rng ~n:100 ~p:0.001))

let test_de_bruijn () =
  let g = Gen.de_bruijn 4 in
  Alcotest.(check int) "n" 16 (Graph.n g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  Alcotest.(check bool) "degree <= 4" true (Graph.max_degree g <= 4);
  Alcotest.(check int) "diameter = d" 4 (Bfs.diameter g)

let test_cube_connected_cycles () =
  let d = 3 in
  let g = Gen.cube_connected_cycles d in
  Alcotest.(check int) "n = d 2^d" 24 (Graph.n g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  Alcotest.(check int) "3-regular" 3 (Graph.max_degree g);
  Alcotest.(check int) "m = 3n/2" 36 (Graph.m g)

let test_butterfly () =
  let d = 3 in
  let g = Gen.butterfly d in
  Alcotest.(check int) "n = (d+1) 2^d" 32 (Graph.n g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  Alcotest.(check bool) "degree <= 4" true (Graph.max_degree g <= 4);
  Alcotest.(check int) "m = d 2^(d+1)" 48 (Graph.m g)

let test_random_regular () =
  let rng = Helpers.rng () in
  List.iter
    (fun (n, degree) ->
      let g = Gen.random_regular rng ~n ~degree in
      Alcotest.(check bool) "connected" true (Graph.is_connected g);
      for v = 0 to n - 1 do
        Alcotest.(check int) "regular" degree (Graph.degree g v)
      done)
    [ (10, 3); (16, 4); (21, 4) ]

let test_random_regular_validation () =
  let rng = Helpers.rng () in
  Alcotest.check_raises "odd sum"
    (Invalid_argument "Gen.random_regular: n * degree must be even") (fun () ->
      ignore (Gen.random_regular rng ~n:5 ~degree:3))

let test_lollipop () =
  let g = Gen.lollipop ~clique:5 ~tail:4 in
  Alcotest.(check int) "n" 9 (Graph.n g);
  Alcotest.(check int) "m" 14 (Graph.m g);
  (* C(5,2)=10 + 4 *)
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  Alcotest.(check int) "diam" 5 (Bfs.diameter g)

let prop_generators_connected =
  QCheck2.Test.make ~name:"every generated topology is connected" ~count:150
    ~print:Helpers.topology_print Helpers.topology_gen
    (fun (_, g) -> Graph.is_connected g)

let prop_prufer_uniformish =
  QCheck2.Test.make ~name:"random trees vary with the seed" ~count:10
    QCheck2.Gen.(int_range 5 30)
    (fun n ->
      let g1 = Gen.random_tree (Rng.create 1L) n in
      let g2 = Gen.random_tree (Rng.create 2L) n in
      (* For n >= 5 two fixed seeds virtually never coincide; equality
         would indicate the seed is ignored. *)
      n < 5 || not (Graph.equal g1 g2))

let suite =
  [
    Alcotest.test_case "complete" `Quick test_complete;
    Alcotest.test_case "complete K1" `Quick test_complete_k1;
    Alcotest.test_case "path" `Quick test_path;
    Alcotest.test_case "cycle" `Quick test_cycle;
    Alcotest.test_case "cycle too small" `Quick test_cycle_too_small;
    Alcotest.test_case "star" `Quick test_star;
    Alcotest.test_case "mesh 2d" `Quick test_mesh_2d;
    Alcotest.test_case "mesh 3d" `Quick test_mesh_3d;
    Alcotest.test_case "mesh degenerate" `Quick test_mesh_degenerate;
    Alcotest.test_case "torus" `Quick test_torus;
    Alcotest.test_case "torus side 2" `Quick test_torus_side2_no_doubled_edge;
    Alcotest.test_case "hypercube" `Quick test_hypercube;
    Alcotest.test_case "perfect tree size" `Quick test_perfect_tree_size;
    Alcotest.test_case "perfect tree" `Quick test_perfect_tree;
    Alcotest.test_case "balanced tree on n" `Quick test_balanced_tree_on;
    Alcotest.test_case "caterpillar" `Quick test_caterpillar;
    Alcotest.test_case "random tree" `Quick test_random_tree;
    Alcotest.test_case "random binary tree" `Quick test_random_binary_tree_degree;
    Alcotest.test_case "erdos renyi" `Quick test_erdos_renyi;
    Alcotest.test_case "erdos renyi p too small" `Quick test_erdos_renyi_p_too_small;
    Alcotest.test_case "de bruijn" `Quick test_de_bruijn;
    Alcotest.test_case "cube-connected cycles" `Quick test_cube_connected_cycles;
    Alcotest.test_case "butterfly" `Quick test_butterfly;
    Alcotest.test_case "random regular" `Quick test_random_regular;
    Alcotest.test_case "random regular validation" `Quick
      test_random_regular_validation;
    Alcotest.test_case "lollipop" `Quick test_lollipop;
    Helpers.qcheck prop_generators_connected;
    Helpers.qcheck prop_prufer_uniformish;
  ]
