(* Tests for the asynchronous engine and the async protocol runners:
   safety must survive arbitrary delays; with Constant 1 the timing of
   contention-bound protocols matches the synchronous engine. *)

module Gen = Countq_topology.Gen
module Graph = Countq_topology.Graph
module Spanning = Countq_topology.Spanning
module Engine = Countq_simnet.Engine
module Async = Countq_simnet.Async
module Arrow = Countq_arrow
module Central = Countq_counting.Central

let test_constant1_single_hop () =
  let protocol =
    {
      Engine.name = "ping";
      initial_state = (fun _ -> ());
      on_start =
        (fun ~node s -> if node = 0 then (s, [ Engine.Send (1, ()) ]) else (s, []));
      on_receive = (fun ~round:_ ~node:_ ~src:_ () s -> (s, [ Engine.Complete () ]));
      on_tick = Engine.no_tick;
    }
  in
  let res =
    Async.run ~graph:(Gen.path 2) ~delay:(Async.Constant 1) ~protocol ()
  in
  match res.completions with
  | [ c ] -> Alcotest.(check int) "received at time 1" 1 c.round
  | _ -> Alcotest.fail "one completion expected"

let test_constant_d_scales_distance () =
  (* A message relayed along a path with delay d arrives at hop h at
     time h*d + (h-1) (each relay also burns one processing unit when
     d >= 1 and forwarding happens at the receive time). *)
  let n = 5 in
  let protocol =
    {
      Engine.name = "relay";
      initial_state = (fun _ -> ());
      on_start =
        (fun ~node s -> if node = 0 then (s, [ Engine.Send (1, ()) ]) else (s, []));
      on_receive =
        (fun ~round:_ ~node ~src:_ () s ->
          let fwd = if node + 1 < n then [ Engine.Send (node + 1, ()) ] else [] in
          (s, Engine.Complete node :: fwd));
      on_tick = Engine.no_tick;
    }
  in
  let res = Async.run ~graph:(Gen.path n) ~delay:(Async.Constant 3) ~protocol () in
  List.iter
    (fun (c : _ Engine.completion) ->
      Alcotest.(check int)
        (Printf.sprintf "node %d at 3*h" c.value)
        (3 * c.value) c.round)
    res.completions

let test_fifo_links_under_random_delays () =
  (* Two messages on the same link must arrive in order even when the
     delay oracle says otherwise. *)
  let delays = [| 10; 1 |] in
  let count = ref 0 in
  let oracle ~src:_ ~dst:_ ~send_time:_ =
    let d = delays.(!count mod 2) in
    incr count;
    d
  in
  let protocol =
    {
      Engine.name = "fifo";
      initial_state = (fun _ -> ());
      on_start =
        (fun ~node s ->
          if node = 0 then (s, [ Engine.Send (1, "a"); Engine.Send (1, "b") ])
          else (s, []));
      on_receive = (fun ~round:_ ~node:_ ~src:_ msg s -> (s, [ Engine.Complete msg ]));
      on_tick = Engine.no_tick;
    }
  in
  let res =
    Async.run ~graph:(Gen.path 2) ~delay:(Async.Per_message oracle) ~protocol ()
  in
  let order = List.map (fun (c : _ Engine.completion) -> c.value) res.completions in
  Alcotest.(check (list string)) "FIFO preserved" [ "a"; "b" ] order

let test_node_serialisation () =
  (* k messages arriving at the same instant drain one per time unit. *)
  let n = 6 in
  let protocol =
    {
      Engine.name = "burst";
      initial_state = (fun _ -> ());
      on_start =
        (fun ~node s -> if node > 0 then (s, [ Engine.Send (0, node) ]) else (s, []));
      on_receive = (fun ~round:_ ~node:_ ~src:_ msg s -> (s, [ Engine.Complete msg ]));
      on_tick = Engine.no_tick;
    }
  in
  let res = Async.run ~graph:(Gen.star n) ~delay:(Async.Constant 1) ~protocol () in
  let rounds =
    List.sort compare
      (List.map (fun (c : _ Engine.completion) -> c.round) res.completions)
  in
  Alcotest.(check (list int)) "serialised" [ 1; 2; 3; 4; 5 ] rounds

let test_wakeups_fire () =
  let protocol =
    {
      Engine.name = "wake";
      initial_state = (fun _ -> ());
      on_start = (fun ~node:_ s -> (s, []));
      on_receive = (fun ~round:_ ~node:_ ~src:_ () s -> (s, []));
      on_tick = Some (fun ~round ~node:_ s -> (s, [ Engine.Complete round ]));
    }
  in
  let res =
    Async.run ~graph:(Gen.path 2) ~delay:(Async.Constant 1)
      ~wakeups:[ (4, 0); (9, 1) ] ~protocol ()
  in
  let times = List.map (fun (c : _ Engine.completion) -> c.value) res.completions in
  Alcotest.(check (list int)) "wakeup times" [ 4; 9 ] (List.sort compare times)

let test_central_counting_total_matches_sync () =
  (* On the star with R = V the total delay is contention-bound, so the
     async Constant-1 run must equal the synchronous run. *)
  let n = 24 in
  let g = Gen.star n in
  let requests = Helpers.all_nodes n in
  let sync = Central.run ~graph:g ~requests () in
  let asy = Central.run_async ~graph:g ~requests () in
  Alcotest.(check bool) "async valid" true (Result.is_ok asy.valid);
  Alcotest.(check int) "same total" sync.total_delay asy.total_delay

let test_central_counting_random_delays_valid () =
  let g = Gen.square_mesh 5 in
  let requests = Helpers.all_nodes 25 in
  let r =
    Central.run_async
      ~delay:(Async.Uniform { min = 1; max = 7; seed = 5L })
      ~graph:g ~requests ()
  in
  Alcotest.(check bool) "valid under jitter" true (Result.is_ok r.valid);
  let base = Central.run_async ~graph:g ~requests () in
  Alcotest.(check bool) "jitter costs more" true
    (r.total_delay >= base.total_delay)

let test_arrow_async_constant_valid () =
  let g = Gen.square_mesh 6 in
  let tree = Spanning.best_for_arrow g in
  let r = Arrow.Protocol.run_one_shot_async ~tree ~requests:(Helpers.all_nodes 36) () in
  Alcotest.(check bool) "valid" true (Result.is_ok r.order);
  Alcotest.(check int) "all ops" 36 (List.length r.outcomes)

let prop_arrow_safe_under_random_delays =
  QCheck2.Test.make
    ~name:"arrow yields a valid total order under arbitrary link delays"
    ~count:100 ~print:Helpers.instance_print Helpers.instance_gen
    (fun (_, g, requests) ->
      let tree = Spanning.best_for_arrow g in
      let r =
        Arrow.Protocol.run_one_shot_async
          ~delay:(Async.Uniform { min = 1; max = 9; seed = 77L })
          ~tree ~requests ()
      in
      Result.is_ok r.order && List.length r.outcomes = List.length requests)

let prop_arrow_safe_under_adversarial_delays =
  QCheck2.Test.make
    ~name:"arrow survives an adversarial delay oracle" ~count:60
    ~print:Helpers.instance_print Helpers.instance_gen
    (fun (_, g, requests) ->
      let tree = Spanning.best_for_arrow g in
      (* Delay grows with the sender id and flips parity with time:
         nothing uniform about it. *)
      let oracle ~src ~dst ~send_time =
        1 + ((src + (3 * dst) + send_time) mod 13)
      in
      let r =
        Arrow.Protocol.run_one_shot_async ~delay:(Async.Per_message oracle)
          ~tree ~requests ()
      in
      Result.is_ok r.order)

let prop_combining_safe_under_random_delays =
  QCheck2.Test.make
    ~name:"combining tree counts {1..k} under arbitrary delays" ~count:60
    ~print:Helpers.instance_print Helpers.instance_gen
    (fun (_, g, requests) ->
      let tree = Spanning.bfs g ~root:0 in
      let r =
        Countq_counting.Combining.run_async
          ~delay:(Async.Uniform { min = 1; max = 6; seed = 11L })
          ~tree ~requests ()
      in
      Result.is_ok r.valid)

let prop_sweep_ranks_timing_independent =
  (* The sweep's ranks are fixed by the walk order: async jitter must
     not change a single assignment relative to the synchronous run. *)
  QCheck2.Test.make ~name:"sweep ranks identical under any delay model"
    ~count:60 ~print:Helpers.instance_print Helpers.instance_gen
    (fun (_, g, requests) ->
      let tree = Spanning.bfs g ~root:0 in
      let sync = Countq_counting.Sweep.run ~tree ~requests () in
      let asy =
        Countq_counting.Sweep.run_async
          ~delay:(Async.Uniform { min = 1; max = 9; seed = 21L })
          ~tree ~requests ()
      in
      let ranks (r : Countq_counting.Counts.run_result) =
        List.sort compare
          (List.map
             (fun (o : Countq_counting.Counts.outcome) -> (o.node, o.count))
             r.outcomes)
      in
      Result.is_ok asy.valid && ranks sync = ranks asy)

let prop_counting_safe_under_random_delays =
  QCheck2.Test.make
    ~name:"central counting hands out {1..k} under arbitrary delays"
    ~count:80 ~print:Helpers.instance_print Helpers.instance_gen
    (fun (_, g, requests) ->
      let r =
        Central.run_async
          ~delay:(Async.Uniform { min = 1; max = 5; seed = 3L })
          ~graph:g ~requests ()
      in
      Result.is_ok r.valid)

let suite =
  [
    Alcotest.test_case "constant 1 single hop" `Quick test_constant1_single_hop;
    Alcotest.test_case "constant d scales distance" `Quick
      test_constant_d_scales_distance;
    Alcotest.test_case "FIFO links under random delays" `Quick
      test_fifo_links_under_random_delays;
    Alcotest.test_case "node serialisation" `Quick test_node_serialisation;
    Alcotest.test_case "wakeups" `Quick test_wakeups_fire;
    Alcotest.test_case "central total matches sync" `Quick
      test_central_counting_total_matches_sync;
    Alcotest.test_case "central valid under jitter" `Quick
      test_central_counting_random_delays_valid;
    Alcotest.test_case "arrow async constant" `Quick test_arrow_async_constant_valid;
    Helpers.qcheck prop_arrow_safe_under_random_delays;
    Helpers.qcheck prop_arrow_safe_under_adversarial_delays;
    Helpers.qcheck prop_counting_safe_under_random_delays;
    Helpers.qcheck prop_combining_safe_under_random_delays;
    Helpers.qcheck prop_sweep_ranks_timing_independent;
  ]
