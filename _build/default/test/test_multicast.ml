(* Tests for ordered multicast: order agreement, delivery monotonicity,
   and the queuing-vs-counting comparison at scale. *)

module Gen = Countq_topology.Gen
module Ordered = Countq_multicast.Ordered

let schemes =
  [
    Ordered.Via_queuing `Arrow;
    Ordered.Via_queuing `Central;
    Ordered.Via_counting `Central;
    Ordered.Via_counting `Combining;
    Ordered.Via_counting `Network;
  ]

let test_positions_are_permutation () =
  let g = Gen.square_mesh 4 in
  let senders = [ 0; 5; 10; 15 ] in
  List.iter
    (fun scheme ->
      let r = Ordered.run ~graph:g ~senders scheme in
      let positions =
        List.sort compare
          (List.map (fun (m : Ordered.message_stat) -> m.position) r.messages)
      in
      Alcotest.(check (list int))
        (Format.asprintf "%a positions" Ordered.pp_scheme scheme)
        [ 1; 2; 3; 4 ] positions;
      let ss =
        List.sort compare
          (List.map (fun (m : Ordered.message_stat) -> m.sender) r.messages)
      in
      Alcotest.(check (list int)) "senders covered" senders ss)
    schemes

let test_single_sender () =
  let g = Gen.path 8 in
  let r = Ordered.run ~graph:g ~senders:[ 3 ] (Ordered.Via_queuing `Arrow) in
  Alcotest.(check int) "one message" 1 (List.length r.messages);
  (* Sole sender's flood reaches the far end of the path: makespan at
     least the eccentricity of node 3. *)
  Alcotest.(check bool) "dissemination spans" true (r.dissemination_rounds >= 4)

let test_no_senders () =
  let g = Gen.path 4 in
  let r = Ordered.run ~graph:g ~senders:[] (Ordered.Via_counting `Central) in
  Alcotest.(check int) "nothing" 0 (List.length r.messages);
  Alcotest.(check int) "no latency" 0 r.total_delivery_latency

let test_metrics_consistent () =
  let g = Gen.square_mesh 4 in
  let senders = [ 1; 6; 11 ] in
  List.iter
    (fun scheme ->
      let r = Ordered.run ~graph:g ~senders scheme in
      Alcotest.(check bool) "max >= mean" true
        (float_of_int r.max_delivery_latency >= r.mean_delivery_latency);
      Alcotest.(check bool) "coord makespan <= coord total or trivial" true
        (r.coordination_makespan <= r.coordination_total
        || List.length senders = 1);
      Alcotest.(check bool) "messages positive" true (r.network_messages > 0))
    schemes

let test_duplicate_sender_rejected () =
  Alcotest.check_raises "dup" (Invalid_argument "Ordered.run: duplicate sender")
    (fun () ->
      ignore
        (Ordered.run ~graph:(Gen.path 4) ~senders:[ 1; 1 ]
           (Ordered.Via_counting `Central)))

let test_queuing_beats_counting_at_scale () =
  (* The paper's Section 1 claim, measured: with every node sending on
     a mesh, arrow-based coordination is cheaper than central
     counting, and end-to-end delivery is no worse. *)
  let g = Gen.square_mesh 10 in
  let senders = Helpers.all_nodes 100 in
  let arrow = Ordered.run ~graph:g ~senders (Ordered.Via_queuing `Arrow) in
  let central = Ordered.run ~graph:g ~senders (Ordered.Via_counting `Central) in
  Alcotest.(check bool)
    (Printf.sprintf "coordination %d < %d" arrow.coordination_total
       central.coordination_total)
    true
    (arrow.coordination_total < central.coordination_total);
  Alcotest.(check bool)
    (Printf.sprintf "delivery %.1f <= %.1f" arrow.mean_delivery_latency
       central.mean_delivery_latency)
    true
    (arrow.mean_delivery_latency <= central.mean_delivery_latency)

let test_positions_agree_between_queue_schemes () =
  (* Under every scheme the agreed positions are exactly 1, 2, …, k
     with no gaps — receivers can rely on contiguity to deliver. *)
  let g = Gen.square_mesh 5 in
  let senders = [ 0; 7; 13; 21; 24 ] in
  List.iter
    (fun scheme ->
      let r = Ordered.run ~graph:g ~senders scheme in
      let sorted =
        List.sort
          (fun (a : Ordered.message_stat) b -> compare a.position b.position)
          r.messages
      in
      Alcotest.(check bool) "positions start at 1" true
        ((List.hd sorted).position = 1);
      (* positions strictly increase by 1 *)
      ignore
        (List.fold_left
           (fun prev (m : Ordered.message_stat) ->
             Alcotest.(check int) "consecutive" (prev + 1) m.position;
             m.position)
           0 sorted))
    schemes

let prop_all_schemes_agree_on_message_count =
  QCheck2.Test.make ~name:"every scheme orders every message exactly once"
    ~count:30
    QCheck2.Gen.(pair (int_range 2 5) (int_range 0 1_000_000))
    (fun (side, seed) ->
      let g = Gen.square_mesh side in
      let n = side * side in
      let rng = Countq_util.Rng.create (Int64.of_int seed) in
      let k = 1 + Countq_util.Rng.below rng n in
      let senders = Countq_util.Rng.sample rng ~k ~n in
      List.for_all
        (fun scheme ->
          let r = Ordered.run ~graph:g ~senders scheme in
          List.length r.messages = k)
        schemes)

let suite =
  [
    Alcotest.test_case "positions are a permutation" `Quick
      test_positions_are_permutation;
    Alcotest.test_case "single sender" `Quick test_single_sender;
    Alcotest.test_case "no senders" `Quick test_no_senders;
    Alcotest.test_case "metrics consistent" `Quick test_metrics_consistent;
    Alcotest.test_case "duplicate sender rejected" `Quick
      test_duplicate_sender_rejected;
    Alcotest.test_case "queuing beats counting at scale" `Quick
      test_queuing_beats_counting_at_scale;
    Alcotest.test_case "positions consecutive per scheme" `Quick
      test_positions_agree_between_queue_schemes;
    Helpers.qcheck prop_all_schemes_agree_on_message_count;
  ]
