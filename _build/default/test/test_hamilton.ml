(* Tests for Hamilton-path constructions (Lemma 4.6) and spanning-tree
   selection. *)

module Graph = Countq_topology.Graph
module Gen = Countq_topology.Gen
module Hamilton = Countq_topology.Hamilton
module Tree = Countq_topology.Tree
module Spanning = Countq_topology.Spanning

let test_complete_order () =
  let order = Hamilton.complete 5 in
  Alcotest.(check (array int)) "identity" [| 0; 1; 2; 3; 4 |] order;
  Alcotest.(check bool) "valid on K5" true
    (Hamilton.is_hamilton_path (Gen.complete 5) order)

let test_mesh_snake_2d () =
  let dims = [ 3; 4 ] in
  let order = Hamilton.mesh ~dims in
  Alcotest.(check bool) "valid" true
    (Hamilton.is_hamilton_path (Gen.mesh ~dims) order);
  Alcotest.(check (array int)) "snake shape"
    [| 0; 1; 2; 3; 7; 6; 5; 4; 8; 9; 10; 11 |]
    order

let test_mesh_snake_higher_dims () =
  List.iter
    (fun dims ->
      let order = Hamilton.mesh ~dims in
      Alcotest.(check bool)
        (Printf.sprintf "valid on %s"
           (String.concat "x" (List.map string_of_int dims)))
        true
        (Hamilton.is_hamilton_path (Gen.mesh ~dims) order))
    [ [ 5 ]; [ 2; 2 ]; [ 4; 5 ]; [ 3; 3; 3 ]; [ 2; 3; 4 ]; [ 2; 2; 2; 2 ] ]

let test_hypercube_gray () =
  for d = 1 to 8 do
    let order = Hamilton.hypercube d in
    Alcotest.(check bool)
      (Printf.sprintf "valid on Q%d" d)
      true
      (Hamilton.is_hamilton_path (Gen.hypercube d) order)
  done

let test_is_hamilton_rejects () =
  let g = Gen.path 4 in
  Alcotest.(check bool) "wrong length" false
    (Hamilton.is_hamilton_path g [| 0; 1; 2 |]);
  Alcotest.(check bool) "repeat" false
    (Hamilton.is_hamilton_path g [| 0; 1; 1; 2 |]);
  Alcotest.(check bool) "non-edge jump" false
    (Hamilton.is_hamilton_path g [| 0; 2; 1; 3 |]);
  Alcotest.(check bool) "valid" true
    (Hamilton.is_hamilton_path g [| 0; 1; 2; 3 |])

let test_find_small () =
  (match Hamilton.find (Gen.cycle 6) with
  | Some order ->
      Alcotest.(check bool) "cycle has hamilton path" true
        (Hamilton.is_hamilton_path (Gen.cycle 6) order)
  | None -> Alcotest.fail "cycle should have a Hamilton path");
  (* The star on >= 4 vertices has no Hamilton path. *)
  Alcotest.(check bool) "star has none" true (Hamilton.find (Gen.star 5) = None)

let test_path_tree () =
  let order = [| 2; 0; 1; 3 |] in
  let t = Hamilton.path_tree order in
  Alcotest.(check int) "root" 2 (Tree.root t);
  Alcotest.(check int) "max degree" 2 (Tree.max_degree t);
  Alcotest.(check int) "depth of last" 3 (Tree.depth t 3)

let test_best_for_arrow_uses_hamilton () =
  List.iter
    (fun (name, g) ->
      let t = Spanning.best_for_arrow g in
      Alcotest.(check int) (name ^ ": degree 2 tree") 2 (Tree.max_degree t);
      Alcotest.(check int) (name ^ ": spans") (Graph.n g) (Tree.n t))
    [
      ("K16", Gen.complete 16);
      ("mesh 5x5", Gen.square_mesh 5);
      ("hypercube 4", Gen.hypercube 4);
      ("path 17", Gen.path 17);
    ]

let test_best_for_arrow_on_tree_graph () =
  let g = Gen.perfect_tree ~arity:3 ~height:2 in
  let t = Spanning.best_for_arrow g in
  (* The graph is its own spanning tree. *)
  Alcotest.(check int) "n" (Graph.n g) (Tree.n t);
  Alcotest.(check int) "root" 0 (Tree.root t)

let test_best_for_arrow_fallback () =
  (* A graph with no cheap Hamilton construction: bounded-degree tree
     fallback must still span. *)
  let rng = Helpers.rng () in
  let g = Gen.erdos_renyi rng ~n:24 ~p:0.25 in
  let t = Spanning.best_for_arrow g in
  Alcotest.(check int) "spans" 24 (Tree.n t)

let test_degree_stats () =
  let t = Hamilton.path_tree [| 0; 1; 2; 3; 4 |] in
  let maxd, mean = Spanning.degree_stats t in
  Alcotest.(check int) "max" 2 maxd;
  Alcotest.(check bool) "mean = 2(n-1)/n" true (abs_float (mean -. 1.6) < 1e-9)

let prop_mesh_snake_all_sizes =
  QCheck2.Test.make ~name:"snake order valid on random meshes" ~count:50
    QCheck2.Gen.(pair (int_range 1 6) (int_range 1 6))
    (fun (a, b) ->
      let dims = [ a; b ] in
      Hamilton.is_hamilton_path (Gen.mesh ~dims) (Hamilton.mesh ~dims))

let suite =
  [
    Alcotest.test_case "complete order" `Quick test_complete_order;
    Alcotest.test_case "mesh snake 2d" `Quick test_mesh_snake_2d;
    Alcotest.test_case "mesh snake higher dims" `Quick test_mesh_snake_higher_dims;
    Alcotest.test_case "hypercube gray code" `Quick test_hypercube_gray;
    Alcotest.test_case "is_hamilton_path rejects" `Quick test_is_hamilton_rejects;
    Alcotest.test_case "exhaustive find" `Quick test_find_small;
    Alcotest.test_case "path tree" `Quick test_path_tree;
    Alcotest.test_case "best_for_arrow finds Hamilton trees" `Quick
      test_best_for_arrow_uses_hamilton;
    Alcotest.test_case "best_for_arrow on tree graphs" `Quick
      test_best_for_arrow_on_tree_graph;
    Alcotest.test_case "best_for_arrow fallback" `Quick test_best_for_arrow_fallback;
    Alcotest.test_case "degree stats" `Quick test_degree_stats;
    Helpers.qcheck prop_mesh_snake_all_sizes;
  ]
