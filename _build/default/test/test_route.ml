(* Tests for Countq_simnet.Route: every scheme must step strictly
   toward the destination along real edges. *)

module Graph = Countq_topology.Graph
module Gen = Countq_topology.Gen
module Bfs = Countq_topology.Bfs
module Tree = Countq_topology.Tree
module Route = Countq_simnet.Route

let walk route g src dst =
  (* Follow next hops, checking edges, with a step budget. *)
  let rec go v steps acc =
    if v = dst then List.rev (v :: acc)
    else if steps > Graph.n g then Alcotest.fail "routing loop"
    else begin
      let h = Route.next_hop route v dst in
      if v <> h && not (Graph.has_edge g v h) then
        Alcotest.fail "hop not an edge";
      go h (steps + 1) (v :: acc)
    end
  in
  go src 0 []

let test_of_table_shortest () =
  let g = Gen.square_mesh 4 in
  let route = Route.of_table g in
  let n = Graph.n g in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      let path = walk route g src dst in
      Alcotest.(check int) "shortest" (Bfs.distance g src dst)
        (List.length path - 1);
      (match Route.distance_hint route src dst with
      | Some d -> Alcotest.(check int) "hint" (Bfs.distance g src dst) d
      | None -> Alcotest.fail "table route should know distances")
    done
  done

let test_of_tree_routes () =
  let g = Gen.perfect_tree ~arity:2 ~height:3 in
  let tree = Tree.of_graph g ~root:0 in
  let route = Route.of_tree tree in
  let n = Graph.n g in
  for src = 0 to n - 1 do
    let path = walk route g src (n - 1) in
    Alcotest.(check int) "tree path length"
      (Tree.dist tree src (n - 1))
      (List.length path - 1)
  done

let test_direct_complete () =
  let g = Gen.complete 8 in
  let route = Route.direct g in
  Alcotest.(check int) "one hop" 3 (Route.next_hop route 5 3);
  Alcotest.(check (option int)) "dist hint" (Some 1)
    (Route.distance_hint route 0 7);
  Alcotest.(check (option int)) "self dist" (Some 0)
    (Route.distance_hint route 4 4)

let test_direct_rejects_incomplete () =
  Alcotest.check_raises "path not complete"
    (Invalid_argument "Route.direct: graph is not complete") (fun () ->
      ignore (Route.direct (Gen.path 4)))

let test_auto_picks_direct () =
  let g = Gen.complete 10 in
  let route = Route.auto g in
  Alcotest.(check int) "direct next hop" 9 (Route.next_hop route 0 9)

let test_auto_picks_table () =
  let g = Gen.path 10 in
  let route = Route.auto g in
  Alcotest.(check int) "multi-hop" 1 (Route.next_hop route 0 9)

let test_of_fun () =
  (* Dimension-order routing on a 4x4 mesh: x first, then y. *)
  let s = 4 in
  let g = Gen.square_mesh s in
  let next v dst =
    if v = dst then v
    else begin
      let vx = v mod s and vy = v / s in
      let dx = dst mod s and dy = dst / s in
      if vx < dx then v + 1
      else if vx > dx then v - 1
      else if vy < dy then v + s
      else v - s
    end
  in
  let route = Route.of_fun next in
  for src = 0 to (s * s) - 1 do
    for dst = 0 to (s * s) - 1 do
      let path = walk route g src dst in
      Alcotest.(check int) "manhattan length" (Bfs.distance g src dst)
        (List.length path - 1)
    done
  done

let suite =
  [
    Alcotest.test_case "table routing is shortest" `Quick test_of_table_shortest;
    Alcotest.test_case "tree routing" `Quick test_of_tree_routes;
    Alcotest.test_case "direct on complete" `Quick test_direct_complete;
    Alcotest.test_case "direct rejects incomplete" `Quick
      test_direct_rejects_incomplete;
    Alcotest.test_case "auto picks direct" `Quick test_auto_picks_direct;
    Alcotest.test_case "auto picks table" `Quick test_auto_picks_table;
    Alcotest.test_case "custom dimension-order routing" `Quick test_of_fun;
  ]
