(* Exhaustive-schedule verification: safety on EVERY interleaving of
   small instances, not just the sampled ones. *)

module Gen = Countq_topology.Gen
module Tree = Countq_topology.Tree
module Spanning = Countq_topology.Spanning
module Engine = Countq_simnet.Engine
module Explore = Countq_simnet.Explore
module Arrow = Countq_arrow
module Central = Countq_counting.Central
module Counts = Countq_counting.Counts

let arrow_check requests completions =
  let outcomes =
    List.map
      (fun (c : _ Engine.completion) ->
        let op, pred = c.value in
        { Arrow.Types.op; pred; found_at = c.node; round = c.round })
      completions
  in
  if List.length outcomes <> List.length requests then
    Error "wrong number of completions"
  else
    match Arrow.Order.chain outcomes with
    | Ok _ -> Ok ()
    | Error e -> Error (Format.asprintf "%a" Arrow.Order.pp_error e)

let explore_arrow g requests =
  let tree = Spanning.best_for_arrow g in
  let protocol = Arrow.Protocol.one_shot_protocol ~tree ~requests () in
  Explore.run ~graph:(Tree.to_graph tree) ~protocol
    ~check:(arrow_check requests) ()

let test_arrow_all_schedules_path () =
  let stats = explore_arrow (Gen.path 4) [ 1; 2; 3 ] in
  Alcotest.(check bool) "nontrivial space" true (stats.explored > 10);
  Alcotest.(check bool) "terminals checked" true (stats.terminal >= 1)

let test_arrow_all_schedules_star () =
  let stats = explore_arrow (Gen.star 4) [ 1; 2; 3 ] in
  Alcotest.(check bool) "explored" true (stats.explored > 10)

let test_arrow_all_schedules_mesh_corner () =
  (* 2x2 mesh, all four requesting: concurrent path reversal from every
     corner, every interleaving. *)
  let stats = explore_arrow (Gen.square_mesh 2) [ 0; 1; 2; 3 ] in
  Alcotest.(check bool) "explored" true (stats.explored > 20)

let test_arrow_all_schedules_deeper_path () =
  (* Node 0 is the tail (local completion), so the space is small but
     the two travelling messages still interleave. *)
  let stats = explore_arrow (Gen.path 5) [ 0; 2; 4 ] in
  Alcotest.(check bool) "explored" true (stats.explored > 10)

let counting_check requests completions =
  let outcomes =
    List.map
      (fun (c : _ Engine.completion) ->
        let node, count = c.value in
        { Counts.node; count; round = c.round })
      completions
  in
  match Counts.validate ~requests outcomes with
  | Ok () -> Ok ()
  | Error e -> Error (Format.asprintf "%a" Counts.pp_error e)

let test_central_all_schedules () =
  List.iter
    (fun (g, requests) ->
      let protocol = Central.one_shot_protocol ~graph:g ~requests () in
      let stats =
        Explore.run ~graph:g ~protocol ~check:(counting_check requests) ()
      in
      Alcotest.(check bool) "terminals checked" true (stats.terminal >= 1))
    [
      (Gen.star 4, [ 1; 2; 3 ]);
      (Gen.path 4, [ 0; 2; 3 ]);
      (Gen.complete 4, [ 0; 1; 2; 3 ]);
    ]

let test_violation_detected () =
  (* A deliberately broken "counter": every requester gets rank 1. The
     explorer must find the violation. *)
  let g = Gen.star 3 in
  let protocol =
    {
      Engine.name = "broken";
      initial_state = (fun _ -> ());
      on_start =
        (fun ~node s ->
          if node > 0 then (s, [ Engine.Send (0, node) ]) else (s, []));
      on_receive =
        (fun ~round:_ ~node:_ ~src:_ origin s ->
          (s, [ Engine.Complete (origin, 1) ]));
      on_tick = Engine.no_tick;
    }
  in
  match
    Explore.run ~graph:g ~protocol ~check:(counting_check [ 1; 2 ]) ()
  with
  | exception Explore.Violation _ -> ()
  | _ -> Alcotest.fail "violation must be detected"

let test_fifo_preserved_in_all_interleavings () =
  (* Node 0 sends "a" then "b" to node 1 on one link: in EVERY
     interleaving node 1 must complete "a" before "b" (completions are
     recorded in event order, so "a" always precedes "b"). *)
  let protocol =
    {
      Engine.name = "fifo-check";
      initial_state = (fun _ -> ());
      on_start =
        (fun ~node s ->
          if node = 0 then (s, [ Engine.Send (1, "a"); Engine.Send (1, "b") ])
          else (s, []));
      on_receive =
        (fun ~round:_ ~node:_ ~src:_ msg s -> (s, [ Engine.Complete msg ]));
      on_tick = Engine.no_tick;
    }
  in
  let check completions =
    match List.map (fun (c : _ Engine.completion) -> c.value) completions with
    | [ "a"; "b" ] -> Ok ()
    | other -> Error (String.concat "," other)
  in
  let stats = Explore.run ~graph:(Gen.path 2) ~protocol ~check () in
  Alcotest.(check bool) "several interleavings" true (stats.terminal >= 1)

let test_config_budget () =
  let g = Gen.complete 4 in
  let tree = Spanning.best_for_arrow g in
  let protocol =
    Arrow.Protocol.one_shot_protocol ~tree ~requests:[ 0; 1; 2; 3 ] ()
  in
  Alcotest.check_raises "budget exceeded"
    (Invalid_argument "Explore.run: max_configs exceeded") (fun () ->
      ignore
        (Explore.run ~graph:(Tree.to_graph tree) ~protocol
           ~check:(fun _ -> Ok ())
           ~max_configs:5 ()))

let suite =
  [
    Alcotest.test_case "arrow: all schedules on a path" `Quick
      test_arrow_all_schedules_path;
    Alcotest.test_case "arrow: all schedules on a star" `Quick
      test_arrow_all_schedules_star;
    Alcotest.test_case "arrow: all schedules on a 2x2 mesh" `Quick
      test_arrow_all_schedules_mesh_corner;
    Alcotest.test_case "arrow: all schedules, deeper path" `Quick
      test_arrow_all_schedules_deeper_path;
    Alcotest.test_case "central counter: all schedules" `Quick
      test_central_all_schedules;
    Alcotest.test_case "violations detected" `Quick test_violation_detected;
    Alcotest.test_case "FIFO preserved everywhere" `Quick
      test_fifo_preserved_in_all_interleavings;
    Alcotest.test_case "config budget" `Quick test_config_budget;
  ]
