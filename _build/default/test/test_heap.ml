(* Tests for the binary min-heap. *)

module Heap = Countq_util.Heap

let test_empty () =
  let h : (int, string) Heap.t = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check int) "size" 0 (Heap.size h);
  Alcotest.(check bool) "peek none" true (Heap.peek h = None);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None)

let test_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k k) [ 5; 1; 4; 1; 3; 9; 2 ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (k, _) ->
        out := k :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] (List.rev !out)

let test_fifo_ties () =
  let h = Heap.create () in
  Heap.push h 7 "first";
  Heap.push h 7 "second";
  Heap.push h 7 "third";
  Alcotest.(check (option (pair int string))) "peek first" (Some (7, "first"))
    (Heap.peek h);
  Alcotest.(check string) "1" "first" (snd (Heap.pop_exn h));
  Alcotest.(check string) "2" "second" (snd (Heap.pop_exn h));
  Alcotest.(check string) "3" "third" (snd (Heap.pop_exn h))

let test_interleaved_push_pop () =
  let h = Heap.create () in
  Heap.push h 3 ();
  Heap.push h 1 ();
  Alcotest.(check int) "pop 1" 1 (fst (Heap.pop_exn h));
  Heap.push h 2 ();
  Heap.push h 0 ();
  Alcotest.(check int) "pop 0" 0 (fst (Heap.pop_exn h));
  Alcotest.(check int) "pop 2" 2 (fst (Heap.pop_exn h));
  Alcotest.(check int) "pop 3" 3 (fst (Heap.pop_exn h))

let test_pop_exn_empty () =
  let h : (int, unit) Heap.t = Heap.create () in
  Alcotest.check_raises "empty" Not_found (fun () -> ignore (Heap.pop_exn h))

let test_growth () =
  let h = Heap.create () in
  for i = 1000 downto 1 do
    Heap.push h i i
  done;
  Alcotest.(check int) "size" 1000 (Heap.size h);
  Alcotest.(check int) "min" 1 (fst (Heap.pop_exn h))

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap drains any multiset in sorted order"
    ~count:200
    QCheck2.Gen.(list (int_range 0 100))
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h k ()) keys;
      let rec drain acc =
        match Heap.pop h with Some (k, ()) -> drain (k :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare keys)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO ties" `Quick test_fifo_ties;
    Alcotest.test_case "interleaved" `Quick test_interleaved_push_pop;
    Alcotest.test_case "pop_exn empty" `Quick test_pop_exn_empty;
    Alcotest.test_case "growth" `Quick test_growth;
    Helpers.qcheck prop_heap_sorts;
  ]
