(* Tests for Countq_topology.Graph: construction, validation,
   adjacency queries, connectivity. *)

module Graph = Countq_topology.Graph

let triangle () = Graph.create ~n:3 [ (0, 1); (1, 2); (2, 0) ]

let test_basic_counts () =
  let g = triangle () in
  Alcotest.(check int) "n" 3 (Graph.n g);
  Alcotest.(check int) "m" 3 (Graph.m g)

let test_duplicate_edges_merged () =
  let g = Graph.create ~n:2 [ (0, 1); (1, 0); (0, 1) ] in
  Alcotest.(check int) "m" 1 (Graph.m g);
  Alcotest.(check (array int)) "adjacency" [| 1 |] (Graph.neighbors g 0)

let test_self_loop_rejected () =
  Alcotest.check_raises "self loop" (Graph.Invalid_edge (1, 1)) (fun () ->
      ignore (Graph.create ~n:3 [ (1, 1) ]))

let test_out_of_range_rejected () =
  Alcotest.check_raises "range" (Graph.Invalid_edge (0, 5)) (fun () ->
      ignore (Graph.create ~n:3 [ (0, 5) ]))

let test_empty_graph_rejected () =
  Alcotest.check_raises "n=0" (Invalid_argument "Graph.create: n must be >= 1")
    (fun () -> ignore (Graph.create ~n:0 []))

let test_single_vertex () =
  let g = Graph.create ~n:1 [] in
  Alcotest.(check int) "n" 1 (Graph.n g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_neighbors_sorted () =
  let g = Graph.create ~n:5 [ (2, 4); (2, 0); (2, 3); (2, 1) ] in
  Alcotest.(check (array int)) "sorted" [| 0; 1; 3; 4 |] (Graph.neighbors g 2)

let test_degree () =
  let g = triangle () in
  Alcotest.(check int) "deg" 2 (Graph.degree g 0);
  Alcotest.(check int) "max deg" 2 (Graph.max_degree g)

let test_has_edge () =
  let g = Graph.create ~n:6 [ (0, 3); (3, 5); (1, 2) ] in
  Alcotest.(check bool) "(0,3)" true (Graph.has_edge g 0 3);
  Alcotest.(check bool) "(3,0)" true (Graph.has_edge g 3 0);
  Alcotest.(check bool) "(0,5)" false (Graph.has_edge g 0 5);
  Alcotest.(check bool) "(4,4)" false (Graph.has_edge g 4 4)

let test_edges_listing () =
  let g = Graph.create ~n:4 [ (2, 1); (0, 3); (1, 0) ] in
  Alcotest.(check (list (pair int int)))
    "edges normalised and sorted"
    [ (0, 1); (0, 3); (1, 2) ]
    (Graph.edges g)

let test_connectivity () =
  let connected = Graph.create ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let split = Graph.create ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "path connected" true (Graph.is_connected connected);
  Alcotest.(check bool) "two pieces" false (Graph.is_connected split)

let test_equal () =
  let a = Graph.create ~n:3 [ (0, 1); (1, 2) ] in
  let b = Graph.create ~n:3 [ (1, 2); (0, 1) ] in
  let c = Graph.create ~n:3 [ (0, 1); (0, 2) ] in
  Alcotest.(check bool) "same" true (Graph.equal a b);
  Alcotest.(check bool) "different" false (Graph.equal a c)

let test_of_adjacency_roundtrip () =
  let g = Graph.create ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
  let adj = Array.init 5 (fun v -> Array.copy (Graph.neighbors g v)) in
  let g' = Graph.of_adjacency adj in
  Alcotest.(check bool) "roundtrip" true (Graph.equal g g')

let test_of_adjacency_asymmetric_rejected () =
  (* 0 lists 1 but 1 does not list 0. *)
  Alcotest.check_raises "asymmetry" (Graph.Invalid_edge (0, 1)) (fun () ->
      ignore (Graph.of_adjacency [| [| 1 |]; [||] |]))

let test_fold_vertices () =
  let g = triangle () in
  Alcotest.(check int) "sum ids" 3 (Graph.fold_vertices g ~init:0 ~f:( + ))

let test_iter_neighbors () =
  let g = triangle () in
  let acc = ref [] in
  Graph.iter_neighbors g 0 (fun v -> acc := v :: !acc);
  Alcotest.(check (list int)) "neighbours of 0" [ 2; 1 ] !acc

let prop_create_consistent =
  QCheck2.Test.make ~name:"create: m = sum deg / 2, neighbours symmetric"
    ~count:100
    ~print:Helpers.topology_print Helpers.topology_gen
    (fun (_, g) ->
      let n = Graph.n g in
      let sum_deg = ref 0 in
      let symmetric = ref true in
      for v = 0 to n - 1 do
        sum_deg := !sum_deg + Graph.degree g v;
        Graph.iter_neighbors g v (fun u ->
            if not (Graph.has_edge g u v) then symmetric := false)
      done;
      !symmetric && !sum_deg = 2 * Graph.m g)

let suite =
  [
    Alcotest.test_case "basic counts" `Quick test_basic_counts;
    Alcotest.test_case "duplicate edges merged" `Quick test_duplicate_edges_merged;
    Alcotest.test_case "self loop rejected" `Quick test_self_loop_rejected;
    Alcotest.test_case "out of range rejected" `Quick test_out_of_range_rejected;
    Alcotest.test_case "empty graph rejected" `Quick test_empty_graph_rejected;
    Alcotest.test_case "single vertex" `Quick test_single_vertex;
    Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
    Alcotest.test_case "degree" `Quick test_degree;
    Alcotest.test_case "has_edge" `Quick test_has_edge;
    Alcotest.test_case "edges listing" `Quick test_edges_listing;
    Alcotest.test_case "connectivity" `Quick test_connectivity;
    Alcotest.test_case "equal" `Quick test_equal;
    Alcotest.test_case "of_adjacency roundtrip" `Quick test_of_adjacency_roundtrip;
    Alcotest.test_case "of_adjacency asymmetric" `Quick
      test_of_adjacency_asymmetric_rejected;
    Alcotest.test_case "fold vertices" `Quick test_fold_vertices;
    Alcotest.test_case "iter neighbors" `Quick test_iter_neighbors;
    Helpers.qcheck prop_create_consistent;
  ]
