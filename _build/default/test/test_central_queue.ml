(* Tests for the centralised queuing baseline. *)

module Gen = Countq_topology.Gen
module CQ = Countq_queuing.Central_queue
module Arrow = Countq_arrow

let check_valid msg (r : Arrow.Protocol.run_result) =
  match r.order with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Format.asprintf "%s: %a" msg Arrow.Order.pp_error e)

let test_empty () =
  let r = CQ.run ~graph:(Gen.star 5) ~requests:[] () in
  Alcotest.(check int) "no outcomes" 0 (List.length r.outcomes)

let test_star_all () =
  let n = 16 in
  let r = CQ.run ~graph:(Gen.star n) ~requests:(Helpers.all_nodes n) () in
  check_valid "star all" r;
  Alcotest.(check int) "n outcomes" n (List.length r.outcomes)

let test_first_is_init () =
  let r = CQ.run ~graph:(Gen.path 6) ~requests:[ 2; 4 ] () in
  check_valid "path" r;
  match r.order with
  | Ok (first :: _) ->
      let first_outcome =
        List.find
          (fun (o : Arrow.Types.outcome) -> o.op = first)
          r.outcomes
      in
      Alcotest.(check bool) "head pred Init" true
        (first_outcome.pred = Arrow.Types.Init)
  | _ -> Alcotest.fail "non-empty order expected"

let test_quadratic_on_star () =
  let total n =
    (CQ.run ~graph:(Gen.star n) ~requests:(Helpers.all_nodes n) ()).total_delay
  in
  let t32 = total 32 and t64 = total 64 in
  let growth = float_of_int t64 /. float_of_int t32 in
  Alcotest.(check bool)
    (Printf.sprintf "quadratic growth (x%.2f)" growth)
    true
    (growth > 3.0 && growth < 5.0)

let test_matches_counting_cost_on_star () =
  (* Section 5's point: on the star the counting and queuing baselines
     pay the same serialisation cost. *)
  let n = 24 in
  let requests = Helpers.all_nodes n in
  let q = (CQ.run ~graph:(Gen.star n) ~requests ()).total_delay in
  let c =
    (Countq_counting.Central.run ~graph:(Gen.star n) ~requests ()).total_delay
  in
  Alcotest.(check int) "identical serialisation" c q

let prop_spec =
  QCheck2.Test.make ~name:"central queue yields a valid total order"
    ~count:100 ~print:Helpers.instance_print Helpers.instance_gen
    (fun (_, g, requests) ->
      let r = CQ.run ~graph:g ~requests () in
      Result.is_ok r.order)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "star all" `Quick test_star_all;
    Alcotest.test_case "head pred is Init" `Quick test_first_is_init;
    Alcotest.test_case "quadratic on star" `Quick test_quadratic_on_star;
    Alcotest.test_case "matches counting on star" `Quick
      test_matches_counting_cost_on_star;
    Helpers.qcheck prop_spec;
  ]
