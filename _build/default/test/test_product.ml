(* Tests for Cartesian graph products. *)

module Graph = Countq_topology.Graph
module Gen = Countq_topology.Gen
module Bfs = Countq_topology.Bfs
module Product = Countq_topology.Product

let degree_profile g =
  let n = Graph.n g in
  let profile = List.init n (fun v -> Graph.degree g v) in
  List.sort compare profile

let test_sizes () =
  let g = Product.cartesian (Gen.path 3) (Gen.path 5) in
  Alcotest.(check int) "n" 15 (Graph.n g);
  (* m = ng * mh + nh * mg = 3*4 + 5*2 = 22 *)
  Alcotest.(check int) "m" 22 (Graph.m g)

let test_path_product_is_mesh () =
  let a = Product.cartesian (Gen.path 4) (Gen.path 6) in
  let b = Gen.mesh ~dims:[ 4; 6 ] in
  Alcotest.(check int) "same n" (Graph.n b) (Graph.n a);
  Alcotest.(check int) "same m" (Graph.m b) (Graph.m a);
  Alcotest.(check (list int)) "same degree profile" (degree_profile b)
    (degree_profile a);
  Alcotest.(check int) "same diameter" (Bfs.diameter b) (Bfs.diameter a);
  (* With our row-major numbering the product IS the mesh exactly. *)
  Alcotest.(check bool) "identical graphs" true (Graph.equal a b)

let test_cycle_product_is_torus () =
  let a = Product.cartesian (Gen.cycle 4) (Gen.cycle 5) in
  let b = Gen.torus ~dims:[ 4; 5 ] in
  Alcotest.(check int) "same n" (Graph.n b) (Graph.n a);
  Alcotest.(check int) "same m" (Graph.m b) (Graph.m a);
  Alcotest.(check (list int)) "same degree profile" (degree_profile b)
    (degree_profile a);
  Alcotest.(check int) "same diameter" (Bfs.diameter b) (Bfs.diameter a)

let test_edge_power_is_hypercube () =
  let a = Product.power (Gen.path 2) 5 in
  let b = Gen.hypercube 5 in
  Alcotest.(check int) "same n" (Graph.n b) (Graph.n a);
  Alcotest.(check int) "same m" (Graph.m b) (Graph.m a);
  Alcotest.(check (list int)) "same degree profile" (degree_profile b)
    (degree_profile a);
  Alcotest.(check int) "same diameter" (Bfs.diameter b) (Bfs.diameter a)

let test_distances_add () =
  let g = Gen.path 5 and h = Gen.cycle 6 in
  let p = Product.cartesian g h in
  let nh = Graph.n h in
  let ok = ref true in
  for u = 0 to Graph.n g - 1 do
    for v = 0 to nh - 1 do
      let du = Bfs.distance g 0 u and dv = Bfs.distance h 0 v in
      if Bfs.distance p 0 ((u * nh) + v) <> du + dv then ok := false
    done
  done;
  Alcotest.(check bool) "d((0,0),(u,v)) = d(u) + d(v)" true !ok

let test_power_one_is_identity () =
  let g = Gen.cycle 7 in
  Alcotest.(check bool) "k=1" true (Graph.equal g (Product.power g 1))

let test_power_invalid () =
  Alcotest.check_raises "k=0" (Invalid_argument "Product.power: k must be >= 1")
    (fun () -> ignore (Product.power (Gen.path 2) 0))

let prop_product_connected =
  QCheck2.Test.make ~name:"products of connected graphs are connected"
    ~count:40
    QCheck2.Gen.(pair Helpers.topology_gen Helpers.topology_gen)
    (fun ((_, g), (_, h)) ->
      Graph.n g * Graph.n h > 400
      || Graph.is_connected (Product.cartesian g h))

let suite =
  [
    Alcotest.test_case "sizes" `Quick test_sizes;
    Alcotest.test_case "path x path = mesh" `Quick test_path_product_is_mesh;
    Alcotest.test_case "cycle x cycle = torus" `Quick test_cycle_product_is_torus;
    Alcotest.test_case "K2^d = hypercube" `Quick test_edge_power_is_hypercube;
    Alcotest.test_case "distances add" `Quick test_distances_add;
    Alcotest.test_case "power 1 = identity" `Quick test_power_one_is_identity;
    Alcotest.test_case "power invalid" `Quick test_power_invalid;
    Helpers.qcheck prop_product_connected;
  ]
