(* Tests for the Lemma 4.3/4.4 run-decomposition certificates. *)

module Gen = Countq_topology.Gen
module Tree = Countq_topology.Tree
module Nn = Countq_tsp.Nn
module Runs = Countq_tsp.Runs

let test_decompose_monotone () =
  let runs = Runs.decompose ~start:0 [| 1; 3; 5; 9 |] in
  match runs with
  | [ r ] ->
      Alcotest.(check int) "first" 1 r.first;
      Alcotest.(check int) "last" 9 r.last;
      Alcotest.(check int) "length" 4 r.length
  | _ -> Alcotest.fail "one run expected"

let test_decompose_zigzag () =
  let runs = Runs.decompose ~start:5 [| 6; 3; 8; 1 |] in
  (* 6,3 decreasing; 3,8 flips; 8,1 flips again => runs (6,3) (8) (1)?
     maximal monotone: [6;3] [8] ... next step 8->1 starts a new run
     from 8: [8;1]. Decomposition greedily extends: [6;3], [8;1]. *)
  Alcotest.(check int) "two runs" 2 (List.length runs);
  let lasts = List.map (fun (r : Runs.run) -> r.last) runs in
  Alcotest.(check (list int)) "run ends" [ 3; 1 ] lasts

let test_decompose_single () =
  match Runs.decompose ~start:0 [| 4 |] with
  | [ r ] ->
      Alcotest.(check int) "singleton run" 1 r.length;
      Alcotest.(check int) "first=last" r.first r.last
  | _ -> Alcotest.fail "one run"

let test_decompose_empty () =
  Alcotest.(check int) "no runs" 0 (List.length (Runs.decompose ~start:0 [||]))

let test_certificate_cost () =
  let c = Runs.certify ~n:10 ~start:0 [| 3; 1; 7 |] in
  Alcotest.(check int) "cost 3 + 2 + 6" 11 c.cost;
  Alcotest.(check int) "bound" 30 c.bound_3n

let test_certificate_xs () =
  (* start 5; order 6,3,8,1: run ends 3 then 1; xs = |3-5|, |1-3|. *)
  let c = Runs.certify ~n:10 ~start:5 [| 6; 3; 8; 1 |] in
  Alcotest.(check (array int)) "xs" [| 2; 2 |] c.xs

let test_lemma44_fails_on_non_greedy () =
  (* An artificial order violating the recurrence: run ends at 1, 5, 7
     give xs = (1, 4, 2), and 2 < 4 + 1. *)
  let c = Runs.certify ~n:40 ~start:0 [| 20; 1; 15; 5; 7 |] in
  Alcotest.(check bool) "violated" false c.lemma44_holds

let test_range_validation () =
  Alcotest.check_raises "bad position"
    (Invalid_argument "Runs.certify: position out of range") (fun () ->
      ignore (Runs.certify ~n:5 ~start:0 [| 7 |]))

let prop_greedy_tours_satisfy_lemma44 =
  QCheck2.Test.make
    ~name:"Lemma 4.4 holds on every greedy list tour" ~count:300
    QCheck2.Gen.(
      pair (int_range 2 100) (pair (int_range 0 1_000_000) (int_range 0 99)))
    (fun (n, (seed, start)) ->
      let start = start mod n in
      let rng = Countq_util.Rng.create (Int64.of_int seed) in
      let k = 1 + Countq_util.Rng.below rng n in
      let requests = Countq_util.Rng.sample rng ~k ~n in
      let tree = Tree.of_graph (Gen.path n) ~root:0 in
      let tour = Nn.on_tree tree ~start ~requests in
      let cert = Runs.certify ~n ~start tour.order in
      cert.lemma44_holds
      && cert.cost = tour.cost
      && cert.cost <= cert.bound_3n)

let prop_runs_partition_order =
  QCheck2.Test.make ~name:"runs partition the visit order" ~count:100
    QCheck2.Gen.(
      pair (int_range 1 60) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Countq_util.Rng.create (Int64.of_int seed) in
      let k = 1 + Countq_util.Rng.below rng n in
      let requests = Countq_util.Rng.sample rng ~k ~n in
      let tree = Tree.of_graph (Gen.path n) ~root:0 in
      let tour = Nn.on_tree tree ~start:(n / 2) ~requests in
      let runs = Runs.decompose ~start:(n / 2) tour.order in
      List.fold_left (fun acc (r : Runs.run) -> acc + r.length) 0 runs
      = Array.length tour.order)

let suite =
  [
    Alcotest.test_case "monotone order" `Quick test_decompose_monotone;
    Alcotest.test_case "zigzag order" `Quick test_decompose_zigzag;
    Alcotest.test_case "singleton" `Quick test_decompose_single;
    Alcotest.test_case "empty" `Quick test_decompose_empty;
    Alcotest.test_case "certificate cost" `Quick test_certificate_cost;
    Alcotest.test_case "certificate xs" `Quick test_certificate_xs;
    Alcotest.test_case "lemma 4.4 fails on non-greedy" `Quick
      test_lemma44_fails_on_non_greedy;
    Alcotest.test_case "range validation" `Quick test_range_validation;
    Helpers.qcheck prop_greedy_tours_satisfy_lemma44;
    Helpers.qcheck prop_runs_partition_order;
  ]
