(* Tests for the power-law growth fitter. *)

module Growth = Countq.Growth

let series f ns = List.map (fun n -> (n, f n)) ns

let test_linear () =
  let fit = Growth.fit_power_law (series (fun n -> 3 * n) [ 8; 16; 32; 64 ]) in
  Alcotest.(check bool) "e ~ 1" true (abs_float (fit.exponent -. 1.0) < 1e-9);
  Alcotest.(check bool) "c ~ 3" true (abs_float (fit.coefficient -. 3.0) < 1e-6);
  Alcotest.(check bool) "perfect fit" true (fit.r_squared > 0.999999)

let test_quadratic () =
  let fit = Growth.fit_power_law (series (fun n -> n * n) [ 4; 8; 16; 32 ]) in
  Alcotest.(check bool) "e ~ 2" true (abs_float (fit.exponent -. 2.0) < 1e-9)

let test_constant_series () =
  let fit = Growth.fit_power_law (series (fun _ -> 7) [ 2; 4; 8 ]) in
  Alcotest.(check bool) "e ~ 0" true (abs_float fit.exponent < 1e-9);
  Alcotest.(check bool) "r2 defined" true (fit.r_squared >= 0.999)

let test_nlogn_between_1_and_2 () =
  let f n = n * Countq_tsp.Tbounds.log2_ceil n in
  let fit = Growth.fit_power_law (series f [ 16; 64; 256; 1024 ]) in
  Alcotest.(check bool)
    (Printf.sprintf "1 < e=%.2f < 1.5" fit.exponent)
    true
    (fit.exponent > 1.0 && fit.exponent < 1.5)

let test_drops_nonpositive_points () =
  let fit =
    Growth.fit_power_law [ (0, 5); (4, 0); (8, 64); (16, 256); (-3, 9) ]
  in
  Alcotest.(check int) "two usable" 2 fit.points;
  Alcotest.(check bool) "e ~ 2" true (abs_float (fit.exponent -. 2.0) < 1e-9)

let test_too_few_points () =
  Alcotest.check_raises "one point"
    (Invalid_argument "Growth.fit_power_law: need at least two positive points")
    (fun () -> ignore (Growth.fit_power_law [ (4, 16) ]))

let test_degenerate_same_n () =
  Alcotest.check_raises "same n"
    (Invalid_argument "Growth.fit_power_law: all points share one n")
    (fun () -> ignore (Growth.fit_power_law [ (4, 16); (4, 32) ]))

let test_noise_tolerated () =
  (* Mild multiplicative noise must not move the exponent much. *)
  let rng = Helpers.rng () in
  let pts =
    List.map
      (fun n ->
        let noise = 0.9 +. (0.2 *. Countq_util.Rng.float rng) in
        (n, int_of_float (float_of_int (n * n) *. noise)))
      [ 8; 16; 32; 64; 128 ]
  in
  let fit = Growth.fit_power_law pts in
  Alcotest.(check bool)
    (Printf.sprintf "e=%.2f near 2" fit.exponent)
    true
    (abs_float (fit.exponent -. 2.0) < 0.15)

let prop_exact_power_laws_recovered =
  QCheck2.Test.make ~name:"exact power laws are recovered" ~count:50
    QCheck2.Gen.(pair (int_range 1 3) (int_range 1 5))
    (fun (e, c) ->
      let f n = c * int_of_float (float_of_int n ** float_of_int e) in
      let fit = Growth.fit_power_law (series f [ 4; 8; 16; 32 ]) in
      abs_float (fit.exponent -. float_of_int e) < 0.01)

let suite =
  [
    Alcotest.test_case "linear" `Quick test_linear;
    Alcotest.test_case "quadratic" `Quick test_quadratic;
    Alcotest.test_case "constant" `Quick test_constant_series;
    Alcotest.test_case "n log n" `Quick test_nlogn_between_1_and_2;
    Alcotest.test_case "nonpositive dropped" `Quick test_drops_nonpositive_points;
    Alcotest.test_case "too few points" `Quick test_too_few_points;
    Alcotest.test_case "degenerate n" `Quick test_degenerate_same_n;
    Alcotest.test_case "noise tolerated" `Quick test_noise_tolerated;
    Helpers.qcheck prop_exact_power_laws_recovered;
  ]
