(* Tests for the counting-output validator. *)

module Counts = Countq_counting.Counts

let o node count round = { Counts.node; count; round }

let test_valid () =
  let outcomes = [ o 3 2 5; o 1 1 2; o 7 3 9 ] in
  Alcotest.(check bool) "valid" true
    (Result.is_ok (Counts.validate ~requests:[ 1; 3; 7 ] outcomes))

let test_empty () =
  Alcotest.(check bool) "empty valid" true
    (Result.is_ok (Counts.validate ~requests:[] []))

let test_unrequested () =
  match Counts.validate ~requests:[ 1 ] [ o 1 1 1; o 2 2 1 ] with
  | Error (Counts.Unrequested_count 2) -> ()
  | _ -> Alcotest.fail "expected Unrequested_count 2"

let test_duplicate_node () =
  match Counts.validate ~requests:[ 1; 2 ] [ o 1 1 1; o 1 2 1 ] with
  | Error (Counts.Duplicate_node 1) -> ()
  | _ -> Alcotest.fail "expected Duplicate_node"

let test_missing_node () =
  match Counts.validate ~requests:[ 1; 2 ] [ o 1 1 1 ] with
  | Error (Counts.Missing_node 2) -> ()
  | _ -> Alcotest.fail "expected Missing_node"

let test_bad_count_set_gap () =
  match Counts.validate ~requests:[ 1; 2 ] [ o 1 1 1; o 2 3 1 ] with
  | Error Counts.Bad_count_set -> ()
  | _ -> Alcotest.fail "expected Bad_count_set (gap)"

let test_bad_count_set_zero () =
  match Counts.validate ~requests:[ 1 ] [ o 1 0 1 ] with
  | Error Counts.Bad_count_set -> ()
  | _ -> Alcotest.fail "expected Bad_count_set (zero)"

let test_bad_count_set_duplicate_count () =
  match Counts.validate ~requests:[ 1; 2 ] [ o 1 1 1; o 2 1 1 ] with
  | Error Counts.Bad_count_set -> ()
  | _ -> Alcotest.fail "expected Bad_count_set (duplicate)"

let suite =
  [
    Alcotest.test_case "valid" `Quick test_valid;
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "unrequested" `Quick test_unrequested;
    Alcotest.test_case "duplicate node" `Quick test_duplicate_node;
    Alcotest.test_case "missing node" `Quick test_missing_node;
    Alcotest.test_case "count gap" `Quick test_bad_count_set_gap;
    Alcotest.test_case "count zero" `Quick test_bad_count_set_zero;
    Alcotest.test_case "count duplicate" `Quick test_bad_count_set_duplicate_count;
  ]
