(* Tests for the token-circulation queuing baseline. *)

module Gen = Countq_topology.Gen
module Tree = Countq_topology.Tree
module Spanning = Countq_topology.Spanning
module TR = Countq_queuing.Token_ring
module Arrow = Countq_arrow

let check_valid msg (r : Arrow.Protocol.run_result) =
  match r.order with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Format.asprintf "%s: %a" msg Arrow.Order.pp_error e)

let path_tree n = Tree.of_graph (Gen.path n) ~root:0

let test_empty () =
  let r = TR.run ~tree:(path_tree 5) ~requests:[] () in
  check_valid "empty" r;
  Alcotest.(check int) "no outcomes" 0 (List.length r.outcomes)

let test_order_is_visit_order () =
  let r = TR.run ~tree:(path_tree 8) ~requests:[ 6; 2; 4 ] () in
  check_valid "path" r;
  match r.order with
  | Ok order ->
      Alcotest.(check (list int)) "walk order" [ 2; 4; 6 ]
        (List.map (fun (o : Arrow.Types.op) -> o.origin) order)
  | Error _ -> assert false

let test_delay_is_first_visit_time () =
  let r = TR.run ~tree:(path_tree 10) ~requests:[ 7 ] () in
  check_valid "single" r;
  Alcotest.(check int) "token reaches 7 at round 7" 7 r.total_delay

let test_all_on_list_matches_arrow_total () =
  (* R = V on the list: both the token sweep and the arrow pay Theta(n)
     total; the sweep's total is the triangular number. *)
  let n = 32 in
  let r = TR.run ~tree:(path_tree n) ~requests:(Helpers.all_nodes n) () in
  check_valid "all" r;
  Alcotest.(check int) "triangular" (n * (n - 1) / 2) r.total_delay

let test_sparse_requester_pays_full_walk () =
  (* One far requester: the arrow pays one path, the ring still walks.
     On a perfect binary tree the Euler walk to the last leaf is much
     longer than the direct path. *)
  let g = Gen.perfect_tree ~arity:2 ~height:5 in
  let tree = Tree.of_graph g ~root:0 in
  let n = Tree.n tree in
  let target = n - 1 in
  let ring = TR.run ~tree ~requests:[ target ] () in
  let arrow = Arrow.Protocol.run_one_shot ~tree ~requests:[ target ] () in
  check_valid "ring" ring;
  Alcotest.(check bool)
    (Printf.sprintf "ring (%d) > arrow (%d)" ring.total_delay arrow.total_delay)
    true
    (ring.total_delay > 2 * arrow.total_delay)

let prop_always_valid =
  QCheck2.Test.make ~name:"token ring yields a valid total order" ~count:100
    ~print:Helpers.instance_print Helpers.instance_gen
    (fun (_, g, requests) ->
      let tree = Spanning.bfs g ~root:0 in
      let r = TR.run ~tree ~requests () in
      Result.is_ok r.order && List.length r.outcomes = List.length requests)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "order is visit order" `Quick test_order_is_visit_order;
    Alcotest.test_case "delay is first-visit time" `Quick
      test_delay_is_first_visit_time;
    Alcotest.test_case "all on list: triangular" `Quick
      test_all_on_list_matches_arrow_total;
    Alcotest.test_case "sparse requester pays full walk" `Quick
      test_sparse_requester_pays_full_walk;
    Helpers.qcheck prop_always_valid;
  ]
