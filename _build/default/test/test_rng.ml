(* Tests for Countq_util.Rng: determinism, uniformity sanity, split
   independence, sampling invariants. *)

module Rng = Countq_util.Rng

let test_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_distinct_seeds () =
  let a = Rng.create 1L and b = Rng.create 2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_copy_snapshots () =
  let a = Rng.create 7L in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let test_split_independent () =
  let a = Rng.create 9L in
  let b = Rng.split a in
  let xs = List.init 32 (fun _ -> Rng.int64 a) in
  let ys = List.init 32 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_below_range () =
  let r = Helpers.rng () in
  for _ = 1 to 1000 do
    let x = Rng.below r 7 in
    Alcotest.(check bool) "0 <= x < 7" true (x >= 0 && x < 7)
  done

let test_below_one () =
  let r = Helpers.rng () in
  Alcotest.(check int) "below 1 is 0" 0 (Rng.below r 1)

let test_below_invalid () =
  let r = Helpers.rng () in
  Alcotest.check_raises "below 0 rejected"
    (Invalid_argument "Rng.below: n must be positive") (fun () ->
      ignore (Rng.below r 0))

let test_below_covers_all () =
  let r = Helpers.rng () in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.below r 5) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_float_range () =
  let r = Helpers.rng () in
  for _ = 1 to 1000 do
    let x = Rng.float r in
    Alcotest.(check bool) "0 <= x < 1" true (x >= 0. && x < 1.)
  done

let test_float_mean () =
  let r = Helpers.rng () in
  let n = 10_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.float r
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (mean -. 0.5) < 0.02)

let test_bool_balanced () =
  let r = Helpers.rng () in
  let trues = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Rng.bool r then incr trues
  done;
  let frac = float_of_int !trues /. float_of_int n in
  Alcotest.(check bool) "roughly fair" true (abs_float (frac -. 0.5) < 0.03)

let test_shuffle_permutes () =
  let r = Helpers.rng () in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 (fun i -> i)) sorted

let test_permutation_valid () =
  let r = Helpers.rng () in
  let p = Rng.permutation r 64 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 64 (fun i -> i)) sorted

let test_sample_invariants () =
  let r = Helpers.rng () in
  for _ = 1 to 50 do
    let n = 1 + Rng.below r 40 in
    let k = Rng.below r (n + 1) in
    let s = Rng.sample r ~k ~n in
    Alcotest.(check int) "size k" k (List.length s);
    Helpers.check_sorted_ints "sorted" s;
    Alcotest.(check bool) "distinct in range" true
      (List.for_all (fun x -> x >= 0 && x < n) s
      && List.length (List.sort_uniq compare s) = k)
  done

let test_sample_full () =
  let r = Helpers.rng () in
  Alcotest.(check (list int)) "k = n samples everything" [ 0; 1; 2; 3 ]
    (Rng.sample r ~k:4 ~n:4)

let test_sample_invalid () =
  let r = Helpers.rng () in
  Alcotest.check_raises "k > n rejected"
    (Invalid_argument "Rng.sample: need 0 <= k <= n") (fun () ->
      ignore (Rng.sample r ~k:5 ~n:4))

let prop_sample_uniformish =
  QCheck2.Test.make ~name:"sample hits every element eventually"
    ~count:20
    QCheck2.Gen.(int_range 1 12)
    (fun n ->
      let r = Helpers.rng () in
      let hits = Array.make n 0 in
      for _ = 1 to 200 do
        List.iter (fun x -> hits.(x) <- hits.(x) + 1)
          (Rng.sample r ~k:(max 1 (n / 2)) ~n)
      done;
      n = 1 || Array.for_all (fun h -> h > 0) hits)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "distinct seeds" `Quick test_distinct_seeds;
    Alcotest.test_case "copy snapshots" `Quick test_copy_snapshots;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "below range" `Quick test_below_range;
    Alcotest.test_case "below 1" `Quick test_below_one;
    Alcotest.test_case "below invalid" `Quick test_below_invalid;
    Alcotest.test_case "below covers residues" `Quick test_below_covers_all;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "float mean" `Quick test_float_mean;
    Alcotest.test_case "bool balanced" `Quick test_bool_balanced;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "permutation valid" `Quick test_permutation_valid;
    Alcotest.test_case "sample invariants" `Quick test_sample_invariants;
    Alcotest.test_case "sample full" `Quick test_sample_full;
    Alcotest.test_case "sample invalid" `Quick test_sample_invalid;
    Helpers.qcheck prop_sample_uniformish;
  ]
