(* Tests for distributed fetch-and-add. *)

module Gen = Countq_topology.Gen
module Tree = Countq_topology.Tree
module Spanning = Countq_topology.Spanning
module FA = Countq_counting.Fetch_add
module Rng = Countq_util.Rng

let check_valid msg (r : FA.run_result) =
  match r.valid with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Format.asprintf "%s: %a" msg FA.pp_error e)

let path_tree n = Tree.of_graph (Gen.path n) ~root:0

(* ---- validator ---- *)

let o node increment before = { FA.node; increment; before; round = 0 }

let test_validate_good () =
  (* order 2 (v=5), 0 (v=3), 1 (v=0): prefixes 0, 5, 8. *)
  let requests = [ (0, 3); (1, 0); (2, 5) ] in
  let outcomes = [ o 0 3 5; o 1 0 8; o 2 5 0 ] in
  Alcotest.(check bool) "valid" true
    (Result.is_ok (FA.validate ~requests outcomes))

let test_validate_zero_increments_share_prefix () =
  let requests = [ (0, 0); (1, 0); (2, 4) ] in
  let outcomes = [ o 0 0 0; o 1 0 0; o 2 4 0 ] in
  Alcotest.(check bool) "zeros may tie" true
    (Result.is_ok (FA.validate ~requests outcomes))

let test_validate_detects_gap () =
  let requests = [ (0, 2); (1, 2) ] in
  let outcomes = [ o 0 2 0; o 1 2 3 ] in
  (match FA.validate ~requests outcomes with
  | Error FA.Inconsistent_prefixes -> ()
  | _ -> Alcotest.fail "expected Inconsistent_prefixes")

let test_validate_detects_two_positives_tied () =
  let requests = [ (0, 2); (1, 3) ] in
  let outcomes = [ o 0 2 0; o 1 3 0 ] in
  (match FA.validate ~requests outcomes with
  | Error FA.Inconsistent_prefixes -> ()
  | _ -> Alcotest.fail "expected Inconsistent_prefixes")

let test_validate_wrong_increment () =
  let requests = [ (0, 2) ] in
  (match FA.validate ~requests [ o 0 3 0 ] with
  | Error (FA.Wrong_increment 0) -> ()
  | _ -> Alcotest.fail "expected Wrong_increment")

let test_validate_missing () =
  let requests = [ (0, 2); (5, 1) ] in
  (match FA.validate ~requests [ o 0 2 0 ] with
  | Error (FA.Missing_node 5) -> ()
  | _ -> Alcotest.fail "expected Missing_node")

(* ---- protocols ---- *)

let random_requests rng ~k ~n =
  List.map (fun v -> (v, Rng.below rng 10)) (Rng.sample rng ~k ~n)

let test_central_line () =
  let g = Gen.path 8 in
  let r = FA.run_central ~graph:g ~requests:[ (3, 7); (5, 2) ] () in
  check_valid "central" r;
  Alcotest.(check int) "two outcomes" 2 (List.length r.outcomes)

let test_combining_matches_counting_when_unit () =
  (* With all increments 1, [before] must be rank - 1 in the same DFS
     order the counting combining tree assigns. *)
  let g = Gen.perfect_tree ~arity:2 ~height:3 in
  let tree = Tree.of_graph g ~root:0 in
  let n = Tree.n tree in
  let requests = List.map (fun v -> (v, 1)) (Helpers.all_nodes n) in
  let fa = FA.run_combining ~tree ~requests () in
  check_valid "unit combining" fa;
  let counting =
    Countq_counting.Combining.run ~tree ~requests:(Helpers.all_nodes n) ()
  in
  List.iter
    (fun (c : Countq_counting.Counts.outcome) ->
      let f = List.find (fun (x : FA.outcome) -> x.node = c.node) fa.outcomes in
      Alcotest.(check int)
        (Printf.sprintf "node %d prefix = rank - 1" c.node)
        (c.count - 1) f.before)
    counting.outcomes

let test_sweep_running_sum () =
  let tree = path_tree 6 in
  let requests = [ (0, 4); (2, 1); (5, 3) ] in
  let r = FA.run_sweep ~tree ~requests () in
  check_valid "sweep" r;
  let before_of v =
    (List.find (fun (x : FA.outcome) -> x.node = v) r.outcomes).before
  in
  Alcotest.(check int) "node 0 first" 0 (before_of 0);
  Alcotest.(check int) "node 2 after 0" 4 (before_of 2);
  Alcotest.(check int) "node 5 after 0,2" 5 (before_of 5)

let test_zero_increments_everywhere () =
  let tree = path_tree 5 in
  let requests = List.map (fun v -> (v, 0)) (Helpers.all_nodes 5) in
  List.iter
    (fun r -> check_valid "all zeros" r)
    [
      FA.run_sweep ~tree ~requests ();
      FA.run_combining ~tree ~requests ();
      FA.run_central ~graph:(Gen.path 5) ~requests ();
    ]

let test_empty_requests () =
  let tree = path_tree 4 in
  let r = FA.run_combining ~tree ~requests:[] () in
  check_valid "empty" r;
  Alcotest.(check int) "silent" 0 (List.length r.outcomes)

let test_delay_shape_matches_counting () =
  (* Fetch&add costs what counting costs under the same structure: the
     extra payload is free in the message-count model. *)
  let n = 64 in
  let g = Gen.star n in
  let fa =
    FA.run_central ~graph:g
      ~requests:(List.map (fun v -> (v, 2)) (Helpers.all_nodes n))
      ()
  in
  let c = Countq_counting.Central.run ~graph:g ~requests:(Helpers.all_nodes n) () in
  Alcotest.(check int) "same total delay" c.total_delay fa.total_delay

let test_rejects_negative_increment () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Fetch_add.run_central: negative increment") (fun () ->
      ignore (FA.run_central ~graph:(Gen.path 3) ~requests:[ (1, -2) ] ()))

let prop_all_protocols_valid =
  QCheck2.Test.make ~name:"fetch&add meets its spec on any instance"
    ~count:100 ~print:Helpers.instance_print Helpers.instance_gen
    (fun (_, g, nodes) ->
      let rng = Rng.create 31L in
      let requests = List.map (fun v -> (v, Rng.below rng 6)) nodes in
      let tree = Spanning.bfs g ~root:0 in
      List.for_all
        (fun (r : FA.run_result) -> Result.is_ok r.valid)
        [
          FA.run_central ~graph:g ~requests ();
          FA.run_combining ~tree ~requests ();
          FA.run_sweep ~tree ~requests ();
        ])

let prop_total_sum_conserved =
  QCheck2.Test.make ~name:"max prefix + its increment = total sum" ~count:80
    ~print:Helpers.instance_print Helpers.nonempty_instance_gen
    (fun (_, g, nodes) ->
      let rng = Rng.create 77L in
      let requests = List.map (fun v -> (v, 1 + Rng.below rng 5)) nodes in
      let total = List.fold_left (fun acc (_, i) -> acc + i) 0 requests in
      let tree = Spanning.bfs g ~root:0 in
      let r = FA.run_combining ~tree ~requests () in
      match
        List.sort (fun (a : FA.outcome) b -> compare b.before a.before) r.outcomes
      with
      | last :: _ -> last.before + last.increment = total
      | [] -> false)

let suite =
  [
    Alcotest.test_case "validate: good" `Quick test_validate_good;
    Alcotest.test_case "validate: zero ties" `Quick
      test_validate_zero_increments_share_prefix;
    Alcotest.test_case "validate: gap" `Quick test_validate_detects_gap;
    Alcotest.test_case "validate: tied positives" `Quick
      test_validate_detects_two_positives_tied;
    Alcotest.test_case "validate: wrong increment" `Quick
      test_validate_wrong_increment;
    Alcotest.test_case "validate: missing" `Quick test_validate_missing;
    Alcotest.test_case "central on a line" `Quick test_central_line;
    Alcotest.test_case "combining = counting at unit increments" `Quick
      test_combining_matches_counting_when_unit;
    Alcotest.test_case "sweep running sum" `Quick test_sweep_running_sum;
    Alcotest.test_case "all-zero increments" `Quick test_zero_increments_everywhere;
    Alcotest.test_case "empty requests" `Quick test_empty_requests;
    Alcotest.test_case "delay shape matches counting" `Quick
      test_delay_shape_matches_counting;
    Alcotest.test_case "negative increment rejected" `Quick
      test_rejects_negative_increment;
    Helpers.qcheck prop_all_protocols_valid;
    Helpers.qcheck prop_total_sum_conserved;
  ]
