(* Tests for scenario-string parsing. *)

module Graph = Countq_topology.Graph
module Scenario = Countq.Scenario

let graph_of spec =
  match Scenario.topology spec with
  | Ok (name, g) -> (name, g)
  | Error (`Msg m) -> Alcotest.fail (spec ^ ": " ^ m)

let test_named_families () =
  List.iter
    (fun (spec, expect_name, expect_n) ->
      let name, g = graph_of spec in
      Alcotest.(check string) (spec ^ " name") expect_name name;
      Alcotest.(check int) (spec ^ " n") expect_n (Graph.n g))
    [
      ("complete:32", "complete-32", 32);
      ("path:10", "path-10", 10);
      ("list:10", "path-10", 10);
      ("mesh:256", "mesh-16x16", 256);
      ("mesh:250", "mesh-16x16", 256);
      ("hypercube:256", "hypercube-8", 256);
      ("hypercube:200", "hypercube-8", 256);
      ("torus:100", "torus-10x10", 100);
      ("ccc:100", "ccc-5", 160);
      ("butterfly:100", "butterfly-5", 192);
      ("star:2", "star-2", 2);
      ("binary-tree:20", "binary-tree-20", 20);
    ]

let test_default_size () =
  let _, g = graph_of "complete" in
  Alcotest.(check int) "default 64" 64 (Graph.n g)

let test_whitespace_and_case () =
  let name, _ = graph_of "  Mesh:16  " in
  Alcotest.(check string) "normalised" "mesh-4x4" name

let test_random_families_deterministic () =
  let _, a = graph_of "random-tree:40" in
  let _, b = graph_of "random-tree:40" in
  Alcotest.(check bool) "same seed same graph" true (Graph.equal a b);
  match Scenario.topology ~seed:9L "random-tree:40" with
  | Ok (_, c) ->
      Alcotest.(check bool) "other seed differs" false (Graph.equal a c)
  | Error _ -> Alcotest.fail "seeded parse"

let test_bad_topologies () =
  List.iter
    (fun spec ->
      match Scenario.topology spec with
      | Ok _ -> Alcotest.fail (spec ^ " should fail")
      | Error (`Msg _) -> ())
    [ "klein-bottle"; "mesh:zero"; "mesh:-4"; "complete:0" ]

let requests_of ~n spec =
  match Scenario.requests ~n spec with
  | Ok r -> r
  | Error (`Msg m) -> Alcotest.fail (spec ^ ": " ^ m)

let test_request_patterns () =
  Alcotest.(check int) "all" 20 (List.length (requests_of ~n:20 "all"));
  Alcotest.(check int) "half" 10 (List.length (requests_of ~n:20 "half"));
  Alcotest.(check int) "k" 7 (List.length (requests_of ~n:20 "k:7"));
  Alcotest.(check int) "k clamps" 20 (List.length (requests_of ~n:20 "k:99"));
  Alcotest.(check int) "density" 5 (List.length (requests_of ~n:20 "density:0.25"));
  Alcotest.(check (list int)) "nodes" [ 1; 5; 19 ]
    (requests_of ~n:20 "nodes:5,1,19,5")

let test_request_validation () =
  List.iter
    (fun spec ->
      match Scenario.requests ~n:10 spec with
      | Ok _ -> Alcotest.fail (spec ^ " should fail")
      | Error (`Msg _) -> ())
    [ "k:-1"; "density:1.5"; "nodes:3,99"; "sometimes"; "k:x" ]

let test_requests_in_range () =
  List.iter
    (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 33))
    (requests_of ~n:33 "density:0.6")

let prop_every_known_topology_parses =
  QCheck2.Test.make ~name:"every known family parses at many sizes" ~count:60
    QCheck2.Gen.(
      pair
        (oneofl Scenario.known_topologies)
        (int_range 2 80))
    (fun (name, n) ->
      match Scenario.topology (Printf.sprintf "%s:%d" name n) with
      | Ok (_, g) -> Graph.is_connected g
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "named families" `Quick test_named_families;
    Alcotest.test_case "default size" `Quick test_default_size;
    Alcotest.test_case "whitespace and case" `Quick test_whitespace_and_case;
    Alcotest.test_case "random families deterministic" `Quick
      test_random_families_deterministic;
    Alcotest.test_case "bad topologies" `Quick test_bad_topologies;
    Alcotest.test_case "request patterns" `Quick test_request_patterns;
    Alcotest.test_case "request validation" `Quick test_request_validation;
    Alcotest.test_case "requests in range" `Quick test_requests_in_range;
    Helpers.qcheck prop_every_known_topology_parses;
  ]
