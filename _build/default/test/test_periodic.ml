(* Tests for the periodic counting network and its embedding. *)

module Gen = Countq_topology.Gen
module Bitonic = Countq_counting.Bitonic
module Periodic = Countq_counting.Periodic
module Network = Countq_counting.Network
module Counts = Countq_counting.Counts

let test_sizes () =
  (* |Periodic[w]| = (w/2) log² w; depth = log² w. *)
  List.iter
    (fun (w, size, depth) ->
      let net = Periodic.create ~width:w in
      Alcotest.(check int) (Printf.sprintf "size w=%d" w) size (Bitonic.size net);
      Alcotest.(check int) (Printf.sprintf "depth w=%d" w) depth (Bitonic.depth net))
    [ (1, 0, 0); (2, 1, 1); (4, 8, 4); (8, 36, 9); (16, 128, 16); (32, 400, 25) ]

let test_block_layers () =
  Alcotest.(check int) "w=1" 0 (Periodic.block_layers 1);
  Alcotest.(check int) "w=16" 4 (Periodic.block_layers 16);
  Alcotest.check_raises "w=12 rejected"
    (Invalid_argument "Periodic.block_layers: width must be a power of two >= 1")
    (fun () -> ignore (Periodic.block_layers 12))

let drive net m next_wire =
  let st = Bitonic.State.create net in
  let counts = ref [] in
  for t = 0 to m - 1 do
    let out = Bitonic.State.push st ~wire:(next_wire t) in
    let nth = (Bitonic.State.exit_counts st).(out) - 1 in
    counts :=
      Bitonic.count_of_exit ~width:(Bitonic.width net) ~wire:out ~nth :: !counts
  done;
  (Bitonic.State.has_step_property st, List.sort compare !counts)

let test_step_property () =
  List.iter
    (fun w ->
      let net = Periodic.create ~width:w in
      List.iter
        (fun m ->
          let step, counts = drive net m (fun t -> (t * 11 + 5) mod w) in
          Alcotest.(check bool) (Printf.sprintf "step w=%d m=%d" w m) true step;
          Alcotest.(check (list int))
            (Printf.sprintf "counts w=%d m=%d" w m)
            (List.init m (fun i -> i + 1))
            counts)
        [ 0; 1; 5; 17; 64; 129 ])
    [ 1; 2; 4; 8; 16 ]

let test_embedding_on_graph () =
  let n = 32 in
  let g = Gen.complete n in
  let net = Periodic.create ~width:8 in
  let r = Network.run ~net ~graph:g ~requests:(Helpers.all_nodes n) () in
  match r.valid with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Format.asprintf "periodic embedding: %a" Counts.pp_error e)

let test_width_net_disagreement () =
  let net = Periodic.create ~width:8 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Network.run: width disagrees with the given net")
    (fun () ->
      ignore
        (Network.run ~width:4 ~net ~graph:(Gen.complete 8)
           ~requests:[ 0; 1 ] ()))

let prop_periodic_counts =
  QCheck2.Test.make
    ~name:"periodic: step property + exact count set for random inputs"
    ~count:80
    QCheck2.Gen.(
      pair (int_range 0 5 >|= fun e -> 1 lsl e)
        (pair (int_range 0 100) (int_range 0 1_000_000)))
    (fun (w, (m, seed)) ->
      let net = Periodic.create ~width:w in
      let rng = Countq_util.Rng.create (Int64.of_int seed) in
      let step, counts = drive net m (fun _ -> Countq_util.Rng.below rng w) in
      step && counts = List.init m (fun i -> i + 1))

let prop_embedding_spec =
  QCheck2.Test.make ~name:"periodic embedding meets the counting spec"
    ~count:40 ~print:Helpers.instance_print Helpers.instance_gen
    (fun (_, g, requests) ->
      let net = Periodic.create ~width:4 in
      let r = Network.run ~net ~graph:g ~requests () in
      Result.is_ok r.valid)

let suite =
  [
    Alcotest.test_case "sizes and depths" `Quick test_sizes;
    Alcotest.test_case "block layers" `Quick test_block_layers;
    Alcotest.test_case "step property" `Quick test_step_property;
    Alcotest.test_case "embedding on graph" `Quick test_embedding_on_graph;
    Alcotest.test_case "width/net disagreement" `Quick test_width_net_disagreement;
    Helpers.qcheck prop_periodic_counts;
    Helpers.qcheck prop_embedding_spec;
  ]
