test/test_explore.ml: Alcotest Countq_arrow Countq_counting Countq_simnet Countq_topology Format List String
