test/test_integration.ml: Alcotest Countq Countq_arrow Countq_counting Countq_simnet Countq_topology Countq_tsp Countq_util Helpers List Printf Result
