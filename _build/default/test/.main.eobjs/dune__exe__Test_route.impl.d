test/test_route.ml: Alcotest Countq_simnet Countq_topology List
