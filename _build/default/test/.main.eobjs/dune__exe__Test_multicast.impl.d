test/test_multicast.ml: Alcotest Countq_multicast Countq_topology Countq_util Format Helpers Int64 List Printf QCheck2
