test/test_async.ml: Alcotest Array Countq_arrow Countq_counting Countq_simnet Countq_topology Helpers List Printf QCheck2 Result
