test/test_scenario.ml: Alcotest Countq Countq_topology Helpers List Printf QCheck2
