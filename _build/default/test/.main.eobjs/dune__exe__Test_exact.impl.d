test/test_exact.ml: Alcotest Countq_topology Countq_tsp Countq_util Helpers Int64 List QCheck2
