test/test_product.ml: Alcotest Countq_topology Helpers List QCheck2
