test/test_central_queue.ml: Alcotest Countq_arrow Countq_counting Countq_queuing Countq_topology Format Helpers List Printf QCheck2 Result
