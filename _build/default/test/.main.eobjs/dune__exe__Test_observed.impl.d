test/test_observed.ml: Alcotest Array Countq_arrow Countq_bounds Countq_simnet Countq_topology Helpers List QCheck2
