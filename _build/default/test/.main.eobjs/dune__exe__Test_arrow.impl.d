test/test_arrow.ml: Alcotest Array Countq_arrow Countq_simnet Countq_topology Countq_tsp Countq_util Format Hashtbl Helpers List Printf QCheck2 Result
