test/test_network.ml: Alcotest Array Countq_counting Countq_topology Countq_util Format Helpers Int64 List Printf QCheck2 Result
