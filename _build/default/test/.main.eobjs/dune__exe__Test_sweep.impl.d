test/test_sweep.ml: Alcotest Array Countq_bounds Countq_counting Countq_topology Format Helpers List Printf QCheck2 Result
