test/test_bounds.ml: Alcotest Countq_bounds Countq_tsp Helpers List Printf QCheck2
