test/test_counting.ml: Alcotest Countq_counting Countq_topology Countq_util Format Helpers Int64 List Printf QCheck2 Result
