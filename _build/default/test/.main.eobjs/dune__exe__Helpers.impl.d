test/helpers.ml: Alcotest Countq_topology Countq_util Int64 List Printf QCheck2 QCheck_alcotest String
