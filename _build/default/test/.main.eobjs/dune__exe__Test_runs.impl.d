test/test_runs.ml: Alcotest Array Countq_topology Countq_tsp Countq_util Helpers Int64 List QCheck2
