test/test_parallel.ml: Alcotest Countq_util Helpers List QCheck2
