test/test_token_ring.ml: Alcotest Countq_arrow Countq_queuing Countq_topology Format Helpers List Printf QCheck2 Result
