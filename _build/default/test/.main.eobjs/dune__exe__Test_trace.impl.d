test/test_trace.ml: Alcotest Countq_simnet Countq_topology Format List String
