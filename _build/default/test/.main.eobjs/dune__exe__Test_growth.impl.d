test/test_growth.ml: Alcotest Countq Countq_tsp Countq_util Helpers List Printf QCheck2
