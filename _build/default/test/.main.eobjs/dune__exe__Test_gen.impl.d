test/test_gen.ml: Alcotest Countq_topology Countq_util Helpers List QCheck2
