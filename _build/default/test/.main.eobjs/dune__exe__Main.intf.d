test/main.mli:
