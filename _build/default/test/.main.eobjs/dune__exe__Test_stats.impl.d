test/test_stats.ml: Alcotest Countq_util Helpers QCheck2
