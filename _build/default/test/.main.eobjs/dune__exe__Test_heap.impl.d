test/test_heap.ml: Alcotest Countq_util Helpers List QCheck2
