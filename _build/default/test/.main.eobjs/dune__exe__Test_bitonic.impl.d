test/test_bitonic.ml: Alcotest Array Countq_counting Countq_util Helpers Int64 List Printf QCheck2
