test/test_engine.ml: Alcotest Countq_simnet Countq_topology List Printf
