test/test_rng.ml: Alcotest Array Countq_util Fun Helpers List QCheck2
