test/test_core.ml: Alcotest Countq Countq_topology Format Helpers List Printf String
