test/test_hamilton.ml: Alcotest Countq_topology Helpers List Printf QCheck2 String
