test/test_counts.ml: Alcotest Countq_counting Result
