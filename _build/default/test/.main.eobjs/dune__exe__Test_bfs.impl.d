test/test_bfs.ml: Alcotest Array Countq_topology Helpers List QCheck2
