test/test_graph.ml: Alcotest Array Countq_topology Helpers QCheck2
