test/test_order.ml: Alcotest Array Countq_arrow Countq_util Format Helpers Int64 List QCheck2
