test/test_tree.ml: Alcotest Array Countq_topology Countq_util Helpers Int64 QCheck2
