test/test_fetch_add.ml: Alcotest Countq_counting Countq_topology Countq_util Format Helpers List Printf QCheck2 Result
