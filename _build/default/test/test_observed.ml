(* Tests for observed influence-set replay. *)

module Gen = Countq_topology.Gen
module Spanning = Countq_topology.Spanning
module Trace = Countq_simnet.Trace
module Observed = Countq_bounds.Observed
module Arrow = Countq_arrow

let test_empty_trace () =
  let g = Observed.of_trace ~n:4 [] in
  Alcotest.(check int) "no rounds" 0 g.rounds;
  Alcotest.(check (array int)) "initial" [| 1 |] g.max_influence

let test_single_receive () =
  let events = [ Trace.Received { round = 1; node = 0; src = 1 } ] in
  let g = Observed.of_trace ~n:2 events in
  Alcotest.(check (array int)) "grows to 2" [| 1; 2 |] g.max_influence

let test_chain_growth_linear () =
  (* A relay chain: node i learns of i+1 inputs after i hops. *)
  let n = 6 in
  let events =
    List.init (n - 1) (fun i ->
        Trace.Received { round = i + 1; node = i + 1; src = i })
  in
  let g = Observed.of_trace ~n events in
  Alcotest.(check (array int)) "linear growth" [| 1; 2; 3; 4; 5; 6 |]
    g.max_influence

let test_monotone () =
  (* A later quiet round must not drop the maximum. *)
  let events =
    [
      Trace.Received { round = 1; node = 0; src = 1 };
      Trace.Completed { round = 3; node = 0 };
    ]
  in
  let g = Observed.of_trace ~n:2 events in
  Alcotest.(check (array int)) "monotone" [| 1; 2; 2; 2 |] g.max_influence

let test_envelope_violated_by_impossible_trace () =
  (* 16 distinct sources into one node in round 1 exceeds tow(2) = 4. *)
  let events =
    List.init 16 (fun i -> Trace.Received { round = 1; node = 16; src = i })
  in
  let g = Observed.of_trace ~n:17 events in
  Alcotest.(check bool) "violation detected" false (Observed.within_envelope g)

let test_arrow_trace_within_envelope () =
  (* Base-model runs (capacity 1): the Lemma 3.4 envelope applies. *)
  List.iter
    (fun g0 ->
      let tree = Spanning.best_for_arrow g0 in
      let n = Countq_topology.Graph.n g0 in
      let _, events =
        Arrow.Protocol.run_one_shot_traced
          ~config:Countq_simnet.Engine.default_config ~tree
          ~requests:(Helpers.all_nodes n) ()
      in
      let g = Observed.of_trace ~n events in
      Alcotest.(check bool) "within tow(2t)" true (Observed.within_envelope g))
    [ Gen.complete 32; Gen.square_mesh 6; Gen.path 40 ]

let test_snapshot_semantics () =
  (* A send queued before a receive must NOT carry what the sender
     learned afterwards: 1 queues to 2, then 1 receives from 0; node 2
     must end up with {1,2} only. *)
  let events =
    [
      Trace.Queued_send { round = 1; node = 1; dst = 2 };
      Trace.Received { round = 1; node = 1; src = 0 };
      Trace.Received { round = 2; node = 2; src = 1 };
    ]
  in
  let g = Observed.of_trace ~n:3 events in
  Alcotest.(check (array int)) "no retroactive influence" [| 1; 2; 2 |]
    g.max_influence

let prop_observed_bounded_by_n =
  QCheck2.Test.make ~name:"observed influence never exceeds n" ~count:60
    ~print:Helpers.instance_print Helpers.instance_gen
    (fun (_, g0, requests) ->
      let tree = Spanning.best_for_arrow g0 in
      let n = Countq_topology.Graph.n g0 in
      let _, events = Arrow.Protocol.run_one_shot_traced ~tree ~requests () in
      let g = Observed.of_trace ~n events in
      Array.for_all (fun size -> size >= 1 && size <= n) g.max_influence)

let suite =
  [
    Alcotest.test_case "empty trace" `Quick test_empty_trace;
    Alcotest.test_case "single receive" `Quick test_single_receive;
    Alcotest.test_case "chain growth" `Quick test_chain_growth_linear;
    Alcotest.test_case "monotone" `Quick test_monotone;
    Alcotest.test_case "impossible trace flagged" `Quick
      test_envelope_violated_by_impossible_trace;
    Alcotest.test_case "arrow within envelope" `Quick
      test_arrow_trace_within_envelope;
    Alcotest.test_case "snapshot semantics" `Quick test_snapshot_semantics;
    Helpers.qcheck prop_observed_bounded_by_n;
  ]
