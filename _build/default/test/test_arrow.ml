(* Tests for the arrow protocol: safety (total order) on every
   topology/request set, delay semantics, notify mode, long-lived
   mode, and the Theorem 4.1 relation to the NN TSP. *)

module Graph = Countq_topology.Graph
module Gen = Countq_topology.Gen
module Tree = Countq_topology.Tree
module Spanning = Countq_topology.Spanning
module Arrow = Countq_arrow
module Tsp = Countq_tsp

let tree_of g = Spanning.best_for_arrow g

let run ?notify ?tail g requests =
  Arrow.Protocol.run_one_shot ?notify ?tail ~tree:(tree_of g) ~requests ()

let check_valid msg (r : Arrow.Protocol.run_result) =
  match r.order with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Format.asprintf "%s: %a" msg Arrow.Order.pp_error e)

let test_no_requests () =
  let r = run (Gen.path 5) [] in
  Alcotest.(check int) "no outcomes" 0 (List.length r.outcomes);
  Alcotest.(check int) "no delay" 0 r.total_delay

let test_single_request_at_tail () =
  let r = run (Gen.path 5) [ 0 ] in
  check_valid "tail requests" r;
  Alcotest.(check int) "delay 0" 0 r.total_delay;
  match r.outcomes with
  | [ o ] -> Alcotest.(check bool) "pred is Init" true (o.pred = Arrow.Types.Init)
  | _ -> Alcotest.fail "one outcome expected"

let test_single_remote_request () =
  (* A single requester at distance d from the tail finds the tail in d
     rounds. *)
  let g = Gen.path 8 in
  let r = run g [ 5 ] in
  check_valid "remote" r;
  Alcotest.(check int) "delay = distance" 5 r.total_delay

let test_sequential_semantics_two_requests () =
  let g = Gen.path 4 in
  (* tail at 0; requests at 1 and 3. Node 1's message reaches 0 in one
     round; node 3's chases toward the flipped arrows and finds node
     1. *)
  let r = run g [ 1; 3 ] in
  check_valid "two" r;
  match r.order with
  | Ok ops ->
      Alcotest.(check (list int)) "order is 1 then 3" [ 1; 3 ]
        (List.map (fun (o : Arrow.Types.op) -> o.origin) ops)
  | Error _ -> assert false

let test_all_request_on_path () =
  let n = 32 in
  let r = run (Gen.path n) (Helpers.all_nodes n) in
  check_valid "all on path" r;
  (* Everyone's arrow flips at time 0; each queue() message terminates
     at a neighbour in one round, except the tail's own op (0 delay). *)
  Alcotest.(check int) "total = n-1" (n - 1) r.total_delay

let test_notify_delays_dominate () =
  let g = Gen.square_mesh 5 in
  let requests = [ 3; 7; 11; 19; 24 ] in
  let plain = run g requests in
  let notified = run ~notify:true g requests in
  check_valid "plain" plain;
  check_valid "notified" notified;
  List.iter
    (fun (o : Arrow.Types.outcome) ->
      let plain_delay =
        (List.find
           (fun (p : Arrow.Types.outcome) -> p.op = o.op)
           plain.outcomes)
          .round
      in
      Alcotest.(check bool) "notify >= plain" true (o.round >= plain_delay);
      Alcotest.(check int) "notified at origin" o.op.origin o.found_at)
    notified.outcomes

let test_custom_tail () =
  let g = Gen.path 6 in
  let r = Arrow.Protocol.run_one_shot ~tree:(tree_of g) ~tail:5 ~requests:[ 0 ] () in
  check_valid "custom tail" r;
  Alcotest.(check int) "distance to tail" 5 r.total_delay

let test_bad_requests_rejected () =
  let tree = tree_of (Gen.path 4) in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Arrow.run_one_shot: request out of range") (fun () ->
      ignore (Arrow.Protocol.run_one_shot ~tree ~requests:[ 7 ] ()));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Arrow.run_one_shot: duplicate request node") (fun () ->
      ignore (Arrow.Protocol.run_one_shot ~tree ~requests:[ 1; 1 ] ()))

let test_long_lived_chain () =
  let g = Gen.square_mesh 4 in
  let arrivals = [ (3, 0); (9, 2); (3, 5); (14, 5); (0, 11) ] in
  let r = Arrow.Protocol.run_long_lived ~tree:(tree_of g) ~arrivals () in
  check_valid "long lived" r;
  Alcotest.(check int) "five ops" 5 (List.length r.outcomes);
  (* seq numbers distinguish repeat issuers *)
  let seqs =
    List.filter_map
      (fun (o : Arrow.Types.outcome) ->
        if o.op.origin = 3 then Some o.op.seq else None)
      r.outcomes
  in
  Alcotest.(check (list int)) "node 3 has seq 0 and 1" [ 0; 1 ]
    (List.sort compare seqs)

let test_long_lived_delay_measured_from_issue () =
  (* One op issued late on an idle network still has a small delay. *)
  let g = Gen.path 10 in
  let r =
    Arrow.Protocol.run_long_lived ~tree:(tree_of g) ~arrivals:[ (9, 50) ] ()
  in
  check_valid "late op" r;
  Alcotest.(check int) "delay = distance, not 50 + distance" 9 r.total_delay

let test_long_lived_same_round_bursts () =
  (* Several arrivals at the same node in the same round (including
     round 0) must all be issued — regression for a schedule-jam bug. *)
  let g = Gen.path 6 in
  let arrivals = [ (2, 0); (2, 0); (4, 3); (4, 3); (4, 3); (1, 7) ] in
  let r = Arrow.Protocol.run_long_lived ~tree:(tree_of g) ~arrivals () in
  check_valid "bursts" r;
  Alcotest.(check int) "all six ops issued" 6 (List.length r.outcomes)

let test_traced_run_matches_plain () =
  let g = Gen.square_mesh 4 in
  let tree = tree_of g in
  let requests = [ 1; 6; 11 ] in
  let plain = Arrow.Protocol.run_one_shot ~tree ~requests () in
  let traced, events = Arrow.Protocol.run_one_shot_traced ~tree ~requests () in
  Alcotest.(check int) "same total" plain.total_delay traced.total_delay;
  Alcotest.(check int) "same messages" plain.messages traced.messages;
  Alcotest.(check bool) "events recorded" true (events <> []);
  let receives =
    List.length
      (List.filter
         (function Countq_simnet.Trace.Received _ -> true | _ -> false)
         events)
  in
  Alcotest.(check int) "one receive per message" plain.messages receives

let test_theorem41_bound_holds () =
  (* arrow total <= 2 * NN-TSP cost, across a spread of instances. *)
  let rng = Helpers.rng () in
  List.iter
    (fun g ->
      let tree = tree_of g in
      let n = Graph.n g in
      for _ = 1 to 5 do
        let k = 1 + Countq_util.Rng.below rng n in
        let requests = Countq_util.Rng.sample rng ~k ~n in
        let r = Arrow.Protocol.run_one_shot ~tree ~requests () in
        check_valid "tsp bound run" r;
        let tour = Tsp.Nn.on_tree tree ~start:(Tree.root tree) ~requests in
        Alcotest.(check bool)
          (Printf.sprintf "arrow (%d) <= 2 x TSP (%d)" r.total_delay tour.cost)
          true
          (r.total_delay <= 2 * tour.cost)
      done)
    [ Gen.path 40; Gen.square_mesh 6; Gen.complete 24; Gen.hypercube 5 ]

let prop_always_total_order =
  QCheck2.Test.make ~name:"arrow yields a valid total order on any instance"
    ~count:200 ~print:Helpers.instance_print Helpers.instance_gen
    (fun (_, g, requests) ->
      let r = Arrow.Protocol.run_one_shot ~tree:(tree_of g) ~requests () in
      Result.is_ok r.order
      && List.length r.outcomes = List.length requests)

let prop_notify_also_total_order =
  QCheck2.Test.make ~name:"notify mode also yields a valid total order"
    ~count:100 ~print:Helpers.instance_print Helpers.instance_gen
    (fun (_, g, requests) ->
      let r =
        Arrow.Protocol.run_one_shot ~notify:true ~tree:(tree_of g) ~requests ()
      in
      Result.is_ok r.order)

let real_time_check g arrivals =
  (* Helper: run long-lived arrow and evaluate the real-time (FIFO)
     condition on the resulting order. *)
  let n = Graph.n g in
  let r = Arrow.Protocol.run_long_lived ~tree:(tree_of g) ~arrivals () in
  match r.order with
  | Error _ -> None
  | Ok order ->
      let per_node = Array.make n [] in
      List.iter (fun (v, t) -> per_node.(v) <- t :: per_node.(v)) arrivals;
      Array.iteri (fun v ts -> per_node.(v) <- List.sort compare ts) per_node;
      let issue (op : Arrow.Types.op) = List.nth per_node.(op.origin) op.seq in
      let delay =
        let tbl = Hashtbl.create 32 in
        List.iter
          (fun (o : Arrow.Types.outcome) -> Hashtbl.replace tbl o.op o.round)
          r.outcomes;
        Hashtbl.find tbl
      in
      let complete op = issue op + delay op in
      Some (Arrow.Order.respects_real_time ~issue ~complete order)

let test_arrow_is_not_fifo () =
  (* Pinned counterexample: node 0 holds the initial tail; nodes 10 and
     11 request early (their messages crawl toward node 0), node 11's
     op even completes (finds its predecessor 10) at t=5 — then node 0
     issues at t=7 and still slots in FIRST (behind Init). Raymond-style
     path reversal is not FIFO; safety is unaffected. *)
  let g = Gen.square_mesh 4 in
  let arrivals = [ (10, 0); (11, 4); (0, 7) ] in
  match real_time_check g arrivals with
  | None -> Alcotest.fail "order must be valid"
  | Some respects ->
      Alcotest.(check bool) "real-time order violated" false respects

let test_sequentialised_arrivals_are_fifo () =
  (* With arrivals spaced beyond the network diameter, every message
     terminates before the next op is issued, and the order must match
     issue order exactly. *)
  let g = Gen.square_mesh 4 in
  let gap = 40 in
  let arrivals = List.mapi (fun i v -> (v, i * gap)) [ 10; 3; 0; 15; 7 ] in
  (match real_time_check g arrivals with
  | Some true -> ()
  | Some false -> Alcotest.fail "sequential arrivals must be FIFO"
  | None -> Alcotest.fail "order must be valid");
  let r = Arrow.Protocol.run_long_lived ~tree:(tree_of g) ~arrivals () in
  match r.order with
  | Ok order ->
      Alcotest.(check (list int)) "issue order preserved" [ 10; 3; 0; 15; 7 ]
        (List.map (fun (o : Arrow.Types.op) -> o.origin) order)
  | Error _ -> Alcotest.fail "valid order expected"

let prop_base_model_sound =
  (* Section 2.1's simulation claim: the strict base model (1 msg per
     round) stays a valid execution and costs at most c times the
     expanded-step run. *)
  QCheck2.Test.make ~name:"base model valid and within c x expanded cost"
    ~count:100 ~print:Helpers.instance_print Helpers.instance_gen
    (fun (_, g, requests) ->
      let tree = tree_of g in
      let c = max 1 (Tree.max_degree tree) in
      let expanded = Arrow.Protocol.run_one_shot ~tree ~requests () in
      let base =
        Arrow.Protocol.run_one_shot
          ~config:Countq_simnet.Engine.default_config ~tree ~requests ()
      in
      Result.is_ok base.order
      && base.total_delay <= c * expanded.total_delay)

let prop_first_in_order_is_closest =
  (* The head of the queue is a requester at minimum tree distance from
     the tail (ties possible, so only check distance equality). *)
  QCheck2.Test.make ~name:"queue head is nearest to the tail" ~count:100
    ~print:Helpers.instance_print Helpers.nonempty_instance_gen
    (fun (_, g, requests) ->
      let tree = tree_of g in
      let r = Arrow.Protocol.run_one_shot ~tree ~requests () in
      match r.order with
      | Ok (first :: _) ->
          let tail = Tree.root tree in
          let d v = Tree.dist tree tail v in
          let dmin =
            List.fold_left (fun acc v -> min acc (d v)) max_int requests
          in
          d first.origin = dmin
      | Ok [] -> requests = []
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "no requests" `Quick test_no_requests;
    Alcotest.test_case "single request at tail" `Quick test_single_request_at_tail;
    Alcotest.test_case "single remote request" `Quick test_single_remote_request;
    Alcotest.test_case "two sequentialised requests" `Quick
      test_sequential_semantics_two_requests;
    Alcotest.test_case "all request on path" `Quick test_all_request_on_path;
    Alcotest.test_case "notify delays dominate" `Quick test_notify_delays_dominate;
    Alcotest.test_case "custom tail" `Quick test_custom_tail;
    Alcotest.test_case "bad requests rejected" `Quick test_bad_requests_rejected;
    Alcotest.test_case "long-lived chain" `Quick test_long_lived_chain;
    Alcotest.test_case "long-lived delay from issue" `Quick
      test_long_lived_delay_measured_from_issue;
    Alcotest.test_case "long-lived same-round bursts" `Quick
      test_long_lived_same_round_bursts;
    Alcotest.test_case "traced run matches plain" `Quick test_traced_run_matches_plain;
    Alcotest.test_case "Theorem 4.1 bound" `Quick test_theorem41_bound_holds;
    Helpers.qcheck prop_always_total_order;
    Helpers.qcheck prop_notify_also_total_order;
    Alcotest.test_case "arrow is not FIFO (counterexample)" `Quick
      test_arrow_is_not_fifo;
    Alcotest.test_case "sequentialised arrivals are FIFO" `Quick
      test_sequentialised_arrivals_are_fifo;
    Helpers.qcheck prop_base_model_sound;
    Helpers.qcheck prop_first_in_order_is_closest;
  ]
