(* Shared helpers for the test suites. *)

module Rng = Countq_util.Rng
module Graph = Countq_topology.Graph
module Gen = Countq_topology.Gen
module Tree = Countq_topology.Tree

let qcheck = QCheck_alcotest.to_alcotest

(* A deterministic RNG per test, derived from a fixed master seed so
   failures replay exactly. *)
let rng () = Rng.create 0xdeadbeefL

let all_nodes n = List.init n (fun i -> i)

(* QCheck generator: a small connected topology from the paper's zoo,
   tagged with a printable name. *)
let topology_gen =
  let open QCheck2.Gen in
  let* pick = int_range 0 6 in
  match pick with
  | 0 ->
      let* n = int_range 1 40 in
      return (Printf.sprintf "complete-%d" n, Gen.complete n)
  | 1 ->
      let* n = int_range 1 60 in
      return (Printf.sprintf "path-%d" n, Gen.path n)
  | 2 ->
      let* n = int_range 2 40 in
      return (Printf.sprintf "star-%d" n, Gen.star n)
  | 3 ->
      let* s = int_range 2 7 in
      return (Printf.sprintf "mesh-%dx%d" s s, Gen.square_mesh s)
  | 4 ->
      let* d = int_range 1 5 in
      return (Printf.sprintf "hypercube-%d" d, Gen.hypercube d)
  | 5 ->
      let* h = int_range 0 4 in
      return
        (Printf.sprintf "pbt-2-%d" h, Gen.perfect_tree ~arity:2 ~height:h)
  | _ ->
      let* n = int_range 1 50 in
      let* seed = int_range 0 10_000 in
      return
        ( Printf.sprintf "rtree-%d-%d" n seed,
          Gen.random_tree (Rng.create (Int64.of_int seed)) n )

let topology_print (name, _) = name

(* A topology together with a (possibly empty) request subset. *)
let instance_gen =
  let open QCheck2.Gen in
  let* name, g = topology_gen in
  let n = Graph.n g in
  let* mask = list_size (return n) bool in
  let requests =
    List.filteri (fun i _ -> List.nth mask i) (all_nodes n)
  in
  return (name, g, requests)

let instance_print (name, g, requests) =
  Printf.sprintf "%s (n=%d) R={%s}" name (Graph.n g)
    (String.concat "," (List.map string_of_int requests))

(* A non-empty request instance. *)
let nonempty_instance_gen =
  let open QCheck2.Gen in
  let* name, g, requests = instance_gen in
  if requests = [] then return (name, g, [ 0 ]) else return (name, g, requests)

let check_sorted_ints msg l =
  Alcotest.(check (list int)) msg (List.sort compare l) l
