(* Tests for nearest-neighbour tours. *)

module Gen = Countq_topology.Gen
module Tree = Countq_topology.Tree
module Nn = Countq_tsp.Nn
module Tbounds = Countq_tsp.Tbounds

let path_tree n = Tree.of_graph (Gen.path n) ~root:0

let test_empty_requests () =
  let tour = Nn.on_tree (path_tree 5) ~start:2 ~requests:[] in
  Alcotest.(check int) "zero cost" 0 tour.cost;
  Alcotest.(check (array int)) "empty order" [||] tour.order

let test_start_in_requests_first () =
  let tour = Nn.on_tree (path_tree 5) ~start:2 ~requests:[ 0; 2; 4 ] in
  Alcotest.(check int) "start visited first at distance 0" 2 tour.order.(0);
  Alcotest.(check int) "first leg 0" 0 tour.legs.(0)

let test_greedy_picks_nearest () =
  let tour = Nn.on_tree (path_tree 10) ~start:3 ~requests:[ 0; 5 ] in
  (* 5 is at distance 2, 0 at distance 3. *)
  Alcotest.(check (array int)) "order" [| 5; 0 |] tour.order;
  Alcotest.(check int) "cost 2 + 5" 7 tour.cost

let test_tie_break_smallest_id () =
  let tour = Nn.on_tree (path_tree 7) ~start:3 ~requests:[ 1; 5 ] in
  (* both at distance 2: pick vertex 1. *)
  Alcotest.(check (array int)) "order" [| 1; 5 |] tour.order

let test_legs_sum_to_cost () =
  let rng = Helpers.rng () in
  let tree = Tree.of_graph (Gen.random_tree rng 40) ~root:0 in
  let requests = Countq_util.Rng.sample rng ~k:15 ~n:40 in
  let tour = Nn.on_tree tree ~start:0 ~requests in
  Alcotest.(check int) "sum legs = cost"
    (Array.fold_left ( + ) 0 tour.legs)
    tour.cost

let test_visits_exactly_requests () =
  let tour = Nn.on_tree (path_tree 12) ~start:0 ~requests:[ 11; 2; 7 ] in
  Alcotest.(check (list int)) "visited set" [ 2; 7; 11 ]
    (List.sort compare (Array.to_list tour.order))

let test_on_graph_matches_on_tree_for_trees () =
  let rng = Helpers.rng () in
  for _ = 1 to 10 do
    let g = Gen.random_tree rng 30 in
    let tree = Tree.of_graph g ~root:0 in
    let requests = Countq_util.Rng.sample rng ~k:10 ~n:30 in
    let a = Nn.on_tree tree ~start:0 ~requests in
    let b = Nn.on_graph g ~start:0 ~requests in
    Alcotest.(check int) "same cost" a.cost b.cost;
    Alcotest.(check (array int)) "same order" a.order b.order
  done

let test_on_metric () =
  (* Points on a line via an explicit metric. *)
  let dist u v = abs (u - v) in
  let tour = Nn.on_metric ~dist ~n:100 ~start:50 ~requests:[ 10; 55; 90 ] in
  Alcotest.(check (array int)) "order" [| 55; 90; 10 |] tour.order;
  Alcotest.(check int) "cost" (5 + 35 + 80) tour.cost

let test_rejects_bad_requests () =
  Alcotest.check_raises "range" (Invalid_argument "Nn.on_tree: request out of range")
    (fun () -> ignore (Nn.on_tree (path_tree 3) ~start:0 ~requests:[ 5 ]));
  Alcotest.check_raises "dup" (Invalid_argument "Nn.on_tree: duplicate request")
    (fun () -> ignore (Nn.on_tree (path_tree 3) ~start:0 ~requests:[ 1; 1 ]))

let test_worst_case_construction () =
  List.iter
    (fun n ->
      let start, requests = Nn.worst_case_on_list ~n in
      Alcotest.(check bool) "start in range" true (start >= 0 && start < n);
      List.iter
        (fun v ->
          Alcotest.(check bool) "request in range" true (v >= 0 && v < n))
        requests;
      let tour = Nn.on_tree (path_tree n) ~start ~requests in
      (* The zigzag pays strictly more than one sweep of the request
         span, and respects the 3n ceiling. *)
      let span =
        List.fold_left max 0 requests - List.fold_left min n requests
      in
      Alcotest.(check bool) "cost > span" true (tour.cost > span);
      Alcotest.(check bool) "cost <= 3n" true
        (tour.cost <= Tbounds.list_bound n))
    [ 16; 64; 256; 1000 ]

let prop_list_cost_within_3n =
  QCheck2.Test.make ~name:"Lemma 4.3: any list tour costs <= 3n" ~count:200
    QCheck2.Gen.(
      pair (int_range 2 80) (pair (int_range 0 1_000_000) (int_range 0 79)))
    (fun (n, (seed, start)) ->
      let start = start mod n in
      let rng = Countq_util.Rng.create (Int64.of_int seed) in
      let k = 1 + Countq_util.Rng.below rng n in
      let requests = Countq_util.Rng.sample rng ~k ~n in
      let tour = Nn.on_tree (path_tree n) ~start ~requests in
      tour.cost <= Tbounds.list_bound n)

let prop_tour_legs_are_distances =
  QCheck2.Test.make ~name:"tour legs equal tree distances between visits"
    ~count:60
    QCheck2.Gen.(pair (int_range 2 40) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Countq_util.Rng.create (Int64.of_int seed) in
      let tree = Tree.of_graph (Gen.random_tree rng n) ~root:0 in
      let k = 1 + Countq_util.Rng.below rng n in
      let requests = Countq_util.Rng.sample rng ~k ~n in
      let tour = Nn.on_tree tree ~start:0 ~requests in
      let ok = ref true in
      Array.iteri
        (fun i v ->
          let prev = if i = 0 then 0 else tour.order.(i - 1) in
          if tour.legs.(i) <> Tree.dist tree prev v then ok := false)
        tour.order;
      !ok)

let suite =
  [
    Alcotest.test_case "empty requests" `Quick test_empty_requests;
    Alcotest.test_case "start visited first" `Quick test_start_in_requests_first;
    Alcotest.test_case "greedy picks nearest" `Quick test_greedy_picks_nearest;
    Alcotest.test_case "tie break" `Quick test_tie_break_smallest_id;
    Alcotest.test_case "legs sum to cost" `Quick test_legs_sum_to_cost;
    Alcotest.test_case "visits exactly requests" `Quick test_visits_exactly_requests;
    Alcotest.test_case "graph matches tree" `Quick
      test_on_graph_matches_on_tree_for_trees;
    Alcotest.test_case "custom metric" `Quick test_on_metric;
    Alcotest.test_case "bad requests" `Quick test_rejects_bad_requests;
    Alcotest.test_case "worst case construction" `Quick test_worst_case_construction;
    Helpers.qcheck prop_list_cost_within_3n;
    Helpers.qcheck prop_tour_legs_are_distances;
  ]
