(* Tests for the bounds libraries: tower arithmetic, log*, the
   Section 3 lower-bound evaluators, the influence recurrences, and the
   Section 4 closed forms. *)

module Tow = Countq_bounds.Tow
module Lower = Countq_bounds.Lower
module Influence = Countq_bounds.Influence
module Tbounds = Countq_tsp.Tbounds

let test_tow_small () =
  List.iter
    (fun (j, expected) ->
      match Tow.tow j with
      | Tow.Finite v ->
          Alcotest.(check (float 1e-6)) (Printf.sprintf "tow %d" j) expected v
      | Tow.Huge _ -> Alcotest.fail "should be finite")
    [ (0, 1.); (1, 2.); (2, 4.); (3, 16.); (4, 65536.) ]

let test_tow_huge () =
  match Tow.tow 5 with
  | Tow.Huge _ -> ()
  | Tow.Finite v ->
      (* 2^65536 overflows float; allow Finite infinity only if the
         representation chose to keep it. *)
      Alcotest.(check bool) "tow 5 beyond float" true (v = infinity)

let test_tow_exceeds () =
  Alcotest.(check bool) "tow 4 > 65535" true (Tow.tow_exceeds 4 65535.);
  Alcotest.(check bool) "tow 4 > 65536 is false" false (Tow.tow_exceeds 4 65536.);
  Alcotest.(check bool) "tow 6 > 1e300" true (Tow.tow_exceeds 6 1e300)

let test_log_star () =
  List.iter
    (fun (k, expected) ->
      Alcotest.(check int) (Printf.sprintf "log* %d" k) expected
        (Tow.log_star_int k))
    [ (1, 0); (2, 1); (3, 2); (4, 2); (5, 3); (16, 3); (17, 4); (65536, 4); (65537, 5) ]

let test_min_t_with_tow_ge () =
  (* smallest t with tow(2t) >= k. tow 0 = 1, tow 2 = 4, tow 4 = 65536. *)
  List.iter
    (fun (k, expected) ->
      Alcotest.(check int) (Printf.sprintf "k=%d" k) expected
        (Tow.min_t_with_tow_ge k))
    [ (1, 0); (2, 1); (4, 1); (5, 2); (65536, 2); (65537, 3) ]

let test_latency_floor () =
  Alcotest.(check int) "k=0" 0 (Lower.latency_floor_count 0);
  Alcotest.(check int) "k=1" 0 (Lower.latency_floor_count 1);
  Alcotest.(check int) "k=4" 1 (Lower.latency_floor_count 4);
  Alcotest.(check int) "k=1000" 2 (Lower.latency_floor_count 1000)

let test_contention_lb_monotone () =
  let prev = ref 0 in
  List.iter
    (fun n ->
      let lb = Lower.contention_lb n in
      Alcotest.(check bool) "monotone" true (lb >= !prev);
      Alcotest.(check bool) "at least linear-ish" true (lb >= n - 4);
      prev := lb)
    [ 4; 16; 64; 256; 1024 ]

let test_contention_lb_value () =
  (* n = 5: floors are k=1:0, k=2:1, k=3:1, k=4:1, k=5:2 => 5. *)
  Alcotest.(check int) "n=5" 5 (Lower.contention_lb 5)

let test_diameter_lb () =
  Alcotest.(check int) "alpha=10" 15 (Lower.diameter_lb ~diameter:10);
  Alcotest.(check int) "alpha=0" 0 (Lower.diameter_lb ~diameter:0);
  Alcotest.(check int) "alpha=1" 0 (Lower.diameter_lb ~diameter:1);
  Alcotest.(check int) "alpha=2" 1 (Lower.diameter_lb ~diameter:2)

let test_latency_floor_diameter () =
  Alcotest.(check int) "far count" 5
    (Lower.latency_floor_diameter ~diameter:20 ~n:100 ~k:95);
  Alcotest.(check int) "low count clamps" 0
    (Lower.latency_floor_diameter ~diameter:20 ~n:100 ~k:50)

let test_best_lb () =
  let n = 100 in
  Alcotest.(check int) "diameter wins on the list"
    (Lower.diameter_lb ~diameter:99)
    (Lower.best_lb ~n ~diameter:99);
  Alcotest.(check int) "contention wins on K_n" (Lower.contention_lb n)
    (Lower.best_lb ~n ~diameter:1)

let test_influence_table_envelope () =
  List.iter
    (fun (r : Influence.row) ->
      Alcotest.(check bool)
        (Printf.sprintf "within envelope at t=%d" r.t)
        true r.within_envelope)
    (Influence.table ~rounds:10)

let test_influence_base_case () =
  match Influence.table ~rounds:0 with
  | [ r ] ->
      Alcotest.(check (float 0.)) "a0" 1. r.a;
      Alcotest.(check (float 0.)) "b0" 1. r.b
  | _ -> Alcotest.fail "single row"

let test_rounds_to_reach () =
  Alcotest.(check int) "already there" 0 (Influence.rounds_to_reach 1.);
  let t = Influence.rounds_to_reach 1e6 in
  Alcotest.(check bool) "a few rounds suffice" true (t >= 3 && t <= 5)

let test_f_recurrence () =
  Alcotest.(check int) "f 0" 0 (Tbounds.f 0);
  Alcotest.(check int) "f 1" 2 (Tbounds.f 1);
  Alcotest.(check int) "f 2" 8 (Tbounds.f 2);
  Alcotest.(check int) "f 3" 22 (Tbounds.f 3)

let test_f_bound_lemma48 () =
  for k = 0 to 20 do
    Alcotest.(check bool)
      (Printf.sprintf "f %d < 2^(k+2)" k)
      true
      (Tbounds.f k < Tbounds.f_bound k)
  done

let test_log2_ceil () =
  List.iter
    (fun (k, e) ->
      Alcotest.(check int) (Printf.sprintf "lg %d" k) e (Tbounds.log2_ceil k))
    [ (1, 0); (2, 1); (3, 2); (4, 2); (5, 3); (1024, 10); (1025, 11) ]

let test_perfect_binary_bound () =
  (* d = floor(log2 15) = 3: 2*3*4 + 8*15 = 144. *)
  Alcotest.(check int) "n=15" 144 (Tbounds.perfect_binary_bound ~n:15)

let test_rosenkrantz_ratio () =
  Alcotest.(check (float 1e-9)) "k=1" 1.0 (Tbounds.rosenkrantz_ratio 1);
  Alcotest.(check (float 1e-9)) "k=8" 2.0 (Tbounds.rosenkrantz_ratio 8);
  Alcotest.(check (float 1e-9)) "k=9" 2.5 (Tbounds.rosenkrantz_ratio 9)

let prop_log_star_inverse_of_tow =
  QCheck2.Test.make ~name:"log* (tow j) = j for small towers" ~count:5
    QCheck2.Gen.(int_range 0 4)
    (fun j ->
      match Tow.tow j with
      | Tow.Finite v -> Tow.log_star v = j
      | Tow.Huge _ -> true)

let prop_latency_floor_monotone =
  QCheck2.Test.make ~name:"latency floor is monotone in the count" ~count:100
    QCheck2.Gen.(int_range 1 100_000)
    (fun k -> Lower.latency_floor_count k <= Lower.latency_floor_count (k + 1))

let suite =
  [
    Alcotest.test_case "tow small" `Quick test_tow_small;
    Alcotest.test_case "tow huge" `Quick test_tow_huge;
    Alcotest.test_case "tow exceeds" `Quick test_tow_exceeds;
    Alcotest.test_case "log*" `Quick test_log_star;
    Alcotest.test_case "min t with tow >= k" `Quick test_min_t_with_tow_ge;
    Alcotest.test_case "latency floor" `Quick test_latency_floor;
    Alcotest.test_case "contention lb monotone" `Quick test_contention_lb_monotone;
    Alcotest.test_case "contention lb value" `Quick test_contention_lb_value;
    Alcotest.test_case "diameter lb" `Quick test_diameter_lb;
    Alcotest.test_case "diameter latency floor" `Quick test_latency_floor_diameter;
    Alcotest.test_case "best lb" `Quick test_best_lb;
    Alcotest.test_case "influence envelope" `Quick test_influence_table_envelope;
    Alcotest.test_case "influence base case" `Quick test_influence_base_case;
    Alcotest.test_case "rounds to reach" `Quick test_rounds_to_reach;
    Alcotest.test_case "f recurrence" `Quick test_f_recurrence;
    Alcotest.test_case "f bound (Lemma 4.8)" `Quick test_f_bound_lemma48;
    Alcotest.test_case "log2 ceil" `Quick test_log2_ceil;
    Alcotest.test_case "perfect binary bound" `Quick test_perfect_binary_bound;
    Alcotest.test_case "rosenkrantz ratio" `Quick test_rosenkrantz_ratio;
    Helpers.qcheck prop_log_star_inverse_of_tow;
    Helpers.qcheck prop_latency_floor_monotone;
  ]
