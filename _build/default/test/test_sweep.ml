(* Tests for the token-sweep counter. *)

module Gen = Countq_topology.Gen
module Tree = Countq_topology.Tree
module Spanning = Countq_topology.Spanning
module Sweep = Countq_counting.Sweep
module Counts = Countq_counting.Counts
module Bounds = Countq_bounds

let check_valid msg (r : Counts.run_result) =
  match r.valid with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Format.asprintf "%s: %a" msg Counts.pp_error e)

let path_tree n = Tree.of_graph (Gen.path n) ~root:0

let test_single_node () =
  let r = Sweep.run ~tree:(path_tree 1) ~requests:[ 0 ] () in
  check_valid "n=1" r;
  Alcotest.(check int) "zero delay" 0 r.total_delay

let test_list_all_is_triangular () =
  (* Node i gets the token at round i: total = n(n-1)/2, matching the
     Theorem 3.6 Omega(n^2) bound up to its constant. *)
  let n = 64 in
  let r = Sweep.run ~tree:(path_tree n) ~requests:(Helpers.all_nodes n) () in
  check_valid "list all" r;
  Alcotest.(check int) "triangular total" (n * (n - 1) / 2) r.total_delay;
  Alcotest.(check int) "makespan n-1" (n - 1) r.rounds

let test_list_tightness_vs_lower_bound () =
  (* Measured / Omega-bound stays a small constant: the diameter bound
     is tight on the list. *)
  let n = 256 in
  let r = Sweep.run ~tree:(path_tree n) ~requests:(Helpers.all_nodes n) () in
  let lb = Bounds.Lower.diameter_lb ~diameter:(n - 1) in
  let ratio = float_of_int r.total_delay /. float_of_int lb in
  Alcotest.(check bool)
    (Printf.sprintf "within constant of bound (%.2f)" ratio)
    true
    (ratio >= 1.0 && ratio < 4.5)

let test_ranks_follow_dfs_order () =
  let tree = Tree.of_graph (Gen.perfect_tree ~arity:2 ~height:3) ~root:0 in
  let n = Tree.n tree in
  let r = Sweep.run ~tree ~requests:(Helpers.all_nodes n) () in
  check_valid "pbt all" r;
  let order = Tree.dfs_order tree in
  let expected = Array.make n 0 in
  Array.iteri (fun i v -> expected.(v) <- i + 1) order;
  List.iter
    (fun (o : Counts.outcome) ->
      Alcotest.(check int)
        (Printf.sprintf "rank of %d" o.node)
        expected.(o.node) o.count)
    r.outcomes

let test_backtracking_charged () =
  (* On a star rooted at the centre the walk bounces back through the
     centre: leaf i (in child order) is first reached at round 2i+1. *)
  let tree = Tree.of_graph (Gen.star 4) ~root:0 in
  let r = Sweep.run ~tree ~requests:[ 1; 2; 3 ] () in
  check_valid "star leaves" r;
  let round_of v =
    (List.find (fun (o : Counts.outcome) -> o.node = v) r.outcomes).round
  in
  Alcotest.(check int) "leaf 1" 1 (round_of 1);
  Alcotest.(check int) "leaf 2" 3 (round_of 2);
  Alcotest.(check int) "leaf 3" 5 (round_of 3)

let test_messages_bounded_by_tour () =
  let rng = Helpers.rng () in
  let g = Gen.random_tree rng 40 in
  let tree = Tree.of_graph g ~root:0 in
  let r = Sweep.run ~tree ~requests:[ 39 ] () in
  check_valid "single far request" r;
  Alcotest.(check bool) "at most 2(n-1) messages" true (r.messages <= 2 * 39)

let test_empty_requests () =
  let r = Sweep.run ~tree:(path_tree 8) ~requests:[] () in
  check_valid "empty" r;
  Alcotest.(check int) "no outcomes" 0 (List.length r.outcomes)

let prop_sweep_spec =
  QCheck2.Test.make ~name:"token sweep meets the counting spec" ~count:120
    ~print:Helpers.instance_print Helpers.instance_gen
    (fun (_, g, requests) ->
      let tree = Spanning.bfs g ~root:0 in
      let r = Sweep.run ~tree ~requests () in
      Result.is_ok r.valid)

let suite =
  [
    Alcotest.test_case "single node" `Quick test_single_node;
    Alcotest.test_case "list all: triangular total" `Quick
      test_list_all_is_triangular;
    Alcotest.test_case "tight vs diameter bound" `Quick
      test_list_tightness_vs_lower_bound;
    Alcotest.test_case "ranks follow DFS order" `Quick test_ranks_follow_dfs_order;
    Alcotest.test_case "backtracking charged" `Quick test_backtracking_charged;
    Alcotest.test_case "message bound" `Quick test_messages_bounded_by_tour;
    Alcotest.test_case "empty requests" `Quick test_empty_requests;
    Helpers.qcheck prop_sweep_spec;
  ]
