(** Totally ordered multicast — the paper's Section 1 motivating
    application, implemented both ways.

    A set of senders each multicast one message to every processor; all
    processors must deliver the messages in the same order. The
    counting-based solution attaches a sequence number obtained from a
    distributed counter; the queuing-based solution of Herlihy,
    Tirthapura and Wattenhofer attaches the identity of the
    predecessor message obtained by distributed queuing. Receivers
    reconstruct the common order either way (rank order, or by chasing
    predecessor pointers), and deliver a message once it and all its
    order-predecessors have arrived.

    Both variants run on the same simulator: a coordination phase
    (counting or queuing, with the sender learning its label), then a
    dissemination phase in which each sender floods its message over a
    BFS tree rooted at itself starting the round its coordination
    completed — all floods share links and one-message-per-round
    processors, so dissemination contention is charged honestly.

    The paper's claim (Section 1): because queuing coordination is
    asymptotically cheaper, the queuing-based multicast delivers
    earlier. Experiment E12 measures exactly this. *)

type scheme =
  | Via_counting of [ `Central | `Combining | `Network ]
  | Via_queuing of [ `Arrow | `Central ]

val pp_scheme : Format.formatter -> scheme -> unit

type message_stat = {
  sender : int;
  position : int;  (** 1-based position in the agreed total order. *)
  coordination_done : int;  (** round the sender learned its label. *)
}

type result = {
  scheme : scheme;
  messages : message_stat list;  (** in total-order position. *)
  coordination_total : int;  (** sum of senders' coordination delays. *)
  coordination_makespan : int;
  dissemination_rounds : int;  (** last flood arrival round. *)
  total_delivery_latency : int;
      (** Σ over (receiver, message) of the delivery round. *)
  max_delivery_latency : int;
  mean_delivery_latency : float;
  network_messages : int;  (** coordination + flood messages. *)
}

val run :
  ?seed:int64 ->
  graph:Countq_topology.Graph.t ->
  senders:int list ->
  scheme ->
  result
(** [run ~graph ~senders scheme] simulates the full pipeline on the
    base model (capacities 1/1 for counting/central coordination; the
    arrow runs on its spanning tree with the usual expanded step, and
    its delays are scaled by the expansion factor so the comparison
    stays honest). The [`Network] width and balancer placement use
    [seed]. @raise Invalid_argument on bad senders. *)
