lib/multicast/ordered.mli: Countq_topology Format
