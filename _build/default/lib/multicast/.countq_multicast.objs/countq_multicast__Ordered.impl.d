lib/multicast/ordered.ml: Array Countq_arrow Countq_counting Countq_queuing Countq_simnet Countq_topology Format Hashtbl List
