(* Counting lower bounds (Section 3). See lower.mli. *)

let latency_floor_count k =
  if k < 1 then 0 else Tow.min_t_with_tow_ge k

let contention_lb n =
  let acc = ref 0 in
  for k = 1 to n do
    acc := !acc + latency_floor_count k
  done;
  !acc

let diameter_lb ~diameter =
  let h = diameter / 2 in
  h * (h + 1) / 2

let latency_floor_diameter ~diameter ~n ~k = max 0 ((diameter / 2) + k - n)

let best_lb ~n ~diameter = max (contention_lb n) (diameter_lb ~diameter)
