(* Tower arithmetic and log* (Definition 3.4). See tow.mli. *)

type tower = Finite of float | Huge of int

(* tow 4 = 65536; tow 5 = 2^65536 overflows float (max ~2^1024). *)
let tow j =
  if j < 0 then invalid_arg "Tow.tow: negative height";
  let rec go j acc =
    if j = 0 then Finite acc
    else if acc > 1023. then Huge j
    else go (j - 1) (Float.pow 2. acc)
  in
  (* Iterate from the top: tow j = 2^(tow (j-1)). Build upward. *)
  ignore go;
  let rec build i acc =
    if i >= j then Finite acc
    else if acc > 1023. then Huge (j - i)
      (* remaining exponentiations would overflow: tow j is "huge with
         (j - i) twos above a float-range tower". *)
    else build (i + 1) (Float.pow 2. acc)
  in
  build 0 1.

let tow_exceeds j x =
  match tow j with Finite v -> v > x | Huge _ -> true

let log_star k =
  if Float.is_nan k then invalid_arg "Tow.log_star: nan";
  let rec go k i = if k <= 1. then i else go (Float.log2 k) (i + 1) in
  go k 0

let log_star_int k = log_star (float_of_int k)

let min_t_with_tow_ge k =
  let kf = float_of_int k in
  let rec go t = if tow_exceeds (2 * t) (kf -. 1.) then t else go (t + 1) in
  (* tow (2t) >= k  <=>  tow (2t) > k - 1 on integers-as-floats. *)
  go 0

let pp_tower ppf = function
  | Finite v -> Format.fprintf ppf "%.0f" v
  | Huge j -> Format.fprintf ppf "tow(%d)+" j
