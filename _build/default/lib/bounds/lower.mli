(** Executable lower bounds on concurrent counting (Section 3).

    These are the floors any counting algorithm must respect; the
    experiments print them next to the measured cost of the best
    counting protocol in the portfolio and check the measured cost
    dominates. *)

val latency_floor_count : int -> int
(** Theorem 3.5 machinery: a processor that outputs count [k] has
    delay at least the smallest [t] with [tow (2t) >= k]
    (Lemmas 3.1 + 3.4) — asymptotically [log* k / 2]. *)

val contention_lb : int -> int
(** The Theorem 3.5 total-delay lower bound for [R = V] on {e any}
    graph on [n] vertices, summed exactly:
    [Σ_{k=1}^{n} latency_floor_count k] = [Ω(n log* n)]. (The paper
    sums only [k >= n/2] for the asymptotic statement; summing all [k]
    is the same bound with a better constant and still valid, since
    every count in [{1..n}] is output by exactly one processor.) *)

val diameter_lb : diameter:int -> int
(** Theorem 3.6: with all [n] nodes counting on a graph of diameter
    [α], node [v_k] (receiving count [k > n - α/2]) has delay at least
    [α/2 + k - n]; summing gives [Σ_{j=1}^{⌊α/2⌋} j = Ω(α²)]. *)

val latency_floor_diameter : diameter:int -> n:int -> k:int -> int
(** The per-node floor in Theorem 3.6's proof: [max 0 (α/2 + k - n)]
    (integer [α/2] taken as [floor]). *)

val best_lb : n:int -> diameter:int -> int
(** The better of {!contention_lb} and {!diameter_lb} — what E2/E3
    compare measured counting costs against. *)
