(** Observed influence sets: Section 3's [A(alg, i, t)] measured on an
    actual execution.

    The lower-bound proof tracks, for each processor [i] and time [t],
    the set of processors whose inputs can have influenced [i]'s state.
    Given the event trace of a real run (from
    [Countq_simnet.Trace.instrument]), this module replays the
    information flow — when [i] receives a message from [j] at round
    [t], everything influencing [j] (up to the send) now influences [i]
    — and reports the per-round maximum influence-set size, ready to
    compare against the [a(t)] recurrence and the [tow(2t)] envelope of
    Lemmas 3.2–3.4.

    Messages carry the sender's influence set as of the moment the
    send was queued (snapshots matched to deliveries in FIFO order), so
    the replay tracks the information flow exactly for traces produced
    by the synchronous engine.

    Note the Lemma 3.4 envelope is a base-model bound (one receive per
    round): traces of expanded-step runs (receive capacity > 1) can
    legitimately exceed it. Compare such traces against
    [tow (2 c t)] instead, or run the traced protocol with
    [Engine.default_config]. *)

type growth = {
  rounds : int;  (** horizon of the trace. *)
  max_influence : int array;
      (** [max_influence.(t)] = largest [|A(i, t)|] over all [i], for
          [t = 0 .. rounds]; [max_influence.(0) = 1]. *)
}

val of_trace : n:int -> Countq_simnet.Trace.event list -> growth
(** Replay a trace over [n] processors. Events must be in chronological
    order (as [Trace.instrument] returns them). *)

val within_envelope : growth -> bool
(** Whether [max_influence.(t) <= tow (2 t)] for every [t] — the
    Lemma 3.4 envelope, evaluated on the observed run. *)
