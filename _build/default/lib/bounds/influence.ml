(* Influence-set recurrences (Lemmas 3.2-3.4). See influence.mli. *)

type row = {
  t : int;
  a : float;
  b : float;
  tow2t : Tow.tower;
  within_envelope : bool;
}

let saturation = 1e300

let sat x = if x > saturation || Float.is_nan x then saturation else x

let step (a, b) =
  let a' = sat (a +. (a *. a *. b)) in
  let b' = sat (b *. (1. +. (2. *. a))) in
  (a', b')

let make_row t a b =
  let tow2t = Tow.tow (2 * t) in
  let within v = match tow2t with Tow.Finite f -> v <= f | Tow.Huge _ -> true in
  { t; a; b; tow2t; within_envelope = within a && within b }

let table ~rounds =
  if rounds < 0 then invalid_arg "Influence.table: negative rounds";
  let rec go t a b acc =
    let acc = make_row t a b :: acc in
    if t >= rounds then List.rev acc
    else begin
      let a', b' = step (a, b) in
      go (t + 1) a' b' acc
    end
  in
  go 0 1. 1. []

let rounds_to_reach k =
  let rec go t a b =
    if a >= k || a >= saturation then t
    else begin
      let a', b' = step (a, b) in
      go (t + 1) a' b'
    end
  in
  go 0 1. 1.
