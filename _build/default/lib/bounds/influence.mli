(** The influence-set recurrences of Lemmas 3.2–3.4.

    [a t] bounds the size of any processor's "affecting set"
    [A(alg, i, t)] — the processors whose inputs can influence its
    state after [t] rounds — and [b t] the reverse sets
    [B(alg, i, t)]. Lemma 3.2 shows
    [a (t+1) <= a t + (a t)² · b t], Lemma 3.3
    [b (t+1) <= b t · (1 + 2 · a t)], and Lemma 3.4 closes the
    induction with [a t, b t <= tow (2 t)]. This module iterates the
    recurrences (saturating far above any count of interest) so the
    tests can verify the Lemma 3.4 envelope numerically, and so
    experiment E4 can print the growth table. *)

type row = {
  t : int;
  a : float;  (** recurrence upper bound on [a t] (saturating). *)
  b : float;  (** recurrence upper bound on [b t] (saturating). *)
  tow2t : Tow.tower;  (** the Lemma 3.4 envelope [tow (2 t)]. *)
  within_envelope : bool;  (** [a t <= tow 2t && b t <= tow 2t]. *)
}

val table : rounds:int -> row list
(** [table ~rounds] iterates from [a 0 = b 0 = 1] for the given number
    of rounds (row [t = 0] included). Values saturate at [1e300]. *)

val rounds_to_reach : float -> int
(** [rounds_to_reach k]: the first [t] at which the recurrence's [a t]
    reaches [k] — an upper bound on how fast information can spread,
    dual to {!Lower.latency_floor_count}. *)
