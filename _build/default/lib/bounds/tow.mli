(** Tower arithmetic and iterated logarithms (Definition 3.4).

    [tow j = 2^(2^(…^2))] ([j] twos) explodes past machine range at
    [j = 5], so towers are represented symbolically above a finite
    threshold; [log* k] is computed by direct iteration. *)

type tower =
  | Finite of float  (** exact (to float precision) value. *)
  | Huge of int  (** [tow j] for a [j] whose value exceeds float range. *)

val tow : int -> tower
(** [tow j] for [j >= 0] ([tow 0 = 1]). *)

val tow_exceeds : int -> float -> bool
(** [tow_exceeds j x]: is [tow j > x]? Works for all [j]. *)

val log_star : float -> int
(** [log_star k] = min [i >= 0] such that applying [log2] [i] times to
    [k] gives a value [<= 1] (Definition 3.4). [log_star 1. = 0],
    [log_star 2. = 1], [log_star 16. = 3], [log_star 65536. = 4]. *)

val log_star_int : int -> int
(** {!log_star} on an integer argument. *)

val min_t_with_tow_ge : int -> int
(** [min_t_with_tow_ge k] = the smallest [t >= 0] with
    [tow (2 t) >= k] — the latency floor of Theorem 3.5's proof: a
    processor outputting count [k] has delay at least this. Equals
    [ceil (log_star k / 2)] for [k >= 2]. *)

val pp_tower : Format.formatter -> tower -> unit
