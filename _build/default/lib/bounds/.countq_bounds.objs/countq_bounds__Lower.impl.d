lib/bounds/lower.ml: Tow
