lib/bounds/influence.ml: Float List Tow
