lib/bounds/tow.ml: Float Format
