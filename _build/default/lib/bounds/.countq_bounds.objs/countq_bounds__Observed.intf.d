lib/bounds/observed.mli: Countq_simnet
