lib/bounds/observed.ml: Array Bytes Char Countq_simnet Hashtbl Lazy List Queue Tow
