lib/bounds/lower.mli:
