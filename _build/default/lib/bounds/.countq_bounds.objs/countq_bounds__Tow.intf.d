lib/bounds/tow.mli: Format
