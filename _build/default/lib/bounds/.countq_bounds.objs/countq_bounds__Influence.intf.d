lib/bounds/influence.mli: Tow
