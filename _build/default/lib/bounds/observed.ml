(* Observed influence sets from execution traces. See observed.mli. *)

module Trace = Countq_simnet.Trace

type growth = { rounds : int; max_influence : int array }

let popcount_table =
  lazy
    (Array.init 256 (fun b ->
         let rec bits x = if x = 0 then 0 else (x land 1) + bits (x lsr 1) in
         bits b))

let popcount bytes =
  let table = Lazy.force popcount_table in
  let acc = ref 0 in
  Bytes.iter (fun c -> acc := !acc + table.(Char.code c)) bytes;
  !acc

let of_trace ~n events =
  if n < 1 then invalid_arg "Observed.of_trace: n must be >= 1";
  let words = (n + 7) / 8 in
  let sets =
    Array.init n (fun i ->
        let b = Bytes.make words '\000' in
        Bytes.set b (i / 8) (Char.chr (1 lsl (i mod 8)));
        b)
  in
  let horizon =
    List.fold_left
      (fun acc e ->
        match e with
        | Trace.Received { round; _ }
        | Trace.Queued_send { round; _ }
        | Trace.Completed { round; _ } ->
            max acc round)
      0 events
  in
  let max_influence = Array.make (horizon + 1) 1 in
  let current_max = ref 1 in
  let union dst src =
    for w = 0 to words - 1 do
      Bytes.set dst w
        (Char.chr (Char.code (Bytes.get dst w) lor Char.code (Bytes.get src w)))
    done
  in
  (* A message carries its sender's influence set as of the moment it
     was queued; links are FIFO, so snapshots pop in send order. *)
  let in_flight : (int * int, Bytes.t Queue.t) Hashtbl.t = Hashtbl.create 64 in
  let snapshots_of key =
    match Hashtbl.find_opt in_flight key with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace in_flight key q;
        q
  in
  List.iter
    (fun e ->
      match e with
      | Trace.Queued_send { node; dst; _ } ->
          Queue.push (Bytes.copy sets.(node)) (snapshots_of (node, dst))
      | Trace.Received { round; node; src } ->
          let q = snapshots_of (src, node) in
          let carried =
            (* A missing snapshot means the trace started mid-run;
               fall back to the sender's current set (conservative). *)
            if Queue.is_empty q then sets.(src) else Queue.pop q
          in
          union sets.(node) carried;
          let size = popcount sets.(node) in
          if size > !current_max then current_max := size;
          if !current_max > max_influence.(round) then
            max_influence.(round) <- !current_max
      | Trace.Completed _ -> ())
    events;
  (* Influence never shrinks: make the per-round maxima monotone. *)
  for t = 1 to horizon do
    if max_influence.(t) < max_influence.(t - 1) then
      max_influence.(t) <- max_influence.(t - 1)
  done;
  { rounds = horizon; max_influence }

let within_envelope g =
  let ok = ref true in
  Array.iteri
    (fun t size ->
      if not (Tow.tow_exceeds (2 * t) (float_of_int size -. 1.)) then
        (* tow (2t) >= size must hold: tow > size - 1. *)
        ok := false)
    g.max_influence;
  !ok
