(* Binary min-heap with FIFO tie-breaking. See heap.mli. *)

type ('k, 'v) entry = { key : 'k; seq : int; value : 'v }

type ('k, 'v) t = {
  mutable data : ('k, 'v) entry option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = Array.make 16 None; size = 0; next_seq = 0 }

let size h = h.size
let is_empty h = h.size = 0

let less a b =
  match compare a.key b.key with 0 -> a.seq < b.seq | c -> c < 0

let get h i =
  match h.data.(i) with Some e -> e | None -> assert false

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less (get h i) (get h parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && less (get h l) (get h !smallest) then smallest := l;
  if r < h.size && less (get h r) (get h !smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h key value =
  if h.size = Array.length h.data then begin
    let bigger = Array.make (2 * h.size) None in
    Array.blit h.data 0 bigger 0 h.size;
    h.data <- bigger
  end;
  h.data.(h.size) <- Some { key; seq = h.next_seq; value };
  h.next_seq <- h.next_seq + 1;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h =
  if h.size = 0 then None
  else begin
    let e = get h 0 in
    Some (e.key, e.value)
  end

let pop h =
  if h.size = 0 then None
  else begin
    let e = get h 0 in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    h.data.(h.size) <- None;
    if h.size > 0 then sift_down h 0;
    Some (e.key, e.value)
  end

let pop_exn h = match pop h with Some kv -> kv | None -> raise Not_found
