(** Deterministic splittable pseudo-random numbers (splitmix64).

    Every simulation in this repository is a pure function of
    (topology, request set, seed); this module is the only source of
    randomness. It is deliberately not [Stdlib.Random]: splitmix64 has a
    tiny, explicit state that can be split into independent streams, so
    concurrent experiments and property tests are exactly replayable. *)

type t
(** A mutable generator. *)

val create : int64 -> t
(** [create seed] makes a generator from a 64-bit seed. Generators with
    distinct seeds produce independent-looking streams. *)

val copy : t -> t
(** Snapshot of the current state. *)

val split : t -> t
(** [split r] advances [r] and returns a new generator whose stream is
    independent of the remainder of [r]'s stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** Next 30 uniformly random bits as a non-negative [int]. *)

val below : t -> int -> int
(** [below r n] is uniform in [0 .. n-1]. Uses rejection sampling, so it
    is exactly uniform. @raise Invalid_argument if [n <= 0]. *)

val float : t -> float
(** Uniform in [[0, 1)]. *)

val bool : t -> bool
(** A fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample : t -> k:int -> n:int -> int list
(** [sample r ~k ~n] draws a uniformly random [k]-subset of
    [0 .. n-1], returned sorted. @raise Invalid_argument if
    [k < 0 || k > n]. *)

val permutation : t -> int -> int array
(** [permutation r n] is a uniformly random permutation of [0 .. n-1]. *)
