(* Descriptive statistics. See stats.mli. *)

type summary = {
  count : int;
  total : int;
  mean : float;
  median : float;
  p95 : float;
  min : int;
  max : int;
  stddev : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty input";
  if q < 0. || q > 1. then invalid_arg "Stats.percentile: q outside [0, 1]";
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize samples =
  if samples = [] then invalid_arg "Stats.summarize: empty sample list";
  let a = Array.of_list (List.map float_of_int samples) in
  Array.sort compare a;
  let count = Array.length a in
  let total = List.fold_left ( + ) 0 samples in
  let mean = float_of_int total /. float_of_int count in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. a
    /. float_of_int count
  in
  {
    count;
    total;
    mean;
    median = percentile a 0.5;
    p95 = percentile a 0.95;
    min = int_of_float a.(0);
    max = int_of_float a.(count - 1);
    stddev = sqrt var;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.2f median=%.1f p95=%.1f max=%d" s.count
    s.mean s.median s.p95 s.max
