(** A classic binary min-heap on ordered keys, used by the
    discrete-event (asynchronous) simulator's event queue.

    Ties are broken by insertion order (FIFO among equal keys), which
    the asynchronous engine relies on to keep per-link FIFO delivery
    deterministic. *)

type ('k, 'v) t
(** A mutable min-heap with keys of type ['k] (compared with
    [Stdlib.compare]) and payloads of type ['v]. *)

val create : unit -> ('k, 'v) t

val size : ('k, 'v) t -> int

val is_empty : ('k, 'v) t -> bool

val push : ('k, 'v) t -> 'k -> 'v -> unit

val peek : ('k, 'v) t -> ('k * 'v) option
(** Smallest key (earliest inserted among equals), without removing. *)

val pop : ('k, 'v) t -> ('k * 'v) option
(** Remove and return what {!peek} returns. *)

val pop_exn : ('k, 'v) t -> 'k * 'v
(** @raise Not_found on an empty heap. *)
