(** Minimal deterministic fork–join parallelism over OCaml 5 domains.

    Experiments are pure functions of their seeds, so they can be
    evaluated on separate domains with no shared state; results come
    back in input order regardless of completion order. Used by the
    benchmark harness's [--jobs] option. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] evaluates [f] on every element using at most
    [jobs] domains (plus the caller). Results are in input order. If
    [f] raises on some element, the exception is re-raised in the
    caller after all domains are joined (the first failing index
    wins). [jobs <= 1] degrades to [List.map f xs].
    @raise Invalid_argument if [jobs < 1]. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1 — a sensible
    default for [--jobs]. *)
