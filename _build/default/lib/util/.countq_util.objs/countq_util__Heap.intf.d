lib/util/heap.mli:
