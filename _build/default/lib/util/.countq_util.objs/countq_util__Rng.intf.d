lib/util/rng.mli:
