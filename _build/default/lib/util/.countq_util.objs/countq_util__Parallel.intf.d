lib/util/parallel.mli:
