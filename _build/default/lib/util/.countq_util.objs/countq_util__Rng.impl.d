lib/util/rng.ml: Array Int Int64 Set
