(* Fork-join parallel map over domains. See parallel.mli. *)

type 'b outcome = Value of 'b | Failed of exn

let map ~jobs f xs =
  if jobs < 1 then invalid_arg "Parallel.map: jobs must be >= 1";
  if jobs = 1 then List.map f xs
  else begin
    let items = Array.of_list xs in
    let k = Array.length items in
    let results = Array.make k None in
    let next = Atomic.make 0 in
    (* Work-stealing by atomic counter: each domain claims the next
       unprocessed index until none remain. *)
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < k then begin
          let r = try Value (f items.(i)) with e -> Failed e in
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    let domains =
      List.init (min (jobs - 1) (max 0 (k - 1))) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join domains;
    Array.to_list
      (Array.map
         (fun cell ->
           match cell with
           | Some (Value v) -> v
           | Some (Failed e) -> raise e
           | None -> assert false)
         results)
  end

let recommended_jobs () = max 1 (Domain.recommended_domain_count () - 1)
