(** Small descriptive statistics over integer samples (delays, message
    counts) — used by the long-lived experiments and the multicast
    reports. *)

type summary = {
  count : int;
  total : int;
  mean : float;
  median : float;
  p95 : float;  (** 95th percentile (nearest-rank on the sorted data,
                    interpolated between neighbours). *)
  min : int;
  max : int;
  stddev : float;  (** population standard deviation. *)
}

val summarize : int list -> summary
(** [summarize samples] computes all fields in one pass over a sorted
    copy. @raise Invalid_argument on an empty list. *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [[0, 1]]: linear interpolation
    between closest ranks of an already-sorted array.
    @raise Invalid_argument on empty input or [q] outside [[0, 1]]. *)

val pp_summary : Format.formatter -> summary -> unit
(** One-line rendering: count/mean/median/p95/max. *)
