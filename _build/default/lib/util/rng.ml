(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. Small state, splittable, excellent quality
   for simulation workloads. *)

type t = { mutable state : int64 }

let golden = 0x9e3779b97f4a7c15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.logxor seed 0x5851f42d4c957f2dL) }
let copy r = { state = r.state }

let int64 r =
  r.state <- Int64.add r.state golden;
  mix r.state

let split r =
  let s = int64 r in
  { state = mix s }

let bits30 r = Int64.to_int (Int64.logand (int64 r) 0x3fffffffL)

let below r n =
  if n <= 0 then invalid_arg "Rng.below: n must be positive";
  if n = 1 then 0
  else begin
    (* Rejection sampling on 62 usable bits for exact uniformity. *)
    let mask = 0x3fffffffffffffffL in
    let bound = Int64.to_int (Int64.logand Int64.max_int mask) in
    let limit = bound - (bound mod n) in
    let rec draw () =
      let x = Int64.to_int (Int64.logand (int64 r) mask) in
      if x >= limit then draw () else x mod n
    in
    draw ()
  end

let float r =
  let x = Int64.shift_right_logical (int64 r) 11 in
  Int64.to_float x *. (1.0 /. 9007199254740992.0)

let bool r = Int64.logand (int64 r) 1L = 1L

let shuffle r a =
  for i = Array.length a - 1 downto 1 do
    let j = below r (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation r n =
  let a = Array.init n (fun i -> i) in
  shuffle r a;
  a

let sample r ~k ~n =
  if k < 0 || k > n then invalid_arg "Rng.sample: need 0 <= k <= n";
  (* Floyd's algorithm: O(k) expected insertions. *)
  let module S = Set.Make (Int) in
  let chosen = ref S.empty in
  for j = n - k to n - 1 do
    let t = below r (j + 1) in
    if S.mem t !chosen then chosen := S.add j !chosen
    else chosen := S.add t !chosen
  done;
  S.elements !chosen
