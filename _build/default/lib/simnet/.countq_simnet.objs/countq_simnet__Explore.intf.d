lib/simnet/explore.mli: Countq_topology Engine
