lib/simnet/route.mli: Countq_topology
