lib/simnet/async.mli: Countq_topology Engine
