lib/simnet/engine.mli: Countq_topology
