lib/simnet/explore.ml: Array Countq_topology Engine Hashtbl List Stack
