lib/simnet/trace.mli: Engine Format
