lib/simnet/async.ml: Array Countq_topology Countq_util Engine Hashtbl List Stdlib
