lib/simnet/engine.ml: Array Countq_topology Hashtbl List Queue
