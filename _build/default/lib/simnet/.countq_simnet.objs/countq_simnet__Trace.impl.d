lib/simnet/trace.ml: Array Buffer Char Engine Format List Option Printf
