lib/simnet/route.ml: Array Countq_topology
