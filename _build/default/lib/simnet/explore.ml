(* Exhaustive interleaving exploration. See explore.mli. *)

module Graph = Countq_topology.Graph

type stats = { explored : int; terminal : int; max_frontier : int }

exception Violation of string

(* An immutable configuration. Queues are lists with the head first;
   everything inside must be hashable/comparable structurally, which
   holds for the pure-state protocols this checker targets. *)
type ('s, 'm, 'r) config = {
  states : 's array;
  outbox : (int * 'm) list array; (* per node, FIFO *)
  links : ((int * int) * 'm list) list; (* sorted by key, FIFO per link *)
  completions : 'r Engine.completion list; (* reverse order of occurrence *)
}

let link_get links key =
  match List.assoc_opt key links with Some q -> q | None -> []

let link_set links key q =
  let without = List.remove_assoc key links in
  if q = [] then without
  else List.sort (fun (a, _) (b, _) -> compare a b) ((key, q) :: without)

let run ~graph ~protocol ~check ?(max_configs = 1_000_000) () =
  let n = Graph.n graph in
  (* Initial configuration: on_start everywhere. *)
  let states = Array.init n protocol.Engine.initial_state in
  let outbox = Array.make n [] in
  let completions = ref [] in
  for v = 0 to n - 1 do
    let s, actions = protocol.Engine.on_start ~node:v states.(v) in
    states.(v) <- s;
    List.iter
      (fun action ->
        match action with
        | Engine.Send (dst, msg) ->
            if not (Graph.has_edge graph v dst) then
              raise (Engine.Not_a_neighbor { node = v; dst });
            outbox.(v) <- outbox.(v) @ [ (dst, msg) ]
        | Engine.Complete value ->
            completions := { Engine.node = v; round = 0; value } :: !completions)
      actions
  done;
  let initial = { states; outbox; links = []; completions = !completions } in
  let visited = Hashtbl.create 4096 in
  let explored = ref 0 and terminal = ref 0 and max_frontier = ref 0 in
  let stack = Stack.create () in
  Stack.push initial stack;
  while not (Stack.is_empty stack) do
    max_frontier := max !max_frontier (Stack.length stack);
    let cfg = Stack.pop stack in
    if not (Hashtbl.mem visited cfg) then begin
      Hashtbl.replace visited cfg ();
      incr explored;
      if !explored > max_configs then
        invalid_arg "Explore.run: max_configs exceeded";
      (* Enumerate enabled events. *)
      let successors = ref [] in
      (* (a) transmit an outbox head onto its link. *)
      for v = 0 to n - 1 do
        match cfg.outbox.(v) with
        | [] -> ()
        | (dst, msg) :: rest ->
            let outbox = Array.copy cfg.outbox in
            outbox.(v) <- rest;
            let key = (v, dst) in
            let links = link_set cfg.links key (link_get cfg.links key @ [ msg ]) in
            successors := { cfg with outbox; links } :: !successors
      done;
      (* (b) deliver a link head. *)
      List.iter
        (fun ((src, dst), q) ->
          match q with
          | [] -> ()
          | msg :: rest ->
              let links = link_set cfg.links (src, dst) rest in
              let event_index =
                List.length cfg.completions + List.length cfg.links
              in
              let s, actions =
                protocol.Engine.on_receive ~round:event_index ~node:dst ~src msg
                  cfg.states.(dst)
              in
              let states = Array.copy cfg.states in
              states.(dst) <- s;
              let outbox = Array.copy cfg.outbox in
              let completions = ref cfg.completions in
              List.iter
                (fun action ->
                  match action with
                  | Engine.Send (d, m) ->
                      if not (Graph.has_edge graph dst d) then
                        raise (Engine.Not_a_neighbor { node = dst; dst = d });
                      outbox.(dst) <- outbox.(dst) @ [ (d, m) ]
                  | Engine.Complete value ->
                      completions :=
                        { Engine.node = dst; round = event_index; value }
                        :: !completions)
                actions;
              successors :=
                { states; outbox; links; completions = !completions }
                :: !successors)
        cfg.links;
      match !successors with
      | [] -> begin
          (* Quiescent: apply the safety check. *)
          incr terminal;
          match check (List.rev cfg.completions) with
          | Ok () -> ()
          | Error msg -> raise (Violation msg)
        end
      | succs -> List.iter (fun c -> Stack.push c stack) succs
    end
  done;
  { explored = !explored; terminal = !terminal; max_frontier = !max_frontier }
