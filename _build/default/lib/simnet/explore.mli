(** Exhaustive schedule exploration: a bounded model checker for
    protocols.

    The property tests sample random schedules; this module tries
    {e all} of them. Execution is modelled with fully asynchronous
    interleaving semantics — at each step the scheduler picks any one
    enabled event: transmit the head of some node's outbox onto its
    link, or deliver the head of some link's FIFO queue — which
    over-approximates every schedule the synchronous and event-driven
    engines (and any arbiter or delay oracle) can produce, because both
    only ever transmit and deliver in FIFO order per link. A safety
    predicate checked on every reachable quiescent configuration
    therefore holds under {e every} schedule of either engine.

    State spaces explode quickly: intended for instances with a handful
    of nodes and operations (the test suite verifies the arrow
    protocol's total-order safety and the central counter's count-set
    property on all schedules of 3–5 node instances — typically a few
    thousand configurations). *)

type stats = {
  explored : int;  (** distinct configurations visited. *)
  terminal : int;  (** quiescent configurations checked. *)
  max_frontier : int;  (** peak DFS stack depth. *)
}

exception Violation of string
(** Raised by {!run} when the predicate rejects some reachable
    quiescent configuration; carries the predicate's message. *)

val run :
  graph:Countq_topology.Graph.t ->
  protocol:('s, 'm, 'r) Engine.protocol ->
  check:('r Engine.completion list -> (unit, string) result) ->
  ?max_configs:int ->
  unit ->
  stats
(** [run ~graph ~protocol ~check ()] explores every interleaving of the
    protocol's one-shot execution ([on_start] at time 0; [on_tick] is
    ignored) and applies [check] to the completion list of each
    quiescent configuration (completions carry the event index as their
    [round], so delay-based checks are not meaningful here — check
    values, not times). Visited configurations are memoised
    structurally.
    @raise Violation on the first failing configuration.
    @raise Invalid_argument if [max_configs] (default 1_000_000) is
    exceeded — shrink the instance. *)
