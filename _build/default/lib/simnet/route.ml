(* Next-hop routing schemes. See route.mli. *)

module Graph = Countq_topology.Graph
module Tree = Countq_topology.Tree
module Bfs = Countq_topology.Bfs

type t = {
  next : int -> int -> int;
  dist : int -> int -> int option;
}

let next_hop r v dst = r.next v dst
let distance_hint r u v = r.dist u v

let of_tree tree =
  {
    next = (fun v dst -> Tree.next_hop tree v dst);
    dist = (fun u v -> Some (Tree.dist tree u v));
  }

let of_table g =
  let table = Bfs.next_hop_table g in
  let dists = Array.init (Graph.n g) (fun v -> Bfs.distances g v) in
  {
    next = (fun v dst -> table.(v).(dst));
    dist = (fun u v -> Some dists.(u).(v));
  }

let direct g =
  let n = Graph.n g in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if not (Graph.has_edge g u v) then
        invalid_arg "Route.direct: graph is not complete"
    done
  done;
  {
    next = (fun _v dst -> dst);
    dist = (fun u v -> Some (if u = v then 0 else 1));
  }

let of_fun next = { next; dist = (fun _ _ -> None) }

let auto g =
  let n = Graph.n g in
  if Graph.m g = n * (n - 1) / 2 then direct g else of_table g
