(** Next-hop routing for multi-hop protocols.

    The counting protocols need to move a request from its origin to a
    distant node (a counter root, a balancer) across several links.
    Routing tables are computed during the free initialisation step
    (Section 2.2) and are therefore not charged any delay; only the
    per-hop message transmissions cost time. *)

type t
(** A routing function over a fixed graph. *)

val next_hop : t -> int -> int -> int
(** [next_hop r v dst] is the neighbour of [v] on the chosen path
    toward [dst]; [v] itself when [v = dst]. *)

val distance_hint : t -> int -> int -> int option
(** Hop count along the route, when the scheme knows it cheaply. *)

val of_tree : Countq_topology.Tree.t -> t
(** Route along a spanning tree (memory-light, O(log n) per hop). *)

val of_table : Countq_topology.Graph.t -> t
(** Shortest-path routing from an all-pairs next-hop table (O(n²)
    memory; exact shortest paths on any connected graph). *)

val direct : Countq_topology.Graph.t -> t
(** One-hop routing for graphs where every pair is adjacent (K_n).
    @raise Invalid_argument if some pair is not adjacent. *)

val of_fun : (int -> int -> int) -> t
(** Wrap a custom next-hop function (e.g. dimension-order mesh
    routing); the function must return a neighbour strictly closer to
    the destination, and the destination itself once reached. *)

val auto : Countq_topology.Graph.t -> t
(** The cheapest adequate scheme: {!direct} when the graph is complete
    (recognised by its edge count), otherwise {!of_table}. This is what
    protocol drivers use by default. *)
