(* Centralised queue baseline. See central_queue.mli. *)

module Engine = Countq_simnet.Engine
module Route = Countq_simnet.Route
module Graph = Countq_topology.Graph
module Types = Countq_arrow.Types
module Order = Countq_arrow.Order

type msg =
  | Request of { origin : int }
  | Reply of { dest : int; pred : Types.pred }

type state = { last : Types.pred } (* meaningful at the root only *)

let run ?config ?(root = 0) ?route ~graph ~requests () =
  let n = Graph.n graph in
  if root < 0 || root >= n then invalid_arg "Central_queue.run: root out of range";
  let requesting = Array.make n false in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Central_queue.run: request out of range";
      if requesting.(v) then invalid_arg "Central_queue.run: duplicate request";
      requesting.(v) <- true)
    requests;
  let route = match route with Some r -> r | None -> Route.auto graph in
  let config = Option.value config ~default:Engine.default_config in
  let enqueue node s origin =
    let op = { Types.origin; seq = 0 } in
    let pred = s.last in
    let s = { last = Types.Op op } in
    if origin = node then (s, [ Engine.Complete (op, pred) ])
    else
      (s, [ Engine.Send (Route.next_hop route node origin, Reply { dest = origin; pred }) ])
  in
  let protocol =
    {
      Engine.name = "central-queue";
      initial_state = (fun _ -> { last = Types.Init });
      on_start =
        (fun ~node s ->
          if not requesting.(node) then (s, [])
          else if node = root then enqueue node s node
          else
            (s, [ Engine.Send (Route.next_hop route node root, Request { origin = node }) ]));
      on_receive =
        (fun ~round:_ ~node ~src:_ msg s ->
          match msg with
          | Request { origin } ->
              if node = root then enqueue node s origin
              else
                (s, [ Engine.Send (Route.next_hop route node root, Request { origin }) ])
          | Reply { dest; pred } ->
              if node = dest then
                (s, [ Engine.Complete ({ Types.origin = dest; seq = 0 }, pred) ])
              else
                (s, [ Engine.Send (Route.next_hop route node dest, Reply { dest; pred }) ]));
      on_tick = Engine.no_tick;
    }
  in
  let res = Engine.run ~graph ~config ~protocol in
  let outcomes =
    List.map
      (fun (c : _ Engine.completion) ->
        let op, pred = c.value in
        { Types.op; pred; found_at = c.node; round = c.round })
      res.completions
  in
  {
    Countq_arrow.Protocol.outcomes;
    order = Order.chain outcomes;
    rounds = res.rounds;
    messages = res.messages;
    total_delay = Order.total_delay outcomes;
    max_delay = Order.max_delay outcomes;
    expansion = res.expansion;
  }
