lib/queuing/token_ring.mli: Countq_arrow Countq_simnet Countq_topology
