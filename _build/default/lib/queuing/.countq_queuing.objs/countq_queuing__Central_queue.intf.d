lib/queuing/central_queue.mli: Countq_arrow Countq_simnet Countq_topology
