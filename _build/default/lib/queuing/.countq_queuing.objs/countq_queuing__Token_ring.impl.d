lib/queuing/token_ring.ml: Array Countq_arrow Countq_counting Countq_simnet Countq_topology List Option
