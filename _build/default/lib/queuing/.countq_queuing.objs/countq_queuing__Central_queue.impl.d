lib/queuing/central_queue.ml: Array Countq_arrow Countq_simnet Countq_topology List Option
