(** Distributed fetch-and-add: the "adding networks" direction the
    paper's conclusion raises (its reference [5], Fatourou–Herlihy).

    Each participating processor contributes a non-negative increment;
    operations are arranged into a total order and every processor
    receives the {e sum of the increments ordered before its own} (the
    classic fetch&add return value). Distributed counting is the
    special case where every increment is 1 and the return value is
    the rank minus one — so comparing the delays of fetch&add against
    counting and queuing probes exactly the Section 5 question of how
    coordination problems of different strength separate.

    Three implementations mirror the counting portfolio: a central
    accumulator, a combining tree (upsweep sums, downsweep prefix
    bases), and a token sweep. All run on the same simulator and are
    validated against the specification below. *)

type outcome = {
  node : int;
  increment : int;
  before : int;  (** sum of increments ordered before this operation. *)
  round : int;
}

type error =
  | Unrequested of int
  | Duplicate_node of int
  | Missing_node of int
  | Wrong_increment of int  (** returned increment differs from issued. *)
  | Inconsistent_prefixes
      (** no ordering of the operations yields these return values. *)

val pp_error : Format.formatter -> error -> unit

val validate : requests:(int * int) list -> outcome list -> (unit, error) result
(** [validate ~requests outcomes]: [requests] pairs each node with its
    increment (all increments [>= 0]); checks that some total order of
    the operations produces exactly the reported exclusive prefix
    sums. *)

type run_result = {
  outcomes : outcome list;
  valid : (unit, error) result;
  rounds : int;
  messages : int;
  total_delay : int;
  max_delay : int;
  expansion : int;
}

val run_central :
  ?config:Countq_simnet.Engine.config ->
  ?root:int ->
  ?route:Countq_simnet.Route.t ->
  graph:Countq_topology.Graph.t ->
  requests:(int * int) list ->
  unit ->
  run_result
(** Central accumulator: requests serialise at [root] (default 0) in
    arrival order. *)

val run_combining :
  ?config:Countq_simnet.Engine.config ->
  tree:Countq_topology.Tree.t ->
  requests:(int * int) list ->
  unit ->
  run_result
(** Combining tree: DFS-order prefix sums, default expanded step of the
    tree degree (as for the counting combining tree). *)

val run_sweep :
  ?config:Countq_simnet.Engine.config ->
  tree:Countq_topology.Tree.t ->
  requests:(int * int) list ->
  unit ->
  run_result
(** Token sweep: the token accumulates the running sum along the Euler
    tour. *)
