(** The periodic counting network of Aspnes, Herlihy and Shavit — the
    other classic counting network, built from [log w] identical
    {e blocks}.

    The block is the balancer form of the Dowd–Perl–Rudolph–Saks
    balanced merging network: a block of width [w = 2^k] has [k]
    layers, and layer [i] (for [i = 1 .. k]) joins every wire [j] to
    wire [j lxor (2^(k-i+1) - 1)] — a reflection within groups whose
    size halves each layer. [Periodic[w]] chains [log w] identical
    blocks and is a counting network of depth [log² w] — asymptotically
    the same as [Bitonic[w]] but with a completely regular, repeating
    structure, which matters for embeddings.

    The result reuses {!Bitonic.t}, so the {!Network} embedding and
    {!Bitonic.State} test driver work unchanged. *)

val block_layers : int -> int
(** Layers in one block ([log2 w]). *)

val create : width:int -> Bitonic.t
(** [create ~width] builds [Periodic[width]].
    @raise Invalid_argument unless [width] is a power of two >= 1. *)
