(* Periodic counting network (Aspnes-Herlihy-Shavit), whose block is
   the balancer form of the Dowd-Perl-Rudolph-Saks balanced merging
   network. See periodic.mli. *)

let block_layers w =
  if w < 1 || w land (w - 1) <> 0 then
    invalid_arg "Periodic.block_layers: width must be a power of two >= 1";
  let rec log2 p e = if p >= w then e else log2 (p * 2) (e + 1) in
  log2 1 0

let create ~width =
  let k = block_layers width in
  (* Straight-wired layers, built backwards from the outputs:
     [next.(j)] is where a token currently on wire [j] goes after the
     layer being prepended. Block layer [i] (1-indexed, forward order)
     pairs wire [j] with [j lxor (2^(k-i+1) - 1)] — a reflection within
     groups that halve every layer; the first token of a balancer
     continues on the lower-indexed wire. *)
  let next = Array.init width (fun j -> Bitonic.To_output j) in
  let succ = ref [] in
  let next_id = ref 0 in
  let prepend_layer ~mask =
    let fresh = Array.copy next in
    for j = 0 to width - 1 do
      let partner = j lxor mask in
      if partner > j then begin
        let id = !next_id in
        incr next_id;
        succ := (id, next.(j), next.(partner)) :: !succ;
        fresh.(j) <- Bitonic.To_balancer id;
        fresh.(partner) <- Bitonic.To_balancer id
      end
    done;
    Array.blit fresh 0 next 0 width
  in
  (* log w identical blocks; prepend each block's layers in reverse
     (forward masks are 2^k - 1, 2^(k-1) - 1, …, 1). *)
  for _block = 1 to k do
    for i = k downto 1 do
      (* forward layer i has mask 2^(k-i+1) - 1; prepending in reverse
         forward order means i = k (mask 1) is prepended first. *)
      let mask = (1 lsl (k - i + 1)) - 1 in
      prepend_layer ~mask
    done
  done;
  let n = !next_id in
  let succ_arr =
    Array.make n (Bitonic.To_output (-1), Bitonic.To_output (-1))
  in
  List.iter (fun (id, a, b) -> succ_arr.(id) <- (a, b)) !succ;
  Bitonic.make ~width ~succ:succ_arr ~entry:(Array.copy next)
