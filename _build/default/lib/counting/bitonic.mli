(** The bitonic counting network of Aspnes, Herlihy and Shavit
    ("Counting Networks", JACM 41(5), 1994) — the paper's canonical
    prior-art counting structure.

    A balancer is a two-input, two-output toggle: successive tokens
    leave on alternating output wires, the first on the {e top} output.
    A balancing network is a {e counting network} when in every
    quiescent state the numbers of tokens that have exited its output
    wires [y_0 … y_{w-1}] satisfy the {e step property}:
    [0 <= y_i - y_j <= 1] for [i < j]. [Bitonic[w]] — two [Bitonic[w/2]]
    networks feeding a [Merger[w]] — is a counting network of width [w]
    with [w (log w)(log w + 1) / 4] balancers and depth
    [(log w)(log w + 1) / 2].

    The network is represented as a DAG of balancers (the recursive
    construction wires sub-mergers through explicit permutations, so a
    flat layered picture would obscure it). This module is the pure
    structure plus a sequential token-driving harness for the property
    tests; the distributed message-passing embedding lives in
    {!Network}. *)

type dest =
  | To_balancer of int  (** id of the next balancer. *)
  | To_output of int  (** network output wire. *)

type balancer = {
  id : int;
  succ_top : dest;  (** where the 1st, 3rd, 5th… token goes. *)
  succ_bot : dest;  (** where the 2nd, 4th, 6th… token goes. *)
  layer : int;  (** longest distance from any network input. *)
}

type t
(** An immutable bitonic network. *)

val create : width:int -> t
(** [create ~width] builds [Bitonic[width]].
    @raise Invalid_argument unless [width] is a power of two >= 1. *)

val make :
  width:int -> succ:(dest * dest) array -> entry:dest array -> t
(** [make ~width ~succ ~entry] wraps an arbitrary balancing-network
    DAG in this module's representation (balancer [id]'s outputs are
    [succ.(id)]); layers and depth are recomputed. Used by {!Periodic}
    and by tests; it does NOT check the counting property — drive
    tokens through {!State} to test that.
    @raise Invalid_argument on dangling ids or out-of-range outputs. *)

val width : t -> int

val size : t -> int
(** Total number of balancers ([0] when [width = 1]). *)

val depth : t -> int
(** Number of layers on the longest input-to-output path. *)

val balancers : t -> balancer array
(** All balancers, indexed by [id]. Owned by the network. *)

val entry : t -> wire:int -> dest
(** Where a token injected on input [wire] goes first. *)

(** Mutable toggle state for driving tokens through a network. *)
module State : sig
  type network = t
  type t

  val create : network -> t

  val push : t -> wire:int -> int
  (** [push st ~wire] sends one token in on input [wire] and returns
      the output wire it exits on, flipping the toggles it traverses. *)

  val exit_counts : t -> int array
  (** Tokens that have exited each output wire so far. *)

  val has_step_property : t -> bool
  (** Whether {!exit_counts} currently satisfies the step property. *)
end

val count_of_exit : width:int -> wire:int -> nth:int -> int
(** [count_of_exit ~width ~wire ~nth] is the rank handed to the [nth]
    token (0-based) exiting output [wire]: [wire + nth * width + 1].
    With the step property this enumerates exactly [{1 .. m}] over all
    exits at quiescence. *)
