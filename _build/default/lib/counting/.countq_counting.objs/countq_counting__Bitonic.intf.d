lib/counting/bitonic.mli:
