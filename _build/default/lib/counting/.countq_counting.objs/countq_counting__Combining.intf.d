lib/counting/combining.mli: Countq_simnet Countq_topology Counts
