lib/counting/periodic.mli: Bitonic
