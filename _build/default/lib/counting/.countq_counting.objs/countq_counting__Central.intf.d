lib/counting/central.mli: Countq_simnet Countq_topology Counts
