lib/counting/central.ml: Array Countq_simnet Countq_topology Counts List Option
