lib/counting/fetch_add.mli: Countq_simnet Countq_topology Format
