lib/counting/fetch_add.ml: Array Countq_simnet Countq_topology Format Hashtbl List Option Sweep
