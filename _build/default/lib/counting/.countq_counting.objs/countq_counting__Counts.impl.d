lib/counting/counts.ml: Countq_simnet Format Hashtbl Int List Set
