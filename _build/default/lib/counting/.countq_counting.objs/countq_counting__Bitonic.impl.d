lib/counting/bitonic.ml: Array List
