lib/counting/periodic.ml: Array Bitonic List
