lib/counting/counts.mli: Countq_simnet Format
