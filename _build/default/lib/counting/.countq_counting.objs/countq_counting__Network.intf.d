lib/counting/network.mli: Bitonic Countq_simnet Countq_topology Counts
