lib/counting/combining.ml: Array Countq_simnet Countq_topology Counts List
