lib/counting/sweep.mli: Countq_simnet Countq_topology Counts
