lib/counting/network.ml: Array Bitonic Countq_simnet Countq_topology Countq_util Counts Hashtbl List Option
