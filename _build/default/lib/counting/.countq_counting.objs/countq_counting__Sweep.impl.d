lib/counting/sweep.ml: Array Countq_simnet Countq_topology Counts List Option
