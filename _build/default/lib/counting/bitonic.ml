(* Bitonic counting network (Aspnes-Herlihy-Shavit, JACM 94), built by
   the recursive Merger construction. See bitonic.mli. *)

type dest = To_balancer of int | To_output of int

type balancer = { id : int; succ_top : dest; succ_bot : dest; layer : int }

type t = {
  width : int;
  balancers : balancer array;
  entry : dest array;
  depth : int;
}

let is_pow2 w = w >= 1 && w land (w - 1) = 0

(* Balancers under construction: successors known at creation (we build
   from outputs back toward inputs), layers computed afterwards. *)
type builder = { mutable next_id : int; mutable acc : (int * dest * dest) list }

let new_balancer b ~succ_top ~succ_bot =
  let id = b.next_id in
  b.next_id <- id + 1;
  b.acc <- (id, succ_top, succ_bot) :: b.acc;
  id

(* Merger[w] with output destinations [outs]; returns the w input
   destinations, ordered x_0..x_{k-1} (top half) then y_0..y_{k-1}.
   AHS wiring: x_even and y_odd feed the first sub-merger, x_odd and
   y_even the second; sub-merger outputs z_i, z'_i meet in a final
   balancer whose outputs are wires 2i and 2i+1. *)
let rec make_merger b w (outs : dest array) : dest array =
  if w = 2 then begin
    let id = new_balancer b ~succ_top:outs.(0) ~succ_bot:outs.(1) in
    [| To_balancer id; To_balancer id |]
  end
  else begin
    let k = w / 2 in
    let finals =
      Array.init (k)
        (fun i ->
          new_balancer b ~succ_top:outs.(2 * i) ~succ_bot:outs.((2 * i) + 1))
    in
    let sub_outs = Array.init k (fun i -> To_balancer finals.(i)) in
    let top_ins = make_merger b k (Array.copy sub_outs) in
    let bot_ins = make_merger b k (Array.copy sub_outs) in
    let ins = Array.make w (To_output (-1)) in
    for i = 0 to k - 1 do
      (* x_i : even-indexed x's go to the first sub-merger's x slots. *)
      if i mod 2 = 0 then ins.(i) <- top_ins.(i / 2)
      else ins.(i) <- bot_ins.(i / 2)
    done;
    for i = 0 to k - 1 do
      (* y_i : odd-indexed y's go to the first sub-merger's y slots. *)
      if i mod 2 = 1 then ins.(k + i) <- top_ins.((k / 2) + (i / 2))
      else ins.(k + i) <- bot_ins.((k / 2) + (i / 2))
    done;
    ins
  end

let rec make_bitonic b w (outs : dest array) : dest array =
  if w = 1 then outs
  else begin
    let merged_ins = make_merger b w outs in
    let top = make_bitonic b (w / 2) (Array.sub merged_ins 0 (w / 2)) in
    let bot = make_bitonic b (w / 2) (Array.sub merged_ins (w / 2) (w / 2)) in
    Array.append top bot
  end

let make ~width ~succ ~entry =
  if not (is_pow2 width) then
    invalid_arg "Bitonic.make: width must be a power of two >= 1";
  if Array.length entry <> width then invalid_arg "Bitonic.make: entry size";
  let n = Array.length succ in
  let check = function
    | To_output w -> if w < 0 || w >= width then invalid_arg "Bitonic.make: bad output wire"
    | To_balancer id -> if id < 0 || id >= n then invalid_arg "Bitonic.make: dangling id"
  in
  Array.iter
    (fun (a, b) ->
      check a;
      check b)
    succ;
  Array.iter check entry;
  (* Layers: longest distance from any network input, by memoised
     relaxation from the entries (layered constructions converge in one
     pass per layer). *)
  let layer = Array.make n (-1) in
  let rec relax d target =
    match target with
    | To_output _ -> ()
    | To_balancer id ->
        if d > layer.(id) then begin
          layer.(id) <- d;
          let st, sb = succ.(id) in
          relax (d + 1) st;
          relax (d + 1) sb
        end
  in
  Array.iter (fun dst -> relax 0 dst) entry;
  let balancers =
    Array.init n (fun id ->
        let succ_top, succ_bot = succ.(id) in
        { id; succ_top; succ_bot; layer = layer.(id) })
  in
  let depth =
    Array.fold_left (fun acc (bal : balancer) -> max acc (bal.layer + 1)) 0
      balancers
  in
  { width; balancers; entry; depth }

let create ~width =
  if not (is_pow2 width) then
    invalid_arg "Bitonic.create: width must be a power of two >= 1";
  let b = { next_id = 0; acc = [] } in
  let outs = Array.init width (fun i -> To_output i) in
  let entry = make_bitonic b width outs in
  let succ = Array.make b.next_id (To_output (-1), To_output (-1)) in
  List.iter (fun (id, st, sb) -> succ.(id) <- (st, sb)) b.acc;
  make ~width ~succ ~entry

let width t = t.width
let size t = Array.length t.balancers
let depth t = t.depth
let balancers t = t.balancers

let entry t ~wire =
  if wire < 0 || wire >= t.width then invalid_arg "Bitonic.entry: wire";
  t.entry.(wire)

module State = struct
  type network = t

  type t = { net : network; toggles : bool array; exits : int array }

  let create net =
    {
      net;
      toggles = Array.make (max 1 (size net)) false;
      exits = Array.make net.width 0;
    }

  let push st ~wire =
    if wire < 0 || wire >= st.net.width then
      invalid_arg "Bitonic.State.push: wire";
    let rec go = function
      | To_output w ->
          st.exits.(w) <- st.exits.(w) + 1;
          w
      | To_balancer id ->
          let fired = st.toggles.(id) in
          st.toggles.(id) <- not fired;
          let b = st.net.balancers.(id) in
          go (if fired then b.succ_bot else b.succ_top)
    in
    go st.net.entry.(wire)

  let exit_counts st = Array.copy st.exits

  let has_step_property st =
    let w = st.net.width in
    let ok = ref true in
    for i = 0 to w - 1 do
      for j = i + 1 to w - 1 do
        let d = st.exits.(i) - st.exits.(j) in
        if d < 0 || d > 1 then ok := false
      done
    done;
    !ok
end

let count_of_exit ~width ~wire ~nth = wire + (nth * width) + 1
