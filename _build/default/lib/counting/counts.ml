(* Counting outcome validation. See counts.mli. *)

module Engine = Countq_simnet.Engine

type outcome = { node : int; count : int; round : int }

type error =
  | Unrequested_count of int
  | Duplicate_node of int
  | Missing_node of int
  | Bad_count_set

let pp_error ppf = function
  | Unrequested_count v ->
      Format.fprintf ppf "non-requesting node %d received a count" v
  | Duplicate_node v -> Format.fprintf ppf "node %d received two counts" v
  | Missing_node v -> Format.fprintf ppf "requesting node %d got no count" v
  | Bad_count_set ->
      Format.pp_print_string ppf "counts are not exactly {1..|R|}"

let validate ~requests outcomes =
  let exception E of error in
  try
    let module S = Set.Make (Int) in
    let request_set = S.of_list requests in
    let seen = Hashtbl.create 16 in
    List.iter
      (fun o ->
        if not (S.mem o.node request_set) then raise (E (Unrequested_count o.node));
        if Hashtbl.mem seen o.node then raise (E (Duplicate_node o.node));
        Hashtbl.replace seen o.node ())
      outcomes;
    S.iter
      (fun v -> if not (Hashtbl.mem seen v) then raise (E (Missing_node v)))
      request_set;
    let k = List.length outcomes in
    let counts = List.sort compare (List.map (fun o -> o.count) outcomes) in
    let expected = List.init k (fun i -> i + 1) in
    if counts <> expected then raise (E Bad_count_set);
    Ok ()
  with E e -> Error e

type run_result = {
  outcomes : outcome list;
  valid : (unit, error) result;
  rounds : int;
  messages : int;
  total_delay : int;
  max_delay : int;
  expansion : int;
}

let of_engine ~requests (res : (int * int) Engine.result) =
  let outcomes =
    List.map
      (fun (c : _ Engine.completion) ->
        let node, count = c.value in
        { node; count; round = c.round })
      res.completions
  in
  {
    outcomes;
    valid = validate ~requests outcomes;
    rounds = res.rounds;
    messages = res.messages;
    total_delay = List.fold_left (fun acc o -> acc + o.round) 0 outcomes;
    max_delay = List.fold_left (fun acc o -> max acc o.round) 0 outcomes;
    expansion = res.expansion;
  }

let of_async ~requests (res : (int * int) Countq_simnet.Async.result) =
  let outcomes =
    List.map
      (fun (c : _ Engine.completion) ->
        let node, count = c.value in
        { node; count; round = c.round })
      res.completions
  in
  {
    outcomes;
    valid = validate ~requests outcomes;
    rounds = res.finish_time;
    messages = res.messages;
    total_delay = List.fold_left (fun acc o -> acc + o.round) 0 outcomes;
    max_delay = List.fold_left (fun acc o -> max acc o.round) 0 outcomes;
    expansion = 1;
  }

let pp_outcome ppf o =
  Format.fprintf ppf "node %d count %d (round %d)" o.node o.count o.round
