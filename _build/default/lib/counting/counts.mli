(** Shared result and validation machinery for counting protocols.

    A correct one-shot counting execution over request set [R] must
    hand each requester exactly one count, the counts received must be
    exactly [{1, 2, …, |R|}], and non-requesters receive nothing
    (Section 2.2). *)

type outcome = {
  node : int;  (** the requesting processor. *)
  count : int;  (** the rank it received. *)
  round : int;  (** its counting delay [ℓ_C] in rounds. *)
}

type error =
  | Unrequested_count of int  (** a non-requester received a count. *)
  | Duplicate_node of int  (** a requester received two counts. *)
  | Missing_node of int  (** a requester received no count. *)
  | Bad_count_set  (** counts are not exactly [{1 .. |R|}]. *)

val pp_error : Format.formatter -> error -> unit

val validate : requests:int list -> outcome list -> (unit, error) result
(** Check the Section 2.2 counting specification. *)

type run_result = {
  outcomes : outcome list;
  valid : (unit, error) result;
  rounds : int;  (** makespan in rounds. *)
  messages : int;
  total_delay : int;  (** Eq. (3)'s inner sum for this run. *)
  max_delay : int;
  expansion : int;
}

val of_engine :
  requests:int list -> (int * int) Countq_simnet.Engine.result -> run_result
(** Convert an engine result whose completion values are
    [(requesting node, count)] pairs. The completion may be recorded at
    any node (protocols complete at the requester, but this is not
    assumed here). *)

val of_async :
  requests:int list -> (int * int) Countq_simnet.Async.result -> run_result
(** Same conversion for the asynchronous engine's results; [expansion]
    is 1 and [rounds] is the finish event time. *)

val pp_outcome : Format.formatter -> outcome -> unit
