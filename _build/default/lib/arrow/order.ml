(* Total-order validation for queuing outcomes. See order.mli. *)

type error =
  | Duplicate_op of Types.op
  | Duplicate_pred of Types.pred
  | Missing_op of Types.op
  | No_head
  | Broken_chain of { covered : int; total : int }

let pp_error ppf = function
  | Duplicate_op op ->
      Format.fprintf ppf "operation %a has two outcomes" Types.pp_op op
  | Duplicate_pred p ->
      Format.fprintf ppf "two operations share predecessor %a" Types.pp_pred p
  | Missing_op op ->
      Format.fprintf ppf "predecessor %a is not a queued operation" Types.pp_op
        op
  | No_head -> Format.pp_print_string ppf "no operation is queued behind Init"
  | Broken_chain { covered; total } ->
      Format.fprintf ppf "successor chain covers %d of %d operations" covered
        total

module OpMap = Map.Make (struct
  type t = Types.op

  let compare = Types.compare_op
end)

let chain outcomes =
  let exception E of error in
  try
    let total = List.length outcomes in
    if total = 0 then Ok []
    else begin
      (* Index outcomes by op, rejecting duplicates. *)
      let by_op =
        List.fold_left
          (fun acc (o : Types.outcome) ->
            if OpMap.mem o.op acc then raise (E (Duplicate_op o.op))
            else OpMap.add o.op o acc)
          OpMap.empty outcomes
      in
      (* successor : pred -> op, rejecting shared predecessors and
         predecessors that are not themselves queued. *)
      let head = ref None in
      let successor =
        List.fold_left
          (fun acc (o : Types.outcome) ->
            (match o.pred with
            | Types.Init ->
                if !head <> None then raise (E (Duplicate_pred Types.Init))
                else head := Some o.op
            | Types.Op p -> if not (OpMap.mem p by_op) then raise (E (Missing_op p)));
            match o.pred with
            | Types.Init -> acc
            | Types.Op p ->
                if OpMap.mem p acc then raise (E (Duplicate_pred (Types.Op p)))
                else OpMap.add p o.op acc)
          OpMap.empty outcomes
      in
      match !head with
      | None -> raise (E No_head)
      | Some first ->
          let rec follow acc covered current =
            match OpMap.find_opt current successor with
            | None ->
                if covered = total then Ok (List.rev acc)
                else raise (E (Broken_chain { covered; total }))
            | Some next -> follow (next :: acc) (covered + 1) next
          in
          follow [ first ] 1 first
    end
  with E e -> Error e

let is_valid outcomes = Result.is_ok (chain outcomes)

let total_delay outcomes =
  List.fold_left (fun acc (o : Types.outcome) -> acc + o.round) 0 outcomes

let max_delay outcomes =
  List.fold_left (fun acc (o : Types.outcome) -> max acc o.round) 0 outcomes

let respects_real_time ~issue ~complete order =
  (* a precedes b in the order whenever complete a < issue b; i.e. for
     every b, every operation that finished before b started must
     appear earlier. Equivalent check in one pass: the running maximum
     completion time of *later* operations never undercuts an earlier
     operation's... simplest correct form: compare all ordered pairs
     (quadratic; long-lived runs are small). *)
  let arr = Array.of_list order in
  let k = Array.length arr in
  let ok = ref true in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      (* arr.(i) precedes arr.(j): fine unless arr.(j) completed before
         arr.(i) was issued. *)
      if complete arr.(j) < issue arr.(i) then ok := false
    done
  done;
  !ok
