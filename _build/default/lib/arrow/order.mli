(** Validation of queuing outcomes: do the reported predecessors form a
    single total order?

    A correct queuing execution over request set [R] must deliver, for
    each operation, a distinct predecessor, with exactly one operation
    queued behind the initial tail, and following successor links from
    the initial tail must enumerate all of [R] (Section 2.2). This is
    the safety property every queuing protocol in this repository is
    tested against. *)

type error =
  | Duplicate_op of Types.op  (** an operation has two outcomes. *)
  | Duplicate_pred of Types.pred  (** two operations share a predecessor. *)
  | Missing_op of Types.op
      (** an outcome names a predecessor that is not itself queued and
          is not [Init]. *)
  | No_head  (** no operation is queued behind [Init] (with [R] ≠ ∅). *)
  | Broken_chain of { covered : int; total : int }
      (** successor links from [Init] reach only [covered] of [total]. *)

val pp_error : Format.formatter -> error -> unit

val chain : Types.outcome list -> (Types.op list, error) result
(** [chain outcomes] reconstructs the total order (first queued
    operation first). [Ok []] for no outcomes. *)

val is_valid : Types.outcome list -> bool
(** Whether {!chain} succeeds. *)

val total_delay : Types.outcome list -> int
(** Sum of per-operation queuing delays (Eq. (1)'s inner sum). *)

val max_delay : Types.outcome list -> int
(** Largest per-operation delay. *)

val respects_real_time :
  issue:(Types.op -> int) ->
  complete:(Types.op -> int) ->
  Types.op list ->
  bool
(** [respects_real_time ~issue ~complete order] checks the
    linearizability-style condition for a long-lived execution: if
    operation [a] completed strictly before operation [b] was issued
    (their executions did not overlap), then [a] precedes [b] in the
    total order.

    The arrow protocol does {e not} guarantee this — Raymond-style path
    reversal is famously non-FIFO: a node near (or holding) the current
    tail can issue late and still slot in ahead of remote operations
    whose [queue()] messages are still propagating, even ones that
    already discovered {e their} predecessors. The test suite pins a
    concrete counterexample, and this checker lets experiments quantify
    how often inversions happen. (Safety — one total order — is
    unaffected; this is a fairness property.) *)
