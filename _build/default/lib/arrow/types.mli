(** Operation identities shared by the queuing protocols.

    In distributed queuing each operation learns the identity of its
    {e predecessor} in the total order (Fig. 1 of the paper); these are
    the identities exchanged. *)

type op = { origin : int; seq : int }
(** An operation: issued by processor [origin]; [seq] distinguishes
    successive operations of the same processor in the long-lived
    scenario (always 0 in the one-shot scenario). *)

type pred =
  | Init  (** The queue's initial tail (no real predecessor). *)
  | Op of op  (** A real predecessor operation. *)

type outcome = {
  op : op;  (** the operation that got queued. *)
  pred : pred;  (** its predecessor in the total order. *)
  found_at : int;  (** node at which the predecessor was discovered. *)
  round : int;  (** the operation's queuing delay [ℓ_Q] in rounds. *)
}

val compare_op : op -> op -> int
(** Total order on operation identities (origin, then seq). *)

val pp_op : Format.formatter -> op -> unit
(** Prints ["origin.seq"]. *)

val pp_pred : Format.formatter -> pred -> unit
(** Prints ["⊥"] for [Init], otherwise the operation. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** One-line outcome description. *)
