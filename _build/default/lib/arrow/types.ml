(* Operation identities for queuing protocols. See types.mli. *)

type op = { origin : int; seq : int }
type pred = Init | Op of op

type outcome = { op : op; pred : pred; found_at : int; round : int }

let compare_op a b =
  match compare a.origin b.origin with 0 -> compare a.seq b.seq | c -> c

let pp_op ppf o = Format.fprintf ppf "%d.%d" o.origin o.seq

let pp_pred ppf = function
  | Init -> Format.pp_print_string ppf "\xe2\x8a\xa5"
  | Op o -> pp_op ppf o

let pp_outcome ppf t =
  Format.fprintf ppf "op %a <- pred %a (found at %d, round %d)" pp_op t.op
    pp_pred t.pred t.found_at t.round
