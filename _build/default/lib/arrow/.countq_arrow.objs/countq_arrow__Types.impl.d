lib/arrow/types.ml: Format
