lib/arrow/order.mli: Format Types
