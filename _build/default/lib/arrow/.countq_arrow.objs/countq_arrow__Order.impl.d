lib/arrow/order.ml: Array Format List Map Result Types
