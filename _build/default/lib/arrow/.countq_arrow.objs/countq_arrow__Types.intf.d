lib/arrow/types.mli: Format
