lib/arrow/protocol.mli: Countq_simnet Countq_topology Order Types
