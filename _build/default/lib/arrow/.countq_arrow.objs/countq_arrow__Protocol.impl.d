lib/arrow/protocol.ml: Array Countq_simnet Countq_topology List Option Order Types
