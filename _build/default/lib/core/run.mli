(** Uniform one-shot drivers over every protocol in the portfolio.

    The normalisation rule makes cross-protocol comparison honest: a
    protocol run with an expanded step of width [c] (receive capacity
    [c] > 1, used by the tree protocols exactly as Section 4 allows) has
    its delays multiplied by [c], because one expanded step is
    simulable by [c] base-model steps. Base-model runs ([c = 1]) are
    unchanged. All separations reported by the experiments use the
    normalised totals. *)

type kind = Counting | Queuing

type counting_protocol = [ `Central | `Combining | `Network | `Sweep ]

type queuing_protocol = [ `Arrow | `Arrow_notify | `Central | `Token_ring ]

val counting_protocol_name : counting_protocol -> string
val queuing_protocol_name : queuing_protocol -> string

type summary = {
  protocol : string;
  kind : kind;
  n : int;  (** vertices in the graph. *)
  k : int;  (** number of requests. *)
  total_delay : int;  (** raw, in (possibly expanded) rounds. *)
  normalized_delay : int;  (** [total_delay * expansion]. *)
  max_delay : int;
  rounds : int;
  messages : int;
  expansion : int;
  valid : bool;  (** output met the problem specification. *)
}

val counting :
  ?tree:Countq_topology.Tree.t ->
  ?width:int ->
  graph:Countq_topology.Graph.t ->
  protocol:counting_protocol ->
  requests:int list ->
  unit ->
  summary
(** Run a counting protocol. [tree] (for [`Combining]) defaults to the
    BFS spanning tree rooted at 0 and (for [`Sweep]) to the arrow
    protocol's preferred spanning tree (a Hamilton path where one is
    known, which makes the sweep a single pass); [width] (for
    [`Network]) defaults to [Network.default_width]. *)

val queuing :
  ?tree:Countq_topology.Tree.t ->
  graph:Countq_topology.Graph.t ->
  protocol:queuing_protocol ->
  requests:int list ->
  unit ->
  summary
(** Run a queuing protocol. [tree] (for the arrow variants and the
    token ring) defaults to [Spanning.best_for_arrow graph]. *)

val best_counting :
  graph:Countq_topology.Graph.t -> requests:int list -> summary
(** The cheapest (by normalised total delay) of the counting portfolio
    on this instance — what the experiments compare against: the
    Section 3 lower bounds must sit below it, and on the separation
    topologies the arrow protocol's cost must sit below it too. *)
