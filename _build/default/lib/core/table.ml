(* Experiment result tables. See table.mli. *)

type t = {
  id : string;
  title : string;
  paper_ref : string;
  headers : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ~paper_ref ~headers ?(notes = []) rows =
  let width = List.length headers in
  List.iteri
    (fun i row ->
      if List.length row <> width then
        invalid_arg
          (Printf.sprintf "Table.make %s: row %d has %d cells, expected %d" id i
             (List.length row) width))
    rows;
  { id; title; paper_ref; headers; rows; notes }

let cell_int = string_of_int

let cell_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v

let cell_bool b = if b then "yes" else "NO"

let column_widths t =
  let init = List.map String.length t.headers in
  List.fold_left
    (fun acc row -> List.map2 (fun w c -> max w (String.length c)) acc row)
    init t.rows

let pp ppf t =
  let widths = column_widths t in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let render_row row =
    String.concat "  " (List.map2 pad row widths)
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  Format.fprintf ppf "@[<v>== %s: %s ==@,(reproduces: %s)@,@,%s@,%s@," t.id
    t.title t.paper_ref
    (render_row t.headers)
    rule;
  List.iter (fun row -> Format.fprintf ppf "%s@," (render_row row)) t.rows;
  List.iter (fun note -> Format.fprintf ppf "note: %s@," note) t.notes;
  Format.fprintf ppf "@]"

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let line cells = String.concat "," (List.map csv_escape cells) in
  String.concat "\n" (line t.headers :: List.map line t.rows) ^ "\n"

let md_escape s =
  String.concat "\\|" (String.split_on_char '|' s)

let to_markdown t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "## %s — %s\n\n" t.id t.title);
  Buffer.add_string buf (Printf.sprintf "*Reproduces: %s*\n\n" t.paper_ref);
  let line cells =
    "| " ^ String.concat " | " (List.map md_escape cells) ^ " |\n"
  in
  Buffer.add_string buf (line t.headers);
  Buffer.add_string buf
    ("|" ^ String.concat "|" (List.map (fun _ -> "---") t.headers) ^ "|\n");
  List.iter (fun row -> Buffer.add_string buf (line row)) t.rows;
  if t.notes <> [] then begin
    Buffer.add_char buf '\n';
    List.iter
      (fun note -> Buffer.add_string buf (Printf.sprintf "- %s\n" note))
      t.notes
  end;
  Buffer.contents buf

let print t = Format.printf "%a@." pp t
