(** Scenario specifications: parse compact strings like
    ["mesh:256"] / ["complete:128"] / ["all"] / ["density:0.3"] into
    topologies and request sets.

    This is the single place the CLI, examples and scripts translate a
    human-written instance description into a graph and a request set,
    with deterministic seeding. The grammar:

    {v
    topology  ::= NAME [ ":" N ]          default N = 64
    NAME      ::= complete | path | list | cycle | star | mesh
                | hypercube | torus | binary-tree | caterpillar
                | random-tree | random-regular | de-bruijn | ccc
                | butterfly
    requests  ::= "all" | "half" | "k:" K | "density:" D | "nodes:" v,v,…
    v}

    For families with structural constraints (mesh sides, hypercube and
    de Bruijn powers of two, CCC/butterfly dimensions) [N] is rounded to
    the nearest realisable size [>= the requested one where possible]. *)

type error = [ `Msg of string ]

val topology :
  ?seed:int64 -> string -> (string * Countq_topology.Graph.t, error) result
(** [topology spec] builds the graph; returns the canonical name with
    the realised size (e.g. ["mesh:256 -> mesh-16x16"]) alongside it.
    [seed] feeds the random families (default a fixed seed, so specs
    are reproducible). *)

val requests :
  ?seed:int64 -> n:int -> string -> (int list, error) result
(** [requests ~n spec] builds the request set for an [n]-vertex graph.
    ["half"] and ["density:…"] sample uniformly with the given seed;
    ["nodes:…"] takes an explicit comma-separated list. *)

val known_topologies : string list
(** The accepted family names (for help strings). *)
