(** Growth-exponent estimation: turn (n, cost) series into measured
    asymptotic shapes.

    The paper's claims are about growth rates — counting on the list is
    Θ(n²), queuing on Hamilton-path graphs is Θ(n), their ratio
    diverges. Fitting [cost ≈ c · n^e] by least squares on
    [log cost = log c + e · log n] gives a numeric exponent [e] and an
    R² for how power-law-like the series is; experiment E25 prints
    these next to the theorems' predicted exponents. *)

type fit = {
  exponent : float;  (** the fitted power [e]. *)
  coefficient : float;  (** the fitted constant [c]. *)
  r_squared : float;  (** goodness of fit in log–log space. *)
  points : int;
}

val fit_power_law : (int * int) list -> fit
(** [fit_power_law series] fits [cost = c · n^e] over the given
    [(n, cost)] points by ordinary least squares in log–log space.
    Points with [n <= 0] or [cost <= 0] are dropped (log-undefined);
    at least two usable points are required.
    @raise Invalid_argument otherwise. *)

val pp_fit : Format.formatter -> fit -> unit
(** Prints ["n^e (R²=…)"]. *)
