lib/core/scenario.ml: Countq_topology Countq_util Float List Printf String
