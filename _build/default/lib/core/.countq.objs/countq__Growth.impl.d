lib/core/growth.ml: Format List
