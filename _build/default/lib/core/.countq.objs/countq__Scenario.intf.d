lib/core/scenario.mli: Countq_topology
