lib/core/run.mli: Countq_topology
