lib/core/run.ml: Countq_arrow Countq_counting Countq_queuing Countq_topology List Result
