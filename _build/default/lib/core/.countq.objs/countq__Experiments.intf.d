lib/core/experiments.mli: Table
