lib/core/table.ml: Buffer Format List Printf String
