lib/core/growth.mli: Format
