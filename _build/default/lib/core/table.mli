(** Result tables: the uniform shape every experiment produces, with
    aligned-text and CSV renderers. *)

type t = {
  id : string;  (** experiment id, e.g. "E5". *)
  title : string;
  paper_ref : string;  (** the theorem/lemma/figure reproduced. *)
  headers : string list;
  rows : string list list;
  notes : string list;  (** caveats and reading guidance. *)
}

val make :
  id:string ->
  title:string ->
  paper_ref:string ->
  headers:string list ->
  ?notes:string list ->
  string list list ->
  t

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_bool : bool -> string
(** Cell formatting helpers ("yes"/"NO" for booleans, so failures jump
    out of a table). *)

val pp : Format.formatter -> t -> unit
(** Render with aligned columns, a title banner and the notes. *)

val to_csv : t -> string
(** Headers then rows, comma-separated with minimal quoting. *)

val to_markdown : t -> string
(** A GitHub-flavoured markdown section: an [##] heading with the id
    and title, the paper reference, a pipe table, and the notes as a
    bullet list. Pipe characters in cells are escaped. Used by the
    [countq report] subcommand to regenerate a full results document. *)

val print : t -> unit
(** [pp] to stdout. *)
