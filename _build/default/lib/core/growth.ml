(* Power-law fitting in log-log space. See growth.mli. *)

type fit = {
  exponent : float;
  coefficient : float;
  r_squared : float;
  points : int;
}

let fit_power_law series =
  let usable =
    List.filter_map
      (fun (n, cost) ->
        if n > 0 && cost > 0 then
          Some (log (float_of_int n), log (float_of_int cost))
        else None)
      series
  in
  let k = List.length usable in
  if k < 2 then
    invalid_arg "Growth.fit_power_law: need at least two positive points";
  let kf = float_of_int k in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0. usable in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. usable in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. usable in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. usable in
  let denom = (kf *. sxx) -. (sx *. sx) in
  if abs_float denom < 1e-12 then
    invalid_arg "Growth.fit_power_law: all points share one n";
  let exponent = ((kf *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (exponent *. sx)) /. kf in
  let mean_y = sy /. kf in
  let ss_tot =
    List.fold_left (fun a (_, y) -> a +. ((y -. mean_y) ** 2.)) 0. usable
  in
  let ss_res =
    List.fold_left
      (fun a (x, y) ->
        let p = intercept +. (exponent *. x) in
        a +. ((y -. p) ** 2.))
      0. usable
  in
  let r_squared = if ss_tot < 1e-12 then 1.0 else 1. -. (ss_res /. ss_tot) in
  { exponent; coefficient = exp intercept; r_squared; points = k }

let pp_fit ppf f =
  Format.fprintf ppf "n^%.2f (R2=%.3f)" f.exponent f.r_squared
