(* Scenario-string parsing. See scenario.mli. *)

module Gen = Countq_topology.Gen
module Graph = Countq_topology.Graph
module Rng = Countq_util.Rng

type error = [ `Msg of string ]

let known_topologies =
  [
    "complete"; "path"; "list"; "cycle"; "star"; "mesh"; "hypercube"; "torus";
    "binary-tree"; "caterpillar"; "random-tree"; "random-regular"; "de-bruijn";
    "ccc"; "butterfly";
  ]

let err fmt = Printf.ksprintf (fun m -> Error (`Msg m)) fmt

let split_spec spec =
  match String.index_opt spec ':' with
  | None -> (spec, None)
  | Some i ->
      ( String.sub spec 0 i,
        Some (String.sub spec (i + 1) (String.length spec - i - 1)) )

let parse_size name = function
  | None -> Ok 64
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | _ -> err "%s: size %S is not a positive integer" name s)

let log2_ceil n =
  let rec go p e = if p >= n then e else go (p * 2) (e + 1) in
  go 1 0

let topology ?(seed = 0x5ce9a1L) spec =
  let name, arg = split_spec (String.lowercase_ascii (String.trim spec)) in
  match parse_size name arg with
  | Error e -> Error e
  | Ok n -> (
      match name with
      | "complete" -> Ok (Printf.sprintf "complete-%d" n, Gen.complete n)
      | "path" | "list" -> Ok (Printf.sprintf "path-%d" n, Gen.path n)
      | "cycle" ->
          let n = max 3 n in
          Ok (Printf.sprintf "cycle-%d" n, Gen.cycle n)
      | "star" ->
          let n = max 2 n in
          Ok (Printf.sprintf "star-%d" n, Gen.star n)
      | "mesh" ->
          let s = max 1 (int_of_float (Float.round (sqrt (float_of_int n)))) in
          Ok (Printf.sprintf "mesh-%dx%d" s s, Gen.square_mesh s)
      | "torus" ->
          let s = max 3 (int_of_float (Float.round (sqrt (float_of_int n)))) in
          Ok (Printf.sprintf "torus-%dx%d" s s, Gen.torus ~dims:[ s; s ])
      | "hypercube" ->
          let d = max 1 (log2_ceil n) in
          Ok (Printf.sprintf "hypercube-%d" d, Gen.hypercube d)
      | "de-bruijn" ->
          let d = max 1 (log2_ceil n) in
          Ok (Printf.sprintf "de-bruijn-%d" d, Gen.de_bruijn d)
      | "ccc" ->
          let rec fit d =
            if d * (1 lsl d) >= n || d > 16 then d else fit (d + 1)
          in
          let d = fit 3 in
          Ok (Printf.sprintf "ccc-%d" d, Gen.cube_connected_cycles d)
      | "butterfly" ->
          let rec fit d =
            if (d + 1) * (1 lsl d) >= n || d > 16 then d else fit (d + 1)
          in
          let d = fit 1 in
          Ok (Printf.sprintf "butterfly-%d" d, Gen.butterfly d)
      | "binary-tree" ->
          Ok (Printf.sprintf "binary-tree-%d" n, Gen.balanced_tree_on ~arity:2 n)
      | "caterpillar" ->
          let spine = max 1 (n / 2) in
          Ok
            ( Printf.sprintf "caterpillar-%d" spine,
              Gen.caterpillar ~spine ~legs:1 )
      | "random-tree" ->
          Ok (Printf.sprintf "random-tree-%d" n, Gen.random_tree (Rng.create seed) n)
      | "random-regular" ->
          let n = if n * 4 mod 2 = 0 then max 5 n else max 5 (n + 1) in
          Ok
            ( Printf.sprintf "random-4-regular-%d" n,
              Gen.random_regular (Rng.create seed) ~n ~degree:4 )
      | other -> err "unknown topology %S (try: %s)" other (String.concat ", " known_topologies))

let explicit_nodes ~n s =
  let parts = String.split_on_char ',' s in
  let rec go acc = function
    | [] -> Ok (List.sort_uniq compare acc)
    | p :: rest -> (
        match int_of_string_opt (String.trim p) with
        | Some v when v >= 0 && v < n -> go (v :: acc) rest
        | _ -> err "nodes: %S is not a vertex id below %d" p n)
  in
  go [] parts

let requests ?(seed = 0x5ce9a2L) ~n spec =
  let name, arg = split_spec (String.lowercase_ascii (String.trim spec)) in
  let sample k =
    let k = max 0 (min n k) in
    if k >= n then Ok (List.init n (fun i -> i))
    else Ok (Rng.sample (Rng.create seed) ~k ~n)
  in
  match (name, arg) with
  | "all", None -> Ok (List.init n (fun i -> i))
  | "half", None -> sample (max 1 (n / 2))
  | "k", Some s -> (
      match int_of_string_opt s with
      | Some k when k >= 0 -> sample k
      | _ -> err "k: %S is not a non-negative integer" s)
  | "density", Some s -> (
      match float_of_string_opt s with
      | Some d when d >= 0. && d <= 1. ->
          sample (max 1 (int_of_float (d *. float_of_int n)))
      | _ -> err "density: %S is not in [0, 1]" s)
  | "nodes", Some s -> explicit_nodes ~n s
  | _ -> err "unknown request pattern %S (all | half | k:K | density:D | nodes:v,v,…)" spec
