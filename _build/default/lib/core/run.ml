(* Uniform protocol drivers. See run.mli. *)

module Graph = Countq_topology.Graph
module Spanning = Countq_topology.Spanning
module Counting = Countq_counting
module Arrow = Countq_arrow
module Queuing = Countq_queuing

type kind = Counting | Queuing

type counting_protocol = [ `Central | `Combining | `Network | `Sweep ]
type queuing_protocol = [ `Arrow | `Arrow_notify | `Central | `Token_ring ]

let counting_protocol_name = function
  | `Central -> "count/central"
  | `Combining -> "count/combining"
  | `Network -> "count/network"
  | `Sweep -> "count/sweep"

let queuing_protocol_name = function
  | `Arrow -> "queue/arrow"
  | `Arrow_notify -> "queue/arrow+notify"
  | `Central -> "queue/central"
  | `Token_ring -> "queue/token-ring"

type summary = {
  protocol : string;
  kind : kind;
  n : int;
  k : int;
  total_delay : int;
  normalized_delay : int;
  max_delay : int;
  rounds : int;
  messages : int;
  expansion : int;
  valid : bool;
}

let counting ?tree ?width ~graph ~protocol ~requests () =
  let result =
    match protocol with
    | `Central -> Counting.Central.run ~graph ~requests ()
    | `Combining ->
        let tree =
          match tree with Some t -> t | None -> Spanning.bfs graph ~root:0
        in
        Counting.Combining.run ~tree ~requests ()
    | `Network -> Counting.Network.run ?width ~graph ~requests ()
    | `Sweep ->
        let tree =
          match tree with
          | Some t -> t
          | None -> Spanning.best_for_arrow graph
        in
        Counting.Sweep.run ~tree ~requests ()
  in
  {
    protocol = counting_protocol_name protocol;
    kind = Counting;
    n = Graph.n graph;
    k = List.length requests;
    total_delay = result.total_delay;
    normalized_delay = result.total_delay * result.expansion;
    max_delay = result.max_delay;
    rounds = result.rounds;
    messages = result.messages;
    expansion = result.expansion;
    valid = Result.is_ok result.valid;
  }

let queuing ?tree ~graph ~protocol ~requests () =
  let result =
    match protocol with
    | (`Arrow | `Arrow_notify) as p ->
        let tree =
          match tree with Some t -> t | None -> Spanning.best_for_arrow graph
        in
        Arrow.Protocol.run_one_shot ~tree ~notify:(p = `Arrow_notify) ~requests
          ()
    | `Central -> Queuing.Central_queue.run ~graph ~requests ()
    | `Token_ring ->
        let tree =
          match tree with Some t -> t | None -> Spanning.best_for_arrow graph
        in
        Queuing.Token_ring.run ~tree ~requests ()
  in
  {
    protocol = queuing_protocol_name protocol;
    kind = Queuing;
    n = Graph.n graph;
    k = List.length requests;
    total_delay = result.total_delay;
    normalized_delay = result.total_delay * result.expansion;
    max_delay = result.max_delay;
    rounds = result.rounds;
    messages = result.messages;
    expansion = result.expansion;
    valid = Result.is_ok result.order;
  }

let best_counting ~graph ~requests =
  let candidates =
    List.map
      (fun protocol -> counting ~graph ~protocol ~requests ())
      [ `Central; `Combining; `Network; `Sweep ]
  in
  match
    List.sort (fun a b -> compare a.normalized_delay b.normalized_delay)
      (List.filter (fun s -> s.valid) candidates)
  with
  | best :: _ -> best
  | [] -> invalid_arg "Run.best_counting: every counting protocol failed"
