(** Run decomposition of nearest-neighbour tours on the list — the
    combinatorial core of Lemma 4.3.

    The lemma writes the greedy visit order [π] as a concatenation of
    maximal monotone "runs" [π₁ π₂ … π_m] (consecutive visits moving in
    one direction along the list). With [x_i] the distance from the
    last vertex of run [i-1] to the last vertex of run [i] (and [x_1]
    measured from the start), Lemma 4.4 proves [x_i >= x_{i-1} + x_{i-2}],
    whence the total cost telescopes to [<= 3n]. This module extracts
    the runs and checks both inequalities on actual tours, turning the
    paper's proof into an executable certificate. *)

type run = { first : int; last : int; length : int }
(** A maximal monotone segment of the visit order: [first] and [last]
    are list positions (vertex ids), [length] the number of visits. *)

type certificate = {
  runs : run list;  (** the decomposition [π₁ … π_m]. *)
  xs : int array;  (** [xs.(i-1) = x_i] of Lemma 4.3 (1-based in the
                       paper). *)
  lemma44_holds : bool;
      (** [x_i >= x_{i-1} + x_{i-2}] for all [i >= 3]. *)
  cost : int;  (** tour cost recomputed from list positions. *)
  bound_3n : int;  (** [3n], the Lemma 4.3 ceiling. *)
}

val decompose : start:int -> int array -> run list
(** [decompose ~start order] splits the visit order into maximal
    monotone runs. A single visit forms a run of length 1; direction
    changes end runs. *)

val certify : n:int -> start:int -> int array -> certificate
(** [certify ~n ~start order] builds the full Lemma 4.3 certificate for
    a visit order on the list [0 .. n-1].
    @raise Invalid_argument on out-of-range positions. *)

val pp_certificate : Format.formatter -> certificate -> unit
