(* Nearest-neighbour TSP tours. See nn.mli. *)

module Tree = Countq_topology.Tree
module Graph = Countq_topology.Graph
module Bfs = Countq_topology.Bfs

type tour = { order : int array; legs : int array; cost : int }

let check_requests n requests name =
  let seen = Array.make n false in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg (name ^ ": request out of range");
      if seen.(v) then invalid_arg (name ^ ": duplicate request");
      seen.(v) <- true)
    requests

(* Greedy tour over an arbitrary distance oracle. At each step scan the
   unvisited requests for the closest one (smallest id on ties). *)
let greedy ~dist ~start ~requests =
  let k = List.length requests in
  let remaining = Array.of_list (List.sort compare requests) in
  let alive = Array.make k true in
  let order = Array.make k (-1) in
  let legs = Array.make k 0 in
  let cost = ref 0 in
  let current = ref start in
  for step = 0 to k - 1 do
    let best = ref (-1) in
    let best_d = ref max_int in
    for i = 0 to k - 1 do
      if alive.(i) then begin
        let d = dist !current remaining.(i) in
        if d < !best_d then begin
          best_d := d;
          best := i
        end
      end
    done;
    alive.(!best) <- false;
    order.(step) <- remaining.(!best);
    legs.(step) <- !best_d;
    cost := !cost + !best_d;
    current := remaining.(!best)
  done;
  { order; legs; cost = !cost }

let on_tree t ~start ~requests =
  let n = Tree.n t in
  if start < 0 || start >= n then invalid_arg "Nn.on_tree: start out of range";
  check_requests n requests "Nn.on_tree";
  greedy ~dist:(fun u v -> Tree.dist t u v) ~start ~requests

(* BFS from the current position at every step: O(|R| (n + m)) total,
   and exact on any connected graph. *)
let on_graph g ~start ~requests =
  let n = Graph.n g in
  if start < 0 || start >= n then invalid_arg "Nn.on_graph: start out of range";
  check_requests n requests "Nn.on_graph";
  let cache = Hashtbl.create 16 in
  let dist u v =
    let row =
      match Hashtbl.find_opt cache u with
      | Some row -> row
      | None ->
          let row = Bfs.distances g u in
          Hashtbl.replace cache u row;
          row
    in
    if row.(v) < 0 then invalid_arg "Nn.on_graph: disconnected graph"
    else row.(v)
  in
  greedy ~dist ~start ~requests

let on_metric ~dist ~n ~start ~requests =
  if start < 0 || start >= n then invalid_arg "Nn.on_metric: start out of range";
  check_requests n requests "Nn.on_metric";
  greedy ~dist ~start ~requests

let worst_case_on_list ~n =
  if n < 2 then invalid_arg "Nn.worst_case_on_list: n must be >= 2";
  let start = n / 2 in
  (* Place requests on alternating sides of [start] at Fibonacci-like
     offsets, so each greedy choice crosses the whole visited span
     (runs of length 1 — the extreme of Lemma 4.4's recurrence). *)
  let requests = ref [] in
  let left = ref start and right = ref start in
  let gap = ref 1 in
  let side = ref true in
  let continue = ref true in
  while !continue do
    if !side then begin
      let p = !right + !gap in
      if p <= n - 1 then begin
        requests := p :: !requests;
        right := p
      end
      else continue := false
    end
    else begin
      let p = !left - !gap in
      if p >= 0 then begin
        requests := p :: !requests;
        left := p
      end
      else continue := false
    end;
    (* Next gap must exceed the whole current span so the opposite
       frontier stays the nearest unvisited point. *)
    gap := !right - !left + 1;
    side := not !side
  done;
  (start, List.sort compare !requests)
