(* Run decomposition on the list (Lemma 4.3/4.4). See runs.mli. *)

type run = { first : int; last : int; length : int }

type certificate = {
  runs : run list;
  xs : int array;
  lemma44_holds : bool;
  cost : int;
  bound_3n : int;
}

let decompose ~start:_ order =
  let k = Array.length order in
  if k = 0 then []
  else begin
    let runs = ref [] in
    let run_start = ref 0 in
    let dir = ref 0 in
    (* dir: 0 unknown, +1 increasing, -1 decreasing. *)
    let flush last_index =
      let first = order.(!run_start) in
      let last = order.(last_index) in
      runs := { first; last; length = last_index - !run_start + 1 } :: !runs
    in
    for i = 1 to k - 1 do
      let step = compare order.(i) order.(i - 1) in
      if !dir = 0 then dir := step
      else if step <> !dir then begin
        flush (i - 1);
        run_start := i;
        dir := 0
      end
    done;
    flush (k - 1);
    List.rev !runs
  end

let certify ~n ~start order =
  Array.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Runs.certify: position out of range")
    order;
  if start < 0 || start >= n then invalid_arg "Runs.certify: start out of range";
  let runs = decompose ~start order in
  let lasts = List.map (fun r -> r.last) runs in
  let xs =
    let prev = ref start in
    Array.of_list
      (List.map
         (fun last ->
           let x = abs (last - !prev) in
           prev := last;
           x)
         lasts)
  in
  let m = Array.length xs in
  let lemma44_holds =
    let ok = ref true in
    if m >= 2 && xs.(1) < xs.(0) then ok := false;
    for i = 2 to m - 1 do
      if xs.(i) < xs.(i - 1) + xs.(i - 2) then ok := false
    done;
    !ok
  in
  let cost =
    let c = ref 0 and prev = ref start in
    Array.iter
      (fun v ->
        c := !c + abs (v - !prev);
        prev := v)
      order;
    !c
  in
  { runs; xs; lemma44_holds; cost; bound_3n = 3 * n }

let pp_certificate ppf c =
  Format.fprintf ppf
    "@[<v>runs=%d cost=%d bound=3n=%d lemma4.4=%b@,xs=[%a]@]"
    (List.length c.runs) c.cost c.bound_3n c.lemma44_holds
    (Format.pp_print_seq
       ~pp_sep:(fun f () -> Format.pp_print_string f "; ")
       Format.pp_print_int)
    (Array.to_seq c.xs)
