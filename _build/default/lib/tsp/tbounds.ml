(* Executable Section 4 bounds. See tbounds.mli. *)

let list_bound n = 3 * n

let f k =
  if k < 0 then invalid_arg "Tbounds.f: negative k";
  let rec go k = if k = 0 then 0 else (2 * go (k - 1)) + (2 * k) in
  go k

let f_bound k = 1 lsl (k + 2)

let log2_ceil k =
  if k < 1 then invalid_arg "Tbounds.log2_ceil: k must be >= 1";
  let rec go p e = if p >= k then e else go (p * 2) (e + 1) in
  go 1 0

let perfect_binary_bound ~n =
  if n < 1 then invalid_arg "Tbounds.perfect_binary_bound: n must be >= 1";
  let d =
    (* floor(log2 n) *)
    let rec go p e = if p * 2 <= n then go (p * 2) (e + 1) else e in
    go 1 0
  in
  (2 * d * (d + 1)) + (8 * n)

let rosenkrantz_ratio k =
  if k < 1 then invalid_arg "Tbounds.rosenkrantz_ratio: k must be >= 1";
  (* The RSL factor; never below 1 (NN is exactly optimal at k = 1). *)
  Float.max 1.0 (float_of_int (log2_ceil k + 1) /. 2.0)

let constant_degree_tree_bound ~n ~k =
  if k < 1 then 0 else n * (log2_ceil k + 1)
