(** Nearest-neighbour travelling-salesperson tours.

    Herlihy, Tirthapura and Wattenhofer bound the arrow protocol's
    one-shot concurrent cost by twice the cost of the nearest-neighbour
    TSP on the spanning tree visiting the request set (the paper's
    Theorem 4.1); Section 4 then bounds that tour on specific trees
    (list: [<= 3n], Lemma 4.3; perfect m-ary tree: [O(n)], Theorem 4.7;
    any tree: [O(n log n)] via Rosenkrantz's [log k] bound). This
    module computes the tours those theorems reason about. *)

type tour = {
  order : int array;  (** the visit order; [order.(0)] is the start. *)
  legs : int array;  (** [legs.(i)] = distance from visit [i-1] (or the
                         start for [i=0]) to visit [i]. *)
  cost : int;  (** total distance travelled = sum of legs. *)
}

val on_tree :
  Countq_topology.Tree.t -> start:int -> requests:int list -> tour
(** [on_tree t ~start ~requests] runs the greedy nearest-neighbour tour
    on tree-path distances: from the current position, visit the
    closest unvisited request (ties broken toward the smallest vertex
    id), starting from [start]. [start] itself is not visited unless it
    is in [requests] (if it is, it is visited first at distance 0).
    O(|R|² log n). @raise Invalid_argument on out-of-range requests. *)

val on_graph :
  Countq_topology.Graph.t -> start:int -> requests:int list -> tour
(** Same greedy tour measured with shortest-path (BFS) distances on an
    arbitrary connected graph; used by the Rosenkrantz approximation
    study. O(|R| · (n + m)). *)

val on_metric :
  dist:(int -> int -> int) -> n:int -> start:int -> requests:int list -> tour
(** Generic variant over an arbitrary metric oracle on points
    [0 .. n-1]. *)

val worst_case_on_list : n:int -> (int * int list)
(** [(start, requests)] on the list [0 .. n-1] built to make the greedy
    tour zigzag around a central start (the Fibonacci-like run
    structure of Lemma 4.4): successive gaps grow so each next-nearest
    choice alternates sides, driving the tour cost toward the [3n]
    ceiling of Lemma 4.3. *)
