(* Held-Karp exact minimum TSP paths. See exact.mli. *)

module Tree = Countq_topology.Tree
module Graph = Countq_topology.Graph
module Bfs = Countq_topology.Bfs

let min_path ~dist ~start ~requests =
  let pts = Array.of_list requests in
  let k = Array.length pts in
  if k = 0 then 0
  else if k > 22 then invalid_arg "Exact.min_path: too many requests (> 22)"
  else begin
    (* dp.(mask).(i) = cheapest path from start visiting exactly the
       set [mask] and ending at point i (i in mask). *)
    let full = (1 lsl k) - 1 in
    let inf = max_int / 4 in
    let dp = Array.make_matrix (full + 1) k inf in
    let d = Array.make_matrix k k 0 in
    for i = 0 to k - 1 do
      for j = 0 to k - 1 do
        d.(i).(j) <- dist pts.(i) pts.(j)
      done;
      dp.(1 lsl i).(i) <- dist start pts.(i)
    done;
    for mask = 1 to full do
      for last = 0 to k - 1 do
        if mask land (1 lsl last) <> 0 && dp.(mask).(last) < inf then begin
          let base = dp.(mask).(last) in
          for next = 0 to k - 1 do
            if mask land (1 lsl next) = 0 then begin
              let mask' = mask lor (1 lsl next) in
              let cand = base + d.(last).(next) in
              if cand < dp.(mask').(next) then dp.(mask').(next) <- cand
            end
          done
        end
      done
    done;
    let best = ref inf in
    for last = 0 to k - 1 do
      if dp.(full).(last) < !best then best := dp.(full).(last)
    done;
    !best
  end

let min_path_on_tree t ~start ~requests =
  min_path ~dist:(fun u v -> Tree.dist t u v) ~start ~requests

let min_path_on_graph g ~start ~requests =
  let cache = Hashtbl.create 16 in
  let dist u v =
    let row =
      match Hashtbl.find_opt cache u with
      | Some row -> row
      | None ->
          let row = Bfs.distances g u in
          Hashtbl.replace cache u row;
          row
    in
    row.(v)
  in
  min_path ~dist ~start ~requests

let nn_ratio ~dist ~start ~requests =
  let n =
    1 + List.fold_left max start requests
    (* oracle-based: any n larger than every id works. *)
  in
  let tour = Nn.on_metric ~dist ~n ~start ~requests in
  let opt = min_path ~dist ~start ~requests in
  if opt = 0 then 1.0 else float_of_int tour.cost /. float_of_int opt
