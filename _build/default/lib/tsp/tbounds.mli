(** Closed-form bounds from Section 4, made executable so experiments
    can print measured-vs-proved columns. *)

val list_bound : int -> int
(** Lemma 4.3: a nearest-neighbour tour on the list of [n] vertices
    costs at most [3n], for any request set and start. *)

val f : int -> int
(** The recurrence of Theorem 4.7: [f 0 = 0],
    [f k = 2 f (k-1) + 2k]. *)

val f_bound : int -> int
(** Lemma 4.8: [f k < 2^(k+2)]. *)

val perfect_binary_bound : n:int -> int
(** Theorem 4.7's explicit ceiling for the perfect binary tree on [n]
    vertices: [2d(d+1) + 8n] with [d = floor(log2 n)] — i.e. the
    [Θ(n)] bound with the paper's constants. *)

val rosenkrantz_ratio : int -> float
(** Rosenkrantz–Stearns–Lewis: the nearest-neighbour tour on any
    [k]-point triangle-inequality metric costs at most
    [(ceil(log2 k) + 1) / 2] times the optimum (clamped below at 1.0,
    where nearest-neighbour is exactly optimal). *)

val constant_degree_tree_bound : n:int -> k:int -> int
(** Corollary 4.2's shape: on any tree with [n] vertices the
    nearest-neighbour tour over [k] requests costs
    [O(n log k)] — concretely [n * (ceil(log2 k) + 1)], since the
    optimal tour costs at most [2n] (an Euler tour) and the
    Rosenkrantz factor applies. *)

val log2_ceil : int -> int
(** [ceil(log2 k)] for [k >= 1]. *)
