lib/tsp/runs.mli: Format
