lib/tsp/nn.ml: Array Countq_topology Hashtbl List
