lib/tsp/exact.ml: Array Countq_topology Hashtbl List Nn
