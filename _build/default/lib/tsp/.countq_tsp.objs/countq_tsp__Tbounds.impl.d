lib/tsp/tbounds.ml: Float
