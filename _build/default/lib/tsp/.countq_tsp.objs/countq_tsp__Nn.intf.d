lib/tsp/nn.mli: Countq_topology
