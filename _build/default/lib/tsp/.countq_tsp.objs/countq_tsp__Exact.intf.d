lib/tsp/exact.mli: Countq_topology
