lib/tsp/tbounds.mli:
