lib/tsp/runs.ml: Array Format List
