(** Exact minimum travelling-salesperson paths (Held–Karp dynamic
    programming) for small instances.

    Rosenkrantz, Stearns and Lewis proved the nearest-neighbour
    heuristic is a [log k] approximation on triangle-inequality
    metrics — the result Corollary 4.2 leans on. Comparing {!Nn}
    tours against these exact optima measures the actual ratio on the
    trees we care about. Exponential in [|R|]; intended for
    [|R| <= 20]. *)

val min_path :
  dist:(int -> int -> int) -> start:int -> requests:int list -> int
(** [min_path ~dist ~start ~requests] is the minimum total distance of
    a path that starts at [start] and visits every request exactly once
    (no return to start — the open tour the nearest-neighbour cost
    model uses).
    @raise Invalid_argument if [requests] has more than 22 elements or
    is empty-with-negative semantics (an empty list costs 0). *)

val min_path_on_tree :
  Countq_topology.Tree.t -> start:int -> requests:int list -> int
(** {!min_path} over tree-path distances. *)

val min_path_on_graph :
  Countq_topology.Graph.t -> start:int -> requests:int list -> int
(** {!min_path} over BFS shortest-path distances. *)

val nn_ratio :
  dist:(int -> int -> int) -> start:int -> requests:int list -> float
(** Nearest-neighbour cost divided by the optimum (1.0 when the
    optimum is 0). *)
