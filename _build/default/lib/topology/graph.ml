(* Immutable undirected graphs over [0 .. n-1], stored as sorted
   adjacency arrays. See graph.mli for the public documentation. *)

type t = {
  n : int;
  m : int;
  adj : int array array;
}

exception Invalid_edge of int * int

let n g = g.n
let m g = g.m

let check_edge n (u, v) =
  if u = v || u < 0 || v < 0 || u >= n || v >= n then raise (Invalid_edge (u, v))

(* Sorts and removes duplicates in place; returns a fresh array. *)
let sorted_dedup a =
  let a = Array.copy a in
  Array.sort compare a;
  let k = Array.length a in
  if k = 0 then a
  else begin
    let w = ref 1 in
    for r = 1 to k - 1 do
      if a.(r) <> a.(!w - 1) then begin
        a.(!w) <- a.(r);
        incr w
      end
    done;
    Array.sub a 0 !w
  end

let create ~n:nv edges =
  if nv < 1 then invalid_arg "Graph.create: n must be >= 1";
  List.iter (check_edge nv) edges;
  let deg = Array.make nv 0 in
  let count (u, v) =
    deg.(u) <- deg.(u) + 1;
    deg.(v) <- deg.(v) + 1
  in
  List.iter count edges;
  let adj = Array.init nv (fun v -> Array.make deg.(v) (-1)) in
  let fill = Array.make nv 0 in
  let put u v =
    adj.(u).(fill.(u)) <- v;
    fill.(u) <- fill.(u) + 1
  in
  List.iter
    (fun (u, v) ->
      put u v;
      put v u)
    edges;
  let adj = Array.map sorted_dedup adj in
  let m = Array.fold_left (fun acc a -> acc + Array.length a) 0 adj / 2 in
  { n = nv; m; adj }

let of_adjacency adj =
  let nv = Array.length adj in
  if nv < 1 then invalid_arg "Graph.of_adjacency: empty adjacency";
  let edges = ref [] in
  Array.iteri
    (fun u nbrs ->
      Array.iter
        (fun v ->
          check_edge nv (u, v);
          if u < v then edges := (u, v) :: !edges)
        nbrs)
    adj;
  let g = create ~n:nv !edges in
  (* Symmetry check: every (u, v) listed must also appear as (v, u). *)
  Array.iteri
    (fun u nbrs ->
      Array.iter
        (fun v ->
          let back = Array.exists (fun w -> w = u) adj.(v) in
          if not back then raise (Invalid_edge (u, v)))
        nbrs)
    adj;
  g

let neighbors g v = g.adj.(v)
let degree g v = Array.length g.adj.(v)

let max_degree g =
  Array.fold_left (fun acc a -> max acc (Array.length a)) 0 g.adj

let has_edge g u v =
  let a = g.adj.(u) in
  let rec search lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = v then true
      else if a.(mid) < v then search (mid + 1) hi
      else search lo mid
  in
  search 0 (Array.length a)

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    let a = g.adj.(u) in
    for i = Array.length a - 1 downto 0 do
      if u < a.(i) then acc := (u, a.(i)) :: !acc
    done
  done;
  List.sort compare !acc

let iter_neighbors g v f = Array.iter f g.adj.(v)

let fold_vertices g ~init ~f =
  let acc = ref init in
  for v = 0 to g.n - 1 do
    acc := f !acc v
  done;
  !acc

let is_connected g =
  let seen = Array.make g.n false in
  let queue = Queue.create () in
  Queue.push 0 queue;
  seen.(0) <- true;
  let count = ref 1 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          incr count;
          Queue.push v queue
        end)
      g.adj.(u)
  done;
  !count = g.n

let equal g1 g2 =
  g1.n = g2.n && g1.m = g2.m
  && Array.for_all2 (fun a b -> a = b) g1.adj g2.adj

let pp ppf g = Format.fprintf ppf "graph(n=%d, m=%d)" g.n g.m

let pp_full ppf g =
  Format.fprintf ppf "@[<v>graph n=%d m=%d" g.n g.m;
  Array.iteri
    (fun v nbrs ->
      Format.fprintf ppf "@,%4d ->" v;
      Array.iter (fun w -> Format.fprintf ppf " %d" w) nbrs)
    g.adj;
  Format.fprintf ppf "@]"
