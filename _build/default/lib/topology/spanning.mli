(** Spanning-tree constructions.

    The arrow protocol's initialisation step (free, per Section 2.2)
    chooses a spanning tree [T] of the network; all of Section 4's upper
    bounds are parameterised by the tree: a Hamilton path for
    Theorem 4.5, the perfect m-ary tree for Theorem 4.12, any
    constant-degree spanning tree for Corollary 4.2 / Theorem 4.13. *)

val bfs : Graph.t -> root:int -> Tree.t
(** Breadth-first spanning tree (minimises depth).
    @raise Invalid_argument if [g] is disconnected. *)

val dfs : Graph.t -> root:int -> Tree.t
(** Depth-first spanning tree (tends to be deep and low-degree). *)

val of_hamilton_path : int array -> Tree.t
(** Alias of {!Hamilton.path_tree}: a Hamilton path as a (degree ≤ 2)
    spanning tree. *)

val best_for_arrow : Graph.t -> Tree.t
(** The spanning tree the paper's Section 4 would pick for the arrow
    protocol on this graph: a Hamilton path when one of the known
    constructions applies (the graph equals K_n, a mesh, or a
    hypercube up to our generators' numbering — detected structurally),
    the graph itself when it is already a tree, otherwise a DFS tree
    (degree tends to be small) with the BFS tree as fallback if the DFS
    tree's degree is larger. *)

val degree_stats : Tree.t -> int * float
(** [(max_degree, mean_degree)] of the undirected tree. *)
