(* Spanning-tree constructions. See spanning.mli. *)

let bfs g ~root =
  let parent = Bfs.parents g root in
  Array.iteri
    (fun v p ->
      if v <> root && p = v then invalid_arg "Spanning.bfs: disconnected graph")
    parent;
  Tree.of_parents ~root parent

let dfs g ~root =
  let n = Graph.n g in
  let parent = Array.init n (fun v -> v) in
  let seen = Array.make n false in
  let stack = Stack.create () in
  Stack.push (root, root) stack;
  while not (Stack.is_empty stack) do
    let v, p = Stack.pop stack in
    if not seen.(v) then begin
      seen.(v) <- true;
      if v <> root then parent.(v) <- p;
      let nbrs = Graph.neighbors g v in
      for i = Array.length nbrs - 1 downto 0 do
        if not seen.(nbrs.(i)) then Stack.push (nbrs.(i), v) stack
      done
    end
  done;
  if Array.exists (fun s -> not s) seen then
    invalid_arg "Spanning.dfs: disconnected graph";
  Tree.of_parents ~root parent

let of_hamilton_path = Hamilton.path_tree

let degree_stats t =
  let n = Tree.n t in
  let sum = ref 0 and maxd = ref 0 in
  for v = 0 to n - 1 do
    let d = Tree.degree t v in
    sum := !sum + d;
    maxd := max !maxd d
  done;
  (!maxd, float_of_int !sum /. float_of_int n)

(* Candidate Hamilton orders to try against a given graph: the known
   constructions of Lemma 4.6 under our generators' vertex numbering. *)
let hamilton_candidates g =
  let n = Graph.n g in
  let candidates = ref [] in
  (* K_n and the path graph both admit the identity order. *)
  candidates := Hamilton.complete n :: !candidates;
  (* Hypercube: n a power of two, Gray-code order. *)
  let is_pow2 = n > 0 && n land (n - 1) = 0 in
  if is_pow2 then begin
    let rec log2 k acc = if k = 1 then acc else log2 (k / 2) (acc + 1) in
    let d = log2 n 0 in
    if d >= 1 && d <= 24 then candidates := Hamilton.hypercube d :: !candidates
  end;
  (* Square mesh: n a perfect square, snake order. *)
  let s = int_of_float (Float.round (sqrt (float_of_int n))) in
  if s >= 1 && s * s = n then
    candidates := Hamilton.mesh ~dims:[ s; s ] :: !candidates;
  (* 3-D cube mesh. *)
  let c = int_of_float (Float.round (Float.cbrt (float_of_int n))) in
  if c >= 1 && c * c * c = n then
    candidates := Hamilton.mesh ~dims:[ c; c; c ] :: !candidates;
  !candidates

let best_for_arrow g =
  let n = Graph.n g in
  if Graph.m g = n - 1 then
    (* Already a tree: use it as is, rooted at a low-degree vertex. *)
    Tree.of_graph g ~root:0
  else
    match
      List.find_opt (fun order -> Hamilton.is_hamilton_path g order)
        (hamilton_candidates g)
    with
    | Some order -> Hamilton.path_tree order
    | None ->
        let td = dfs g ~root:0 in
        let tb = bfs g ~root:0 in
        if Tree.max_degree td <= Tree.max_degree tb then td else tb
