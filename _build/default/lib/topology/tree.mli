(** Rooted trees on vertices [0 .. n-1].

    Spanning trees are the backbone of both sides of the paper: the
    arrow protocol runs path reversal over a spanning tree (Section 4),
    and the nearest-neighbour TSP bounds are stated for distances
    measured along the tree. This module provides rooted-tree structure
    with O(log n) tree-distance queries via binary-lifting LCA. *)

type t
(** A rooted tree. *)

val of_parents : root:int -> int array
  -> t
(** [of_parents ~root parent] builds a rooted tree where [parent.(v)] is
    the parent of [v] and [parent.(root) = root].

    @raise Invalid_argument if the parent array is not a tree rooted at
    [root] (cycle, forest, or bad root). *)

val of_graph : Graph.t -> root:int -> t
(** [of_graph g ~root] interprets a connected graph with [n-1] edges as
    a tree rooted at [root].
    @raise Invalid_argument if [g] is not a tree. *)

val n : t -> int
(** Number of vertices. *)

val root : t -> int
(** The root vertex. *)

val parent : t -> int -> int
(** [parent t v] is the parent of [v]; the root maps to itself. *)

val children : t -> int -> int array
(** [children t v] is the sorted array of children of [v] (owned by the
    tree, do not mutate). *)

val depth : t -> int -> int
(** [depth t v] is the distance from the root to [v]. *)

val height : t -> int
(** The maximum depth over all vertices. *)

val degree : t -> int -> int
(** Degree of [v] in the underlying undirected tree (children count plus
    one for the parent edge, except at the root). *)

val max_degree : t -> int
(** Maximum undirected degree; the arrow protocol assumes this is a
    constant (Section 4's "expanded time step"). *)

val lca : t -> int -> int -> int
(** Lowest common ancestor in O(log n). *)

val dist : t -> int -> int -> int
(** [dist t u v] is the number of tree edges between [u] and [v],
    computed as [depth u + depth v - 2 * depth (lca u v)]. *)

val is_leaf : t -> int -> bool
(** Whether [v] has no children. *)

val leaves : t -> int list
(** All leaves in increasing vertex order. *)

val subtree_size : t -> int -> int
(** Number of vertices in the subtree rooted at [v] (including [v]). *)

val dfs_order : t -> int array
(** Vertices in preorder (root first, children in sorted order). *)

val path : t -> int -> int -> int list
(** [path t u v] is the unique tree path [u; ...; v]. *)

val next_hop : t -> int -> int -> int
(** [next_hop t v dst] is the tree neighbour of [v] on the path toward
    [dst]; [v] itself when [v = dst]. O(log n). *)

val to_graph : t -> Graph.t
(** The underlying undirected tree as a graph. *)

val pp : Format.formatter -> t -> unit
(** Compact printer ["tree(n=…, root=…, height=…)"]. *)
