(** Immutable undirected graphs over vertices [0 .. n-1].

    This is the interconnection-network substrate of the paper's model
    (Section 2.1): a connected undirected graph [G = (V, E)] whose
    vertices are processors and whose edges are reliable FIFO links.

    The representation is adjacency arrays (sorted, duplicate-free),
    built once and never mutated, so graphs can be shared freely across
    concurrent simulations. *)

type t
(** An undirected simple graph. *)

exception Invalid_edge of int * int
(** Raised by {!create} on a self loop or an out-of-range endpoint. *)

val create : n:int -> (int * int) list -> t
(** [create ~n edges] builds the graph on vertices [0 .. n-1] with the
    given undirected edges. Duplicate edges are merged; self loops and
    out-of-range endpoints raise {!Invalid_edge}.

    @raise Invalid_argument if [n < 1]. *)

val of_adjacency : int array array -> t
(** [of_adjacency adj] builds a graph from raw adjacency lists.
    The input is validated for symmetry, simplicity, and range. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of (undirected) edges. *)

val neighbors : t -> int -> int array
(** [neighbors g v] is the sorted array of neighbours of [v]. The
    returned array is owned by the graph: do not mutate it. *)

val degree : t -> int -> int
(** [degree g v] is the number of neighbours of [v]. *)

val max_degree : t -> int
(** The maximum degree over all vertices. *)

val has_edge : t -> int -> int -> bool
(** [has_edge g u v] tests edge membership in [O(log (degree u))]. *)

val edges : t -> (int * int) list
(** All edges as pairs [(u, v)] with [u < v], in lexicographic order. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** [iter_neighbors g v f] applies [f] to each neighbour of [v]. *)

val fold_vertices : t -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Folds over all vertex ids in increasing order. *)

val is_connected : t -> bool
(** Whether the graph is connected (true for the empty 1-vertex graph). *)

val equal : t -> t -> bool
(** Structural equality (same vertex count and edge set). *)

val pp : Format.formatter -> t -> unit
(** Prints a compact description ["graph(n=…, m=…)"]. *)

val pp_full : Format.formatter -> t -> unit
(** Prints the full adjacency structure; intended for debugging. *)
