(* Hamilton-path constructions (Lemma 4.6). See hamilton.mli. *)

let complete n =
  if n < 1 then invalid_arg "Hamilton.complete: n must be >= 1";
  Array.init n (fun i -> i)

(* Snake order by induction on the dimension: a d-dimensional mesh is a
   stack of (d-1)-dimensional meshes; traverse each layer's Hamilton
   path, alternating direction so consecutive layers join on adjacent
   vertices (Lemma 4.6). *)
let mesh ~dims =
  if dims = [] then invalid_arg "Hamilton.mesh: empty dimension list";
  List.iter (fun d -> if d < 1 then invalid_arg "Hamilton.mesh: side must be >= 1") dims;
  let rec build dims =
    match dims with
    | [] -> assert false
    | [ d ] -> (Array.init d (fun i -> i), d)
    | d :: rest ->
        let sub, subn = build rest in
        let total = d * subn in
        let out = Array.make total (-1) in
        let idx = ref 0 in
        for layer = 0 to d - 1 do
          let base = layer * subn in
          if layer mod 2 = 0 then
            Array.iter
              (fun v ->
                out.(!idx) <- base + v;
                incr idx)
              sub
          else
            for i = subn - 1 downto 0 do
              out.(!idx) <- base + sub.(i);
              incr idx
            done
        done;
        (out, total)
  in
  fst (build dims)

let hypercube d =
  if d < 1 || d > 24 then invalid_arg "Hamilton.hypercube: bad dimension";
  let n = 1 lsl d in
  Array.init n (fun i -> i lxor (i lsr 1))

let is_hamilton_path g order =
  let n = Graph.n g in
  Array.length order = n
  && begin
       let seen = Array.make n false in
       let ok = ref true in
       Array.iter
         (fun v ->
           if v < 0 || v >= n || seen.(v) then ok := false
           else seen.(v) <- true)
         order;
       if !ok then
         for i = 0 to n - 2 do
           if not (Graph.has_edge g order.(i) order.(i + 1)) then ok := false
         done;
       !ok
     end

let find g =
  let n = Graph.n g in
  let order = Array.make n (-1) in
  let used = Array.make n false in
  let exception Found in
  let rec extend pos v =
    order.(pos) <- v;
    used.(v) <- true;
    if pos = n - 1 then raise Found;
    Graph.iter_neighbors g v (fun w -> if not used.(w) then extend (pos + 1) w);
    used.(v) <- false
  in
  try
    for start = 0 to n - 1 do
      extend 0 start
    done;
    None
  with Found -> Some (Array.copy order)

let path_tree order =
  let n = Array.length order in
  if n = 0 then invalid_arg "Hamilton.path_tree: empty order";
  let parent = Array.make n (-1) in
  parent.(order.(0)) <- order.(0);
  for i = 1 to n - 1 do
    parent.(order.(i)) <- order.(i - 1)
  done;
  Tree.of_parents ~root:order.(0) parent
