(** Generators for the interconnection topologies studied in the paper.

    The paper's separation results are stated for: the complete graph,
    the list (path), the d-dimensional mesh, the hypercube, perfect
    m-ary trees (Theorems 4.5–4.12), generic high-diameter
    constant-degree graphs (Theorem 4.13), and the star (the Section 5
    non-separation). Random trees and Erdős–Rényi graphs support the
    property tests and the Rosenkrantz approximation study. *)

val complete : int -> Graph.t
(** [complete n] is K_n. @raise Invalid_argument if [n < 1]. *)

val path : int -> Graph.t
(** [path n] is the list graph [0 - 1 - ... - n-1]. *)

val cycle : int -> Graph.t
(** [cycle n] is the ring on [n >= 3] vertices. *)

val star : int -> Graph.t
(** [star n] has centre [0] and leaves [1 .. n-1]; the Section 5
    topology where counting and queuing are both Θ(n²). *)

val mesh : dims:int list -> Graph.t
(** [mesh ~dims:[d1; …; dk]] is the k-dimensional mesh with side
    lengths [di]; vertices are numbered in row-major order.
    @raise Invalid_argument if any side is [< 1] or the list is empty. *)

val square_mesh : int -> Graph.t
(** [square_mesh s] is the two-dimensional s × s mesh. *)

val torus : dims:int list -> Graph.t
(** Like {!mesh} with wrap-around edges (sides of length 2 collapse to
    a single edge, not a double edge). *)

val hypercube : int -> Graph.t
(** [hypercube d] is the d-dimensional hypercube on [2^d] vertices
    ([d >= 1]); vertex ids are the bit strings. *)

val perfect_tree : arity:int -> height:int -> Graph.t
(** [perfect_tree ~arity ~height] is the perfect m-ary tree in which
    every internal vertex has exactly [arity] children and all leaves
    are at depth [height]. Vertices are numbered in BFS order with the
    root at [0]. @raise Invalid_argument if [arity < 1 || height < 0]. *)

val perfect_tree_root : int
(** The root vertex id of {!perfect_tree} (always 0). *)

val perfect_tree_size : arity:int -> height:int -> int
(** Number of vertices of the corresponding perfect tree. *)

val balanced_tree_on : arity:int -> int -> Graph.t
(** [balanced_tree_on ~arity n] is the complete m-ary tree on exactly
    [n] vertices in BFS numbering (leaf depths differ by at most 1) —
    the "perfect m-ary tree" in the paper's relaxed sense. *)

val caterpillar : spine:int -> legs:int -> Graph.t
(** A path of [spine] vertices, each with [legs] pendant leaves: a
    high-diameter, constant-degree family for Theorem 4.13. *)

val random_tree : Countq_util.Rng.t -> int -> Graph.t
(** A uniformly random labelled tree on [n] vertices via a random
    Prüfer sequence ([n >= 1]). *)

val random_binary_tree : Countq_util.Rng.t -> int -> Graph.t
(** A random tree with maximum degree 3 (random recursive attachment
    constrained to degree < 3): constant-degree spanning trees for
    Corollary 4.2 experiments. *)

val erdos_renyi : Countq_util.Rng.t -> n:int -> p:float -> Graph.t
(** G(n, p) conditioned on connectivity: edges are resampled (with
    fresh randomness) until the graph is connected.
    @raise Invalid_argument if [p < 0. || p > 1.], and if [p] is so
    small that connectivity is hopeless ([p * (n-1) < 0.5] for n > 1) . *)

val lollipop : clique:int -> tail:int -> Graph.t
(** A clique of size [clique] attached to a path of [tail] vertices —
    mixed-diameter stress topology. *)

val de_bruijn : int -> Graph.t
(** [de_bruijn d] is the undirected binary de Bruijn graph on [2^d]
    vertices ([d >= 1]): vertex [v] is adjacent to [2v mod n],
    [2v + 1 mod n] and their shift-in predecessors. Degree <= 4 and
    diameter [d] — a classic constant-degree, low-diameter
    interconnection network. *)

val cube_connected_cycles : int -> Graph.t
(** [cube_connected_cycles d] is CCC(d) for [d >= 3]: each hypercube
    vertex is replaced by a [d]-cycle whose [i]-th node also connects
    across dimension [i]. [d * 2^d] vertices, 3-regular, diameter
    [Θ(d)]. *)

val butterfly : int -> Graph.t
(** [butterfly d] is the [d]-dimensional (unwrapped) butterfly:
    [(d+1) * 2^d] vertices in levels [0..d]; level [i] node [w]
    connects to level [i+1] nodes [w] and [w lxor 2^i]. Degree <= 4. *)

val random_regular : Countq_util.Rng.t -> n:int -> degree:int -> Graph.t
(** A random [degree]-regular simple connected graph on [n] vertices
    via the configuration model with rejection ([n * degree] must be
    even, [degree >= 2], [n > degree]). Retries until simple and
    connected. *)
