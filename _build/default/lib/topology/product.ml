(* Cartesian graph products. See product.mli. *)

let cartesian g h =
  let ng = Graph.n g and nh = Graph.n h in
  let id u v = (u * nh) + v in
  let edges = ref [] in
  (* Edges within each copy of h (fix u), and across copies (fix v). *)
  for u = 0 to ng - 1 do
    for v = 0 to nh - 1 do
      Graph.iter_neighbors h v (fun v' ->
          if v < v' then edges := (id u v, id u v') :: !edges);
      Graph.iter_neighbors g u (fun u' ->
          if u < u' then edges := (id u v, id u' v) :: !edges)
    done
  done;
  Graph.create ~n:(ng * nh) !edges

let power g k =
  if k < 1 then invalid_arg "Product.power: k must be >= 1";
  let rec go acc i = if i = 1 then acc else go (cartesian acc g) (i - 1) in
  go g k
