(* Rooted trees with binary-lifting LCA. See tree.mli. *)

type t = {
  n : int;
  root : int;
  parent : int array;
  children : int array array;
  depth : int array;
  up : int array array; (* up.(k).(v) = 2^k-th ancestor of v (clamped at root) *)
  order : int array; (* preorder *)
  size : int array; (* subtree sizes *)
}

let n t = t.n
let root t = t.root
let parent t v = t.parent.(v)
let children t v = t.children.(v)
let depth t v = t.depth.(v)

let compute_depths ~root parent =
  let n = Array.length parent in
  let depth = Array.make n (-1) in
  depth.(root) <- 0;
  let rec resolve v trail =
    if depth.(v) >= 0 then depth.(v)
    else if List.mem v trail then
      invalid_arg "Tree.of_parents: cycle in parent array"
    else begin
      let p = parent.(v) in
      if p = v then invalid_arg "Tree.of_parents: multiple roots"
      else begin
        let d = resolve p (v :: trail) + 1 in
        depth.(v) <- d;
        d
      end
    end
  in
  for v = 0 to n - 1 do
    ignore (resolve v [])
  done;
  depth

let of_parents ~root parent =
  let n = Array.length parent in
  if n = 0 then invalid_arg "Tree.of_parents: empty";
  if root < 0 || root >= n then invalid_arg "Tree.of_parents: bad root";
  if parent.(root) <> root then
    invalid_arg "Tree.of_parents: parent.(root) must be root";
  Array.iteri
    (fun v p ->
      if p < 0 || p >= n then invalid_arg "Tree.of_parents: parent out of range";
      if p = v && v <> root then invalid_arg "Tree.of_parents: multiple roots")
    parent;
  let parent = Array.copy parent in
  let depth = compute_depths ~root parent in
  let child_count = Array.make n 0 in
  Array.iteri
    (fun v p -> if v <> root then child_count.(p) <- child_count.(p) + 1)
    parent;
  let children = Array.init n (fun v -> Array.make child_count.(v) (-1)) in
  let fill = Array.make n 0 in
  for v = 0 to n - 1 do
    if v <> root then begin
      let p = parent.(v) in
      children.(p).(fill.(p)) <- v;
      fill.(p) <- fill.(p) + 1
    end
  done;
  Array.iter (fun c -> Array.sort compare c) children;
  (* Binary-lifting ancestor table. *)
  let levels =
    let rec count k acc = if acc >= n then k else count (k + 1) (acc * 2) in
    max 1 (count 0 1)
  in
  let up = Array.make_matrix levels n root in
  up.(0) <- Array.copy parent;
  for k = 1 to levels - 1 do
    for v = 0 to n - 1 do
      up.(k).(v) <- up.(k - 1).(up.(k - 1).(v))
    done
  done;
  (* Preorder and subtree sizes, iteratively (trees can be deep lists). *)
  let order = Array.make n (-1) in
  let size = Array.make n 1 in
  let idx = ref 0 in
  let stack = Stack.create () in
  Stack.push root stack;
  while not (Stack.is_empty stack) do
    let v = Stack.pop stack in
    order.(!idx) <- v;
    incr idx;
    let cs = children.(v) in
    for i = Array.length cs - 1 downto 0 do
      Stack.push cs.(i) stack
    done
  done;
  if !idx <> n then invalid_arg "Tree.of_parents: not a single tree";
  for i = n - 1 downto 0 do
    let v = order.(i) in
    if v <> root then begin
      let p = parent.(v) in
      size.(p) <- size.(p) + size.(v)
    end
  done;
  { n; root; parent; children; depth; up; order; size }

let of_graph g ~root =
  let n = Graph.n g in
  if Graph.m g <> n - 1 then invalid_arg "Tree.of_graph: not a tree (m <> n-1)";
  if not (Graph.is_connected g) then invalid_arg "Tree.of_graph: disconnected";
  of_parents ~root (Bfs.parents g root)

let height t = Array.fold_left max 0 t.depth

let degree t v =
  let c = Array.length t.children.(v) in
  if v = t.root then c else c + 1

let max_degree t =
  let best = ref 0 in
  for v = 0 to t.n - 1 do
    best := max !best (degree t v)
  done;
  !best

let ancestor t v k =
  (* k-th ancestor of v, clamped at the root. *)
  let v = ref v and k = ref k and bit = ref 0 in
  while !k > 0 && !bit < Array.length t.up do
    if !k land 1 = 1 then v := t.up.(!bit).(!v);
    k := !k asr 1;
    incr bit
  done;
  !v

let lca t u v =
  let u, v =
    if t.depth.(u) >= t.depth.(v) then (u, v) else (v, u)
  in
  let u = ancestor t u (t.depth.(u) - t.depth.(v)) in
  if u = v then u
  else begin
    let u = ref u and v = ref v in
    for k = Array.length t.up - 1 downto 0 do
      if t.up.(k).(!u) <> t.up.(k).(!v) then begin
        u := t.up.(k).(!u);
        v := t.up.(k).(!v)
      end
    done;
    t.parent.(!u)
  end

let dist t u v =
  let a = lca t u v in
  t.depth.(u) + t.depth.(v) - (2 * t.depth.(a))

let is_leaf t v = Array.length t.children.(v) = 0

let leaves t =
  let acc = ref [] in
  for v = t.n - 1 downto 0 do
    if is_leaf t v then acc := v :: !acc
  done;
  !acc

let subtree_size t v = t.size.(v)
let dfs_order t = Array.copy t.order

let path t u v =
  let a = lca t u v in
  let rec up_to acc x = if x = a then List.rev (a :: acc) else up_to (x :: acc) t.parent.(x) in
  let from_u = up_to [] u in
  let rec down acc x = if x = a then acc else down (x :: acc) t.parent.(x) in
  from_u @ down [] v

let next_hop t v dst =
  if v = dst then v
  else begin
    let a = lca t v dst in
    if a <> v then t.parent.(v)
    else
      (* dst is in v's subtree: the child of v that is an ancestor of dst. *)
      ancestor t dst (t.depth.(dst) - t.depth.(v) - 1)
  end

let to_graph t =
  let edges = ref [] in
  for v = 0 to t.n - 1 do
    if v <> t.root then edges := (v, t.parent.(v)) :: !edges
  done;
  Graph.create ~n:t.n !edges

let pp ppf t =
  Format.fprintf ppf "tree(n=%d, root=%d, height=%d)" t.n t.root (height t)
