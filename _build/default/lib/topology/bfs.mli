(** Breadth-first search utilities: distances, eccentricities, diameter,
    shortest paths and next-hop routing tables.

    All link weights are 1 (the paper's synchronous unit-delay links), so
    BFS distances are exactly the information-propagation latencies used
    by the lower bound of Theorem 3.6. *)

val distances : Graph.t -> int -> int array
(** [distances g src] is the array of hop distances from [src]; vertices
    unreachable from [src] get [-1]. *)

val distance : Graph.t -> int -> int -> int
(** [distance g u v] is the hop distance between [u] and [v], or [-1] if
    disconnected. Runs a fresh BFS; use {!distances} for batch queries. *)

val eccentricity : Graph.t -> int -> int
(** [eccentricity g v] is the maximum distance from [v] to any vertex.
    @raise Invalid_argument if [g] is disconnected. *)

val diameter : Graph.t -> int
(** Exact diameter via [n] BFS runs.
    @raise Invalid_argument if [g] is disconnected. *)

val diameter_estimate : Graph.t -> seed:int64 -> rounds:int -> int
(** Lower bound on the diameter via repeated double-sweep BFS; cheap on
    large graphs. The result never exceeds the true diameter and is
    exact on trees. *)

val shortest_path : Graph.t -> int -> int -> int list
(** [shortest_path g u v] is a minimum-hop path [u; ...; v].
    @raise Not_found if [v] is unreachable from [u]. *)

val parents : Graph.t -> int -> int array
(** [parents g src] is the BFS parent of each vertex ([src] and
    unreachable vertices map to themselves), the standard BFS spanning
    tree used by protocols for request routing. *)

val next_hop_table : Graph.t -> int array array
(** [next_hop_table g] is the all-pairs next-hop routing table:
    [(next_hop_table g).(v).(dst)] is the neighbour of [v] on a shortest
    path to [dst] (and [v] itself when [v = dst]). Requires O(n²) space;
    intended for the moderate sizes used in simulations.
    @raise Invalid_argument if [g] is disconnected. *)
