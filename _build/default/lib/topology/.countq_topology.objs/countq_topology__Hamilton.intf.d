lib/topology/hamilton.mli: Graph Tree
