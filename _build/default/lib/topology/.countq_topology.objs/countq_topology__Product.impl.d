lib/topology/product.ml: Graph
