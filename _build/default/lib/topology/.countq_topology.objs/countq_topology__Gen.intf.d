lib/topology/gen.mli: Countq_util Graph
