lib/topology/graph.ml: Array Format List Queue
