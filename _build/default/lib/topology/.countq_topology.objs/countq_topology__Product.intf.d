lib/topology/product.mli: Graph
