lib/topology/tree.mli: Format Graph
