lib/topology/tree.ml: Array Bfs Format Graph List Stack
