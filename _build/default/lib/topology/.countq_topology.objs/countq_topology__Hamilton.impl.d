lib/topology/hamilton.ml: Array Graph List Tree
