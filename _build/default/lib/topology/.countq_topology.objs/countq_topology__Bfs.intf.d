lib/topology/bfs.mli: Graph
