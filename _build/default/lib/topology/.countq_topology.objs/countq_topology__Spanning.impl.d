lib/topology/spanning.ml: Array Bfs Float Graph Hamilton List Stack Tree
