lib/topology/bfs.ml: Array Graph Int64 List Queue
