lib/topology/spanning.mli: Graph Tree
