lib/topology/gen.ml: Array Countq_util Graph Hashtbl Int List Set
