(** Cartesian graph products.

    The paper's mesh and torus families are products of paths and
    cycles, and the hypercube is an iterated product of edges; building
    them generically both deduplicates the generators and gives the
    test suite a strong cross-check (the generator's mesh must be
    isomorphic to [path × path] — same size, degree profile and
    diameter). *)

val cartesian : Graph.t -> Graph.t -> Graph.t
(** [cartesian g h] is the Cartesian product [g □ h]: vertices are
    pairs [(u, v)] numbered [u * n_h + v]; [(u, v)] and [(u', v')] are
    adjacent iff [u = u'] and [v ~ v'] in [h], or [v = v'] and
    [u ~ u'] in [g]. [n = n_g · n_h],
    [m = n_g · m_h + n_h · m_g]; the product of connected graphs is
    connected, and distances add coordinate-wise. *)

val power : Graph.t -> int -> Graph.t
(** [power g k] is the iterated product [g □ g □ … □ g] ([k] copies,
    [k >= 1]). [power (path 2) d] is the [d]-dimensional hypercube up
    to vertex numbering. *)
