(* Topology generators. See gen.mli. *)

module Rng = Countq_util.Rng

let complete n =
  if n < 1 then invalid_arg "Gen.complete: n must be >= 1";
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.create ~n !edges

let path n =
  if n < 1 then invalid_arg "Gen.path: n must be >= 1";
  let edges = List.init (max 0 (n - 1)) (fun i -> (i, i + 1)) in
  Graph.create ~n edges

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: n must be >= 3";
  let edges = (0, n - 1) :: List.init (n - 1) (fun i -> (i, i + 1)) in
  Graph.create ~n edges

let star n =
  if n < 2 then invalid_arg "Gen.star: n must be >= 2";
  Graph.create ~n (List.init (n - 1) (fun i -> (0, i + 1)))

(* Row-major mixed-radix coordinates for meshes and tori. *)
let strides dims =
  let k = List.length dims in
  let arr = Array.of_list dims in
  let s = Array.make k 1 in
  for i = k - 2 downto 0 do
    s.(i) <- s.(i + 1) * arr.(i + 1)
  done;
  (arr, s)

let mesh_like ~wrap ~dims =
  if dims = [] then invalid_arg "Gen.mesh: empty dimension list";
  List.iter (fun d -> if d < 1 then invalid_arg "Gen.mesh: side must be >= 1") dims;
  let sides, stride = strides dims in
  let k = Array.length sides in
  let n = Array.fold_left ( * ) 1 sides in
  let edges = ref [] in
  for v = 0 to n - 1 do
    for i = 0 to k - 1 do
      let coord = v / stride.(i) mod sides.(i) in
      if coord + 1 < sides.(i) then edges := (v, v + stride.(i)) :: !edges
      else if wrap && sides.(i) > 2 then
        (* wrap edge back to coordinate 0 along dimension i *)
        edges := (v, v - (coord * stride.(i))) :: !edges
    done
  done;
  Graph.create ~n !edges

let mesh ~dims = mesh_like ~wrap:false ~dims
let torus ~dims = mesh_like ~wrap:true ~dims
let square_mesh s = mesh ~dims:[ s; s ]

let hypercube d =
  if d < 1 then invalid_arg "Gen.hypercube: d must be >= 1";
  if d > 24 then invalid_arg "Gen.hypercube: d too large";
  let n = 1 lsl d in
  let edges = ref [] in
  for v = 0 to n - 1 do
    for b = 0 to d - 1 do
      let u = v lxor (1 lsl b) in
      if v < u then edges := (v, u) :: !edges
    done
  done;
  Graph.create ~n !edges

let perfect_tree_root = 0

let perfect_tree_size ~arity ~height =
  if arity < 1 || height < 0 then
    invalid_arg "Gen.perfect_tree_size: bad arity/height";
  if arity = 1 then height + 1
  else begin
    let rec total acc level count =
      if level > height then acc else total (acc + count) (level + 1) (count * arity)
    in
    total 0 0 1
  end

(* BFS numbering: children of vertex v are v*arity + 1 ... v*arity + arity. *)
let balanced_tree_on ~arity n =
  if arity < 1 then invalid_arg "Gen.balanced_tree_on: arity must be >= 1";
  if n < 1 then invalid_arg "Gen.balanced_tree_on: n must be >= 1";
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := (v, (v - 1) / arity) :: !edges
  done;
  Graph.create ~n !edges

let perfect_tree ~arity ~height =
  balanced_tree_on ~arity (perfect_tree_size ~arity ~height)

let caterpillar ~spine ~legs =
  if spine < 1 || legs < 0 then invalid_arg "Gen.caterpillar: bad parameters";
  let n = spine * (1 + legs) in
  let edges = ref [] in
  for i = 0 to spine - 2 do
    edges := (i, i + 1) :: !edges
  done;
  for i = 0 to spine - 1 do
    for l = 0 to legs - 1 do
      edges := (i, spine + (i * legs) + l) :: !edges
    done
  done;
  Graph.create ~n !edges

let random_tree rng n =
  if n < 1 then invalid_arg "Gen.random_tree: n must be >= 1";
  if n = 1 then Graph.create ~n []
  else if n = 2 then Graph.create ~n [ (0, 1) ]
  else begin
    (* Decode a uniformly random Prüfer sequence of length n-2. *)
    let prufer = Array.init (n - 2) (fun _ -> Rng.below rng n) in
    let deg = Array.make n 1 in
    Array.iter (fun v -> deg.(v) <- deg.(v) + 1) prufer;
    let module H = Set.Make (Int) in
    let leaves = ref H.empty in
    for v = 0 to n - 1 do
      if deg.(v) = 1 then leaves := H.add v !leaves
    done;
    let edges = ref [] in
    Array.iter
      (fun v ->
        let leaf = H.min_elt !leaves in
        leaves := H.remove leaf !leaves;
        edges := (leaf, v) :: !edges;
        deg.(v) <- deg.(v) - 1;
        if deg.(v) = 1 then leaves := H.add v !leaves)
      prufer;
    (match H.elements !leaves with
    | [ a; b ] -> edges := (a, b) :: !edges
    | _ -> assert false);
    Graph.create ~n !edges
  end

let random_binary_tree rng n =
  if n < 1 then invalid_arg "Gen.random_binary_tree: n must be >= 1";
  let deg = Array.make n 0 in
  let available = ref [ 0 ] in
  let edges = ref [] in
  for v = 1 to n - 1 do
    let avail = Array.of_list !available in
    let u = avail.(Rng.below rng (Array.length avail)) in
    edges := (u, v) :: !edges;
    deg.(u) <- deg.(u) + 1;
    deg.(v) <- deg.(v) + 1;
    available :=
      List.filter (fun w -> deg.(w) < 3) (v :: !available)
  done;
  Graph.create ~n !edges

let erdos_renyi rng ~n ~p =
  if n < 1 then invalid_arg "Gen.erdos_renyi: n must be >= 1";
  if p < 0. || p > 1. then invalid_arg "Gen.erdos_renyi: p out of range";
  if n > 1 && p *. float_of_int (n - 1) < 0.5 then
    invalid_arg "Gen.erdos_renyi: p too small for connectivity";
  let rec attempt k =
    if k = 0 then
      invalid_arg "Gen.erdos_renyi: failed to draw a connected graph"
    else begin
      let edges = ref [] in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if Rng.float rng < p then edges := (u, v) :: !edges
        done
      done;
      let g = Graph.create ~n !edges in
      if Graph.is_connected g then g else attempt (k - 1)
    end
  in
  attempt 1000

let de_bruijn d =
  if d < 1 || d > 24 then invalid_arg "Gen.de_bruijn: bad dimension";
  let n = 1 lsl d in
  let edges = ref [] in
  for v = 0 to n - 1 do
    let s0 = 2 * v mod n and s1 = ((2 * v) + 1) mod n in
    if s0 <> v then edges := (v, s0) :: !edges;
    if s1 <> v then edges := (v, s1) :: !edges
  done;
  Graph.create ~n !edges

let cube_connected_cycles d =
  if d < 3 then invalid_arg "Gen.cube_connected_cycles: d must be >= 3";
  if d > 20 then invalid_arg "Gen.cube_connected_cycles: d too large";
  let cube = 1 lsl d in
  let n = d * cube in
  (* vertex (w, i) with w in [0, 2^d) and cycle position i in [0, d). *)
  let id w i = (w * d) + i in
  let edges = ref [] in
  for w = 0 to cube - 1 do
    for i = 0 to d - 1 do
      (* cycle edge to (w, i+1) *)
      edges := (id w i, id w ((i + 1) mod d)) :: !edges;
      (* hypercube edge across dimension i *)
      let w' = w lxor (1 lsl i) in
      if w < w' then edges := (id w i, id w' i) :: !edges
    done
  done;
  Graph.create ~n !edges

let butterfly d =
  if d < 1 || d > 20 then invalid_arg "Gen.butterfly: bad dimension";
  let cols = 1 lsl d in
  let n = (d + 1) * cols in
  let id level w = (level * cols) + w in
  let edges = ref [] in
  for level = 0 to d - 1 do
    for w = 0 to cols - 1 do
      edges := (id level w, id (level + 1) w) :: !edges;
      edges := (id level w, id (level + 1) (w lxor (1 lsl level))) :: !edges
    done
  done;
  Graph.create ~n !edges

let random_regular rng ~n ~degree =
  if degree < 2 then invalid_arg "Gen.random_regular: degree must be >= 2";
  if n <= degree then invalid_arg "Gen.random_regular: need n > degree";
  if n * degree mod 2 <> 0 then
    invalid_arg "Gen.random_regular: n * degree must be even";
  (* Configuration model with rejection: pair up half-edge stubs
     uniformly; retry on self loops, multi-edges or disconnection. *)
  let attempt () =
    let stubs = Array.make (n * degree) 0 in
    for v = 0 to n - 1 do
      for j = 0 to degree - 1 do
        stubs.((v * degree) + j) <- v
      done
    done;
    Rng.shuffle rng stubs;
    let edges = ref [] in
    let ok = ref true in
    let seen = Hashtbl.create (n * degree) in
    let half = Array.length stubs / 2 in
    for p = 0 to half - 1 do
      let u = stubs.(2 * p) and v = stubs.((2 * p) + 1) in
      if u = v || Hashtbl.mem seen (min u v, max u v) then ok := false
      else begin
        Hashtbl.replace seen (min u v, max u v) ();
        edges := (u, v) :: !edges
      end
    done;
    if not !ok then None
    else begin
      let g = Graph.create ~n !edges in
      if Graph.is_connected g then Some g else None
    end
  in
  let rec retry k =
    if k = 0 then
      invalid_arg "Gen.random_regular: failed to draw a simple connected graph"
    else match attempt () with Some g -> g | None -> retry (k - 1)
  in
  retry 5000

let lollipop ~clique ~tail =
  if clique < 1 || tail < 0 then invalid_arg "Gen.lollipop: bad parameters";
  let n = clique + tail in
  let edges = ref [] in
  for u = 0 to clique - 1 do
    for v = u + 1 to clique - 1 do
      edges := (u, v) :: !edges
    done
  done;
  if tail > 0 then begin
    edges := (clique - 1, clique) :: !edges;
    for i = clique to n - 2 do
      edges := (i, i + 1) :: !edges
    done
  end;
  Graph.create ~n !edges
