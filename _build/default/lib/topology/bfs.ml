(* BFS distances, diameter and routing tables. See bfs.mli. *)

let distances g src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.push src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.push v queue
        end)
  done;
  dist

let distance g u v = (distances g u).(v)

let eccentricity g v =
  let dist = distances g v in
  Array.fold_left
    (fun acc d ->
      if d < 0 then invalid_arg "Bfs.eccentricity: disconnected graph"
      else max acc d)
    0 dist

let diameter g =
  let n = Graph.n g in
  let best = ref 0 in
  for v = 0 to n - 1 do
    best := max !best (eccentricity g v)
  done;
  !best

let farthest_from g v =
  let dist = distances g v in
  let best = ref v and bestd = ref 0 in
  Array.iteri
    (fun u d ->
      if d > !bestd then begin
        bestd := d;
        best := u
      end)
    dist;
  (!best, !bestd)

let diameter_estimate g ~seed ~rounds =
  let n = Graph.n g in
  let state = ref (Int64.logxor seed 0x9e3779b97f4a7c15L) in
  let next_start () =
    (* splitmix64 step; local to avoid a dependency on Simnet.Rng. *)
    state := Int64.add !state 0x9e3779b97f4a7c15L;
    let z = !state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    Int64.to_int (Int64.logand z 0x3fffffffffffffffL) mod n
  in
  let best = ref 0 in
  for _ = 1 to max 1 rounds do
    let start = next_start () in
    let u, _ = farthest_from g start in
    let _, d = farthest_from g u in
    best := max !best d
  done;
  !best

let parents g src =
  let n = Graph.n g in
  let parent = Array.init n (fun v -> v) in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(src) <- true;
  Queue.push src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_neighbors g u (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          parent.(v) <- u;
          Queue.push v queue
        end)
  done;
  parent

let shortest_path g u v =
  let parent = parents g v in
  (* Walk from u toward v following parents of the BFS rooted at v. *)
  if u <> v && parent.(u) = u then raise Not_found;
  let rec walk acc x = if x = v then List.rev (v :: acc) else walk (x :: acc) parent.(x) in
  walk [] u

let next_hop_table g =
  let n = Graph.n g in
  let table = Array.make_matrix n n (-1) in
  for dst = 0 to n - 1 do
    let parent = parents g dst in
    for v = 0 to n - 1 do
      if v = dst then table.(v).(dst) <- v
      else if parent.(v) = v then
        invalid_arg "Bfs.next_hop_table: disconnected graph"
      else table.(v).(dst) <- parent.(v)
    done
  done;
  table
