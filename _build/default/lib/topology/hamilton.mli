(** Hamilton-path constructions for Lemma 4.6.

    Theorem 4.5 needs a Hamilton path of [G] to use as the arrow
    protocol's spanning tree: with the list as spanning tree the
    nearest-neighbour TSP costs at most [3n] (Lemma 4.3), giving
    [C_Q(G) = O(n)]. This module constructs explicit Hamilton paths for
    the three families of Lemma 4.6 (complete graph, d-dimensional
    mesh, hypercube) and verifies candidate paths on arbitrary graphs. *)

val complete : int -> int array
(** Hamilton path of K_n: the identity order [0, 1, …, n-1]. *)

val mesh : dims:int list -> int array
(** Boustrophedon ("snake") Hamilton path of the d-dimensional mesh,
    by induction on the dimension exactly as in Lemma 4.6's proof. *)

val hypercube : int -> int array
(** Hamilton path of the d-dimensional hypercube: the binary reflected
    Gray code. *)

val is_hamilton_path : Graph.t -> int array -> bool
(** [is_hamilton_path g order] checks that [order] visits every vertex
    exactly once and that consecutive vertices are adjacent in [g]. *)

val find : Graph.t -> int array option
(** Exhaustive Hamilton-path search with pruning; exponential, intended
    for small test graphs only ([n <= 20] or so). Returns [None] when no
    Hamilton path exists. *)

val path_tree : int array -> Tree.t
(** [path_tree order] is the Hamilton path viewed as a spanning tree
    (a rooted list, rooted at [order.(0)]) — the tree handed to the
    arrow protocol in Theorem 4.5. *)
