(* Benchmark harness: regenerates every paper claim's table (E1-E13)
   and times the underlying kernels with Bechamel.

   Usage:
     dune exec bench/main.exe                 -- all tables + micro benches
     dune exec bench/main.exe -- --quick      -- smaller sweeps
     dune exec bench/main.exe -- --only E9    -- a single experiment
     dune exec bench/main.exe -- --no-micro   -- skip the Bechamel pass
     dune exec bench/main.exe -- --csv DIR    -- also write DIR/<id>.csv
     dune exec bench/main.exe -- --jobs N     -- regenerate tables on N domains
                                                 (experiments are pure, so this
                                                 is safe; output order is kept) *)

module Experiments = Countq.Experiments
module Table = Countq.Table

let parse_args () =
  let quick = ref false in
  let micro = ref true in
  let only = ref None in
  let csv_dir = ref None in
  let jobs = ref 1 in
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        go rest
    | "--no-micro" :: rest ->
        micro := false;
        go rest
    | "--only" :: id :: rest ->
        only := Some id;
        go rest
    | "--csv" :: dir :: rest ->
        csv_dir := Some dir;
        go rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j >= 1 -> jobs := j
        | _ ->
            prerr_endline "--jobs expects a positive integer";
            exit 2);
        go rest
    | arg :: _ ->
        Printf.eprintf "unknown argument %S\n" arg;
        exit 2
  in
  go (List.tl (Array.to_list Sys.argv));
  (!quick, !micro, !only, !csv_dir, !jobs)

let selected only =
  match only with
  | None -> Experiments.all
  | Some id -> (
      match Experiments.find id with
      | Some s -> [ s ]
      | None ->
          Printf.eprintf "unknown experiment %S\n" id;
          exit 2)

let run_tables ~quick ~csv_dir ~jobs specs =
  (* Experiments are pure functions of their seeds: regenerate them on
     [jobs] domains, then print in id order. *)
  let tables =
    Countq_util.Parallel.map ~jobs
      (fun (s : Experiments.spec) ->
        let t0 = Unix.gettimeofday () in
        let table = s.run ~quick () in
        (s.id, table, Unix.gettimeofday () -. t0))
      specs
  in
  List.iter
    (fun (id, table, dt) ->
      Table.print table;
      Printf.printf "[%s regenerated in %.2fs]\n\n%!" id dt;
      match csv_dir with
      | None -> ()
      | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let path = Filename.concat dir (String.lowercase_ascii id ^ ".csv") in
          let oc = open_out path in
          output_string oc (Table.to_csv table);
          close_out oc)
    tables

(* ------------------------------------------------------------------ *)
(* Bechamel micro benchmarks: one Test.make per experiment (its quick
   kernel), plus the hot inner kernels each experiment leans on.       *)

open Bechamel
open Toolkit

let experiment_tests specs =
  List.map
    (fun (s : Experiments.spec) ->
      Test.make ~name:s.id (Staged.stage (fun () -> ignore (s.run ~quick:true ()))))
    specs

let kernel_tests () =
  let module Gen = Countq_topology.Gen in
  let module Tree = Countq_topology.Tree in
  let module Spanning = Countq_topology.Spanning in
  let module Rng = Countq_util.Rng in
  let mesh = Gen.square_mesh 16 in
  let mesh_tree = Spanning.best_for_arrow mesh in
  let all_256 = List.init 256 (fun i -> i) in
  let rng = Rng.create 99L in
  let half = Rng.sample rng ~k:128 ~n:256 in
  [
    Test.make ~name:"kernel:graph-mesh-16x16"
      (Staged.stage (fun () -> ignore (Gen.square_mesh 16)));
    Test.make ~name:"kernel:spanning-best-for-arrow"
      (Staged.stage (fun () -> ignore (Spanning.best_for_arrow mesh)));
    Test.make ~name:"kernel:arrow-one-shot-256"
      (Staged.stage (fun () ->
           ignore
             (Countq_arrow.Protocol.run_one_shot ~tree:mesh_tree
                ~requests:all_256 ())));
    Test.make ~name:"kernel:nn-tsp-256"
      (Staged.stage (fun () ->
           ignore
             (Countq_tsp.Nn.on_tree mesh_tree ~start:(Tree.root mesh_tree)
                ~requests:half)));
    Test.make ~name:"kernel:central-counting-mesh"
      (Staged.stage (fun () ->
           ignore (Countq_counting.Central.run ~graph:mesh ~requests:half ())));
    Test.make ~name:"kernel:counting-network-mesh"
      (Staged.stage (fun () ->
           ignore (Countq_counting.Network.run ~graph:mesh ~requests:half ())));
    Test.make ~name:"kernel:bitonic-push-1k"
      (Staged.stage (fun () ->
           let net = Countq_counting.Bitonic.create ~width:32 in
           let st = Countq_counting.Bitonic.State.create net in
           for t = 0 to 999 do
             ignore (Countq_counting.Bitonic.State.push st ~wire:(t land 31))
           done));
    Test.make ~name:"kernel:lower-bound-sum-4096"
      (Staged.stage (fun () -> ignore (Countq_bounds.Lower.contention_lb 4096)));
  ]

let run_micro specs =
  let tests =
    Test.make_grouped ~name:"countq" ~fmt:"%s/%s"
      (experiment_tests specs @ kernel_tests ())
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  print_endline "== Bechamel micro benchmarks (monotonic clock) ==";
  let clock = Hashtbl.find merged (Measure.label Instance.monotonic_clock) in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some (est :: _) -> (name, est) :: acc
        | _ -> (name, Float.nan) :: acc)
      clock []
  in
  List.iter
    (fun (name, ns) ->
      if ns >= 1e6 then Printf.printf "%-40s %10.3f ms/run\n" name (ns /. 1e6)
      else Printf.printf "%-40s %10.1f ns/run\n" name ns)
    (List.sort compare rows)

let () =
  let quick, micro, only, csv_dir, jobs = parse_args () in
  let specs = selected only in
  Printf.printf
    "countq benchmark harness: reproducing %d paper claims (%s mode%s)\n\n%!"
    (List.length specs)
    (if quick then "quick" else "full")
    (if jobs > 1 then Printf.sprintf ", %d domains" jobs else "");
  run_tables ~quick ~csv_dir ~jobs specs;
  if micro then run_micro specs
