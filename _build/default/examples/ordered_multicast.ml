(* Ordered multicast: the paper's Section 1 motivating application.

   Every sender multicasts one message; all 144 processors must deliver
   all messages in one agreed order. We coordinate the order two ways
   -- with a distributed counter (attach a rank) and with distributed
   queuing (attach the predecessor's identity, the Herlihy et al.
   scheme) -- then flood the messages and measure delivery latency.

   Run with:  dune exec examples/ordered_multicast.exe *)

module Gen = Countq_topology.Gen
module Ordered = Countq_multicast.Ordered

let describe (r : Ordered.result) =
  Format.printf "%a@." Ordered.pp_scheme r.scheme;
  Format.printf "  coordination: total %d rounds, makespan %d@."
    r.coordination_total r.coordination_makespan;
  Format.printf "  delivery:     mean %.1f rounds, max %d@."
    r.mean_delivery_latency r.max_delivery_latency;
  Format.printf "  network load: %d messages@.@." r.network_messages

let () =
  let graph = Gen.square_mesh 12 in
  let senders = List.init 144 (fun i -> i) in
  Format.printf
    "144 senders on a 12x12 mesh; all processors deliver in one order@.@.";
  List.iter
    (fun scheme -> describe (Ordered.run ~graph ~senders scheme))
    [
      Ordered.Via_queuing `Arrow;
      Ordered.Via_counting `Central;
      Ordered.Via_counting `Combining;
      Ordered.Via_counting `Network;
    ];
  Format.printf
    "The queuing-based scheme needs only local predecessor discovery,@.";
  Format.printf
    "so its coordination cost stays linear while every counting scheme@.";
  Format.printf "pays the contention/lower-bound cost of global ranks.@."
