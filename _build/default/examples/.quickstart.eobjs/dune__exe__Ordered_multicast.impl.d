examples/ordered_multicast.ml: Countq_multicast Countq_topology Format List
