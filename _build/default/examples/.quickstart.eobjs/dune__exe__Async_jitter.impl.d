examples/async_jitter.ml: Countq_arrow Countq_counting Countq_simnet Countq_topology Countq_util Format List Result
