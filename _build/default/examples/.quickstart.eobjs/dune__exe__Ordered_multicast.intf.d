examples/ordered_multicast.mli:
