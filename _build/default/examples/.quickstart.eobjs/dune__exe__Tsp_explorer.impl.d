examples/tsp_explorer.ml: Countq_topology Countq_tsp Countq_util Format List Printf
