examples/tsp_explorer.mli:
