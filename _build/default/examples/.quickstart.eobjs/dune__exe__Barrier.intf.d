examples/barrier.mli:
