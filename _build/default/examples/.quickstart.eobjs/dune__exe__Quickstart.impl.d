examples/quickstart.ml: Countq Countq_arrow Countq_topology Format List
