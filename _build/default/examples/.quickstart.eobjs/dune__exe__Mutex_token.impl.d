examples/mutex_token.ml: Countq_arrow Countq_topology Countq_util Format Hashtbl List
