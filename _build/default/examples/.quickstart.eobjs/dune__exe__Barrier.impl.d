examples/barrier.ml: Countq Countq_topology Format List
