examples/mutex_token.mli:
