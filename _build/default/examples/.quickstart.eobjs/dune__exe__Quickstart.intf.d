examples/quickstart.mli:
