examples/async_jitter.mli:
