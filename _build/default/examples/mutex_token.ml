(* Token-based distributed mutual exclusion via the arrow protocol --
   the protocol's original habitat (Raymond, ACM TOCS 1989).

   Each acquire() is a queuing operation: the requester learns which
   operation holds the lock before it, so the critical-section token
   can be handed directly from each holder to its successor. We issue
   acquires over time (the long-lived mode), reconstruct the handoff
   chain, and compute when each node enters its critical section.

   Run with:  dune exec examples/mutex_token.exe *)

module Gen = Countq_topology.Gen
module Spanning = Countq_topology.Spanning
module Tree = Countq_topology.Tree
module Arrow = Countq_arrow
module Rng = Countq_util.Rng

let cs_duration = 3 (* rounds a node holds the lock *)

let () =
  let graph = Gen.square_mesh 8 in
  let tree = Spanning.best_for_arrow graph in
  let rng = Rng.create 2024L in
  (* 20 acquire() calls over 40 rounds from random nodes. *)
  let arrivals =
    List.init 20 (fun i -> (Rng.below rng 64, (i * 2) + Rng.below rng 2))
  in
  let run = Arrow.Protocol.run_long_lived ~tree ~arrivals () in
  let order =
    match run.order with
    | Ok ops -> ops
    | Error e ->
        Format.printf "BUG: %a@." Arrow.Order.pp_error e;
        exit 1
  in
  Format.printf "%d acquire() ops; queue discovered in %d rounds, %d messages@.@."
    (List.length order) run.rounds run.messages;
  (* The token enters the critical section chain: each op may enter
     once (a) its predecessor left, and (b) its queue position was
     discovered (its outcome round, relative to issue). *)
  let discovery =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun (o : Arrow.Types.outcome) -> Hashtbl.replace tbl o.op o.round)
      run.outcomes;
    fun op -> Hashtbl.find tbl op
  in
  Format.printf " pos  node  op    enters  leaves@.";
  let previous_leaves = ref 0 in
  List.iteri
    (fun i (op : Arrow.Types.op) ->
      let enters = max !previous_leaves (discovery op) in
      let leaves = enters + cs_duration in
      previous_leaves := leaves;
      Format.printf " %3d  %4d  %d.%d  %6d  %6d@." (i + 1) op.origin op.origin
        op.seq enters leaves)
    order;
  Format.printf "@.lock utilisation: %d CS rounds over %d total rounds@."
    (cs_duration * List.length order)
    !previous_leaves
