(* TSP explorer: watch the Section 4 upper-bound machinery in action.

   For each topology the paper treats, print the nearest-neighbour tour
   over a random request set, the theoretical ceiling that applies, and
   (on the list) the Lemma 4.3 run-decomposition certificate.

   Run with:  dune exec examples/tsp_explorer.exe *)

module Gen = Countq_topology.Gen
module Tree = Countq_topology.Tree
module Tsp = Countq_tsp
module Rng = Countq_util.Rng

let show_tour name tree ~start ~requests ~bound_name ~bound =
  let tour = Tsp.Nn.on_tree tree ~start ~requests in
  Format.printf "%-24s k=%-4d cost=%-6d %s=%-6d  %s@." name
    (List.length requests) tour.cost bound_name bound
    (if tour.cost <= bound then "within bound" else "BOUND VIOLATED");
  tour

let () =
  let rng = Rng.create 7L in

  (* The list (Lemma 4.3). *)
  let n = 400 in
  let list_tree = Tree.of_graph (Gen.path n) ~root:0 in
  let requests = Rng.sample rng ~k:200 ~n in
  let tour =
    show_tour "list-400 (random half)" list_tree ~start:(n / 2) ~requests
      ~bound_name:"3n" ~bound:(Tsp.Tbounds.list_bound n)
  in
  let cert = Tsp.Runs.certify ~n ~start:(n / 2) tour.order in
  Format.printf "  certificate: %a@.@." Tsp.Runs.pp_certificate cert;

  (* The adversarial zigzag that stresses the same bound. *)
  let start, zig = Tsp.Nn.worst_case_on_list ~n in
  let ztour =
    show_tour "list-400 (zigzag)" list_tree ~start ~requests:zig
      ~bound_name:"3n" ~bound:(Tsp.Tbounds.list_bound n)
  in
  let zcert = Tsp.Runs.certify ~n ~start ztour.order in
  Format.printf "  certificate: %a@.@." Tsp.Runs.pp_certificate zcert;

  (* Perfect binary tree (Theorem 4.7). *)
  let g = Gen.perfect_tree ~arity:2 ~height:9 in
  let nb = Countq_topology.Graph.n g in
  let btree = Tree.of_graph g ~root:0 in
  let requests = Rng.sample rng ~k:(nb / 2) ~n:nb in
  ignore
    (show_tour
       (Printf.sprintf "perfect-binary n=%d" nb)
       btree ~start:0 ~requests ~bound_name:"2d(d+1)+8n"
       ~bound:(Tsp.Tbounds.perfect_binary_bound ~n:nb));
  Format.printf "@.";

  (* Nearest-neighbour vs the exact optimum (Rosenkrantz, Cor. 4.2). *)
  Format.printf "NN vs Held-Karp optimum on random constant-degree trees:@.";
  for trial = 1 to 5 do
    let n = 40 + (10 * trial) in
    let g = Gen.random_binary_tree rng n in
    let tree = Tree.of_graph g ~root:0 in
    let requests = Rng.sample rng ~k:12 ~n in
    let nn = (Tsp.Nn.on_tree tree ~start:0 ~requests).cost in
    let opt = Tsp.Exact.min_path_on_tree tree ~start:0 ~requests in
    Format.printf "  n=%-4d nn=%-4d opt=%-4d ratio=%.3f (guarantee %.2f)@." n
      nn opt
      (float_of_int nn /. float_of_int (max 1 opt))
      (Tsp.Tbounds.rosenkrantz_ratio 12)
  done
