(* Asynchrony and stronger coordination: two extensions in one demo.

   Part 1 runs the same one-shot arrow and central-counting instances
   under increasingly hostile link-delay models (Section 2.1's general
   asynchronous model) and shows that correctness never budges while
   the delay gap between queuing and counting persists.

   Part 2 runs distributed fetch&add (every processor atomically adds
   its own increment and learns the sum before it) — the direction of
   the paper's closing open question — and shows it costs exactly what
   counting costs in the same structures.

   Run with:  dune exec examples/async_jitter.exe *)

module Gen = Countq_topology.Gen
module Spanning = Countq_topology.Spanning
module Async = Countq_simnet.Async
module Arrow = Countq_arrow
module Central = Countq_counting.Central
module FA = Countq_counting.Fetch_add
module Rng = Countq_util.Rng

let () =
  let g = Gen.square_mesh 8 in
  let n = 64 in
  let requests = List.init n (fun i -> i) in
  let tree = Spanning.best_for_arrow g in

  Format.printf "== part 1: the separation survives asynchrony ==@.";
  Format.printf "%-14s %-14s %-14s@." "link delays" "arrow total"
    "counting total";
  List.iter
    (fun (name, delay) ->
      let q = Arrow.Protocol.run_one_shot_async ~delay ~tree ~requests () in
      let c = Central.run_async ~delay ~graph:g ~requests () in
      assert (Result.is_ok q.order);
      assert (Result.is_ok c.valid);
      Format.printf "%-14s %-14d %-14d@." name q.total_delay c.total_delay)
    [
      ("constant-1", Async.Constant 1);
      ("uniform-1-8", Async.Uniform { min = 1; max = 8; seed = 1L });
      ( "adversarial",
        Async.Per_message
          (fun ~src ~dst ~send_time -> 1 + ((src + dst + send_time) mod 11)) );
    ];

  Format.printf "@.== part 2: fetch&add costs what counting costs ==@.";
  let rng = Rng.create 99L in
  let fa_requests = List.map (fun v -> (v, 1 + Rng.below rng 100)) requests in
  let fa = FA.run_central ~graph:g ~requests:fa_requests () in
  let counting = Central.run ~graph:g ~requests () in
  assert (Result.is_ok fa.valid);
  let total =
    List.fold_left (fun acc (_, i) -> acc + i) 0 fa_requests
  in
  let last =
    List.fold_left
      (fun acc (o : FA.outcome) -> max acc (o.before + o.increment))
      0 fa.outcomes
  in
  Format.printf "fetch&add total delay %d vs counting %d (same: %b)@."
    fa.total_delay counting.total_delay
    (fa.total_delay = counting.total_delay);
  Format.printf "sum conservation: last prefix + increment = %d = Σ increments = %d@."
    last total
