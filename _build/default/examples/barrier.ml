(* Distributed barrier: a coordination task where counting is the
   right tool — and where its cost structure still matters.

   All processors must learn when every one of them has reached the
   barrier. The classic construction: each arrival increments a
   distributed counter; the processor that draws rank n knows it is
   last and floods a release wave. Barrier latency = (time for the
   last arrival to learn its rank) + (release broadcast).

   We build the barrier on each counting protocol and compare: the
   combining tree is the textbook choice, and the numbers show why —
   its makespan (which is what a barrier cares about, unlike the
   paper's total-delay metric) beats the serialising central counter.

   Run with:  dune exec examples/barrier.exe *)

module Gen = Countq_topology.Gen
module Graph = Countq_topology.Graph
module Bfs = Countq_topology.Bfs
module Spanning = Countq_topology.Spanning
module Run = Countq.Run

let () =
  let g = Gen.square_mesh 10 in
  let n = Graph.n g in
  let requests = List.init n (fun i -> i) in
  Format.printf
    "barrier on a 10x10 mesh: all %d processors arrive at time 0@.@." n;
  Format.printf "%-18s %-18s %-14s %-16s@." "counting protocol"
    "last rank known at" "release flood" "barrier latency";
  List.iter
    (fun protocol ->
      let s = Run.counting ~graph:g ~protocol ~requests () in
      if not s.valid then Format.printf "%s: INVALID@." s.protocol
      else begin
        (* The processor holding rank n can start the release wave the
           round it learns its rank; the wave then needs (at most) the
           graph's eccentricity from wherever it starts — we charge the
           diameter as a uniform upper bound. *)
        let arrive = s.max_delay * s.expansion in
        let release = Bfs.diameter g in
        Format.printf "%-18s %-18d %-14d %-16d@." s.protocol arrive release
          (arrive + release)
      end)
    [ `Combining; `Central; `Network; `Sweep ];
  Format.printf
    "@.the barrier metric is the MAKESPAN, not the paper's total delay.@.";
  Format.printf
    "the token sweep's linear makespan looks competitive at n=100, but the@.";
  Format.printf
    "combining tree's O(sqrt n) upsweep wins as the mesh grows; the central@.";
  Format.printf
    "counter's serialisation (and the network's pipeline) never catch up.@."
