(* Token-circulation queuing baseline. See token_ring.mli. *)

module Engine = Countq_simnet.Engine
module Tree = Countq_topology.Tree
module Types = Countq_arrow.Types
module Order = Countq_arrow.Order
module Sweep = Countq_counting.Sweep

type checker_state = unit
type checker_msg = int

let one_shot_protocol ~tree ~requests () =
  let n = Tree.n tree in
  let requesting = Array.make n false in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Token_ring.run: request out of range";
      if requesting.(v) then invalid_arg "Token_ring.run: duplicate request node";
      requesting.(v) <- true)
    requests;
  let walk = Sweep.euler_walk tree in
  (* Predecessor of each requester in first-visit order (computed in
     the free initialisation, like the sweep counter's ranks). *)
  let pred_of = Array.make n Types.Init in
  let seen = Array.make n false in
  let last = ref Types.Init in
  Array.iter
    (fun v ->
      if not seen.(v) then begin
        seen.(v) <- true;
        if requesting.(v) then begin
          pred_of.(v) <- !last;
          last := Types.Op { origin = v; seq = 0 }
        end
      end)
    walk;
  let first_visit = Array.make n (-1) in
  Array.iteri (fun i v -> if first_visit.(v) < 0 then first_visit.(v) <- i) walk;
  let steps = Array.length walk in
  let actions_at node i =
    let complete =
      if requesting.(node) && first_visit.(node) = i then
        [ Engine.Complete ({ Types.origin = node; seq = 0 }, pred_of.(node)) ]
      else []
    in
    let forward =
      if i + 1 < steps then [ Engine.Send (walk.(i + 1), i + 1) ] else []
    in
    complete @ forward
  in
  {
    Engine.name = "token-ring-queue";
    initial_state = (fun _ -> ());
    on_start =
      (fun ~node s ->
        if node = Tree.root tree then (s, actions_at node 0) else (s, []));
    on_receive = (fun ~round:_ ~node ~src:_ i s -> (s, actions_at node i));
    on_tick = Engine.no_tick;
  }

let run ?config ~tree ~requests () =
  let protocol = one_shot_protocol ~tree ~requests () in
  let config = Option.value config ~default:Engine.default_config in
  let graph = Tree.to_graph tree in
  let res = Engine.run ~graph ~config ~protocol () in
  let outcomes =
    List.map
      (fun (c : _ Engine.completion) ->
        let op, pred = c.value in
        { Types.op; pred; found_at = c.node; round = c.round })
      res.completions
  in
  {
    Countq_arrow.Protocol.outcomes;
    order = Order.chain outcomes;
    rounds = res.rounds;
    messages = res.messages;
    total_delay = Order.total_delay outcomes;
    max_delay = Order.max_delay outcomes;
    expansion = res.expansion;
  }
