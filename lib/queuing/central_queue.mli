(** Centralised queuing baseline: a root node remembers the last queued
    operation and hands each arriving request its predecessor.

    Used for the Section 5 non-separation: on the star graph both this
    protocol and any counting protocol pay Θ(n²) total delay, because
    every message serialises through the centre — showing the paper's
    separation is a property of the topology, not of queuing being
    universally cheap. (On most topologies the arrow protocol is far
    better than this baseline; see the E11 experiment.) *)

val run :
  ?config:Countq_simnet.Engine.config ->
  ?root:int ->
  ?route:Countq_simnet.Route.t ->
  graph:Countq_topology.Graph.t ->
  requests:int list ->
  unit ->
  Countq_arrow.Protocol.run_result
(** [run ~graph ~requests ()] executes the one-shot scenario; requests
    are served in root-arrival order. Results reuse the arrow library's
    outcome/validation types. [root] defaults to 0; [route] to
    all-pairs shortest-path routing; config to the base model. *)

type checker_state
type checker_msg
(** Abstract internals, exposed for the exhaustive schedule explorer. *)

val one_shot_protocol :
  ?root:int ->
  ?route:Countq_simnet.Route.t ->
  graph:Countq_topology.Graph.t ->
  requests:int list ->
  unit ->
  (checker_state, checker_msg, Countq_arrow.Types.op * Countq_arrow.Types.pred)
  Countq_simnet.Engine.protocol
(** The raw protocol value ({!run} without the engine invocation), for
    the model checker and engine-equivalence harnesses; completions are
    [(op, predecessor)] pairs — validate with
    {!Countq_arrow.Order.chain}.
    @raise Invalid_argument on bad requests or root. *)

val run_observed :
  ?config:Countq_simnet.Engine.config ->
  ?root:int ->
  ?route:Countq_simnet.Route.t ->
  ?plan:Countq_simnet.Faults.plan ->
  metrics:Countq_simnet.Metrics.t ->
  graph:Countq_topology.Graph.t ->
  requests:int list ->
  unit ->
  Countq_arrow.Protocol.run_result
  * Countq_simnet.Span.t list
  * Countq_simnet.Faults.stats option
(** {!run} under full observability: counters into [metrics] (create
    one per run), a causal span per operation keyed by origin node.
    [plan] optionally injects faults (no retransmit layer, no
    monitors); the third component is the injection tally when a plan
    was given. With no plan the result equals {!run}'s. *)

type fault_report = {
  result : Countq_arrow.Protocol.run_result;
      (** outcomes of whatever completed. *)
  injected : Countq_simnet.Faults.stats;  (** what the plan actually did. *)
  monitors : Countq_simnet.Monitor.report;
      (** runtime verdicts: chain consistency (safety), full completion
          and progress (liveness). *)
  retry : Countq_simnet.Reliable.stats option;
      (** retransmit-layer tally; [None] when [retry] was off. *)
}

val run_faulty :
  ?config:Countq_simnet.Engine.config ->
  ?root:int ->
  ?route:Countq_simnet.Route.t ->
  ?retry:bool ->
  ?ack_timeout:int ->
  ?max_retries:int ->
  ?progress_budget:int ->
  plan:Countq_simnet.Faults.plan ->
  graph:Countq_topology.Graph.t ->
  requests:int list ->
  unit ->
  fault_report
(** {!run} on an unreliable substrate with runtime invariant monitors
    attached; same knobs and semantics as
    {!Countq_counting.Central.run_faulty}. With [plan = Faults.none]
    and [retry = false] the result equals {!run}'s. *)
