(* Centralised queue baseline. See central_queue.mli. *)

module Engine = Countq_simnet.Engine
module Faults = Countq_simnet.Faults
module Monitor = Countq_simnet.Monitor
module Reliable = Countq_simnet.Reliable
module Route = Countq_simnet.Route
module Graph = Countq_topology.Graph
module Types = Countq_arrow.Types
module Order = Countq_arrow.Order

type msg =
  | Request of { origin : int }
  | Reply of { dest : int; pred : Types.pred }

type state = { last : Types.pred } (* meaningful at the root only *)

let prepare ~root ~route ~graph ~requests =
  let n = Graph.n graph in
  if root < 0 || root >= n then invalid_arg "Central_queue.run: root out of range";
  let requesting = Array.make n false in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Central_queue.run: request out of range";
      if requesting.(v) then invalid_arg "Central_queue.run: duplicate request";
      requesting.(v) <- true)
    requests;
  let route = match route with Some r -> r | None -> Route.auto graph in
  let enqueue node s origin =
    let op = { Types.origin; seq = 0 } in
    let pred = s.last in
    let s = { last = Types.Op op } in
    if origin = node then (s, [ Engine.Complete (op, pred) ])
    else
      (s, [ Engine.Send (Route.next_hop route node origin, Reply { dest = origin; pred }) ])
  in
  {
    Engine.name = "central-queue";
    initial_state = (fun _ -> { last = Types.Init });
    on_start =
      (fun ~node s ->
        if not requesting.(node) then (s, [])
        else if node = root then enqueue node s node
        else
          (s, [ Engine.Send (Route.next_hop route node root, Request { origin = node }) ]));
    on_receive =
      (fun ~round:_ ~node ~src:_ msg s ->
        match msg with
        | Request { origin } ->
            if node = root then enqueue node s origin
            else
              (s, [ Engine.Send (Route.next_hop route node root, Request { origin }) ])
        | Reply { dest; pred } ->
            if node = dest then
              (s, [ Engine.Complete ({ Types.origin = dest; seq = 0 }, pred) ])
            else
              (s, [ Engine.Send (Route.next_hop route node dest, Reply { dest; pred }) ]));
    on_tick = Engine.no_tick;
  }

type checker_state = state
type checker_msg = msg

let one_shot_protocol ?(root = 0) ?route ~graph ~requests () =
  prepare ~root ~route ~graph ~requests

let finish (res : (Types.op * Types.pred) Engine.result) =
  let outcomes =
    List.map
      (fun (c : _ Engine.completion) ->
        let op, pred = c.value in
        { Types.op; pred; found_at = c.node; round = c.round })
      res.completions
  in
  {
    Countq_arrow.Protocol.outcomes;
    order = Order.chain outcomes;
    rounds = res.rounds;
    messages = res.messages;
    total_delay = Order.total_delay outcomes;
    max_delay = Order.max_delay outcomes;
    expansion = res.expansion;
  }

let run ?config ?(root = 0) ?route ~graph ~requests () =
  let protocol = prepare ~root ~route ~graph ~requests in
  let config = Option.value config ~default:Engine.default_config in
  finish (Engine.run ~graph ~config ~protocol ())

let run_observed ?config ?(root = 0) ?route ?plan ~metrics ~graph ~requests ()
    =
  let protocol = prepare ~root ~route ~graph ~requests in
  (* One-shot: origin node ids the op; a Reply belongs to the op of its
     destination. *)
  let protocol, spans =
    Countq_simnet.Span.instrument
      ~injects:(List.map (fun v -> (v, 0)) requests)
      ~op_of_msg:(function
        | Request { origin } -> Some origin
        | Reply { dest; _ } -> Some dest)
      ~op_of_completion:(fun ((op : Types.op), _) -> Some op.origin)
      protocol
  in
  let config = Option.value config ~default:Engine.default_config in
  let faults = Option.map Faults.start plan in
  let result = finish (Engine.run ?faults ~metrics ~graph ~config ~protocol ()) in
  (result, spans (), Option.map Faults.stats faults)

type fault_report = {
  result : Countq_arrow.Protocol.run_result;
  injected : Faults.stats;
  monitors : Monitor.report;
  retry : Reliable.stats option;
}

(* Same invariants as the arrow's one-shot monitors: the (op, pred)
   completions must form one valid chain, everyone must finish, and
   silence past the budget is a stall. *)
let queue_monitors ~budget ~expected =
  [
    Monitor.chain_consistent
      ~op:(fun ((op : Types.op), _) -> (op.origin, op.seq))
      ~pred:(fun (_, p) ->
        match p with Types.Init -> None | Types.Op q -> Some (q.origin, q.seq));
    Monitor.completes ~expected;
    Monitor.progress ~budget ();
  ]

let run_faulty ?config ?(root = 0) ?route ?(retry = false) ?(ack_timeout = 8)
    ?(max_retries = 5) ?progress_budget ~plan ~graph ~requests () =
  let protocol = prepare ~root ~route ~graph ~requests in
  let config = Option.value config ~default:Engine.default_config in
  let budget =
    match progress_budget with
    | Some b -> b
    | None -> max 512 (4 * ack_timeout * (1 lsl max_retries))
  in
  let monitors = queue_monitors ~budget ~expected:(List.length requests) in
  let observer = Monitor.observe monitors in
  let fr = Faults.start plan in
  let res, retry_stats =
    if retry then begin
      let protocol, h = Reliable.wrap ~ack_timeout ~max_retries protocol in
      let res =
        Engine.run ~faults:fr ~observer ~keep_alive:(Reliable.keep_alive h)
          ~graph ~config ~protocol ()
      in
      (res, Some (Reliable.stats h))
    end
    else (Engine.run ~faults:fr ~observer ~graph ~config ~protocol (), None)
  in
  {
    result = finish res;
    injected = Faults.stats fr;
    monitors = Monitor.finalise monitors;
    retry = retry_stats;
  }
