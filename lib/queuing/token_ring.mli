(** Token-circulation queuing: a perpetual token walks an Euler tour of
    a spanning tree; every pending requester the token visits is
    appended to the queue (its predecessor is whoever held the token's
    "last appended" slot).

    This is the pre-Raymond folk solution to token-based mutual
    exclusion, and the reason Raymond's tree algorithm (the arrow
    protocol's ancestor) was worth inventing: circulating costs every
    op Θ(n) regardless of load or locality. On the list with all nodes
    requesting it matches the arrow's O(n) total — but with a single
    sparse requester it still pays a full sweep where the arrow pays
    one path. Experiment E24 tabulates the contrast. *)

type checker_state
type checker_msg
(** Abstract internals, exposed for the exhaustive schedule explorer. *)

val one_shot_protocol :
  tree:Countq_topology.Tree.t ->
  requests:int list ->
  unit ->
  (checker_state, checker_msg, Countq_arrow.Types.op * Countq_arrow.Types.pred)
  Countq_simnet.Engine.protocol
(** The raw protocol value ({!run} without the engine invocation), for
    the model checker and engine-equivalence harnesses; completions are
    [(op, predecessor)] pairs — validate with
    {!Countq_arrow.Order.chain}.
    @raise Invalid_argument on out-of-range or duplicate requests. *)

val run :
  ?config:Countq_simnet.Engine.config ->
  tree:Countq_topology.Tree.t ->
  requests:int list ->
  unit ->
  Countq_arrow.Protocol.run_result
(** [run ~tree ~requests ()] executes the one-shot scenario: the token
    starts at the tree root (the initial tail) and walks the Euler tour
    once, appending every requester at its first visit. Results reuse
    the arrow library's outcome/validation types; base-model config by
    default.
    @raise Invalid_argument on out-of-range or duplicate requests. *)
