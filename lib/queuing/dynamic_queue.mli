(** Distributed queuing that survives a moving graph.

    Two protocols, spanning the robustness frontier that Sharma–Busch
    ("Distributed Queuing in Dynamic Networks") and Ghodselahi–Kuhn
    (dynamic arrow analysis) map out:

    {b 1. The dynamic queue} — a Sharma–Busch-style protocol that
    assumes nothing about the topology except eventual usable links.
    Every node maintains a monotone {e knowledge} value: the longest
    known prefix of the global operation chain plus the set of pending
    (announced but unchained) operations. Knowledge floods between
    current neighbours as {e deltas} — the chain suffix above what the
    neighbour is believed to hold plus the unseen pending ops, never
    the full monotone state, so a growth step costs traffic
    proportional to what changed rather than O(chain) per link. Only
    the origin of the chain's last entry (or the designated leader
    while the chain is empty) may extend it, and it extends at most
    once per chain value, so all chains anyone ever holds are prefixes
    of one global chain — which is also what makes the suffix splice
    exact, and safety unconditional under any disconnection pattern. Liveness needs only recurring
    connectivity (e.g. T-interval connectivity): each time the current
    holder hears of a pending operation the chain grows, so total cost
    degrades gracefully with the connectivity interval instead of
    collapsing the way a fixed spanning structure does.

    {b 2. The churn-tolerant arrow} — the unmodified arrow protocol on
    its spanning tree, run over a routing layer that {e repairs} the
    tree's edges: every logical tree-edge message travels as a
    sequenced envelope that is forwarded along the current up-graph
    (shortest usable path, recomputed every round), retransmitted on
    ack timeout, and deduplicated/reordered at the logical receiver so
    the arrow still sees reliable FIFO tree links. Where plain arrow
    stalls the moment one tree edge flaps, the repaired arrow keeps
    the total order and completes as long as the adversary leaves
    {e some} path between tree neighbours often enough.

    Both runners attach {!Countq_simnet.Monitor} verdicts (chain
    consistency, completion, progress with a partition-naming
    diagnosis) and report the schedule's drop tallies. *)

module Engine = Countq_simnet.Engine
module Dynamic = Countq_simnet.Dynamic
module Monitor = Countq_simnet.Monitor
module Graph = Countq_topology.Graph
module Types = Countq_arrow.Types

type report = {
  result : Countq_arrow.Protocol.run_result;
      (** outcomes of whatever completed, with the reconstructed total
          order (or its validation failure). *)
  monitors : Monitor.report;
      (** chain consistency (safety), completion and progress
          (liveness) verdicts. *)
  topo : Dynamic.stats;  (** what the schedule dropped. *)
}

(** {1 The dynamic queue} *)

type checker_state
type checker_msg
(** Abstract views of the flooding protocol's internals for the
    exhaustive schedule explorer. *)

val one_shot_protocol :
  ?leader:int ->
  graph:Graph.t ->
  requests:int list ->
  unit ->
  (checker_state, checker_msg, Types.op * Types.pred) Engine.protocol
(** The receive-driven core of the dynamic queue on a static graph:
    deltas are re-flooded the instant knowledge grows, with no timers,
    so the protocol is a pure message-driven flooding process — state
    is pure and structural (per-neighbour beliefs update by copy), and
    [Countq_simnet.Explore] (which ignores [on_tick]) can model-check
    the single-extender safety argument over every interleaving.
    Completion values are [(op, pred)] pairs; validate with
    [Order.chain]. *)

val run :
  ?config:Engine.config ->
  ?leader:int ->
  ?sched:Dynamic.schedule ->
  ?refresh:int ->
  ?progress_budget:int ->
  graph:Graph.t ->
  requests:int list ->
  unit ->
  report
(** The tick-driven dynamic variant under topology schedule [sched]
    (default: the identity schedule). Each round every node offers the
    delta it owes to each usable neighbour that has not seen its
    current knowledge version, and forgets its per-neighbour beliefs
    every [refresh] rounds (default 8) — a full re-send — so deltas
    lost to a mid-flight topology change are recovered;
    the run halts when all [requests] have completed, or when the
    completion-progress monitor declares a stall after
    [progress_budget] completion-free rounds (default 256). [config]
    defaults to receive/send capacity [max_degree graph] (reported as
    [expansion], like the arrow runners). *)

(** {1 The churn-tolerant arrow} *)

type route_stats = {
  forwarded : int;  (** physical hops taken by envelopes. *)
  rerouted : int;  (** hops that detoured off the direct link. *)
  retransmits : int;  (** timeout-driven re-sends. *)
  gave_up : int;  (** envelopes abandoned after [max_retries]. *)
}

type ('s, 'm) routed
(** Wrapper state: the inner ['s] plus routing and sequencing tables. *)

type 'm envelope
(** Wrapper message: a sequenced payload or an end-to-end ack. *)

type route_handle
(** Shared bookkeeping for one run of a routed protocol. *)

val wrap_route :
  ?ack_timeout:int ->
  ?max_retries:int ->
  sched:Dynamic.schedule ->
  graph:Graph.t ->
  ('s, 'm, 'r) Engine.protocol ->
  (('s, 'm) routed, 'm envelope, 'r) Engine.protocol * route_handle
(** [wrap_route ~sched ~graph p] (named ["<name>+route"]) runs [p]
    over the repairing envelope layer described above: logical sends
    become per-destination sequenced envelopes routed hop-by-hop along
    the current up-graph of [sched] (shortest usable path, recomputed
    each round; envelopes wait out total disconnection at whichever
    node holds them), acknowledged end-to-end, retransmitted with
    exponential backoff after [ack_timeout] rounds (default 4, up to
    [max_retries] retries, default 8), and released to [p] in FIFO
    order exactly once. Completion values pass through unchanged. The
    wrapped protocol ticks and its state carries mutable tables: wrap
    afresh per run and keep it away from the [Explore] checker. *)

val route_keep_alive : route_handle -> unit -> bool
(** True while any envelope awaits its end-to-end ack — pass to
    {!Engine.run} so retry timers keep firing across silent rounds. *)

val route_stats : route_handle -> route_stats

val run_arrow :
  ?config:Engine.config ->
  ?tail:int ->
  ?ack_timeout:int ->
  ?max_retries:int ->
  ?progress_budget:int ->
  ?sched:Dynamic.schedule ->
  graph:Graph.t ->
  tree:Countq_topology.Tree.t ->
  requests:int list ->
  unit ->
  report * route_stats
(** The arrow one-shot scenario on spanning [tree], with its tree
    links repaired over [graph] under [sched] (default identity).
    [config] defaults to capacity [max_degree graph]. The progress
    monitor's budget defaults to comfortably above the longest
    retransmit backoff, and its stall diagnosis names the partition
    around the last completion's origin. *)
