(* Queuing on a dynamic graph. See dynamic_queue.mli. *)

module Engine = Countq_simnet.Engine
module Dynamic = Countq_simnet.Dynamic
module Monitor = Countq_simnet.Monitor
module Graph = Countq_topology.Graph
module Tree = Countq_topology.Tree
module Types = Countq_arrow.Types
module Order = Countq_arrow.Order

type report = {
  result : Countq_arrow.Protocol.run_result;
  monitors : Monitor.report;
  topo : Dynamic.stats;
}

(* ------------------------------------------------------------------ *)
(* Knowledge: the monotone value the dynamic queue floods.             *)
(* ------------------------------------------------------------------ *)

(* [chain] is newest-first (O(1) extension); [pend] is sorted by
   operation identity and disjoint from the chain. Knowledge only ever
   grows: the chain extends, and the set of known operations
   (chain ∪ pend) accumulates — which is what makes re-flooding
   idempotent and the explorable variant's termination argument work. *)
type know = { chain : Types.op list; pend : Types.op list }

let empty_know = { chain = []; pend = [] }

let in_chain op chain = List.exists (fun o -> Types.compare_op o op = 0) chain

let merge_know a b =
  let chain =
    if List.length a.chain >= List.length b.chain then a.chain else b.chain
  in
  let pend =
    List.filter
      (fun o -> not (in_chain o chain))
      (List.sort_uniq Types.compare_op (a.pend @ b.pend))
  in
  { chain; pend }

(* Only the origin of the chain's last entry — or the leader while the
   chain is empty — may extend, and extension is deterministic (the
   least pending operation), so every chain value is extended at most
   once system-wide: all chains are prefixes of one global chain. *)
let holder know ~leader =
  match know.chain with [] -> leader | last :: _ -> last.Types.origin

let rec extend v know ~leader =
  if holder know ~leader <> v then know
  else
    match know.pend with
    | [] -> know
    | op :: rest -> extend v { chain = op :: know.chain; pend = rest } ~leader

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Deltas: what flooding actually puts on the wire.                    *)
(*                                                                     *)
(* Full-state flooding re-sends the entire chain on every growth step  *)
(* — O(n·k) traffic per change, the ROADMAP item 2 blocker. Because    *)
(* every chain in the system is a prefix of one global chain (the      *)
(* single-extender argument below), a sender only owes a neighbour the *)
(* chain entries above what that neighbour already has plus the        *)
(* pending ops it has not seen, and the receiver can splice the        *)
(* suffix directly onto its own chain.                                 *)
(* ------------------------------------------------------------------ *)

type delta = {
  d_base : int;  (** receiver-side chain length the suffix extends. *)
  d_suffix : Types.op list;  (** chain entries above [d_base], newest-first. *)
  d_pend : Types.op list;  (** pending ops the receiver has not seen. *)
}

(* The delta owed to a neighbour believed to hold [sent_chain] chain
   entries and to know the pending ops [sent_pend]; [None] when it
   already knows everything. [sent_chain <= length k.chain] is an
   invariant: beliefs only advance to lengths this node itself holds
   (after a send) or has just merged past (after a receive). *)
let delta_for k ~sent_chain ~sent_pend =
  let len = List.length k.chain in
  let suffix = if len > sent_chain then take (len - sent_chain) k.chain else [] in
  let pend =
    List.filter
      (fun o -> not (List.exists (fun p -> Types.compare_op p o = 0) sent_pend))
      k.pend
  in
  if suffix = [] && pend = [] then None
  else Some { d_base = sent_chain; d_suffix = suffix; d_pend = pend }

(* Merge a delta into local knowledge. When [d_base <= |chain|] the
   prefix property makes the splice exact: our chain is the sender's
   first [|chain|] entries, so suffix entries above it reconstruct the
   sender's chain verbatim. A gap ([d_base > |chain|], possible only
   when an earlier delta was lost to churn) degrades to learning the
   suffix ops as pending — safe, because extension happens only at the
   holder of the globally longest chain, whose own chain already
   contains every chained op, so its pend (kept disjoint from its
   chain by [merge_know]) can never re-chain one. The periodic refresh
   re-sends the full chain and closes the gap. *)
let apply_delta node k d ~leader =
  let len = List.length k.chain in
  let incoming =
    if d.d_base <= len then begin
      let extra = d.d_base + List.length d.d_suffix - len in
      if extra <= 0 then { chain = []; pend = d.d_pend }
      else { chain = take extra d.d_suffix @ k.chain; pend = d.d_pend }
    end
    else { chain = []; pend = d.d_suffix @ d.d_pend }
  in
  extend node (merge_know k incoming) ~leader

(* Predecessor of [op] in a newest-first chain that contains it. *)
let rec pred_in_chain op = function
  | [] -> assert false
  | x :: rest when Types.compare_op x op = 0 -> (
      match rest with [] -> Types.Init | p :: _ -> Types.Op p)
  | _ :: rest -> pred_in_chain op rest

(* The completion a knowledge step [old_k -> new_k] owes node [v]:
   its own operation just entered the chain. *)
let newly_chained mine old_k new_k =
  match mine with
  | None -> []
  | Some op ->
      if in_chain op new_k.chain && not (in_chain op old_k.chain) then
        [ Engine.Complete (op, pred_in_chain op new_k.chain) ]
      else []

let check_requests ~who ~n ~leader requests =
  if leader < 0 || leader >= n then
    invalid_arg (who ^ ": leader out of range");
  let requesting = Array.make n false in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg (who ^ ": request out of range");
      if requesting.(v) then invalid_arg (who ^ ": duplicate request");
      requesting.(v) <- true)
    requests;
  requesting

(* ------------------------------------------------------------------ *)
(* Receive-driven core: static graph, explorable.                      *)
(* ------------------------------------------------------------------ *)

(* Per neighbour: the knowledge this node believes that neighbour
   holds, advanced by both what it sends there and what arrives from
   there. Beliefs make flooding self-pruning — a neighbour that owes
   nothing gets nothing, which subsumes the don't-echo-to-[src]
   special case full-state flooding needed. Updates are functional
   (copy-on-write) so the state stays structural for [Explore]. *)
type peer = { p_chain : int; p_pend : Types.op list }

let fresh_peers graph v =
  Array.map (fun _ -> { p_chain = 0; p_pend = [] }) (Graph.neighbors graph v)

let note_peer peers slot d =
  let peers = Array.copy peers in
  let p = peers.(slot) in
  peers.(slot) <-
    {
      p_chain = max p.p_chain (d.d_base + List.length d.d_suffix);
      p_pend = List.sort_uniq Types.compare_op (d.d_pend @ p.p_pend);
    };
  peers

type checker_state = { ck : know; cmine : Types.op option; cpeers : peer array }
type checker_msg = delta

let one_shot_protocol ?(leader = 0) ~graph ~requests () =
  let n = Graph.n graph in
  let requesting =
    check_requests ~who:"Dynamic_queue.one_shot_protocol" ~n ~leader requests
  in
  (* Send every neighbour the delta it is owed, advancing beliefs. *)
  let flood node k peers =
    let nbrs = Graph.neighbors graph node in
    let peers = Array.copy peers in
    let sends = ref [] in
    for i = Array.length nbrs - 1 downto 0 do
      let p = peers.(i) in
      match delta_for k ~sent_chain:p.p_chain ~sent_pend:p.p_pend with
      | None -> ()
      | Some d ->
          peers.(i) <-
            {
              p_chain = List.length k.chain;
              p_pend = List.sort_uniq Types.compare_op (d.d_pend @ p.p_pend);
            };
          sends := Engine.Send (nbrs.(i), d) :: !sends
    done;
    (peers, !sends)
  in
  {
    Engine.name = "dynamic-queue";
    initial_state =
      (fun v ->
        let mine =
          if requesting.(v) then Some { Types.origin = v; seq = 0 } else None
        in
        let k =
          match mine with
          | Some op -> { empty_know with pend = [ op ] }
          | None -> empty_know
        in
        { ck = k; cmine = mine; cpeers = fresh_peers graph v });
    on_start =
      (fun ~node s ->
        let k' = extend node s.ck ~leader in
        let comps = newly_chained s.cmine s.ck k' in
        let peers, sends = flood node k' s.cpeers in
        ({ s with ck = k'; cpeers = peers }, comps @ sends));
    on_receive =
      (fun ~round:_ ~node ~src d s ->
        let nbrs = Graph.neighbors graph node in
        let slot = ref 0 in
        Array.iteri (fun i w -> if w = src then slot := i) nbrs;
        let peers = note_peer s.cpeers !slot d in
        let k' = apply_delta node s.ck d ~leader in
        if k' = s.ck then ({ s with cpeers = peers }, [])
        else begin
          let comps = newly_chained s.cmine s.ck k' in
          let peers, sends = flood node k' peers in
          ({ ck = k'; cmine = s.cmine; cpeers = peers }, comps @ sends)
        end);
    on_tick = Engine.no_tick;
  }

(* ------------------------------------------------------------------ *)
(* Tick-driven variant: dynamic graph, engine-only.                    *)
(* ------------------------------------------------------------------ *)

(* Same knowledge logic; flooding is paced by ticks instead. Each
   neighbour slot carries the belief of what that neighbour holds
   (advancing on both send and receive) plus the version last offered;
   a version bump (any knowledge growth) re-arms every link, and a
   periodic refresh forgets the beliefs unconditionally so deltas lost
   to a mid-flight topology change are recovered by a full re-send.
   Engine-only — state is mutable, keep it away from [Explore]. *)
type dpeer = {
  mutable q_chain : int;
  mutable q_pend : Types.op list;
  mutable q_version : int;
}

type dstate = {
  dk : know;
  dmine : Types.op option;
  dversion : int;
  dpeers : dpeer array;
}

let dynamic_protocol ~leader ~sched ~refresh ~graph ~requests =
  let n = Graph.n graph in
  let requesting = check_requests ~who:"Dynamic_queue.run" ~n ~leader requests in
  if refresh < 1 then invalid_arg "Dynamic_queue.run: refresh must be >= 1";
  {
    Engine.name = "dynamic-queue";
    initial_state =
      (fun v ->
        let mine =
          if requesting.(v) then Some { Types.origin = v; seq = 0 } else None
        in
        let k =
          match mine with
          | Some op -> { empty_know with pend = [ op ] }
          | None -> empty_know
        in
        {
          dk = k;
          dmine = mine;
          dversion = (if k = empty_know then 0 else 1);
          dpeers =
            Array.map
              (fun _ -> { q_chain = 0; q_pend = []; q_version = -1 })
              (Graph.neighbors graph v);
        });
    on_start =
      (fun ~node s ->
        let k' = extend node s.dk ~leader in
        let comps = newly_chained s.dmine s.dk k' in
        let s =
          if k' = s.dk then s
          else { s with dk = k'; dversion = s.dversion + 1 }
        in
        (s, comps));
    on_receive =
      (fun ~round:_ ~node ~src d s ->
        let nbrs = Graph.neighbors graph node in
        Array.iteri
          (fun i w ->
            if w = src then begin
              let p = s.dpeers.(i) in
              p.q_chain <- max p.q_chain (d.d_base + List.length d.d_suffix);
              p.q_pend <- List.sort_uniq Types.compare_op (d.d_pend @ p.q_pend)
            end)
          nbrs;
        let k' = apply_delta node s.dk d ~leader in
        if k' = s.dk then (s, [])
        else
          ( { s with dk = k'; dversion = s.dversion + 1 },
            newly_chained s.dmine s.dk k' ));
    on_tick =
      Some
        (fun ~round ~node s ->
          if s.dversion = 0 then (s, [])
          else begin
            if round mod refresh = 0 then
              Array.iter
                (fun p ->
                  p.q_chain <- 0;
                  p.q_pend <- [];
                  p.q_version <- -1)
                s.dpeers;
            let nbrs = Graph.neighbors graph node in
            let sends = ref [] in
            for i = Array.length nbrs - 1 downto 0 do
              let w = nbrs.(i) in
              let p = s.dpeers.(i) in
              (* Sends issued in round [t] enter the network in [t+1];
                 offer over links usable then — "a node knows its
                 current neighbourhood". *)
              if
                p.q_version < s.dversion
                && Dynamic.usable sched ~round:(round + 1) ~u:node ~v:w
              then begin
                p.q_version <- s.dversion;
                match
                  delta_for s.dk ~sent_chain:p.q_chain ~sent_pend:p.q_pend
                with
                | None -> ()
                | Some d ->
                    p.q_chain <- List.length s.dk.chain;
                    p.q_pend <-
                      List.sort_uniq Types.compare_op (d.d_pend @ p.q_pend);
                    sends := Engine.Send (w, d) :: !sends
              end
            done;
            (s, !sends)
          end);
  }

(* ------------------------------------------------------------------ *)
(* Runners.                                                            *)
(* ------------------------------------------------------------------ *)

let finish (res : (Types.op * Types.pred) Engine.result) =
  let outcomes =
    List.map
      (fun (c : _ Engine.completion) ->
        let op, pred = c.value in
        { Types.op; pred; found_at = c.node; round = c.round })
      res.completions
  in
  {
    Countq_arrow.Protocol.outcomes;
    order = Order.chain outcomes;
    rounds = res.rounds;
    messages = res.messages;
    total_delay = Order.total_delay outcomes;
    max_delay = Order.max_delay outcomes;
    expansion = res.expansion;
  }

let chain_monitor () =
  Monitor.chain_consistent
    ~op:(fun ((op : Types.op), _) -> (op.origin, op.seq))
    ~pred:(fun (_, p) ->
      match p with Types.Init -> None | Types.Op q -> Some (q.origin, q.seq))

(* Monitors fused with completion counting: the run halts once every
   request has completed (gossip never quiesces on its own) and the
   stall diagnosis describes the partition around the current holder —
   approximated by the origin of the latest completion, which is exact
   whenever the queue froze because the holder was walled off. *)
let holder_observer ~monitors ~expected ~last_holder =
  let base = Monitor.observe monitors in
  let done_count = ref 0 in
  let observer =
    {
      base with
      Engine.on_complete =
        (fun ~round ~node ~value ->
          last_holder := (fst value).Types.origin;
          incr done_count;
          base.on_complete ~round ~node ~value);
      on_round_end =
        (fun ~round ~in_flight ->
          match base.on_round_end ~round ~in_flight with
          | `Halt -> `Halt
          | `Continue ->
              if !done_count >= expected then `Halt else `Continue);
    }
  in
  (observer, done_count)

let default_config graph =
  Engine.config_with_capacity (max 1 (Graph.max_degree graph))

let run ?config ?(leader = 0) ?sched ?(refresh = 8) ?(progress_budget = 256)
    ~graph ~requests () =
  let sched =
    match sched with Some s -> s | None -> Dynamic.identity graph
  in
  let config = match config with Some c -> c | None -> default_config graph in
  let protocol = dynamic_protocol ~leader ~sched ~refresh ~graph ~requests in
  let dyn = Dynamic.start sched in
  let expected = List.length requests in
  let last_holder = ref leader in
  let diagnose ~round =
    Some (Dynamic.describe_cut sched ~round ~from:!last_holder)
  in
  let monitors =
    [
      chain_monitor ();
      Monitor.completes ~expected;
      Monitor.completion_progress ~budget:progress_budget ~diagnose ();
    ]
  in
  let observer, done_count =
    holder_observer ~monitors ~expected ~last_holder
  in
  let res =
    Engine.run ~dynamic:dyn ~observer
      ~keep_alive:(fun () -> !done_count < expected)
      ~graph ~config ~protocol ()
  in
  {
    result = finish res;
    monitors = Monitor.finalise monitors;
    topo = Dynamic.stats dyn;
  }

(* ------------------------------------------------------------------ *)
(* The repairing envelope layer and the churn-tolerant arrow.          *)
(* ------------------------------------------------------------------ *)

type route_stats = {
  forwarded : int;
  rerouted : int;
  retransmits : int;
  gave_up : int;
}

type 'm envelope = {
  e_src : int;  (** logical sender. *)
  e_dst : int;  (** logical receiver. *)
  e_seq : int;  (** per (e_src, e_dst) sequence number. *)
  e_pay : 'm option;  (** [None] is the end-to-end ack. *)
}

type 'm unack = { u_msg : 'm; mutable u_due : int; mutable u_retries : int }

type ('s, 'm) routed = {
  mutable rt_inner : 's;
  rt_next : int array;  (** per logical destination: next sequence. *)
  rt_expect : int array;  (** per logical sender: next expected. *)
  rt_buffer : (int * int, 'm) Hashtbl.t;  (** out-of-order payloads. *)
  rt_unacked : (int * int, 'm unack) Hashtbl.t;  (** (dst, seq). *)
  rt_transit : 'm envelope Queue.t;  (** envelopes awaiting a hop. *)
}

type route_handle = {
  mutable h_outstanding : int;
  mutable h_forwarded : int;
  mutable h_rerouted : int;
  mutable h_retransmits : int;
  mutable h_gave_up : int;
}

let route_keep_alive h () = h.h_outstanding > 0

let route_stats h =
  {
    forwarded = h.h_forwarded;
    rerouted = h.h_rerouted;
    retransmits = h.h_retransmits;
    gave_up = h.h_gave_up;
  }

let wrap_route ?(ack_timeout = 4) ?(max_retries = 8) ~sched ~graph
    (p : _ Engine.protocol) =
  if ack_timeout < 1 then
    invalid_arg "Dynamic_queue.wrap_route: ack_timeout must be >= 1";
  if max_retries < 0 then
    invalid_arg "Dynamic_queue.wrap_route: max_retries must be >= 0";
  let n = Graph.n graph in
  let h =
    {
      h_outstanding = 0;
      h_forwarded = 0;
      h_rerouted = 0;
      h_retransmits = 0;
      h_gave_up = 0;
    }
  in
  (* Inner completions pass through; inner sends become sequenced
     envelopes queued for routing (all physical sends happen on tick,
     so every hop gets a fresh usability check). *)
  let lift v st ~round actions =
    List.filter_map
      (function
        | Engine.Complete r -> Some (Engine.Complete r)
        | Engine.Send (dst, m) ->
            let seq = st.rt_next.(dst) in
            st.rt_next.(dst) <- seq + 1;
            Hashtbl.replace st.rt_unacked (dst, seq)
              { u_msg = m; u_due = round + ack_timeout; u_retries = 0 };
            h.h_outstanding <- h.h_outstanding + 1;
            Queue.push
              { e_src = v; e_dst = dst; e_seq = seq; e_pay = Some m }
              st.rt_transit;
            None)
      actions
  in
  (* Release buffered payloads to the inner protocol strictly in
     sequence order. *)
  let rec deliver_ready v st ~round src acc =
    let q = st.rt_expect.(src) in
    match Hashtbl.find_opt st.rt_buffer (src, q) with
    | None -> acc
    | Some m ->
        Hashtbl.remove st.rt_buffer (src, q);
        st.rt_expect.(src) <- q + 1;
        let s', actions = p.on_receive ~round ~node:v ~src m st.rt_inner in
        st.rt_inner <- s';
        deliver_ready v st ~round src (acc @ lift v st ~round actions)
  in
  let protocol =
    {
      Engine.name = p.name ^ "+route";
      initial_state =
        (fun v ->
          {
            rt_inner = p.initial_state v;
            rt_next = Array.make n 0;
            rt_expect = Array.make n 0;
            rt_buffer = Hashtbl.create 8;
            rt_unacked = Hashtbl.create 8;
            rt_transit = Queue.create ();
          });
      on_start =
        (fun ~node st ->
          let s', actions = p.on_start ~node st.rt_inner in
          st.rt_inner <- s';
          (st, lift node st ~round:0 actions));
      on_receive =
        (fun ~round ~node:v ~src:_ env st ->
          if env.e_dst <> v then begin
            (* In transit: forward on the next tick, off the current
               up-graph. *)
            Queue.push env st.rt_transit;
            (st, [])
          end
          else
            match env.e_pay with
            | None ->
                let key = (env.e_src, env.e_seq) in
                if Hashtbl.mem st.rt_unacked key then begin
                  Hashtbl.remove st.rt_unacked key;
                  h.h_outstanding <- h.h_outstanding - 1
                end;
                (st, [])
            | Some m ->
                (* Ack every copy — the first ack may itself be lost. *)
                Queue.push
                  { e_src = v; e_dst = env.e_src; e_seq = env.e_seq; e_pay = None }
                  st.rt_transit;
                let s0 = env.e_src in
                if env.e_seq >= st.rt_expect.(s0) then
                  Hashtbl.replace st.rt_buffer (s0, env.e_seq) m;
                (st, deliver_ready v st ~round s0 []));
      on_tick =
        Some
          (fun ~round ~node:v st ->
            (* 1. Retry timers, in deterministic (dst, seq) order. *)
            let due =
              List.sort
                (fun (a, _) (b, _) -> compare a b)
                (Hashtbl.fold
                   (fun k u acc -> if u.u_due <= round then (k, u) :: acc else acc)
                   st.rt_unacked [])
            in
            List.iter
              (fun ((dst, seq), u) ->
                if u.u_retries >= max_retries then begin
                  Hashtbl.remove st.rt_unacked (dst, seq);
                  h.h_gave_up <- h.h_gave_up + 1;
                  h.h_outstanding <- h.h_outstanding - 1
                end
                else begin
                  u.u_retries <- u.u_retries + 1;
                  u.u_due <- round + (ack_timeout * (1 lsl u.u_retries));
                  h.h_retransmits <- h.h_retransmits + 1;
                  Queue.push
                    { e_src = v; e_dst = dst; e_seq = seq; e_pay = Some u.u_msg }
                    st.rt_transit
                end)
              due;
            (* 2. Inner tick, if any. *)
            let acc =
              match p.on_tick with
              | None -> []
              | Some tick ->
                  let s', actions = tick ~round ~node:v st.rt_inner in
                  st.rt_inner <- s';
                  lift v st ~round actions
            in
            (* 3. Route everything in transit one hop along the
               up-graph of the round the hop will travel in; envelopes
               with no usable path wait here. *)
            let keep = Queue.create () in
            let sends = ref [] in
            while not (Queue.is_empty st.rt_transit) do
              let env = Queue.pop st.rt_transit in
              match
                Dynamic.next_hop sched ~round:(round + 1) ~src:v ~dst:env.e_dst
              with
              | None -> Queue.push env keep
              | Some w ->
                  h.h_forwarded <- h.h_forwarded + 1;
                  if w <> env.e_dst then h.h_rerouted <- h.h_rerouted + 1;
                  sends := Engine.Send (w, env) :: !sends
            done;
            Queue.transfer keep st.rt_transit;
            (st, acc @ List.rev !sends));
    }
  in
  (protocol, h)

let run_arrow ?config ?tail ?(ack_timeout = 4) ?(max_retries = 8)
    ?progress_budget ?sched ~graph ~tree ~requests () =
  let sched =
    match sched with Some s -> s | None -> Dynamic.identity graph
  in
  let config = match config with Some c -> c | None -> default_config graph in
  let inner = Countq_arrow.Protocol.one_shot_protocol ?tail ~tree ~requests () in
  let protocol, h = wrap_route ~ack_timeout ~max_retries ~sched ~graph inner in
  let dyn = Dynamic.start sched in
  let expected = List.length requests in
  let budget =
    match progress_budget with
    | Some b -> b
    | None -> max 512 (4 * ack_timeout * (1 lsl max_retries))
  in
  let holder0 = match tail with Some t -> t | None -> Tree.root tree in
  let last_holder = ref holder0 in
  let diagnose ~round =
    Some (Dynamic.describe_cut sched ~round ~from:!last_holder)
  in
  let monitors =
    [
      chain_monitor ();
      Monitor.completes ~expected;
      Monitor.progress ~budget ~diagnose ();
    ]
  in
  let observer, done_count =
    holder_observer ~monitors ~expected ~last_holder
  in
  let res =
    Engine.run ~dynamic:dyn ~observer
      ~keep_alive:(fun () ->
        route_keep_alive h () || !done_count < expected)
      ~graph ~config ~protocol ()
  in
  ( {
      result = finish res;
      monitors = Monitor.finalise monitors;
      topo = Dynamic.stats dyn;
    },
    route_stats h )
