(* Centralised counter baseline. See central.mli. *)

module Engine = Countq_simnet.Engine
module Async = Countq_simnet.Async
module Faults = Countq_simnet.Faults
module Monitor = Countq_simnet.Monitor
module Reliable = Countq_simnet.Reliable
module Route = Countq_simnet.Route
module Graph = Countq_topology.Graph

type msg =
  | Request of { origin : int }
  | Reply of { dest : int; count : int }

type state = { counter : int } (* meaningful at the root only *)

let check_requests n requests =
  let seen = Array.make n false in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Central.run: request out of range";
      if seen.(v) then invalid_arg "Central.run: duplicate request node";
      seen.(v) <- true)
    requests;
  seen

let make_protocol ~root ~route ~requesting =
  (* The root assigns the next rank and emits the reply (or completes
     locally when the requester is the root itself). *)
  let assign node s origin =
    let count = s.counter + 1 in
    let s = { counter = count } in
    if origin = node then (s, [ Engine.Complete (origin, count) ])
    else
      ( s,
        [ Engine.Send (Route.next_hop route node origin, Reply { dest = origin; count }) ]
      )
  in
  {
    Engine.name = "central-counter";
    initial_state = (fun _ -> { counter = 0 });
    on_start =
      (fun ~node s ->
        if not requesting.(node) then (s, [])
        else if node = root then assign node s node
        else
          (s, [ Engine.Send (Route.next_hop route node root, Request { origin = node }) ]));
    on_receive =
      (fun ~round:_ ~node ~src:_ msg s ->
        match msg with
        | Request { origin } ->
            if node = root then assign node s origin
            else
              (s, [ Engine.Send (Route.next_hop route node root, Request { origin }) ])
        | Reply { dest; count } ->
            if node = dest then (s, [ Engine.Complete (dest, count) ])
            else
              (s, [ Engine.Send (Route.next_hop route node dest, Reply { dest; count }) ]));
    on_tick = Engine.no_tick;
  }

let prepare ~root ~route ~graph ~requests =
  let n = Graph.n graph in
  if root < 0 || root >= n then invalid_arg "Central.run: root out of range";
  let requesting = check_requests n requests in
  let route = match route with Some r -> r | None -> Route.auto graph in
  make_protocol ~root ~route ~requesting

type checker_state = state
type checker_msg = msg

let one_shot_protocol ?(root = 0) ?route ~graph ~requests () =
  prepare ~root ~route ~graph ~requests

type long_lived_outcome = { node : int; seq : int; count : int; delay : int }

type long_lived_result = {
  outcomes : long_lived_outcome list;
  counts_exact : bool;
  rounds : int;
  messages : int;
}

type ll_msg =
  | Ll_request of { origin : int; seq : int }
  | Ll_reply of { dest : int; seq : int; count : int }

type ll_state = {
  counter : int;  (** meaningful at the root only. *)
  schedule : int list;  (** remaining issue rounds, sorted. *)
  seq_next : int;
}

let run_long_lived ?config ?(root = 0) ?route ~graph ~arrivals () =
  let n = Graph.n graph in
  if root < 0 || root >= n then
    invalid_arg "Central.run_long_lived: root out of range";
  List.iter
    (fun (v, r) ->
      if v < 0 || v >= n then
        invalid_arg "Central.run_long_lived: arrival node out of range";
      if r < 0 then invalid_arg "Central.run_long_lived: negative arrival round")
    arrivals;
  let route = match route with Some r -> r | None -> Route.auto graph in
  let per_node = Array.make n [] in
  List.iter (fun (v, r) -> per_node.(v) <- r :: per_node.(v)) arrivals;
  Array.iteri (fun v rs -> per_node.(v) <- List.sort compare rs) per_node;
  let issue_time v seq = List.nth per_node.(v) seq in
  let horizon = List.fold_left (fun acc (_, r) -> max acc r) 0 arrivals in
  let config =
    match config with
    | Some c -> { c with Engine.min_rounds = max c.Engine.min_rounds (horizon + 1) }
    | None -> { Engine.default_config with min_rounds = horizon + 1 }
  in
  (* Assign the next rank at the root (locally when the root issues). *)
  let assign node s origin seq =
    let count = s.counter + 1 in
    let s = { s with counter = count } in
    if origin = node then (s, [ Engine.Complete (origin, seq, count) ])
    else
      ( s,
        [
          Engine.Send
            (Route.next_hop route node origin, Ll_reply { dest = origin; seq; count });
        ] )
  in
  let issue node s =
    let seq = s.seq_next in
    let s = { s with seq_next = seq + 1 } in
    if node = root then assign node s node seq
    else
      ( s,
        [
          Engine.Send
            (Route.next_hop route node root, Ll_request { origin = node; seq });
        ] )
  in
  let drain_due round node s =
    let rec go s acc =
      match s.schedule with
      | r :: rest when r <= round ->
          let s, actions = issue node { s with schedule = rest } in
          go s (acc @ actions)
      | _ -> (s, acc)
    in
    go s []
  in
  let protocol =
    {
      Engine.name = "central-counter-long-lived";
      initial_state =
        (fun v -> { counter = 0; schedule = per_node.(v); seq_next = 0 });
      on_start = (fun ~node s -> drain_due 0 node s);
      on_receive =
        (fun ~round:_ ~node ~src:_ msg s ->
          match msg with
          | Ll_request { origin; seq } ->
              if node = root then assign node s origin seq
              else
                ( s,
                  [
                    Engine.Send
                      (Route.next_hop route node root, Ll_request { origin; seq });
                  ] )
          | Ll_reply { dest; seq; count } ->
              if node = dest then (s, [ Engine.Complete (dest, seq, count) ])
              else
                ( s,
                  [
                    Engine.Send
                      (Route.next_hop route node dest, Ll_reply { dest; seq; count });
                  ] ));
      on_tick = Some (fun ~round ~node s -> drain_due round node s);
    }
  in
  let res = Engine.run ~graph ~config ~protocol () in
  let outcomes =
    List.map
      (fun (c : _ Engine.completion) ->
        let node, seq, count = c.value in
        { node; seq; count; delay = c.round - issue_time node seq })
      res.completions
  in
  let m = List.length outcomes in
  let counts_exact =
    List.sort compare (List.map (fun o -> o.count) outcomes)
    = List.init m (fun i -> i + 1)
  in
  { outcomes; counts_exact; rounds = res.rounds; messages = res.messages }

let run ?config ?(root = 0) ?route ~graph ~requests () =
  let protocol = prepare ~root ~route ~graph ~requests in
  let config = Option.value config ~default:Engine.default_config in
  Counts.of_engine ~requests (Engine.run ~graph ~config ~protocol ())

type fault_report = {
  result : Counts.run_result;
  injected : Faults.stats;
  monitors : Monitor.report;
  retry : Reliable.stats option;
}

(* Safety: ranks are handed out once each, and nobody is counted
   twice. Liveness: every requester learns a rank, without stalling. *)
let counting_monitors ~budget ~expected =
  [
    Monitor.distinct_ranks ~rank:(fun ((_, count) : int * int) -> count);
    Monitor.rank_monotonic ~rank:(fun ((_, count) : int * int) -> count);
    Monitor.unique_completion ~node_of:(fun ~node:_ ((origin, _) : int * int) -> origin);
    Monitor.completes ~expected;
    Monitor.progress ~budget ();
  ]

let run_faulty ?config ?(root = 0) ?route ?(retry = false) ?(ack_timeout = 8)
    ?(max_retries = 5) ?progress_budget ~plan ~graph ~requests () =
  let protocol = prepare ~root ~route ~graph ~requests in
  let config = Option.value config ~default:Engine.default_config in
  let budget =
    match progress_budget with
    | Some b -> b
    | None -> max 512 (4 * ack_timeout * (1 lsl max_retries))
  in
  let monitors = counting_monitors ~budget ~expected:(List.length requests) in
  let observer = Monitor.observe monitors in
  let fr = Faults.start plan in
  let res, retry_stats =
    if retry then begin
      let protocol, h = Reliable.wrap ~ack_timeout ~max_retries protocol in
      let res =
        Engine.run ~faults:fr ~observer ~keep_alive:(Reliable.keep_alive h)
          ~graph ~config ~protocol ()
      in
      (res, Some (Reliable.stats h))
    end
    else (Engine.run ~faults:fr ~observer ~graph ~config ~protocol (), None)
  in
  {
    result = Counts.of_engine ~requests res;
    injected = Faults.stats fr;
    monitors = Monitor.finalise monitors;
    retry = retry_stats;
  }

let run_async ?(delay = Async.Constant 1) ?(root = 0) ?route ~graph ~requests
    () =
  let protocol = prepare ~root ~route ~graph ~requests in
  Counts.of_async ~requests (Async.run ~graph ~delay ~protocol ())

let run_observed ?config ?(root = 0) ?route ?plan ~metrics ~graph ~requests ()
    =
  let protocol = prepare ~root ~route ~graph ~requests in
  (* One-shot: each requester owns exactly one op, so the origin node
     ids it; a Reply belongs to the op of its destination. *)
  let protocol, spans =
    Countq_simnet.Span.instrument
      ~injects:(List.map (fun v -> (v, 0)) requests)
      ~op_of_msg:(function
        | Request { origin } -> Some origin
        | Reply { dest; _ } -> Some dest)
      ~op_of_completion:(fun ((origin, _) : int * int) -> Some origin)
      protocol
  in
  let config = Option.value config ~default:Engine.default_config in
  let faults = Option.map Faults.start plan in
  let result =
    Counts.of_engine ~requests
      (Engine.run ?faults ~metrics ~graph ~config ~protocol ())
  in
  (result, spans (), Option.map Faults.stats faults)

let run_traced ?config ?(root = 0) ?route ~graph ~requests () =
  let protocol = prepare ~root ~route ~graph ~requests in
  let protocol, events = Countq_simnet.Trace.instrument protocol in
  let config = Option.value config ~default:Engine.default_config in
  let result = Counts.of_engine ~requests (Engine.run ~graph ~config ~protocol ()) in
  (result, events ())
