(** Distributed counting via a bitonic counting network embedded on the
    interconnection graph.

    The initialisation step (free, Section 2.2) builds [Bitonic[w]] and
    assigns every balancer to a host processor; each output wire also
    gets a host that hands out the ranks [wire + k·w + 1]. A counting
    request becomes a token: it enters the network on input wire
    [origin mod w], hops from balancer host to balancer host (multi-hop
    routes cost one round per link, and hosts receive at most one
    message per round, so congestion at popular hosts is charged
    honestly), exits on some output wire, picks up its rank at the
    wire's host, and a reply is routed back to the origin.

    Because [Bitonic[w]] is a counting network, the ranks handed out at
    quiescence are exactly [{1 .. |R|}] no matter how the messages
    interleave — the property the validation layer re-checks on every
    run. *)

type placement = {
  balancer_host : int -> int;  (** balancer id -> host processor. *)
  output_host : int -> int;  (** output wire -> host processor. *)
}

val round_robin_placement :
  net:Bitonic.t -> n:int -> seed:int64 -> placement
(** Spread balancers over processors: a deterministic shuffle of
    balancer ids onto hosts, cycling when there are more balancers
    than processors; output wire [i] is hosted on the host of the
    last balancer feeding it (falling back to [i mod n] when
    [width = 1]). *)

val default_width : int -> int
(** A reasonable network width for [n] processors: the largest power of
    two [<= max 2 n], capped at 64 (beyond that, depth dominates at the
    scales this repository simulates). *)

val run :
  ?config:Countq_simnet.Engine.config ->
  ?width:int ->
  ?net:Bitonic.t ->
  ?placement:placement ->
  ?route:Countq_simnet.Route.t ->
  graph:Countq_topology.Graph.t ->
  requests:int list ->
  unit ->
  Counts.run_result
(** [run ~graph ~requests ()] executes the one-shot scenario.
    [width] defaults to [default_width n]; [net] to
    [Bitonic.create ~width] — pass [Periodic.create ~width] (or any
    balancing network sharing the representation) to embed a different
    structure; [route] defaults to all-pairs shortest-path routing;
    [placement] to {!round_robin_placement} with a fixed seed. Default
    config is the base model (1/1).
    @raise Invalid_argument on a bad width/net combination or bad
    requests. *)

type checker_state
type checker_msg
(** Abstract internals, exposed for engine-level harnesses. *)

val one_shot_protocol :
  ?width:int ->
  ?net:Bitonic.t ->
  ?placement:placement ->
  ?route:Countq_simnet.Route.t ->
  graph:Countq_topology.Graph.t ->
  requests:int list ->
  unit ->
  (checker_state, checker_msg, int * int) Countq_simnet.Engine.protocol
(** The raw protocol value ({!run} without the engine invocation, same
    defaults), for benchmarks and equivalence harnesses that need to
    drive the same protocol through several engines. *)

type long_lived_outcome = {
  node : int;  (** requesting processor. *)
  seq : int;  (** which of the node's operations (issue order). *)
  count : int;  (** the rank received. *)
  delay : int;  (** rounds from issue to receipt. *)
}

type long_lived_result = {
  outcomes : long_lived_outcome list;
  counts_exact : bool;
      (** the multiset of ranks handed out is exactly [{1 .. m}] —
          the quiescent counting-network guarantee, which holds for
          arbitrary arrival patterns. *)
  rounds : int;
  messages : int;
}

val run_long_lived :
  ?config:Countq_simnet.Engine.config ->
  ?width:int ->
  ?net:Bitonic.t ->
  ?placement:placement ->
  ?route:Countq_simnet.Route.t ->
  graph:Countq_topology.Graph.t ->
  arrivals:(int * int) list ->
  unit ->
  long_lived_result
(** The long-lived scenario counting networks were designed for:
    [arrivals] is a list of [(node, round)] pairs ([round >= 0]; a node
    may appear many times). Each operation becomes a token injected at
    its issue round; at quiescence the ranks handed out are exactly
    [{1 .. m}] no matter how the tokens interleaved.
    @raise Invalid_argument on bad arrivals. *)
