(* Combining-tree counter. See combining.mli. *)

module Engine = Countq_simnet.Engine
module Async = Countq_simnet.Async
module Tree = Countq_topology.Tree

type msg =
  | Report of int  (** number of requests in the sender's subtree. *)
  | Range of int  (** first rank available to the receiver's subtree. *)

type state = {
  own : bool;
  pending : int;  (** children yet to report. *)
  reported : (int * int) list;  (** (child, subtree count). *)
}

let make_protocol ~tree ~requesting =
  let root = Tree.root tree in
  let own_count v = if requesting.(v) then 1 else 0 in
  (* Rank layout within a subtree rooted at [v] that was granted ranks
     starting at [base]: v's own operation first, then each child's
     subtree in increasing child order. *)
  let downsweep v s base =
    let complete_own =
      if s.own then [ Engine.Complete (v, base) ] else []
    in
    let base = ref (base + own_count v) in
    let by_child = List.sort compare s.reported in
    let sends =
      List.filter_map
        (fun (child, cnt) ->
          if cnt = 0 then None
          else begin
            let b = !base in
            base := b + cnt;
            Some (Engine.Send (child, Range b))
          end)
        by_child
    in
    (s, complete_own @ sends)
  in
  let subtree_sum v s =
    own_count v + List.fold_left (fun acc (_, c) -> acc + c) 0 s.reported
  in
  let finish_upsweep v s =
    if v = root then
      if subtree_sum v s = 0 then (s, []) else downsweep v s 1
    else (s, [ Engine.Send (Tree.parent tree v, Report (subtree_sum v s)) ])
  in
  {
    Engine.name = "combining-tree";
    initial_state =
      (fun v ->
        {
          own = requesting.(v);
          pending = Array.length (Tree.children tree v);
          reported = [];
        });
    on_start =
      (fun ~node s -> if s.pending = 0 then finish_upsweep node s else (s, []));
    on_receive =
      (fun ~round:_ ~node ~src msg s ->
        match msg with
        | Report c ->
            let s =
              { s with pending = s.pending - 1; reported = (src, c) :: s.reported }
            in
            if s.pending = 0 then finish_upsweep node s else (s, [])
        | Range base -> downsweep node s base);
    on_tick = Engine.no_tick;
  }

let prepare ~tree ~requests name =
  let n = Tree.n tree in
  let requesting = Array.make n false in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg (name ^ ": request out of range");
      if requesting.(v) then invalid_arg (name ^ ": duplicate request node");
      requesting.(v) <- true)
    requests;
  make_protocol ~tree ~requesting

type checker_state = state
type checker_msg = msg

let one_shot_protocol ~tree ~requests () =
  prepare ~tree ~requests "Combining.one_shot_protocol"

let run ?config ~tree ~requests () =
  let protocol = prepare ~tree ~requests "Combining.run" in
  let config =
    match config with
    | Some c -> c
    | None -> Engine.config_with_capacity (max 1 (Tree.max_degree tree))
  in
  let graph = Tree.to_graph tree in
  Counts.of_engine ~requests (Engine.run ~graph ~config ~protocol ())

let run_async ?(delay = Async.Constant 1) ~tree ~requests () =
  let protocol = prepare ~tree ~requests "Combining.run_async" in
  let graph = Tree.to_graph tree in
  Counts.of_async ~requests (Async.run ~graph ~delay ~protocol ())
