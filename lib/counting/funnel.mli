(** Combining-funnel counter: exact batch combining on (implicit) trees.

    The third tree-shaped counter, and the one built for the million-node
    regime. {!Combining} aggregates but materialises the whole spanning
    tree; {!Diffracting} routes every token through the root. The funnel
    does neither: increments climb leaf-to-root along tree edges,
    {e combining} at every interior node they meet — a node forwards a
    single [Up] carrying its subtree's combined total — and the root
    answers with disjoint count ranges that {e decombine} on the way
    back down, each combiner splitting its range across the recorded
    batch. Per operation that is O(1) messages amortised (two per
    closure edge, and the closure has at most one edge per requester
    ancestor) and ~2·depth rounds, against Θ(depth) messages per token
    for the diffracting tree.

    {b The combining window} is structural, not timed: the on-path
    closure (requesters plus ancestors) is precomputed from the request
    set, so each node knows exactly how many on-path children will
    report ([expected]) and flushes upward the moment the last one has
    — no ticks, no timeouts, no engine hooks. That makes the protocol
    purely message-driven: the same transitions run unchanged under
    {!Countq_simnet.Engine.run}, {!Countq_simnet.Event_engine.run},
    {!Countq_simnet.Shard.run_implicit}, the asynchronous engine, and
    the {!Countq_simnet.Explore} model checker (which ignores ticks).

    {b The decombine invariant}: a node entered with range base [b] and
    batch total [t] hands out exactly [{b+1 .. b+t}] — own increments
    take one count each, child blocks take contiguous sub-ranges, in
    batch arrival order. The root's lane is [(0, |R|)], so the counts
    handed out are exactly [{1..|R|}] for {e any} arrival order —
    {!Diffracting}'s exactness contract, met by a different mechanism.

    The implicit entry points route by index arithmetic alone
    ([parent v = (v-1)/arity] on BFS-numbered
    {!Countq_topology.Implicit.tree} families): no materialised graph,
    and no per-node state off the closure — the live footprint scales
    with the request set, not the tree, which is what lets one-shot
    counting run at n = 10{^6} next to the queuing rows. *)

val adaptive_width :
  n:int -> concurrency:int -> int
(** [adaptive_width ~n ~concurrency] picks a balancer fan-in from the
    offered concurrency rather than the spanning-tree arity:
    [1 + sqrt concurrency] clamped to [[2, 64]] and to [n - 1]. Low
    concurrency gets narrow trees (less expansion to pay for), high
    concurrency gets wide ones (fewer serialised levels); the square
    root balances the expanded-step cost (∝ width) against tree depth
    (∝ 1/log width). Shared with the diffracting tree's width
    selection. *)

val run :
  ?config:Countq_simnet.Engine.config ->
  ?width:int ->
  tree:Countq_topology.Tree.t ->
  requests:int list ->
  unit ->
  Counts.run_result
(** [run ~tree ~requests ()] executes the one-shot scenario on a
    materialised rooted tree. The default config's expanded step is
    {!adaptive_width} capped by the tree's maximum degree; [width]
    overrides the adaptive choice (still degree-capped); an explicit
    [config] overrides both.
    @raise Invalid_argument on out-of-range or duplicate requests. *)

val run_implicit :
  ?config:Countq_simnet.Engine.config ->
  ?width:int ->
  ?shards:int ->
  ?pool:Countq_util.Parallel.pool ->
  ?stats:Countq_simnet.Event_engine.stats ->
  topo:Countq_topology.Implicit.t ->
  requests:int list ->
  unit ->
  Counts.run_result
(** [run_implicit ~topo ~requests ()] runs on an implicit tree family
    via the event engine ([shards] absent or 1) or the sharded engine
    ([shards >= 2], with [pool] and the usual bit-identical merge).
    [stats] receives the event-engine counters (touched nodes, peak
    in-flight, executed rounds).
    @raise Invalid_argument if [topo] is not a {!Countq_topology.Implicit.tree}
    family, or on out-of-range or duplicate requests. *)

val run_async :
  ?delay:Countq_simnet.Async.delay_model ->
  tree:Countq_topology.Tree.t ->
  requests:int list ->
  unit ->
  Counts.run_result
(** The same protocol under the asynchronous engine. Batch contents
    depend only on per-node arrival order, so the count set stays
    exactly [{1..|R|}] under arbitrary link delays. *)

type checker_state
type checker_msg
(** Abstract internals, exposed for engine-level harnesses. *)

val one_shot_protocol :
  tree:Countq_topology.Tree.t ->
  requests:int list ->
  unit ->
  (checker_state, checker_msg, int * int) Countq_simnet.Engine.protocol
(** The raw protocol on a materialised tree ({!run} without the engine
    invocation), for model checking and equivalence harnesses. *)

val implicit_protocol :
  topo:Countq_topology.Implicit.t ->
  requests:int list ->
  unit ->
  (checker_state, checker_msg, int * int) Countq_simnet.Engine.protocol
(** The raw protocol routed by index arithmetic on an implicit tree
    family, for harnesses driving {!Countq_simnet.Event_engine.run} or
    {!Countq_simnet.Shard.run_implicit} directly (completion values are
    [(origin, count)] pairs; start it with [~starters] = the sorted
    request list).
    @raise Invalid_argument if [topo] is not a tree family. *)
