(* Distributed fetch-and-add. See fetch_add.mli. *)

module Engine = Countq_simnet.Engine
module Route = Countq_simnet.Route
module Graph = Countq_topology.Graph
module Tree = Countq_topology.Tree

type outcome = { node : int; increment : int; before : int; round : int }

type error =
  | Unrequested of int
  | Duplicate_node of int
  | Missing_node of int
  | Wrong_increment of int
  | Inconsistent_prefixes

let pp_error ppf = function
  | Unrequested v -> Format.fprintf ppf "non-requesting node %d got a result" v
  | Duplicate_node v -> Format.fprintf ppf "node %d got two results" v
  | Missing_node v -> Format.fprintf ppf "requesting node %d got no result" v
  | Wrong_increment v ->
      Format.fprintf ppf "node %d's reported increment differs from issued" v
  | Inconsistent_prefixes ->
      Format.pp_print_string ppf "no operation order yields these prefix sums"

let check_requests n requests name =
  let issued = Hashtbl.create 16 in
  List.iter
    (fun (v, inc) ->
      if v < 0 || v >= n then invalid_arg (name ^ ": request out of range");
      if inc < 0 then invalid_arg (name ^ ": negative increment");
      if Hashtbl.mem issued v then invalid_arg (name ^ ": duplicate request node");
      Hashtbl.replace issued v inc)
    requests;
  issued

let validate ~requests outcomes =
  let exception E of error in
  try
    let issued = Hashtbl.create 16 in
    List.iter (fun (v, inc) -> Hashtbl.replace issued v inc) requests;
    let seen = Hashtbl.create 16 in
    List.iter
      (fun o ->
        (match Hashtbl.find_opt issued o.node with
        | None -> raise (E (Unrequested o.node))
        | Some inc -> if inc <> o.increment then raise (E (Wrong_increment o.node)));
        if Hashtbl.mem seen o.node then raise (E (Duplicate_node o.node));
        Hashtbl.replace seen o.node ())
      outcomes;
    List.iter
      (fun (v, _) -> if not (Hashtbl.mem seen v) then raise (E (Missing_node v)))
      requests;
    (* Existence of a consistent order: sort by reported prefix; within
       a tie group every zero-increment op is free, but at most one
       positive-increment op may appear and it must close the group. *)
    let sorted =
      List.sort
        (fun a b ->
          match compare a.before b.before with
          | 0 -> compare a.increment b.increment (* zeros first in group *)
          | c -> c)
        outcomes
    in
    let running = ref 0 in
    List.iter
      (fun o ->
        if o.before <> !running then raise (E Inconsistent_prefixes);
        running := !running + o.increment)
      sorted;
    Ok ()
  with E e -> Error e

type run_result = {
  outcomes : outcome list;
  valid : (unit, error) result;
  rounds : int;
  messages : int;
  total_delay : int;
  max_delay : int;
  expansion : int;
}

let of_engine ~requests (res : (int * int * int) Engine.result) =
  let outcomes =
    List.map
      (fun (c : _ Engine.completion) ->
        let node, increment, before = c.value in
        { node; increment; before; round = c.round })
      res.completions
  in
  {
    outcomes;
    valid = validate ~requests outcomes;
    rounds = res.rounds;
    messages = res.messages;
    total_delay = List.fold_left (fun acc o -> acc + o.round) 0 outcomes;
    max_delay = List.fold_left (fun acc o -> max acc o.round) 0 outcomes;
    expansion = res.expansion;
  }

(* ---- central accumulator ---- *)

type central_msg =
  | Request of { origin : int; increment : int }
  | Reply of { dest : int; increment : int; before : int }

let run_central ?config ?(root = 0) ?route ~graph ~requests () =
  let n = Graph.n graph in
  if root < 0 || root >= n then invalid_arg "Fetch_add.run_central: root out of range";
  let issued = check_requests n requests "Fetch_add.run_central" in
  let route = match route with Some r -> r | None -> Route.auto graph in
  let config = Option.value config ~default:Engine.default_config in
  let apply node sum origin increment =
    let before = sum in
    let sum = sum + increment in
    if origin = node then (sum, [ Engine.Complete (origin, increment, before) ])
    else
      ( sum,
        [
          Engine.Send
            ( Route.next_hop route node origin,
              Reply { dest = origin; increment; before } );
        ] )
  in
  let protocol =
    {
      Engine.name = "central-fetch-add";
      initial_state = (fun _ -> 0);
      on_start =
        (fun ~node sum ->
          match Hashtbl.find_opt issued node with
          | None -> (sum, [])
          | Some increment ->
              if node = root then apply node sum node increment
              else
                ( sum,
                  [
                    Engine.Send
                      ( Route.next_hop route node root,
                        Request { origin = node; increment } );
                  ] ));
      on_receive =
        (fun ~round:_ ~node ~src:_ msg sum ->
          match msg with
          | Request { origin; increment } ->
              if node = root then apply node sum origin increment
              else
                ( sum,
                  [
                    Engine.Send
                      ( Route.next_hop route node root,
                        Request { origin; increment } );
                  ] )
          | Reply { dest; increment; before } ->
              if node = dest then
                (sum, [ Engine.Complete (dest, increment, before) ])
              else
                ( sum,
                  [
                    Engine.Send
                      ( Route.next_hop route node dest,
                        Reply { dest; increment; before } );
                  ] ));
      on_tick = Engine.no_tick;
    }
  in
  of_engine ~requests (Engine.run ~graph ~config ~protocol ())

(* ---- combining tree ---- *)

type combining_msg =
  | Report of int  (** sum of increments in the sender's subtree. *)
  | Base of int  (** exclusive prefix granted to the receiver's subtree. *)

type combining_state = { pending : int; reported : (int * int) list }

let run_combining ?config ~tree ~requests () =
  let n = Tree.n tree in
  let root = Tree.root tree in
  let issued = check_requests n requests "Fetch_add.run_combining" in
  let increment v = Option.value (Hashtbl.find_opt issued v) ~default:0 in
  let is_requester v = Hashtbl.mem issued v in
  let config =
    match config with
    | Some c -> c
    | None -> Engine.config_with_capacity (max 1 (Tree.max_degree tree))
  in
  (* Prefix layout within a granted subtree: the node's own operation
     first, then each child subtree in increasing child order — the
     same DFS order the counting combining tree uses. *)
  let downsweep v s base =
    let complete =
      if is_requester v then [ Engine.Complete (v, increment v, base) ] else []
    in
    let base = ref (base + increment v) in
    let sends =
      List.filter_map
        (fun (child, subtree_sum) ->
          (* A subtree with zero total may still hold zero-increment
             requesters, so forward whenever the child reported at all
             and has any requester below it; cheapest correct rule:
             always forward (one message per tree edge). *)
          let b = !base in
          base := b + subtree_sum;
          Some (Engine.Send (child, Base b)))
        (List.sort compare s.reported)
    in
    (s, complete @ sends)
  in
  let subtree_sum v s =
    increment v + List.fold_left (fun acc (_, c) -> acc + c) 0 s.reported
  in
  let finish_upsweep v s =
    if v = root then downsweep v s 0
    else (s, [ Engine.Send (Tree.parent tree v, Report (subtree_sum v s)) ])
  in
  let protocol =
    {
      Engine.name = "combining-fetch-add";
      initial_state =
        (fun v -> { pending = Array.length (Tree.children tree v); reported = [] });
      on_start =
        (fun ~node s -> if s.pending = 0 then finish_upsweep node s else (s, []));
      on_receive =
        (fun ~round:_ ~node ~src msg s ->
          match msg with
          | Report c ->
              let s =
                { pending = s.pending - 1; reported = (src, c) :: s.reported }
              in
              if s.pending = 0 then finish_upsweep node s else (s, [])
          | Base b -> downsweep node s b);
      on_tick = Engine.no_tick;
    }
  in
  let graph = Tree.to_graph tree in
  of_engine ~requests (Engine.run ~graph ~config ~protocol ())

(* ---- token sweep ---- *)

let run_sweep ?config ~tree ~requests () =
  let n = Tree.n tree in
  let issued = check_requests n requests "Fetch_add.run_sweep" in
  let config = Option.value config ~default:Engine.default_config in
  let walk = Sweep.euler_walk tree in
  (* Exclusive prefix of each requester in first-visit order, computed
     during the free initialisation. *)
  let before = Array.make n 0 in
  let seen = Array.make n false in
  let running = ref 0 in
  Array.iter
    (fun v ->
      if not seen.(v) then begin
        seen.(v) <- true;
        match Hashtbl.find_opt issued v with
        | Some inc ->
            before.(v) <- !running;
            running := !running + inc
        | None -> ()
      end)
    walk;
  let first_visit = Array.make n (-1) in
  Array.iteri (fun i v -> if first_visit.(v) < 0 then first_visit.(v) <- i) walk;
  let steps = Array.length walk in
  let actions_at node i =
    let complete =
      match Hashtbl.find_opt issued node with
      | Some inc when first_visit.(node) = i ->
          [ Engine.Complete (node, inc, before.(node)) ]
      | _ -> []
    in
    let forward =
      if i + 1 < steps then [ Engine.Send (walk.(i + 1), i + 1) ] else []
    in
    complete @ forward
  in
  let protocol =
    {
      Engine.name = "sweep-fetch-add";
      initial_state = (fun _ -> ());
      on_start =
        (fun ~node s ->
          if node = Tree.root tree then (s, actions_at node 0) else (s, []));
      on_receive = (fun ~round:_ ~node ~src:_ i s -> (s, actions_at node i));
      on_tick = Engine.no_tick;
    }
  in
  let graph = Tree.to_graph tree in
  of_engine ~requests (Engine.run ~graph ~config ~protocol ())
