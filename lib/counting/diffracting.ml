(* Diffracting-tree counter. See diffracting.mli. *)

module Engine = Countq_simnet.Engine
module Async = Countq_simnet.Async
module Tree = Countq_topology.Tree

type msg =
  | Up of int  (** token climbing to the root; payload = origin. *)
  | Down of { origin : int; offset : int; stride : int }
      (** token descending through the balancers. *)
  | Back of { origin : int; count : int }
      (** assigned count returning to the origin. *)

type state = {
  toggle : int;  (** next child index at a balancer. *)
  exits : int;  (** tokens already emitted at a leaf. *)
}

let make_protocol ~tree ~requesting =
  let root = Tree.root tree in
  (* Route one descending token through node [v]: a balancer forwards
     it to the toggle's child with the (offset, stride) refined for
     that child's lane; a leaf assigns the count. The invariant is the
     balancer step property generalised to mixed degrees: a node
     entered with stride [s] by [b] tokens hands out exactly
     {offset_v + k*s + 1 : 0 <= k < b} across its subtree, so the root
     (offset 0, stride 1, |R| tokens) hands out exactly {1..|R|}. *)
  let descend v st (origin, offset, stride) =
    let kids = Tree.children tree v in
    let d = Array.length kids in
    if d = 0 then begin
      let count = offset + (st.exits * stride) + 1 in
      let st = { st with exits = st.exits + 1 } in
      if origin = v then (st, [ Engine.Complete (origin, count) ])
      else
        ( st,
          [ Engine.Send (Tree.next_hop tree v origin, Back { origin; count }) ]
        )
    end
    else begin
      let j = st.toggle in
      let st = { st with toggle = (j + 1) mod d } in
      ( st,
        [
          Engine.Send
            ( kids.(j),
              Down
                { origin; offset = offset + (j * stride); stride = stride * d }
            );
        ] )
    end
  in
  let launch v st =
    if v = root then descend v st (v, 0, 1)
    else (st, [ Engine.Send (Tree.parent tree v, Up v) ])
  in
  {
    Engine.name = "diffracting-tree";
    initial_state = (fun _ -> { toggle = 0; exits = 0 });
    on_start = (fun ~node s -> if requesting.(node) then launch node s else (s, []));
    on_receive =
      (fun ~round:_ ~node ~src:_ msg s ->
        match msg with
        | Up origin ->
            if node = root then descend node s (origin, 0, 1)
            else (s, [ Engine.Send (Tree.parent tree node, Up origin) ])
        | Down { origin; offset; stride } -> descend node s (origin, offset, stride)
        | Back { origin; count } ->
            if node = origin then (s, [ Engine.Complete (origin, count) ])
            else
              ( s,
                [
                  Engine.Send
                    (Tree.next_hop tree node origin, Back { origin; count });
                ] ));
    on_tick = Engine.no_tick;
  }

let prepare ~tree ~requests name =
  let n = Tree.n tree in
  let requesting = Array.make n false in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg (name ^ ": request out of range");
      if requesting.(v) then invalid_arg (name ^ ": duplicate request node");
      requesting.(v) <- true)
    requests;
  make_protocol ~tree ~requesting

type checker_state = state
type checker_msg = msg

let one_shot_protocol ~tree ~requests () =
  prepare ~tree ~requests "Diffracting.one_shot_protocol"

let run ?config ?width ~tree ~requests () =
  let protocol = prepare ~tree ~requests "Diffracting.run" in
  let config =
    match (config, width) with
    | Some c, _ -> c
    | None, Some w ->
        (* An adaptively chosen diffraction width: the expanded step is
           the balancer fan-in we are willing to pay for, not whatever
           degree the spanning tree happened to have. *)
        Engine.config_with_capacity (max 1 (min (Tree.max_degree tree) w))
    | None, None -> Engine.config_with_capacity (max 1 (Tree.max_degree tree))
  in
  let graph = Tree.to_graph tree in
  Counts.of_engine ~requests (Engine.run ~graph ~config ~protocol ())

let run_async ?(delay = Async.Constant 1) ~tree ~requests () =
  let protocol = prepare ~tree ~requests "Diffracting.run_async" in
  let graph = Tree.to_graph tree in
  Counts.of_async ~requests (Async.run ~graph ~delay ~protocol ())
