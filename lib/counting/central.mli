(** Centralised counter: the naive counting baseline.

    Every requester routes an increment request to a fixed root node,
    which holds the counter, assigns ranks in arrival order, and routes
    each reply back to its origin. Because the root can receive (and
    send) only one message per round, the requests serialise at the
    root: on the star this is the Θ(n²) behaviour of Section 5, and on
    any graph the total delay is Ω(k²) for [k = |R|] requesters — far
    above the arrow protocol and a concrete illustration of why
    counting concentrates contention. *)

val run :
  ?config:Countq_simnet.Engine.config ->
  ?root:int ->
  ?route:Countq_simnet.Route.t ->
  graph:Countq_topology.Graph.t ->
  requests:int list ->
  unit ->
  Counts.run_result
(** [run ~graph ~requests ()] executes the one-shot scenario.
    [root] defaults to node 0. [route] defaults to shortest-path
    routing from an all-pairs table (computed in the free
    initialisation step). The default config is the base model
    (capacities 1/1).
    @raise Invalid_argument on out-of-range or duplicate requests. *)

type fault_report = {
  result : Counts.run_result;  (** whatever completed (may be partial). *)
  injected : Countq_simnet.Faults.stats;  (** what the plan actually did. *)
  monitors : Countq_simnet.Monitor.report;
      (** runtime verdicts: rank distinctness/monotonicity and
          completion uniqueness (safety), full completion and progress
          (liveness). *)
  retry : Countq_simnet.Reliable.stats option;
      (** retransmit-layer tally; [None] when [retry] was off. *)
}

val run_faulty :
  ?config:Countq_simnet.Engine.config ->
  ?root:int ->
  ?route:Countq_simnet.Route.t ->
  ?retry:bool ->
  ?ack_timeout:int ->
  ?max_retries:int ->
  ?progress_budget:int ->
  plan:Countq_simnet.Faults.plan ->
  graph:Countq_topology.Graph.t ->
  requests:int list ->
  unit ->
  fault_report
(** {!run} on an unreliable substrate, with runtime invariant monitors
    attached. [plan] is the fault schedule (see
    {!Countq_simnet.Faults}); with [retry] (default [false]) every hop
    runs under the {!Countq_simnet.Reliable} timeout-and-retransmit
    layer ([ack_timeout] rounds before the first retransmit, default 8;
    [max_retries] with exponential backoff, default 5). The progress
    monitor halts a stalled run after [progress_budget] silent rounds
    (default: comfortably above the retransmit layer's longest
    backoff). With [plan = Faults.none] and [retry = false] the result
    equals {!run}'s. *)

val run_async :
  ?delay:Countq_simnet.Async.delay_model ->
  ?root:int ->
  ?route:Countq_simnet.Route.t ->
  graph:Countq_topology.Graph.t ->
  requests:int list ->
  unit ->
  Counts.run_result
(** The same protocol under the asynchronous engine with per-message
    link delays ([Constant 1] by default): counts stay exactly
    [{1..|R|}] under any delay pattern; the delays, of course, grow. *)

type long_lived_outcome = {
  node : int;
  seq : int;  (** which of the node's operations (issue order). *)
  count : int;
  delay : int;  (** rounds from issue to receipt of the rank. *)
}

type long_lived_result = {
  outcomes : long_lived_outcome list;
  counts_exact : bool;  (** ranks handed out are exactly [{1 .. m}]. *)
  rounds : int;
  messages : int;
}

val run_long_lived :
  ?config:Countq_simnet.Engine.config ->
  ?root:int ->
  ?route:Countq_simnet.Route.t ->
  graph:Countq_topology.Graph.t ->
  arrivals:(int * int) list ->
  unit ->
  long_lived_result
(** The long-lived scenario: [(node, round)] arrivals, nodes may repeat.
    The root assigns ranks in arrival order; because it serialises,
    per-op delay grows linearly with load — the baseline the long-lived
    arrow and counting network are compared against in E13.
    @raise Invalid_argument on bad arrivals. *)

type checker_state
type checker_msg
(** Abstract internals, exposed for the exhaustive schedule explorer. *)

val one_shot_protocol :
  ?root:int ->
  ?route:Countq_simnet.Route.t ->
  graph:Countq_topology.Graph.t ->
  requests:int list ->
  unit ->
  (checker_state, checker_msg, int * int) Countq_simnet.Engine.protocol
(** The raw protocol value; completions are [(node, count)] pairs —
    validate with {!Counts.validate}. *)

val run_observed :
  ?config:Countq_simnet.Engine.config ->
  ?root:int ->
  ?route:Countq_simnet.Route.t ->
  ?plan:Countq_simnet.Faults.plan ->
  metrics:Countq_simnet.Metrics.t ->
  graph:Countq_topology.Graph.t ->
  requests:int list ->
  unit ->
  Counts.run_result
  * Countq_simnet.Span.t list
  * Countq_simnet.Faults.stats option
(** {!run} under full observability: per-node / per-edge counters
    recorded into [metrics] (create one per run) and a causal span per
    operation, keyed by origin node (a Reply is attributed to the op of
    its destination). [plan] optionally injects faults (no retransmit
    layer, no monitors); the third component is the injection tally
    when a plan was given. With no plan the result equals {!run}'s —
    and the heatmap makes the root's Θ(k²) hot spot visible. *)

val run_traced :
  ?config:Countq_simnet.Engine.config ->
  ?root:int ->
  ?route:Countq_simnet.Route.t ->
  graph:Countq_topology.Graph.t ->
  requests:int list ->
  unit ->
  Counts.run_result * Countq_simnet.Trace.event list
(** {!run} with event tracing (identical behaviour); feeds the
    Section 3 observed-influence analysis (experiment E23): counting
    forces information about all of [R] through the root, so its
    influence sets must reach [|R|] — unlike the arrow's. *)
