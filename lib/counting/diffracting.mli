(** Diffracting-tree counter: toggle balancers over a spanning tree.

    The message-passing core of Shavit–Zemach diffracting trees: a
    rooted spanning tree whose interior nodes are {e balancers} — each
    holds a toggle that routes successive descending tokens to
    successive children round-robin — and whose leaves hold local exit
    counters. A request's token climbs to the root, descends through
    the balancers, and the leaf it exits at assigns its count; the
    count then routes back to the origin along tree edges.

    Counts are exact without any waiting: a token carries an
    [(offset, stride)] lane refined at every balancer (child [j] of a
    degree-[d] balancer maps a lane [(o, s)] to [(o + j*s, s*d)]), and
    a leaf's [m]-th exit in lane [(o, s)] is count [o + m*s + 1]. The
    balancer step property — generalised to mixed degrees — makes the
    union over a balancer's children exactly its own lane, so the root
    lane [(0, 1)] hands out exactly [{1..|R|}] for any arrival order.
    In the synchronous engine the "diffraction" is the expanded step
    itself: same-round arrivals at a balancer scatter across distinct
    children in one round instead of serialising (the shared-memory
    prism optimisation folded into the model; there is no separate
    prism array).

    Compared with {!Combining}: no upsweep, so nothing waits for
    sibling subtrees — a token's delay is at most three tree depths
    (up, down, back) plus contention — but every token crosses the
    root, so root congestion grows with [|R|] where the combining tree
    aggregates. Both are [O(depth)] per operation on constant-degree
    trees; which constant wins is measured, not argued — exactly the
    kind of trade the paper's lower bounds say no tree scheme can
    escape. *)

val run :
  ?config:Countq_simnet.Engine.config ->
  ?width:int ->
  tree:Countq_topology.Tree.t ->
  requests:int list ->
  unit ->
  Counts.run_result
(** [run ~tree ~requests ()] executes the one-shot scenario on the
    given rooted spanning tree. The default config uses an expanded
    step of the tree's maximum degree (as {!Combining.run}); [width]
    caps that expanded step instead (the adaptive selection,
    {!Funnel.adaptive_width}, paying only for the fan-in the offered
    concurrency warrants); an explicit [config] overrides both.
    @raise Invalid_argument on out-of-range or duplicate requests. *)

val run_async :
  ?delay:Countq_simnet.Async.delay_model ->
  tree:Countq_topology.Tree.t ->
  requests:int list ->
  unit ->
  Counts.run_result
(** The same protocol under the asynchronous engine. Toggle routing
    depends only on per-balancer arrival order, never on timing
    agreement between balancers, so the count set is exact under
    arbitrary link delays. *)

type checker_state
type checker_msg
(** Abstract internals, exposed for engine-level harnesses. *)

val one_shot_protocol :
  tree:Countq_topology.Tree.t ->
  requests:int list ->
  unit ->
  (checker_state, checker_msg, int * int) Countq_simnet.Engine.protocol
(** The raw protocol value ({!run} without the engine invocation), for
    benchmarks and equivalence harnesses driving several engines. *)
