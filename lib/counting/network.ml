(* Counting-network embedding on the simulator. See network.mli. *)

module Engine = Countq_simnet.Engine
module Route = Countq_simnet.Route
module Graph = Countq_topology.Graph
module Rng = Countq_util.Rng

type placement = { balancer_host : int -> int; output_host : int -> int }

let round_robin_placement ~net ~n ~seed =
  let rng = Rng.create seed in
  let perm = Rng.permutation rng n in
  let balancer_host id = perm.(id mod n) in
  (* Host each output wire where the balancer feeding it lives, so the
     final hop is free whenever possible. *)
  let feeder = Array.make (Bitonic.width net) (-1) in
  Array.iter
    (fun (b : Bitonic.balancer) ->
      (match b.succ_top with
      | Bitonic.To_output w -> feeder.(w) <- b.id
      | Bitonic.To_balancer _ -> ());
      match b.succ_bot with
      | Bitonic.To_output w -> feeder.(w) <- b.id
      | Bitonic.To_balancer _ -> ())
    (Bitonic.balancers net);
  let output_host w =
    if feeder.(w) >= 0 then balancer_host feeder.(w) else w mod n
  in
  { balancer_host; output_host }

let default_width n =
  let cap = min (max 2 n) 64 in
  let rec largest_pow2 p = if p * 2 <= cap then largest_pow2 (p * 2) else p in
  largest_pow2 1

type stage = At_balancer of int | At_output of int

type msg =
  | Token of { origin : int; dest : int; stage : stage }
  | Reply of { dest : int; count : int }

(* Per-node balancer toggles and output-wire exit counters, for the
   balancers and wires hosted at this node. *)
type state = {
  toggles : (int, bool) Hashtbl.t;
  exits : (int, int) Hashtbl.t;
}

type long_lived_outcome = { node : int; seq : int; count : int; delay : int }

type long_lived_result = {
  outcomes : long_lived_outcome list;
  counts_exact : bool;
  rounds : int;
  messages : int;
}

type ll_stage = L_balancer of int | L_output of int

type ll_msg =
  | L_token of { origin : int; seq : int; dest : int; stage : ll_stage }
  | L_reply of { dest : int; seq : int; count : int }

type ll_state = {
  ll_toggles : (int, bool) Hashtbl.t;
  ll_exits : (int, int) Hashtbl.t;
  mutable schedule : int list;  (* remaining issue rounds, sorted *)
  mutable seq_next : int;
}

let run_long_lived ?config ?width ?net ?placement ?route ~graph ~arrivals () =
  let n = Graph.n graph in
  let width, net =
    match (net, width) with
    | Some net, Some w ->
        if Bitonic.width net <> w then
          invalid_arg "Network.run_long_lived: width disagrees with the given net";
        (w, net)
    | Some net, None -> (Bitonic.width net, net)
    | None, Some w -> (w, Bitonic.create ~width:w)
    | None, None ->
        let w = default_width n in
        (w, Bitonic.create ~width:w)
  in
  let placement =
    match placement with
    | Some p -> p
    | None -> round_robin_placement ~net ~n ~seed:0x5eedL
  in
  let route = match route with Some r -> r | None -> Route.auto graph in
  List.iter
    (fun (v, r) ->
      if v < 0 || v >= n then
        invalid_arg "Network.run_long_lived: arrival node out of range";
      if r < 0 then invalid_arg "Network.run_long_lived: negative arrival round")
    arrivals;
  let per_node = Array.make n [] in
  List.iter (fun (v, r) -> per_node.(v) <- r :: per_node.(v)) arrivals;
  Array.iteri (fun v rs -> per_node.(v) <- List.sort compare rs) per_node;
  let issue_time v seq = List.nth per_node.(v) seq in
  let horizon = List.fold_left (fun acc (_, r) -> max acc r) 0 arrivals in
  let config =
    match config with
    | Some c -> { c with Engine.min_rounds = max c.Engine.min_rounds (horizon + 1) }
    | None -> { Engine.default_config with min_rounds = horizon + 1 }
  in
  let balancers = Bitonic.balancers net in
  let stage_of_dest = function
    | Bitonic.To_balancer id -> L_balancer id
    | Bitonic.To_output w -> L_output w
  in
  let host_of = function
    | L_balancer id -> placement.balancer_host id
    | L_output w -> placement.output_host w
  in
  let rec process node (st : ll_state) ~origin ~seq stage =
    match stage with
    | L_balancer id ->
        let fired =
          Option.value (Hashtbl.find_opt st.ll_toggles id) ~default:false
        in
        Hashtbl.replace st.ll_toggles id (not fired);
        let b = balancers.(id) in
        let next = if fired then b.succ_bot else b.succ_top in
        let stage' = stage_of_dest next in
        let host = host_of stage' in
        if host = node then process node st ~origin ~seq stage'
        else
          [
            Engine.Send
              ( Route.next_hop route node host,
                L_token { origin; seq; dest = host; stage = stage' } );
          ]
    | L_output w ->
        let nth = Option.value (Hashtbl.find_opt st.ll_exits w) ~default:0 in
        Hashtbl.replace st.ll_exits w (nth + 1);
        let count = Bitonic.count_of_exit ~width ~wire:w ~nth in
        if origin = node then [ Engine.Complete (origin, seq, count) ]
        else
          [
            Engine.Send
              ( Route.next_hop route node origin,
                L_reply { dest = origin; seq; count } );
          ]
  in
  let inject node (st : ll_state) =
    let seq = st.seq_next in
    st.seq_next <- seq + 1;
    let stage = stage_of_dest (Bitonic.entry net ~wire:((node + seq) mod width)) in
    let host = host_of stage in
    if host = node then process node st ~origin:node ~seq stage
    else
      [
        Engine.Send
          ( Route.next_hop route node host,
            L_token { origin = node; seq; dest = host; stage } );
      ]
  in
  (* Issue every operation scheduled at or before [round]. *)
  let drain_due round node (st : ll_state) =
    let rec go acc =
      match st.schedule with
      | r :: rest when r <= round ->
          st.schedule <- rest;
          go (acc @ inject node st)
      | _ -> acc
    in
    go []
  in
  let protocol =
    {
      Engine.name = "counting-network-long-lived";
      initial_state =
        (fun v ->
          {
            ll_toggles = Hashtbl.create 4;
            ll_exits = Hashtbl.create 2;
            schedule = per_node.(v);
            seq_next = 0;
          });
      on_start = (fun ~node s -> (s, drain_due 0 node s));
      on_receive =
        (fun ~round:_ ~node ~src:_ msg s ->
          match msg with
          | L_token { origin; seq; dest; stage } ->
              if node = dest then (s, process node s ~origin ~seq stage)
              else
                ( s,
                  [
                    Engine.Send
                      ( Route.next_hop route node dest,
                        L_token { origin; seq; dest; stage } );
                  ] )
          | L_reply { dest; seq; count } ->
              if node = dest then (s, [ Engine.Complete (dest, seq, count) ])
              else
                ( s,
                  [
                    Engine.Send
                      ( Route.next_hop route node dest,
                        L_reply { dest; seq; count } );
                  ] ));
      on_tick = Some (fun ~round ~node s -> (s, drain_due round node s));
    }
  in
  let res = Engine.run ~graph ~config ~protocol () in
  let outcomes =
    List.map
      (fun (c : _ Engine.completion) ->
        let node, seq, count = c.value in
        { node; seq; count; delay = c.round - issue_time node seq })
      res.completions
  in
  let m = List.length outcomes in
  let counts_exact =
    List.sort compare (List.map (fun o -> o.count) outcomes)
    = List.init m (fun i -> i + 1)
  in
  { outcomes; counts_exact; rounds = res.rounds; messages = res.messages }

let prepare ?width ?net ?placement ?route ~graph ~requests () =
  let n = Graph.n graph in
  let width, net =
    match (net, width) with
    | Some net, Some w ->
        if Bitonic.width net <> w then
          invalid_arg "Network.run: width disagrees with the given net";
        (w, net)
    | Some net, None -> (Bitonic.width net, net)
    | None, Some w -> (w, Bitonic.create ~width:w)
    | None, None ->
        let w = default_width n in
        (w, Bitonic.create ~width:w)
  in
  let placement =
    match placement with
    | Some p -> p
    | None -> round_robin_placement ~net ~n ~seed:0x5eedL
  in
  let route = match route with Some r -> r | None -> Route.auto graph in
  let requesting = Array.make n false in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Network.run: request out of range";
      if requesting.(v) then invalid_arg "Network.run: duplicate request node";
      requesting.(v) <- true)
    requests;
  let balancers = Bitonic.balancers net in
  let stage_of_dest = function
    | Bitonic.To_balancer id -> At_balancer id
    | Bitonic.To_output w -> At_output w
  in
  let host_of = function
    | At_balancer id -> placement.balancer_host id
    | At_output w -> placement.output_host w
  in
  (* Process a token that has reached the host of [stage]; chases
     through successive stages hosted on the same node without
     messages (local computation is free within a round). *)
  let rec process node st ~origin stage =
    match stage with
    | At_balancer id ->
        let fired = Option.value (Hashtbl.find_opt st.toggles id) ~default:false in
        Hashtbl.replace st.toggles id (not fired);
        let b = balancers.(id) in
        let next = if fired then b.succ_bot else b.succ_top in
        let stage' = stage_of_dest next in
        let host = host_of stage' in
        if host = node then process node st ~origin stage'
        else
          [
            Engine.Send
              (Route.next_hop route node host, Token { origin; dest = host; stage = stage' });
          ]
    | At_output w ->
        let nth = Option.value (Hashtbl.find_opt st.exits w) ~default:0 in
        Hashtbl.replace st.exits w (nth + 1);
        let count = Bitonic.count_of_exit ~width ~wire:w ~nth in
        if origin = node then [ Engine.Complete (origin, count) ]
        else
          [
            Engine.Send
              (Route.next_hop route node origin, Reply { dest = origin; count });
          ]
  in
  let protocol =
    {
      Engine.name = "counting-network";
      initial_state =
        (fun _ -> { toggles = Hashtbl.create 4; exits = Hashtbl.create 2 });
      on_start =
        (fun ~node s ->
          if not requesting.(node) then (s, [])
          else begin
            let stage = stage_of_dest (Bitonic.entry net ~wire:(node mod width)) in
            let host = host_of stage in
            if host = node then (s, process node s ~origin:node stage)
            else
              ( s,
                [
                  Engine.Send
                    ( Route.next_hop route node host,
                      Token { origin = node; dest = host; stage } );
                ] )
          end);
      on_receive =
        (fun ~round:_ ~node ~src:_ msg s ->
          match msg with
          | Token { origin; dest; stage } ->
              if node = dest then (s, process node s ~origin stage)
              else
                ( s,
                  [
                    Engine.Send
                      (Route.next_hop route node dest, Token { origin; dest; stage });
                  ] )
          | Reply { dest; count } ->
              if node = dest then (s, [ Engine.Complete (dest, count) ])
              else
                ( s,
                  [
                    Engine.Send
                      (Route.next_hop route node dest, Reply { dest; count });
                  ] ));
      on_tick = Engine.no_tick;
    }
  in
  protocol

type checker_state = state
type checker_msg = msg

let one_shot_protocol = prepare

let run ?config ?width ?net ?placement ?route ~graph ~requests () =
  let protocol = prepare ?width ?net ?placement ?route ~graph ~requests () in
  let config = Option.value config ~default:Engine.default_config in
  Counts.of_engine ~requests (Engine.run ~graph ~config ~protocol ())
