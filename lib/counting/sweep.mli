(** Token-sweep counter: a token walks an Euler tour of a spanning
    tree, handing out ranks in first-visit (DFS preorder) order.

    The humblest counting algorithm that respects the model: one
    message in flight, one hop per round, no contention anywhere. Its
    total delay is Θ(n·|R|) in the worst case — yet on the list with
    all nodes counting it achieves Σ_i i = n²/2, matching Theorem 3.6's
    Ω(n²) lower bound up to the constant: the bound is {e tight} there,
    and experiment E3 uses this protocol to show it. *)

val euler_walk : Countq_topology.Tree.t -> int array
(** The Euler walk of a tree from its root as a vertex sequence whose
    consecutive entries are tree-adjacent, truncated after the last
    first visit. Exposed for reuse by the fetch&add sweep and for
    property tests (length [<= 2(n-1) + 1], covers every vertex). *)

val run :
  ?config:Countq_simnet.Engine.config ->
  tree:Countq_topology.Tree.t ->
  requests:int list ->
  unit ->
  Counts.run_result
(** [run ~tree ~requests ()] walks the Euler tour of [tree] from its
    root. A requesting node completes (with the next rank) the round
    the token first reaches it; the root completes at time 0. The walk
    stops at the tour's last new vertex. Base-model config by default.
    @raise Invalid_argument on out-of-range or duplicate requests. *)

val run_observed :
  ?config:Countq_simnet.Engine.config ->
  ?plan:Countq_simnet.Faults.plan ->
  metrics:Countq_simnet.Metrics.t ->
  tree:Countq_topology.Tree.t ->
  requests:int list ->
  unit ->
  Counts.run_result
  * Countq_simnet.Span.t list
  * Countq_simnet.Faults.stats option
(** {!run} under full observability: counters into [metrics], a span
    per operation keyed by origin node. The shared token serves every
    operation at once, so no hop belongs to a single operation — spans
    carry injection and completion only (the per-op delay is still
    exact). [plan] optionally injects faults; note a dropped token
    strands the whole sweep. *)

val run_async :
  ?delay:Countq_simnet.Async.delay_model ->
  tree:Countq_topology.Tree.t ->
  requests:int list ->
  unit ->
  Counts.run_result
(** The same walk under asynchronous link delays: the token's visit
    order — and therefore the rank assignment — is timing-independent,
    so the count set survives any delay model. *)

type checker_state
type checker_msg
(** Abstract internals, exposed for engine-level harnesses. *)

val one_shot_protocol :
  tree:Countq_topology.Tree.t ->
  requests:int list ->
  unit ->
  (checker_state, checker_msg, int * int) Countq_simnet.Engine.protocol
(** The raw protocol value ({!run} without the engine invocation), for
    benchmarks and equivalence harnesses that need to drive the same
    protocol through several engines; completions are [(node, count)]
    pairs — validate with {!Counts.validate}. *)
