(** Combining-tree counter: upsweep/downsweep rank assignment.

    The classic software-combining scheme: a rooted spanning tree is
    fixed at initialisation; each node reports the number of requests
    in its subtree to its parent (upsweep), the root then assigns each
    subtree a contiguous range of ranks which is split on the way back
    down (downsweep). Ranks come out in DFS order, so the counts are
    exactly [{1..|R|}].

    On a constant-degree tree of depth [d] the per-operation delay is
    [O(d)] plus serialisation, giving total delay [O(n log n)] on a
    balanced binary spanning tree — the strongest practical counting
    upper bound in this repository, and still asymptotically above the
    arrow protocol's [O(n)] on the same topologies, as the paper's
    separation theorems predict. *)

val run :
  ?config:Countq_simnet.Engine.config ->
  tree:Countq_topology.Tree.t ->
  requests:int list ->
  unit ->
  Counts.run_result
(** [run ~tree ~requests ()] executes the one-shot scenario on the
    given rooted spanning tree. The default config uses an expanded
    step of the tree's maximum degree, mirroring the courtesy Section 4
    extends to tree protocols; pass [config] to force the base model.
    @raise Invalid_argument on out-of-range or duplicate requests. *)

val run_async :
  ?delay:Countq_simnet.Async.delay_model ->
  tree:Countq_topology.Tree.t ->
  requests:int list ->
  unit ->
  Counts.run_result
(** The same protocol under the asynchronous engine: the upsweep waits
    for every child regardless of message timing, so the DFS ranks —
    and therefore the exact count set — survive arbitrary link
    delays. *)

type checker_state
type checker_msg
(** Abstract internals, exposed for engine-level harnesses. *)

val one_shot_protocol :
  tree:Countq_topology.Tree.t ->
  requests:int list ->
  unit ->
  (checker_state, checker_msg, int * int) Countq_simnet.Engine.protocol
(** The raw protocol value ({!run} without the engine invocation), for
    benchmarks and equivalence harnesses that need to drive the same
    protocol through several engines. Remember {!run}'s default config
    expands the step to the tree's maximum degree; callers driving the
    engine directly must choose a config themselves. *)
