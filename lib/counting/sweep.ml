(* Token-sweep counter (Euler-tour walk). See sweep.mli. *)

module Engine = Countq_simnet.Engine
module Async = Countq_simnet.Async
module Tree = Countq_topology.Tree

(* The Euler walk of [tree] from its root as a vertex sequence in which
   consecutive vertices are tree-adjacent, truncated after the last
   first visit (the tail of pure backtracking is pointless). *)
let euler_walk tree =
  let n = Tree.n tree in
  let walk = ref [] in
  let push v = walk := v :: !walk in
  (* Iterative DFS with explicit backtracking so deep lists are safe. *)
  let next_child = Array.make n 0 in
  let v = ref (Tree.root tree) in
  push !v;
  let finished = ref false in
  while not !finished do
    let children = Tree.children tree !v in
    if next_child.(!v) < Array.length children then begin
      let c = children.(next_child.(!v)) in
      next_child.(!v) <- next_child.(!v) + 1;
      v := c;
      push c
    end
    else if !v = Tree.root tree then finished := true
    else begin
      v := Tree.parent tree !v;
      push !v
    end
  done;
  let seq = Array.of_list (List.rev !walk) in
  (* Truncate after the last first visit. *)
  let seen = Array.make n false in
  let last_new = ref 0 in
  Array.iteri
    (fun i u ->
      if not seen.(u) then begin
        seen.(u) <- true;
        last_new := i
      end)
    seq;
  Array.sub seq 0 (!last_new + 1)

let make_protocol ~tree ~requesting =
  let n = Tree.n tree in
  let walk = euler_walk tree in
  (* Rank of each requester = its position among requesters in
     first-visit order; computed during free initialisation. *)
  let rank = Array.make n 0 in
  let seen = Array.make n false in
  let next_rank = ref 0 in
  Array.iter
    (fun v ->
      if not seen.(v) then begin
        seen.(v) <- true;
        if requesting.(v) then begin
          incr next_rank;
          rank.(v) <- !next_rank
        end
      end)
    walk;
  let first_visit = Array.make n (-1) in
  Array.iteri
    (fun i v -> if first_visit.(v) < 0 then first_visit.(v) <- i)
    walk;
  let steps = Array.length walk in
  (* The token message carries its walk index. *)
  let actions_at node i =
    let complete =
      if requesting.(node) && first_visit.(node) = i then
        [ Engine.Complete (node, rank.(node)) ]
      else []
    in
    let forward =
      if i + 1 < steps then [ Engine.Send (walk.(i + 1), i + 1) ] else []
    in
    complete @ forward
  in
  {
    Engine.name = "token-sweep";
    initial_state = (fun _ -> ());
    on_start =
      (fun ~node s ->
        if node = Tree.root tree then (s, actions_at node 0) else (s, []));
    on_receive = (fun ~round:_ ~node ~src:_ i s -> (s, actions_at node i));
    on_tick = Engine.no_tick;
  }

let prepare ~tree ~requests name =
  let n = Tree.n tree in
  let requesting = Array.make n false in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg (name ^ ": request out of range");
      if requesting.(v) then invalid_arg (name ^ ": duplicate request node");
      requesting.(v) <- true)
    requests;
  make_protocol ~tree ~requesting

type checker_state = unit
type checker_msg = int

let one_shot_protocol ~tree ~requests () =
  prepare ~tree ~requests "Sweep.one_shot_protocol"

let run ?config ~tree ~requests () =
  let protocol = prepare ~tree ~requests "Sweep.run" in
  let config = Option.value config ~default:Engine.default_config in
  let graph = Tree.to_graph tree in
  Counts.of_engine ~requests (Engine.run ~graph ~config ~protocol ())

let run_observed ?config ?plan ~metrics ~tree ~requests () =
  let protocol = prepare ~tree ~requests "Sweep.run_observed" in
  (* The token serves every operation at once, so no message maps to a
     single op: spans carry injection and completion only. *)
  let protocol, spans =
    Countq_simnet.Span.instrument
      ~injects:(List.map (fun v -> (v, 0)) requests)
      ~op_of_msg:(fun (_ : int) -> None)
      ~op_of_completion:(fun ((node, _) : int * int) -> Some node)
      protocol
  in
  let config = Option.value config ~default:Engine.default_config in
  let graph = Tree.to_graph tree in
  let faults = Option.map Countq_simnet.Faults.start plan in
  let result =
    Counts.of_engine ~requests
      (Engine.run ?faults ~metrics ~graph ~config ~protocol ())
  in
  (result, spans (), Option.map Countq_simnet.Faults.stats faults)

let run_async ?(delay = Async.Constant 1) ~tree ~requests () =
  let protocol = prepare ~tree ~requests "Sweep.run_async" in
  let graph = Tree.to_graph tree in
  Counts.of_async ~requests (Async.run ~graph ~delay ~protocol ())
