(* Combining-funnel counter. See funnel.mli. *)

module Engine = Countq_simnet.Engine
module Event_engine = Countq_simnet.Event_engine
module Shard = Countq_simnet.Shard
module Async = Countq_simnet.Async
module Tree = Countq_topology.Tree
module Implicit = Countq_topology.Implicit

type msg =
  | Up of int  (** combined subtree total climbing to the parent. *)
  | Down of int  (** assigned range base descending for decombination. *)

type contrib = Own | Child of { child : int; count : int }

type state = {
  got : int;  (** on-path children heard from so far. *)
  total : int;  (** combined batch total so far. *)
  batch : contrib list;  (** contributions, reverse arrival order. *)
}

let initial = { got = 0; total = 0; batch = [] }

(* Per-node closure entry, read-only once built: [expected] is the
   number of on-path children (the combining window — a node's batch is
   complete exactly when that many [Up]s have arrived), [requester]
   whether the node contributes an increment of its own. *)
type info = { mutable expected : int; mutable requester : bool }

(* The on-path closure: every requester plus all its ancestors, built
   by walking [parent] up from each request. Only these nodes ever hold
   funnel state or see a message, so the table (not the tree) bounds
   the live footprint — 10^6-node trees with a handful of requesters
   touch a handful of nodes. Also validates the request list. *)
let closure ~name ~n ~root ~parent ~requests =
  let tbl = Hashtbl.create ((4 * List.length requests) + 16) in
  let rec ensure v =
    match Hashtbl.find_opt tbl v with
    | Some i -> i
    | None ->
        let i = { expected = 0; requester = false } in
        Hashtbl.add tbl v i;
        if v <> root then begin
          let p = parent v in
          if p < 0 || p >= n || p = v then
            invalid_arg (name ^ ": parent walk left the vertex range");
          let pi = ensure p in
          pi.expected <- pi.expected + 1
        end;
        i
  in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg (name ^ ": request out of range");
      let i = ensure v in
      if i.requester then invalid_arg (name ^ ": duplicate request node");
      i.requester <- true)
    requests;
  tbl

(* Decombine a completed batch: hand each contribution, in arrival
   order, the next contiguous sub-range of [[base+1, base+total]]. An
   own increment takes one count and completes at [v]; a child's
   combined block of [count] descends as a fresh [Down]. The recursion
   bottoms out at leaves, so a root lane of [(0, |R|)] decombines into
   exactly {1..|R|} for any arrival order. *)
let hand_down v base batch =
  let acts, _ =
    List.fold_left
      (fun (acts, b) c ->
        match c with
        | Own -> (Engine.Complete (v, b + 1) :: acts, b + 1)
        | Child { child; count } ->
            (Engine.Send (child, Down b) :: acts, b + count))
      ([], base) batch
  in
  List.rev acts

let make_protocol ~info_of ~root ~parent =
  (* A node's batch is complete when every on-path child has reported
     and (for requesters) its own increment joined at time 0 — engines
     run [on_start] before any delivery, so by the last [Up] the own
     contribution is already in the batch. Interior nodes forward one
     combined [Up]; the root starts the downsweep directly. *)
  let flush v st =
    if v = root then (initial, hand_down v 0 (List.rev st.batch))
    else (st, [ Engine.Send (parent v, Up st.total) ])
  in
  {
    Engine.name = "combining-funnel";
    initial_state = (fun _ -> initial);
    on_start =
      (fun ~node s ->
        match info_of node with
        | Some i when i.requester ->
            let s = { s with total = s.total + 1; batch = Own :: s.batch } in
            if s.got = i.expected then flush node s else (s, [])
        | _ -> (s, []));
    on_receive =
      (fun ~round:_ ~node ~src msg s ->
        match msg with
        | Up count ->
            let s =
              {
                got = s.got + 1;
                total = s.total + count;
                batch = Child { child = src; count } :: s.batch;
              }
            in
            let i =
              match info_of node with
              | Some i -> i
              | None -> invalid_arg "Funnel: Up delivered off the closure"
            in
            if s.got = i.expected then flush node s else (s, [])
        | Down base ->
            (* Reset to the initial state after decombining — the event
               engine reclaims quiescent nodes, so a finished funnel
               leaves no residue behind the wavefront. *)
            (initial, hand_down node base (List.rev s.batch)));
    on_tick = Engine.no_tick;
  }

let adaptive_width ~n ~concurrency =
  let c = max 1 concurrency in
  let w = 1 + int_of_float (Float.sqrt (float_of_int c)) in
  min (max 2 (min 64 w)) (max 2 (n - 1))

let prepare_tree ~tree ~requests name =
  let n = Tree.n tree in
  let root = Tree.root tree in
  let parent v = Tree.parent tree v in
  let tbl = closure ~name ~n ~root ~parent ~requests in
  make_protocol ~info_of:(Hashtbl.find_opt tbl) ~root ~parent

let prepare_implicit ~topo ~requests name =
  let arity =
    match Implicit.tree_arity topo with
    | Some a -> a
    | None -> invalid_arg (name ^ ": topology is not an implicit tree family")
  in
  let n = Implicit.n topo in
  let parent v = (v - 1) / arity in
  let tbl = closure ~name ~n ~root:0 ~parent ~requests in
  make_protocol ~info_of:(Hashtbl.find_opt tbl) ~root:0 ~parent

type checker_state = state
type checker_msg = msg

let one_shot_protocol ~tree ~requests () =
  prepare_tree ~tree ~requests "Funnel.one_shot_protocol"

let implicit_protocol ~topo ~requests () =
  prepare_implicit ~topo ~requests "Funnel.implicit_protocol"

(* Explicit config > caller-chosen width > adaptive width, always
   capped by the tree's actual maximum degree. *)
let default_config ?width ~max_degree ~n ~requests () =
  let w =
    match width with
    | Some w -> w
    | None -> adaptive_width ~n ~concurrency:(List.length requests)
  in
  Engine.config_with_capacity (max 1 (min max_degree w))

let run ?config ?width ~tree ~requests () =
  let protocol = prepare_tree ~tree ~requests "Funnel.run" in
  let config =
    match config with
    | Some c -> c
    | None ->
        default_config ?width ~max_degree:(Tree.max_degree tree)
          ~n:(Tree.n tree) ~requests ()
  in
  let graph = Tree.to_graph tree in
  Counts.of_engine ~requests (Engine.run ~graph ~config ~protocol ())

let run_async ?(delay = Async.Constant 1) ~tree ~requests () =
  let protocol = prepare_tree ~tree ~requests "Funnel.run_async" in
  let graph = Tree.to_graph tree in
  Counts.of_async ~requests (Async.run ~graph ~delay ~protocol ())

let run_implicit ?config ?width ?shards ?pool ?stats ~topo ~requests () =
  let protocol = prepare_implicit ~topo ~requests "Funnel.run_implicit" in
  let config =
    match config with
    | Some c -> c
    | None ->
        default_config ?width ~max_degree:(Implicit.max_degree topo)
          ~n:(Implicit.n topo) ~requests ()
  in
  let starters = List.sort compare requests in
  let res =
    match shards with
    | Some s when s >= 2 ->
        Shard.run_implicit ~shards:s ?pool ?stats ~starters ~topo ~config
          ~protocol ()
    | _ -> Event_engine.run ?stats ~starters ~topo ~config ~protocol ()
  in
  Counts.of_engine ~requests res
