(* Totally ordered multicast, both ways. See ordered.mli. *)

module Engine = Countq_simnet.Engine
module Graph = Countq_topology.Graph
module Bfs = Countq_topology.Bfs
module Spanning = Countq_topology.Spanning
module Counting = Countq_counting
module Arrow = Countq_arrow
module Queuing = Countq_queuing

type scheme =
  | Via_counting of [ `Central | `Combining | `Network ]
  | Via_queuing of [ `Arrow | `Central ]

let pp_scheme ppf = function
  | Via_counting `Central -> Format.pp_print_string ppf "counting/central"
  | Via_counting `Combining -> Format.pp_print_string ppf "counting/combining"
  | Via_counting `Network -> Format.pp_print_string ppf "counting/network"
  | Via_queuing `Arrow -> Format.pp_print_string ppf "queuing/arrow"
  | Via_queuing `Central -> Format.pp_print_string ppf "queuing/central"

type message_stat = { sender : int; position : int; coordination_done : int }

type result = {
  scheme : scheme;
  messages : message_stat list;
  coordination_total : int;
  coordination_makespan : int;
  dissemination_rounds : int;
  total_delivery_latency : int;
  max_delivery_latency : int;
  mean_delivery_latency : float;
  network_messages : int;
}

(* Coordination phase: every sender learns its 1-based position in the
   agreed order and the (normalised) round at which it learned it.
   Returns (stats sorted by position, message count). *)
let coordinate ~seed ~graph ~senders scheme =
  match scheme with
  | Via_counting protocol ->
      let run =
        match protocol with
        | `Central -> Counting.Central.run ~graph ~requests:senders ()
        | `Combining ->
            let tree = Spanning.bfs graph ~root:0 in
            Counting.Combining.run ~tree ~requests:senders ()
        | `Network -> Counting.Network.run ~graph ~requests:senders ()
      in
      (match run.valid with
      | Error e ->
          invalid_arg
            (Format.asprintf "Ordered.run: counting protocol failed: %a"
               Counting.Counts.pp_error e)
      | Ok () -> ());
      ignore seed;
      let stats =
        List.map
          (fun (o : Counting.Counts.outcome) ->
            {
              sender = o.node;
              position = o.count;
              coordination_done = o.round * run.expansion;
            })
          run.outcomes
      in
      (List.sort (fun a b -> compare a.position b.position) stats, run.messages)
  | Via_queuing protocol ->
      let run =
        match protocol with
        | `Arrow ->
            let tree = Spanning.best_for_arrow graph in
            Arrow.Protocol.run_one_shot ~tree ~notify:true ~requests:senders ()
        | `Central -> Queuing.Central_queue.run ~graph ~requests:senders ()
      in
      let order =
        match run.order with
        | Ok ops -> ops
        | Error e ->
            invalid_arg
              (Format.asprintf "Ordered.run: queuing protocol failed: %a"
                 Arrow.Order.pp_error e)
      in
      let delay_of = Hashtbl.create 16 in
      List.iter
        (fun (o : Arrow.Types.outcome) ->
          Hashtbl.replace delay_of o.op.origin (o.round * run.expansion))
        run.outcomes;
      let stats =
        List.mapi
          (fun i (op : Arrow.Types.op) ->
            {
              sender = op.origin;
              position = i + 1;
              coordination_done = Hashtbl.find delay_of op.origin;
            })
          order
      in
      (stats, run.messages)

type flood_msg = { sidx : int }

(* Dissemination phase: sender [i] floods over a BFS tree rooted at
   itself, starting the round after its coordination completed. The
   result maps (sender index, receiver) to the arrival round. *)
let disseminate ~graph ~senders ~starts =
  let n = Graph.n graph in
  let k = Array.length senders in
  let children =
    Array.map
      (fun s ->
        let parent = Bfs.parents graph s in
        let kids = Array.make n [] in
        Array.iteri (fun v p -> if v <> s && p <> v then kids.(p) <- v :: kids.(p)) parent;
        Array.iteri
          (fun v p ->
            if v <> s && p = v then
              invalid_arg "Ordered.disseminate: disconnected graph")
          parent;
        kids)
      senders
  in
  let forward sidx v = List.map (fun c -> Engine.Send (c, { sidx })) children.(sidx).(v) in
  let begin_flood node sidx = Engine.Complete sidx :: forward sidx node in
  let horizon = Array.fold_left max 0 starts in
  let protocol =
    {
      Engine.name = "ordered-multicast-flood";
      initial_state = (fun _ -> ());
      on_start =
        (fun ~node s ->
          let actions = ref [] in
          Array.iteri
            (fun sidx sender ->
              if sender = node && starts.(sidx) = 0 then
                actions := begin_flood node sidx @ !actions)
            senders;
          (s, !actions));
      on_receive =
        (fun ~round:_ ~node ~src:_ { sidx } s ->
          (s, Engine.Complete sidx :: forward sidx node));
      on_tick =
        Some
          (fun ~round ~node s ->
            let actions = ref [] in
            Array.iteri
              (fun sidx sender ->
                if sender = node && starts.(sidx) = round then
                  actions := begin_flood node sidx @ !actions)
              senders;
            (s, !actions));
    }
  in
  let config = { Engine.default_config with min_rounds = horizon + 1 } in
  let res = Engine.run ~graph ~config ~protocol () in
  let arrival = Array.make_matrix k n (-1) in
  List.iter
    (fun (c : _ Engine.completion) ->
      let sidx, receiver = (c.value, c.node) in
      arrival.(sidx).(receiver) <- c.round)
    res.completions;
  (arrival, res.rounds, res.messages)

let run ?(seed = 0x6a11L) ~graph ~senders scheme =
  let n = Graph.n graph in
  let seen = Array.make n false in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Ordered.run: sender out of range";
      if seen.(v) then invalid_arg "Ordered.run: duplicate sender";
      seen.(v) <- true)
    senders;
  let stats, coord_msgs = coordinate ~seed ~graph ~senders scheme in
  let senders_in_order = Array.of_list (List.map (fun s -> s.sender) stats) in
  let starts = Array.of_list (List.map (fun s -> s.coordination_done) stats) in
  let arrival, dissemination_rounds, flood_msgs =
    disseminate ~graph ~senders:senders_in_order ~starts
  in
  let k = Array.length senders_in_order in
  (* In-order delivery: message i delivers at receiver r once it and all
     earlier-ordered messages have arrived. *)
  let total = ref 0 and maxd = ref 0 in
  for r = 0 to n - 1 do
    let frontier = ref 0 in
    for i = 0 to k - 1 do
      frontier := max !frontier arrival.(i).(r);
      total := !total + !frontier;
      maxd := max !maxd !frontier
    done
  done;
  let coordination_total =
    List.fold_left (fun acc s -> acc + s.coordination_done) 0 stats
  in
  let coordination_makespan =
    List.fold_left (fun acc s -> max acc s.coordination_done) 0 stats
  in
  {
    scheme;
    messages = stats;
    coordination_total;
    coordination_makespan;
    dissemination_rounds;
    total_delivery_latency = !total;
    max_delivery_latency = !maxd;
    mean_delivery_latency =
      (if k = 0 || n = 0 then 0.
       else float_of_int !total /. float_of_int (k * n));
    network_messages = coord_msgs + flood_msgs;
  }
