(* Implicit topology families. See implicit.mli. *)

type family =
  | List of int
  | Ring of int
  | Grid of {
      wrap : bool;
      sides : int array;
      stride : int array;  (* row-major, like Gen.strides *)
      total : int;
    }
  | Tree of { arity : int; total : int }
  | Materialised of {
      g : Graph.t;
      (* BFS predecessor tree per queried destination, memoised:
         [parents.(u)] is the neighbour of [u] one hop closer to the
         destination. *)
      routes : (int, int array) Hashtbl.t;
    }

type t = { label : string; fam : family }

let label t = t.label

let n t =
  match t.fam with
  | List n | Ring n -> n
  | Grid { total; _ } | Tree { total; _ } -> total
  | Materialised { g; _ } -> Graph.n g

(* ------------------------------------------------------------------ *)
(* Constructors.                                                       *)

let list n =
  if n < 1 then invalid_arg "Implicit.list: n must be >= 1";
  { label = Printf.sprintf "list-%d" n; fam = List n }

let ring n =
  if n < 3 then invalid_arg "Implicit.ring: n must be >= 3";
  { label = Printf.sprintf "ring-%d" n; fam = Ring n }

let grid ~wrap ~dims =
  if dims = [] then invalid_arg "Implicit.mesh: empty dimension list";
  List.iter
    (fun d -> if d < 1 then invalid_arg "Implicit.mesh: side must be >= 1")
    dims;
  let sides = Array.of_list dims in
  let k = Array.length sides in
  let stride = Array.make k 1 in
  for i = k - 2 downto 0 do
    stride.(i) <- stride.(i + 1) * sides.(i + 1)
  done;
  let total = Array.fold_left ( * ) 1 sides in
  let name = if wrap then "torus" else "mesh" in
  let dims_label = String.concat "x" (List.map string_of_int dims) in
  {
    label = Printf.sprintf "%s-%s" name dims_label;
    fam = Grid { wrap; sides; stride; total };
  }

let mesh ~dims = grid ~wrap:false ~dims
let torus ~dims = grid ~wrap:true ~dims

let tree ?(arity = 2) n =
  if arity < 1 then invalid_arg "Implicit.tree: arity must be >= 1";
  if n < 1 then invalid_arg "Implicit.tree: n must be >= 1";
  { label = Printf.sprintf "tree-%d-%d" arity n; fam = Tree { arity; total = n } }

let tree_arity t =
  match t.fam with Tree { arity; _ } -> Some arity | _ -> None

let of_graph ?label g =
  let label =
    match label with Some l -> l | None -> Printf.sprintf "graph-%d" (Graph.n g)
  in
  { label; fam = Materialised { g; routes = Hashtbl.create 4 } }

(* ------------------------------------------------------------------ *)
(* Neighbourhoods. Each family lists a vertex's neighbours in ascending
   order, matching the sorted adjacency its Gen twin materialises.     *)

let check_vertex who total v =
  if v < 0 || v >= total then
    invalid_arg (Printf.sprintf "Implicit.%s: vertex %d out of range" who v)

(* Neighbour candidates of [v] along grid dimension [i], in ascending
   order. Mirrors Gen.mesh_like: wrap edges only on sides > 2 (a side-2
   wrap would duplicate the existing edge). *)
let grid_dim_neighbors ~wrap ~sides ~stride v i acc =
  let side = sides.(i) and st = stride.(i) in
  let coord = v / st mod side in
  let acc = if coord > 0 then (v - st) :: acc else acc in
  let acc =
    if wrap && side > 2 && coord = 0 then (v + ((side - 1) * st)) :: acc
    else acc
  in
  let acc = if coord + 1 < side then (v + st) :: acc else acc in
  let acc =
    if wrap && side > 2 && coord = side - 1 then (v - (coord * st)) :: acc
    else acc
  in
  acc

let neighbors t v =
  match t.fam with
  | List n ->
      check_vertex "neighbors" n v;
      if n = 1 then [||]
      else if v = 0 then [| 1 |]
      else if v = n - 1 then [| n - 2 |]
      else [| v - 1; v + 1 |]
  | Ring n ->
      check_vertex "neighbors" n v;
      let a = (v + n - 1) mod n and b = (v + 1) mod n in
      if a < b then [| a; b |] else [| b; a |]
  | Grid { wrap; sides; stride; total } ->
      check_vertex "neighbors" total v;
      let acc = ref [] in
      for i = Array.length sides - 1 downto 0 do
        acc := grid_dim_neighbors ~wrap ~sides ~stride v i !acc
      done;
      let a = Array.of_list (List.sort_uniq compare !acc) in
      a
  | Tree { arity; total } ->
      check_vertex "neighbors" total v;
      let first_child = (v * arity) + 1 in
      let last_child = min (total - 1) (v * arity + arity) in
      let kids = max 0 (last_child - first_child + 1) in
      if v = 0 then Array.init kids (fun i -> first_child + i)
      else
        Array.init (kids + 1) (fun i ->
            if i = 0 then (v - 1) / arity else first_child + i - 1)
  | Materialised { g; _ } ->
      check_vertex "neighbors" (Graph.n g) v;
      Array.copy (Graph.neighbors g v)

let degree t v =
  match t.fam with
  | List n ->
      check_vertex "degree" n v;
      if n = 1 then 0 else if v = 0 || v = n - 1 then 1 else 2
  | Ring n ->
      check_vertex "degree" n v;
      2
  | Grid { wrap; sides; stride; total } ->
      check_vertex "degree" total v;
      let d = ref 0 in
      for i = 0 to Array.length sides - 1 do
        let side = sides.(i) in
        let coord = v / stride.(i) mod side in
        if coord > 0 then incr d;
        if coord + 1 < side then incr d;
        if wrap && side > 2 && (coord = 0 || coord = side - 1) then incr d
      done;
      !d
  | Tree { arity; total } ->
      check_vertex "degree" total v;
      let first_child = (v * arity) + 1 in
      let last_child = min (total - 1) (v * arity + arity) in
      let kids = max 0 (last_child - first_child + 1) in
      if v = 0 then kids else kids + 1
  | Materialised { g; _ } -> Graph.degree g v

let max_degree t =
  match t.fam with
  | List n -> if n <= 1 then 0 else if n = 2 then 1 else 2
  | Ring _ -> 2
  | Grid { sides; _ } ->
      (* Per dimension: an interior (or any torus) vertex has 2 links on
         a side >= 3, side 2 gives a single link, side 1 none — the same
         count whether the extremal links are wraps or not. *)
      Array.fold_left
        (fun acc side ->
          acc + if side >= 3 then 2 else if side = 2 then 1 else 0)
        0 sides
  | Tree { total; _ } ->
      (* Degrees only shrink with the index past v = 1 (parents keep
         full broods longest near the root), so the maximum is at the
         root or its first child. *)
      if total = 1 then 0
      else max (degree t 0) (degree t 1)
  | Materialised { g; _ } -> Graph.max_degree g

let neighbor t v k =
  let a = neighbors t v in
  if k < 0 || k >= Array.length a then
    invalid_arg
      (Printf.sprintf "Implicit.neighbor: slot %d out of range for vertex %d" k v);
  a.(k)

(* ------------------------------------------------------------------ *)
(* Greedy shortest-path routing.                                       *)

let bfs_parents g ~dst =
  let n = Graph.n g in
  let parent = Array.make n (-1) in
  parent.(dst) <- dst;
  let q = Queue.create () in
  Queue.push dst q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun w ->
        if parent.(w) < 0 then begin
          parent.(w) <- u;
          Queue.push w q
        end)
      (Graph.neighbors g u)
  done;
  parent.(dst) <- -1;
  parent

let next_hop t ~src ~dst =
  let total = n t in
  check_vertex "next_hop" total src;
  check_vertex "next_hop" total dst;
  if src = dst then invalid_arg "Implicit.next_hop: src = dst";
  match t.fam with
  | List _ -> if dst > src then src + 1 else src - 1
  | Ring n ->
      let fwd = (dst - src + n) mod n in
      if 2 * fwd <= n then (src + 1) mod n else (src + n - 1) mod n
  | Grid { wrap; sides; stride; _ } ->
      (* Correct the lowest differing dimension; on a wrapped side go
         the shorter way round (ties to the positive direction). *)
      let k = Array.length sides in
      let rec fix i =
        if i >= k then invalid_arg "Implicit.next_hop: src = dst"
        else
          let side = sides.(i) and st = stride.(i) in
          let sc = src / st mod side and dc = dst / st mod side in
          if sc = dc then fix (i + 1)
          else if not (wrap && side > 2) then
            if dc > sc then src + st else src - st
          else
            let fwd = (dc - sc + side) mod side in
            if 2 * fwd <= side then
              if sc + 1 = side then src - (sc * st) else src + st
            else if sc = 0 then src + ((side - 1) * st)
            else src - st
      in
      fix 0
  | Tree { arity; _ } ->
      (* BFS numbering means every ancestor has a smaller index: climb
         from [dst]; if the walk lands on [src], [dst] is in [src]'s
         subtree and the last step is the child to take, otherwise the
         route goes through [src]'s parent. *)
      let rec climb a prev = if a <= src then (a, prev) else climb ((a - 1) / arity) a in
      let a, prev = climb dst dst in
      if a = src then prev else (src - 1) / arity
  | Materialised { g; routes } ->
      let parent =
        match Hashtbl.find_opt routes dst with
        | Some p -> p
        | None ->
            let p = bfs_parents g ~dst in
            Hashtbl.add routes dst p;
            p
      in
      if parent.(src) < 0 then
        invalid_arg
          (Printf.sprintf "Implicit.next_hop: %d unreachable from %d" dst src);
      parent.(src)

(* ------------------------------------------------------------------ *)
(* Materialisation and parsing.                                        *)

let materialise t =
  match t.fam with
  | Materialised { g; _ } -> g
  | _ -> Graph.of_adjacency (Array.init (n t) (neighbors t))

let err fmt = Printf.ksprintf (fun m -> Error (`Msg m)) fmt

(* Ceiling on parsed node counts. Implicit families themselves are
   O(1) memory at any size, but everything downstream of a spec — the
   sharded engine's dense state, partitions, load calendars — sizes
   something O(n), so a spec like [torus:100000x100000x100000] (10^15
   nodes) must be refused here with a real message instead of failing
   much later with a confusing allocation error. The product is folded
   with an overflow guard so it cannot wrap on the way to the check. *)
let max_spec_nodes = 1 lsl 30

let dims_product dims =
  List.fold_left
    (fun acc d ->
      match acc with
      | None -> None
      | Some p -> if d > 0 && p <= max_spec_nodes / d then Some (p * d) else None)
    (Some 1) dims

let parse spec =
  let spec = String.lowercase_ascii (String.trim spec) in
  let name, arg =
    match String.index_opt spec ':' with
    | None -> (spec, None)
    | Some i ->
        ( String.sub spec 0 i,
          Some (String.sub spec (i + 1) (String.length spec - i - 1)) )
  in
  let size =
    match arg with
    | None -> Ok (`N 1024)
    | Some s when String.contains s ':' -> (
        match List.filter_map int_of_string_opt (String.split_on_char ':' s) with
        | [ a; n ] when a >= 1 && n >= 1 ->
            if n > max_spec_nodes then
              err "%s: size %d exceeds the %d-node spec ceiling" name n
                max_spec_nodes
            else Ok (`Pair (a, n))
        | _ -> err "%s: bad arity:size pair %S" name s)
    | Some s when String.contains s 'x' -> (
        let parts = String.split_on_char 'x' s in
        let dims = List.filter_map int_of_string_opt parts in
        if List.length dims = List.length parts && List.for_all (fun d -> d >= 1) dims
        then
          match dims_product dims with
          | Some _ -> Ok (`Dims dims)
          | None ->
              err "%s: dimension product %s exceeds the %d-node spec ceiling"
                name s max_spec_nodes
        else err "%s: bad dimension list %S" name s)
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n >= 1 ->
            if n > max_spec_nodes then
              err "%s: size %d exceeds the %d-node spec ceiling" name n
                max_spec_nodes
            else Ok (`N n)
        | _ -> err "%s: size %S is not a positive integer" name s)
  in
  match size with
  | Error e -> Error e
  | Ok size -> (
      let square of_dims n =
        let s = max 1 (int_of_float (Float.round (sqrt (float_of_int n)))) in
        of_dims [ s; s ]
      in
      match (name, size) with
      | ("list" | "path"), `N n -> Ok (list n)
      | ("list" | "path"), `Dims _ -> err "list: takes a length, not dimensions"
      | ("ring" | "cycle"), `N n -> Ok (ring (max 3 n))
      | ("ring" | "cycle"), `Dims _ -> err "ring: takes a length, not dimensions"
      | "mesh", `N n -> Ok (square (fun dims -> mesh ~dims) n)
      | "mesh", `Dims dims -> Ok (mesh ~dims)
      | "torus", `N n ->
          let s = max 3 (int_of_float (Float.round (sqrt (float_of_int n)))) in
          Ok (torus ~dims:[ s; s ])
      | "torus", `Dims dims ->
          if List.exists (fun d -> d < 3) dims then
            err "torus: every side must be >= 3"
          else Ok (torus ~dims)
      | ("tree" | "binary-tree"), `N n -> Ok (tree ~arity:2 n)
      | ("tree" | "binary-tree"), `Pair (arity, n) -> Ok (tree ~arity n)
      | ("tree" | "binary-tree"), `Dims _ -> err "tree: takes a size, not dimensions"
      | _, `Pair _ -> err "%s: arity:size is only for tree" name
      | other, _ ->
          err "unknown implicit topology %S (try: list, ring, mesh, torus, tree)"
            other)
