(** Node-set partitions for domain-sharded execution.

    {!Countq_simnet}'s sharded engine splits one run across OCaml
    domains by assigning every node to exactly one shard; cross-shard
    messages are exchanged at a per-round barrier. The partition is
    pure bookkeeping — any assignment yields a bit-identical result —
    but the {e edge cut} decides how much traffic crosses the barrier,
    so the two constructors trade generality for cut quality:
    {!contiguous} for the implicit families (index-local neighbour
    structure makes ranges near-optimal, and nothing needs the
    adjacency), {!greedy} for materialised graphs (deterministic
    BFS-grown regions keep most edges internal on meshes and trees).

    Empty shards are legal ([shards > n] simply leaves the tail empty);
    singleton shards are legal; both are exercised by the partition
    edge-case tests. *)

type t = {
  label : string;  (** ["contiguous"] or ["greedy"]. *)
  shards : int;  (** Number of shards, >= 1 (some may be empty). *)
  owner : int array;  (** [owner.(v)] is the shard of node [v]. *)
  members : int array array;
      (** [members.(s)] lists shard [s]'s nodes in ascending order. *)
}

val contiguous : n:int -> shards:int -> t
(** Split [0 .. n-1] into [shards] contiguous ranges whose sizes differ
    by at most one (the first [n mod shards] ranges get the extra
    node). When [shards > n] the trailing shards are empty.
    @raise Invalid_argument if [n < 0] or [shards < 1]. *)

val greedy : graph:Graph.t -> shards:int -> t
(** Deterministic greedy edge-cut partition: regions of [ceil n/shards]
    nodes grown breadth-first from the lowest-id unassigned seed,
    preferring unassigned neighbours (so regions follow the graph's
    locality); a region whose frontier empties on a disconnected graph
    reseeds from the next lowest unassigned node. The last shard takes
    the remainder.
    @raise Invalid_argument if [shards < 1]. *)

val shard_sizes : t -> int array
(** [shard_sizes p] is the node count per shard. *)

val cut_edges : neighbors:(int -> int array) -> t -> int
(** Number of undirected edges whose endpoints live in different
    shards, reading adjacency through [neighbors] (works for both
    materialised graphs and implicit topologies). *)

val validate : t -> unit
(** Check internal consistency: every node owned by exactly the shard
    whose member list contains it, member lists ascending and disjoint.
    @raise Invalid_argument on any violation (used by tests). *)
