(* Node-set partitions for the sharded engine. See partition.mli. *)

type t = {
  label : string;
  shards : int;
  owner : int array;
  members : int array array;
}

let members_of_owner ~n ~shards owner =
  let counts = Array.make shards 0 in
  for v = 0 to n - 1 do
    counts.(owner.(v)) <- counts.(owner.(v)) + 1
  done;
  let members = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make shards 0 in
  for v = 0 to n - 1 do
    let s = owner.(v) in
    members.(s).(fill.(s)) <- v;
    fill.(s) <- fill.(s) + 1
  done;
  members

let contiguous ~n ~shards =
  if n < 0 then invalid_arg "Partition.contiguous: n < 0";
  if shards < 1 then invalid_arg "Partition.contiguous: shards < 1";
  let base = n / shards and extra = n mod shards in
  let owner = Array.make (max 1 n) 0 in
  let v = ref 0 in
  for s = 0 to shards - 1 do
    let size = base + if s < extra then 1 else 0 in
    for _ = 1 to size do
      owner.(!v) <- s;
      incr v
    done
  done;
  let owner = if n = 0 then [||] else Array.sub owner 0 n in
  { label = "contiguous"; shards; owner; members = members_of_owner ~n ~shards owner }

let greedy ~graph ~shards =
  if shards < 1 then invalid_arg "Partition.greedy: shards < 1";
  let n = Graph.n graph in
  let owner = Array.make n (-1) in
  let target = if n = 0 then 0 else (n + shards - 1) / shards in
  (* BFS frontier as a simple queue; seeds and neighbour scans are in
     ascending id order, so the regions are a pure function of the
     graph. [next_seed] only moves forward: everything below it is
     assigned. *)
  let queue = Queue.create () in
  let next_seed = ref 0 in
  let assigned = ref 0 in
  for s = 0 to shards - 1 do
    Queue.clear queue;
    let size = ref 0 in
    let budget = if s = shards - 1 then n - !assigned else min target (n - !assigned) in
    while !size < budget do
      (if Queue.is_empty queue then begin
         while !next_seed < n && owner.(!next_seed) >= 0 do
           incr next_seed
         done;
         Queue.add !next_seed queue
       end);
      let v = Queue.take queue in
      if owner.(v) < 0 then begin
        owner.(v) <- s;
        incr size;
        incr assigned;
        Array.iter
          (fun u -> if owner.(u) < 0 then Queue.add u queue)
          (Graph.neighbors graph v)
      end
    done
  done;
  { label = "greedy"; shards; owner; members = members_of_owner ~n ~shards owner }

let shard_sizes p = Array.map Array.length p.members

let cut_edges ~neighbors p =
  let cut = ref 0 in
  Array.iteri
    (fun v s ->
      Array.iter
        (fun u -> if u > v && p.owner.(u) <> s then incr cut)
        (neighbors v))
    p.owner;
  !cut

let validate p =
  let n = Array.length p.owner in
  if p.shards < 1 then invalid_arg "Partition.validate: shards < 1";
  if Array.length p.members <> p.shards then
    invalid_arg "Partition.validate: members length <> shards";
  let seen = Array.make n false in
  Array.iteri
    (fun s ms ->
      let prev = ref (-1) in
      Array.iter
        (fun v ->
          if v < 0 || v >= n then invalid_arg "Partition.validate: node out of range";
          if v <= !prev then invalid_arg "Partition.validate: members not ascending";
          prev := v;
          if seen.(v) then invalid_arg "Partition.validate: node in two shards";
          seen.(v) <- true;
          if p.owner.(v) <> s then invalid_arg "Partition.validate: owner mismatch")
        ms)
    p.members;
  Array.iteri
    (fun v o ->
      if o < 0 || o >= p.shards then
        invalid_arg "Partition.validate: owner out of range";
      if not seen.(v) then invalid_arg "Partition.validate: node unassigned")
    p.owner
