(** Implicit topologies: graph families defined by index arithmetic.

    The experiment ceilings have been bounded by {e materialisation}:
    [Graph.t] stores every adjacency list, so an n-node instance pays
    O(n + m) memory before a single message moves. The regular families
    the paper's separations are stated on (lists, rings, meshes, tori,
    complete m-ary trees) need none of that — a vertex's neighbourhood
    is a pure function of its index. An [Implicit.t] carries exactly
    that function: [degree], [neighbor], [neighbors] and a greedy
    distance-reducing [next_hop], with nothing allocated per node, so
    the event-driven engine ({!Countq_simnet.Event_engine}) can run
    million-node instances in which only the {e touched} nodes ever
    exist.

    Every family reproduces the vertex numbering of its materialised
    twin in {!Gen} exactly — [materialise] returns a graph equal to the
    corresponding generator's, and the property suite pins the
    agreement on all families — so results transfer verbatim between
    the two representations. *)

type t

val label : t -> string
(** Printable name, e.g. ["list-1000000"] or ["torus-100x100"]. *)

val n : t -> int
(** Number of vertices. *)

val degree : t -> int -> int
(** [degree t v] in O(dims) time and no allocation. *)

val max_degree : t -> int
(** Closed form (no scan) for the implicit families; O(n) BFS-free scan
    for {!of_graph} wrappers. *)

val neighbor : t -> int -> int -> int
(** [neighbor t v k] is the k-th neighbour (0-based) of [v] in
    ascending vertex order — the same order {!Graph.neighbors} stores.
    @raise Invalid_argument if [k] is out of range. *)

val neighbors : t -> int -> int array
(** Fresh sorted, duplicate-free array — allocate once per node you
    actually touch, exactly like reading {!Graph.neighbors} (which is
    zero-copy but forced the whole graph into memory up front). *)

val next_hop : t -> src:int -> dst:int -> int
(** The neighbour of [src] that strictly decreases the distance to
    [dst] (ties broken deterministically: lowest dimension first, then
    the positive direction). Greedy routing with [next_hop] follows a
    shortest path on every implicit family.
    @raise Invalid_argument if [src = dst] or [dst] is unreachable. *)

(** {1 Families} (vertex numbering identical to the {!Gen} twin) *)

val list : int -> t
(** The n-node path [0 — 1 — … — n-1]; twin of {!Gen.path}. *)

val ring : int -> t
(** The n-cycle, [n >= 3]; twin of {!Gen.cycle}. *)

val mesh : dims:int list -> t
(** Row-major mixed-radix mesh; twin of {!Gen.mesh}. *)

val torus : dims:int list -> t
(** As {!mesh} with wraparound on every side [> 2]; twin of
    {!Gen.torus} (side-2 wrap edges collapse, as there). *)

val tree : ?arity:int -> int -> t
(** Complete [arity]-ary (default binary) tree on exactly [n] vertices,
    BFS-numbered (children of [v] are [v*arity + 1 … v*arity + arity]);
    twin of {!Gen.balanced_tree_on}. *)

val tree_arity : t -> int option
(** [Some arity] when [t] is a {!tree} family instance — the
    index-arithmetic contract ([parent v = (v-1)/arity]) that the
    combining-funnel counter routes by — [None] for every other
    family. *)

val of_graph : ?label:string -> Graph.t -> t
(** Wrap an already-materialised graph (adjacency read through,
    [next_hop] by memoised BFS per destination) — the bridge the
    equivalence tests use to run the event engine on arbitrary
    topologies. *)

val materialise : t -> Graph.t
(** Force the adjacency into a {!Graph.t} — O(n + m) memory, intended
    for tests and small instances. For every family above,
    [Graph.equal (materialise t) (gen_twin …)] holds. *)

val parse : string -> (t, [ `Msg of string ]) result
(** Scenario-style spec: [family:size] with families [list] (alias
    [path]), [ring] (alias [cycle]), [mesh], [torus], [tree] (alias
    [binary-tree]). [size] is either a vertex count ([torus:4096] picks
    the nearest square side, like {!Scenario} in the core library) or
    an explicit [AxB…] dimension list ([torus:64x64]); [tree] also
    accepts [arity:size] ([tree:3:1093]). Default size 1024. Node
    counts (including dimension-list products, which are folded with an
    overflow guard) are validated up front against a 2{^30}-node
    ceiling — [torus:100000x100000x100000] is an [Error], not a
    later allocation failure. *)
