(** Ring-buffer FIFO queues.

    A drop-in replacement for [Stdlib.Queue] on the simulator's hot
    path: [Queue.t] allocates one cell per pushed element, whereas a
    ring buffer reuses its backing array, so steady-state [push]/[pop]
    are allocation-free. Popped slots are overwritten lazily rather
    than cleared, so a queue may keep its most recent high-water mark
    of elements reachable — fine for the engine's transient per-link
    buffers, where payloads are small and short-lived. Not thread-safe
    (neither is the engine). *)

type 'a t

exception Empty

val create : unit -> 'a t
(** An empty queue; the backing ring is allocated on first [push]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append at the tail, doubling the ring when full. *)

val pop : 'a t -> 'a
(** Remove and return the head.
    @raise Empty on an empty queue. *)

val peek : 'a t -> 'a
(** The head, without removing it.
    @raise Empty on an empty queue. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Head-to-tail iteration. *)
