(* Growable int vectors. See vec.mli. *)

type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () =
  { data = Array.make (max 1 capacity) 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  Array.unsafe_get t.data i

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  Array.unsafe_set t.data i x

let push t x =
  if t.len = Array.length t.data then begin
    let d = Array.make (2 * Array.length t.data) 0 in
    Array.blit t.data 0 d 0 t.len;
    t.data <- d
  end;
  Array.unsafe_set t.data t.len x;
  t.len <- t.len + 1

let truncate t len =
  if len < 0 || len > t.len then invalid_arg "Vec.truncate: bad length";
  t.len <- len

let clear t = t.len <- 0

(* Adaptive sort tuned for the engine's worklists, which arrive as an
   already-sorted prefix (survivors compacted in order) plus a short,
   usually near-sorted suffix of fresh pushes. Strategy: scan off the
   sorted prefix (O(len), the common all-sorted case stops there),
   heapsort just the suffix (O(s log s) worst case, no quadratic
   blow-ups), then merge the two runs from the back through a scratch
   copy of the suffix — O(s + displaced prefix elements). *)
let sort t =
  let a = t.data in
  let n = t.len in
  let p = ref 1 in
  while !p < n && a.(!p - 1) <= a.(!p) do
    incr p
  done;
  if !p < n then begin
    let p0 = !p in
    let s = n - p0 in
    let sift_down i len =
      let x = a.(p0 + i) in
      let i = ref i in
      let moving = ref true in
      while !moving do
        let l = (2 * !i) + 1 in
        if l >= len then moving := false
        else begin
          let c =
            if l + 1 < len && a.(p0 + l + 1) > a.(p0 + l) then l + 1 else l
          in
          if a.(p0 + c) > x then begin
            a.(p0 + !i) <- a.(p0 + c);
            i := c
          end
          else moving := false
        end
      done;
      a.(p0 + !i) <- x
    in
    for i = (s / 2) - 1 downto 0 do
      sift_down i s
    done;
    for last = s - 1 downto 1 do
      let tmp = a.(p0) in
      a.(p0) <- a.(p0 + last);
      a.(p0 + last) <- tmp;
      sift_down 0 last
    done;
    (* Both runs sorted; merge only if they actually overlap. *)
    if p0 > 0 && a.(p0 - 1) > a.(p0) then begin
      let scratch = Array.sub a p0 s in
      let i = ref (p0 - 1) and j = ref (s - 1) and k = ref (n - 1) in
      while !j >= 0 do
        if !i >= 0 && a.(!i) > scratch.(!j) then begin
          a.(!k) <- a.(!i);
          decr i
        end
        else begin
          a.(!k) <- scratch.(!j);
          decr j
        end;
        decr k
      done
    end
  end

let to_list t = List.init t.len (fun i -> Array.unsafe_get t.data i)

let iter f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.data i)
  done
