(* Streaming quantile sketch. See sketch.mli. *)

(* Bucket geometry: [subcount] sub-buckets per power-of-two octave.
   Values in [0, 2*subcount) get one bucket each; a value v >= 128
   with top bit k lands in the sub-bucket indexed by its 6 bits below
   the top one, so every bucket's width is at most lo/64. *)
let sub_bits = 6
let subcount = 1 lsl sub_bits (* 64 *)
let linear_limit = 2 * subcount (* 128 *)

(* Position of the highest set bit of a positive int. *)
let msb v =
  let k = ref 0 and v = ref v in
  if !v lsr 32 <> 0 then begin
    k := !k + 32;
    v := !v lsr 32
  end;
  if !v lsr 16 <> 0 then begin
    k := !k + 16;
    v := !v lsr 16
  end;
  if !v lsr 8 <> 0 then begin
    k := !k + 8;
    v := !v lsr 8
  end;
  if !v lsr 4 <> 0 then begin
    k := !k + 4;
    v := !v lsr 4
  end;
  if !v lsr 2 <> 0 then begin
    k := !k + 2;
    v := !v lsr 2
  end;
  if !v lsr 1 <> 0 then incr k;
  !k

let index_of v =
  if v < linear_limit then v
  else begin
    let k = msb v in
    let mantissa = v lsr (k - sub_bits) in
    linear_limit + ((k - (sub_bits + 1)) * subcount) + (mantissa - subcount)
  end

let nbuckets = index_of max_int + 1

(* Inclusive [lo, hi] covered by a bucket. The top bucket's natural hi
   would overflow ((mantissa+1) lsl shift = 2^62), so it is clamped to
   max_int explicitly rather than relying on wraparound. *)
let bounds_of index =
  if index < linear_limit then (index, index)
  else begin
    let o = index - linear_limit in
    let k = sub_bits + 1 + (o / subcount) in
    let mantissa = subcount + (o mod subcount) in
    let lo = mantissa lsl (k - sub_bits) in
    let hi =
      if index = nbuckets - 1 then max_int
      else ((mantissa + 1) lsl (k - sub_bits)) - 1
    in
    (lo, hi)
  end

let relative_error = 1. /. float_of_int (2 * subcount)

type repr = Raw of Vec.t | Buckets of int array

type t = {
  exact_limit : int;
  mutable count : int;
  mutable total : int;
  mutable min_v : int;
  mutable max_v : int;
  mutable repr : repr;
}

let create ?(exact_limit = 1024) () =
  let repr =
    if exact_limit <= 0 then Buckets (Array.make nbuckets 0)
    else Raw (Vec.create ~capacity:(min exact_limit 16) ())
  in
  { exact_limit; count = 0; total = 0; min_v = max_int; max_v = -1; repr }

let spill t =
  match t.repr with
  | Buckets _ -> ()
  | Raw raw ->
      let counts = Array.make nbuckets 0 in
      Vec.iter
        (fun v ->
          let i = index_of v in
          counts.(i) <- counts.(i) + 1)
        raw;
      t.repr <- Buckets counts

let add t x =
  if x < 0 then invalid_arg "Sketch.add: negative sample";
  t.count <- t.count + 1;
  t.total <- t.total + x;
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x;
  (match t.repr with
  | Raw raw when Vec.length raw >= t.exact_limit -> spill t
  | _ -> ());
  match t.repr with
  | Raw raw -> Vec.push raw x
  | Buckets counts ->
      let i = index_of x in
      counts.(i) <- counts.(i) + 1

let count t = t.count
let total t = t.total
let mean t = if t.count = 0 then None else Some (float_of_int t.total /. float_of_int t.count)
let min_value t = if t.count = 0 then None else Some t.min_v
let max_value t = if t.count = 0 then None else Some t.max_v

let is_exact t =
  match t.repr with Raw _ -> true | Buckets _ -> false

(* Representative value reported for a bucket: exact in the linear
   range (width-1 buckets), the clamped midpoint above it. Clamping to
   the observed min/max only sharpens the estimate — the true samples
   all lie inside [min_v, max_v]. *)
let representative t index =
  let lo, hi = bounds_of index in
  if lo = hi then float_of_int lo
  else begin
    let lo = max lo t.min_v and hi = min hi t.max_v in
    (float_of_int lo +. float_of_int hi) /. 2.
  end

let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Sketch.quantile: q outside [0, 1]";
  if t.count = 0 then None
  else begin
    match t.repr with
    | Raw raw ->
        (* Exact mode reproduces Stats.percentile_ints bit-for-bit. *)
        Stats.percentile_ints (Vec.to_list raw) q
    | Buckets counts ->
        let pos = q *. float_of_int (t.count - 1) in
        let lo_rank = int_of_float (Float.floor pos) in
        let hi_rank = int_of_float (Float.ceil pos) in
        (* One cumulative walk resolves both interpolation endpoints:
           the bucket holding rank r is the first with cum > r. *)
        let v_lo = ref nan and v_hi = ref nan in
        let cum = ref 0 in
        (try
           for i = 0 to nbuckets - 1 do
             let c = counts.(i) in
             if c > 0 then begin
               cum := !cum + c;
               if Float.is_nan !v_lo && !cum > lo_rank then
                 v_lo := representative t i;
               if !cum > hi_rank then begin
                 v_hi := representative t i;
                 raise Exit
               end
             end
           done
         with Exit -> ());
        if lo_rank = hi_rank then Some !v_lo
        else begin
          let frac = pos -. float_of_int lo_rank in
          Some ((!v_lo *. (1. -. frac)) +. (!v_hi *. frac))
        end
  end

let copy t =
  let repr =
    match t.repr with
    | Buckets counts -> Buckets (Array.copy counts)
    | Raw raw ->
        let fresh = Vec.create ~capacity:(max 16 (Vec.length raw)) () in
        Vec.iter (fun v -> Vec.push fresh v) raw;
        Raw fresh
  in
  { t with repr }

let merge a b =
  let exact_limit = min a.exact_limit b.exact_limit in
  let combined = a.count + b.count in
  let repr =
    match (a.repr, b.repr) with
    | Raw ra, Raw rb when combined <= exact_limit ->
        let fresh = Vec.create ~capacity:(max 16 combined) () in
        Vec.iter (fun v -> Vec.push fresh v) ra;
        Vec.iter (fun v -> Vec.push fresh v) rb;
        Raw fresh
    | _ ->
        let counts = Array.make nbuckets 0 in
        let absorb = function
          | Raw raw ->
              Vec.iter
                (fun v ->
                  let i = index_of v in
                  counts.(i) <- counts.(i) + 1)
                raw
          | Buckets cs ->
              for i = 0 to nbuckets - 1 do
                counts.(i) <- counts.(i) + cs.(i)
              done
        in
        absorb a.repr;
        absorb b.repr;
        Buckets counts
  in
  {
    exact_limit;
    count = combined;
    total = a.total + b.total;
    min_v = min a.min_v b.min_v;
    max_v = max a.max_v b.max_v;
    repr;
  }

let buckets t =
  let counts = Array.make nbuckets 0 in
  (match t.repr with
  | Buckets cs -> Array.blit cs 0 counts 0 nbuckets
  | Raw raw ->
      Vec.iter
        (fun v ->
          let i = index_of v in
          counts.(i) <- counts.(i) + 1)
        raw);
  let out = ref [] in
  for i = nbuckets - 1 downto 0 do
    if counts.(i) > 0 then begin
      let lo, hi = bounds_of i in
      out := (lo, hi, counts.(i)) :: !out
    end
  done;
  !out

let pp ppf t =
  if t.count = 0 then Format.fprintf ppf "empty sketch"
  else begin
    let q x = match quantile t x with Some v -> v | None -> nan in
    Format.fprintf ppf
      "n=%d min=%d mean=%.2f max=%d p50=%.1f p95=%.1f p99=%.1f (%s)"
      t.count t.min_v
      (match mean t with Some m -> m | None -> nan)
      t.max_v (q 0.5) (q 0.95) (q 0.99)
      (if is_exact t then "exact" else "sketched")
  end
