(* Fork-join parallel map over domains, and the shared budget-aware
   pool the sweep runner schedules on. See parallel.mli. *)

type 'b outcome = Value of 'b | Failed of exn

(* Core executor shared by [map] and [pool_map]: [extra] helper domains
   plus the caller evaluate [items] by claiming index chunks off an
   atomic counter. Claims are monotone (chunk bases are dispensed in
   increasing order) and a claimed chunk is always evaluated to its end,
   which is what makes the failure semantics deterministic: the first
   observed failure sets the abort flag so no NEW chunks are claimed,
   but every index below any claimed index has itself been claimed and
   therefore evaluated — so the lowest-index failure is always found
   and is the one re-raised, independent of scheduling. *)
let exec ~extra ~chunk f items =
  let k = Array.length items in
  let results = Array.make k None in
  let next = Atomic.make 0 in
  (* Lowest failing index seen so far; max_int = no failure (doubles as
     the abort flag). *)
  let failed = Atomic.make max_int in
  let rec note_failure i =
    let cur = Atomic.get failed in
    if i < cur && not (Atomic.compare_and_set failed cur i) then
      note_failure i
  in
  let worker () =
    let rec loop () =
      if Atomic.get failed = max_int then begin
        let base = Atomic.fetch_and_add next chunk in
        if base < k then begin
          let stop = min k (base + chunk) in
          for i = base to stop - 1 do
            match f items.(i) with
            | v -> results.(i) <- Some (Value v)
            | exception e ->
                results.(i) <- Some (Failed e);
                note_failure i
          done;
          loop ()
        end
      end
    in
    loop ()
  in
  let domains = List.init extra (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join domains;
  match Atomic.get failed with
  | i when i < max_int -> (
      match results.(i) with
      | Some (Failed e) -> raise e
      | _ -> assert false)
  | _ ->
      Array.to_list
        (Array.map
           (fun cell ->
             match cell with Some (Value v) -> v | _ -> assert false)
           results)

let map ~jobs f xs =
  if jobs < 1 then invalid_arg "Parallel.map: jobs must be >= 1";
  if jobs = 1 then List.map f xs
  else
    let items = Array.of_list xs in
    let extra = min (jobs - 1) (max 0 (Array.length items - 1)) in
    exec ~extra ~chunk:1 f items

let recommended_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* ------------------------------------------------------------------ *)
(* The shared pool. The budget is a single atomic counter of extra
   worker domains still available; every [pool_map] — including one
   issued from inside another pool_map's worker — reserves from the
   same counter, takes only what is available (possibly nothing, which
   degrades to a sequential map in the calling lane), and releases on
   completion. Total live domains therefore never exceed [jobs], no
   matter how experiment-level and point-level fan-out nest. *)

type pool = { total : int; avail : int Atomic.t }

let pool ~jobs =
  if jobs < 1 then invalid_arg "Parallel.pool: jobs must be >= 1";
  { total = jobs; avail = Atomic.make (jobs - 1) }

let pool_jobs p = p.total

let rec reserve p want =
  if want <= 0 then 0
  else
    let a = Atomic.get p.avail in
    if a <= 0 then 0
    else
      let take = min a want in
      if Atomic.compare_and_set p.avail a (a - take) then take
      else reserve p want

let release p n = if n > 0 then ignore (Atomic.fetch_and_add p.avail n)

let default_chunk ~lanes k = max 1 (min 16 (k / (lanes * 4)))

let pool_map p ?max_extra ?chunk f xs =
  let items = Array.of_list xs in
  let k = Array.length items in
  if k = 0 then []
  else begin
    let want = min (p.total - 1) (k - 1) in
    let want =
      match max_extra with None -> want | Some m -> min want (max 0 m)
    in
    let extra = reserve p want in
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> default_chunk ~lanes:(extra + 1) k
    in
    Fun.protect
      ~finally:(fun () -> release p extra)
      (fun () -> exec ~extra ~chunk f items)
  end
