(** Small descriptive statistics over integer samples (delays, message
    counts) — used by the long-lived experiments and the multicast
    reports. *)

type summary = {
  count : int;
  total : int;
  mean : float;
  median : float;
  p95 : float;  (** 95th percentile (nearest-rank on the sorted data,
                    interpolated between neighbours). *)
  min : int;
  max : int;
  stddev : float;  (** population standard deviation. *)
}

val summarize : int list -> summary option
(** [summarize samples] computes all fields in one pass over a sorted
    copy. [None] on an empty list — empty inputs are a normal outcome
    for the observability layer (every span stranded, a drained run
    with zero completions), not a programming error. *)

val percentile : float array -> float -> float option
(** [percentile sorted q] with [q] in [[0, 1]]: linear interpolation
    between closest ranks of an already-sorted array. [None] on empty
    input. @raise Invalid_argument on [q] outside [[0, 1]]. *)

val percentile_ints : int list -> float -> float option
(** [percentile_ints samples q]: {!percentile} over an unsorted integer
    sample list (sorts a private copy). The convenience form the
    observability layer uses for per-operation delay tables. [None] on
    an empty list. @raise Invalid_argument on [q] outside [[0, 1]]. *)

type bucket = {
  lo : int;  (** inclusive lower bound of the bucket. *)
  hi : int;  (** inclusive upper bound of the bucket. *)
  bcount : int;  (** samples that landed in [[lo, hi]]. *)
}

val histogram : ?bins:int -> int list -> bucket list
(** [histogram samples] buckets the samples into at most [bins]
    (default 10) equal-width ranges covering [[min, max]]. Buckets
    partition the range ([b.hi + 1 = next.lo]), every sample lands in
    exactly one bucket, and bucket counts sum to the sample count.
    When the data span is smaller than [bins], one bucket per distinct
    value is used instead of empty padding. The bucket arithmetic is
    exact over the whole int range — samples straddling [min_int] and
    [max_int] (a span wider than a native int) bucket correctly. An
    empty sample list yields an empty bucket list (total, matching
    {!percentile_ints}'s [None]) — a zero-completion run renders as
    nothing rather than raising. *)

val render_histogram : ?width:int -> bucket list -> string
(** ASCII rendering, one bucket per line: range, count, and a bar
    scaled so the fullest bucket spans [width] (default 40) columns. *)

val pp_summary : Format.formatter -> summary -> unit
(** One-line rendering: count/mean/median/p95/max. *)
