(** Small descriptive statistics over integer samples (delays, message
    counts) — used by the long-lived experiments and the multicast
    reports. *)

type summary = {
  count : int;
  total : int;
  mean : float;
  median : float;
  p95 : float;  (** 95th percentile (nearest-rank on the sorted data,
                    interpolated between neighbours). *)
  min : int;
  max : int;
  stddev : float;  (** population standard deviation. *)
}

val summarize : int list -> summary
(** [summarize samples] computes all fields in one pass over a sorted
    copy. @raise Invalid_argument on an empty list. *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [[0, 1]]: linear interpolation
    between closest ranks of an already-sorted array.
    @raise Invalid_argument on empty input or [q] outside [[0, 1]]. *)

val percentile_ints : int list -> float -> float
(** [percentile_ints samples q]: {!percentile} over an unsorted integer
    sample list (sorts a private copy). The convenience form the
    observability layer uses for per-operation delay tables.
    @raise Invalid_argument on an empty list or [q] outside [[0, 1]]. *)

type bucket = {
  lo : int;  (** inclusive lower bound of the bucket. *)
  hi : int;  (** inclusive upper bound of the bucket. *)
  bcount : int;  (** samples that landed in [[lo, hi]]. *)
}

val histogram : ?bins:int -> int list -> bucket list
(** [histogram samples] buckets the samples into at most [bins]
    (default 10) equal-width ranges covering [[min, max]]. Buckets
    partition the range ([b.hi + 1 = next.lo]), every sample lands in
    exactly one bucket, and bucket counts sum to the sample count.
    When the data span is smaller than [bins], one bucket per distinct
    value is used instead of empty padding. The bucket arithmetic is
    exact over the whole int range — samples straddling [min_int] and
    [max_int] (a span wider than a native int) bucket correctly.
    @raise Invalid_argument on an empty list or [bins < 1]. *)

val render_histogram : ?width:int -> bucket list -> string
(** ASCII rendering, one bucket per line: range, count, and a bar
    scaled so the fullest bucket spans [width] (default 40) columns. *)

val pp_summary : Format.formatter -> summary -> unit
(** One-line rendering: count/mean/median/p95/max. *)
