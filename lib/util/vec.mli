(** Growable [int] vectors.

    The synchronous engine's active-set worklists are [Vec.t]s: the set
    of nodes with a non-empty outbox (resp. pending incoming messages)
    lives in a vector that is sorted in place before each phase and
    compacted with {!set}/{!truncate} as nodes go quiescent. Everything
    here is amortised O(1) and allocation-free on the steady state, so
    per-round cost tracks the number of {e active} nodes, not [n]. *)

type t

val create : ?capacity:int -> unit -> t
(** Empty vector; [capacity] (default 16) pre-sizes the backing array. *)

val length : t -> int
val is_empty : t -> bool

val get : t -> int -> int
(** @raise Invalid_argument out of bounds. *)

val set : t -> int -> int -> unit
(** Overwrite a live slot — the compaction idiom writes survivors back
    over the prefix, then {!truncate}s.
    @raise Invalid_argument out of bounds. *)

val push : t -> int -> unit
(** Append, growing the backing array geometrically when full. *)

val truncate : t -> int -> unit
(** Shrink the live length (the backing array is kept).
    @raise Invalid_argument if the new length exceeds the current one. *)

val clear : t -> unit
(** [truncate t 0]. *)

val sort : t -> unit
(** In-place ascending sort of the live prefix, adaptive to the
    worklist shape: an already-sorted prefix is skipped in O(len), the
    suffix is heapsorted (O(s log s) worst case for [s] fresh
    elements), and the runs are merged from the back. Allocation-free
    except for an [s]-element scratch array when the runs actually
    interleave. *)

val to_list : t -> int list

val iter : (int -> unit) -> t -> unit
