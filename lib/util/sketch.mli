(** Streaming quantile sketch over non-negative integer samples
    (delays, backlogs) — constant memory at any stream length.

    The sketch is an HDR-style log-bucketed histogram: values below
    [2 * subcount] (= 128) get one bucket each (exact); above that,
    each power-of-two octave is split into [subcount] (= 64)
    equal-width sub-buckets, so a bucket spanning [[lo, hi]] has
    [hi - lo + 1 <= lo / subcount]. Reporting the bucket midpoint
    therefore bounds the relative error of any reported quantile by
    [1 / (2 * subcount)] ~ 0.78% — see {!relative_error}. The bucket
    array covers the whole non-negative [int] range in ~3.6k slots.

    Small streams stay {e exact}: until more than [exact_limit]
    samples arrive, the raw values are retained and {!quantile}
    reproduces {!Stats.percentile_ints} bit-for-bit. The first sample
    past the limit spills the raw set into the buckets and the sketch
    switches to bounded-error mode for good.

    Sketches {!merge} (counts add bucket-wise), so per-worker sketches
    from a parallel sweep combine into one; merge is observably
    commutative and associative (exercised by the tier-1 tests). All
    operations are deterministic functions of the sample multiset —
    insertion order never matters. *)

type t

val create : ?exact_limit:int -> unit -> t
(** Fresh empty sketch. [exact_limit] (default 1024) is the sample
    count up to which raw values are retained and quantiles are exact;
    [0] makes the sketch bucketed from the first sample. *)

val add : t -> int -> unit
(** Record one sample. @raise Invalid_argument on a negative value. *)

val count : t -> int
(** Samples recorded so far. *)

val total : t -> int
(** Sum of all samples (native-int wraparound at ~4.6e18). *)

val mean : t -> float option
(** [total / count]; [None] when empty. *)

val min_value : t -> int option
(** Smallest sample (exact in both modes); [None] when empty. *)

val max_value : t -> int option
(** Largest sample (exact in both modes); [None] when empty. *)

val is_exact : t -> bool
(** [true] while the sketch still holds the raw samples (count has
    never exceeded [exact_limit]): quantiles are exact, not bounded. *)

val quantile : t -> float -> float option
(** [quantile t q] with [q] in [[0, 1]]: the same closest-rank
    interpolation as {!Stats.percentile} — bit-identical to it in
    exact mode, within {!relative_error} (relative, per interpolation
    endpoint) of it in bucketed mode. [None] when empty.
    @raise Invalid_argument on [q] outside [[0, 1]]. *)

val merge : t -> t -> t
(** Pure combination: a fresh sketch equivalent to having fed both
    input streams into one. Neither argument is mutated. The result is
    exact iff both inputs are exact and the combined count fits the
    smaller of the two [exact_limit]s; otherwise it is bucketed. *)

val copy : t -> t
(** Independent snapshot (later [add]s to either side are invisible to
    the other). *)

val buckets : t -> (int * int * int) list
(** Non-empty buckets as [(lo, hi, count)], ascending, computed from
    whichever representation is live. For export and rendering. *)

val relative_error : float
(** The documented worst-case relative error of a bucketed quantile's
    interpolation endpoints: [1 /. 128.]. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering: count, min/mean/max, p50/p95/p99, mode. *)
