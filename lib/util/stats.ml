(* Descriptive statistics. See stats.mli. *)

type summary = {
  count : int;
  total : int;
  mean : float;
  median : float;
  p95 : float;
  min : int;
  max : int;
  stddev : float;
}

let percentile sorted q =
  if q < 0. || q > 1. then invalid_arg "Stats.percentile: q outside [0, 1]";
  let n = Array.length sorted in
  if n = 0 then None
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = int_of_float (Float.ceil pos) in
    if lo = hi then Some sorted.(lo)
    else begin
      let frac = pos -. float_of_int lo in
      Some ((sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac))
    end
  end

let percentile_exn sorted q =
  match percentile sorted q with
  | Some v -> v
  | None -> invalid_arg "Stats.percentile: empty input"

let summarize samples =
  if samples = [] then None
  else begin
    let a = Array.of_list (List.map float_of_int samples) in
    Array.sort compare a;
    let count = Array.length a in
    let total = List.fold_left ( + ) 0 samples in
    let mean = float_of_int total /. float_of_int count in
    let var =
      Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. a
      /. float_of_int count
    in
    Some
      {
        count;
        total;
        mean;
        median = percentile_exn a 0.5;
        p95 = percentile_exn a 0.95;
        min = int_of_float a.(0);
        max = int_of_float a.(count - 1);
        stddev = sqrt var;
      }
  end

let percentile_ints samples q =
  if samples = [] then begin
    (* Still validate q so the empty case is not a silent pass for a
       caller-side unit bug (q in percent instead of a fraction). *)
    if q < 0. || q > 1. then
      invalid_arg "Stats.percentile: q outside [0, 1]";
    None
  end
  else begin
    let a = Array.of_list (List.map float_of_int samples) in
    Array.sort compare a;
    percentile a q
  end

type bucket = { lo : int; hi : int; bcount : int }

let histogram_nonempty ~bins samples =
  let lo = List.fold_left min max_int samples in
  let hi = List.fold_left max min_int samples in
  (* The span [hi - lo + 1] exceeds the native int range when the
     samples straddle a wide interval (e.g. one near [min_int], one
     near [max_int]), so the bucket arithmetic runs in Int64 with
     unsigned division: every bucket BOUND is a sample-range value and
     fits a native int, only the span and the per-bucket offsets need
     the wider (modular) arithmetic. *)
  let span = Int64.add (Int64.sub (Int64.of_int hi) (Int64.of_int lo)) 1L in
  let bins =
    if Int64.unsigned_compare (Int64.of_int bins) span > 0 then
      Int64.to_int span
    else bins
  in
  (* Equal-width buckets; the first [span mod bins] buckets absorb the
     remainder so the widths differ by at most one. *)
  let base = Int64.unsigned_div span (Int64.of_int bins)
  and extra = Int64.to_int (Int64.unsigned_rem span (Int64.of_int bins)) in
  let bounds =
    Array.init bins (fun i ->
        let start =
          Int64.add
            (Int64.mul (Int64.of_int i) base)
            (Int64.of_int (min i extra))
        in
        let width = Int64.add base (if i < extra then 1L else 0L) in
        let l = Int64.add (Int64.of_int lo) start in
        let h = Int64.sub (Int64.add l width) 1L in
        (Int64.to_int l, Int64.to_int h))
  in
  let counts = Array.make bins 0 in
  List.iter
    (fun x ->
      (* Buckets are few; a linear scan is simpler than inverting the
         remainder arithmetic. *)
      let rec find i =
        let l, h = bounds.(i) in
        if x >= l && x <= h then i else find (i + 1)
      in
      let i = find 0 in
      counts.(i) <- counts.(i) + 1)
    samples;
  List.init bins (fun i ->
      let lo, hi = bounds.(i) in
      { lo; hi; bcount = counts.(i) })

let histogram ?(bins = 10) samples =
  if bins < 1 then invalid_arg "Stats.histogram: bins must be >= 1";
  if samples = [] then [] else histogram_nonempty ~bins samples

let render_histogram ?(width = 40) buckets =
  let maxc = List.fold_left (fun acc b -> max acc b.bcount) 0 buckets in
  let buf = Buffer.create 256 in
  List.iter
    (fun b ->
      let bar =
        if maxc = 0 then 0 else b.bcount * width / maxc
      in
      let bar = if b.bcount > 0 then max 1 bar else bar in
      Buffer.add_string buf
        (Printf.sprintf "%6d..%-6d %6d %s\n" b.lo b.hi b.bcount
           (String.make bar '#')))
    buckets;
  Buffer.contents buf

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.2f median=%.1f p95=%.1f max=%d" s.count
    s.mean s.median s.p95 s.max
