(* Ring-buffer FIFO queues. See fifo.mli.

   The backing array's capacity is always zero or a power of two, so
   the index wrap-around is a bit-mask — no integer division on the
   push/pop hot path (these rings carry every message the synchronous
   engine moves). *)

type 'a t = { mutable data : 'a array; mutable head : int; mutable len : int }

exception Empty

let create () = { data = [||]; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

(* Double the ring (seeded from [x], the element being pushed, so no
   dummy value is needed for the fresh slots), linearising the live
   elements to the front. *)
let grow t x =
  let cap = Array.length t.data in
  let d = Array.make (if cap = 0 then 2 else 2 * cap) x in
  let mask = cap - 1 in
  for i = 0 to t.len - 1 do
    d.(i) <- t.data.((t.head + i) land mask)
  done;
  t.data <- d;
  t.head <- 0

let push t x =
  if t.len = Array.length t.data then grow t x;
  let d = t.data in
  Array.unsafe_set d ((t.head + t.len) land (Array.length d - 1)) x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then raise Empty;
  let d = t.data in
  let x = Array.unsafe_get d t.head in
  t.head <- (t.head + 1) land (Array.length d - 1);
  t.len <- t.len - 1;
  x

let peek t = if t.len = 0 then raise Empty else t.data.(t.head)

let iter f t =
  let mask = Array.length t.data - 1 in
  for i = 0 to t.len - 1 do
    f t.data.((t.head + i) land mask)
  done
