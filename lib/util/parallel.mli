(** Deterministic fork–join parallelism over OCaml 5 domains.

    Experiments are pure functions of their seeds, so they can be
    evaluated on separate domains with no shared state; results come
    back in input order regardless of completion order. [map] is the
    one-shot form; {!pool} / {!pool_map} is the shared, budget-aware
    form the sweep runner and the CLI schedule on, built so nested
    fan-out (experiments over points over protocol portfolios) can
    never oversubscribe the machine. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] evaluates [f] on every element using at most
    [jobs] domains (the caller included). Results are in input order.

    Failure semantics: the first failure aborts the run — no further
    items are claimed once any [f] has raised (items already being
    evaluated on other domains still finish) — and the exception
    re-raised in the caller is deterministically the one from the
    {e lowest} failing index, independent of scheduling. [jobs = 1]
    degrades to [List.map f xs].
    @raise Invalid_argument if [jobs < 1]. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1 — a sensible
    default for [--jobs]. *)

(** {1 The shared domain pool} *)

type pool
(** A budget of worker domains shared by every [pool_map] issued
    against it, from any nesting depth. *)

val pool : jobs:int -> pool
(** [pool ~jobs] creates a pool with a total budget of [jobs] lanes:
    the caller's own lane plus [jobs - 1] spawnable worker domains.
    @raise Invalid_argument if [jobs < 1]. *)

val pool_jobs : pool -> int
(** The pool's total lane budget (the [jobs] it was created with). *)

val reserve : pool -> int -> int
(** [reserve p want] atomically claims up to [want] helper lanes from
    [p]'s remaining budget and returns how many were granted (possibly
    0). Long-lived holders — the sharded engine keeps its worker
    domains for a whole run — reserve once up front instead of going
    through {!pool_map}; every grant must be handed back with
    {!release}. *)

val release : pool -> int -> unit
(** [release p n] returns [n] previously reserved lanes to the budget. *)

val pool_map :
  pool -> ?max_extra:int -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [pool_map p f xs] is [map]'s shared-budget form: it reserves up to
    [jobs - 1] helper domains from [p]'s remaining budget (taking fewer
    — possibly none — when concurrent or enclosing [pool_map] calls
    hold them), evaluates with the caller participating, and releases
    the helpers when done. This is the nested-parallelism guard: an
    inner [pool_map] issued from a worker of an outer one draws on the
    {e same} budget, so composing per-experiment fan-out with per-point
    fan-out never exceeds [pool_jobs p] live domains. With no budget
    available it degrades to a sequential map in the calling lane.

    [max_extra] caps the helpers this call may reserve (coarse outer
    loops use a small cap to leave budget for inner sweeps). [chunk]
    sets how many consecutive items a worker claims per atomic
    operation; the default grows with [|xs|] so small points amortise
    claim contention, and callers with expensive items should pass
    [~chunk:1]. Results are in input order; failure semantics are
    exactly {!map}'s (abort + lowest-index re-raise). Purity of [f] is
    the caller's contract — results are bit-identical across any jobs
    count only if [f] depends on nothing but its argument. *)
