(** A minimal JSON tree, printer and parser.

    The repository deliberately carries no third-party JSON dependency
    (the bench harness hand-prints its snapshot); this module is the
    small shared core the observability layer needs to {e round-trip}
    structured exports — spans, metrics and trace events written as
    JSONL must parse back bit-for-bit so the golden tests and the
    [Trace.of_jsonl] importer can rely on them. It covers exactly the
    JSON subset those emitters produce: objects, arrays, strings,
    integers, floats, booleans and null, with full string escaping. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** field order is preserved. *)

val to_string : t -> string
(** Compact (single-line) rendering — one JSONL record per value.
    Integers print without a decimal point, so an [Int] round-trips as
    an [Int]; non-finite floats print as [null] (JSON has no NaN). *)

val of_string : string -> (t, string) result
(** Parse one JSON value (leading/trailing whitespace allowed). Numbers
    without [.], [e] or [E] parse as [Int]; anything unparseable
    returns [Error] with a position-tagged message. [\uXXXX] escapes
    decode to UTF-8 for the whole Unicode range — surrogate pairs
    combine into one code point; an unpaired surrogate is an error. *)

(** {1 Accessors} — tiny helpers for the importers. *)

val member : string -> t -> t option
(** First binding of the field in an [Obj]; [None] otherwise. *)

val to_int : t -> int option
(** [Int n] (or an integral [Float]) as [n]. *)

val to_str : t -> string option
val to_list : t -> t list option
