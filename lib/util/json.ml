(* Minimal JSON tree, printer, parser. See json.mli. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
        if Float.is_finite f then
          (* %.17g is lossless for doubles; trim to the shortest form
             that still parses back equal. *)
          let s = Printf.sprintf "%.17g" f in
          let short = Printf.sprintf "%.12g" f in
          Buffer.add_string buf
            (if float_of_string short = f then short else s)
        else Buffer.add_string buf "null"
    | Str s -> escape buf s
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            go item)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            escape buf k;
            Buffer.add_char buf ':';
            go item)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* Recursive-descent parser over an index cursor. *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let k = String.length word in
    if !pos + k <= n && String.sub s !pos k = word then begin
      pos := !pos + k;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'u' ->
                  (* Any \uXXXX decodes to UTF-8, with surrogate pairs
                     combined; unpaired surrogates are malformed JSON
                     text and rejected. *)
                  let hex4 () =
                    if !pos + 4 > n then fail "truncated \\u escape";
                    let v = ref 0 in
                    for _ = 1 to 4 do
                      let d =
                        match s.[!pos] with
                        | '0' .. '9' as c -> Char.code c - Char.code '0'
                        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
                        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
                        | _ -> fail "bad \\u escape"
                      in
                      v := (!v lsl 4) lor d;
                      advance ()
                    done;
                    !v
                  in
                  let code = hex4 () in
                  let code =
                    if code >= 0xd800 && code <= 0xdbff then begin
                      if
                        !pos + 2 <= n
                        && s.[!pos] = '\\'
                        && s.[!pos + 1] = 'u'
                      then begin
                        advance ();
                        advance ();
                        let low = hex4 () in
                        if low >= 0xdc00 && low <= 0xdfff then
                          0x10000
                          + ((code - 0xd800) lsl 10)
                          + (low - 0xdc00)
                        else fail "unpaired high surrogate"
                      end
                      else fail "unpaired high surrogate"
                    end
                    else if code >= 0xdc00 && code <= 0xdfff then
                      fail "unpaired low surrogate"
                    else code
                  in
                  Buffer.add_utf_8_uchar buf (Uchar.of_int code)
              | c -> fail (Printf.sprintf "bad escape \\%c" c));
              go ())
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
          advance ();
          go ()
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" p msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr items -> Some items | _ -> None
